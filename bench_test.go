// Package cosched's root benchmark suite regenerates every table and
// figure of Tang et al. (ICPP 2011) §V and ablates the design choices
// called out in DESIGN.md §5.
//
// Figure benches run the corresponding experiment sweep at a reduced job
// factor (the paper-scale run is `cmd/experiments -factor 1.0`) and report
// headline values via b.ReportMetric so `go test -bench` output doubles as
// a quick-look reproduction:
//
//	go test -bench=Fig -benchtime=1x
//	go test -bench=Ablation -benchtime=1x
package cosched

import (
	"fmt"
	"sync"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/experiments"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// benchFactor scales the paper's 9,219-job month down for bench runs.
const benchFactor = 0.15

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig(1, benchFactor)
	cfg.Reps = 1
	return cfg
}

// sweepMemo memoizes an experiment sweep across the benches that share it.
// Access is mutex-guarded so `go test -race -bench` stays clean; the zero
// value is ready to use.
type sweepMemo[T any] struct {
	mu  sync.Mutex
	val *T
}

func (m *sweepMemo[T]) get(b *testing.B, run func() (*T, error)) *T {
	b.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.val == nil {
		v, err := run()
		if err != nil {
			b.Fatal(err)
		}
		m.val = v
	}
	return m.val
}

// reset drops the memoized sweep so the next get re-runs it (used by the
// benches that time the sweep itself rather than the table rendering).
func (m *sweepMemo[T]) reset() {
	m.mu.Lock()
	m.val = nil
	m.mu.Unlock()
}

// loadSweepMemo memoizes the Figures 3–6 sweep across the benches that
// share it; propSweepMemo does the same for Figures 7–10.
var (
	loadSweepMemo sweepMemo[experiments.LoadSweep]
	propSweepMemo sweepMemo[experiments.ProportionSweep]
)

func benchLoadSweep(b *testing.B) *experiments.LoadSweep {
	b.Helper()
	return loadSweepMemo.get(b, func() (*experiments.LoadSweep, error) {
		return experiments.RunLoadSweep(benchConfig())
	})
}

func benchPropSweep(b *testing.B) *experiments.ProportionSweep {
	b.Helper()
	return propSweepMemo.get(b, func() (*experiments.ProportionSweep, error) {
		return experiments.RunProportionSweep(benchConfig())
	})
}

// BenchmarkCapabilityValidation regenerates §V-B: every scheme combination
// coschedules under every load/proportion, and the Figure 2 deadlock
// appears exactly when the release enhancement is off.
func BenchmarkCapabilityValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v, err := experiments.RunValidation(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		if !v.Passed() {
			b.Fatal("capability validation failed")
		}
	}
}

// BenchmarkFig3AvgWaitByLoad regenerates Figure 3 (average waiting time by
// Eureka load) and reports the HH-at-high-load penalty.
func BenchmarkFig3AvgWaitByLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loadSweepMemo.reset()
		s := benchLoadSweep(b)
		hh := s.Cell(0.75, experiments.Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		base := s.Baselines[0.75]
		b.ReportMetric(hh.IntrepidWait-base.IntrepidWait, "intrepid_hh_extra_wait_min")
		b.ReportMetric(hh.EurekaWait-base.EurekaWait, "eureka_hh_extra_wait_min")
		if _, tbl := s.Fig3Table(); len(tbl.Rows) != 12 {
			b.Fatal("fig3 table incomplete")
		}
	}
}

// BenchmarkFig4AvgSlowdownByLoad regenerates Figure 4.
func BenchmarkFig4AvgSlowdownByLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchLoadSweep(b)
		yy := s.Cell(0.75, experiments.Combo{Intrepid: cosched.Yield, Eureka: cosched.Yield})
		base := s.Baselines[0.75]
		b.ReportMetric(yy.IntrepidSlowdown-base.IntrepidSlowdown, "intrepid_yy_extra_slowdown")
		if a, _ := s.Fig4Table(); len(a.Rows) != 12 {
			b.Fatal("fig4 table incomplete")
		}
	}
}

// BenchmarkFig5SyncTimeByLoad regenerates Figure 5 (paired-job
// synchronization time by load and scheme).
func BenchmarkFig5SyncTimeByLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchLoadSweep(b)
		hh := s.Cell(0.50, experiments.Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		b.ReportMetric(hh.IntrepidSync, "intrepid_hh_sync_min")
		b.ReportMetric(hh.EurekaSync, "eureka_hh_sync_min")
		if a, _ := s.Fig5Table(); len(a.Rows) != 6 {
			b.Fatal("fig5 table incomplete")
		}
	}
}

// BenchmarkFig6ServiceUnitLossByLoad regenerates Figure 6.
func BenchmarkFig6ServiceUnitLossByLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchLoadSweep(b)
		hh := s.Cell(0.75, experiments.Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		b.ReportMetric(hh.IntrepidLossNH, "intrepid_hh_loss_node_hours")
		b.ReportMetric(hh.EurekaLossPct, "eureka_hh_loss_pct")
		if a, _ := s.Fig6Table(); len(a.Rows) != 6 {
			b.Fatal("fig6 table incomplete")
		}
	}
}

// BenchmarkFig7AvgWaitByProportion regenerates Figure 7.
func BenchmarkFig7AvgWaitByProportion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		propSweepMemo.reset()
		s := benchPropSweep(b)
		hh := s.Cell(0.33, experiments.Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		base := s.Baselines[0.33]
		b.ReportMetric(hh.IntrepidWait-base.IntrepidWait, "intrepid_hh33_extra_wait_min")
		if a, _ := s.Fig7Table(); len(a.Rows) != 20 {
			b.Fatal("fig7 table incomplete")
		}
	}
}

// BenchmarkFig8AvgSlowdownByProportion regenerates Figure 8.
func BenchmarkFig8AvgSlowdownByProportion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchPropSweep(b)
		hh := s.Cell(0.33, experiments.Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		base := s.Baselines[0.33]
		b.ReportMetric(hh.IntrepidSlowdown-base.IntrepidSlowdown, "intrepid_hh33_extra_slowdown")
		if a, _ := s.Fig8Table(); len(a.Rows) != 20 {
			b.Fatal("fig8 table incomplete")
		}
	}
}

// BenchmarkFig9SyncTimeByProportion regenerates Figure 9.
func BenchmarkFig9SyncTimeByProportion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchPropSweep(b)
		hh := s.Cell(0.20, experiments.Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		b.ReportMetric(hh.IntrepidSync, "intrepid_hh20_sync_min")
		if a, _ := s.Fig9Table(); len(a.Rows) != 10 {
			b.Fatal("fig9 table incomplete")
		}
	}
}

// BenchmarkFig10ServiceUnitLossByProportion regenerates Figure 10.
func BenchmarkFig10ServiceUnitLossByProportion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchPropSweep(b)
		hh := s.Cell(0.33, experiments.Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		b.ReportMetric(hh.IntrepidLossNH, "intrepid_hh33_loss_node_hours")
		b.ReportMetric(hh.EurekaLossNH, "eureka_hh33_loss_node_hours")
		if a, _ := s.Fig10Table(); len(a.Rows) != 10 {
			b.Fatal("fig10 table incomplete")
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// ablationCell runs one HH cell at Eureka util 0.50 with the given config
// mutation and returns the combined sync minutes and loss node-hours.
func ablationCell(b *testing.B, mutate func(*cosched.Config)) (syncMin, lossNH, waitMin float64) {
	b.Helper()
	cfg := benchConfig()
	intr, err := workload.Generate(func() workload.Spec {
		s := workload.IntrepidSpec(11)
		s.Jobs = int(float64(s.Jobs) * benchFactor)
		return s
	}())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := workload.ScaleToUtilization(intr, experiments.IntrepidNodes, cfg.IntrepidUtil); err != nil {
		b.Fatal(err)
	}
	spec := workload.EurekaSpec(12)
	spec.Jobs = int(float64(spec.Jobs) * benchFactor)
	eur, err := workload.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := workload.ScaleToUtilization(eur, experiments.EurekaNodes, 0.5); err != nil {
		b.Fatal(err)
	}
	workload.PairNearest(workload.NewRNG(13),
		workload.Eligible(intr, experiments.MaxPairedIntrepidNodes),
		workload.Eligible(eur, experiments.MaxPairedEurekaNodes),
		"intrepid", "eureka", len(intr)/10, 2*sim.Hour)

	cc := cosched.DefaultConfig(cosched.Hold)
	mutate(&cc)
	s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
		{Name: "intrepid", Nodes: experiments.IntrepidNodes, Backfilling: true, Cosched: cc, Trace: intr},
		{Name: "eureka", Nodes: experiments.EurekaNodes, Backfilling: true, Cosched: cc, Trace: eur},
	}})
	if err != nil {
		b.Fatal(err)
	}
	res := s.Run()
	if res.CoStartViolations != 0 {
		b.Fatalf("%d co-start violations", res.CoStartViolations)
	}
	ri := res.Reports["intrepid"]
	re := res.Reports["eureka"]
	return ri.PairedSync.Mean + re.PairedSync.Mean, ri.LostNodeHours + re.LostNodeHours, ri.Wait.Mean
}

// BenchmarkAblationReleaseInterval sweeps the deadlock-breaking release
// period: shorter intervals trade hold efficiency for liveness.
func BenchmarkAblationReleaseInterval(b *testing.B) {
	for _, minutes := range []int64{5, 10, 20, 40, 80} {
		b.Run(fmt.Sprintf("%dmin", minutes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sync, loss, _ := ablationCell(b, func(c *cosched.Config) {
					c.ReleaseInterval = sim.Duration(minutes) * sim.Minute
				})
				b.ReportMetric(sync, "sync_min")
				b.ReportMetric(loss, "loss_node_hours")
			}
		})
	}
}

// BenchmarkAblationHeldFraction sweeps the §IV-E2 held-nodes cap.
func BenchmarkAblationHeldFraction(b *testing.B) {
	for _, frac := range []float64{0.1, 0.2, 0.5, 1.0} {
		b.Run(fmt.Sprintf("cap%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sync, loss, _ := ablationCell(b, func(c *cosched.Config) {
					c.MaxHeldFraction = frac
				})
				b.ReportMetric(sync, "sync_min")
				b.ReportMetric(loss, "loss_node_hours")
			}
		})
	}
}

// BenchmarkAblationYieldEscalation compares plain yield against the two
// §IV-E2 anti-starvation options: max-yields-then-hold and per-yield
// priority boost.
func BenchmarkAblationYieldEscalation(b *testing.B) {
	variants := []struct {
		name   string
		mutate func(*cosched.Config)
	}{
		{"plain_yield", func(c *cosched.Config) { c.Scheme = cosched.Yield }},
		{"max_yields_3", func(c *cosched.Config) { c.Scheme = cosched.Yield; c.MaxYields = 3 }},
		{"yield_boost", func(c *cosched.Config) { c.Scheme = cosched.Yield; c.YieldBoost = true }},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sync, loss, _ := ablationCell(b, v.mutate)
				b.ReportMetric(sync, "sync_min")
				b.ReportMetric(loss, "loss_node_hours")
			}
		})
	}
}

// BenchmarkAblationBackfill compares the three planner modes — no
// backfill, EASY (the paper's setting), and conservative — on the Intrepid
// baseline.
func BenchmarkAblationBackfill(b *testing.B) {
	run := func(b *testing.B, backfilling bool, mode string) {
		intr, err := workload.Generate(func() workload.Spec {
			s := workload.IntrepidSpec(21)
			s.Jobs = int(float64(s.Jobs) * benchFactor)
			return s
		}())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.ScaleToUtilization(intr, experiments.IntrepidNodes, 0.68); err != nil {
			b.Fatal(err)
		}
		s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
			{Name: "intrepid", Nodes: experiments.IntrepidNodes,
				Backfilling: backfilling, BackfillMode: mode, Trace: intr},
		}})
		if err != nil {
			b.Fatal(err)
		}
		res := s.Run()
		if res.StuckJobs != 0 {
			b.Fatal("stuck jobs")
		}
		b.ReportMetric(res.Reports["intrepid"].Wait.Mean, "wait_min")
	}
	b.Run("easy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true, "easy")
		}
	})
	b.Run("conservative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true, "conservative")
		}
	})
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, false, "")
		}
	})
}

// BenchmarkProtoOverhead compares direct in-process peer wiring against
// the full length-prefixed JSON protocol over a pipe for an identical
// coupled simulation.
func BenchmarkProtoOverhead(b *testing.B) {
	run := func(b *testing.B, wire bool) {
		spec := workload.EurekaSpec(31)
		spec.Jobs = 400
		a, err := workload.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		spec.Seed = 32
		bb, err := workload.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		workload.PairNearest(workload.NewRNG(33), a, bb, "A", "B", 100, 2*sim.Hour)
		s, err := coupled.New(coupled.Options{
			Domains: []coupled.DomainConfig{
				{Name: "A", Nodes: 100, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a},
				{Name: "B", Nodes: 100, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Yield), Trace: bb},
			},
			UseWireProtocol: wire,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res := s.Run(); res.CoStartViolations != 0 {
			b.Fatal("co-start violations")
		}
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, false)
		}
	})
	b.Run("wire", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, true)
		}
	})
}

// BenchmarkBaselineCoReservation regenerates the §III comparison: the
// advance co-reservation baseline against coscheduling on the same paired
// workload. The reported metrics carry the paper's argument — reservations
// co-start pairs but fragment the machines.
func BenchmarkBaselineCoReservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunReservationComparison(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		coschedRow := c.Row("cosched(HY)")
		reserveRow := c.Row("co-reservation")
		if coschedRow == nil || reserveRow == nil {
			b.Fatal("comparison rows missing")
		}
		b.ReportMetric(coschedRow.IntrepidWait, "cosched_wait_min")
		b.ReportMetric(reserveRow.IntrepidWait, "reservation_wait_min")
		b.ReportMetric(reserveRow.PairSync, "reservation_lead_min")
		if reserveRow.CoStartViolations != 0 {
			b.Fatal("co-reservation violated co-start")
		}
	}
}

// BenchmarkNWayExtension regenerates the §VI future-work study: co-start
// group widths 2–4 across four heterogeneous domains.
func BenchmarkNWayExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunNWaySweep(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range s.Rows {
			if r.GroupStartSpread != 0 || r.CoStartViolations != 0 {
				b.Fatalf("width %d/%s: spread=%g viol=%d",
					r.Width, r.Scheme, r.GroupStartSpread, r.CoStartViolations)
			}
		}
		last := s.Rows[len(s.Rows)-1]
		b.ReportMetric(last.GroupSync, "width4_sync_min")
	}
}

// BenchmarkAblationRuntimePrediction compares walltime-based backfill
// planning against Tsafrir-style user-average runtime prediction (the
// paper's [31]) on the Intrepid baseline.
func BenchmarkAblationRuntimePrediction(b *testing.B) {
	run := func(b *testing.B, estimator string) {
		intr, err := workload.Generate(func() workload.Spec {
			s := workload.IntrepidSpec(61)
			s.Jobs = int(float64(s.Jobs) * benchFactor * 3)
			return s
		}())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.ScaleToUtilization(intr, experiments.IntrepidNodes, 0.72); err != nil {
			b.Fatal(err)
		}
		s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
			{Name: "intrepid", Nodes: experiments.IntrepidNodes, Backfilling: true,
				Estimator: estimator, Trace: intr},
		}})
		if err != nil {
			b.Fatal(err)
		}
		res := s.Run()
		if res.StuckJobs != 0 {
			b.Fatal("stuck jobs")
		}
		rep := res.Reports["intrepid"]
		b.ReportMetric(rep.Wait.Mean, "wait_min")
		b.ReportMetric(rep.Slowdown.Mean, "slowdown")
	}
	b.Run("walltime", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, "walltime")
		}
	})
	b.Run("user_average", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, "user-average")
		}
	})
}

// ---------------------------------------------------------------------------
// Kernel micro-benchmarks.

// BenchmarkEngineEventThroughput measures raw event scheduling/dispatch.
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(sim.Duration(i%1000), sim.PriorityDefault, func(sim.Time) {})
		if i%1024 == 1023 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
}

// TestEngineEventThroughputZeroAlloc asserts the free-list property on the
// benchmark itself: with event structs recycled, the throughput loop must
// run at 0 allocs/op (the pool warms once, then every schedule reuses a
// fired event). This is the regression gate for the old 1 alloc / 48 B
// per event recorded in BENCH_parallel.json.
func TestEngineEventThroughputZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed assertion; skipped in -short")
	}
	r := testing.Benchmark(BenchmarkEngineEventThroughput)
	if r.N > 1024 && r.AllocsPerOp() != 0 {
		t.Fatalf("engine event throughput allocates %d/op (%d B/op), want 0 — event free list regressed",
			r.AllocsPerOp(), r.AllocedBytesPerOp())
	}
}

// BenchmarkPolicyOrder measures queue ordering at a saturation-sized
// queue: the allocating package-level Order against a reused Orderer (the
// resource manager keeps one per domain, so "reused" is the hot path).
func BenchmarkPolicyOrder(b *testing.B) {
	rng := workload.NewRNG(41)
	q := make([]*job.Job, 4096)
	for i := range q {
		q[i] = job.New(job.ID(i+1), rng.Intn(1024)+1, sim.Time(rng.Intn(86400)),
			sim.Duration(rng.Intn(7200)+60), sim.Duration(rng.Intn(7200)+3600))
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			policy.Order(policy.WFP{}, q, sim.Time(i), nil)
		}
	})
	b.Run("reused", func(b *testing.B) {
		var o policy.Orderer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.Order(policy.WFP{}, q, sim.Time(i), nil)
		}
	})
}

// BenchmarkSingleDomainMonth measures end-to-end simulation throughput for
// one month of the full-scale Intrepid workload (9,219 jobs).
func BenchmarkSingleDomainMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		intr, err := workload.Generate(workload.IntrepidSpec(51))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.ScaleToUtilization(intr, experiments.IntrepidNodes, 0.68); err != nil {
			b.Fatal(err)
		}
		s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
			{Name: "intrepid", Nodes: experiments.IntrepidNodes, Backfilling: true, Trace: intr},
		}})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if res := s.Run(); res.StuckJobs != 0 {
			b.Fatal("stuck jobs")
		}
	}
}

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(workload.IntrepidSpec(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

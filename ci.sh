#!/bin/sh
# ci.sh — the full gate, cheapest checks first so the common failures
# surface in seconds, not after the race-enabled test pass.
#
# The race-enabled test run covers the parallel sweep pool (cells fan out
# across goroutines) and the memoized benchmark caches; the bench pass is
# a 1-iteration smoke of every figure reproduction.
set -eux

# Formatting and static analysis: gofmt must be clean, vet runs under both
# tag sets (the debug-only assert files are code too), and simlint
# enforces the repo's determinism and scheduling contracts (R1–R9; see
# ARCHITECTURE.md §6) before anything slower runs — under both tag sets
# too, since the interprocedural rules (R7–R9) cover the protocol and
# journal code that the debug-only files exercise. The -json run gates
# that the machine-readable output stays parseable (the CLI re-decodes
# its own output before printing) and leaves the findings inventory
# behind as a build artifact for run-to-run diffing.
test -z "$(gofmt -l .)"
go vet ./...
go vet -tags debug ./...
go build ./...
go run ./cmd/simlint ./...
go run ./cmd/simlint -tags debug ./...
go run ./cmd/simlint -json ./... > /tmp/ci_simlint.json

# The lint package's own suite (golden rule fixtures, interprocedural
# summaries, repo self-check, JSON round-trip) under -race: the engine
# type-checks and runs rules across GOMAXPROCS workers.
go test -race -count=1 ./internal/lint

go test -race ./...
go test -run=NONE -bench=Fig -benchtime=1x .

# Scheduler-core gate: the reference and incremental cores must stay
# byte-identical. The differential sweep tests rerun under -race (cells fan
# out across goroutines) with full invariant auditing, the smoke drives one
# Iterate per benchmark cell on both cores and a tiny differential load
# sweep (fails on any table mismatch), and the bench pass is a 1-iteration
# smoke of BenchmarkIterate.
go test -race -run 'SchedCoreDifferential' ./internal/experiments ./internal/coupled
go run ./cmd/experiments -schedsmoke -factor 0.05 -reps 1
go test -run=NONE -bench=Iterate -benchtime=1x ./internal/resmgr

# Protocol-resilience gate: the peer-link breaker/backoff machinery, the
# proto client/server/fault-injector, and the live chaos harness are the
# repo's most concurrency-heavy code (links are hammered from scheduler,
# probe, and status threads at once). -count=2 reruns them uncached so
# goroutine-interleaving flakes can't hide behind a cached pass.
go test -race -count=2 ./internal/proto ./internal/peerlink ./internal/live

# Crash-recovery gate: the acceptance test SIGKILLs a live daemon
# mid-run, restarts it on the same journal, and verifies co-starts from
# the event logs; the drain test checks the SIGTERM peer notification.
# Real processes and real sockets make these the most timing-sensitive
# tests in the repo, so -count=2 under -race reruns them uncached.
go test -race -count=2 -run 'Crash|Drain|Flag' ./cmd/coschedd

# Journal fuzz smoke: ten seconds of coverage-guided torn-tail inputs
# against the WAL decoder, seeded from testdata/fuzz. The decoder must
# never panic and never return a record that fails its checksum or
# sequence check, whatever bytes a crash left behind.
go test -run '^$' -fuzz 'FuzzDecodeEntries' -fuzztime 10s ./internal/journal

# Debug-build hardening: the backfill sortedness asserts and the
# invariant package's fail-fast deadlock monitor only compile under
# -tags debug; run their suites together with the asserts live.
go test -tags debug ./internal/invariant ./internal/backfill

# Distributed-sweep gate: the coordinator/worker protocol (heartbeats,
# failure detection, deterministic re-dispatch) reruns under -race, the
# SIGKILL acceptance test kills a real worker process mid-sweep and
# byte-compares the merged tables against serial, and the smoke runs a
# tiny load sweep across two spawned worker processes and fails on any
# table mismatch against the in-process run. The streaming-ingestion
# differentials (SubmitTraceStream vs SubmitTrace, AnalyzeStream vs
# Analyze, traceinfo render-twice) ride in the main -race pass above.
go test -race -count=2 ./internal/distsweep
go test -race -run 'WorkerSIGKILLMidSweep' ./cmd/experiments
go run ./cmd/experiments -distsmoke -factor 0.05 -reps 1

# Memory-architecture perf smoke: a downsized -megabench cell (100k
# Intrepid jobs instead of the full million) through the same
# snapshot/arena/free-list path — it fails on non-byte-identical tables
# at 1 vs 8 workers, stuck jobs, or peak RSS over the 2 GiB budget — plus
# the steady-state zero-alloc assertions (engine event churn and the EASY
# planner must report 0 allocs/op) and one uncached run of the scheduler
# throughput benchmarks as profiling artifacts. Throughput itself is NOT
# gated here: shared CI machines make wall-clock assertions flaky; the
# recorded numbers live in BENCH_parallel.json / BENCH_mega.json.
# (-pprof leaves cpu/alloc profiles of the gate run behind as build
# artifacts for regression hunts.)
go run ./cmd/experiments -pprof /tmp/ci_pprof -megabench /tmp/ci_mega.json -megajobs 100000
go test -run 'ZeroAlloc|WithoutAllocating' -count=1 \
    . ./internal/sim ./internal/arena ./internal/backfill ./internal/workload
go test -run=NONE -bench 'EngineEventThroughput' -benchtime=100x -count=1 .

# Benchmark-methodology gate. A fresh -quick suite run proves the
# harness end to end (all five families execute, the written record
# self-validates its schema); its wall-clock numbers are NOT compared to
# the committed baseline — shared CI machines make that flaky, the same
# policy as the megabench smoke above. The gate logic itself is then
# exercised deterministically: the committed baseline vs itself must
# pass, and vs a synthetic 1.5x slowdown (-benchinject scales the
# samples, no timing involved) must fail with a regression verdict —
# proving the effect-size gate actually trips before we trust it to
# guard real runs. (`! cmd` negates the exit status without tripping
# set -e.)
go run ./cmd/experiments -benchsuite /tmp/ci_benchsuite.json -quick
go run ./cmd/experiments -benchcompare BENCH_suite.json,BENCH_suite.json
! go run ./cmd/experiments -benchcompare BENCH_suite.json,BENCH_suite.json -benchinject 1.5

# Chaos-campaign gate: 25 deterministic fault-injection campaigns from a
# fixed seed, under -race, across all three seams (journal VFS faults,
# asymmetric peer-link faults, coordinator SIGKILL/resume). Every campaign
# must pass its invariant gates — no stuck jobs, co-start accounting
# consistent with dropped calls, every surviving journal replayable, sweep
# tables byte-identical to the serial oracle — and any failure prints a
# one-line seeded repro. The -chaosinject leg corrupts one resumed table
# cell on purpose and must FAIL, proving the byte-identity gate can trip.
go run -race ./cmd/experiments -chaoscampaign 25 -chaosseed 1
! go run ./cmd/experiments -chaoscampaign 1 -chaosseed 1 -chaosinject

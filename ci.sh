#!/bin/sh
# ci.sh — the full gate, in the order the checks usually fail.
#
# The race-enabled test run covers the parallel sweep pool (cells fan out
# across goroutines) and the memoized benchmark caches; the bench pass is
# a 1-iteration smoke of every figure reproduction.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run=NONE -bench=Fig -benchtime=1x .

#!/bin/sh
# ci.sh — the full gate, in the order the checks usually fail.
#
# The race-enabled test run covers the parallel sweep pool (cells fan out
# across goroutines) and the memoized benchmark caches; the bench pass is
# a 1-iteration smoke of every figure reproduction.
set -eux

go vet ./...
go build ./...
go test -race ./...
go test -run=NONE -bench=Fig -benchtime=1x .

# Scheduler-core gate: the reference and incremental cores must stay
# byte-identical. The differential sweep tests rerun under -race (cells fan
# out across goroutines), the smoke drives one Iterate per benchmark cell on
# both cores and a tiny differential load sweep (fails on any table
# mismatch), and the bench pass is a 1-iteration smoke of BenchmarkIterate.
go test -race -run 'SchedCoreDifferential' ./internal/experiments ./internal/coupled
go run ./cmd/experiments -schedsmoke -factor 0.05 -reps 1
go test -run=NONE -bench=Iterate -benchtime=1x ./internal/resmgr
go test -tags debug ./internal/backfill

// Crash-recovery and graceful-drain acceptance tests: real coschedd
// processes (re-execed test binary), real TCP, real SIGKILL/SIGTERM. The
// invariant under test is the paper's §V-B check carried across a daemon
// crash — every started pair co-starts at one instant, byte-verified from
// the event logs alone.
package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cosched/internal/eventlog"
	"cosched/internal/job"
	"cosched/internal/live"
	"cosched/internal/sim"
)

const (
	helperEnv     = "COSCHEDD_HELPER"
	helperArgsEnv = "COSCHEDD_ARGS"
)

// TestMain doubles as the daemon entry point: when re-execed with
// COSCHEDD_HELPER=1 the test binary runs a real coschedd instead of the
// test suite, so the crash tests exercise the exact runDaemon path.
func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "1" {
		args := strings.Split(os.Getenv(helperArgsEnv), "\x1f")
		cfg, err := parseFlags(args, os.Stderr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "coschedd helper: %v\n", err)
			os.Exit(2)
		}
		if err := runDaemon(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "coschedd helper: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one spawned coschedd process.
type daemon struct {
	cmd  *exec.Cmd
	done chan error
}

func startDaemon(t *testing.T, args []string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		helperEnv+"=1", helperArgsEnv+"="+strings.Join(args, "\x1f"))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	d := &daemon{cmd: cmd, done: make(chan error, 1)}
	go func() { d.done <- cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-d.done:
		default:
			d.cmd.Process.Kill()
			<-d.done
		}
	})
	return d
}

// wait blocks until the process exits, re-buffering the exit status so a
// later wait (the registered cleanup) sees it instead of blocking forever.
func (d *daemon) wait() error {
	err := <-d.done
	d.done <- err
	return err
}

// kill9 is the crash: SIGKILL, no drain, no flush.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	d.wait()
}

// sigterm is the graceful shutdown and must reach a clean exit.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("sigterm: %v", err)
	}
	select {
	case err := <-d.done:
		d.done <- err
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
}

// freeAddr reserves then frees a loopback port. The daemon must rebind the
// same address after a restart, so ":0" inside the daemon would not do.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// dialAdmin connects to a daemon's admin port, waiting for it to come up.
func dialAdmin(t *testing.T, addr string) *live.AdminClient {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		c, err := live.DialAdmin(addr, time.Second)
		if err == nil {
			if _, err = c.Info(); err == nil {
				return c
			}
			c.Close()
		}
		lastErr = err
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("admin %s never came up: %v", addr, lastErr)
	return nil
}

// waitState polls one job until it reaches any of the wanted states.
func waitState(t *testing.T, c *live.AdminClient, id job.ID, want ...string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	last := "(no response)"
	for time.Now().Before(deadline) {
		resp, err := c.Status(id)
		if err != nil {
			last = err.Error()
		} else {
			last = resp.State
			for _, w := range want {
				if resp.State == w {
					return
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %v (last: %s)", id, want, last)
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// readLogs concatenates event logs tolerantly (a SIGKILL may tear a line).
func readLogs(t *testing.T, paths ...string) []eventlog.Record {
	t.Helper()
	var out []eventlog.Record
	for _, p := range paths {
		f, err := os.Open(p)
		must(t, err)
		recs, _, err := eventlog.ReadTolerant(f)
		f.Close()
		must(t, err)
		out = append(out, recs...)
	}
	return out
}

// pairJobs builds the two halves of one A↔B coupled pair.
func pairJobs(id job.ID, nodes int, runtime sim.Duration) (a, b live.WireJob) {
	a = live.WireJob{
		ID: id, Nodes: nodes, Runtime: runtime, Walltime: 2 * runtime,
		Mates: []job.MateRef{{Domain: "B", Job: id}},
	}
	b = a
	b.Mates = []job.MateRef{{Domain: "A", Job: id}}
	return a, b
}

// TestCrashRecoveryAcceptance is the PR's acceptance scenario: a live
// coupled run where one daemon is SIGKILLed mid-flight with a completed
// pair, a restored hold, and a running job on the books; restarted on the
// same journal, it must recover all three, reconcile with its mate over
// the wire, co-start the pending pair, and leave event logs whose
// co-starts verify byte-exactly.
func TestCrashRecoveryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns live daemons")
	}
	tmp := t.TempDir()
	aPeer, aAdmin := freeAddr(t), freeAddr(t)
	bPeer, bAdmin := freeAddr(t), freeAddr(t)
	aLog := filepath.Join(tmp, "a.log")
	bLog := filepath.Join(tmp, "b.log")
	common := []string{
		"-nodes", "32", "-policy", "fcfs", "-scheme", "hold",
		"-release-minutes", "120", "-speedup", "200",
		"-journal-fsync", "0s", "-snapshot-every", "4",
	}
	aArgs := append([]string{
		"-name", "A", "-listen", aPeer, "-admin", aAdmin, "-peer", "B=" + bPeer,
		"-journal-dir", filepath.Join(tmp, "ja"), "-log", aLog,
	}, common...)
	bArgs := append([]string{
		"-name", "B", "-listen", bPeer, "-admin", bAdmin, "-peer", "A=" + aPeer,
		"-journal-dir", filepath.Join(tmp, "jb"), "-log", bLog,
	}, common...)

	da := startDaemon(t, aArgs)
	db := startDaemon(t, bArgs)
	ca := dialAdmin(t, aAdmin)
	cb := dialAdmin(t, bAdmin)

	// Pair 1 co-starts and completes before the crash. Submissions are
	// sequenced (A's half holds before B's arrives) so exactly one side
	// resolves the co-start — simultaneous submissions would have both
	// daemons coordinating against each other's busy scheduler.
	w1a, w1b := pairJobs(1, 8, 30)
	must(t, ca.Expect(w1a))
	must(t, cb.Expect(w1b))
	must(t, ca.Submit(w1a))
	waitState(t, ca, 1, "holding")
	must(t, cb.Submit(w1b))
	waitState(t, ca, 1, "completed")
	waitState(t, cb, 1, "completed")

	// Pair 2: only A's half is submitted, so A holds nodes for a mate that
	// is still expected on B. The hold must survive the crash.
	w2a, w2b := pairJobs(2, 8, 30)
	must(t, ca.Expect(w2a))
	must(t, cb.Expect(w2b))
	must(t, ca.Submit(w2a))
	waitState(t, ca, 2, "holding")

	// An unpaired filler keeps running through the crash.
	must(t, ca.Submit(live.WireJob{ID: 5, Nodes: 4, Runtime: 3600, Walltime: 7200}))
	waitState(t, ca, 5, "running")

	// Crash A hard and restart it on the same journal, log, and ports.
	ca.Close()
	da.kill9(t)
	da2 := startDaemon(t, aArgs)
	ca = dialAdmin(t, aAdmin)

	// Recovered books: pair 1 completed, the pair-2 hold kept (B's half is
	// still only expected, so reconciliation must not release it), filler
	// still running.
	waitState(t, ca, 1, "completed")
	waitState(t, ca, 2, "holding")
	waitState(t, ca, 5, "running")

	// B's half of pair 2 arrives; the restored hold co-starts with it over
	// the live protocol.
	must(t, cb.Submit(w2b))
	waitState(t, ca, 2, "running", "completed")
	waitState(t, cb, 2, "running", "completed")
	waitState(t, ca, 2, "completed")
	waitState(t, cb, 2, "completed")

	// Graceful shutdown of the restarted A and the original B, then verify
	// the whole run — crash included — from the logs alone.
	ca.Close()
	cb.Close()
	da2.sigterm(t)
	db.sigterm(t)

	recs := readLogs(t, aLog, bLog)
	if v := eventlog.VerifyCoStarts(recs); len(v) != 0 {
		t.Fatalf("co-start violations after crash recovery: %v", v)
	}
	stats := eventlog.Summarize(recs)
	if stats.Recoveries == 0 {
		t.Fatal("no recovery milestone in the event logs")
	}
	// The byte-exact check, spelled out: both start records of pair 2
	// carry one identical instant even though one side crashed in between.
	starts := map[string]sim.Time{}
	for _, r := range recs {
		if r.Kind == eventlog.KindStart && r.JobID == 2 {
			starts[r.Domain] = r.Time
		}
	}
	if len(starts) != 2 || starts["A"] != starts["B"] {
		t.Fatalf("pair 2 start instants not byte-identical: %v", starts)
	}
}

// TestGracefulDrainNotifiesPeers checks satellite behavior of the SIGTERM
// path: a draining daemon tells each peer its paired jobs are now
// status-unknown, so a remote hold waiting on one of them is released
// immediately (and, with the departed daemon unreachable, started normally
// under the paper's fault tolerance) instead of waiting out a release
// interval that is switched off here.
func TestGracefulDrainNotifiesPeers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns live daemons")
	}
	tmp := t.TempDir()
	aPeer, aAdmin := freeAddr(t), freeAddr(t)
	bPeer, bAdmin := freeAddr(t), freeAddr(t)
	bLog := filepath.Join(tmp, "b.log")
	common := []string{
		"-nodes", "32", "-policy", "fcfs", "-scheme", "hold",
		"-release-minutes", "0", "-speedup", "200",
	}
	aArgs := append([]string{
		"-name", "A", "-listen", aPeer, "-admin", aAdmin, "-peer", "B=" + bPeer,
		"-journal-dir", filepath.Join(tmp, "ja"), "-journal-fsync", "0s",
	}, common...)
	bArgs := append([]string{
		"-name", "B", "-listen", bPeer, "-admin", bAdmin, "-peer", "A=" + aPeer,
		"-log", bLog,
	}, common...)

	da := startDaemon(t, aArgs)
	db := startDaemon(t, bArgs)
	ca := dialAdmin(t, aAdmin)
	cb := dialAdmin(t, bAdmin)

	// B holds for A's half, which is expected but never submitted. With the
	// release scan off, only the drain notification can free this hold.
	w1a, w1b := pairJobs(1, 8, 60)
	must(t, ca.Expect(w1a))
	must(t, cb.Expect(w1b))
	must(t, cb.Submit(w1b))
	waitState(t, cb, 1, "holding")

	ca.Close()
	da.sigterm(t)

	waitState(t, cb, 1, "running", "completed")

	cb.Close()
	db.sigterm(t)

	recs := readLogs(t, bLog)
	released := false
	for _, r := range recs {
		if r.Domain == "B" && r.Kind == eventlog.KindRelease && r.JobID == 1 {
			released = true
		}
	}
	if !released {
		t.Fatal("no release record for B/1: the drain notification never reached the peer")
	}
}

// The daemon run path: build the manager, recover from the journal if one
// exists, serve the peer/admin/status interfaces, reconcile mates after a
// restart, and drain gracefully on SIGTERM.
package main

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/eventlog"
	"cosched/internal/invariant"
	"cosched/internal/journal"
	"cosched/internal/live"
	"cosched/internal/peerlink"
	"cosched/internal/policy"
	"cosched/internal/proto"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// reconcileRetry is how long a restarted daemon waits before retrying a
// failed mate-reconciliation exchange with a peer.
const reconcileRetry = 2 * time.Second

// runDaemon runs one coschedd process until SIGINT/SIGTERM, then drains.
func runDaemon(cfg *daemonConfig) error {
	logger := log.New(os.Stderr, fmt.Sprintf("[%s] ", cfg.name), log.LstdFlags)

	sch, err := cosched.ParseScheme(cfg.scheme)
	if err != nil {
		return err
	}
	pol, ok := policy.ByName(cfg.polName)
	if !ok {
		return fmt.Errorf("unknown policy %q", cfg.polName)
	}

	var pool *cluster.Pool
	if cfg.minPart > 0 {
		pool = cluster.NewPartitioned(cfg.name, cfg.nodes, cfg.minPart)
	} else {
		pool = cluster.New(cfg.name, cfg.nodes)
	}

	obsList := teeObserver{logObserver{logger}}
	var elog *eventlog.Log // nil unless -log is set; also records peer-breaker transitions
	if cfg.logPath != "" {
		lf, err := openEventLog(cfg.logPath)
		if err != nil {
			return fmt.Errorf("event log: %w", err)
		}
		defer lf.Close()
		elog = eventlog.New(lf)
		defer elog.Flush()
		obsList = append(obsList, elog.Observer(cfg.name))
	}

	// The journal store opens — and recovers its contents — before the
	// manager exists; the recorder joins the observer tee so the manager's
	// very first transition is already journaled. Its snapshot source
	// closes over the mgr variable assigned below: observer callbacks only
	// fire from the manager itself, so mgr is always set by then.
	var mgr *resmgr.Manager
	var store *journal.Store
	var rec *journal.Recorder
	var statusSrv *live.StatusServer // assigned below when -status is set

	// degradeJournal is the storage-fault degradation controller: the first
	// time the store poisons (failed fsync, disk full, write error) the
	// daemon abandons the journal — loudly — instead of crashing or silently
	// pretending transitions are durable. Scheduling continues journal-less
	// under the -degraded-max-holds budget, and the status page + /metrics
	// flip to degraded so operators see it immediately.
	var degradeOnce sync.Once
	degradeJournal := func(cause error) {
		degradeOnce.Do(func() {
			budget := "unlimited concurrent holds"
			if cfg.degradedMaxHolds >= 0 {
				budget = fmt.Sprintf("at most %d concurrent hold(s)", cfg.degradedMaxHolds)
			}
			reason := fmt.Sprintf("journal abandoned after storage fault: %v — running journal-less (transitions NOT durable), %s", cause, budget)
			logger.Printf("DEGRADED: %s", reason)
			rec.Detach()
			mgr.SetHoldBudget(cfg.degradedMaxHolds)
			if statusSrv != nil {
				statusSrv.SetDegraded(reason)
			}
		})
	}

	if cfg.journalDir != "" {
		store, err = journal.Open(cfg.journalDir, journal.Options{
			FsyncInterval: cfg.journalFS,
			SnapshotEvery: cfg.snapEvery,
		})
		if err != nil {
			return err
		}
		//simlint:allow R7 crash backstop only: the graceful drain path closes the store with error logging first, and a second Close returns nil
		defer store.Close()
		rec = journal.NewRecorder(store,
			func() journal.Snapshot { return journal.ManagerSnapshot(mgr) },
			func(err error) {
				logger.Printf("journal: %v", err)
				// Poisoning is permanent (a failed fsync may have dropped
				// dirty pages — fsyncgate), so degrade on the first sign
				// rather than logging the same dead store forever.
				if perr := store.Poisoned(); perr != nil {
					degradeJournal(perr)
				}
			})
		obsList = append(obsList, rec)
	}

	eng := sim.NewEngine()
	mgr = resmgr.New(eng, resmgr.Options{
		Name:        cfg.name,
		Pool:        pool,
		Policy:      pol,
		Backfilling: cfg.backfill,
		Cosched: cosched.Config{
			Enabled:         true,
			Scheme:          sch,
			ReleaseInterval: sim.Duration(cfg.releaseMin) * sim.Minute,
			MaxHeldFraction: cfg.maxHeld,
			MaxYields:       cfg.maxYields,
		},
		Observer: obsList,
	})

	recInfo, err := recoverFromJournal(store, mgr, elog, logger)
	if err != nil {
		return err
	}

	driver := live.NewDriver(eng, cfg.speedup)

	// Peer protocol server: remote domains coordinate against our manager.
	peerSrv := proto.NewServer(mgr, driver, logger)
	peerAddr, err := peerSrv.Listen(cfg.listen)
	if err != nil {
		return fmt.Errorf("peer listen: %w", err)
	}
	defer peerSrv.Close()
	logger.Printf("peer protocol on %s", peerAddr)

	// Outbound peers: resilient links (lazy dial, backoff, circuit breaker)
	// so daemons can start in any order and survive peer outages without
	// stalling the scheduler. Iterate in sorted order so jitter seeds — and
	// therefore redial schedules — are reproducible across restarts.
	peerNames := make([]string, 0, len(cfg.peers))
	for pname := range cfg.peers {
		peerNames = append(peerNames, pname)
	}
	sort.Strings(peerNames)
	var links []*peerlink.Link
	for _, pname := range peerNames {
		seed := fnv.New64a()
		fmt.Fprintf(seed, "%s->%s", cfg.name, pname)
		l := peerlink.New(peerlink.Config{
			Name:          pname,
			Addr:          cfg.peers[pname],
			DialTimeout:   cfg.dialTO,
			CallTimeout:   cfg.timeout,
			FailThreshold: cfg.brkFails,
			Cooldown:      cfg.brkCool,
			BackoffBase:   cfg.backoffLo,
			BackoffMax:    cfg.backoffHi,
			Seed:          seed.Sum64(),
			Logger:        logger,
			OnStateChange: func(peer string, from, to peerlink.State, cause error) {
				if elog == nil {
					return
				}
				msg := ""
				if cause != nil {
					msg = cause.Error()
				}
				// The hook fires inside peer calls, which the manager makes
				// under the driver lock — eng.Now() is safe here, while
				// driver.VirtualNow() would deadlock on the same lock.
				elog.PeerTransition(eng.Now(), cfg.name, peer, from.String(), to.String(), msg)
			},
		})
		links = append(links, l)
		defer l.Close()
		mgr.AddPeer(pname, l)
	}

	// Admin interface.
	adminSrv := live.NewAdminServer(mgr, driver, logger)
	adminAddr, err := adminSrv.Listen(cfg.admin)
	if err != nil {
		return fmt.Errorf("admin listen: %w", err)
	}
	defer adminSrv.Close()
	logger.Printf("admin interface on %s", adminAddr)
	logger.Printf("domain %s: %d nodes, scheme=%s, policy=%s, speedup=%.0fx",
		cfg.name, cfg.nodes, sch, pol.Name(), cfg.speedup)

	if cfg.statusAddr != "" {
		statusSrv = live.NewStatusServer(mgr, driver, logger)
		statusSrv.WatchPeers(links...)
		if recInfo != nil {
			statusSrv.SetRecovery(*recInfo)
		}
		if store != nil {
			// Journal durability counters ride the same /metrics scrape as
			// the manager and peer-link series.
			statusSrv.WatchJournal(store.Stats)
		}
		sa, err := statusSrv.Listen(cfg.statusAddr)
		if err != nil {
			return fmt.Errorf("status listen: %w", err)
		}
		defer statusSrv.Close()
		logger.Printf("status page on http://%s/ (metrics on /metrics)", sa)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A recovered daemon reconciles its restored holds with every peer: the
	// crash may have orphaned pairs on either side. Runs beside the driver
	// because each exchange is a peer RPC that must be able to retry while
	// the scheduler keeps serving.
	if recInfo != nil && len(links) > 0 {
		//simlint:allow R4 reconcilePeers only touches the manager inside driver.Do closures, which serialize with the scheduler exactly like the proto server's inbound calls
		go reconcilePeers(ctx, driver, mgr, links, elog, statusSrv, *recInfo, logger)
	}

	driver.Run(ctx)
	logger.Print("shutting down")
	drain(driver, mgr, peerSrv, links, store, elog, logger)
	for _, l := range links {
		s := l.Snapshot()
		logger.Printf("peer %s: state=%s calls=%d ok=%d remote=%d transport=%d fastfail=%d retries=%d dials=%d trips=%d",
			s.Name, s.State, s.Calls, s.Successes, s.RemoteErrors, s.TransportErrors,
			s.FastFails, s.Retries, s.Dials, s.Trips)
	}
	return nil
}

// openEventLog opens path for appending, healing a torn final line first: a
// daemon killed mid-write leaves a partial JSON line, and appending new
// records straight onto it would corrupt the first post-restart record too.
// A newline boundary confines the damage to the torn line itself, which
// eventlog.ReadTolerant skips.
func openEventLog(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if n := st.Size(); n > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, n-1); err != nil {
			f.Close()
			return nil, err
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return f, nil
}

// recoverFromJournal rebuilds the manager from what the store's Open pass
// found: replay the snapshot + WAL tail into final job states, re-install
// them, check the recovery invariants, re-emit the restored lifecycle into
// the event log (whose buffered tail died with the crash), and compact the
// journal to a fresh baseline so the next boot starts from one snapshot.
// Returns nil when there was nothing to recover (fresh start or no journal).
func recoverFromJournal(store *journal.Store, mgr *resmgr.Manager, elog *eventlog.Log, logger *log.Logger) (*live.RecoveryInfo, error) {
	if store == nil {
		return nil, nil
	}
	snap, entries := store.Recovered()
	if snap == nil && len(entries) == 0 {
		return nil, nil
	}
	if torn := store.Torn(); torn != nil {
		logger.Printf("journal: %v", torn)
	}
	st, err := journal.Replay(snap, entries)
	if err != nil {
		return nil, err
	}
	stats, err := journal.Restore(mgr, st)
	if err != nil {
		return nil, err
	}
	for _, v := range invariant.VerifyRecovery(mgr, st.Jobs) {
		logger.Printf("RECOVERY INVARIANT VIOLATION: %s", v)
	}
	detail := fmt.Sprintf("recovered at t=%d: snapshot seq %d + %d entries, %d jobs (%s)",
		st.T, st.SnapshotSeq, st.Entries, stats.Total(), stats)
	logger.Print(detail)
	if elog != nil {
		journal.ReemitLifecycle(elog.Observer(mgr.Name()), st.Jobs)
		elog.Recovery(st.T, mgr.Name(), detail)
	}
	// Fold the recovered state into one fresh snapshot so the next restart
	// replays from here, not from the whole pre-crash history.
	if err := store.Compact(journal.ManagerSnapshot(mgr)); err != nil {
		return nil, err
	}
	info := &live.RecoveryInfo{
		At:       st.T,
		Snapshot: st.SnapshotSeq,
		Entries:  st.Entries,
		Restored: stats.Total(),
	}
	if torn := store.Torn(); torn != nil {
		info.Torn = torn.Error()
	}
	return info, nil
}

// reconcilePeers drives the caller side of the post-restart mate
// reconciliation handshake against every peer, retrying per peer until the
// exchange succeeds or the daemon stops. Each outcome is logged, journaled
// as a recovery milestone, and published to the status page.
func reconcilePeers(ctx context.Context, driver *live.Driver, mgr *resmgr.Manager,
	links []*peerlink.Link, elog *eventlog.Log, statusSrv *live.StatusServer,
	base live.RecoveryInfo, logger *log.Logger) {
	var done []string
	for _, l := range links {
		for {
			var rep resmgr.ReconcileReport
			var err error
			driver.Do(func() { rep, err = mgr.ReconcileWith(l.PeerName(), l) })
			if err == nil {
				detail := fmt.Sprintf("reconciled with %s: sent=%d co_starts=%d adopted=%d released=%d kept=%d",
					rep.Peer, rep.Sent, rep.CoStarts, rep.Adopted, rep.Released, rep.Kept)
				logger.Print(detail)
				if elog != nil {
					elog.Recovery(driver.VirtualNow(), mgr.Name(), detail)
				}
				done = append(done, detail)
				if statusSrv != nil {
					info := base
					info.Reconcile = strings.Join(done, "; ")
					info.Reconciled = len(done)
					statusSrv.SetRecovery(info)
				}
				break
			}
			logger.Printf("reconcile with %s: %v (retrying in %v)", l.PeerName(), err, reconcileRetry)
			select {
			case <-ctx.Done():
				return
			case <-time.After(reconcileRetry):
			}
		}
	}
}

// drain is the graceful-shutdown path. Ordering matters:
//
//  1. the peer server closes first, so no inbound peer call can create a
//     new hold on our side while we are announcing our departure;
//  2. every peer is told (best effort) that our paired jobs are now
//     status-unknown, so a remote holder waiting on one of them releases
//     immediately instead of waiting out its release interval against a
//     dead daemon;
//  3. the journal syncs and closes, making every transition durable before
//     the process exits.
//
// The event log flushes via its deferred Flush after this returns.
func drain(driver *live.Driver, mgr *resmgr.Manager, peerSrv *proto.Server,
	links []*peerlink.Link, store *journal.Store, elog *eventlog.Log, logger *log.Logger) {
	peerSrv.Close()
	var views map[string][]cosched.MateView
	driver.Do(func() { views = mgr.DrainViews() })
	for _, l := range links {
		vs, ok := views[l.PeerName()]
		if !ok {
			continue
		}
		if _, err := l.ReconcileMates(mgr.Name(), vs); err != nil {
			logger.Printf("drain: notify %s: %v", l.PeerName(), err)
			continue
		}
		logger.Printf("drain: notified %s about %d in-flight pair view(s)", l.PeerName(), len(vs))
	}
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Printf("drain: journal close: %v", err)
		}
	}
	if elog != nil {
		if err := elog.Flush(); err != nil {
			logger.Printf("drain: event log flush: %v", err)
		}
	}
}

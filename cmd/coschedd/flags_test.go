package main

import (
	"io"
	"strings"
	"testing"
	"time"
)

func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the error; "" means the args must parse
	}{
		{"defaults", nil, ""},
		{"journal flags", []string{"-journal-dir", "j", "-journal-fsync", "25ms", "-snapshot-every", "64"}, ""},
		{"release off", []string{"-release-minutes", "0"}, ""},
		{"zero dial timeout", []string{"-peer-dial-timeout", "0s"}, "-peer-dial-timeout"},
		{"negative dial timeout", []string{"-peer-dial-timeout", "-1s"}, "-peer-dial-timeout"},
		{"zero breaker cooldown", []string{"-peer-breaker-cooldown", "0s"}, "-peer-breaker-cooldown"},
		{"zero breaker fails", []string{"-peer-breaker-fails", "0"}, "-peer-breaker-fails"},
		{"zero backoff base", []string{"-peer-backoff-base", "0s"}, "-peer-backoff-base"},
		{"zero backoff max", []string{"-peer-backoff-max", "0s"}, "-peer-backoff-max"},
		{"backoff ceiling below base", []string{"-peer-backoff-base", "1s", "-peer-backoff-max", "100ms"}, "-peer-backoff-max"},
		{"zero peer timeout", []string{"-peer-timeout", "0s"}, "-peer-timeout"},
		{"negative journal fsync", []string{"-journal-fsync", "-1ms"}, "-journal-fsync"},
		{"zero snapshot cadence", []string{"-snapshot-every", "0"}, "-snapshot-every"},
		{"negative snapshot cadence", []string{"-snapshot-every", "-3"}, "-snapshot-every"},
		{"zero nodes", []string{"-nodes", "0"}, "-nodes"},
		{"negative release interval", []string{"-release-minutes", "-1"}, "-release-minutes"},
		{"zero speedup", []string{"-speedup", "0"}, "-speedup"},
		{"held fraction above one", []string{"-max-held-fraction", "1.5"}, "-max-held-fraction"},
		{"held fraction zero", []string{"-max-held-fraction", "0"}, "-max-held-fraction"},
		{"negative max yields", []string{"-max-yields", "-2"}, "-max-yields"},
		{"empty name", []string{"-name", ""}, "-name"},
		{"malformed peer", []string{"-peer", "nocolon"}, "name=addr"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := parseFlags(tc.args, io.Discard)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("parseFlags(%v): %v", tc.args, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("parseFlags(%v) accepted an invalid configuration: %+v", tc.args, cfg)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("parseFlags(%v) = %q, want mention of %q", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestFlagDefaults(t *testing.T) {
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.journalDir != "" {
		t.Fatalf("journaling should be off by default, got dir %q", cfg.journalDir)
	}
	if cfg.journalFS != 0 {
		t.Fatalf("default journal fsync should be 0 (sync every transition), got %v", cfg.journalFS)
	}
	if cfg.snapEvery != 1024 {
		t.Fatalf("default snapshot cadence = %d, want 1024", cfg.snapEvery)
	}
	if cfg.dialTO != 2*time.Second || cfg.brkCool != 5*time.Second {
		t.Fatalf("peer resilience defaults drifted: dial=%v cooldown=%v", cfg.dialTO, cfg.brkCool)
	}
}

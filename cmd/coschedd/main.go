// Command coschedd runs one scheduling domain as a live daemon: the same
// resource manager the simulator uses, paced against the wall clock,
// serving the coscheduling peer protocol on one TCP port and an admin
// (submit/status) interface on another.
//
// Two daemons coordinate paired jobs exactly as the paper's coupled
// systems do — no global portal, no shared configuration, just the
// lightweight protocol:
//
//	coschedd -name intrepid -nodes 40960 -listen :7001 -admin :7101 \
//	         -peer eureka=localhost:7002 -scheme hold
//	coschedd -name eureka -nodes 100 -listen :7002 -admin :7102 \
//	         -peer intrepid=localhost:7001 -scheme yield
//
// Then submit a pair with cmd/cosubmit. The -speedup flag accelerates
// virtual time for demos (60 = one virtual minute per wall second).
//
// With -journal-dir the daemon is crash-safe: every manager transition is
// written ahead to a checksummed journal, and a restarted daemon replays
// the journal, re-installs its jobs, and reconciles in-flight pairs with
// its peers (see ARCHITECTURE.md §8).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// peerFlags collects repeated -peer name=addr flags.
type peerFlags map[string]string

func (p peerFlags) String() string { return fmt.Sprintf("%v", map[string]string(p)) }

func (p peerFlags) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("want name=addr, got %q", v)
	}
	p[name] = addr
	return nil
}

// daemonConfig is the validated flag set of one coschedd process.
type daemonConfig struct {
	name             string
	nodes            int
	minPart          int
	listen           string
	admin            string
	scheme           string
	releaseMin       int64
	maxHeld          float64
	maxYields        int
	polName          string
	backfill         bool
	speedup          float64
	timeout          time.Duration
	dialTO           time.Duration
	brkFails         int
	brkCool          time.Duration
	backoffLo        time.Duration
	backoffHi        time.Duration
	logPath          string
	statusAddr       string
	journalDir       string
	journalFS        time.Duration
	snapEvery        int
	degradedMaxHolds int
	peers            peerFlags
}

// parseFlags parses and validates a coschedd command line. Usage and error
// text from the flag package goes to usageOut.
func parseFlags(args []string, usageOut io.Writer) (*daemonConfig, error) {
	cfg := &daemonConfig{peers: peerFlags{}}
	fs := flag.NewFlagSet("coschedd", flag.ContinueOnError)
	fs.SetOutput(usageOut)
	fs.StringVar(&cfg.name, "name", "domain", "this domain's name")
	fs.IntVar(&cfg.nodes, "nodes", 64, "node count")
	fs.IntVar(&cfg.minPart, "min-partition", 0, "BG/P-style minimum partition (0 = plain pool)")
	fs.StringVar(&cfg.listen, "listen", ":7001", "peer-protocol listen address")
	fs.StringVar(&cfg.admin, "admin", ":7101", "admin (submit/status) listen address")
	fs.StringVar(&cfg.scheme, "scheme", "hold", "coscheduling scheme: hold or yield")
	fs.Int64Var(&cfg.releaseMin, "release-minutes", 20, "hold release interval in virtual minutes (0 = off)")
	fs.Float64Var(&cfg.maxHeld, "max-held-fraction", 1.0, "max fraction of nodes in hold state")
	fs.IntVar(&cfg.maxYields, "max-yields", 0, "yields before escalating to hold (0 = never)")
	fs.StringVar(&cfg.polName, "policy", "wfp", "queue policy: wfp, fcfs, sjf, largest")
	fs.BoolVar(&cfg.backfill, "backfill", true, "enable EASY backfilling")
	fs.Float64Var(&cfg.speedup, "speedup", 1.0, "virtual seconds per wall second")
	fs.DurationVar(&cfg.timeout, "peer-timeout", 2*time.Second, "per-call peer RPC budget (round trip + one retry)")
	fs.DurationVar(&cfg.dialTO, "peer-dial-timeout", 2*time.Second, "peer TCP connect timeout")
	fs.IntVar(&cfg.brkFails, "peer-breaker-fails", 3, "consecutive transport failures before the peer breaker opens")
	fs.DurationVar(&cfg.brkCool, "peer-breaker-cooldown", 5*time.Second, "how long an open peer breaker waits before probing")
	fs.DurationVar(&cfg.backoffLo, "peer-backoff-base", 50*time.Millisecond, "initial redial backoff (doubles per failure)")
	fs.DurationVar(&cfg.backoffHi, "peer-backoff-max", 10*time.Second, "redial backoff ceiling")
	fs.StringVar(&cfg.logPath, "log", "", "append a JSONL event log to this path (verifiable with cosim -verify-log)")
	fs.StringVar(&cfg.statusAddr, "status", "", "serve an HTML/JSON status page on this address (e.g. :8080)")
	fs.StringVar(&cfg.journalDir, "journal-dir", "", "write-ahead journal directory; enables crash recovery (empty = no journal)")
	fs.DurationVar(&cfg.journalFS, "journal-fsync", 0, "fsync batching interval for the journal (0 = sync every transition)")
	fs.IntVar(&cfg.snapEvery, "snapshot-every", 1024, "journal entries between compacting snapshots")
	fs.IntVar(&cfg.degradedMaxHolds, "degraded-max-holds", 0, "max concurrent holds while running journal-less after a storage fault (-1 = unlimited)")
	fs.Var(cfg.peers, "peer", "remote domain as name=addr (repeatable)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// validate rejects configurations that would misbehave only later — a zero
// dial timeout fails every peer call instantly, a negative fsync interval
// is refused deep inside the journal, a zero backoff spins on a dead peer.
// Failing at startup names the flag instead.
func (c *daemonConfig) validate() error {
	if c.name == "" {
		return fmt.Errorf("-name must not be empty")
	}
	if c.nodes <= 0 {
		return fmt.Errorf("-nodes must be positive, got %d", c.nodes)
	}
	if c.minPart < 0 {
		return fmt.Errorf("-min-partition must be non-negative, got %d", c.minPart)
	}
	if c.releaseMin < 0 {
		return fmt.Errorf("-release-minutes must be non-negative, got %d", c.releaseMin)
	}
	if c.maxHeld <= 0 || c.maxHeld > 1 {
		return fmt.Errorf("-max-held-fraction must be in (0, 1], got %g", c.maxHeld)
	}
	if c.maxYields < 0 {
		return fmt.Errorf("-max-yields must be non-negative, got %d", c.maxYields)
	}
	if c.speedup <= 0 {
		return fmt.Errorf("-speedup must be positive, got %g", c.speedup)
	}
	if c.timeout <= 0 {
		return fmt.Errorf("-peer-timeout must be positive, got %v", c.timeout)
	}
	if c.dialTO <= 0 {
		return fmt.Errorf("-peer-dial-timeout must be positive, got %v", c.dialTO)
	}
	if c.brkFails <= 0 {
		return fmt.Errorf("-peer-breaker-fails must be positive, got %d", c.brkFails)
	}
	if c.brkCool <= 0 {
		return fmt.Errorf("-peer-breaker-cooldown must be positive, got %v", c.brkCool)
	}
	if c.backoffLo <= 0 {
		return fmt.Errorf("-peer-backoff-base must be positive, got %v", c.backoffLo)
	}
	if c.backoffHi <= 0 {
		return fmt.Errorf("-peer-backoff-max must be positive, got %v", c.backoffHi)
	}
	if c.backoffHi < c.backoffLo {
		return fmt.Errorf("-peer-backoff-max (%v) must be at least -peer-backoff-base (%v)",
			c.backoffHi, c.backoffLo)
	}
	if c.journalFS < 0 {
		return fmt.Errorf("-journal-fsync must be non-negative, got %v", c.journalFS)
	}
	if c.snapEvery <= 0 {
		return fmt.Errorf("-snapshot-every must be positive, got %d", c.snapEvery)
	}
	if c.degradedMaxHolds < -1 {
		return fmt.Errorf("-degraded-max-holds must be -1 (unlimited) or non-negative, got %d", c.degradedMaxHolds)
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return
		}
		fmt.Fprintf(os.Stderr, "coschedd: %v\n", err)
		os.Exit(2)
	}
	if err := runDaemon(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "coschedd: %v\n", err)
		os.Exit(1)
	}
}

// logObserver prints job lifecycle events.
type logObserver struct{ l *log.Logger }

func (o logObserver) JobExpected(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d expect job %d (%d nodes)", now, j.ID, j.Nodes)
}
func (o logObserver) JobSubmitted(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d submit %s", now, j)
}
func (o logObserver) JobStarted(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d START job %d (wait %ds, sync %ds)", now, j.ID, j.WaitTime(), j.SyncTime())
}
func (o logObserver) JobCompleted(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d done job %d", now, j.ID)
}
func (o logObserver) JobHeld(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d HOLD job %d (%d nodes) waiting for mate", now, j.ID, j.Nodes)
}
func (o logObserver) JobYielded(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d YIELD job %d (count %d)", now, j.ID, j.YieldCount)
}
func (o logObserver) JobReleased(now sim.Time, j *job.Job, requeued bool) {
	o.l.Printf("t=%d RELEASE job %d (requeued=%v)", now, j.ID, requeued)
}
func (o logObserver) JobCancelled(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d CANCEL job %d", now, j.ID)
}

// teeObserver fans lifecycle events out to several observers, forwarding
// the optional expect/peer-decision extensions to members that implement
// them.
type teeObserver []resmgr.Observer

var (
	_ resmgr.Observer             = (teeObserver)(nil)
	_ resmgr.ExpectObserver       = (teeObserver)(nil)
	_ resmgr.PeerDecisionObserver = (teeObserver)(nil)
)

func (t teeObserver) JobSubmitted(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobSubmitted(now, j)
	}
}

func (t teeObserver) JobStarted(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobStarted(now, j)
	}
}

func (t teeObserver) JobCompleted(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobCompleted(now, j)
	}
}

func (t teeObserver) JobHeld(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobHeld(now, j)
	}
}

func (t teeObserver) JobYielded(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobYielded(now, j)
	}
}

func (t teeObserver) JobReleased(now sim.Time, j *job.Job, requeued bool) {
	for _, o := range t {
		o.JobReleased(now, j, requeued)
	}
}

func (t teeObserver) JobCancelled(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobCancelled(now, j)
	}
}

func (t teeObserver) JobExpected(now sim.Time, j *job.Job) {
	for _, o := range t {
		if eo, ok := o.(resmgr.ExpectObserver); ok {
			eo.JobExpected(now, j)
		}
	}
}

func (t teeObserver) PeerDecision(now sim.Time, method string, id job.ID, ok bool) {
	for _, o := range t {
		if po, is := o.(resmgr.PeerDecisionObserver); is {
			po.PeerDecision(now, method, id, ok)
		}
	}
}

// Command coschedd runs one scheduling domain as a live daemon: the same
// resource manager the simulator uses, paced against the wall clock,
// serving the coscheduling peer protocol on one TCP port and an admin
// (submit/status) interface on another.
//
// Two daemons coordinate paired jobs exactly as the paper's coupled
// systems do — no global portal, no shared configuration, just the
// lightweight protocol:
//
//	coschedd -name intrepid -nodes 40960 -listen :7001 -admin :7101 \
//	         -peer eureka=localhost:7002 -scheme hold
//	coschedd -name eureka -nodes 100 -listen :7002 -admin :7102 \
//	         -peer intrepid=localhost:7001 -scheme yield
//
// Then submit a pair with cmd/cosubmit. The -speedup flag accelerates
// virtual time for demos (60 = one virtual minute per wall second).
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/eventlog"
	"cosched/internal/job"
	"cosched/internal/live"
	"cosched/internal/peerlink"
	"cosched/internal/policy"
	"cosched/internal/proto"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// peerFlags collects repeated -peer name=addr flags.
type peerFlags map[string]string

func (p peerFlags) String() string { return fmt.Sprintf("%v", map[string]string(p)) }

func (p peerFlags) Set(v string) error {
	name, addr, ok := strings.Cut(v, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("want name=addr, got %q", v)
	}
	p[name] = addr
	return nil
}

// logObserver prints job lifecycle events.
type logObserver struct{ l *log.Logger }

func (o logObserver) JobSubmitted(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d submit %s", now, j)
}
func (o logObserver) JobStarted(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d START job %d (wait %ds, sync %ds)", now, j.ID, j.WaitTime(), j.SyncTime())
}
func (o logObserver) JobCompleted(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d done job %d", now, j.ID)
}
func (o logObserver) JobHeld(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d HOLD job %d (%d nodes) waiting for mate", now, j.ID, j.Nodes)
}
func (o logObserver) JobYielded(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d YIELD job %d (count %d)", now, j.ID, j.YieldCount)
}
func (o logObserver) JobReleased(now sim.Time, j *job.Job, requeued bool) {
	o.l.Printf("t=%d RELEASE job %d (requeued=%v)", now, j.ID, requeued)
}
func (o logObserver) JobCancelled(now sim.Time, j *job.Job) {
	o.l.Printf("t=%d CANCEL job %d", now, j.ID)
}

func main() {
	peers := peerFlags{}
	var (
		name       = flag.String("name", "domain", "this domain's name")
		nodes      = flag.Int("nodes", 64, "node count")
		minPart    = flag.Int("min-partition", 0, "BG/P-style minimum partition (0 = plain pool)")
		listen     = flag.String("listen", ":7001", "peer-protocol listen address")
		admin      = flag.String("admin", ":7101", "admin (submit/status) listen address")
		scheme     = flag.String("scheme", "hold", "coscheduling scheme: hold or yield")
		releaseMin = flag.Int64("release-minutes", 20, "hold release interval in virtual minutes (0 = off)")
		maxHeld    = flag.Float64("max-held-fraction", 1.0, "max fraction of nodes in hold state")
		maxYields  = flag.Int("max-yields", 0, "yields before escalating to hold (0 = never)")
		polName    = flag.String("policy", "wfp", "queue policy: wfp, fcfs, sjf, largest")
		backfill   = flag.Bool("backfill", true, "enable EASY backfilling")
		speedup    = flag.Float64("speedup", 1.0, "virtual seconds per wall second")
		timeout    = flag.Duration("peer-timeout", 2*time.Second, "per-call peer RPC budget (round trip + one retry)")
		dialTO     = flag.Duration("peer-dial-timeout", 2*time.Second, "peer TCP connect timeout")
		brkFails   = flag.Int("peer-breaker-fails", 3, "consecutive transport failures before the peer breaker opens")
		brkCool    = flag.Duration("peer-breaker-cooldown", 5*time.Second, "how long an open peer breaker waits before probing")
		backoffLo  = flag.Duration("peer-backoff-base", 50*time.Millisecond, "initial redial backoff (doubles per failure)")
		backoffHi  = flag.Duration("peer-backoff-max", 10*time.Second, "redial backoff ceiling")
		logPath    = flag.String("log", "", "append a JSONL event log to this path (verifiable with cosim -verify-log)")
		statusAddr = flag.String("status", "", "serve an HTML/JSON status page on this address (e.g. :8080)")
	)
	flag.Var(peers, "peer", "remote domain as name=addr (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, fmt.Sprintf("[%s] ", *name), log.LstdFlags)

	sch, err := cosched.ParseScheme(*scheme)
	if err != nil {
		logger.Fatal(err)
	}
	pol, ok := policy.ByName(*polName)
	if !ok {
		logger.Fatalf("unknown policy %q", *polName)
	}

	var pool *cluster.Pool
	if *minPart > 0 {
		pool = cluster.NewPartitioned(*name, *nodes, *minPart)
	} else {
		pool = cluster.New(*name, *nodes)
	}

	var obs resmgr.Observer = logObserver{logger}
	var elog *eventlog.Log // nil unless -log is set; also records peer-breaker transitions
	if *logPath != "" {
		lf, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Fatalf("event log: %v", err)
		}
		defer lf.Close()
		elog = eventlog.New(lf)
		defer elog.Flush()
		obs = teeObserver{logObserver{logger}, elog.Observer(*name)}
	}

	eng := sim.NewEngine()
	mgr := resmgr.New(eng, resmgr.Options{
		Name:        *name,
		Pool:        pool,
		Policy:      pol,
		Backfilling: *backfill,
		Cosched: cosched.Config{
			Enabled:         true,
			Scheme:          sch,
			ReleaseInterval: sim.Duration(*releaseMin) * sim.Minute,
			MaxHeldFraction: *maxHeld,
			MaxYields:       *maxYields,
		},
		Observer: obs,
	})
	driver := live.NewDriver(eng, *speedup)

	// Peer protocol server: remote domains coordinate against our manager.
	peerSrv := proto.NewServer(mgr, driver, logger)
	peerAddr, err := peerSrv.Listen(*listen)
	if err != nil {
		logger.Fatalf("peer listen: %v", err)
	}
	defer peerSrv.Close()
	logger.Printf("peer protocol on %s", peerAddr)

	// Outbound peers: resilient links (lazy dial, backoff, circuit breaker)
	// so daemons can start in any order and survive peer outages without
	// stalling the scheduler. Iterate in sorted order so jitter seeds — and
	// therefore redial schedules — are reproducible across restarts.
	peerNames := make([]string, 0, len(peers))
	for pname := range peers {
		peerNames = append(peerNames, pname)
	}
	sort.Strings(peerNames)
	var links []*peerlink.Link
	for _, pname := range peerNames {
		seed := fnv.New64a()
		fmt.Fprintf(seed, "%s->%s", *name, pname)
		l := peerlink.New(peerlink.Config{
			Name:          pname,
			Addr:          peers[pname],
			DialTimeout:   *dialTO,
			CallTimeout:   *timeout,
			FailThreshold: *brkFails,
			Cooldown:      *brkCool,
			BackoffBase:   *backoffLo,
			BackoffMax:    *backoffHi,
			Seed:          seed.Sum64(),
			Logger:        logger,
			OnStateChange: func(peer string, from, to peerlink.State, cause error) {
				if elog == nil {
					return
				}
				msg := ""
				if cause != nil {
					msg = cause.Error()
				}
				// The hook fires inside peer calls, which the manager makes
				// under the driver lock — eng.Now() is safe here, while
				// driver.VirtualNow() would deadlock on the same lock.
				elog.PeerTransition(eng.Now(), *name, peer, from.String(), to.String(), msg)
			},
		})
		links = append(links, l)
		defer l.Close()
		mgr.AddPeer(pname, l)
	}

	// Admin interface.
	adminSrv := live.NewAdminServer(mgr, driver, logger)
	adminAddr, err := adminSrv.Listen(*admin)
	if err != nil {
		logger.Fatalf("admin listen: %v", err)
	}
	defer adminSrv.Close()
	logger.Printf("admin interface on %s", adminAddr)
	logger.Printf("domain %s: %d nodes, scheme=%s, policy=%s, speedup=%.0fx",
		*name, *nodes, sch, pol.Name(), *speedup)

	if *statusAddr != "" {
		statusSrv := live.NewStatusServer(mgr, driver)
		statusSrv.WatchPeers(links...)
		sa, err := statusSrv.Listen(*statusAddr)
		if err != nil {
			logger.Fatalf("status listen: %v", err)
		}
		defer statusSrv.Close()
		logger.Printf("status page on http://%s/", sa)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	driver.Run(ctx)
	logger.Print("shutting down")
	for _, l := range links {
		s := l.Snapshot()
		logger.Printf("peer %s: state=%s calls=%d ok=%d remote=%d transport=%d fastfail=%d retries=%d dials=%d trips=%d",
			s.Name, s.State, s.Calls, s.Successes, s.RemoteErrors, s.TransportErrors,
			s.FastFails, s.Retries, s.Dials, s.Trips)
	}
}

// teeObserver fans lifecycle events out to several observers.
type teeObserver []resmgr.Observer

func (t teeObserver) JobSubmitted(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobSubmitted(now, j)
	}
}

func (t teeObserver) JobStarted(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobStarted(now, j)
	}
}

func (t teeObserver) JobCompleted(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobCompleted(now, j)
	}
}

func (t teeObserver) JobHeld(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobHeld(now, j)
	}
}

func (t teeObserver) JobYielded(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobYielded(now, j)
	}
}

func (t teeObserver) JobReleased(now sim.Time, j *job.Job, requeued bool) {
	for _, o := range t {
		o.JobReleased(now, j, requeued)
	}
}

func (t teeObserver) JobCancelled(now sim.Time, j *job.Job) {
	for _, o := range t {
		o.JobCancelled(now, j)
	}
}

package main

import "testing"

func TestPeerFlagParsing(t *testing.T) {
	p := peerFlags{}
	if err := p.Set("eureka=localhost:7002"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("lens=10.1.2.3:7003"); err != nil {
		t.Fatal(err)
	}
	if p["eureka"] != "localhost:7002" || p["lens"] != "10.1.2.3:7003" {
		t.Fatalf("peers = %v", p)
	}
	if p.String() == "" {
		t.Fatal("String() empty")
	}
	for _, in := range []string{"", "noequals", "=addr", "name="} {
		if err := p.Set(in); err == nil {
			t.Errorf("Set(%q) accepted", in)
		}
	}
}

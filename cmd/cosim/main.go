// Command cosim runs one coupled-system coscheduling simulation described
// by a JSON configuration file and prints per-domain metrics.
//
// Usage:
//
//	cosim -config sim.json
//	cosim -config sim.json -json        # machine-readable output
//
// Example configuration:
//
//	{
//	  "wire_protocol": false,
//	  "domains": [
//	    {"name": "intrepid", "nodes": 40960, "backfilling": true,
//	     "cosched_enabled": true, "scheme": "hold", "release_minutes": 20,
//	     "synthetic": {"system": "intrepid", "util": 0.68, "seed": 1}},
//	    {"name": "eureka", "nodes": 100, "backfilling": true,
//	     "cosched_enabled": true, "scheme": "yield", "release_minutes": 20,
//	     "synthetic": {"system": "eureka", "util": 0.5, "seed": 2}}
//	  ],
//	  "pairs": [{"domain_a": "intrepid", "domain_b": "eureka", "window_seconds": 120}]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cosched/internal/config"
	"cosched/internal/coupled"
	"cosched/internal/eventlog"
	"cosched/internal/metrics"
	"cosched/internal/probe"
	"cosched/internal/sim"
)

func main() {
	var (
		cfgPath    = flag.String("config", "", "JSON configuration file (required unless -verify-log)")
		asJSON     = flag.Bool("json", false, "emit the result as JSON")
		logPath    = flag.String("log", "", "write a JSONL event log to this path")
		verifyLog  = flag.String("verify-log", "", "verify co-starts in an existing event log and exit")
		seriesPath = flag.String("timeseries", "", "write a CSV time series of per-domain state to this path")
		seriesMin  = flag.Int64("timeseries-minutes", 60, "sampling period for -timeseries, in virtual minutes")
	)
	flag.Parse()
	if *verifyLog != "" {
		verifyLogFile(*verifyLog)
		return
	}
	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "cosim: -config is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := config.Load(*cfgPath)
	if err != nil {
		fatal(err)
	}
	opt, err := f.Build()
	if err != nil {
		fatal(err)
	}
	var elog *eventlog.Log
	if *logPath != "" {
		lf, err := os.Create(*logPath)
		if err != nil {
			fatal(err)
		}
		defer lf.Close()
		elog = eventlog.New(lf)
		defer func() {
			if err := elog.Flush(); err != nil {
				fatal(err)
			}
		}()
		for i := range opt.Domains {
			opt.Domains[i].Observer = elog.Observer(opt.Domains[i].Name)
		}
	}
	s, err := coupled.New(opt)
	if err != nil {
		fatal(err)
	}
	var rec *probe.Recorder
	if *seriesPath != "" {
		domains := make([]string, 0, len(opt.Domains))
		for _, d := range opt.Domains {
			domains = append(domains, d.Name)
		}
		rec, err = probe.Attach(s, domains, sim.Duration(*seriesMin)*sim.Minute)
		if err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	res := s.Run()
	elapsed := time.Since(start)
	if rec != nil {
		sf, err := os.Create(*seriesPath)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteCSV(sf); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("time series (%d samples) written to %s\n%s", rec.Len(), *seriesPath, rec.Summary())
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("simulated %d jobs in %v (virtual makespan %.1f days, %d scheduling iterations)\n",
		res.TotalJobs, elapsed.Round(time.Millisecond),
		float64(res.Makespan)/86400, res.Iterations)
	if res.Deadlocked {
		fmt.Printf("DEADLOCK/STARVATION: %d jobs never completed\n", res.StuckJobs)
	}
	if res.CoStartViolations > 0 {
		fmt.Printf("WARNING: %d co-start violations\n", res.CoStartViolations)
	}
	names := make([]string, 0, len(res.Reports))
	for n := range res.Reports {
		names = append(names, n)
	}
	sort.Strings(names)
	t := metrics.NewTable("per-domain results",
		"domain", "jobs", "done", "avg_wait_min", "avg_slowdown", "avg_sync_min",
		"paired", "holds", "yields", "lost_node_hours", "lost_util_%", "util")
	for _, n := range names {
		r := res.Reports[n]
		t.AddRow(n,
			fmt.Sprintf("%d", r.TotalJobs),
			fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%.1f", r.Wait.Mean),
			fmt.Sprintf("%.2f", r.Slowdown.Mean),
			fmt.Sprintf("%.1f", r.PairedSync.Mean),
			fmt.Sprintf("%d", r.PairedCount),
			fmt.Sprintf("%d", r.Holds),
			fmt.Sprintf("%d", r.Yields),
			fmt.Sprintf("%.0f", r.LostNodeHours),
			fmt.Sprintf("%.2f", 100*r.LostUtilization),
			fmt.Sprintf("%.3f", r.Utilization))
	}
	fmt.Println(t.Render())
}

// verifyLogFile replays an event log and reports co-start violations.
func verifyLogFile(path string) {
	lf, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer lf.Close()
	recs, skipped, err := eventlog.ReadTolerant(lf)
	if err != nil {
		fatal(err)
	}
	stats := eventlog.Summarize(recs)
	fmt.Printf("log: %d records, domains %v, %d submits / %d starts / %d completes, %d holds, %d yields, %d releases\n",
		stats.Records, stats.Domains, stats.Submits, stats.Starts, stats.Completes,
		stats.Holds, stats.Yields, stats.Releases)
	if skipped > 0 {
		fmt.Printf("log damage: %d malformed line(s) skipped (torn tail from a crash is expected; more suggests corruption)\n", skipped)
	}
	if stats.Recoveries > 0 {
		fmt.Printf("recoveries: %d daemon restart milestone(s) in the log\n", stats.Recoveries)
	}
	if stats.PeerTransitions > 0 {
		fmt.Printf("peer links: %d breaker transitions (outages and recoveries interleaved with the run)\n",
			stats.PeerTransitions)
	}
	violations := eventlog.VerifyCoStarts(recs)
	if len(violations) == 0 {
		fmt.Println("CO-START VERIFIED: every started pair started simultaneously")
		return
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION: %s\n", v)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cosim: %v\n", err)
	os.Exit(1)
}

// Command cosubmit submits an associated job pair (or N-way group) to
// running coschedd daemons and waits until every member starts, reporting
// the co-start.
//
// Usage (two daemons from the coschedd example):
//
//	cosubmit -job intrepid=localhost:7101:512:600 \
//	         -job eureka=localhost:7102:4:600 -wait
//
// Each -job flag is domain=adminAddr:nodes:runtimeSeconds. All submitted
// jobs are linked into one co-start group.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cosched/internal/job"
	"cosched/internal/live"
)

// memberSpec is one parsed -job flag.
type memberSpec struct {
	domain  string
	addr    string
	nodes   int
	runtime int64
}

type memberFlags []memberSpec

func (m *memberFlags) String() string { return fmt.Sprintf("%v", []memberSpec(*m)) }

func (m *memberFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want domain=addr:nodes:runtime, got %q", v)
	}
	parts := strings.Split(rest, ":")
	if len(parts) != 4 && len(parts) != 3 {
		return fmt.Errorf("want addr:nodes:runtime after %q=", name)
	}
	// addr may itself contain a colon (host:port): re-join all but the
	// last two segments.
	nodes, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		return fmt.Errorf("bad node count in %q: %w", v, err)
	}
	runtime, err := strconv.ParseInt(parts[len(parts)-1], 10, 64)
	if err != nil {
		return fmt.Errorf("bad runtime in %q: %w", v, err)
	}
	*m = append(*m, memberSpec{
		domain:  name,
		addr:    strings.Join(parts[:len(parts)-2], ":"),
		nodes:   nodes,
		runtime: runtime,
	})
	return nil
}

func main() {
	var members memberFlags
	var (
		id      = flag.Int64("id", time.Now().Unix()%1_000_000, "job ID used on every domain")
		wait    = flag.Bool("wait", false, "poll until every member starts")
		poll    = flag.Duration("poll", 500*time.Millisecond, "status poll interval with -wait")
		timeout = flag.Duration("timeout", 10*time.Minute, "give up waiting after this long")
	)
	flag.Var(&members, "job", "group member as domain=adminAddr:nodes:runtimeSeconds (repeatable)")
	flag.Parse()
	if len(members) < 2 {
		fmt.Fprintln(os.Stderr, "cosubmit: need at least two -job members to coschedule")
		os.Exit(2)
	}

	clients := make([]*live.AdminClient, len(members))
	for i, m := range members {
		c, err := live.DialAdmin(m.addr, 5*time.Second)
		if err != nil {
			fatal(fmt.Errorf("dial %s (%s): %w", m.domain, m.addr, err))
		}
		defer c.Close()
		clients[i] = c
	}

	// Link every member to every other.
	wire := make([]live.WireJob, len(members))
	for i, m := range members {
		var mates []job.MateRef
		for k, other := range members {
			if k != i {
				mates = append(mates, job.MateRef{Domain: other.domain, Job: job.ID(*id)})
			}
		}
		wire[i] = live.WireJob{
			ID:       job.ID(*id),
			Name:     fmt.Sprintf("cosubmit-%d", *id),
			Nodes:    m.nodes,
			Runtime:  m.runtime,
			Walltime: m.runtime,
			Mates:    mates,
		}
	}
	// Co-submission protocol: declare every member everywhere first, so no
	// half ever observes its mate as "unknown" (which would trigger the
	// fault-tolerant uncoordinated start), then submit.
	for i, m := range members {
		if err := clients[i].Expect(wire[i]); err != nil {
			fatal(fmt.Errorf("declare to %s: %w", m.domain, err))
		}
	}
	for i, m := range members {
		if err := clients[i].Submit(wire[i]); err != nil {
			fatal(fmt.Errorf("submit to %s: %w", m.domain, err))
		}
		fmt.Printf("submitted job %d to %s (%d nodes, %ds)\n", *id, m.domain, m.nodes, m.runtime)
	}
	if !*wait {
		return
	}

	deadline := time.Now().Add(*timeout)
	for {
		allStarted := true
		starts := make([]int64, len(members))
		for i := range members {
			st, err := clients[i].Status(job.ID(*id))
			if err != nil {
				fatal(fmt.Errorf("status from %s: %w", members[i].domain, err))
			}
			if !st.Started {
				allStarted = false
				break
			}
			starts[i] = st.StartTime
		}
		if allStarted {
			fmt.Printf("all %d members started:\n", len(members))
			same := true
			for i, m := range members {
				fmt.Printf("  %-10s start at virtual t=%d\n", m.domain, starts[i])
				if starts[i] != starts[0] {
					same = false
				}
			}
			if same {
				fmt.Println("CO-START ACHIEVED: identical start instants")
			} else {
				fmt.Println("note: start instants differ (live wall-clock skew between daemons)")
			}
			return
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("timed out after %v waiting for co-start", *timeout))
		}
		time.Sleep(*poll)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cosubmit: %v\n", err)
	os.Exit(1)
}

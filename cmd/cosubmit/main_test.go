package main

import "testing"

func TestMemberFlagParsing(t *testing.T) {
	var m memberFlags
	cases := []struct {
		in      string
		domain  string
		addr    string
		nodes   int
		runtime int64
	}{
		{"hpc=localhost:7101:512:600", "hpc", "localhost:7101", 512, 600},
		{"viz=10.0.0.2:9000:8:3600", "viz", "10.0.0.2:9000", 8, 3600},
		{"a=sock:4:60", "a", "sock", 4, 60}, // addr without port
	}
	for _, c := range cases {
		if err := m.Set(c.in); err != nil {
			t.Fatalf("Set(%q): %v", c.in, err)
		}
		got := m[len(m)-1]
		if got.domain != c.domain || got.addr != c.addr ||
			got.nodes != c.nodes || got.runtime != c.runtime {
			t.Fatalf("Set(%q) = %+v", c.in, got)
		}
	}
	if m.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestMemberFlagRejectsMalformed(t *testing.T) {
	var m memberFlags
	for _, in := range []string{
		"",               // nothing
		"hpc",            // no '='
		"hpc=addr",       // too few segments
		"hpc=a:b:c:d:e",  // too many segments
		"hpc=addr:x:600", // bad node count
		"hpc=addr:512:y", // bad runtime
	} {
		if err := m.Set(in); err == nil {
			t.Errorf("Set(%q) accepted", in)
		}
	}
}

package main

import (
	"fmt"
	"os"
	"strings"

	"cosched/internal/benchsuite"
	"cosched/internal/experiments"
	"cosched/internal/journal"
	"cosched/internal/resmgr"
	"cosched/internal/schedbench"
)

// suiteFactors are the workload sizes behind the five suite families.
// Two protocols: the full protocol is the committed-baseline recording
// configuration; quick is the CI smoke that proves the machinery works
// (schema, self-validation, gate plumbing) in seconds. Quick records are
// marked and must never be committed as baselines.
type suiteFactors struct {
	warmup, runs int
	sweepFactor  float64 // load-sweep job factor (parallel + dist families)
	sweepReps    int
	schedIters   int // Iterate calls per measured run
	journalJobs  int // 8 WAL records per job
	megaJobs     int // Intrepid jobs in the single mega cell
}

var (
	fullFactors  = suiteFactors{warmup: 2, runs: 5, sweepFactor: 0.25, sweepReps: 2, schedIters: 2000, journalJobs: 1250, megaJobs: 20000}
	quickFactors = suiteFactors{warmup: 1, runs: 3, sweepFactor: 0.02, sweepReps: 1, schedIters: 200, journalJobs: 250, megaJobs: 2000}
)

// suiteBenchmarks builds the five benchmark families over the existing
// experiment bodies. Each family reuses the exact code path its
// dedicated -*bench flag measures, so a suite regression points at the
// same subsystem the deep benchmark would.
func suiteBenchmarks(f suiteFactors) []benchsuite.Benchmark {
	// One deterministic config per family, derived here rather than from
	// the -factor/-reps flags so records stay comparable across runs.
	sweepCfg := experiments.DefaultConfig(1, f.sweepFactor)
	sweepCfg.Reps = f.sweepReps
	sweepCfg.Parallelism = 1

	distCfg := sweepCfg
	distCfg.Dist = &procDistributor{Workers: 2, Quiet: true}

	megaCfg := experiments.DefaultConfig(1, 1.0)

	var benches []benchsuite.Benchmark

	benches = append(benches, benchsuite.Benchmark{
		Name: "parallel_sweep",
		Run: func() error {
			_, err := experiments.RunLoadSweep(sweepCfg)
			return err
		},
	})

	// Scheduler inner loop: steady-state Iterate on the incremental core
	// with a 4k-job queue — the -schedbench hot path. The scenario is
	// built once; steady-state iterations do not perturb it.
	var schedIterate func() error
	benches = append(benches, benchsuite.Benchmark{
		Name: "sched_iterate",
		Setup: func() error {
			eng, m, _, _ := schedbench.Steady(resmgr.CoreIncremental, 4000)
			now := eng.Now()
			schedIterate = func() error {
				for i := 0; i < f.schedIters; i++ {
					m.Iterate(now)
				}
				return nil
			}
			return nil
		},
		Run: func() error { return schedIterate() },
	})

	// Journal decode + replay on the synthetic full-lifecycle history the
	// -journalbench flag uses (8 records per job, every state edge).
	var entries []journal.Entry
	var wal []byte
	benches = append(benches, benchsuite.Benchmark{
		Name: "journal_decode",
		Setup: func() error {
			entries = journalHistory(f.journalJobs)
			wal = nil
			for i := range entries {
				var err error
				wal, err = journal.AppendRecord(wal, &entries[i])
				if err != nil {
					return err
				}
			}
			return nil
		},
		Run: func() error {
			decoded, n, torn := journal.DecodeEntries(wal)
			if torn != nil || n != int64(len(wal)) || len(decoded) != len(entries) {
				return fmt.Errorf("decode lost records: %d/%d, torn=%v", len(decoded), len(entries), torn)
			}
			return nil
		},
	})
	benches = append(benches, benchsuite.Benchmark{
		Name: "journal_replay",
		// No Setup: runs after journal_decode's, which built entries.
		Run: func() error {
			st, err := journal.Replay(nil, entries)
			if err != nil {
				return err
			}
			if len(st.Jobs) != f.journalJobs || st.Entries != len(entries) {
				return fmt.Errorf("replay folded %d jobs / %d entries, want %d / %d",
					len(st.Jobs), st.Entries, f.journalJobs, len(entries))
			}
			return nil
		},
	})

	// One large cell through the snapshot/arena memory architecture —
	// the -megabench single-cell path at suite-sized job counts.
	var mega *experiments.MegaTraces
	benches = append(benches, benchsuite.Benchmark{
		Name: "mega_cell",
		Setup: func() error {
			var err error
			mega, err = experiments.BuildMegaTraces(megaCfg, f.megaJobs, 0.75)
			return err
		},
		Run: func() error {
			cell, err := mega.Run(megaCfg, experiments.Combos[0])
			if err != nil {
				return err
			}
			if cell.Stuck > 0 {
				return fmt.Errorf("mega cell left %d jobs stuck", cell.Stuck)
			}
			return nil
		},
	})

	benches = append(benches, benchsuite.Benchmark{
		Name: "dist_sweep",
		Run: func() error {
			_, err := experiments.RunLoadSweep(distCfg)
			return err
		},
	})
	return benches
}

// runBenchSuite runs the scientific suite and writes BENCH_suite.json
// (stable schema) plus the markdown report alongside, then re-reads the
// written file so every run self-validates its own schema.
func runBenchSuite(path string, quick bool, baseline string) error {
	f := fullFactors
	mode := "full"
	if quick {
		f = quickFactors
		mode = "quick"
	}
	fmt.Printf("=== benchmark suite (%s: %d warmup + %d runs per family) ===\n",
		mode, f.warmup, f.runs)
	rec, err := benchsuite.Run(benchsuite.Config{
		Warmup: f.warmup, Runs: f.runs, Quick: quick,
		Logf: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	}, suiteBenchmarks(f))
	if err != nil {
		return err
	}
	if err := rec.WriteFile(path); err != nil {
		return err
	}
	back, err := benchsuite.ReadFile(path)
	if err != nil {
		return fmt.Errorf("written record does not self-validate: %w", err)
	}
	mdPath := suiteReportPath(path)
	if err := os.WriteFile(mdPath, []byte(back.Report()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (schema %s, self-validated) and %s\n", path, back.Schema, mdPath)
	if baseline != "" {
		return gateRecords(baseline, path, 0)
	}
	return nil
}

// suiteReportPath derives the markdown report path from the JSON path.
func suiteReportPath(jsonPath string) string {
	return strings.TrimSuffix(jsonPath, ".json") + ".md"
}

// runBenchCompare is the -benchcompare entry: gate current against
// baseline. spec is "baseline.json,current.json"; inject > 1 multiplies
// the current record's samples first, the deterministic CI self-test
// that the gate actually trips.
func runBenchCompare(spec string, inject float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-benchcompare wants 'baseline.json,current.json', got %q", spec)
	}
	return gateRecords(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), inject)
}

// gateRecords loads both records, applies any synthetic slowdown, and
// runs the effect-size regression gate, failing the process on a
// statistically significant slowdown or lost coverage.
func gateRecords(basePath, curPath string, inject float64) error {
	base, err := benchsuite.ReadFile(basePath)
	if err != nil {
		return err
	}
	cur, err := benchsuite.ReadFile(curPath)
	if err != nil {
		return err
	}
	label := ""
	if inject > 0 {
		cur = cur.InjectSlowdown(inject)
		label = fmt.Sprintf(" [current x%g synthetic slowdown]", inject)
	}
	fmt.Printf("=== benchmark regression gate: %s vs %s%s ===\n", curPath, basePath, label)
	if base.Quick || cur.Quick {
		fmt.Println("note: quick-mode record in comparison — protocol differences make this a plumbing check, not a perf result")
	}
	verdicts, failed := benchsuite.Compare(base, cur, benchsuite.DefaultThresholds())
	fmt.Print(benchsuite.FormatVerdicts(verdicts, failed))
	if failed {
		return fmt.Errorf("benchmark gate failed vs %s", basePath)
	}
	return nil
}

// The deterministic fault-injection campaign: each seed expands into one
// faultplan.Plan whose schedule drives all three injection seams — the
// journal VFS, the peer-coordination path, and the distsweep coordinator —
// through one coupled simulation plus one kill/resume sweep, then gates
// the robustness invariants. A failing seed prints a one-line repro; the
// same seed always replays the identical campaign.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"encoding/json"
	"path/filepath"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/distsweep"
	"cosched/internal/experiments"
	"cosched/internal/faultplan"
	"cosched/internal/invariant"
	"cosched/internal/journal"
	"cosched/internal/obs"
	"cosched/internal/proto"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// chaosDomains names the two campaign domains; a holds, b yields — the
// paper's Intrepid/Eureka asymmetry at toy scale.
const (
	chaosDomA     = "a"
	chaosDomB     = "b"
	chaosNodesA   = 64
	chaosNodesB   = 16
	chaosJobs     = 60
	chaosPairProp = 0.5
	chaosHoldCap  = 2 // degraded-mode hold budget, mirroring -degraded-max-holds
	// chaosHeartbeat is deliberately generous: the campaign gates on table
	// bytes, not liveness, and a tight heartbeat flakes under -race where
	// every worker step runs several times slower.
	chaosHeartbeat = 500 * time.Millisecond
)

// runChaosCampaign runs n campaigns starting at firstSeed. inject corrupts
// one distsweep row before the byte-identity comparison — CI's
// deterministic proof that the campaign gate actually trips.
func runChaosCampaign(n int, firstSeed uint64, inject bool) error {
	if n <= 0 {
		return fmt.Errorf("chaoscampaign: need a positive campaign count, got %d", n)
	}
	prof := faultplan.DefaultProfile()
	reg := obs.New()
	counters := map[faultplan.Seam]obs.Counter{
		faultplan.SeamJournal:   obs.CampaignFaults(reg, string(faultplan.SeamJournal)),
		faultplan.SeamPeerlink:  obs.CampaignFaults(reg, string(faultplan.SeamPeerlink)),
		faultplan.SeamDistsweep: obs.CampaignFaults(reg, string(faultplan.SeamDistsweep)),
	}
	failed := 0
	for i := 0; i < n; i++ {
		seed := firstSeed + uint64(i)
		plan := faultplan.New(seed, prof)
		// Replay gate: the plan must be a pure function of its seed.
		if !bytes.Equal(plan.Encode(), faultplan.New(seed, prof).Encode()) {
			fmt.Printf("chaos seed %d FAIL: plan is not deterministic\n  repro: %s\n", seed, plan.Repro())
			failed++
			continue
		}
		problems, fired := runOneCampaign(plan, inject)
		for seam, c := range fired {
			counters[seam].Add(float64(c))
		}
		if len(problems) > 0 {
			failed++
			fmt.Printf("chaos seed %d FAIL (%d violation(s)):\n", seed, len(problems))
			for _, p := range problems {
				fmt.Printf("  - %s\n", p)
			}
			fmt.Printf("  repro: %s\n", plan.Repro())
			continue
		}
		fmt.Printf("chaos seed %d ok: %d fault(s) fired (journal %d, peerlink %d, distsweep %d)\n",
			seed, fired[faultplan.SeamJournal]+fired[faultplan.SeamPeerlink]+fired[faultplan.SeamDistsweep],
			fired[faultplan.SeamJournal], fired[faultplan.SeamPeerlink], fired[faultplan.SeamDistsweep])
	}
	fmt.Printf("chaoscampaign: %d/%d campaign(s) clean; injected fault totals: journal=%g peerlink=%g distsweep=%g\n",
		n-failed, n,
		counters[faultplan.SeamJournal].Value(),
		counters[faultplan.SeamPeerlink].Value(),
		counters[faultplan.SeamDistsweep].Value())
	if failed > 0 {
		return fmt.Errorf("chaoscampaign: %d of %d campaign(s) violated invariants", failed, n)
	}
	return nil
}

// runOneCampaign executes both campaign legs for one plan and returns the
// invariant violations plus the per-seam count of faults that fired.
func runOneCampaign(plan *faultplan.Plan, inject bool) (problems []string, fired map[faultplan.Seam]int) {
	fired = map[faultplan.Seam]int{}

	p, f := runCoupledLeg(plan)
	problems = append(problems, p...)
	for seam, c := range f {
		fired[seam] += c
	}

	p, c := runSweepLeg(plan, inject)
	problems = append(problems, p...)
	fired[faultplan.SeamDistsweep] += c
	return problems, fired
}

// runCoupledLeg drives a two-domain coupled simulation with the plan's
// journal faults wired under domain a's write-ahead journal and the
// peerlink faults scripted onto both coordination directions, plus
// reconcile-and-compact drills at every scheduled restart instant.
//
// Gates: the workload always drains (graceful degradation means storage
// and peer faults never wedge the scheduler); co-start violations are
// explained by failed coordination calls; both journals replay into a
// consistent recovered state even when the faulted store poisoned mid-run.
func runCoupledLeg(plan *faultplan.Plan) (problems []string, fired map[faultplan.Seam]int) {
	fired = map[faultplan.Seam]int{}
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	spec := workload.Spec{
		Name: chaosDomA, Jobs: chaosJobs, Span: 6 * sim.Hour,
		Sizes:     []workload.SizeClass{{Nodes: 8, Weight: 0.5}, {Nodes: 16, Weight: 0.3}, {Nodes: 32, Weight: 0.2}},
		RuntimeMu: 6.0, RuntimeSigma: 0.8,
		MinRuntime: 2 * sim.Minute, MaxRuntime: 2 * sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 3.0,
		Seed: plan.Seed,
	}
	a, err := workload.Generate(spec)
	if err != nil {
		fail("workload a: %v", err)
		return problems, fired
	}
	spec.Name, spec.Seed = chaosDomB, plan.Seed+1
	spec.Sizes = []workload.SizeClass{{Nodes: 1, Weight: 0.4}, {Nodes: 2, Weight: 0.3}, {Nodes: 4, Weight: 0.3}}
	b, err := workload.Generate(spec)
	if err != nil {
		fail("workload b: %v", err)
		return problems, fired
	}
	rng := workload.NewRNG(plan.Seed + 2)
	if _, err := workload.PairByProportion(rng, a, b, chaosDomA, chaosDomB, chaosPairProp); err != nil {
		fail("pairing: %v", err)
		return problems, fired
	}

	// Journals: domain a writes through the plan's fault-injecting VFS,
	// domain b through the untouched OS filesystem. Each domain mirrors the
	// daemon's degradation controller — on poisoning, detach the recorder
	// and clamp the hold budget instead of failing the run.
	tmp, err := os.MkdirTemp("", "chaosjournal")
	if err != nil {
		fail("tempdir: %v", err)
		return problems, fired
	}
	defer os.RemoveAll(tmp)
	dirA, dirB := filepath.Join(tmp, chaosDomA), filepath.Join(tmp, chaosDomB)
	ffs := faultplan.NewFaultFS(plan, nil)
	storeA, err := journal.Open(dirA, journal.Options{FS: ffs})
	if err != nil {
		fail("journal a open: %v", err)
		return problems, fired
	}
	//simlint:allow R7 fault-injected store: Close after a poisoning fault returns the injected error by design, and the recovery gate reopens the journal to validate the surviving prefix
	defer storeA.Close()
	storeB, err := journal.Open(dirB, journal.Options{})
	if err != nil {
		fail("journal b open: %v", err)
		return problems, fired
	}
	//simlint:allow R7 clean-FS store, closed after the run; the clean-store gate already failed the campaign if it poisoned
	defer storeB.Close()

	var mgrA, mgrB *resmgr.Manager
	recA, degA := newChaosRecorder(storeA, &mgrA)
	recB, degB := newChaosRecorder(storeB, &mgrB)

	s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
		{Name: chaosDomA, Nodes: chaosNodesA, Backfilling: true,
			Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a, Observer: recA},
		{Name: chaosDomB, Nodes: chaosNodesB, Backfilling: true,
			Cosched: cosched.DefaultConfig(cosched.Yield), Trace: b, Observer: recB},
	}})
	if err != nil {
		fail("coupled.New: %v", err)
		return problems, fired
	}
	mgrA, mgrB = s.Manager(chaosDomA), s.Manager(chaosDomB)
	// The store can poison during trace submission, before the managers
	// exist; apply the deferred hold-budget clamp now.
	if *degA {
		mgrA.SetHoldBudget(chaosHoldCap)
	}
	if *degB {
		mgrB.SetHoldBudget(chaosHoldCap)
	}

	// Replace the direct peer wiring with script-driven injectors: dir 0 is
	// a→b, dir 1 is b→a. Rate 0 means every drop, duplicate, delay, and
	// partition comes from the plan alone.
	scriptAB := faultplan.NewPeerScript(plan, 0)
	scriptBA := faultplan.NewPeerScript(plan, 1)
	ia := proto.NewFaultInjector(mgrB, 0, 1).WithScript(scriptAB)
	ib := proto.NewFaultInjector(mgrA, 0, 2).WithScript(scriptBA)
	mgrA.AddPeer(chaosDomB, ia)
	mgrB.AddPeer(chaosDomA, ib)

	// Restart drills: at each scheduled instant, run the post-restart
	// reconciliation handshake (through the faulted path — errors are what
	// a real restart would retry) and force a compaction so Compact's
	// rename/dir-fsync ordering sits inside the fault schedule too.
	for i, at := range plan.Restarts() {
		caller, callee, link := mgrA, chaosDomB, cosched.Peer(ia)
		if i%2 == 1 {
			caller, callee, link = mgrB, chaosDomA, ib
		}
		s.Engine().After(sim.Duration(at), sim.PriorityDefault, func(now sim.Time) {
			_, _ = caller.ReconcileWith(callee, link) //nolint — a real daemon retries; the drill tolerates faulted exchanges
			//simlint:allow R7 the drill injects compaction faults on purpose; the post-run recovery gate validates whatever ordering survived on disk
			_ = storeA.Compact(journal.ManagerSnapshot(mgrA))
		})
	}

	res := s.Run()
	fired[faultplan.SeamJournal] = len(ffs.Fired())
	fired[faultplan.SeamPeerlink] = len(scriptAB.Fired()) + len(scriptBA.Fired())

	// Gate: chaos may delay or un-coordinate work, never wedge it.
	if res.StuckJobs > 0 || res.Deadlocked {
		fail("coupled run stuck: %d/%d jobs never finished (horizon hit: %v)",
			res.StuckJobs, res.TotalJobs, res.HitHorizon)
	}
	// Gate: every co-start violation must be explained by a failed or
	// dropped coordination call; a fault-free wire means zero violations.
	dropA, _, failA, _ := scriptAB.Stats()
	dropB, _, failB, _ := scriptBA.Stats()
	badCalls := dropA + failA + dropB + failB
	if badCalls == 0 && res.CoStartViolations != 0 {
		fail("%d co-start violation(s) with zero injected coordination failures", res.CoStartViolations)
	}
	if res.CoStartViolations > badCalls {
		fail("%d co-start violation(s) exceed the %d failed coordination call(s) that could explain them",
			res.CoStartViolations, badCalls)
	}
	// Gate: a clean filesystem must never poison the store.
	if err := storeB.Poisoned(); err != nil {
		fail("journal b poisoned without injected faults: %v", err)
	}
	// Gate: both journals — including a poisoned, torn, or crashed one —
	// replay into a recovered state that passes the recovery invariants.
	problems = append(problems, verifyJournalRecovers(chaosDomA, dirA, chaosNodesA)...)
	problems = append(problems, verifyJournalRecovers(chaosDomB, dirB, chaosNodesB)...)
	return problems, fired
}

// newChaosRecorder builds a journal recorder with the daemon's degradation
// behavior: when the store poisons, detach and clamp the hold budget. The
// returned flag reports degradation that fired before the manager pointer
// was assigned (the store can poison during trace submission); the caller
// applies the clamp once the manager exists.
func newChaosRecorder(store *journal.Store, mgr **resmgr.Manager) (*journal.Recorder, *bool) {
	degraded := new(bool)
	var rec *journal.Recorder
	rec = journal.NewRecorder(store,
		func() journal.Snapshot { return journal.ManagerSnapshot(*mgr) },
		func(error) {
			if store.Poisoned() != nil {
				rec.Detach()
				*degraded = true
				if m := *mgr; m != nil {
					m.SetHoldBudget(chaosHoldCap)
				}
			}
		})
	return rec, degraded
}

// verifyJournalRecovers reopens a journal directory cold — exactly what a
// restarted daemon does — and checks that replaying it rebuilds a manager
// that satisfies the recovery invariants. Whatever the fault schedule did
// to the store, the surviving prefix must stay loadable and consistent.
func verifyJournalRecovers(domain, dir string, nodes int) (problems []string) {
	st2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		return []string{fmt.Sprintf("journal %s reopen: %v", domain, err)}
	}
	//simlint:allow R7 read-only reopen for the recovery gate; nothing is appended, so Close flushes nothing
	defer st2.Close()
	snap, entries := st2.Recovered()
	if snap == nil && len(entries) == 0 {
		return nil // nothing was ever durably written; an empty journal is a clean cold start
	}
	rst, err := journal.Replay(snap, entries)
	if err != nil {
		return []string{fmt.Sprintf("journal %s replay: %v", domain, err)}
	}
	eng := sim.NewEngine()
	m := resmgr.New(eng, resmgr.Options{
		Name: domain, Pool: cluster.New(domain, nodes), Backfilling: true,
		Cosched: cosched.DefaultConfig(cosched.Hold),
	})
	if _, err := journal.Restore(m, rst); err != nil {
		return []string{fmt.Sprintf("journal %s restore: %v", domain, err)}
	}
	for _, v := range invariant.RecoveryViolations(m, rst.Jobs) {
		problems = append(problems, fmt.Sprintf("journal %s recovery invariant: %s", domain, v))
	}
	return problems
}

// runSweepLeg runs the distsweep leg: a tiny sweep fanned across two
// in-process workers, with the coordinator SIGKILL stand-in firing at the
// plan's kill point and a fresh coordinator resuming from the checkpoint.
// The resumed tables must be byte-identical to the serial oracle. inject
// corrupts one row first so CI can prove this gate trips.
func runSweepLeg(plan *faultplan.Plan, inject bool) (problems []string, fired int) {
	fail := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	cfg := experiments.Config{Seed: plan.Seed, JobFactor: 0.01, Reps: 1, Parallelism: 1}
	n, err := experiments.NumGroups(experiments.KindLoad, cfg)
	if err != nil {
		fail("sweep groups: %v", err)
		return problems, 0
	}
	want := make([][]experiments.CellRow, n)
	for g := 0; g < n; g++ {
		if want[g], err = experiments.RunSweepGroup(experiments.KindLoad, cfg, g); err != nil {
			fail("sweep oracle group %d: %v", g, err)
			return problems, 0
		}
	}

	tmp, err := os.MkdirTemp("", "chaossweep")
	if err != nil {
		fail("tempdir: %v", err)
		return problems, 0
	}
	defer os.RemoveAll(tmp)
	cpPath := filepath.Join(tmp, "sweep.ckpt")

	// The plan draws its kill point from the profile's nominal row span;
	// fold it into this sweep's delivery range (1..n-1) so nearly every
	// scheduled kill actually interrupts the coordinator mid-sweep. The
	// mapping is a pure function of (plan, n), so replays are unaffected.
	killAfter := plan.CoordKill()
	if killAfter > 0 && n > 1 {
		killAfter = 1 + (killAfter-1)%(n-1)
	} else {
		killAfter = -1 // single-group sweep or no scheduled kill
	}
	var got [][]experiments.CellRow
	if killAfter > 0 {
		w1, err := startChaosWorkers(2)
		if err != nil {
			fail("sweep workers: %v", err)
			return problems, 0
		}
		co1 := &distsweep.Coordinator{
			Conns: w1.conns, Heartbeat: chaosHeartbeat, Batch: 1,
			CheckpointPath: cpPath, KillAfter: killAfter,
		}
		_, err = co1.RunGroups(experiments.KindLoad, cfg, n)
		w1.close()
		if !errors.Is(err, distsweep.ErrKilled) {
			fail("killed sweep returned %v, want ErrKilled", err)
			return problems, 0
		}
		fired = 1
	}
	w2, err := startChaosWorkers(2)
	if err != nil {
		fail("sweep workers: %v", err)
		return problems, fired
	}
	co2 := &distsweep.Coordinator{
		Conns: w2.conns, Heartbeat: chaosHeartbeat, Batch: 1,
		CheckpointPath: cpPath,
	}
	got, err = co2.RunGroups(experiments.KindLoad, cfg, n)
	w2.close()
	if err != nil {
		fail("resumed sweep: %v", err)
		return problems, fired
	}
	if inject && len(got) > 0 && len(got[0]) > 0 {
		got[0][0].Group = got[0][0].Group + 1000
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		fail("marshal oracle: %v", err)
		return problems, fired
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		fail("marshal sweep: %v", err)
		return problems, fired
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		fail("sweep tables diverge from the serial oracle after kill/resume (killAfter=%d)", killAfter)
	}
	return problems, fired
}

// chaosWorkers is a pool of in-process distsweep workers served over
// loopback TCP, the same transport the real fan-out uses.
type chaosWorkers struct {
	conns []distsweep.Conn
	wg    sync.WaitGroup
}

func startChaosWorkers(n int) (*chaosWorkers, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	w := &chaosWorkers{}
	for i := 0; i < n; i++ {
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			w.close()
			return nil, err
		}
		cc, err := ln.Accept()
		if err != nil {
			wc.Close()
			w.close()
			return nil, err
		}
		w.conns = append(w.conns, cc.(distsweep.Conn))
		w.wg.Add(1)
		go func(conn net.Conn) {
			defer w.wg.Done()
			defer conn.Close()
			// Worker errors are expected when the coordinator is killed;
			// the campaign gates on table bytes, not worker exit codes.
			//simlint:allow R7 the kill leg severs connections mid-frame by design; the byte-identity gate is the durability check
			_ = distsweep.Serve(conn.(distsweep.Conn), distsweep.WorkerOptions{Heartbeat: chaosHeartbeat})
		}(wc)
	}
	return w, nil
}

// close tears down the coordinator-side conns and waits for the worker
// goroutines to drain.
func (w *chaosWorkers) close() {
	for _, c := range w.conns {
		c.Close()
	}
	w.wg.Wait()
}

package main

import "testing"

// TestChaosCampaignSmoke runs two full campaigns end to end and checks the
// deterministic must-fail path: an injected table corruption has to trip
// the byte-identity gate, proving the campaign can actually fail.
func TestChaosCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke is a multi-leg integration run")
	}
	if err := runChaosCampaign(2, 1, false); err != nil {
		t.Fatalf("clean campaigns failed: %v", err)
	}
	if err := runChaosCampaign(1, 1, true); err == nil {
		t.Fatal("injected sweep corruption was not caught by the campaign gate")
	}
}

package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"time"

	"cosched/internal/distsweep"
	"cosched/internal/experiments"
)

// distHeartbeat is the production heartbeat cadence for worker processes;
// the coordinator declares a worker dead after a few missed beats and
// re-dispatches its groups.
const distHeartbeat = 500 * time.Millisecond

// procDistributor implements experiments.Distributor by running sweep
// groups on worker processes. Each RunGroups call builds a fresh worker
// pool — spawned locally (Workers > 0) and/or dialed (Connect addrs) —
// so the one-sweep-per-connection protocol stays simple and a multi-sweep
// invocation (-exp all) just fields a new pool per sweep.
type procDistributor struct {
	// Workers is how many local worker processes to spawn (re-executing
	// this binary with -distworker).
	Workers int
	// Connect lists remote worker addresses running -distserve.
	Connect []string
	// Quiet suppresses the per-sweep topology note.
	Quiet bool
}

// RunGroups implements experiments.Distributor.
func (d *procDistributor) RunGroups(kind experiments.SweepKind, cfg experiments.Config, numGroups int) ([][]experiments.CellRow, error) {
	conns, cleanup, err := d.pool()
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if !d.Quiet {
		fmt.Fprintf(os.Stderr, "distsweep: %s sweep, %d groups across %d worker(s) (%d spawned, %d dialed)\n",
			kind, numGroups, len(conns), d.Workers, len(d.Connect))
	}
	co := &distsweep.Coordinator{
		Conns:     conns,
		Heartbeat: distHeartbeat,
		Logf:      func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	}
	return co.RunGroups(kind, cfg, numGroups)
}

// pool assembles the worker connections: a loopback listener for spawned
// children plus direct dials to -distconnect addresses. cleanup closes
// whatever the coordinator has not already closed and reaps children.
func (d *procDistributor) pool() (conns []distsweep.Conn, cleanup func(), err error) {
	var procs []*exec.Cmd
	cleanup = func() {
		// Conns are closed by the coordinator; children exit on close.
		for _, p := range procs {
			_ = p.Wait()
		}
	}
	if d.Workers > 0 {
		self, err := os.Executable()
		if err != nil {
			return nil, cleanup, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, cleanup, err
		}
		defer ln.Close()
		for i := 0; i < d.Workers; i++ {
			cmd := exec.Command(self, "-distworker", "-distconnect", ln.Addr().String())
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				cleanup()
				return nil, cleanup, fmt.Errorf("spawn worker: %w", err)
			}
			procs = append(procs, cmd)
			conn, err := ln.Accept()
			if err != nil {
				cleanup()
				return nil, cleanup, err
			}
			conns = append(conns, conn.(distsweep.Conn))
		}
	}
	for _, addr := range d.Connect {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			cleanup()
			return nil, cleanup, fmt.Errorf("dial worker %s: %w", addr, err)
		}
		conns = append(conns, conn.(distsweep.Conn))
	}
	if len(conns) == 0 {
		return nil, cleanup, fmt.Errorf("distsweep: no workers (set -distworkers and/or -distconnect)")
	}
	return conns, cleanup, nil
}

// runDistWorker is the child side of -distworkers/-distserve: serve one
// sweep per connection until the coordinator closes it.
func runDistWorker(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	err = distsweep.Serve(conn.(distsweep.Conn), distsweep.WorkerOptions{Heartbeat: distHeartbeat})
	if err != nil && isClosedConn(err) {
		return nil // clean coordinator shutdown
	}
	return err
}

// runDistServe listens for coordinators and serves one sweep per
// connection, sequentially, forever — the standing remote worker behind
// -distconnect.
func runDistServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "distsweep: worker listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		err = distsweep.Serve(conn.(distsweep.Conn), distsweep.WorkerOptions{Heartbeat: distHeartbeat})
		if err != nil && !isClosedConn(err) {
			fmt.Fprintf(os.Stderr, "distsweep: sweep ended: %v\n", err)
		}
		conn.Close()
	}
}

// isClosedConn reports whether err is the ordinary end of a connection —
// the coordinator finished and hung up — rather than a protocol failure.
func isClosedConn(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "EOF") ||
		strings.Contains(s, "use of closed network connection") ||
		strings.Contains(s, "connection reset by peer")
}

// splitAddrs parses a comma-separated address list.
func splitAddrs(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"cosched/internal/coupled"
	"cosched/internal/experiments"
	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/trace"
	"cosched/internal/workload"
)

// distBenchRecord is the BENCH_dist.json schema: the distributed-sweep
// and streaming-ingestion headline numbers. Throughput is recorded with
// its go_maxprocs context and not gated — on a single-core machine no
// wall-clock speedup is physically possible however many processes fan
// out (same policy as BENCH_parallel.json / BENCH_mega.json); the gated
// properties are byte-identity across topologies and RSS independence of
// trace length.
type distBenchRecord struct {
	Experiment string  `json:"experiment"`
	JobFactor  float64 `json:"job_factor"`
	Reps       int     `json:"reps"`
	Cells      int     `json:"cells"`
	GoMaxProcs int     `json:"go_maxprocs"`

	SerialSeconds        float64 `json:"serial_seconds"`
	SerialCellsPerSec    float64 `json:"serial_cells_per_sec"`
	Parallel8Seconds     float64 `json:"parallel8_seconds"`
	Parallel8CellsPerSec float64 `json:"parallel8_cells_per_sec"`
	DistWorkers          int     `json:"dist_workers"`
	DistSeconds          float64 `json:"dist_seconds"`
	DistCellsPerSec      float64 `json:"dist_cells_per_sec"`
	SpeedupDistVsSerial  float64 `json:"speedup_dist_vs_serial"`
	TablesIdentical      bool    `json:"tables_byte_identical"`

	StreamWindow       int     `json:"stream_window"`
	StreamSmallJobs    int     `json:"stream_small_jobs"`
	StreamLargeJobs    int     `json:"stream_large_jobs"`
	StreamSmallRSS     int64   `json:"stream_small_peak_rss_bytes"`
	StreamLargeRSS     int64   `json:"stream_large_peak_rss_bytes"`
	StreamRSSRatio     float64 `json:"stream_rss_ratio_large_vs_small"`
	StreamRSSFlat      bool    `json:"stream_rss_independent_of_length"`
	StreamSmallSeconds float64 `json:"stream_small_seconds"`
	StreamLargeSeconds float64 `json:"stream_large_seconds"`
}

// streamRSSBudgetRatio is how much the large streaming run's peak RSS may
// exceed the small run's before the length-independence claim fails. The
// trace is 10x longer; a materialized path multiplies its O(trace) term
// by 10, while the streamed path adds only noise (GC timing, allocator
// slack).
const streamRSSBudgetRatio = 1.35

// runDistBench benchmarks the distributed fan-out and the streaming
// ingestion path, writes BENCH_dist.json, and enforces the two hard
// gates: byte-identical tables across {serial, -parallel 8, -distworkers
// N} and peak RSS independent of streamed trace length.
func runDistBench(cfg experiments.Config, path string, workers int) error {
	if workers <= 0 {
		workers = 4
	}
	fmt.Printf("=== distributed sweep benchmark (load sweep, factor %g, reps %d) ===\n", cfg.JobFactor, cfg.Reps)

	serialCfg := cfg
	serialCfg.Parallelism = 1
	serialCfg.Dist = nil
	start := time.Now()
	serial, err := experiments.RunLoadSweep(serialCfg)
	if err != nil {
		return err
	}
	serialDur := time.Since(start)
	fmt.Printf("serial      (in-process, 1 worker):  %v\n", serialDur.Round(time.Millisecond))

	parCfg := cfg
	parCfg.Parallelism = 8
	parCfg.Dist = nil
	start = time.Now()
	par, err := experiments.RunLoadSweep(parCfg)
	if err != nil {
		return err
	}
	parDur := time.Since(start)
	fmt.Printf("parallel    (in-process, 8 workers): %v\n", parDur.Round(time.Millisecond))

	distCfg := cfg
	distCfg.Dist = &procDistributor{Workers: workers, Quiet: true}
	start = time.Now()
	dist, err := experiments.RunLoadSweep(distCfg)
	if err != nil {
		return err
	}
	distDur := time.Since(start)
	fmt.Printf("distributed (%d worker processes):   %v\n", workers, distDur.Round(time.Millisecond))

	serialTables := renderLoadTables(serial)
	identical := serialTables == renderLoadTables(par) && serialTables == renderLoadTables(dist)
	if identical {
		fmt.Println("tables byte-identical across {serial, parallel 8, distributed}")
	} else {
		fmt.Println("WARNING: tables differ across topologies — determinism bug")
	}

	cells := len(serial.Utils) * (len(experiments.Combos) + 1) * serial.Config.Reps
	rec := distBenchRecord{
		Experiment:           "load",
		JobFactor:            serial.Config.JobFactor,
		Reps:                 serial.Config.Reps,
		Cells:                cells,
		GoMaxProcs:           runtime.GOMAXPROCS(0),
		SerialSeconds:        serialDur.Seconds(),
		SerialCellsPerSec:    float64(cells) / serialDur.Seconds(),
		Parallel8Seconds:     parDur.Seconds(),
		Parallel8CellsPerSec: float64(cells) / parDur.Seconds(),
		DistWorkers:          workers,
		DistSeconds:          distDur.Seconds(),
		DistCellsPerSec:      float64(cells) / distDur.Seconds(),
		SpeedupDistVsSerial:  serialDur.Seconds() / distDur.Seconds(),
		TablesIdentical:      identical,
	}
	fmt.Printf("throughput: %.2f serial, %.2f parallel, %.2f distributed cells/sec (go_maxprocs %d; speedup needs cores)\n",
		rec.SerialCellsPerSec, rec.Parallel8CellsPerSec, rec.DistCellsPerSec, rec.GoMaxProcs)

	if err := runStreamRSSLegs(&rec); err != nil {
		return err
	}

	if err := writeBenchJSON(path, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !identical {
		return fmt.Errorf("tables not byte-identical across topologies")
	}
	if !rec.StreamRSSFlat {
		return fmt.Errorf("streaming peak RSS grew %.2fx on a 10x trace (budget %.2fx) — memory tracks trace length",
			rec.StreamRSSRatio, streamRSSBudgetRatio)
	}
	return nil
}

// streamRSSResult is the -streamrss child's report.
type streamRSSResult struct {
	Reps         int     `json:"reps"`
	TotalJobs    int     `json:"total_jobs"`
	Completed    int     `json:"completed"`
	Stuck        int     `json:"stuck"`
	Window       int     `json:"window"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	Seconds      float64 `json:"seconds"`
}

// runStreamRSSLegs runs the streaming simulation in two fresh child
// processes — ru_maxrss is a monotonic high-water mark, so each
// measurement needs its own process — once on a small SWF trace and once
// on the same workload repeated 10x, and records whether peak RSS stayed
// flat.
func runStreamRSSLegs(rec *distBenchRecord) error {
	const smallReps, largeReps = 5, 50
	fmt.Printf("=== streaming ingestion: peak RSS on %dx vs %dx month traces ===\n", smallReps, largeReps)
	self, err := os.Executable()
	if err != nil {
		return err
	}
	run := func(reps int) (streamRSSResult, error) {
		var res streamRSSResult
		out, err := exec.Command(self, "-streamrss", strconv.Itoa(reps)).Output()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return res, fmt.Errorf("streamrss child: %v: %s", err, ee.Stderr)
			}
			return res, err
		}
		if err := json.Unmarshal(out, &res); err != nil {
			return res, fmt.Errorf("streamrss child output: %w", err)
		}
		return res, nil
	}
	small, err := run(smallReps)
	if err != nil {
		return err
	}
	fmt.Printf("small: %d jobs, peak RSS %.1f MiB, %.2fs\n",
		small.TotalJobs, float64(small.PeakRSSBytes)/(1<<20), small.Seconds)
	large, err := run(largeReps)
	if err != nil {
		return err
	}
	fmt.Printf("large: %d jobs, peak RSS %.1f MiB, %.2fs\n",
		large.TotalJobs, float64(large.PeakRSSBytes)/(1<<20), large.Seconds)
	if small.Completed != small.TotalJobs || large.Completed != large.TotalJobs {
		return fmt.Errorf("streaming runs incomplete: %d/%d and %d/%d",
			small.Completed, small.TotalJobs, large.Completed, large.TotalJobs)
	}
	rec.StreamWindow = small.Window
	rec.StreamSmallJobs = small.TotalJobs
	rec.StreamLargeJobs = large.TotalJobs
	rec.StreamSmallRSS = small.PeakRSSBytes
	rec.StreamLargeRSS = large.PeakRSSBytes
	rec.StreamSmallSeconds = small.Seconds
	rec.StreamLargeSeconds = large.Seconds
	rec.StreamRSSRatio = float64(large.PeakRSSBytes) / float64(small.PeakRSSBytes)
	rec.StreamRSSFlat = rec.StreamRSSRatio <= streamRSSBudgetRatio
	fmt.Printf("peak RSS ratio on a %dx longer trace: %.2fx (flat means streaming; budget %.2fx)\n",
		largeReps/smallReps, rec.StreamRSSRatio, streamRSSBudgetRatio)
	return nil
}

// runStreamRSSChild is the subprocess body behind -streamrss: write an
// SWF trace of reps offset copies of one base month incrementally (never
// holding more than one copy), stream it back through
// trace.Stream → JobStream → SubmitTraceStream, simulate, and report
// peak RSS as JSON on stdout.
func runStreamRSSChild(reps, baseJobs int) error {
	const (
		nodes  = 100
		window = 4096
	)
	spec := workload.EurekaSpec(7)
	spec.Jobs = baseJobs
	base, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	if _, err := workload.ScaleToUtilization(base, nodes, 0.6); err != nil {
		return err
	}
	var maxSubmit sim.Time
	for _, j := range base {
		if j.SubmitTime > maxSubmit {
			maxSubmit = j.SubmitTime
		}
	}
	period := sim.Duration(maxSubmit) + sim.Hour

	dir, err := os.MkdirTemp("", "streamrss")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.swf")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	hdr := trace.NewHeader()
	hdr.Set("Computer", "streamrss")
	hdr.Set("Note", fmt.Sprintf("%d x %d-job month", reps, len(base)))
	if err := trace.Write(f, hdr, nil); err != nil {
		return err
	}
	// One repetition in memory at a time: shift copies through a repeat
	// stream and flush each repetition's records before building the next.
	rs, err := workload.NewRepeatStream(base, reps, period, 0)
	if err != nil {
		return err
	}
	batch := make([]*job.Job, 0, len(base))
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := trace.Write(f, nil, trace.FromJobs(batch))
		batch = batch[:0]
		return err
	}
	for {
		j, err := rs.NextJob()
		if err != nil {
			break // io.EOF: RepeatStream yields no other error
		}
		batch = append(batch, j)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	fs, err := trace.OpenStream(path)
	if err != nil {
		return err
	}
	defer fs.Close()
	start := time.Now()
	s, err := coupled.New(coupled.Options{
		Domains: []coupled.DomainConfig{{
			Name: "stream", Nodes: nodes, Backfilling: true,
			TraceStream: trace.NewJobStream(fs.Stream), StreamWindow: window,
		}},
		Horizon: sim.Duration(reps+2) * 40 * sim.Day,
	})
	if err != nil {
		return err
	}
	res := s.Run()
	if err := s.Manager("stream").StreamErr(); err != nil {
		return err
	}
	out, err := json.Marshal(streamRSSResult{
		Reps:         reps,
		TotalJobs:    res.TotalJobs,
		Completed:    res.CompletedJobs,
		Stuck:        res.StuckJobs,
		Window:       window,
		PeakRSSBytes: peakRSSBytes(),
		Seconds:      time.Since(start).Seconds(),
	})
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(out, '\n'))
	return err
}

// runDistSmoke is the CI gate: a tiny load sweep in process at
// -parallel 1 and again through two spawned worker processes, failing
// unless the rendered tables are byte-identical.
func runDistSmoke(cfg experiments.Config) error {
	fmt.Println("=== distributed sweep smoke (differential vs in-process) ===")
	serialCfg := cfg
	serialCfg.Parallelism = 1
	serialCfg.Dist = nil
	serial, err := experiments.RunLoadSweep(serialCfg)
	if err != nil {
		return err
	}
	distCfg := cfg
	distCfg.Dist = &procDistributor{Workers: 2, Quiet: true}
	dist, err := experiments.RunLoadSweep(distCfg)
	if err != nil {
		return err
	}
	if renderLoadTables(serial) != renderLoadTables(dist) {
		return fmt.Errorf("distributed load-sweep tables differ from in-process tables")
	}
	fmt.Println("differential load sweep: tables byte-identical across 2 worker processes")
	return nil
}

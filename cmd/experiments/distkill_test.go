// Worker-failure acceptance test: real worker processes (re-execed test
// binary), real TCP, real SIGKILL mid-sweep. The invariant under test is
// the distributed sweep's determinism contract — a worker dying with
// groups in hand must not change a byte of the merged tables.
package main

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"cosched/internal/distsweep"
	"cosched/internal/experiments"
)

const (
	helperEnv      = "EXPERIMENTS_HELPER"
	helperAddrEnv  = "EXPERIMENTS_HELPER_ADDR"
	helperStallEnv = "EXPERIMENTS_HELPER_STALL_MS"
)

// TestMain doubles as the worker entry point: re-execed with
// EXPERIMENTS_HELPER=worker the test binary dials the coordinator and
// serves sweep groups — optionally stalling before each group so a
// SIGKILL deterministically lands while it holds an assignment.
func TestMain(m *testing.M) {
	if os.Getenv(helperEnv) == "worker" {
		if err := runHelperWorker(os.Getenv(helperAddrEnv), os.Getenv(helperStallEnv)); err != nil {
			fmt.Fprintf(os.Stderr, "experiments helper: %v\n", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func runHelperWorker(addr, stallMS string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	var stall time.Duration
	if stallMS != "" {
		ms := 0
		fmt.Sscanf(stallMS, "%d", &ms)
		stall = time.Duration(ms) * time.Millisecond
	}
	opt := distsweep.WorkerOptions{Heartbeat: 25 * time.Millisecond}
	if stall > 0 {
		opt.Run = func(kind experiments.SweepKind, cfg experiments.Config, g int) ([]experiments.CellRow, error) {
			// Wall-clock stall in a real helper process, outside any
			// simulation: it widens the window in which the test's SIGKILL
			// lands while this worker holds an undelivered assignment.
			time.Sleep(stall)
			return experiments.RunSweepGroup(kind, cfg, g)
		}
	}
	err = distsweep.Serve(conn.(distsweep.Conn), opt)
	if err != nil && isClosedConn(err) {
		return nil
	}
	return err
}

// spawnHelperWorker re-execs the test binary as a sweep worker dialing
// addr and returns the process plus its accepted connection.
func spawnHelperWorker(t *testing.T, ln net.Listener, stall time.Duration) (*exec.Cmd, distsweep.Conn) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		helperEnv+"=worker",
		helperAddrEnv+"="+ln.Addr().String(),
		helperStallEnv+"="+fmt.Sprintf("%d", stall/time.Millisecond))
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn worker: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	t.Cleanup(func() {
		select {
		case <-done:
		default:
			cmd.Process.Kill()
			<-done
		}
	})
	conn, err := ln.Accept()
	if err != nil {
		t.Fatalf("accept worker: %v", err)
	}
	return cmd, conn.(distsweep.Conn)
}

// killConnDistributor runs a sweep over pre-established worker
// connections and SIGKILLs the victim process shortly after dispatch
// begins.
type killConnDistributor struct {
	t      *testing.T
	conns  []distsweep.Conn
	victim *os.Process
	after  time.Duration
	logs   []string
}

func (d *killConnDistributor) RunGroups(kind experiments.SweepKind, cfg experiments.Config, numGroups int) ([][]experiments.CellRow, error) {
	timer := time.AfterFunc(d.after, func() {
		d.victim.Signal(syscall.SIGKILL)
	})
	defer timer.Stop()
	co := &distsweep.Coordinator{
		Conns:     d.conns,
		Heartbeat: 25 * time.Millisecond,
		Batch:     1,
		Logf: func(f string, a ...any) {
			d.logs = append(d.logs, fmt.Sprintf(f, a...))
			d.t.Logf(f, a...)
		},
	}
	return co.RunGroups(kind, cfg, numGroups)
}

// TestWorkerSIGKILLMidSweep: two real worker processes over TCP, one
// SIGKILLed while it stalls on its first assignment; the survivor picks
// up the orphaned groups and the merged tables are byte-identical to the
// serial in-process run.
func TestWorkerSIGKILLMidSweep(t *testing.T) {
	cfg := experiments.Config{Seed: 9, JobFactor: 0.02, Reps: 2, Parallelism: 1}

	serialCfg := cfg
	serial, err := experiments.RunLoadSweep(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := renderLoadTables(serial)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// The victim stalls 30s per group — far past the sweep's runtime — so
	// the SIGKILL always finds it holding an undelivered assignment; its
	// heartbeats keep the coordinator patient until the kill.
	victim, victimConn := spawnHelperWorker(t, ln, 30*time.Second)
	_, healthyConn := spawnHelperWorker(t, ln, 0)

	dist := &killConnDistributor{
		t:      t,
		conns:  []distsweep.Conn{victimConn, healthyConn},
		victim: victim.Process,
		after:  200 * time.Millisecond,
	}
	distCfg := cfg
	distCfg.Dist = dist
	sweep, err := experiments.RunLoadSweep(distCfg)
	if err != nil {
		t.Fatalf("sweep with killed worker: %v", err)
	}
	if got := renderLoadTables(sweep); got != want {
		t.Fatalf("tables differ after worker SIGKILL:\n got:\n%s\nwant:\n%s", got, want)
	}
	death := false
	for _, l := range dist.logs {
		if strings.Contains(l, "lost") {
			death = true
		}
	}
	if !death {
		t.Fatalf("coordinator never observed the worker death; logs: %q", dist.logs)
	}
}

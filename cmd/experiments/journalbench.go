package main

import (
	"fmt"
	"runtime"
	"time"

	"cosched/internal/job"
	"cosched/internal/journal"
	"cosched/internal/sim"
)

// journalBenchRecord is the BENCH_journal.json schema: how fast the crash
// daemon's write-ahead log decodes and replays, measured on a synthetic
// 10k-transition history. The PR's acceptance bar is replay under 100ms.
type journalBenchRecord struct {
	Entries          int     `json:"entries"`
	Jobs             int     `json:"jobs"`
	WALBytes         int     `json:"wal_bytes"`
	EncodeSeconds    float64 `json:"encode_seconds"`
	DecodeSeconds    float64 `json:"decode_seconds"`
	ReplaySeconds    float64 `json:"replay_seconds"`
	DecodePerSec     float64 `json:"decode_entries_per_sec"`
	ReplayPerSec     float64 `json:"replay_entries_per_sec"`
	GoMaxProcs       int     `json:"go_maxprocs"`
	ReplayUnder100ms bool    `json:"replay_under_100ms"`
}

// journalHistory builds a legal synthetic WAL: each job walks the full
// enhanced-hold lifecycle (expect, submit, yield, hold, release, rehold,
// start, complete — 8 records), so replay exercises every state edge the
// live recorder can write, not just the happy path.
func journalHistory(jobs int) []journal.Entry {
	entries := make([]journal.Entry, 0, 8*jobs)
	seq := uint64(0)
	push := func(e journal.Entry) {
		seq++
		e.Seq = seq
		entries = append(entries, e)
	}
	for i := 0; i < jobs; i++ {
		id := 1 + i // job.ID
		t := sim.Time(10 * i)
		push(journal.Entry{T: t, Op: journal.OpExpect, Job: job.ID(id),
			Name: fmt.Sprintf("bench-%d", id), Nodes: 64, Runtime: 3600, Walltime: 7200, Submit: t})
		push(journal.Entry{T: t + 1, Op: journal.OpSubmit, Job: job.ID(id),
			Name: fmt.Sprintf("bench-%d", id), Nodes: 64, Runtime: 3600, Walltime: 7200, Submit: t + 1})
		push(journal.Entry{T: t + 2, Op: journal.OpYield, Job: job.ID(id), Yields: 1})
		push(journal.Entry{T: t + 3, Op: journal.OpHold, Job: job.ID(id),
			Holds: 1, HoldStart: t + 3, Ready: true, ReadyAt: t + 3})
		push(journal.Entry{T: t + 4, Op: journal.OpRelease, Job: job.ID(id), HeldNS: 64})
		push(journal.Entry{T: t + 5, Op: journal.OpRehold, Job: job.ID(id),
			Holds: 2, HoldStart: t + 5, Ready: true, ReadyAt: t + 3})
		push(journal.Entry{T: t + 6, Op: journal.OpStart, Job: job.ID(id),
			Start: t + 6, Yields: 1, Holds: 2, HeldNS: 128, Ready: true, ReadyAt: t + 3})
		push(journal.Entry{T: t + 7, Op: journal.OpComplete, Job: job.ID(id), HeldNS: 128})
	}
	return entries
}

// runJournalBench encodes the synthetic history into WAL framing, then
// times the torn-tolerant decode and the bookkeeping replay (best of reps,
// the same discipline testing.B applies), and writes the record to path.
func runJournalBench(path string) error {
	const jobs = 1250 // 8 records each = 10k transitions
	const reps = 5
	entries := journalHistory(jobs)

	start := time.Now()
	var wal []byte
	for i := range entries {
		var err error
		wal, err = journal.AppendRecord(wal, &entries[i])
		if err != nil {
			return err
		}
	}
	encode := time.Since(start)

	fmt.Printf("=== journal bench (%d entries, %d jobs, %d WAL bytes) ===\n",
		len(entries), jobs, len(wal))

	decode := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start = time.Now()
		decoded, n, torn := journal.DecodeEntries(wal)
		d := time.Since(start)
		if torn != nil || n != int64(len(wal)) || len(decoded) != len(entries) {
			return fmt.Errorf("journalbench: decode lost records: %d/%d, torn=%v", len(decoded), len(entries), torn)
		}
		if d < decode {
			decode = d
		}
	}

	replay := time.Duration(1<<63 - 1)
	for r := 0; r < reps; r++ {
		start = time.Now()
		st, err := journal.Replay(nil, entries)
		d := time.Since(start)
		if err != nil {
			return fmt.Errorf("journalbench: replay: %w", err)
		}
		if len(st.Jobs) != jobs || st.Entries != len(entries) {
			return fmt.Errorf("journalbench: replay folded %d jobs / %d entries, want %d / %d",
				len(st.Jobs), st.Entries, jobs, len(entries))
		}
		if d < replay {
			replay = d
		}
	}

	rec := journalBenchRecord{
		Entries:          len(entries),
		Jobs:             jobs,
		WALBytes:         len(wal),
		EncodeSeconds:    encode.Seconds(),
		DecodeSeconds:    decode.Seconds(),
		ReplaySeconds:    replay.Seconds(),
		DecodePerSec:     float64(len(entries)) / decode.Seconds(),
		ReplayPerSec:     float64(len(entries)) / replay.Seconds(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		ReplayUnder100ms: replay < 100*time.Millisecond,
	}
	fmt.Printf("encode %v, decode %v, replay %v (under 100ms: %v)\n",
		encode.Round(time.Microsecond), decode.Round(time.Microsecond),
		replay.Round(time.Microsecond), rec.ReplayUnder100ms)

	if err := writeBenchJSON(path, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !rec.ReplayUnder100ms {
		return fmt.Errorf("journalbench: 10k-entry replay took %v, want < 100ms", replay)
	}
	return nil
}

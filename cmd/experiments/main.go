// Command experiments reproduces the evaluation of Tang et al. (ICPP 2011):
// the §V-B capability validation and Figures 3–10.
//
// Usage:
//
//	experiments -exp all                 # everything at paper scale
//	experiments -exp fig3 -factor 0.1    # one figure at 10% job count
//	experiments -exp validate -reps 3
//	experiments -exp all -parallel 0     # fan cells across every core
//	experiments -benchout BENCH_parallel.json -factor 0.25 -reps 3
//
// Figures come in pairs that share simulations (3–6 share the load sweep,
// 7–10 the proportion sweep); asking for any figure in a group runs the
// whole group's simulations once and prints only the requested tables.
//
// Every sweep fans its (point × combo × rep) cells across -parallel
// workers (0 = one per core, 1 = serial). Each cell derives its traces
// from its own (point, rep) seed and results are aggregated by cell
// index, so tables are byte-identical for every -parallel value; only
// wall-clock time changes. -benchout measures that: it times the load
// sweep serially and in parallel, verifies the rendered tables match
// byte-for-byte, and writes a machine-readable perf record.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"cosched/internal/experiments"
	"cosched/internal/metrics"
)

func main() {
	var (
		exp           = flag.String("exp", "all", "experiment: validate, fig3..fig10, load, prop, reservation, nway, ablations, or all")
		seed          = flag.Uint64("seed", 1, "workload random seed")
		factor        = flag.Float64("factor", 1.0, "job-count scale factor (1.0 = paper scale)")
		reps          = flag.Int("reps", 1, "repetitions per cell (paper used 10)")
		svgDir        = flag.String("svg", "", "also render each figure as an SVG into this directory")
		par           = flag.Int("parallel", 0, "sweep-cell workers: 0 = one per core, 1 = serial, N = at most N")
		benchOut      = flag.String("benchout", "", "time the load sweep serial vs parallel, verify byte-identical tables, and write a JSON perf record to this path")
		schedCore     = flag.String("schedcore", "", "scheduler core: incremental (default) or reference")
		schedBenchOut = flag.String("schedbench", "", "benchmark the scheduler core (reference vs incremental) and write a JSON perf record to this path")
		schedSmoke    = flag.Bool("schedsmoke", false, "run a tiny load sweep under both scheduler cores and fail unless the rendered tables are byte-identical")
		journalBench  = flag.String("journalbench", "", "benchmark write-ahead journal decode+replay on a synthetic 10k-transition history and write a JSON perf record to this path")
		profDir       = flag.String("pprof", "", "write cpu.pprof and allocs.pprof profiles of the run into this directory")
		megaBench     = flag.String("megabench", "", "benchmark the memory architecture (load-sweep cells/sec + one huge single cell) and write a JSON perf record to this path")
		benchSuite    = flag.String("benchsuite", "", "run the scientific benchmark suite (warmup + multi-run stats over all five bench families) and write a stable-schema JSON record to this path plus a markdown report alongside")
		benchQuick    = flag.Bool("quick", false, "benchsuite: smoke protocol (1 warmup, 3 runs, tiny workloads); the record is marked quick and must not be committed as a baseline")
		benchBaseline = flag.String("benchbaseline", "", "benchsuite: after the run, gate the fresh record against this committed baseline")
		benchCompare  = flag.String("benchcompare", "", "gate 'baseline.json,current.json' benchsuite records on effect size + CV and exit nonzero on significant slowdown")
		benchInject   = flag.Float64("benchinject", 0, "benchcompare: multiply the current record's samples by this factor first — CI's deterministic proof that the gate trips")
		megaJobs      = flag.Int("megajobs", 1_000_000, "Intrepid job count for the -megabench huge cell")
		gcPercent     = flag.Int("gcpercent", 1000, "GC target percentage (runtime/debug.SetGCPercent); negative leaves the GOGC default")
		memLimitMiB   = flag.Int64("memlimit", 1536, "soft heap memory limit in MiB (runtime/debug.SetMemoryLimit); 0 or negative leaves it unlimited")
		distWorker    = flag.Bool("distworker", false, "run as a sweep worker: dial the -distconnect address, serve one sweep, exit")
		distServe     = flag.String("distserve", "", "run as a standing sweep worker listening on this address (serves one sweep per connection, forever)")
		distWorkers   = flag.Int("distworkers", 0, "fan sweep groups across N spawned worker processes")
		distConnect   = flag.String("distconnect", "", "comma-separated worker addresses to dial (workers started with -distserve)")
		distBench     = flag.String("distbench", "", "benchmark the distributed fan-out and streaming ingestion, verify byte-identical tables and flat RSS, and write a JSON perf record to this path")
		distSmoke     = flag.Bool("distsmoke", false, "run a tiny load sweep in-process and across 2 worker processes and fail unless the rendered tables are byte-identical")
		streamRSS     = flag.Int("streamrss", 0, "internal: run the streaming-RSS child with this many trace repetitions and print a JSON report")
		streamJobs    = flag.Int("streamjobs", 3000, "internal: base month size (jobs) for the -streamrss child")
		chaosN        = flag.Int("chaoscampaign", 0, "run N seeded deterministic fault-injection campaigns across the journal, peerlink, and distsweep seams, gating robustness invariants")
		chaosSeed     = flag.Uint64("chaosseed", 1, "chaoscampaign: first campaign seed (seeds are consecutive; a failing seed's printed repro replays it alone)")
		chaosInject   = flag.Bool("chaosinject", false, "chaoscampaign: corrupt one distsweep row before the byte-identity gate — CI's deterministic proof the campaign fails loudly")
	)
	flag.Parse()

	// Worker / child modes dispatch before anything else: they are spawned
	// by a coordinator process and speak JSON on their socket or stdout.
	if *distWorker {
		addrs := splitAddrs(*distConnect)
		if len(addrs) != 1 {
			fmt.Fprintln(os.Stderr, "experiments: -distworker needs exactly one -distconnect address")
			os.Exit(2)
		}
		if err := runDistWorker(addrs[0]); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: distworker: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *distServe != "" {
		if err := runDistServe(*distServe); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: distserve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *streamRSS > 0 {
		if err := runStreamRSSChild(*streamRSS, *streamJobs); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: streamrss: %v\n", err)
			os.Exit(1)
		}
		return
	}

	// The arena/free-list memory architecture keeps the live set small and
	// bounded, so the default GOGC=100 collects far too eagerly: with a
	// few-MiB live heap the sweep spends ~30% of CPU in GC marking and
	// write barriers. A relaxed target raises the headroom between
	// collections; the soft memory limit is the backstop that forces
	// collection pressure back up before RSS can approach the -megabench
	// budget (2 GiB), which is why GOGC=off would be wrong here.
	if *gcPercent >= 0 {
		debug.SetGCPercent(*gcPercent)
	}
	if *memLimitMiB > 0 {
		debug.SetMemoryLimit(*memLimitMiB << 20)
	}

	cfg := experiments.DefaultConfig(*seed, *factor)
	cfg.Reps = *reps
	cfg.Parallelism = *par
	cfg.SchedCore = *schedCore
	if *distWorkers > 0 || *distConnect != "" {
		cfg.Dist = &procDistributor{Workers: *distWorkers, Connect: splitAddrs(*distConnect)}
	}

	if *profDir != "" {
		stop, err := startProfiles(*profDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: pprof: %v\n", err)
			os.Exit(1)
		}
		defer stop()
	}
	if *benchCompare != "" {
		if err := runBenchCompare(*benchCompare, *benchInject); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: benchcompare: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchSuite != "" {
		if err := runBenchSuite(*benchSuite, *benchQuick, *benchBaseline); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: benchsuite: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *megaBench != "" {
		if err := runMegaBench(cfg, *megaBench, *megaJobs); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: megabench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *distBench != "" {
		if err := runDistBench(cfg, *distBench, *distWorkers); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: distbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *chaosN > 0 {
		if err := runChaosCampaign(*chaosN, *chaosSeed, *chaosInject); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: chaoscampaign: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *distSmoke {
		if err := runDistSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: distsmoke: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *schedSmoke {
		if err := runSchedSmoke(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: schedsmoke: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *journalBench != "" {
		if err := runJournalBench(*journalBench); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: journalbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *schedBenchOut != "" {
		if err := runSchedBench(cfg, *schedBenchOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: schedbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchOut != "" {
		if err := runParBench(cfg, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: benchout: %v\n", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, w := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(w)] = true
	}
	all := want["all"]
	anyOf := func(names ...string) bool {
		if all {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}

	ran := false
	if anyOf("validate") {
		ran = true
		run("capability validation", func() error {
			v, err := experiments.RunValidation(cfg)
			if err != nil {
				return err
			}
			fmt.Println(v.Table().Render())
			if v.Passed() {
				fmt.Println("VALIDATION PASSED: all combinations coschedule; deadlock only without the release enhancement")
			} else {
				fmt.Println("VALIDATION FAILED")
			}
			return nil
		})
	}
	if anyOf("load", "fig3", "fig4", "fig5", "fig6") {
		ran = true
		run("load sweep (Figures 3-6)", func() error {
			sweep, err := experiments.RunLoadSweep(cfg)
			if err != nil {
				return err
			}
			// Iterate Utils, not the map: map range order would make
			// otherwise byte-identical runs print in different orders.
			for _, util := range sweep.Utils {
				fmt.Printf("paired fraction at eureka_util %.2f: %.1f%%\n", util, sweep.PairedFraction[util]*100)
			}
			fmt.Println()
			if err := writeCharts(*svgDir, sweep.Charts()); err != nil {
				return err
			}
			printPair := func(a, b *metrics.Table) {
				fmt.Println(a.Render())
				fmt.Println(b.Render())
			}
			if anyOf("load", "fig3") {
				printPair(sweep.Fig3Table())
			}
			if anyOf("load", "fig4") {
				printPair(sweep.Fig4Table())
			}
			if anyOf("load", "fig5") {
				printPair(sweep.Fig5Table())
			}
			if anyOf("load", "fig6") {
				printPair(sweep.Fig6Table())
			}
			return nil
		})
	}
	if anyOf("prop", "fig7", "fig8", "fig9", "fig10") {
		ran = true
		run("proportion sweep (Figures 7-10)", func() error {
			sweep, err := experiments.RunProportionSweep(cfg)
			if err != nil {
				return err
			}
			if err := writeCharts(*svgDir, sweep.Charts()); err != nil {
				return err
			}
			printPair := func(a, b *metrics.Table) {
				fmt.Println(a.Render())
				fmt.Println(b.Render())
			}
			if anyOf("prop", "fig7") {
				printPair(sweep.Fig7Table())
			}
			if anyOf("prop", "fig8") {
				printPair(sweep.Fig8Table())
			}
			if anyOf("prop", "fig9") {
				printPair(sweep.Fig9Table())
			}
			if anyOf("prop", "fig10") {
				printPair(sweep.Fig10Table())
			}
			return nil
		})
	}
	if anyOf("reservation") {
		ran = true
		run("co-reservation comparison (§III)", func() error {
			c, err := experiments.RunReservationComparison(cfg)
			if err != nil {
				return err
			}
			fmt.Println(c.Table().Render())
			return nil
		})
	}
	if anyOf("nway") {
		ran = true
		run("N-way extension sweep (§VI)", func() error {
			s, err := experiments.RunNWaySweep(cfg)
			if err != nil {
				return err
			}
			fmt.Println(s.Table().Render())
			return writeCharts(*svgDir, []experiments.NamedChart{s.Chart()})
		})
	}
	if anyOf("ablations") {
		ran = true
		run("design ablations", func() error {
			a, err := experiments.RunAblations(cfg)
			if err != nil {
				return err
			}
			fmt.Println(a.Table().Render())
			return nil
		})
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want validate, fig3..fig10, load, prop, reservation, nway, ablations, all)\n", *exp)
		os.Exit(2)
	}
}

// writeCharts renders the named charts as SVG files under dir (no-op when
// dir is empty).
func writeCharts(dir string, charts []experiments.NamedChart) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, nc := range charts {
		svg, err := nc.Chart.SVG()
		if err != nil {
			return err
		}
		path := filepath.Join(dir, nc.Name+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// startProfiles begins a CPU profile and returns a stop function that
// finishes it and writes an allocation profile, both under dir. The alloc
// profile records cumulative allocation sites (sample_index=alloc_space/
// alloc_objects in `go tool pprof`), which is what the memory-architecture
// work optimizes for.
func startProfiles(dir string) (stop func(), err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpuPath := filepath.Join(dir, "cpu.pprof")
	cpuFile, err := os.Create(cpuPath)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuFile); err != nil {
		cpuFile.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpuFile.Close()
		fmt.Printf("wrote %s\n", cpuPath)
		allocPath := filepath.Join(dir, "allocs.pprof")
		allocFile, err := os.Create(allocPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: pprof: %v\n", err)
			return
		}
		defer allocFile.Close()
		runtime.GC() // flush the final allocation samples
		if err := pprof.Lookup("allocs").WriteTo(allocFile, 0); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: pprof: %v\n", err)
			return
		}
		fmt.Printf("wrote %s\n", allocPath)
	}, nil
}

// run times one experiment group and exits on error.
func run(name string, f func() error) {
	fmt.Printf("=== %s ===\n", name)
	start := time.Now()
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
}

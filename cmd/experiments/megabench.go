package main

import (
	"fmt"
	"runtime"
	"time"

	"cosched/internal/experiments"
)

// megaBenchRecord is the BENCH_mega.json schema: the memory-architecture
// headline numbers — load-sweep cell throughput against the recorded
// pre-optimization baseline, the determinism cross-check, and one huge
// single cell pushed through the same snapshot/arena path.
type megaBenchRecord struct {
	SweepJobFactor   float64 `json:"sweep_job_factor"`
	SweepReps        int     `json:"sweep_reps"`
	SweepCells       int     `json:"sweep_cells"`
	SweepRuns        int     `json:"sweep_runs"`
	SweepBestSeconds float64 `json:"sweep_best_seconds"`
	SweepCellsPerSec float64 `json:"sweep_cells_per_sec"`
	// BaselineCellsPerSec is the serial_cells_per_sec this same sweep
	// recorded in BENCH_parallel.json before the memory-architecture work
	// (arena jobs, copy-on-write snapshots, event/allocation free lists,
	// chained trace replay, GC retuning); SpeedupVsBaseline is the headline
	// ratio against it.
	BaselineCellsPerSec float64 `json:"baseline_cells_per_sec"`
	SpeedupVsBaseline   float64 `json:"speedup_vs_baseline"`
	TablesIdentical     bool    `json:"tables_byte_identical"`
	GoMaxProcs          int     `json:"go_maxprocs"`

	MegaCombo        string  `json:"mega_combo"`
	MegaEurekaUtil   float64 `json:"mega_eureka_util"`
	MegaIntrepidJobs int     `json:"mega_intrepid_jobs"`
	MegaEurekaJobs   int     `json:"mega_eureka_jobs"`
	MegaTotalJobs    int     `json:"mega_total_jobs"`
	MegaGenSeconds   float64 `json:"mega_generate_seconds"`
	MegaSimSeconds   float64 `json:"mega_simulate_seconds"`
	MegaJobsPerSec   float64 `json:"mega_jobs_per_sec"`
	MegaStuck        int     `json:"mega_stuck"`
	MegaAllocs       uint64  `json:"mega_allocs"`
	MegaAllocBytes   uint64  `json:"mega_alloc_bytes"`
	MegaAllocsPerJob float64 `json:"mega_allocs_per_job"`
	MegaPeakRSSBytes int64   `json:"mega_peak_rss_bytes"`
	MegaRSSBudgetOK  bool    `json:"mega_rss_under_2gib"`
}

// baselineSerialCellsPerSec is the serial load-sweep throughput (factor
// 0.25, reps 3, 45 cells) recorded in BENCH_parallel.json at the
// parallel-sweep PR, before the memory-architecture work this benchmark
// measures. Kept as a constant so the speedup ratio survives rewrites of
// that file.
const baselineSerialCellsPerSec = 39.058

// megaRSSBudget is the -megabench acceptance budget for peak RSS of the
// whole process including the million-job cell.
const megaRSSBudget = int64(2) << 30

// runMegaBench benchmarks the memory architecture end to end: it times the
// Figures 3–6 load sweep serially (best of several runs, the standard
// noise-robust estimator on shared machines), verifies byte-identical
// tables at 1 and 8 workers, then generates and simulates one huge cell —
// the Intrepid trace scaled to megaJobs jobs — through the same
// snapshot/arena path, recording wall time, allocation counts, and peak
// RSS against the 2 GiB budget. The perf record is merged into path.
func runMegaBench(cfg experiments.Config, path string, megaJobs int) error {
	sweepCfg := cfg
	sweepCfg.JobFactor = 0.25
	sweepCfg.Reps = 3
	sweepCfg.Parallelism = 1
	const sweepRuns = 3
	fmt.Printf("=== mega benchmark: load sweep throughput (factor %g, reps %d, best of %d) ===\n",
		sweepCfg.JobFactor, sweepCfg.Reps, sweepRuns)

	var serial *experiments.LoadSweep
	var best time.Duration
	for i := 0; i < sweepRuns; i++ {
		start := time.Now()
		s, err := experiments.RunLoadSweep(sweepCfg)
		if err != nil {
			return err
		}
		d := time.Since(start)
		fmt.Printf("serial run %d: %v\n", i+1, d.Round(time.Millisecond))
		if serial == nil || d < best {
			serial, best = s, d
		}
	}
	cells := len(serial.Utils) * (len(experiments.Combos) + 1) * serial.Config.Reps
	cellsPerSec := float64(cells) / best.Seconds()
	speedup := cellsPerSec / baselineSerialCellsPerSec
	fmt.Printf("best: %d cells in %v = %.2f cells/sec (%.2fx vs %.2f recorded baseline)\n",
		cells, best.Round(time.Millisecond), cellsPerSec, speedup, baselineSerialCellsPerSec)

	parCfg := sweepCfg
	parCfg.Parallelism = 8
	par, err := experiments.RunLoadSweep(parCfg)
	if err != nil {
		return err
	}
	identical := renderLoadTables(serial) == renderLoadTables(par)
	if identical {
		fmt.Println("tables byte-identical at 1 and 8 workers")
	} else {
		fmt.Println("WARNING: tables differ between 1 and 8 workers — determinism bug")
	}

	fmt.Printf("=== mega benchmark: single %d-job cell ===\n", megaJobs)
	genStart := time.Now()
	traces, err := experiments.BuildMegaTraces(cfg, megaJobs, 0.75)
	if err != nil {
		return err
	}
	genDur := time.Since(genStart)
	total := traces.IntrepidJobs + traces.EurekaJobs
	fmt.Printf("generated %d intrepid + %d eureka jobs (paired %.1f%%) in %v\n",
		traces.IntrepidJobs, traces.EurekaJobs, 100*traces.PairedFraction, genDur.Round(time.Millisecond))

	combo := experiments.Combos[0] // HH: both domains hold — the heaviest coordination load
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	simStart := time.Now()
	cell, err := traces.Run(cfg, combo)
	if err != nil {
		return err
	}
	simDur := time.Since(simStart)
	runtime.ReadMemStats(&after)

	allocs := after.Mallocs - before.Mallocs
	allocBytes := after.TotalAlloc - before.TotalAlloc
	rss := peakRSSBytes()
	rec := megaBenchRecord{
		SweepJobFactor:      sweepCfg.JobFactor,
		SweepReps:           sweepCfg.Reps,
		SweepCells:          cells,
		SweepRuns:           sweepRuns,
		SweepBestSeconds:    best.Seconds(),
		SweepCellsPerSec:    cellsPerSec,
		BaselineCellsPerSec: baselineSerialCellsPerSec,
		SpeedupVsBaseline:   speedup,
		TablesIdentical:     identical,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		MegaCombo:           combo.Label(),
		MegaEurekaUtil:      traces.EurekaUtil,
		MegaIntrepidJobs:    traces.IntrepidJobs,
		MegaEurekaJobs:      traces.EurekaJobs,
		MegaTotalJobs:       total,
		MegaGenSeconds:      genDur.Seconds(),
		MegaSimSeconds:      simDur.Seconds(),
		MegaJobsPerSec:      float64(total) / simDur.Seconds(),
		MegaStuck:           cell.Stuck,
		MegaAllocs:          allocs,
		MegaAllocBytes:      allocBytes,
		MegaAllocsPerJob:    float64(allocs) / float64(total),
		MegaPeakRSSBytes:    rss,
		MegaRSSBudgetOK:     rss < megaRSSBudget,
	}
	fmt.Printf("simulated %d jobs in %v = %.0f jobs/sec (stuck %d)\n",
		total, simDur.Round(time.Millisecond), rec.MegaJobsPerSec, cell.Stuck)
	fmt.Printf("allocs: %d (%.2f/job, %.1f MiB total); peak RSS %.1f MiB (budget %.0f MiB)\n",
		allocs, rec.MegaAllocsPerJob, float64(allocBytes)/(1<<20),
		float64(rss)/(1<<20), float64(megaRSSBudget)/(1<<20))

	if err := writeBenchJSON(path, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !identical {
		return fmt.Errorf("tables not byte-identical across worker counts")
	}
	if rss >= megaRSSBudget {
		return fmt.Errorf("peak RSS %d exceeds the %d-byte budget", rss, megaRSSBudget)
	}
	if cell.Stuck > 0 {
		return fmt.Errorf("mega cell left %d jobs stuck", cell.Stuck)
	}
	return nil
}

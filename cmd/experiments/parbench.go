package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"cosched/internal/experiments"
	"cosched/internal/parallel"
)

// parBenchRecord is the BENCH_parallel.json schema. Keys other than these
// (notably "alloc_benchmarks", maintained by hand from `go test -benchmem`
// runs) are preserved across rewrites so the file can accumulate the full
// perf trajectory.
type parBenchRecord struct {
	Experiment string  `json:"experiment"`
	JobFactor  float64 `json:"job_factor"`
	Reps       int     `json:"reps"`
	Cells      int     `json:"cells"`
	// GoMaxProcs is the scheduler's true parallelism budget for BOTH legs
	// (GOMAXPROCS is process-wide); on a single-core machine it is 1 and
	// no wall-clock speedup is possible, however many workers fan out.
	SerialGoMaxProcs    int     `json:"serial_go_maxprocs"`
	ParallelGoMaxProcs  int     `json:"parallel_go_maxprocs"`
	SerialWorkers       int     `json:"serial_workers"`
	ParallelWorkers     int     `json:"parallel_workers"`
	SerialSeconds       float64 `json:"serial_seconds"`
	ParallelSeconds     float64 `json:"parallel_seconds"`
	SerialCellsPerSec   float64 `json:"serial_cells_per_sec"`
	ParallelCellsPerSec float64 `json:"parallel_cells_per_sec"`
	Speedup             float64 `json:"speedup_vs_serial"`
	TablesIdentical     bool    `json:"tables_byte_identical"`
	PeakRSSBytes        int64   `json:"peak_rss_bytes"`
}

// runParBench times the Figures 3–6 load sweep once serially and once at
// the configured parallelism, verifies the rendered tables are
// byte-identical, and writes the perf record to path.
func runParBench(cfg experiments.Config, path string) error {
	serialCfg := cfg
	serialCfg.Parallelism = 1
	fmt.Printf("=== parallel sweep benchmark (load sweep, factor %g, reps %d) ===\n", cfg.JobFactor, cfg.Reps)

	start := time.Now()
	serial, err := experiments.RunLoadSweep(serialCfg)
	if err != nil {
		return err
	}
	serialDur := time.Since(start)
	fmt.Printf("serial   (1 worker):  %v\n", serialDur.Round(time.Millisecond))

	workers := parallel.Workers(cfg.Parallelism)
	if workers <= 1 {
		// On a single-core machine (or with -parallel 1) the resolved
		// worker count degenerates to 1 and the "parallel" leg would
		// silently repeat the serial leg while the record claimed a
		// parallel measurement. Fan out 8 goroutine workers so the
		// parallel path is genuinely exercised; the go_maxprocs fields
		// record how much hardware parallelism actually backed them.
		workers = 8
	}
	parCfg := cfg
	parCfg.Parallelism = workers
	start = time.Now()
	par, err := experiments.RunLoadSweep(parCfg)
	if err != nil {
		return err
	}
	parDur := time.Since(start)
	fmt.Printf("parallel (%d workers): %v\n", workers, parDur.Round(time.Millisecond))

	serialTables := renderLoadTables(serial)
	parTables := renderLoadTables(par)
	identical := serialTables == parTables
	if !identical {
		fmt.Println("WARNING: parallel tables differ from serial tables — determinism bug")
	} else {
		fmt.Println("tables byte-identical across worker counts")
	}

	cells := len(serial.Utils) * (len(experiments.Combos) + 1) * serial.Config.Reps
	rec := parBenchRecord{
		Experiment:          "load",
		JobFactor:           serial.Config.JobFactor,
		Reps:                serial.Config.Reps,
		Cells:               cells,
		SerialGoMaxProcs:    runtime.GOMAXPROCS(0),
		ParallelGoMaxProcs:  runtime.GOMAXPROCS(0),
		SerialWorkers:       1,
		ParallelWorkers:     workers,
		SerialSeconds:       serialDur.Seconds(),
		ParallelSeconds:     parDur.Seconds(),
		SerialCellsPerSec:   float64(cells) / serialDur.Seconds(),
		ParallelCellsPerSec: float64(cells) / parDur.Seconds(),
		Speedup:             serialDur.Seconds() / parDur.Seconds(),
		TablesIdentical:     identical,
		PeakRSSBytes:        peakRSSBytes(),
	}
	fmt.Printf("speedup vs serial: %.2fx (%d cells, %.2f -> %.2f cells/sec)\n",
		rec.Speedup, cells, rec.SerialCellsPerSec, rec.ParallelCellsPerSec)

	if err := writeParBench(path, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !identical {
		return fmt.Errorf("parallel tables not byte-identical to serial")
	}
	return nil
}

// renderLoadTables renders every Figures 3–6 table plus the paired
// fractions into one string for byte-level comparison.
func renderLoadTables(s *experiments.LoadSweep) string {
	var b []byte
	for _, util := range s.Utils {
		b = append(b, fmt.Sprintf("paired %.2f: %.6f\n", util, s.PairedFraction[util])...)
	}
	f3a, f3b := s.Fig3Table()
	f4a, f4b := s.Fig4Table()
	f5a, f5b := s.Fig5Table()
	f6a, f6b := s.Fig6Table()
	for _, t := range []interface{ Render() string }{f3a, f3b, f4a, f4b, f5a, f5b, f6a, f6b} {
		b = append(b, t.Render()...)
		b = append(b, '\n')
	}
	return string(b)
}

// writeParBench merges rec into any existing JSON at path, preserving
// unknown keys (e.g. the hand-maintained alloc_benchmarks section). The
// legacy ambiguous "go_maxprocs" key is dropped in favor of the explicit
// per-leg fields.
func writeParBench(path string, rec parBenchRecord) error {
	return writeBenchJSON(path, rec, "go_maxprocs")
}

// writeBenchJSON merges a record into any existing JSON file at path,
// preserving keys the record does not set, except those listed in drop.
func writeBenchJSON(path string, rec any, drop ...string) error {
	merged := map[string]any{}
	if old, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(old, &merged) // a malformed file is overwritten
	}
	for _, k := range drop {
		delete(merged, k)
	}
	recJSON, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	var recMap map[string]any
	if err := json.Unmarshal(recJSON, &recMap); err != nil {
		return err
	}
	for k, v := range recMap {
		merged[k] = v
	}
	out, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

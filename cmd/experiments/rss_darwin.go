//go:build darwin

package main

import "syscall"

// peakRSSBytes returns the process's peak resident set size. Darwin's
// getrusage(2) reports ru_maxrss already in bytes — no scaling, unlike
// Linux's kilobytes.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss
}

//go:build linux

package main

import "syscall"

// peakRSSBytes returns the process's peak resident set size. Linux
// reports ru_maxrss in kilobytes (getrusage(2)); scale to bytes. The
// unit is per-OS — darwin reports bytes — which is why this file is
// linux-only rather than `unix`: a unix-wide *1024 overcounts RSS
// 1024x on macOS.
func peakRSSBytes() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024
}

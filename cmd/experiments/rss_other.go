//go:build !unix

package main

// peakRSSBytes is unavailable off unix; the perf record carries 0.
func peakRSSBytes() int64 { return 0 }

//go:build !linux && !darwin

package main

// peakRSSBytes is unavailable on platforms whose ru_maxrss units we have
// not audited (they differ per OS: Linux KB, darwin bytes); the perf
// record carries 0.
func peakRSSBytes() int64 { return 0 }

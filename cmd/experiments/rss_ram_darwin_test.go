//go:build darwin

package main

import "syscall"

// totalSystemRAM reports physical memory via the hw.memsize sysctl.
func totalSystemRAM() (int64, error) {
	v, err := syscall.SysctlUint64("hw.memsize")
	if err != nil {
		return 0, err
	}
	return int64(v), nil
}

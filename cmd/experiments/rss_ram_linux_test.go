//go:build linux

package main

import "syscall"

// totalSystemRAM reports physical memory via sysinfo(2). Totalram is in
// units of mem_unit bytes.
func totalSystemRAM() (int64, error) {
	var si syscall.Sysinfo_t
	if err := syscall.Sysinfo(&si); err != nil {
		return 0, err
	}
	return int64(si.Totalram) * int64(si.Unit), nil
}

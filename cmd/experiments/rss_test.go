//go:build linux || darwin

package main

import "testing"

// TestPeakRSSBytesSane pins the ru_maxrss unit handling: the scaled
// value must land in [1 MiB, total system RAM]. This is the bound that
// catches unit bugs on both sides — interpreting Linux's kilobytes as
// bytes reads a multi-MiB process as a few KiB (below the floor), and
// scaling darwin's bytes by another 1024 claims more RSS than the
// machine has RAM (above the ceiling). The latter was a real bug: a
// single unix-wide build file applied Linux's *1024 to darwin.
func TestPeakRSSBytesSane(t *testing.T) {
	// Touch some memory so the high-water mark is comfortably over 1 MiB
	// even under a minimal test runtime.
	ballast := make([]byte, 4<<20)
	for i := range ballast {
		ballast[i] = byte(i)
	}
	rss := peakRSSBytes()
	if rss < 1<<20 {
		t.Fatalf("peak RSS %d bytes < 1 MiB: ru_maxrss units interpreted too small", rss)
	}
	ram, err := totalSystemRAM()
	if err != nil {
		t.Fatalf("totalSystemRAM: %v", err)
	}
	if rss > ram {
		t.Fatalf("peak RSS %d bytes exceeds total system RAM %d: ru_maxrss units interpreted too large", rss, ram)
	}
	_ = ballast
}

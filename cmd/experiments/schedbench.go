package main

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"cosched/internal/experiments"
	"cosched/internal/resmgr"
	"cosched/internal/schedbench"
)

// schedBenchRow is one Iterate microbenchmark measurement.
type schedBenchRow struct {
	Scenario    string  `json:"scenario"` // "steady" | "churn"
	Core        string  `json:"core"`
	Queue       int     `json:"queue"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// schedBenchRecord is the BENCH_sched.json schema. Like parBenchRecord it is
// merged over any existing file, preserving unknown keys.
type schedBenchRecord struct {
	PoolNodes  int             `json:"pool_nodes"`
	GoMaxProcs int             `json:"go_maxprocs"`
	JobFactor  float64         `json:"job_factor"`
	Reps       int             `json:"reps"`
	Iterate    []schedBenchRow `json:"iterate_benchmarks"`
	// Speedup4kSteady is reference ns/op ÷ incremental ns/op on the
	// steady-state 4k-queue cell (the acceptance threshold is ≥ 1.5).
	Speedup4kSteady float64 `json:"speedup_4k_steady"`
	// IncrementalSteadyZeroAlloc reports allocs/op == 0 on every
	// incremental steady-state cell.
	IncrementalSteadyZeroAlloc bool `json:"incremental_steady_zero_alloc"`

	// End-to-end: the Figures 3–6 load sweep under each core.
	ReferenceSeconds       float64 `json:"reference_seconds"`
	IncrementalSeconds     float64 `json:"incremental_seconds"`
	ReferenceCellsPerSec   float64 `json:"reference_cells_per_sec"`
	IncrementalCellsPerSec float64 `json:"incremental_cells_per_sec"`
	EndToEndSpeedup        float64 `json:"end_to_end_speedup"`
	TablesIdentical        bool    `json:"tables_byte_identical"`
}

// benchIterate measures b.N scheduling iterations against the shared
// schedbench scenario at the given queue depth.
func benchIterate(core resmgr.Core, queue int, churn bool) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		eng, m, blocked, nextID := schedbench.Steady(core, queue)
		now := eng.Now()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if churn {
				k := i % len(blocked)
				blocked[k], nextID = schedbench.Churn(m, blocked[k], nextID)
			}
			m.Iterate(now)
		}
	})
}

// runSchedBench measures the scheduler cores against each other — the
// Iterate microbenchmarks at every queue depth plus the end-to-end load
// sweep — verifies the cores' rendered tables match byte-for-byte, and
// writes BENCH_sched.json.
func runSchedBench(cfg experiments.Config, path string) error {
	fmt.Printf("=== scheduler core benchmark (pool %d nodes) ===\n", schedbench.PoolNodes)
	rec := schedBenchRecord{
		PoolNodes:  schedbench.PoolNodes,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		JobFactor:  cfg.JobFactor,
		Reps:       cfg.Reps,
	}

	var ref4k, inc4k float64
	rec.IncrementalSteadyZeroAlloc = true
	for _, scenario := range []string{"steady", "churn"} {
		for _, queue := range schedbench.QueueSizes {
			for _, core := range []resmgr.Core{resmgr.CoreReference, resmgr.CoreIncremental} {
				r := benchIterate(core, queue, scenario == "churn")
				row := schedBenchRow{
					Scenario:    scenario,
					Core:        core.String(),
					Queue:       queue,
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					BytesPerOp:  r.AllocedBytesPerOp(),
					AllocsPerOp: r.AllocsPerOp(),
				}
				rec.Iterate = append(rec.Iterate, row)
				fmt.Printf("Iterate/%s/%s/queue%-5d  %12.1f ns/op  %6d B/op  %4d allocs/op\n",
					scenario, row.Core, queue, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
				if scenario == "steady" {
					if queue == 4000 {
						if core == resmgr.CoreReference {
							ref4k = row.NsPerOp
						} else {
							inc4k = row.NsPerOp
						}
					}
					if core == resmgr.CoreIncremental && row.AllocsPerOp != 0 {
						rec.IncrementalSteadyZeroAlloc = false
					}
				}
			}
		}
	}
	if inc4k > 0 {
		rec.Speedup4kSteady = ref4k / inc4k
	}
	fmt.Printf("steady 4k-queue speedup: %.2fx; incremental steady allocs zero: %v\n",
		rec.Speedup4kSteady, rec.IncrementalSteadyZeroAlloc)

	refSweep, refTables, refDur, err := timedLoadSweep(cfg, "reference")
	if err != nil {
		return err
	}
	_, incTables, incDur, err := timedLoadSweep(cfg, "incremental")
	if err != nil {
		return err
	}
	sweepCells := len(refSweep.Utils) * (len(experiments.Combos) + 1) * refSweep.Config.Reps
	rec.ReferenceSeconds = refDur.Seconds()
	rec.IncrementalSeconds = incDur.Seconds()
	rec.ReferenceCellsPerSec = float64(sweepCells) / refDur.Seconds()
	rec.IncrementalCellsPerSec = float64(sweepCells) / incDur.Seconds()
	rec.EndToEndSpeedup = refDur.Seconds() / incDur.Seconds()
	rec.TablesIdentical = refTables == incTables
	fmt.Printf("load sweep: reference %v, incremental %v (%.2fx, %d cells), tables identical: %v\n",
		refDur.Round(time.Millisecond), incDur.Round(time.Millisecond),
		rec.EndToEndSpeedup, sweepCells, rec.TablesIdentical)

	if err := writeSchedBench(path, rec); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if !rec.TablesIdentical {
		return fmt.Errorf("scheduler cores disagree: rendered load-sweep tables differ")
	}
	return nil
}

// runSchedSmoke is the CI gate: one Iterate per (scenario, core, queue) cell
// to catch crashes in a single iteration, then the load sweep under both
// cores at the configured factor, failing unless the rendered tables are
// byte-identical.
func runSchedSmoke(cfg experiments.Config) error {
	fmt.Println("=== scheduler core smoke (1 iteration per cell, then differential sweep) ===")
	for _, churn := range []bool{false, true} {
		for _, queue := range schedbench.QueueSizes {
			for _, core := range []resmgr.Core{resmgr.CoreReference, resmgr.CoreIncremental} {
				eng, m, blocked, nextID := schedbench.Steady(core, queue)
				if churn {
					blocked[0], nextID = schedbench.Churn(m, blocked[0], nextID)
				}
				m.Iterate(eng.Now())
			}
		}
	}
	fmt.Println("microbenchmark cells: ok")

	_, refTables, _, err := timedLoadSweep(cfg, "reference")
	if err != nil {
		return err
	}
	_, incTables, _, err := timedLoadSweep(cfg, "incremental")
	if err != nil {
		return err
	}
	if refTables != incTables {
		return fmt.Errorf("scheduler cores disagree: rendered load-sweep tables differ")
	}
	fmt.Println("differential load sweep: tables byte-identical across cores")
	return nil
}

// timedLoadSweep runs the Figures 3–6 load sweep under the named scheduler
// core and returns the sweep, its rendered tables, and wall-clock duration.
func timedLoadSweep(cfg experiments.Config, core string) (*experiments.LoadSweep, string, time.Duration, error) {
	cfg.SchedCore = core
	start := time.Now()
	sweep, err := experiments.RunLoadSweep(cfg)
	if err != nil {
		return nil, "", 0, fmt.Errorf("load sweep (%s core): %w", core, err)
	}
	return sweep, renderLoadTables(sweep), time.Since(start), nil
}

// writeSchedBench merges rec into any existing JSON at path (see
// writeParBench).
func writeSchedBench(path string, rec schedBenchRecord) error {
	return writeBenchJSON(path, rec)
}

// Command simlint is the repository's determinism and contract analyzer:
// it type-checks every package (tests included) and enforces the rules
// cataloged in internal/lint and ARCHITECTURE.md §6 — map-iteration order
// leaking into ordered state, wall-clock/global-RNG use in sim-pure
// packages, the backfill sortedness contract, Manager concurrency, and
// floating-point equality. Intentional exceptions carry a
// `//simlint:allow R<n> <reason>` comment; stale or reasonless allows are
// themselves findings.
//
// Usage:
//
//	simlint ./...             # lint the whole module (the ci.sh gate)
//	simlint -tags debug ./... # lint the debug-build files too
//	simlint -rules            # print the rule catalog
//
// Exit status: 0 clean, 1 findings, 2 analysis failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cosched/internal/lint"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags to lint under (e.g. debug)")
	rules := flag.Bool("rules", false, "print the rule catalog and exit")
	flag.Parse()

	if *rules {
		for _, r := range lint.Rules {
			fmt.Printf("%s — %s\n    %s\n", r.ID, r.Title, r.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	findings, err := lint.Run(cwd, tagList, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

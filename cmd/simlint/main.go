// Command simlint is the repository's determinism and contract analyzer:
// it type-checks every package (tests included), builds a module-wide
// call graph with per-function summaries, and enforces the rules
// cataloged in internal/lint and ARCHITECTURE.md §6 — map-iteration order
// leaking into ordered state, wall-clock/global-RNG use in sim-pure
// packages (including transitively, through helpers), the backfill
// sortedness contract, Manager concurrency and escape, floating-point
// equality, hot-path allocations, discarded durability errors, mutexes
// held across blocking calls, and undeadlined network reads. Intentional
// exceptions carry a `//simlint:allow R<n> <reason>` comment; stale or
// reasonless allows are themselves findings.
//
// Usage:
//
//	simlint ./...             # lint the whole module (the ci.sh gate)
//	simlint -tags debug ./... # lint the debug-build files too
//	simlint -json ./...       # machine-readable findings, allows included
//	simlint -rules            # print the rule catalog
//
// Exit status: 0 clean, 1 findings, 2 analysis failure. With -json,
// allow-suppressed findings are emitted (marked "allowed") but only
// active findings drive the exit status.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"cosched/internal/lint"
)

func main() {
	tags := flag.String("tags", "", "comma-separated build tags to lint under (e.g. debug)")
	rules := flag.Bool("rules", false, "print the rule catalog and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (allow-suppressed findings included, marked)")
	flag.Parse()

	if *rules {
		for _, r := range lint.Rules {
			fmt.Printf("%s — %s\n    %s\n", r.ID, r.Title, r.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		all, err := lint.RunAll(cwd, tagList, patterns...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		// Encode, then decode our own output before printing: the CI
		// gate relies on -json always being parseable.
		var buf bytes.Buffer
		if err := lint.WriteJSON(&buf, all); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: encoding findings: %v\n", err)
			os.Exit(2)
		}
		if _, err := lint.ReadJSON(bytes.NewReader(buf.Bytes())); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: self-check: emitted JSON does not parse: %v\n", err)
			os.Exit(2)
		}
		os.Stdout.Write(buf.Bytes())
		active := 0
		for _, f := range all {
			if !f.Allowed {
				active++
			}
		}
		if active > 0 {
			fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", active)
			os.Exit(1)
		}
		return
	}

	findings, err := lint.Run(cwd, tagList, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// Command tracegen emits synthetic job traces in the extended SWF format
// used by this repository: Intrepid-like and Eureka-like workloads,
// optionally scaled to a target utilization and cross-paired for
// coscheduling.
//
// Usage:
//
//	tracegen -system intrepid -util 0.68 -out intrepid.swf
//	tracegen -system eureka -util 0.5 -jobs 9219 -out eureka.swf
//	tracegen -pair intrepid.swf,eureka.swf -window 120 \
//	         -out-a intrepid-paired.swf -out-b eureka-paired.swf
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cosched/internal/sim"
	"cosched/internal/trace"
	"cosched/internal/workload"
)

func main() {
	var (
		system = flag.String("system", "intrepid", "workload shape: intrepid or eureka")
		jobs   = flag.Int("jobs", 0, "override job count (0 = spec default)")
		util   = flag.Float64("util", 0, "target offered utilization (0 = unscaled)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "", "output trace path (default stdout)")

		pair   = flag.String("pair", "", "pair two existing traces: pathA,pathB")
		window = flag.Int64("window", 120, "pairing submit-time window in seconds")
		prop   = flag.Float64("prop", 0, "pair by proportion instead of window (0 = window mode)")
		outA   = flag.String("out-a", "", "output path for paired trace A")
		outB   = flag.String("out-b", "", "output path for paired trace B")
	)
	flag.Parse()

	if *pair != "" {
		if err := pairMode(*pair, *window, *prop, *seed, *outA, *outB); err != nil {
			fatal(err)
		}
		return
	}

	var spec workload.Spec
	var nodes int
	switch *system {
	case "intrepid":
		spec = workload.IntrepidSpec(*seed)
		nodes = 40960
	case "eureka":
		spec = workload.EurekaSpec(*seed)
		nodes = 100
	default:
		fatal(fmt.Errorf("unknown system %q (want intrepid or eureka)", *system))
	}
	if *jobs > 0 {
		spec.Jobs = *jobs
	}
	tr, err := workload.Generate(spec)
	if err != nil {
		fatal(err)
	}
	if *util > 0 {
		if _, err := workload.ScaleToUtilization(tr, nodes, *util); err != nil {
			fatal(err)
		}
	}

	hdr := trace.NewHeader()
	hdr.Set("Generator", "cosched tracegen")
	hdr.Set("System", spec.Name)
	hdr.Set("Nodes", fmt.Sprintf("%d", nodes))
	hdr.Set("Jobs", fmt.Sprintf("%d", len(tr)))
	hdr.Set("OfferedLoad", fmt.Sprintf("%.3f", workload.OfferedLoad(tr, nodes)))

	if *out == "" {
		if err := trace.Write(os.Stdout, hdr, trace.FromJobs(tr)); err != nil {
			fatal(err)
		}
		return
	}
	if err := trace.SaveFile(*out, hdr, tr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %d jobs to %s (offered load %.3f)\n",
		len(tr), *out, workload.OfferedLoad(tr, nodes))
}

// pairMode links two existing traces and writes them back out.
func pairMode(paths string, windowSec int64, prop float64, seed uint64, outA, outB string) error {
	parts := strings.Split(paths, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-pair wants exactly two comma-separated paths, got %q", paths)
	}
	if outA == "" || outB == "" {
		return fmt.Errorf("-pair requires -out-a and -out-b")
	}
	hdrA, jobsA, err := trace.LoadFile(parts[0])
	if err != nil {
		return err
	}
	hdrB, jobsB, err := trace.LoadFile(parts[1])
	if err != nil {
		return err
	}
	domA := hdrA.Fields["System"]
	if domA == "" {
		domA = "a"
	}
	domB := hdrB.Fields["System"]
	if domB == "" {
		domB = "b"
	}
	var pairs int
	if prop > 0 {
		pairs, err = workload.PairByProportion(workload.NewRNG(seed), jobsA, jobsB, domA, domB, prop)
		if err != nil {
			return err
		}
	} else {
		pairs = workload.PairByWindow(jobsA, jobsB, domA, domB, sim.Duration(windowSec))
	}
	hdrA.Set("Pairs", fmt.Sprintf("%d", pairs))
	hdrB.Set("Pairs", fmt.Sprintf("%d", pairs))
	if err := trace.SaveFile(outA, hdrA, jobsA); err != nil {
		return err
	}
	if err := trace.SaveFile(outB, hdrB, jobsB); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "linked %d pairs; wrote %s and %s\n", pairs, outA, outB)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}

// Command traceinfo summarizes a job trace the way scheduler papers report
// workloads: counts, span, offered load, and the size/runtime/interarrival
// distributions. It reads the extended SWF format written by cmd/tracegen
// (or any standard SWF trace).
//
// The trace streams through a single pass — one record in memory at a
// time plus O(distinct values) histogram state — so a multi-GB SWF file
// summarizes in constant memory. An unsorted file falls back to the
// materialized reader (sorting needs the whole trace); unsorted stdin is
// an error, since a consumed pipe cannot be re-read.
//
// Usage:
//
//	traceinfo -nodes 40960 intrepid.swf
//	tracegen -system eureka -util 0.5 | traceinfo -nodes 100 -
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cosched/internal/trace"
	"cosched/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 0, "machine size for offered-load computation (required)")
	flag.Parse()
	if *nodes <= 0 {
		fmt.Fprintln(os.Stderr, "traceinfo: -nodes is required")
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "traceinfo: exactly one trace path (or -) expected")
		os.Exit(2)
	}

	path := flag.Arg(0)
	var out string
	var err error
	if path == "-" {
		out, err = summarize(os.Stdin, "stdin", *nodes)
		if errors.Is(err, trace.ErrUnsorted) {
			fatal(fmt.Errorf("%w; sort the trace or pass it as a file so traceinfo can materialize it", err))
		}
	} else {
		out, err = summarizeFile(path, *nodes)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

// summarize streams one SWF trace and renders the full report: header
// comments, the skipped-record note, and the workload statistics. The
// whole pass holds one record plus the streaming histogram state.
func summarize(r io.Reader, name string, nodes int) (string, error) {
	return summarizeStream(trace.NewStream(r), name, nodes)
}

func summarizeStream(s *trace.Stream, name string, nodes int) (string, error) {
	js := trace.NewJobStream(s)
	st, err := workload.AnalyzeStream(js, nodes)
	if err != nil {
		return "", err
	}
	return render(s.Header(), js.Skipped(), st, name, nodes), nil
}

// summarizeFile streams path, falling back to the materialized reader
// when the file is not submit-sorted (a file can be re-read; stdin
// cannot).
func summarizeFile(path string, nodes int) (string, error) {
	fs, err := trace.OpenStream(path)
	if err != nil {
		return "", err
	}
	out, err := summarizeStream(fs.Stream, path, nodes)
	fs.Close()
	if !errors.Is(err, trace.ErrUnsorted) {
		return out, err
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	hdr, recs, err := trace.Read(f)
	if err != nil {
		return "", err
	}
	jobs, skipped := trace.ToJobs(recs)
	return render(hdr, skipped, workload.Analyze(jobs, nodes), path, nodes), nil
}

// render assembles the report; both the streaming and the materialized
// paths funnel through it so their outputs are byte-identical.
func render(hdr *trace.Header, skipped int, st workload.TraceStats, name string, nodes int) string {
	var b strings.Builder
	if hdr != nil && len(hdr.Order) > 0 {
		b.WriteString("header:\n")
		for _, k := range hdr.Order {
			fmt.Fprintf(&b, "  %s: %s\n", k, hdr.Fields[k])
		}
	}
	if skipped > 0 {
		fmt.Fprintf(&b, "skipped %d records with unknown runtime/size\n", skipped)
	}
	b.WriteString(st.Render(name, nodes))
	return b.String()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
	os.Exit(1)
}

// Command traceinfo summarizes a job trace the way scheduler papers report
// workloads: counts, span, offered load, and the size/runtime/interarrival
// distributions. It reads the extended SWF format written by cmd/tracegen
// (or any standard SWF trace).
//
// Usage:
//
//	traceinfo -nodes 40960 intrepid.swf
//	tracegen -system eureka -util 0.5 | traceinfo -nodes 100 -
package main

import (
	"flag"
	"fmt"
	"os"

	"cosched/internal/job"
	"cosched/internal/trace"
	"cosched/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 0, "machine size for offered-load computation (required)")
	flag.Parse()
	if *nodes <= 0 {
		fmt.Fprintln(os.Stderr, "traceinfo: -nodes is required")
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "traceinfo: exactly one trace path (or -) expected")
		os.Exit(2)
	}

	path := flag.Arg(0)
	var hdr *trace.Header
	var jobs []*job.Job
	skipped := 0
	if path == "-" {
		h, recs, err := trace.Read(os.Stdin)
		if err != nil {
			fatal(err)
		}
		hdr = h
		jobs, skipped = trace.ToJobs(recs)
		path = "stdin"
	} else {
		h, js, err := trace.LoadFile(path)
		if err != nil {
			fatal(err)
		}
		hdr, jobs = h, js
	}

	if hdr != nil && len(hdr.Order) > 0 {
		fmt.Println("header:")
		for _, k := range hdr.Order {
			fmt.Printf("  %s: %s\n", k, hdr.Fields[k])
		}
	}
	if skipped > 0 {
		fmt.Printf("skipped %d records with unknown runtime/size\n", skipped)
	}
	st := workload.Analyze(jobs, *nodes)
	fmt.Print(st.Render(path, *nodes))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "traceinfo: %v\n", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/trace"
	"cosched/internal/workload"
)

// testTrace renders a small SWF trace with a header, a mix of sizes and
// runtimes, and one invalid record (zero runtime) the skip rules reject.
func testTrace(t *testing.T) []byte {
	t.Helper()
	var jobs []*job.Job
	for i := 1; i <= 40; i++ {
		j := job.New(job.ID(i), 1+(i*7)%32, sim.Time(i*300+(i%5)*13), sim.Duration(60+(i*97)%7200), sim.Duration(120+(i*97)%7200))
		j.User = i % 6
		jobs = append(jobs, j)
	}
	hdr := trace.NewHeader()
	hdr.Set("Version", "2.2")
	hdr.Set("Computer", "traceinfo-test")
	var buf bytes.Buffer
	if err := trace.Write(&buf, hdr, trace.FromJobs(jobs)); err != nil {
		t.Fatal(err)
	}
	// One record with unknown runtime: ToJobs and JobStream both skip it.
	buf.WriteString("9999 999999 -1 -1 -1 -1 -1 4 -1 -1 1 1 1 -1 -1 -1 -1 -1\n")
	return buf.Bytes()
}

// referenceRender is the materialized oracle: whole-file Read, ToJobs,
// Analyze — the pre-streaming implementation's exact pipeline.
func referenceRender(t *testing.T, src []byte, name string, nodes int) string {
	t.Helper()
	hdr, recs, err := trace.Read(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	jobs, skipped := trace.ToJobs(recs)
	return render(hdr, skipped, workload.Analyze(jobs, nodes), name, nodes)
}

// TestStreamingSummarizeMatchesMaterialized is the satellite's
// render-twice gate: the streaming single-pass summary must be
// byte-identical to the materialized pipeline, run after run.
func TestStreamingSummarizeMatchesMaterialized(t *testing.T) {
	src := testTrace(t)
	const nodes = 64
	want := referenceRender(t, src, "x.swf", nodes)
	for round := 0; round < 2; round++ {
		got, err := summarize(bytes.NewReader(src), "x.swf", nodes)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round %d: streaming summary differs:\n got:\n%s\nwant:\n%s", round, got, want)
		}
	}
	if !strings.Contains(want, "skipped 1 records") {
		t.Fatalf("fixture lost its skipped record:\n%s", want)
	}
	if !strings.Contains(want, "traceinfo-test") {
		t.Fatalf("header line missing:\n%s", want)
	}
}

// TestSummarizeFileUnsortedFallsBack: a file out of submit order cannot
// stream, so traceinfo re-reads it materialized and still reports.
func TestSummarizeFileUnsortedFallsBack(t *testing.T) {
	src := testTrace(t)
	// Append a record far in the past: breaks streaming order.
	src = append(src, "9998 5 -1 3600 4 -1 -1 4 3600 -1 1 1 1 -1 -1 -1 -1 -1\n"...)
	path := filepath.Join(t.TempDir(), "unsorted.swf")
	if err := os.WriteFile(path, src, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := summarizeFile(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceRender(t, src, path, 64)
	if got != want {
		t.Fatalf("fallback summary differs:\n got:\n%s\nwant:\n%s", got, want)
	}

	// The same bytes on a pipe cannot fall back: the error must say so.
	_, err = summarize(bytes.NewReader(src), "stdin", 64)
	if !errors.Is(err, trace.ErrUnsorted) {
		t.Fatalf("err = %v, want ErrUnsorted", err)
	}
}

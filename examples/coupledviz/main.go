// Coupledviz: a FLASH-style simulation + covisualization campaign on an
// Intrepid/Eureka-like coupled system (the paper's §II-B motivating
// scenario).
//
// A month of background load runs on both machines. On top of it, a
// science campaign submits eight large simulation jobs, each paired with a
// visualization job on the analysis cluster so the output can be processed
// at run time and streamed over the network instead of the file system.
//
// The example runs the campaign twice — compute side configured with
// "hold" and then with "yield" — and contrasts the two schemes' pair
// synchronization time and service-unit loss, the central trade-off of the
// paper.
//
// Run with:
//
//	go run ./examples/coupledviz
package main

import (
	"fmt"
	"log"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// buildCampaign returns the two domain traces with the paired campaign
// jobs appended, freshly generated so each run mutates its own copy.
func buildCampaign() (compute, viz []*job.Job, campaignIDs []job.ID) {
	computeSpec := workload.Spec{
		Name: "bgp", Jobs: 400, Span: 7 * sim.Day,
		Sizes: []workload.SizeClass{
			{Nodes: 512, Weight: 0.5}, {Nodes: 1024, Weight: 0.3}, {Nodes: 2048, Weight: 0.2},
		},
		RuntimeMu: 7.2, RuntimeSigma: 1.0,
		MinRuntime: 5 * sim.Minute, MaxRuntime: 6 * sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.5,
		Seed: 1001,
	}
	vizSpec := workload.Spec{
		Name: "viz", Jobs: 300, Span: 7 * sim.Day,
		Sizes: []workload.SizeClass{
			{Nodes: 2, Weight: 0.4}, {Nodes: 8, Weight: 0.3},
			{Nodes: 16, Weight: 0.2}, {Nodes: 32, Weight: 0.1},
		},
		RuntimeMu: 6.5, RuntimeSigma: 1.0,
		MinRuntime: 2 * sim.Minute, MaxRuntime: 2 * sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.0,
		Seed: 1002,
	}
	var err error
	compute, err = workload.Generate(computeSpec)
	if err != nil {
		log.Fatal(err)
	}
	viz, err = workload.Generate(vizSpec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workload.ScaleToUtilization(compute, 8192, 0.65); err != nil {
		log.Fatal(err)
	}
	if _, err := workload.ScaleToUtilization(viz, 100, 0.45); err != nil {
		log.Fatal(err)
	}

	// The campaign: 8 runs, every 18 hours, each a 2048-node / 3-hour
	// simulation paired with a 32-node visualization of the same length.
	nextID := job.ID(10000)
	for i := 0; i < 8; i++ {
		submit := sim.Time(i) * 18 * sim.Hour
		simJob := job.New(nextID, 2048, submit, 3*sim.Hour, 4*sim.Hour)
		simJob.Name = fmt.Sprintf("flash-run-%d", i)
		vizJob := job.New(nextID, 32, submit+2*sim.Minute, 3*sim.Hour, 4*sim.Hour)
		vizJob.Name = fmt.Sprintf("vl3-covis-%d", i)
		simJob.Mates = []job.MateRef{{Domain: "eureka", Job: vizJob.ID}}
		vizJob.Mates = []job.MateRef{{Domain: "intrepid", Job: simJob.ID}}
		compute = append(compute, simJob)
		viz = append(viz, vizJob)
		campaignIDs = append(campaignIDs, nextID)
		nextID++
	}
	return compute, viz, campaignIDs
}

// runScheme simulates the campaign under one compute-side scheme.
func runScheme(scheme cosched.Scheme) (res *coupled.Result, s *coupled.Sim, ids []job.ID) {
	compute, viz, ids := buildCampaign()
	s, err := coupled.New(coupled.Options{
		Domains: []coupled.DomainConfig{
			{
				Name: "intrepid", Nodes: 8192, MinPartition: 512,
				Backfilling: true,
				Cosched:     cosched.DefaultConfig(scheme),
				Trace:       compute,
			},
			{
				Name: "eureka", Nodes: 100,
				Backfilling: true,
				Cosched:     cosched.DefaultConfig(cosched.Yield),
				Trace:       viz,
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	return s.Run(), s, ids
}

func main() {
	fmt.Println("coupledviz: FLASH-style co-visualization campaign (8 paired runs over a week)")
	for _, scheme := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
		res, s, ids := runScheme(scheme)
		intr := s.Manager("intrepid")
		fmt.Printf("\n=== compute scheme: %s (analysis side always yields) ===\n", scheme)
		var worstSync, totalSync sim.Duration
		for _, id := range ids {
			j, _ := intr.Job(id)
			totalSync += j.SyncTime()
			if j.SyncTime() > worstSync {
				worstSync = j.SyncTime()
			}
			fmt.Printf("  %-13s start t=%7.2fh sync %5.1f min (held %6.0f node-min)\n",
				j.Name, float64(j.StartTime)/3600,
				float64(j.SyncTime())/60, float64(j.HeldNodeSeconds)/60)
		}
		ri := res.Reports["intrepid"]
		re := res.Reports["eureka"]
		fmt.Printf("  campaign: avg sync %.1f min, worst %.1f min\n",
			float64(totalSync)/float64(len(ids))/60, float64(worstSync)/60)
		fmt.Printf("  intrepid: avg wait %.1f min, service-unit loss %.0f node-hours (%.2f%%)\n",
			ri.Wait.Mean, ri.LostNodeHours, 100*ri.LostUtilization)
		fmt.Printf("  eureka:   avg wait %.1f min, co-start violations %d, stuck %d\n",
			re.Wait.Mean, res.CoStartViolations, res.StuckJobs)
	}
	fmt.Println("\nhold minimizes pair sync time; yield eliminates the node-hour loss —")
	fmt.Println("the trade-off system owners balance per §IV-B of the paper.")
}

// Heteroforecast: N-way coscheduling across three heterogeneous domains —
// the paper's §II-B weather-forecasting scenario and its §VI future-work
// extension ("N-way coscheduling on more than two scheduling domains").
//
// A forecasting center runs ensembles where each forecast cycle needs
// three programs at once on three separately administered machines:
//
//   - an atmosphere model on the CPU cluster,
//   - an ocean/analysis model on the GPU cluster,
//   - a data-assimilation coupler on the analysis system.
//
// Real-time prediction requires all three to execute concurrently; each
// machine keeps its own scheduler and background load. The example links
// each cycle's three jobs into a co-start group and runs a day of cycles,
// verifying every group started simultaneously.
//
// Run with:
//
//	go run ./examples/heteroforecast
package main

import (
	"fmt"
	"log"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

const cycles = 6 // forecast cycles per day (every 4 hours)

func background(name string, seed uint64, nodes int, jobs int) []*job.Job {
	spec := workload.Spec{
		Name: name, Jobs: jobs, Span: sim.Day,
		Sizes: []workload.SizeClass{
			{Nodes: nodes / 16, Weight: 0.5},
			{Nodes: nodes / 8, Weight: 0.3},
			{Nodes: nodes / 4, Weight: 0.2},
		},
		RuntimeMu: 6.8, RuntimeSigma: 0.9,
		MinRuntime: 5 * sim.Minute, MaxRuntime: 3 * sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.0,
		Seed: seed,
	}
	tr, err := workload.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	cpu := background("cpu", 71, 4096, 120)
	gpu := background("gpu", 72, 256, 80)
	viz := background("viz", 73, 64, 60)

	domains := []string{"cpu", "gpu", "viz"}
	type member struct {
		trace *[]*job.Job
		nodes int
	}
	members := map[string]member{
		"cpu": {&cpu, 1024}, // atmosphere model
		"gpu": {&gpu, 64},   // GPU-tailored ocean model
		"viz": {&viz, 16},   // assimilation/visual coupler
	}

	// One 3-way group per forecast cycle. The three submissions land
	// within a few minutes of each other, as an automated pipeline would
	// submit them.
	groups := make([][]*job.Job, cycles)
	for c := 0; c < cycles; c++ {
		submit := sim.Time(c) * 4 * sim.Hour
		var g []*job.Job
		for i, d := range domains {
			m := members[d]
			j := job.New(job.ID(9000+c), m.nodes, submit+sim.Time(i)*sim.Minute,
				90*sim.Minute, 2*sim.Hour)
			j.Name = fmt.Sprintf("forecast-%d-%s", c, d)
			*m.trace = append(*m.trace, j)
			g = append(g, j)
		}
		if err := workload.LinkGroup(g, domains); err != nil {
			log.Fatal(err)
		}
		groups[c] = g
	}

	cfg := cosched.DefaultConfig(cosched.Hold)
	s, err := coupled.New(coupled.Options{
		Domains: []coupled.DomainConfig{
			{Name: "cpu", Nodes: 4096, Backfilling: true, Cosched: cfg, Trace: cpu},
			{Name: "gpu", Nodes: 256, Backfilling: true, Cosched: cfg, Trace: gpu},
			{Name: "viz", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Yield), Trace: viz},
		},
		// Exercise the wire protocol: every peer call crosses the
		// length-prefixed JSON codec, as separate daemons would.
		UseWireProtocol: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := s.Run()

	fmt.Println("heteroforecast: 3-way coscheduling across cpu/gpu/viz domains")
	fmt.Printf("  %d forecast cycles, %d total jobs, wire protocol between all domains\n",
		cycles, res.TotalJobs)
	allSync := true
	for c, g := range groups {
		same := g[0].StartTime == g[1].StartTime && g[1].StartTime == g[2].StartTime
		allSync = allSync && same
		fmt.Printf("  cycle %d: submitted t=%5.1fh, co-started t=%5.1fh on all 3 domains (aligned=%v)\n",
			c, float64(g[0].SubmitTime)/3600, float64(g[0].StartTime)/3600, same)
	}
	if allSync && res.CoStartViolations == 0 {
		fmt.Println("  ALL CYCLES CO-STARTED — real-time coupled forecasting feasible")
	} else {
		fmt.Printf("  co-start violations: %d\n", res.CoStartViolations)
	}
	for _, d := range domains {
		rep := res.Reports[d]
		fmt.Printf("  domain %-3s: %3d/%3d jobs done, avg wait %5.1f min, loss %6.1f node-hours\n",
			d, rep.Completed, rep.TotalJobs, rep.Wait.Mean, rep.LostNodeHours)
	}
}

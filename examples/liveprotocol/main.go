// Liveprotocol: two resource-manager daemons coordinating over real TCP.
//
// This example exercises the non-simulated path: two managers run against
// the wall clock (accelerated 60×), each serving the lightweight
// coordination protocol on a real TCP socket, exactly as cmd/coschedd
// does. A paired job is submitted to each side 5 virtual minutes apart;
// the hold scheme parks the early job's nodes until its mate arrives, and
// both start at the same virtual instant.
//
// Run with:
//
//	go run ./examples/liveprotocol
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/live"
	"cosched/internal/peerlink"
	"cosched/internal/proto"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// domain bundles one live resource manager with its servers.
type domain struct {
	name   string
	mgr    *resmgr.Manager
	driver *live.Driver
	peer   *proto.Server
	admin  *live.AdminServer

	peerAddr, adminAddr string
}

func startDomain(name string, nodes int, scheme cosched.Scheme) *domain {
	eng := sim.NewEngine()
	mgr := resmgr.New(eng, resmgr.Options{
		Name:        name,
		Pool:        cluster.New(name, nodes),
		Backfilling: true,
		Cosched:     cosched.DefaultConfig(scheme),
	})
	driver := live.NewDriver(eng, 60) // one virtual minute per wall second

	peerSrv := proto.NewServer(mgr, driver, nil)
	peerAddr, err := peerSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	adminSrv := live.NewAdminServer(mgr, driver, nil)
	adminAddr, err := adminSrv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	return &domain{
		name: name, mgr: mgr, driver: driver,
		peer: peerSrv, admin: adminSrv,
		peerAddr: peerAddr.String(), adminAddr: adminAddr.String(),
	}
}

func main() {
	hpc := startDomain("hpc", 512, cosched.Hold)
	viz := startDomain("viz", 32, cosched.Yield)
	defer hpc.peer.Close()
	defer hpc.admin.Close()
	defer viz.peer.Close()
	defer viz.admin.Close()

	// Cross-wire the peers over TCP through resilient links: lazy dialing
	// (either daemon could have started first), redial backoff, and a
	// circuit breaker so a dead partner costs microseconds, not a dial
	// timeout per scheduling iteration — exactly the wiring cmd/coschedd
	// uses.
	hpcToViz := peerlink.New(peerlink.Config{Name: "viz", Addr: viz.peerAddr})
	defer hpcToViz.Close()
	vizToHpc := peerlink.New(peerlink.Config{Name: "hpc", Addr: hpc.peerAddr})
	defer vizToHpc.Close()
	hpc.driver.Do(func() { hpc.mgr.AddPeer("viz", hpcToViz) })
	viz.driver.Do(func() { viz.mgr.AddPeer("hpc", vizToHpc) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go hpc.driver.Run(ctx)
	go viz.driver.Run(ctx)

	fmt.Printf("liveprotocol: hpc daemon (peer %s) + viz daemon (peer %s), 60x wall clock\n",
		hpc.peerAddr, viz.peerAddr)

	// Submit the compute half of the pair now...
	hpcAdmin, err := live.DialAdmin(hpc.adminAddr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer hpcAdmin.Close()
	vizAdmin, err := live.DialAdmin(viz.adminAddr, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer vizAdmin.Close()

	const pairID = job.ID(1)
	// Declare the viz half on its daemon before anything is submitted, so
	// the hpc side sees "unsubmitted" (and holds) rather than "unknown"
	// (and starts alone) — the co-submission protocol cmd/cosubmit uses.
	if err := vizAdmin.Expect(live.WireJob{
		ID: pairID, Name: "covis", Nodes: 8,
		Runtime: 10 * sim.Minute, Walltime: 20 * sim.Minute,
		Mates: []job.MateRef{{Domain: "hpc", Job: pairID}},
	}); err != nil {
		log.Fatal(err)
	}
	if err := hpcAdmin.Submit(live.WireJob{
		ID: pairID, Name: "simulation", Nodes: 256,
		Runtime: 10 * sim.Minute, Walltime: 20 * sim.Minute,
		Mates: []job.MateRef{{Domain: "viz", Job: pairID}},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  submitted simulation (256 nodes) to hpc — it will HOLD for its mate")

	// ...and the analysis half 5 virtual minutes (5 wall seconds) later.
	time.Sleep(5 * time.Second)
	if err := vizAdmin.Submit(live.WireJob{
		ID: pairID, Name: "covis", Nodes: 8,
		Runtime: 10 * sim.Minute, Walltime: 20 * sim.Minute,
		Mates: []job.MateRef{{Domain: "hpc", Job: pairID}},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  submitted covis (8 nodes) to viz 5 virtual minutes later")

	// Poll both admins until the pair starts.
	deadline := time.Now().Add(30 * time.Second)
	for {
		hs, err1 := hpcAdmin.Status(pairID)
		vs, err2 := vizAdmin.Status(pairID)
		if err1 == nil && err2 == nil && hs.Started && vs.Started {
			fmt.Printf("  CO-START over live TCP: hpc job at virtual t=%ds, viz job at virtual t=%ds\n",
				hs.StartTime, vs.StartTime)
			if hs.StartTime == vs.StartTime {
				fmt.Println("  start instants identical — the protocol held the pair together")
			}
			hj, err := hpcAdmin.Status(pairID)
			if err != nil {
				hj = hs // the poll above just succeeded; fall back to it
			}
			fmt.Printf("  states now: hpc=%s viz=%s\n", hj.State, vs.State)
			ls := hpcToViz.Snapshot()
			fmt.Printf("  hpc->viz link: %s, %d calls (%d ok), %d dials, %d breaker trips\n",
				ls.State, ls.Calls, ls.Successes, ls.Dials, ls.Trips)
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("timed out waiting for co-start")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// Parallelsweep: fan experiment cells across cores with bit-identical
// results.
//
// A two-point load sweep runs a small single-domain simulation at two
// utilizations. Each cell is a closure addressed by a stable index;
// parallel.Map executes the cells across a worker pool and returns the
// results in index order — never completion order — so the printed report
// is byte-identical whether the sweep runs serially or on every core.
// This is the same pool that cmd/experiments fans its figure sweeps
// through (see the -parallel flag).
//
// Run with:
//
//	go run ./examples/parallelsweep
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"cosched/internal/coupled"
	"cosched/internal/parallel"
	"cosched/internal/workload"
)

// nodes sizes the example cluster (the paper's Eureka analysis machine).
const nodes = 100

// cellResult is what one sweep cell reports.
type cellResult struct {
	util      float64
	completed int
	total     int
	waitMin   float64
	stuck     int
}

// runCell is one sweep cell: generate a small trace scaled to the target
// utilization and simulate it. Everything the cell needs is derived
// inside the closure from (spec seed, util), so cells share no state and
// can run on any worker.
func runCell(util float64) (cellResult, error) {
	spec := workload.EurekaSpec(7)
	spec.Jobs = 200
	trace, err := workload.Generate(spec)
	if err != nil {
		return cellResult{}, err
	}
	if _, err := workload.ScaleToUtilization(trace, nodes, util); err != nil {
		return cellResult{}, err
	}
	s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
		{Name: "eureka", Nodes: nodes, Backfilling: true, Trace: trace},
	}})
	if err != nil {
		return cellResult{}, err
	}
	res := s.Run()
	rep := res.Reports["eureka"]
	return cellResult{util: util, completed: rep.Completed, total: rep.TotalJobs,
		waitMin: rep.Wait.Mean, stuck: res.StuckJobs}, nil
}

// run fans the sweep across workers (0 = one per core, 1 = serial) and
// writes the report to w. The bytes written do not depend on workers.
func run(w io.Writer, workers int) error {
	utils := []float64{0.25, 0.60}
	results, err := parallel.Map(context.Background(), parallel.Workers(workers), len(utils),
		func(i int) (cellResult, error) { return runCell(utils[i]) })
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "parallelsweep: 2-point load sweep, aggregated by cell index")
	for _, r := range results {
		fmt.Fprintf(w, "  util %.2f: %d/%d jobs completed, avg wait %.1f min, stuck %d\n",
			r.util, r.completed, r.total, r.waitMin, r.stuck)
	}
	return nil
}

func main() {
	if err := run(os.Stdout, 0); err != nil {
		log.Fatal(err)
	}
}

package main

import (
	"os"
	"strings"
	"testing"
)

// Example pins the exact report, go-doc style: the sweep runs with one
// worker per core, and the output must still match this serial golden
// byte-for-byte.
func Example() {
	if err := run(os.Stdout, 0); err != nil {
		panic(err)
	}
	// Output:
	// parallelsweep: 2-point load sweep, aggregated by cell index
	//   util 0.25: 200/200 jobs completed, avg wait 3.1 min, stuck 0
	//   util 0.60: 200/200 jobs completed, avg wait 14.7 min, stuck 0
}

// TestRunByteIdenticalAcrossWorkers is the example-sized version of the
// pool's determinism guarantee: the same bytes at every worker count.
func TestRunByteIdenticalAcrossWorkers(t *testing.T) {
	var want string
	for _, workers := range []int{1, 2, 8} {
		var b strings.Builder
		if err := run(&b, workers); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if workers == 1 {
			want = b.String()
			continue
		}
		if b.String() != want {
			t.Fatalf("workers %d output differs from serial:\n%s\nwant:\n%s", workers, b.String(), want)
		}
	}
}

// Quickstart: the smallest complete use of the coscheduling library.
//
// Two scheduling domains — a compute cluster and an analysis cluster —
// each run their own workload. One compute job and one analysis job are
// associated (a simulation and its covisualization); the coscheduling
// mechanism guarantees they start at the same instant even though they are
// submitted 15 minutes apart to independently scheduled machines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/sim"
)

func main() {
	// The compute job arrives at t=0 and needs 512 nodes for an hour.
	compute := job.New(1, 512, 0, sim.Hour, 2*sim.Hour)
	// Its analysis mate arrives 15 minutes later on the other machine.
	analysis := job.New(1, 16, 15*sim.Minute, sim.Hour, 2*sim.Hour)

	// Associate them: each names the other's domain and job ID. Nothing
	// else is shared between the two resource managers.
	compute.Mates = []job.MateRef{{Domain: "viz", Job: analysis.ID}}
	analysis.Mates = []job.MateRef{{Domain: "hpc", Job: compute.ID}}

	// Background work so the machines aren't idle.
	filler1 := job.New(2, 1024, 5*sim.Minute, 30*sim.Minute, sim.Hour)
	filler2 := job.New(2, 32, 2*sim.Minute, 20*sim.Minute, sim.Hour)

	s, err := coupled.New(coupled.Options{
		Domains: []coupled.DomainConfig{
			{
				Name:        "hpc",
				Nodes:       2048,
				Backfilling: true,
				// hold: park the compute job's nodes until the mate is ready.
				Cosched: cosched.DefaultConfig(cosched.Hold),
				Trace:   []*job.Job{compute, filler1},
			},
			{
				Name:        "viz",
				Nodes:       64,
				Backfilling: true,
				// yield: give the slot away rather than waste analysis nodes.
				Cosched: cosched.DefaultConfig(cosched.Yield),
				Trace:   []*job.Job{analysis, filler2},
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res := s.Run()

	fmt.Println("quickstart: coupled-system coscheduling")
	fmt.Printf("  compute  job: submitted t=%-5d started t=%-5d (%s)\n",
		0, compute.StartTime, compute.State)
	fmt.Printf("  analysis job: submitted t=%-5d started t=%-5d (%s)\n",
		15*sim.Minute, analysis.StartTime, analysis.State)
	if compute.StartTime == analysis.StartTime {
		fmt.Printf("  CO-START at t=%d: the pair began simultaneously across domains\n",
			compute.StartTime)
	}
	fmt.Printf("  compute job held %d nodes for %d s waiting (service-unit cost %d node-s)\n",
		compute.Nodes, compute.SyncTime(), compute.HeldNodeSeconds)
	fmt.Printf("  co-start violations across the run: %d\n", res.CoStartViolations)
	names := make([]string, 0, len(res.Reports))
	for name := range res.Reports {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep := res.Reports[name]
		fmt.Printf("  domain %-4s: %d/%d jobs completed, avg wait %.1f min\n",
			name, rep.Completed, rep.TotalJobs, rep.Wait.Mean)
	}
}

// Tracereplay: the workflow a supercomputing center would actually use —
// drop two real (or generated) SWF traces in, pair the co-submitted jobs,
// replay them under coscheduling, and compare schemes.
//
// The example generates the two traces on the fly (stand-ins for a site's
// accounting logs), writes them through the SWF layer so the exact on-disk
// path is exercised, then replays the same files under no coordination,
// hold, and yield, and reports what each costs.
//
// Run with:
//
//	go run ./examples/tracereplay
//
// To replay your own traces, point -compute and -analysis at SWF files
// (field 19 optionally carries "domain:jobid" mate references).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/sim"
	"cosched/internal/trace"
	"cosched/internal/workload"
)

const (
	computeNodes  = 8192
	analysisNodes = 128
)

func main() {
	computePath := flag.String("compute", "", "compute-system SWF trace (empty = generate)")
	analysisPath := flag.String("analysis", "", "analysis-system SWF trace (empty = generate)")
	flag.Parse()

	cPath, aPath := *computePath, *analysisPath
	if cPath == "" || aPath == "" {
		dir, err := os.MkdirTemp("", "tracereplay")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cPath, aPath = generate(dir)
		fmt.Printf("generated example traces in %s\n", dir)
	}

	// Load through the SWF layer, as a site would from accounting logs.
	_, computeJobs, err := trace.LoadFile(cPath)
	if err != nil {
		log.Fatal(err)
	}
	_, analysisJobs, err := trace.LoadFile(aPath)
	if err != nil {
		log.Fatal(err)
	}
	// Pair co-submitted jobs (within the paper's 2-minute window) unless
	// the traces already carry mate references.
	pairs := workload.PairByWindow(computeJobs, analysisJobs, "compute", "analysis", 2*sim.Minute)
	fmt.Printf("loaded %d compute + %d analysis jobs, %d pairs (%.1f%% of compute jobs)\n\n",
		len(computeJobs), len(analysisJobs), pairs,
		100*workload.PairedFraction(computeJobs))

	type variant struct {
		name    string
		enabled bool
		scheme  cosched.Scheme
	}
	for _, v := range []variant{
		{"no coordination", false, cosched.Hold},
		{"coscheduling (hold)", true, cosched.Hold},
		{"coscheduling (yield)", true, cosched.Yield},
	} {
		cfg := cosched.Config{}
		if v.enabled {
			cfg = cosched.DefaultConfig(v.scheme)
		}
		s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
			{Name: "compute", Nodes: computeNodes, Backfilling: true,
				Cosched: cfg, Trace: workload.Clone(computeJobs)},
			{Name: "analysis", Nodes: analysisNodes, Backfilling: true,
				Cosched: cfg, Trace: workload.Clone(analysisJobs)},
		}})
		if err != nil {
			log.Fatal(err)
		}
		res := s.Run()
		rc := res.Reports["compute"]
		ra := res.Reports["analysis"]
		fmt.Printf("%-22s compute wait %5.1fm  analysis wait %5.1fm  sync %5.1fm  loss %6.0f nh  unsynced pairs %d\n",
			v.name+":", rc.Wait.Mean, ra.Wait.Mean,
			(rc.PairedSync.Mean+ra.PairedSync.Mean)/2,
			rc.LostNodeHours+ra.LostNodeHours,
			res.CoStartViolations)
	}
	fmt.Println("\nwith coordination off, pairs drift apart (unsynced pairs > 0);")
	fmt.Println("hold buys the tightest sync at a node-hour cost, yield is free but looser.")
}

// generate writes a week of synthetic compute+analysis traces to dir.
func generate(dir string) (computePath, analysisPath string) {
	computeSpec := workload.Spec{
		Name: "compute", Jobs: 900, Span: 7 * sim.Day,
		Sizes: []workload.SizeClass{
			{Nodes: 256, Weight: 0.45}, {Nodes: 512, Weight: 0.30},
			{Nodes: 1024, Weight: 0.18}, {Nodes: 2048, Weight: 0.07},
		},
		RuntimeMu: 7.0, RuntimeSigma: 1.1,
		MinRuntime: 5 * sim.Minute, MaxRuntime: 8 * sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.5, Seed: 41,
	}
	analysisSpec := workload.Spec{
		Name: "analysis", Jobs: 700, Span: 7 * sim.Day,
		Sizes: []workload.SizeClass{
			{Nodes: 2, Weight: 0.35}, {Nodes: 8, Weight: 0.30},
			{Nodes: 16, Weight: 0.20}, {Nodes: 32, Weight: 0.15},
		},
		RuntimeMu: 6.4, RuntimeSigma: 1.0,
		MinRuntime: 2 * sim.Minute, MaxRuntime: 3 * sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.0, Seed: 42,
	}
	computeJobs, err := workload.Generate(computeSpec)
	if err != nil {
		log.Fatal(err)
	}
	analysisJobs, err := workload.Generate(analysisSpec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workload.ScaleToUtilization(computeJobs, computeNodes, 0.6); err != nil {
		log.Fatal(err)
	}
	if _, err := workload.ScaleToUtilization(analysisJobs, analysisNodes, 0.45); err != nil {
		log.Fatal(err)
	}
	computePath = filepath.Join(dir, "compute.swf")
	analysisPath = filepath.Join(dir, "analysis.swf")
	hdr := trace.NewHeader()
	hdr.Set("Generator", "examples/tracereplay")
	if err := trace.SaveFile(computePath, hdr, computeJobs); err != nil {
		log.Fatal(err)
	}
	if err := trace.SaveFile(analysisPath, hdr, analysisJobs); err != nil {
		log.Fatal(err)
	}
	return computePath, analysisPath
}

// Package arena provides a slab-based typed arena: values are handed out
// from fixed-size slabs and reclaimed all at once with Reset, not
// individually freed. The experiment harness allocates every job of a
// simulation cell from one arena and resets it between repetitions, so
// steady-state sweep execution recycles the same slabs instead of churning
// the garbage collector with millions of short-lived structs.
//
// Slabs are fixed-size (not doubling), so pointers returned by Get remain
// stable for the arena's lifetime: growing the arena never moves values
// already handed out. Reset keeps the slabs and hands the same memory out
// again, so a pointer obtained before a Reset must not be used afterwards.
package arena

// slabSize is the number of values per slab. 4096 jobs × ~140 B ≈ 570 KiB
// per slab keeps slab count low for million-value arenas while bounding
// over-allocation for small ones.
const slabSize = 4096

// Arena hands out values of type T from recycled slabs. The zero value is
// ready to use. Not safe for concurrent use; each simulation cell (or
// worker) owns its own arena.
type Arena[T any] struct {
	slabs [][]T
	slab  int // index of the slab currently being filled
	next  int // next unused element in that slab
	live  int // values handed out since the last Reset
	zero  T
}

// Get returns a pointer to a zeroed T. The pointer is stable until Reset.
//
//simlint:hotpath
func (a *Arena[T]) Get() *T {
	if a.slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]T, slabSize)) //simlint:allow R6 amortized slab growth: one allocation per slabSize values, none once Reset reuses slabs
	}
	s := a.slabs[a.slab]
	p := &s[a.next]
	*p = a.zero // slabs are reused across Resets; hand out clean values
	a.next++
	a.live++
	if a.next == slabSize {
		a.slab++
		a.next = 0
	}
	return p
}

// Len returns the number of values handed out since the last Reset.
func (a *Arena[T]) Len() int { return a.live }

// Cap returns the total capacity currently held in slabs.
func (a *Arena[T]) Cap() int { return len(a.slabs) * slabSize }

// Reset reclaims every value at once, keeping the slabs for reuse. All
// pointers previously returned by Get become invalid: the same memory will
// be handed out (re-zeroed) by subsequent Gets.
func (a *Arena[T]) Reset() {
	a.slab = 0
	a.next = 0
	a.live = 0
}

package arena

import "testing"

type thing struct {
	a, b int64
	s    string
}

func TestGetReturnsZeroedValues(t *testing.T) {
	var a Arena[thing]
	p := a.Get()
	p.a, p.b, p.s = 1, 2, "x"
	a.Reset()
	q := a.Get()
	if q != p {
		t.Fatalf("after Reset, first Get should reuse the first slot")
	}
	if q.a != 0 || q.b != 0 || q.s != "" {
		t.Fatalf("recycled value not zeroed: %+v", *q)
	}
}

func TestPointersStableAcrossGrowth(t *testing.T) {
	var a Arena[thing]
	first := a.Get()
	first.a = 42
	// Force several slab allocations; the first pointer must not move.
	for i := 0; i < 3*slabSize; i++ {
		a.Get()
	}
	if first.a != 42 {
		t.Fatalf("first value clobbered after growth: %+v", *first)
	}
	if a.Len() != 3*slabSize+1 {
		t.Fatalf("Len = %d, want %d", a.Len(), 3*slabSize+1)
	}
	if a.Cap() < a.Len() {
		t.Fatalf("Cap %d < Len %d", a.Cap(), a.Len())
	}
}

func TestDistinctPointersWithinEpoch(t *testing.T) {
	var a Arena[thing]
	seen := make(map[*thing]bool)
	for i := 0; i < 2*slabSize; i++ {
		p := a.Get()
		if seen[p] {
			t.Fatalf("duplicate pointer handed out at i=%d", i)
		}
		seen[p] = true
	}
}

func TestResetKeepsCapacityAndZeroAlloc(t *testing.T) {
	var a Arena[thing]
	for i := 0; i < 2*slabSize; i++ {
		a.Get()
	}
	capBefore := a.Cap()
	allocs := testing.AllocsPerRun(10, func() {
		a.Reset()
		for i := 0; i < 2*slabSize; i++ {
			a.Get()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena reuse allocated %.1f times per cycle, want 0", allocs)
	}
	if a.Cap() != capBefore {
		t.Fatalf("Cap changed across Reset: %d -> %d", capBefore, a.Cap())
	}
}

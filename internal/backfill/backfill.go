// Package backfill implements EASY (aggressive) backfilling: when the
// highest-priority queued job cannot start, it receives a reservation at the
// earliest time enough nodes will be free (the shadow time), and
// lower-priority jobs may jump ahead only if doing so cannot delay that
// reservation.
//
// The planner is pure: it consumes an ordered queue plus a snapshot of free
// nodes and future releases, and returns which jobs may start now. The
// resource manager owns all state changes.
package backfill

import (
	"math"
	"sort"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// Release describes nodes that will return to the pool no later than EndBy
// (running jobs release at start + walltime; the walltime bound is what the
// real schedulers plan with, since actual runtimes are unknown in advance).
// Held coscheduling allocations have no bounded end and must NOT be listed;
// the planner then correctly treats their nodes as unavailable forever.
type Release struct {
	Nodes int
	EndBy sim.Time
}

// SortReleases sorts rel in place into the canonical planner order:
// ascending EndBy, ties by ascending Nodes. Every planner entry point
// (Plan, PlanInto, PlanConservative) requires its releases argument to
// already be in this order — the resource manager maintains a persistently
// sorted timeline, so the planners no longer copy and re-sort on each of
// the tens of thousands of calls a simulated trace makes. Ad-hoc callers
// with an unordered list must call SortReleases first.
func SortReleases(rel []Release) {
	sort.Slice(rel, func(a, b int) bool {
		if rel[a].EndBy != rel[b].EndBy {
			return rel[a].EndBy < rel[b].EndBy
		}
		return rel[a].Nodes < rel[b].Nodes
	})
}

// ReleasesSorted reports whether rel is in the canonical order required by
// the planners (ascending EndBy, ties by ascending Nodes).
func ReleasesSorted(rel []Release) bool {
	for i := 1; i < len(rel); i++ {
		if rel[i].EndBy < rel[i-1].EndBy ||
			(rel[i].EndBy == rel[i-1].EndBy && rel[i].Nodes < rel[i-1].Nodes) {
			return false
		}
	}
	return true
}

// ChargeFunc maps a job's requested nodes to the nodes actually consumed
// (partition rounding). cluster.Pool.ChargeFor satisfies it.
type ChargeFunc func(int) int

// EstimateFunc supplies the planning runtime for a queued job (walltime,
// or a system-generated prediction — predict.Estimator.Estimate satisfies
// it). nil means walltime.
type EstimateFunc func(*job.Job) sim.Duration

// Decision is one planned start. HoldSafe reports whether the job could
// occupy its nodes indefinitely without delaying the protected head-job
// reservation: true for jobs admitted in priority order (they outrank the
// blocked job) and for backfills that fit in the reservation's spare
// nodes; false for backfills admitted only because their walltime ends
// before the shadow time. The coscheduling layer uses it to decide whether
// a "hold" — an unbounded occupation — is permissible where a bounded
// backfill was.
type Decision struct {
	Job      *job.Job
	HoldSafe bool
}

// Plan returns the jobs from ordered (a queue already sorted by descending
// priority) that may start at time now, in start order. releases must be in
// the canonical sorted order (see SortReleases).
//
// With backfilling disabled the plan is the strict prefix of the queue that
// fits. With it enabled, the first non-fitting job gets a shadow-time
// reservation and later jobs may backfill subject to the EASY rule.
// Only the single highest-priority blocked job is protected (classic EASY);
// subsequent blocked jobs may be overtaken.
func Plan(ordered []*job.Job, free int, charge ChargeFunc, releases []Release, now sim.Time, backfilling bool, estimate EstimateFunc) []Decision {
	return PlanInto(nil, ordered, free, charge, releases, now, backfilling, estimate)
}

// PlanInto is Plan with caller-owned result storage: the plan is built in
// dst[:0] (growing it only when the queue outsizes its capacity) and
// returned. The resource manager passes the same buffer every scheduling
// iteration, making the EASY planner allocation-free at steady state. The
// returned slice aliases dst; it is valid until the next PlanInto call that
// reuses the buffer.
func PlanInto(dst []Decision, ordered []*job.Job, free int, charge ChargeFunc, releases []Release, now sim.Time, backfilling bool, estimate EstimateFunc) []Decision {
	assertReleasesSorted(releases)
	if charge == nil {
		charge = func(n int) int { return n }
	}
	if estimate == nil {
		estimate = func(j *job.Job) sim.Duration { return j.Walltime }
	}
	// The plan can never hold more decisions than there are queued jobs, so
	// one up-front growth (amortised away entirely when dst is reused)
	// replaces append reallocations on every scheduling iteration.
	plan := dst[:0]
	if cap(plan) < len(ordered) {
		plan = make([]Decision, 0, len(ordered))
	}
	avail := free

	i := 0
	// Greedy prefix: start jobs in priority order while they fit. They
	// outrank everything behind them, so indefinite occupation is safe.
	for ; i < len(ordered); i++ {
		c := charge(ordered[i].Nodes)
		if c > avail {
			break
		}
		plan = append(plan, Decision{Job: ordered[i], HoldSafe: true})
		avail -= c
	}
	if i >= len(ordered) || !backfilling {
		return plan
	}

	// ordered[i] is the blocked head job. Compute its reservation.
	head := ordered[i]
	headCharge := charge(head.Nodes)
	shadow, extra := reservation(avail, headCharge, releases, now)

	// Backfill the remaining jobs: each must fit now, and must either end
	// (by walltime) at or before the shadow time, or fit within the extra
	// nodes that remain free at the shadow time even with the head job
	// started.
	for k := i + 1; k < len(ordered); k++ {
		if avail == 0 {
			break // nothing left to give: no later job can plan
		}
		j := ordered[k]
		c := charge(j.Nodes)
		if c > avail {
			continue
		}
		if c <= extra {
			plan = append(plan, Decision{Job: j, HoldSafe: true})
			avail -= c
			extra -= c
			continue
		}
		if endsBy := now + estimate(j); endsBy <= shadow {
			plan = append(plan, Decision{Job: j, HoldSafe: false})
			avail -= c
		}
	}
	return plan
}

// reservation computes the shadow time (earliest instant avail plus future
// releases reaches need) and the extra nodes spare at that instant after
// reserving need. releases must already be in canonical sorted order — the
// callers own a persistently sorted timeline, so the per-call copy and
// sort this loop used to pay are gone. When the releases can never satisfy
// need (e.g. held nodes block it), shadow is +inf represented by
// math.MaxInt64 and extra is the nodes currently available (backfill then
// only requires fitting now).
func reservation(avail, need int, releases []Release, now sim.Time) (shadow sim.Time, extra int) {
	if need <= avail {
		return now, avail - need
	}
	acc := avail
	for i, r := range releases {
		acc += r.Nodes
		if acc >= need {
			// Everything releasing at the same instant frees together:
			// absorb the rest of the equal-EndBy run so `extra` doesn't
			// depend on the order equal-time releases were listed in.
			for k := i + 1; k < len(releases) && releases[k].EndBy == r.EndBy; k++ {
				acc += releases[k].Nodes
			}
			return maxTime(r.EndBy, now), acc - need
		}
	}
	return math.MaxInt64, avail
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

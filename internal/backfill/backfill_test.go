package backfill

import (
	"testing"
	"testing/quick"

	"cosched/internal/job"
	"cosched/internal/sim"
)

func mkjob(id job.ID, nodes int, wall sim.Duration) *job.Job {
	return job.New(id, nodes, 0, wall, wall)
}

func idsOf(ds []Decision) []job.ID {
	out := make([]job.ID, len(ds))
	for i, d := range ds {
		out[i] = d.Job.ID
	}
	return out
}

func TestPlanPrefixWithoutBackfill(t *testing.T) {
	q := []*job.Job{
		mkjob(1, 40, sim.Hour),
		mkjob(2, 80, sim.Hour), // blocked: only 60 left
		mkjob(3, 10, sim.Hour), // would fit, but backfilling off
	}
	got := Plan(q, 100, nil, nil, 0, false, nil)
	if len(got) != 1 || got[0].Job.ID != 1 {
		t.Fatalf("plan = %v, want [1]", idsOf(got))
	}
}

func TestPlanBackfillShortJob(t *testing.T) {
	// 100 nodes; 60 busy until t=1000. Head job wants 80 → shadow at 1000.
	// Job 3 (30 nodes, ends at 500 < 1000) may backfill.
	q := []*job.Job{
		mkjob(2, 80, sim.Hour),
		mkjob(3, 30, 500),
	}
	rel := []Release{{Nodes: 60, EndBy: 1000}}
	got := Plan(q, 40, nil, rel, 0, true, nil)
	if len(got) != 1 || got[0].Job.ID != 3 {
		t.Fatalf("plan = %v, want [3]", idsOf(got))
	}
	if got[0].HoldSafe {
		t.Fatal("walltime-bounded backfill must not be hold-safe")
	}
}

func TestPlanBackfillRespectsShadow(t *testing.T) {
	// Job 3 is long (ends after shadow) and would steal nodes the head
	// job needs at the shadow time → must NOT backfill.
	q := []*job.Job{
		mkjob(2, 80, sim.Hour),
		mkjob(3, 30, 10*sim.Hour),
	}
	rel := []Release{{Nodes: 60, EndBy: 1000}}
	got := Plan(q, 40, nil, rel, 0, true, nil)
	if len(got) != 0 {
		t.Fatalf("plan = %v, want [] (job 3 would delay the reservation)", idsOf(got))
	}
}

func TestPlanBackfillExtraNodes(t *testing.T) {
	// Head needs 80; at shadow (t=1000) 40+60=100 free, extra = 20.
	// A long 20-node job fits in the extra and may backfill despite
	// running past the shadow.
	q := []*job.Job{
		mkjob(2, 80, sim.Hour),
		mkjob(3, 20, 100*sim.Hour),
	}
	rel := []Release{{Nodes: 60, EndBy: 1000}}
	got := Plan(q, 40, nil, rel, 0, true, nil)
	if len(got) != 1 || got[0].Job.ID != 3 {
		t.Fatalf("plan = %v, want [3]", idsOf(got))
	}
	if !got[0].HoldSafe {
		t.Fatal("extra-node backfill is hold-safe (never delays the reservation)")
	}
}

func TestPlanHeadFitsImmediately(t *testing.T) {
	q := []*job.Job{
		mkjob(1, 30, sim.Hour),
		mkjob(2, 30, sim.Hour),
		mkjob(3, 50, sim.Hour), // blocked after 1 and 2 take 60
	}
	got := Plan(q, 100, nil, nil, 0, true, nil)
	if len(got) != 2 || got[0].Job.ID != 1 || got[1].Job.ID != 2 {
		t.Fatalf("plan = %v, want [1 2]", idsOf(got))
	}
	for _, d := range got {
		if !d.HoldSafe {
			t.Fatalf("prefix job %d must be hold-safe", d.Job.ID)
		}
	}
}

func TestPlanNoReleasesMeansInfiniteShadow(t *testing.T) {
	// All other nodes are held by coscheduling (no bounded release).
	// Backfill candidates only need to fit in the free nodes.
	q := []*job.Job{
		mkjob(1, 80, sim.Hour),      // blocked forever
		mkjob(2, 20, 1000*sim.Hour), // fits now → may run
	}
	got := Plan(q, 40, nil, nil, 0, true, nil)
	if len(got) != 1 || got[0].Job.ID != 2 {
		t.Fatalf("plan = %v, want [2]", idsOf(got))
	}
}

func TestPlanChargeFunction(t *testing.T) {
	// Partition charging: a 600-node request charges 1024.
	charge := func(n int) int {
		size := 512
		for size < n {
			size *= 2
		}
		return size
	}
	q := []*job.Job{mkjob(1, 600, sim.Hour)}
	if got := Plan(q, 1000, charge, nil, 0, true, nil); len(got) != 0 {
		t.Fatalf("plan = %v, want [] (charge 1024 > 1000 free)", idsOf(got))
	}
	if got := Plan(q, 1024, charge, nil, 0, true, nil); len(got) != 1 {
		t.Fatalf("plan = %v, want [1]", idsOf(got))
	}
}

func TestPlanEmptyQueue(t *testing.T) {
	if got := Plan(nil, 100, nil, nil, 0, true, nil); len(got) != 0 {
		t.Fatalf("plan over empty queue = %v", idsOf(got))
	}
}

// Property: the plan never over-commits free nodes, preserves queue order
// for the jobs it selects, and with backfilling off is always a prefix.
func TestPlanInvariantsProperty(t *testing.T) {
	f := func(sizes []uint8, freeSeed uint8, bf bool) bool {
		free := int(freeSeed)%128 + 1
		var q []*job.Job
		for i, s := range sizes {
			n := int(s)%128 + 1
			q = append(q, mkjob(job.ID(i+1), n, sim.Duration(s+1)*60))
		}
		var rel []Release
		if len(sizes) > 0 {
			rel = []Release{{Nodes: int(sizes[0]) + 1, EndBy: 5000}}
		}
		got := Plan(q, free, nil, rel, 0, bf, nil)
		sum := 0
		pos := -1
		for _, g := range got {
			sum += g.Job.Nodes
			// selected jobs appear in queue order
			found := -1
			for qi, qq := range q {
				if qq.ID == g.Job.ID {
					found = qi
					break
				}
			}
			if found <= pos {
				return false
			}
			pos = found
		}
		if sum > free {
			return false
		}
		if !bf {
			// prefix property, all hold-safe
			for i, g := range got {
				if q[i].ID != g.Job.ID || !g.HoldSafe {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

//go:build debug

package backfill

// assertReleasesSorted enforces the planners' sortedness contract in debug
// builds (`go test -tags debug ./...`): a caller handing over an unordered
// timeline is a bug in the resource manager's incremental maintenance, and
// silently mis-sorted input would produce a wrong shadow time rather than
// an error. Release builds compile this to a no-op (check_release.go).
func assertReleasesSorted(rel []Release) {
	if !ReleasesSorted(rel) {
		panic("backfill: releases violate the canonical sorted order (EndBy asc, Nodes asc) — caller must maintain or SortReleases first")
	}
}

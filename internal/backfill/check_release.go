//go:build !debug

package backfill

// assertReleasesSorted is compiled out unless the debug build tag is set;
// see check_debug.go for the enforced contract.
func assertReleasesSorted([]Release) {}

package backfill

import (
	"cosched/internal/job"
	"cosched/internal/profile"
	"cosched/internal/sim"
)

// PlanConservative implements conservative backfilling: *every* blocked job
// receives a reservation on a node-availability timeline in priority
// order, and a lower-priority job may start now only if doing so cannot
// delay any reservation ahead of it. Compared to EASY (Plan), conservative
// backfilling trades some throughput for strict no-starvation guarantees —
// the ablation bench quantifies the difference under this repository's
// workloads.
//
// total is the machine size; free the currently idle nodes; releases the
// bounded future releases of running jobs (held coscheduling allocations
// must not be listed — their nodes are modelled as occupied indefinitely),
// in the canonical sorted order (see SortReleases). The timeline commits
// below are order-independent, but the shared contract keeps the degraded
// Plan fallback and the debug-build invariant uniform across planners.
func PlanConservative(ordered []*job.Job, total, free int, charge ChargeFunc, releases []Release, now sim.Time, estimate EstimateFunc) []Decision {
	return PlanConservativeInto(nil, ordered, total, free, charge, releases, now, estimate)
}

// PlanConservativeInto is PlanConservative with caller-owned result
// storage, mirroring PlanInto: the returned plan is built in dst[:0] and
// aliases it. The availability timeline itself is still rebuilt per call —
// conservative reservations depend on every queued job, so there is no
// cheap incremental form — but the per-iteration result allocation goes
// away for managers that pass a reusable buffer.
func PlanConservativeInto(dst []Decision, ordered []*job.Job, total, free int, charge ChargeFunc, releases []Release, now sim.Time, estimate EstimateFunc) []Decision {
	assertReleasesSorted(releases)
	if charge == nil {
		charge = func(n int) int { return n }
	}
	if estimate == nil {
		estimate = func(j *job.Job) sim.Duration { return j.Walltime }
	}

	tl := profile.New(total)
	// Model current occupancy: bounded releases end at their EndBy; any
	// remaining busy nodes (coscheduling holds) never release.
	releasing := 0
	for _, r := range releases {
		releasing += r.Nodes
	}
	for _, r := range releases {
		if r.Nodes <= 0 {
			continue
		}
		dur := r.EndBy - now
		if dur < 1 {
			dur = 1
		}
		if _, err := tl.Commit(now, dur, r.Nodes); err != nil {
			// Inconsistent snapshot (more claimed than capacity):
			// degrade to a strict priority-order prefix.
			return PlanInto(dst, ordered, free, charge, nil, now, false, estimate)
		}
	}
	if neverFree := total - free - releasing; neverFree > 0 {
		if _, err := tl.Commit(now, sim.Duration(profile.Infinity-now), neverFree); err != nil {
			return PlanInto(dst, ordered, free, charge, nil, now, false, estimate)
		}
	}

	// First pass: place every job on the timeline in priority order;
	// collect the ones whose earliest start is now.
	type candidate struct {
		j   *job.Job
		c   int
		dur sim.Duration
	}
	var starts []candidate
	for _, j := range ordered {
		c := charge(j.Nodes)
		if c > total {
			continue // can never run here; skip rather than wedge the plan
		}
		dur := estimate(j)
		if dur < 1 {
			dur = 1
		}
		start := tl.EarliestStart(now, dur, c)
		if start == profile.Infinity {
			continue
		}
		if _, err := tl.Commit(start, dur, c); err != nil {
			continue
		}
		if start == now {
			starts = append(starts, candidate{j, c, dur})
		}
	}
	// Second pass, against the COMPLETE timeline (every lower-priority
	// reservation placed): a start may hold only if occupying its nodes
	// past its own window essentially forever cannot touch any
	// reservation.
	plan := dst[:0]
	if cap(plan) < len(starts) {
		plan = make([]Decision, 0, len(starts))
	}
	for _, cand := range starts {
		holdSafe := tl.CanCommit(saturate(now, cand.dur), sim.Duration(profile.Infinity/4), cand.c)
		plan = append(plan, Decision{Job: cand.j, HoldSafe: holdSafe})
	}
	return plan
}

func saturate(t sim.Time, d sim.Duration) sim.Time {
	s := t + d
	if s < t {
		return profile.Infinity
	}
	return s
}

package backfill

import (
	"testing"
	"testing/quick"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// The classic EASY-vs-conservative distinction: a backfill candidate that
// cannot delay the head job's reservation but would delay the SECOND
// blocked job's. EASY admits it; conservative must not.
//
// total 100; running: 40 nodes until t=50, 30 nodes until t=100 → free 30.
// j1 needs 100 → reservation at t=100.
// j2 needs 60  → conservative reserves it at t=50 (fits beside the
//
//	remaining 30-node runner).
//
// j3 needs 30 for 60 s → ends before j1's shadow (EASY admits), but its
//
//	[50,60) tail overlaps j2's reservation (conservative
//	rejects).
func conservativeScenario() (q []*job.Job, rel []Release) {
	j1 := job.New(1, 100, 0, 500, 500)
	j2 := job.New(2, 60, 1, 40, 40)
	j3 := job.New(3, 30, 2, 60, 60)
	return []*job.Job{j1, j2, j3}, []Release{
		{Nodes: 40, EndBy: 50},
		{Nodes: 30, EndBy: 100},
	}
}

func TestConservativeProtectsSecondBlockedJob(t *testing.T) {
	q, rel := conservativeScenario()

	easy := Plan(q, 30, nil, rel, 0, true, nil)
	if len(easy) != 1 || easy[0].Job.ID != 3 {
		t.Fatalf("EASY plan = %v, want [3] (backfills past the unprotected j2)", idsOf(easy))
	}

	cons := PlanConservative(q, 100, 30, nil, rel, 0, nil)
	for _, d := range cons {
		if d.Job.ID == 3 {
			t.Fatal("conservative admitted j3, which delays j2's reservation")
		}
	}
}

func TestConservativeStartsFittingJobs(t *testing.T) {
	// Fitting jobs start in priority order; the blocked third job gets a
	// reservation instead.
	q := []*job.Job{
		job.New(1, 40, 0, 100, 100),
		job.New(2, 40, 1, 100, 100),
		job.New(3, 40, 2, 100, 100), // blocked: only 100 total
	}
	got := PlanConservative(q, 100, 100, nil, nil, 0, nil)
	if len(got) != 2 || got[0].Job.ID != 1 || got[1].Job.ID != 2 {
		t.Fatalf("plan = %v, want [1 2]", idsOf(got))
	}
	// Holding j1 (40 nodes) forever still leaves 60 ≥ j3's 40 when j2
	// ends, so the individual holds are safe here.
	for _, d := range got {
		if !d.HoldSafe {
			t.Fatalf("job %d not hold-safe though j3 fits beside it", d.Job.ID)
		}
	}
}

func TestConservativeHoldUnsafeWhenReservationNeedsTheNodes(t *testing.T) {
	// j1 starts now; j2 (60 nodes) is reserved right after j1's window.
	// Holding j1's 60 nodes forever would push j2 out indefinitely.
	q := []*job.Job{
		job.New(1, 60, 0, 100, 100),
		job.New(2, 60, 1, 100, 100),
	}
	got := PlanConservative(q, 100, 100, nil, nil, 0, nil)
	if len(got) != 1 || got[0].Job.ID != 1 {
		t.Fatalf("plan = %v, want [1]", idsOf(got))
	}
	if got[0].HoldSafe {
		t.Fatal("j1 marked hold-safe although j2's reservation needs its nodes")
	}
}

func TestConservativeHoldSafeWhenNoReservationTouched(t *testing.T) {
	// A single small job on an empty machine can hold forever.
	q := []*job.Job{job.New(1, 10, 0, 100, 100)}
	got := PlanConservative(q, 100, 100, nil, nil, 0, nil)
	if len(got) != 1 || !got[0].HoldSafe {
		t.Fatalf("plan = %+v, want one hold-safe start", got)
	}
}

func TestConservativeSkipsImpossibleJobs(t *testing.T) {
	q := []*job.Job{
		job.New(1, 200, 0, 100, 100), // larger than the machine
		job.New(2, 10, 1, 100, 100),
	}
	got := PlanConservative(q, 100, 100, nil, nil, 0, nil)
	if len(got) != 1 || got[0].Job.ID != 2 {
		t.Fatalf("plan = %v, want [2]", idsOf(got))
	}
}

func TestConservativeHeldNodesNeverRelease(t *testing.T) {
	// 60 of 100 nodes busy with NO bounded release (coscheduling holds):
	// a 50-node job must not be planned now or ever counted as startable.
	q := []*job.Job{job.New(1, 50, 0, 100, 100)}
	got := PlanConservative(q, 100, 40, nil, nil, 0, nil)
	if len(got) != 0 {
		t.Fatalf("plan = %v, want [] (held nodes never free)", idsOf(got))
	}
}

// Property: conservative plans never start more nodes than are free, and
// always start jobs in queue order.
func TestConservativeInvariantsProperty(t *testing.T) {
	f := func(sizes []uint8, freeSeed uint8) bool {
		free := int(freeSeed)%128 + 1
		total := free + 64
		var q []*job.Job
		for i, s := range sizes {
			n := int(s)%128 + 1
			q = append(q, job.New(job.ID(i+1), n, 0, sim.Duration(s+1)*60, sim.Duration(s+1)*60))
		}
		rel := []Release{{Nodes: 64, EndBy: 5000}}
		got := PlanConservative(q, total, free, nil, rel, 0, nil)
		sum, pos := 0, -1
		for _, d := range got {
			sum += d.Job.Nodes
			found := -1
			for qi, qq := range q {
				if qq.ID == d.Job.ID {
					found = qi
					break
				}
			}
			if found <= pos {
				return false
			}
			pos = found
		}
		return sum <= free
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

//go:build !debug

// These tests deliberately feed the planners equal-EndBy release runs in
// every listing order, including ones that violate the canonical sort —
// the planners' RESULTS must not depend on how simultaneous releases are
// listed, even though the contract asks callers to canonicalize. They are
// excluded from debug builds, where the sortedness assertion would
// (correctly) panic on the non-canonical permutations before the
// order-independence property could be observed.
package backfill

import (
	"fmt"
	"testing"

	"cosched/internal/job"
)

// permutations returns every ordering of rel (inputs are tiny).
func permutations(rel []Release) [][]Release {
	if len(rel) <= 1 {
		return [][]Release{append([]Release(nil), rel...)}
	}
	var out [][]Release
	for i := range rel {
		rest := make([]Release, 0, len(rel)-1)
		rest = append(rest, rel[:i]...)
		rest = append(rest, rel[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]Release{rel[i]}, p...))
		}
	}
	return out
}

func renderPlan(plan []Decision) string {
	s := ""
	for _, d := range plan {
		s += fmt.Sprintf("%d:%v;", d.Job.ID, d.HoldSafe)
	}
	return s
}

// Satellite: PlanConservative with equal-EndBy releases listed in
// different orders must produce identical plans — its timeline commits are
// commutative, and the degraded EASY fallback absorbs equal-EndBy runs.
func TestConservativeEqualEndByOrderIndependent(t *testing.T) {
	mk := func() []*job.Job {
		return []*job.Job{
			job.New(1, 80, 0, 500, 500), // blocked until the t=100 releases
			job.New(2, 10, 1, 600, 600), // fits now, may hold only if no reservation is touched
			job.New(3, 10, 2, 50, 50),   // short backfill
		}
	}
	rel := []Release{
		{Nodes: 40, EndBy: 100},
		{Nodes: 30, EndBy: 100},
		{Nodes: 20, EndBy: 100},
	}
	var want string
	for i, p := range permutations(rel) {
		got := renderPlan(PlanConservative(mk(), 100, 10, nil, p, 0, nil))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("PlanConservative depends on equal-EndBy listing order:\npermutation %v -> %q\nbaseline -> %q", p, got, want)
		}
	}
}

// The EASY reservation's equal-EndBy absorption gives the same shadow time
// and spare nodes for every listing order of a simultaneous release run,
// so the whole plan is order-independent too.
func TestPlanEqualEndByOrderIndependent(t *testing.T) {
	q := []*job.Job{
		job.New(1, 50, 0, 500, 500), // blocked head: needs both t=100 releases
		job.New(2, 10, 1, 600, 600), // fits in the spare nodes at the shadow
		job.New(3, 10, 2, 80, 80),   // ends before the shadow
	}
	rel := []Release{
		{Nodes: 20, EndBy: 100},
		{Nodes: 30, EndBy: 100},
	}
	var want string
	for i, p := range permutations(rel) {
		got := renderPlan(Plan(q, 10, nil, p, 0, true, nil))
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Plan depends on equal-EndBy listing order:\npermutation %v -> %q\nbaseline -> %q", p, got, want)
		}
	}
	sorted := append([]Release(nil), rel...)
	SortReleases(sorted)
	if got := renderPlan(Plan(q, 10, nil, sorted, 0, true, nil)); got != want {
		t.Fatalf("canonical order plan %q differs from permutation baseline %q", got, want)
	}
	// now+estimate for job 3 is 80 <= shadow 100, so it must be admitted as
	// a non-hold-safe backfill in every ordering; sanity-check the shape.
	if want == "" {
		t.Fatal("expected a non-empty plan")
	}
}

func TestDebugAssertNoOpInReleaseBuilds(t *testing.T) {
	// In !debug builds the assertion must be a no-op even on unsorted
	// input (the planners tolerate it; results for equal-EndBy runs are
	// proven order-independent above).
	assertReleasesSorted([]Release{{Nodes: 9, EndBy: 50}, {Nodes: 1, EndBy: 10}})
}

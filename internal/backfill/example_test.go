package backfill_test

import (
	"fmt"

	"cosched/internal/backfill"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// ExamplePlan shows classic EASY behaviour: the blocked head job gets a
// reservation at the shadow time; a short job backfills around it, a long
// one is refused.
func ExamplePlan() {
	queue := []*job.Job{
		job.New(1, 80, 0, sim.Hour, sim.Hour),       // blocked head: needs 80, only 40 free
		job.New(2, 30, 0, 500, 500),                 // ends before the shadow → backfills
		job.New(3, 30, 0, 10*sim.Hour, 10*sim.Hour), // would delay the reservation → waits
	}
	releases := []backfill.Release{{Nodes: 60, EndBy: 1000}} // running job frees 60 at t=1000
	plan := backfill.Plan(queue, 40, nil, releases, 0, true, nil)
	for _, d := range plan {
		fmt.Printf("start job %d (hold-safe: %v)\n", d.Job.ID, d.HoldSafe)
	}
	// Output:
	// start job 2 (hold-safe: false)
}

package backfill

import (
	"testing"

	"cosched/internal/job"
)

func TestSortReleasesCanonical(t *testing.T) {
	rel := []Release{
		{Nodes: 10, EndBy: 500},
		{Nodes: 5, EndBy: 100},
		{Nodes: 7, EndBy: 100},
		{Nodes: 3, EndBy: 500},
	}
	SortReleases(rel)
	want := []Release{
		{Nodes: 5, EndBy: 100},
		{Nodes: 7, EndBy: 100},
		{Nodes: 3, EndBy: 500},
		{Nodes: 10, EndBy: 500},
	}
	for i := range want {
		if rel[i] != want[i] {
			t.Fatalf("SortReleases = %v, want %v", rel, want)
		}
	}
	if !ReleasesSorted(rel) {
		t.Fatal("ReleasesSorted rejects SortReleases output")
	}
}

func TestReleasesSorted(t *testing.T) {
	cases := []struct {
		rel  []Release
		want bool
	}{
		{nil, true},
		{[]Release{{Nodes: 4, EndBy: 10}}, true},
		{[]Release{{Nodes: 4, EndBy: 10}, {Nodes: 4, EndBy: 10}}, true},
		{[]Release{{Nodes: 4, EndBy: 10}, {Nodes: 6, EndBy: 10}}, true},
		{[]Release{{Nodes: 6, EndBy: 10}, {Nodes: 4, EndBy: 10}}, false},
		{[]Release{{Nodes: 4, EndBy: 20}, {Nodes: 9, EndBy: 10}}, false},
	}
	for _, c := range cases {
		if got := ReleasesSorted(c.rel); got != c.want {
			t.Errorf("ReleasesSorted(%v) = %v, want %v", c.rel, got, c.want)
		}
	}
}

// PlanInto must build its result in the caller's buffer and, once the
// buffer has grown to the queue size, plan without allocating — the
// planner's contribution to the incremental core's zero-alloc steady
// state.
func TestPlanIntoReusesBufferWithoutAllocating(t *testing.T) {
	q := []*job.Job{
		job.New(1, 40, 0, 600, 600),
		job.New(2, 80, 1, 600, 600), // blocked: 40+80 > 100
		job.New(3, 10, 2, 100, 100), // backfills ahead of the shadow
	}
	rel := []Release{{Nodes: 40, EndBy: 700}}
	buf := make([]Decision, 0, len(q))
	got := PlanInto(buf, q, 100, nil, rel, 0, true, nil)
	if len(got) != 2 || got[0].Job.ID != 1 || got[1].Job.ID != 3 {
		t.Fatalf("plan = %v, want jobs [1 3]", idsOf(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("PlanInto did not build the plan in the caller's buffer")
	}
	allocs := testing.AllocsPerRun(100, func() {
		PlanInto(buf, q, 100, nil, rel, 0, true, nil)
	})
	if allocs != 0 {
		t.Fatalf("PlanInto with a sized buffer allocated %.0f times per run, want 0", allocs)
	}
}

// Same contract for the conservative planner's result slice (its internal
// availability timeline still allocates; only the returned plan is
// caller-owned).
func TestPlanConservativeIntoReusesBuffer(t *testing.T) {
	q := []*job.Job{
		job.New(1, 40, 0, 600, 600),
		job.New(2, 30, 1, 600, 600),
	}
	buf := make([]Decision, 0, len(q))
	got := PlanConservativeInto(buf, q, 100, 100, nil, nil, 0, nil)
	if len(got) != 2 {
		t.Fatalf("plan = %v, want both jobs", idsOf(got))
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("PlanConservativeInto did not build the plan in the caller's buffer")
	}
}

// Package benchsuite is the scientific benchmark harness: warmup runs,
// N timed measurement runs, order statistics with sample stddev and CV,
// machine-info capture, and an effect-size regression gate against a
// committed baseline. It wraps the existing experiment benchmark bodies
// (parallel sweep, scheduler iteration, journal decode/replay, mega
// cells, distributed sweep) behind one Benchmark interface and emits a
// stable-schema JSON record plus a markdown report.
//
// This package reads the wall clock by design (it times real
// executions); it is exempt from simlint R2 alongside internal/live.
package benchsuite

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"
)

// SchemaVersion identifies the BENCH_suite.json layout. Bump only on
// incompatible changes; the gate refuses to compare across versions.
const SchemaVersion = "cosched-benchsuite/v1"

// Benchmark is one measured workload. Setup (optional) runs once,
// untimed, before any repetition; Run executes one measured repetition
// and its wall-clock duration is the sample.
type Benchmark struct {
	Name  string
	Setup func() error
	Run   func() error
}

// Config controls the measurement protocol.
type Config struct {
	// Warmup repetitions run and are discarded before measuring, to
	// populate caches, JIT the branch predictors, and trigger the
	// first-use allocations that would otherwise pollute run 1.
	Warmup int
	// Runs is the number of measured repetitions per benchmark.
	Runs int
	// Quick marks a smoke-test configuration (small factors, few runs).
	// It is recorded in the output so a quick record is never mistaken
	// for a committed baseline.
	Quick bool
	// Logf, if set, receives one progress line per benchmark.
	Logf func(format string, args ...any)
}

// Machine captures the environment a record was measured on. Comparing
// records from different machines is still allowed (the gate works on
// effect sizes, not absolute times) but the report surfaces both.
type Machine struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GCPercent  int    `json:"gc_percent"`
}

// CaptureMachine records the current process environment.
func CaptureMachine() Machine {
	// debug.SetGCPercent is the only read API for the effective GOGC;
	// set-and-restore is the stdlib-sanctioned idiom.
	gc := debug.SetGCPercent(100)
	debug.SetGCPercent(gc)
	return Machine{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GCPercent:  gc,
	}
}

// Measurement is one benchmark's raw samples and their summary.
type Measurement struct {
	Name       string    `json:"name"`
	RunSeconds []float64 `json:"run_seconds"`
	Stats      Stats     `json:"stats"`
}

// Record is the full suite output — the schema of BENCH_suite.json.
type Record struct {
	Schema     string        `json:"schema"`
	Quick      bool          `json:"quick"`
	Warmup     int           `json:"warmup"`
	Runs       int           `json:"runs"`
	Machine    Machine       `json:"machine"`
	Benchmarks []Measurement `json:"benchmarks"`
}

// Run executes the suite under cfg and returns the record. Benchmarks
// run in the given order; a Setup or Run error aborts the whole suite
// (a partial record would silently weaken the gate's coverage).
func Run(cfg Config, benches []Benchmark) (*Record, error) {
	if cfg.Runs < 1 {
		return nil, fmt.Errorf("benchsuite: Runs must be >= 1, got %d", cfg.Runs)
	}
	if cfg.Warmup < 0 {
		return nil, fmt.Errorf("benchsuite: Warmup must be >= 0, got %d", cfg.Warmup)
	}
	rec := &Record{
		Schema:  SchemaVersion,
		Quick:   cfg.Quick,
		Warmup:  cfg.Warmup,
		Runs:    cfg.Runs,
		Machine: CaptureMachine(),
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, b := range benches {
		if b.Name == "" || b.Run == nil {
			return nil, fmt.Errorf("benchsuite: benchmark with empty name or nil Run")
		}
		if b.Setup != nil {
			if err := b.Setup(); err != nil {
				return nil, fmt.Errorf("benchsuite: %s setup: %w", b.Name, err)
			}
		}
		for i := 0; i < cfg.Warmup; i++ {
			if err := b.Run(); err != nil {
				return nil, fmt.Errorf("benchsuite: %s warmup %d: %w", b.Name, i+1, err)
			}
		}
		samples := make([]float64, 0, cfg.Runs)
		for i := 0; i < cfg.Runs; i++ {
			start := time.Now()
			err := b.Run()
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("benchsuite: %s run %d: %w", b.Name, i+1, err)
			}
			samples = append(samples, elapsed.Seconds())
		}
		st := Compute(samples)
		rec.Benchmarks = append(rec.Benchmarks, Measurement{
			Name: b.Name, RunSeconds: samples, Stats: st,
		})
		logf("  %-16s p50 %s  p95 %s  cv %.1f%%  (%d warmup + %d runs)",
			b.Name, fmtSeconds(st.P50Seconds), fmtSeconds(st.P95Seconds),
			st.CV*100, cfg.Warmup, cfg.Runs)
	}
	return rec, nil
}

// Validate checks a record's internal consistency: schema version, raw
// samples present and finite for every benchmark, summary stats
// recomputable from the samples, unique names, machine info captured.
// It is the suite's self-check after writing and re-reading its own
// JSON, and the gate's guard against hand-edited baselines.
func (r *Record) Validate() error {
	if r.Schema != SchemaVersion {
		return fmt.Errorf("schema %q, want %q", r.Schema, SchemaVersion)
	}
	if r.Runs < 1 {
		return fmt.Errorf("runs %d < 1", r.Runs)
	}
	if r.Machine.GOOS == "" || r.Machine.GoVersion == "" || r.Machine.NumCPU < 1 {
		return fmt.Errorf("machine info incomplete: %+v", r.Machine)
	}
	if len(r.Benchmarks) == 0 {
		return fmt.Errorf("no benchmarks")
	}
	seen := make(map[string]bool, len(r.Benchmarks))
	for _, m := range r.Benchmarks {
		if m.Name == "" {
			return fmt.Errorf("benchmark with empty name")
		}
		if seen[m.Name] {
			return fmt.Errorf("duplicate benchmark %q", m.Name)
		}
		seen[m.Name] = true
		if len(m.RunSeconds) != r.Runs {
			return fmt.Errorf("%s: %d samples, want %d", m.Name, len(m.RunSeconds), r.Runs)
		}
		for i, v := range m.RunSeconds {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%s: sample %d is %g", m.Name, i, v)
			}
		}
		want := Compute(m.RunSeconds)
		if !statsClose(m.Stats, want) {
			return fmt.Errorf("%s: stats do not match samples: have %+v, recomputed %+v",
				m.Name, m.Stats, want)
		}
	}
	return nil
}

// statsClose compares summaries within a relative epsilon — JSON
// round-trips floats exactly (Go encodes shortest-repr), but the slack
// keeps Validate robust if a future encoder rounds.
func statsClose(a, b Stats) bool {
	if a.Runs != b.Runs {
		return false
	}
	close := func(x, y float64) bool {
		d := math.Abs(x - y)
		return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
	}
	return close(a.MinSeconds, b.MinSeconds) && close(a.P50Seconds, b.P50Seconds) &&
		close(a.P95Seconds, b.P95Seconds) && close(a.P99Seconds, b.P99Seconds) &&
		close(a.MaxSeconds, b.MaxSeconds) && close(a.Mean, b.Mean) &&
		close(a.Stddev, b.Stddev) && close(a.CV, b.CV)
}

// Measurement lookup by name; nil if absent.
func (r *Record) find(name string) *Measurement {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// Names returns the benchmark names in record order.
func (r *Record) Names() []string {
	names := make([]string, len(r.Benchmarks))
	for i, m := range r.Benchmarks {
		names[i] = m.Name
	}
	return names
}

// WriteFile marshals the record (indented, trailing newline) to path.
func (r *Record) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a record.
func ReadFile(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("%s: invalid benchsuite record: %w", path, err)
	}
	return &r, nil
}

// InjectSlowdown returns a copy of the record with every sample (and the
// recomputed stats) multiplied by factor. It exists so CI can prove the
// regression gate trips: comparing a baseline against its own synthetic
// slowdown must fail, deterministically, with no wall-clock dependence.
func (r *Record) InjectSlowdown(factor float64) *Record {
	out := *r
	out.Benchmarks = make([]Measurement, len(r.Benchmarks))
	for i, m := range r.Benchmarks {
		scaled := make([]float64, len(m.RunSeconds))
		for j, v := range m.RunSeconds {
			scaled[j] = v * factor
		}
		out.Benchmarks[i] = Measurement{
			Name: m.Name, RunSeconds: scaled, Stats: Compute(scaled),
		}
	}
	return &out
}

// sortedNames returns the union of benchmark names across records,
// baseline order first, then current-only names sorted.
func sortedNames(base, cur *Record) []string {
	var names []string
	seen := make(map[string]bool)
	for _, m := range base.Benchmarks {
		names = append(names, m.Name)
		seen[m.Name] = true
	}
	var extra []string
	for _, m := range cur.Benchmarks {
		if !seen[m.Name] {
			extra = append(extra, m.Name)
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// fmtSeconds renders a duration with sensible units for human output.
func fmtSeconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.1fµs", s*1e6)
	default:
		return fmt.Sprintf("%.0fns", s*1e9)
	}
}

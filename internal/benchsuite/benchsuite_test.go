package benchsuite

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func closeTo(t *testing.T, name string, got, want, eps float64) {
	t.Helper()
	if math.Abs(got-want) > eps {
		t.Fatalf("%s = %g, want %g (±%g)", name, got, want, eps)
	}
}

// Known-value check of the whole stats pipeline on a hand-computable
// sample set.
func TestComputeKnownValues(t *testing.T) {
	// Deliberately unsorted; Compute must not mutate it.
	in := []float64{5, 1, 3, 2, 4}
	st := Compute(in)
	if in[0] != 5 {
		t.Fatal("Compute mutated its input")
	}
	if st.Runs != 5 {
		t.Fatalf("Runs = %d", st.Runs)
	}
	closeTo(t, "min", st.MinSeconds, 1, 1e-12)
	closeTo(t, "max", st.MaxSeconds, 5, 1e-12)
	closeTo(t, "mean", st.Mean, 3, 1e-12)
	closeTo(t, "p50", st.P50Seconds, 3, 1e-12)
	// p95 of [1..5]: pos = 0.95*4 = 3.8 → 4 + 0.8*(5-4) = 4.8
	closeTo(t, "p95", st.P95Seconds, 4.8, 1e-12)
	closeTo(t, "p99", st.P99Seconds, 4.96, 1e-12)
	// Sample variance of 1..5 is 2.5 → stddev √2.5.
	closeTo(t, "stddev", st.Stddev, math.Sqrt(2.5), 1e-12)
	closeTo(t, "cv", st.CV, math.Sqrt(2.5)/3, 1e-12)
}

func TestComputeEdgeCases(t *testing.T) {
	if st := Compute(nil); st != (Stats{}) {
		t.Fatalf("empty input: %+v", st)
	}
	st := Compute([]float64{7})
	if st.Runs != 1 || st.MinSeconds != 7 || st.P99Seconds != 7 || st.Stddev != 0 || st.CV != 0 {
		t.Fatalf("single value: %+v", st)
	}
}

func TestCohenD(t *testing.T) {
	a := Compute([]float64{10, 11, 12, 11, 10})
	// Identical distributions: d = 0.
	if d := CohenD(a, a); d != 0 {
		t.Fatalf("d(self) = %g", d)
	}
	// A 2x shift on this tight sample is an enormous effect.
	b := Compute([]float64{20, 22, 24, 22, 20})
	if d := CohenD(a, b); d < 5 {
		t.Fatalf("d(2x slowdown) = %g, want large positive", d)
	}
	if d := CohenD(b, a); d > -5 {
		t.Fatalf("d(2x speedup) = %g, want large negative", d)
	}
	// Zero pooled variance, different means → ±Inf.
	z1, z2 := Compute([]float64{1, 1, 1}), Compute([]float64{2, 2, 2})
	if d := CohenD(z1, z2); !math.IsInf(d, 1) {
		t.Fatalf("d(zero-variance slowdown) = %g, want +Inf", d)
	}
	if d := CohenD(z1, z1); d != 0 {
		t.Fatalf("d(zero-variance identical) = %g, want 0", d)
	}
}

// The runner must execute Setup once, Warmup discarded repetitions, then
// exactly Runs measured repetitions, in order.
func TestRunnerProtocol(t *testing.T) {
	var setups, runs int
	rec, err := Run(Config{Warmup: 2, Runs: 3}, []Benchmark{{
		Name:  "counting",
		Setup: func() error { setups++; return nil },
		Run:   func() error { runs++; return nil },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if setups != 1 {
		t.Fatalf("setup ran %d times", setups)
	}
	if runs != 5 {
		t.Fatalf("run executed %d times, want 2 warmup + 3 measured", runs)
	}
	if len(rec.Benchmarks) != 1 || len(rec.Benchmarks[0].RunSeconds) != 3 {
		t.Fatalf("record: %+v", rec)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("fresh record does not self-validate: %v", err)
	}
	if rec.Machine.NumCPU < 1 || rec.Machine.GoVersion == "" {
		t.Fatalf("machine info not captured: %+v", rec.Machine)
	}
}

func TestRunnerRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Runs: 0}, nil); err == nil {
		t.Fatal("Runs=0 accepted")
	}
	if _, err := Run(Config{Runs: 1}, []Benchmark{{Name: ""}}); err == nil {
		t.Fatal("unnamed benchmark accepted")
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	rec, err := Run(Config{Warmup: 1, Runs: 3, Quick: true}, []Benchmark{
		{Name: "alpha", Run: func() error { return nil }},
		{Name: "beta", Run: func() error { return nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_suite.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rec)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Fatalf("round trip changed record:\n%s\n%s", a, b)
	}
	if !back.Quick {
		t.Fatal("quick flag lost in round trip")
	}
}

func TestValidateRejectsCorruptRecords(t *testing.T) {
	mk := func() *Record {
		rec, err := Run(Config{Runs: 2}, []Benchmark{
			{Name: "x", Run: func() error { return nil }},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	cases := map[string]func(*Record){
		"wrong schema":    func(r *Record) { r.Schema = "bogus/v0" },
		"missing samples": func(r *Record) { r.Benchmarks[0].RunSeconds = nil },
		"NaN sample":      func(r *Record) { r.Benchmarks[0].RunSeconds[0] = math.NaN() },
		"negative sample": func(r *Record) { r.Benchmarks[0].RunSeconds[0] = -1 },
		"stale stats":     func(r *Record) { r.Benchmarks[0].Stats.Mean *= 3; r.Benchmarks[0].Stats.Mean += 1 },
		"no machine":      func(r *Record) { r.Machine = Machine{} },
		"dup names":       func(r *Record) { r.Benchmarks = append(r.Benchmarks, r.Benchmarks[0]) },
	}
	for name, corrupt := range cases {
		r := mk()
		corrupt(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: corrupt record validated", name)
		}
	}
}

// synthetic builds a record with fixed samples, bypassing the runner, so
// gate tests are deterministic.
func synthetic(runs int, families map[string][]float64) *Record {
	rec := &Record{Schema: SchemaVersion, Runs: runs, Machine: CaptureMachine()}
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	// Deterministic order for report/verdict comparisons.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		s := families[n]
		rec.Benchmarks = append(rec.Benchmarks, Measurement{
			Name: n, RunSeconds: s, Stats: Compute(s),
		})
	}
	return rec
}

func TestGatePassesOnIdenticalRecords(t *testing.T) {
	base := synthetic(5, map[string][]float64{
		"sched":   {1.00, 1.02, 0.98, 1.01, 0.99},
		"journal": {0.50, 0.51, 0.49, 0.50, 0.50},
	})
	verdicts, failed := Compare(base, base, DefaultThresholds())
	if failed {
		t.Fatalf("self-comparison failed: %+v", verdicts)
	}
	for _, v := range verdicts {
		if v.Status != StatusOK {
			t.Fatalf("%s: status %s on self-comparison", v.Name, v.Status)
		}
	}
}

func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	base := synthetic(5, map[string][]float64{
		"sched":   {1.00, 1.02, 0.98, 1.01, 0.99},
		"journal": {0.50, 0.51, 0.49, 0.50, 0.50},
	})
	slow := base.InjectSlowdown(1.5)
	if err := slow.Validate(); err != nil {
		t.Fatalf("injected record invalid: %v", err)
	}
	verdicts, failed := Compare(base, slow, DefaultThresholds())
	if !failed {
		t.Fatalf("50%% slowdown passed the gate: %+v", verdicts)
	}
	for _, v := range verdicts {
		if v.Status != StatusRegression {
			t.Fatalf("%s: status %s, want regression", v.Name, v.Status)
		}
	}
	// And the mirror image is a speedup, not a failure.
	verdicts, failed = Compare(slow, base, DefaultThresholds())
	if failed {
		t.Fatalf("speedup failed the gate: %+v", verdicts)
	}
	for _, v := range verdicts {
		if v.Status != StatusFaster {
			t.Fatalf("%s: status %s, want faster", v.Name, v.Status)
		}
	}
}

func TestGateToleratesNoiseAndFlagsCoverage(t *testing.T) {
	base := synthetic(5, map[string][]float64{
		"steady": {1.00, 1.01, 0.99, 1.00, 1.00},
		"noisy":  {1.0, 2.5, 0.4, 1.8, 0.6},
		"gone":   {1, 1, 1, 1, 1},
	})
	cur := synthetic(5, map[string][]float64{
		"steady": {1.00, 1.00, 1.01, 0.99, 1.00},
		"noisy":  {2.0, 5.0, 0.8, 3.6, 1.2}, // 2x slower but CV way over ceiling
		"fresh":  {1, 1, 1, 1, 1},
	})
	verdicts, failed := Compare(base, cur, DefaultThresholds())
	byName := map[string]Verdict{}
	for _, v := range verdicts {
		byName[v.Name] = v
	}
	if got := byName["noisy"].Status; got != StatusNoisy {
		t.Fatalf("noisy: %s", got)
	}
	if got := byName["fresh"].Status; got != StatusNew {
		t.Fatalf("fresh: %s", got)
	}
	if got := byName["gone"].Status; got != StatusMissing {
		t.Fatalf("gone: %s", got)
	}
	if !failed {
		t.Fatal("losing a benchmark from the suite must fail the gate")
	}
	out := FormatVerdicts(verdicts, failed)
	if !strings.Contains(out, "RESULT: FAIL") || !strings.Contains(out, "coverage lost") {
		t.Fatalf("verdict formatting:\n%s", out)
	}
}

// A small honest slowdown under a noisy baseline must NOT gate — the
// CV-scaled envelope is the whole point.
func TestGateNoiseEnvelope(t *testing.T) {
	base := synthetic(5, map[string][]float64{
		"wobbly": {1.00, 1.15, 0.90, 1.10, 0.95}, // CV ≈ 10%
	})
	cur := synthetic(5, map[string][]float64{
		"wobbly": {1.05, 1.20, 0.95, 1.15, 1.00}, // +5%: inside 2×CV envelope
	})
	verdicts, failed := Compare(base, cur, DefaultThresholds())
	if failed || verdicts[0].Status != StatusOK {
		t.Fatalf("5%% shift on 10%%-CV benchmark gated: %+v", verdicts[0])
	}
}

func TestReportDeterministic(t *testing.T) {
	rec := synthetic(5, map[string][]float64{
		"alpha": {1.0, 1.1, 0.9, 1.05, 0.95},
		"beta":  {0.001, 0.0011, 0.0009, 0.001, 0.001},
	})
	r1, r2 := rec.Report(), rec.Report()
	if r1 != r2 {
		t.Fatal("report not deterministic")
	}
	for _, want := range []string{"| alpha |", "| beta |", "p95", "GOMAXPROCS", "sample form"} {
		if !strings.Contains(r1, want) {
			t.Fatalf("report missing %q:\n%s", want, r1)
		}
	}
}

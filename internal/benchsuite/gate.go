package benchsuite

import (
	"fmt"
	"math"
	"strings"
)

// Thresholds parameterizes the regression gate. The gate never compares
// raw deltas: a regression must be both *large* as a standardized effect
// (Cohen's d over the pooled run-to-run noise) and *outside* the noise
// envelope implied by the measurements' own CV. This is the only way to
// gate wall-clock numbers on shared machines without flaking — a 10%
// slowdown on a 2%-CV benchmark is a finding; on a 40%-CV benchmark it
// is weather.
type Thresholds struct {
	// EffectSize is the minimum Cohen's d to call a slowdown real.
	// 0.8 is Cohen's "large" boundary.
	EffectSize float64
	// MinRelSlowdown is the floor on the required mean shift, so tiny
	// absolute deltas on ultra-stable benchmarks never gate.
	MinRelSlowdown float64
	// CVSlack scales the worse of the two CVs into the required mean
	// shift: cur must exceed base by CVSlack × max(CV) before the gate
	// even considers it.
	CVSlack float64
	// MaxCV marks a measurement too noisy to gate at all; such pairs
	// report StatusNoisy and never fail the build.
	MaxCV float64
}

// DefaultThresholds are the CI settings: large effect size, 2% floor,
// 2 CVs of headroom, and a 35% noise ceiling.
func DefaultThresholds() Thresholds {
	return Thresholds{EffectSize: 0.8, MinRelSlowdown: 0.02, CVSlack: 2.0, MaxCV: 0.35}
}

// Verdict statuses, ordered from benign to fatal.
const (
	StatusOK         = "ok"         // within noise
	StatusFaster     = "faster"     // current is significantly faster
	StatusNoisy      = "noisy"      // CV too high to judge; not gated
	StatusNew        = "new"        // benchmark only in current; not gated
	StatusMissing    = "missing"    // benchmark vanished from current: fails
	StatusRegression = "regression" // statistically significant slowdown: fails
)

// Verdict is the gate's judgement for one benchmark pair.
type Verdict struct {
	Name       string  `json:"name"`
	Status     string  `json:"status"`
	BaseMean   float64 `json:"base_mean_seconds,omitempty"`
	CurMean    float64 `json:"cur_mean_seconds,omitempty"`
	Ratio      float64 `json:"ratio,omitempty"` // cur/base mean
	EffectSize float64 `json:"effect_size,omitempty"`
	BaseCV     float64 `json:"base_cv,omitempty"`
	CurCV      float64 `json:"cur_cv,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// Failed reports whether this verdict alone should fail the gate.
func (v Verdict) Failed() bool {
	return v.Status == StatusRegression || v.Status == StatusMissing
}

// Compare judges current against baseline under th. The returned bool is
// true when any verdict fails the gate. Records must share the schema
// version (ReadFile already guarantees validity).
func Compare(base, cur *Record, th Thresholds) ([]Verdict, bool) {
	verdicts := make([]Verdict, 0, len(base.Benchmarks))
	failed := false
	for _, name := range sortedNames(base, cur) {
		bm, cm := base.find(name), cur.find(name)
		v := judge(name, bm, cm, th)
		if v.Failed() {
			failed = true
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, failed
}

func judge(name string, bm, cm *Measurement, th Thresholds) Verdict {
	switch {
	case bm == nil:
		return Verdict{Name: name, Status: StatusNew,
			CurMean: cm.Stats.Mean, CurCV: cm.Stats.CV,
			Detail: "not in baseline; re-record the baseline to start gating it"}
	case cm == nil:
		return Verdict{Name: name, Status: StatusMissing,
			BaseMean: bm.Stats.Mean, BaseCV: bm.Stats.CV,
			Detail: "in baseline but absent from current run — coverage lost"}
	}
	v := Verdict{
		Name:     name,
		BaseMean: bm.Stats.Mean, CurMean: cm.Stats.Mean,
		BaseCV: bm.Stats.CV, CurCV: cm.Stats.CV,
		EffectSize: CohenD(bm.Stats, cm.Stats),
	}
	if bm.Stats.Mean > 0 {
		v.Ratio = cm.Stats.Mean / bm.Stats.Mean
	}
	maxCV := math.Max(bm.Stats.CV, cm.Stats.CV)
	if maxCV > th.MaxCV {
		v.Status = StatusNoisy
		v.Detail = fmt.Sprintf("CV %.0f%% exceeds the %.0f%% gating ceiling; measurement too noisy to judge",
			maxCV*100, th.MaxCV*100)
		return v
	}
	required := 1 + math.Max(th.MinRelSlowdown, th.CVSlack*maxCV)
	switch {
	case v.Ratio >= required && v.EffectSize >= th.EffectSize:
		v.Status = StatusRegression
		v.Detail = fmt.Sprintf("%.1f%% slower (d=%.1f ≥ %.1f, needed ≥ %.1f%% over noise)",
			(v.Ratio-1)*100, v.EffectSize, th.EffectSize, (required-1)*100)
	case v.Ratio > 0 && 1/v.Ratio >= required && -v.EffectSize >= th.EffectSize:
		v.Status = StatusFaster
		v.Detail = fmt.Sprintf("%.1f%% faster (d=%.1f)", (1-v.Ratio)*100, v.EffectSize)
	default:
		v.Status = StatusOK
	}
	return v
}

// FormatVerdicts renders the gate outcome as an aligned text block for
// CI logs, one line per benchmark plus a summary line.
func FormatVerdicts(verdicts []Verdict, failed bool) string {
	var b strings.Builder
	for _, v := range verdicts {
		switch v.Status {
		case StatusNew:
			fmt.Fprintf(&b, "  %-16s %-10s cur %s — %s\n",
				v.Name, v.Status, fmtSeconds(v.CurMean), v.Detail)
		case StatusMissing:
			fmt.Fprintf(&b, "  %-16s %-10s base %s — %s\n",
				v.Name, v.Status, fmtSeconds(v.BaseMean), v.Detail)
		default:
			fmt.Fprintf(&b, "  %-16s %-10s base %s  cur %s  ratio %.3f  d %+.2f",
				v.Name, v.Status, fmtSeconds(v.BaseMean), fmtSeconds(v.CurMean),
				v.Ratio, v.EffectSize)
			if v.Detail != "" {
				fmt.Fprintf(&b, " — %s", v.Detail)
			}
			b.WriteByte('\n')
		}
	}
	if failed {
		b.WriteString("RESULT: FAIL — statistically significant regression\n")
	} else {
		b.WriteString("RESULT: PASS — no significant slowdown vs baseline\n")
	}
	return b.String()
}

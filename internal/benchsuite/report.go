package benchsuite

import (
	"fmt"
	"strings"
)

// Report renders the record as a markdown document — the human companion
// to BENCH_suite.json. Output is fully determined by the record
// (rendering twice is byte-identical), so committing it produces clean
// diffs when the baseline is re-recorded.
func (r *Record) Report() string {
	var b strings.Builder
	b.WriteString("# Benchmark suite\n\n")
	mode := "full"
	if r.Quick {
		mode = "quick (smoke only — not a comparable baseline)"
	}
	fmt.Fprintf(&b, "Protocol: %d warmup + %d measured runs per benchmark, %s mode.\n",
		r.Warmup, r.Runs, mode)
	fmt.Fprintf(&b, "Machine: %s/%s, %d CPUs, %s, GOMAXPROCS=%d, GOGC=%d.\n\n",
		r.Machine.GOOS, r.Machine.GOARCH, r.Machine.NumCPU,
		r.Machine.GoVersion, r.Machine.GOMAXPROCS, r.Machine.GCPercent)
	b.WriteString("| benchmark | min | p50 | p95 | p99 | max | mean | stddev | CV |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|---|\n")
	for _, m := range r.Benchmarks {
		s := m.Stats
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s | %s | %.1f%% |\n",
			m.Name, fmtSeconds(s.MinSeconds), fmtSeconds(s.P50Seconds),
			fmtSeconds(s.P95Seconds), fmtSeconds(s.P99Seconds),
			fmtSeconds(s.MaxSeconds), fmtSeconds(s.Mean),
			fmtSeconds(s.Stddev), s.CV*100)
	}
	b.WriteString("\nQuantiles are interpolated over the measured runs; stddev is the\n")
	b.WriteString("sample form (÷ n−1) and CV = stddev/mean. The regression gate\n")
	b.WriteString("compares records by Cohen's d effect size with a CV-scaled noise\n")
	b.WriteString("envelope — see ARCHITECTURE.md, Observability & benchmark methodology.\n")
	return b.String()
}

// Statistics for the scientific benchmark harness. Everything here uses
// the *sample* standard deviation (÷ n−1, Bessel's correction), because
// the measurement runs are a sample of the benchmark's latency
// distribution, not the whole population — the opposite convention from
// internal/metrics, whose Summarize/Accumulator deliberately use the
// population form (÷ n) over complete simulation outcomes. Both contracts
// are documented at their definitions and cross-checked by tests.
package benchsuite

import (
	"math"
	"sort"
)

// Stats summarizes one benchmark's measurement runs.
type Stats struct {
	Runs       int     `json:"runs"`
	MinSeconds float64 `json:"min_seconds"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	Mean       float64 `json:"mean_seconds"`
	// Stddev is the sample standard deviation (÷ n−1); 0 for n < 2.
	Stddev float64 `json:"sample_stddev_seconds"`
	// CV is the coefficient of variation, Stddev/Mean: the run-to-run
	// noise as a fraction of the measurement itself. A CV above ~0.10
	// means the machine was too noisy for tight comparisons; the gate
	// widens (or refuses) accordingly.
	CV float64 `json:"cv"`
}

// Compute summarizes runs (seconds per measurement run). The input is not
// modified.
func Compute(runs []float64) Stats {
	n := len(runs)
	if n == 0 {
		return Stats{}
	}
	v := append([]float64(nil), runs...)
	sort.Float64s(v)
	var sum float64
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(n)
	var sq float64
	for _, x := range v {
		d := x - mean
		sq += d * d
	}
	var stddev float64
	if n > 1 {
		stddev = math.Sqrt(sq / float64(n-1))
	}
	cv := 0.0
	if mean > 0 {
		cv = stddev / mean
	}
	return Stats{
		Runs:       n,
		MinSeconds: v[0],
		P50Seconds: quantile(v, 0.5),
		P95Seconds: quantile(v, 0.95),
		P99Seconds: quantile(v, 0.99),
		MaxSeconds: v[n-1],
		Mean:       mean,
		Stddev:     stddev,
		CV:         cv,
	}
}

// quantile interpolates the q-th quantile of sorted values — the same
// rank convention as internal/metrics.quantile, restated here so the two
// packages can evolve their conventions independently.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CohenD is the standardized effect size of current vs baseline: the mean
// difference in units of the pooled sample standard deviation. Positive
// means current is slower. |d| < 0.2 is conventionally negligible,
// 0.2–0.5 small, 0.5–0.8 medium, ≥ 0.8 large; the regression gate keys
// off the large threshold so single noisy runs cannot trip it.
//
// With identical variance-free samples d is 0; with zero pooled variance
// but different means it is ±Inf (any shift is infinitely many stddevs).
func CohenD(base, cur Stats) float64 {
	diff := cur.Mean - base.Mean
	var pooledVar float64
	dof := float64(base.Runs + cur.Runs - 2)
	if dof > 0 {
		pooledVar = (float64(base.Runs-1)*base.Stddev*base.Stddev +
			float64(cur.Runs-1)*cur.Stddev*cur.Stddev) / dof
	}
	if pooledVar > 0 {
		return diff / math.Sqrt(pooledVar)
	}
	if diff > 0 {
		return math.Inf(1)
	}
	if diff < 0 {
		return math.Inf(-1)
	}
	return 0
}

// Package chart renders grouped bar charts as standalone SVG files — the
// visual form of the paper's Figures 3–10, regenerated from measured data
// by `cmd/experiments -svg`.
//
// The styling follows a validated data-viz method: categorical series hues
// assigned in a fixed, CVD-checked order (never cycled), thin marks with
// rounded data-ends and 2px surface gaps, a recessive grid, text in ink
// colors rather than series colors, a legend for multi-series charts, and
// native SVG <title> tooltips per bar. Two of the four series hues sit
// below 3:1 contrast on the light surface; the relief obligation is met by
// the value labels on each bar and by the text tables `cmd/experiments`
// always prints alongside the SVGs.
package chart

import (
	"fmt"
	"math"
	"strings"
)

// Validated categorical palette (light surface #fcfcfb), fixed slot order:
// blue, aqua, yellow, green. Worst adjacent CVD ΔE 24.2 — safely above the
// ≥12 target for four series.
var seriesColors = []string{"#2a78d6", "#1baf7a", "#eda100", "#008300"}

// Ink and surface tokens. Text never wears a series color.
const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridColor     = "#e4e3df"
	baselineColor = "#52514e"
)

// Group is one x-axis category holding one value per series, plus an
// optional reference value (the paper's "base" line) drawn as a dashed
// marker across the group.
type Group struct {
	Label    string
	Values   []float64
	Baseline float64 // drawn when HasBaseline
}

// BarChart describes one grouped bar chart.
type BarChart struct {
	Title       string
	YLabel      string
	Series      []string // one legend entry per series, ≤ 4
	Groups      []Group
	HasBaseline bool
	// ValueFmt formats bar value labels; default "%.0f".
	ValueFmt string
}

// Geometry constants (pixels).
const (
	chartWidth   = 760
	chartHeight  = 420
	marginLeft   = 64
	marginRight  = 16
	marginTop    = 56
	marginBottom = 64
	barGap       = 2 // surface gap between adjacent bars
)

// SVG renders the chart. It returns an error for empty or inconsistent
// input rather than emitting a broken document.
func (c *BarChart) SVG() (string, error) {
	if len(c.Groups) == 0 {
		return "", fmt.Errorf("chart %q: no groups", c.Title)
	}
	if len(c.Series) == 0 || len(c.Series) > len(seriesColors) {
		return "", fmt.Errorf("chart %q: %d series (want 1–%d)", c.Title, len(c.Series), len(seriesColors))
	}
	for _, g := range c.Groups {
		if len(g.Values) != len(c.Series) {
			return "", fmt.Errorf("chart %q: group %q has %d values for %d series",
				c.Title, g.Label, len(g.Values), len(c.Series))
		}
	}
	valueFmt := c.ValueFmt
	if valueFmt == "" {
		valueFmt = "%.0f"
	}

	// Scale: zero-based y (bars must start at zero), padded max.
	maxV := 0.0
	for _, g := range c.Groups {
		for _, v := range g.Values {
			maxV = math.Max(maxV, v)
		}
		if c.HasBaseline {
			maxV = math.Max(maxV, g.Baseline)
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	top := niceCeil(maxV * 1.1)

	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	y := func(v float64) float64 { return float64(marginTop) + plotH*(1-v/top) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`,
		chartWidth, chartHeight, chartWidth, chartHeight)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`, chartWidth, chartHeight, surface)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" font-weight="600" fill="%s">%s</text>`,
		marginLeft, textPrimary, escape(c.Title))

	// Recessive horizontal grid with tick labels.
	ticks := 5
	for i := 0; i <= ticks; i++ {
		v := top * float64(i) / float64(ticks)
		yy := y(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
			marginLeft, yy, chartWidth-marginRight, yy, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`,
			marginLeft-8, yy+4, textSecondary, formatTick(v))
	}
	// Y-axis label.
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.1f" font-size="11" fill="%s" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`,
			float64(marginTop)+plotH/2, textSecondary, float64(marginTop)+plotH/2, escape(c.YLabel))
	}

	// Bars.
	groupW := plotW / float64(len(c.Groups))
	innerW := groupW * 0.72
	barW := (innerW - float64(barGap*(len(c.Series)-1))) / float64(len(c.Series))
	if barW > 36 {
		barW = 36
	}
	for gi, g := range c.Groups {
		gx := float64(marginLeft) + groupW*float64(gi) + (groupW-innerW)/2
		used := barW*float64(len(c.Series)) + float64(barGap*(len(c.Series)-1))
		gx += (innerW - used) / 2
		for si, v := range g.Values {
			x := gx + float64(si)*(barW+barGap)
			yTop := y(v)
			h := y(0) - yTop
			if h < 0 {
				h = 0
			}
			fmt.Fprintf(&b, `<path d="%s" fill="%s">`,
				roundedTopBar(x, yTop, barW, h, 4), seriesColors[si])
			fmt.Fprintf(&b, `<title>%s · %s: %s</title></path>`,
				escape(g.Label), escape(c.Series[si]), fmt.Sprintf(valueFmt, v))
			// Selective direct value labels: only on the group's tallest
			// bar, so identity never relies on color alone without
			// drowning the chart in numbers.
			if isGroupMax(g.Values, si) {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" fill="%s" text-anchor="middle">%s</text>`,
					x+barW/2, yTop-4, textSecondary, fmt.Sprintf(valueFmt, v))
			}
		}
		// Baseline reference: dashed line across the group.
		if c.HasBaseline {
			by := y(g.Baseline)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2" stroke-dasharray="5,3"><title>%s · base: %s</title></line>`,
				gx-4, by, gx+used+4, by, baselineColor, escape(g.Label), fmt.Sprintf(valueFmt, g.Baseline))
		}
		// Category label.
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`,
			float64(marginLeft)+groupW*float64(gi)+groupW/2, chartHeight-marginBottom+20,
			textPrimary, escape(g.Label))
	}
	// Axis baseline (x).
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`,
		marginLeft, y(0), chartWidth-marginRight, y(0), textSecondary)

	// Legend: one swatch + label per series (omitted for a single series —
	// the title names it); a dashed sample for the base.
	lx := float64(marginLeft)
	ly := float64(chartHeight - 18)
	legendSeries := c.Series
	if len(legendSeries) == 1 {
		legendSeries = nil
	}
	for si, name := range legendSeries {
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="12" height="12" rx="3" fill="%s"/>`,
			lx, ly-10, seriesColors[si])
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" fill="%s">%s</text>`,
			lx+17, ly, textPrimary, escape(name))
		lx += 17 + 9*float64(len(name)) + 18
	}
	if c.HasBaseline {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2" stroke-dasharray="5,3"/>`,
			lx, ly-4, lx+16, ly-4, baselineColor)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="12" fill="%s">base</text>`,
			lx+21, ly, textPrimary)
	}

	b.WriteString(`</svg>`)
	return b.String(), nil
}

// roundedTopBar builds a bar path with 4px rounded top corners anchored to
// the flat baseline (the "rounded data-end" mark spec).
func roundedTopBar(x, y, w, h, r float64) string {
	if h <= r {
		r = h / 2
	}
	if r < 0 {
		r = 0
	}
	return fmt.Sprintf("M%.1f %.1f v%.1f q0 -%.1f %.1f -%.1f h%.1f q%.1f 0 %.1f %.1f v%.1f z",
		x, y+h, -(h - r), r, r, r, w-2*r, r, r, r, h-r)
}

// isGroupMax reports whether values[idx] is the group's (first) maximum.
func isGroupMax(values []float64, idx int) bool {
	maxI := 0
	for i, v := range values {
		if v > values[maxI] {
			maxI = i
		}
	}
	return maxI == idx
}

// niceCeil rounds up to a 1/2/2.5/5×10^k boundary for clean tick values.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// formatTick renders an axis tick without trailing noise.
func formatTick(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	//simlint:allow R5 integrality probe: Trunc(v) is bit-exactly v iff v is integral
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// escape sanitizes text nodes.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

package chart

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func sampleChart() *BarChart {
	return &BarChart{
		Title:       "Figure X: sample",
		YLabel:      "minutes",
		Series:      []string{"HH", "HY", "YH", "YY"},
		HasBaseline: true,
		ValueFmt:    "%.1f",
		Groups: []Group{
			{Label: "0.25", Values: []float64{4, 5, 3, 6}, Baseline: 2},
			{Label: "0.50", Values: []float64{10, 12, 9, 11}, Baseline: 8},
			{Label: "0.75", Values: []float64{42, 30, 25, 20}, Baseline: 15},
		},
	}
}

func TestSVGBasicStructure(t *testing.T) {
	svg, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<svg", "</svg>", "Figure X: sample", "minutes",
		"HH", "YY", "0.25", "0.75", "base",
		seriesColors[0], seriesColors[3],
		"<title>", "stroke-dasharray", // tooltips + baseline dashes
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	// 3 groups × 4 series = 12 bars.
	if got := strings.Count(svg, "<path d="); got != 12 {
		t.Errorf("bar count = %d, want 12", got)
	}
	// One dashed baseline per group + one legend sample.
	if got := strings.Count(svg, "stroke-dasharray"); got != 4 {
		t.Errorf("dashed lines = %d, want 4", got)
	}
}

// barTops extracts each bar path's top y coordinate (the M command's y
// minus the vertical segment), which must order inversely with the value.
var pathRe = regexp.MustCompile(`<path d="M([0-9.]+) ([0-9.]+) v(-?[0-9.]+)`)

func TestSVGGeometryWithinBounds(t *testing.T) {
	svg, err := sampleChart().SVG()
	if err != nil {
		t.Fatal(err)
	}
	ms := pathRe.FindAllStringSubmatch(svg, -1)
	if len(ms) != 12 {
		t.Fatalf("parsed %d bar paths", len(ms))
	}
	for _, m := range ms {
		x, _ := strconv.ParseFloat(m[1], 64)
		yBase, _ := strconv.ParseFloat(m[2], 64)
		v, _ := strconv.ParseFloat(m[3], 64)
		if x < marginLeft || x > chartWidth-marginRight {
			t.Errorf("bar x=%g outside plot", x)
		}
		if yBase < marginTop || yBase > chartHeight-marginBottom+1 {
			t.Errorf("bar base y=%g outside plot", yBase)
		}
		if v > 0 {
			t.Errorf("bar rises downward: v=%g", v)
		}
	}
}

func TestSVGTallerValueTallerBar(t *testing.T) {
	c := &BarChart{
		Title:  "t",
		Series: []string{"a", "b"},
		Groups: []Group{{Label: "g", Values: []float64{10, 40}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	ms := pathRe.FindAllStringSubmatch(svg, -1)
	if len(ms) != 2 {
		t.Fatalf("bars = %d", len(ms))
	}
	h1, _ := strconv.ParseFloat(ms[0][3], 64)
	h2, _ := strconv.ParseFloat(ms[1][3], 64)
	// v segments are negative (drawn upward); the larger value has the
	// more negative segment. Heights must scale ~4:1.
	if !(h2 < h1) {
		t.Fatalf("larger value not taller: %g vs %g", h1, h2)
	}
	ratio := h2 / h1
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("height ratio %.2f, want ≈4 (linear, zero-based scale)", ratio)
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (&BarChart{Title: "x", Series: []string{"a"}}).SVG(); err == nil {
		t.Fatal("no groups accepted")
	}
	if _, err := (&BarChart{Title: "x", Groups: []Group{{Label: "g"}}}).SVG(); err == nil {
		t.Fatal("no series accepted")
	}
	c := &BarChart{Title: "x", Series: []string{"a", "b", "c", "d", "e"},
		Groups: []Group{{Label: "g", Values: []float64{1, 2, 3, 4, 5}}}}
	if _, err := c.SVG(); err == nil {
		t.Fatal("5 series accepted (palette has 4 slots)")
	}
	c = &BarChart{Title: "x", Series: []string{"a"},
		Groups: []Group{{Label: "g", Values: []float64{1, 2}}}}
	if _, err := c.SVG(); err == nil {
		t.Fatal("value/series mismatch accepted")
	}
}

func TestSVGEscapesText(t *testing.T) {
	c := &BarChart{
		Title:  `<script>&"attack"`,
		Series: []string{"a<b"},
		Groups: []Group{{Label: "g&g", Values: []float64{1}}},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<script>") {
		t.Fatal("unescaped markup in output")
	}
	if !strings.Contains(svg, "&lt;script&gt;") {
		t.Fatal("escaped title missing")
	}
}

func TestSingleSeriesOmitsLegend(t *testing.T) {
	c := &BarChart{Title: "solo", Series: []string{"only"},
		Groups: []Group{{Label: "g", Values: []float64{3}}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	// No legend swatch rects (rx="3" is the swatch signature).
	if strings.Contains(svg, `rx="3"`) {
		t.Fatal("single-series chart rendered a legend swatch")
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{
		0.5: 0.5, 1: 1, 1.2: 2, 3: 5, 7: 10, 11: 20, 26: 50,
		99: 100, 101: 200, 240: 250, 7e5: 1e6,
	}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%g) = %g, want %g", in, got, want)
		}
	}
}

// Property: any non-negative data renders to well-formed SVG with every
// bar inside the plot box.
func TestSVGProperty(t *testing.T) {
	f := func(vals []uint16, nGroups uint8) bool {
		g := int(nGroups)%6 + 1
		ns := 3
		if len(vals) < g*ns {
			return true
		}
		c := &BarChart{Title: "p", Series: []string{"a", "b", "c"}}
		k := 0
		for i := 0; i < g; i++ {
			grp := Group{Label: fmt.Sprintf("g%d", i)}
			for s := 0; s < ns; s++ {
				grp.Values = append(grp.Values, float64(vals[k]))
				k++
			}
			c.Groups = append(c.Groups, grp)
		}
		svg, err := c.SVG()
		if err != nil {
			return false
		}
		ms := pathRe.FindAllStringSubmatch(svg, -1)
		if len(ms) != g*ns {
			return false
		}
		for _, m := range ms {
			x, _ := strconv.ParseFloat(m[1], 64)
			if x < marginLeft-1 || x > chartWidth-marginRight {
				return false
			}
		}
		return strings.HasSuffix(svg, "</svg>")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestSVGRenderTwiceIdentical guards ordered output: two renders of the
// same chart must be byte-identical, so any map iteration creeping into
// the SVG assembly order fails here.
func TestSVGRenderTwiceIdentical(t *testing.T) {
	render := func() string {
		svg, err := sampleChart().SVG()
		if err != nil {
			t.Fatal(err)
		}
		return svg
	}
	if a, b := render(), render(); a != b {
		t.Fatal("SVG render not reproducible across identical inputs")
	}
}

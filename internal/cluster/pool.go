// Package cluster models the compute resource of one scheduling domain as a
// pool of interchangeable nodes with busy/held accounting, plus an optional
// Blue Gene/P-style partition constraint that rounds allocations up to
// power-of-two partition sizes.
//
// The pool also integrates busy node-seconds over virtual time so the
// metrics layer can report utilization and service-unit loss without
// sampling.
package cluster

import (
	"errors"
	"fmt"

	"cosched/internal/sim"
)

// AllocKind distinguishes why nodes are occupied.
type AllocKind int

const (
	// AllocRun marks nodes executing a job.
	AllocRun AllocKind = iota
	// AllocHold marks nodes held by a coscheduling job waiting for its
	// mate. Held nodes are busy to the scheduler but perform no work, so
	// they count as service-unit loss rather than utilization.
	AllocHold
)

func (k AllocKind) String() string {
	if k == AllocHold {
		return "hold"
	}
	return "run"
}

// Errors returned by the pool.
var (
	ErrInsufficientNodes = errors.New("cluster: insufficient free nodes")
	ErrUnknownAlloc      = errors.New("cluster: unknown allocation")
	ErrBadRequest        = errors.New("cluster: invalid request")
)

// Allocation records one grant of nodes. Allocated is ≥ Requested when the
// partition constraint rounds up.
type Allocation struct {
	ID        int64
	Requested int
	Allocated int
	Kind      AllocKind
	Since     sim.Time
}

// Pool is the node allocator for one domain. It is not safe for concurrent
// use; the single-threaded simulation engine serializes access, and the live
// daemon wraps it in the resource manager's lock.
type Pool struct {
	name  string
	total int

	// partitioned enables BG/P-style allocation: requests are rounded up
	// to the next power of two ≥ minPartition before being charged
	// against the pool.
	partitioned  bool
	minPartition int

	free    int
	held    int // subset of busy nodes that are held, not running
	nextID  int64
	allocs  map[int64]*Allocation
	freed   []*Allocation // released structs recycled by the next Allocate
	lastT   sim.Time
	busyInt int64 // ∫ busy(t) dt in node-seconds (includes held)
	heldInt int64 // ∫ held(t) dt in node-seconds
}

// New returns a pool of total interchangeable nodes.
func New(name string, total int) *Pool {
	if total <= 0 {
		panic(fmt.Sprintf("cluster: pool %q total must be positive, got %d", name, total))
	}
	return &Pool{
		name:   name,
		total:  total,
		free:   total,
		allocs: make(map[int64]*Allocation),
	}
}

// NewPartitioned returns a pool that rounds every request up to the next
// power-of-two multiple of minPartition, as Blue Gene/P partitions do
// (Intrepid allocates 512, 1024, 2048 … node partitions).
func NewPartitioned(name string, total, minPartition int) *Pool {
	p := New(name, total)
	if minPartition <= 0 {
		panic("cluster: minPartition must be positive")
	}
	p.partitioned = true
	p.minPartition = minPartition
	return p
}

// Name returns the pool's domain name.
func (p *Pool) Name() string { return p.name }

// Total returns the node count.
func (p *Pool) Total() int { return p.total }

// Free returns currently unallocated nodes.
func (p *Pool) Free() int { return p.free }

// Busy returns total − free (running + held).
func (p *Pool) Busy() int { return p.total - p.free }

// Held returns nodes occupied by coscheduling holds.
func (p *Pool) Held() int { return p.held }

// Running returns nodes executing jobs (busy − held).
func (p *Pool) Running() int { return p.total - p.free - p.held }

// ChargeFor returns how many nodes a request for n actually consumes under
// this pool's allocation rules (identity for plain pools; next power-of-two
// partition for partitioned pools).
func (p *Pool) ChargeFor(n int) int {
	if !p.partitioned {
		return n
	}
	size := p.minPartition
	for size < n {
		size *= 2
	}
	if size > p.total {
		size = p.total
	}
	return size
}

// CanAllocate reports whether a request for n nodes would succeed now.
func (p *Pool) CanAllocate(n int) bool {
	if n <= 0 || n > p.total {
		return false
	}
	return p.ChargeFor(n) <= p.free
}

// Allocate grants n nodes of the given kind at virtual time now. The
// returned allocation ID is used to Release or Convert.
//
// Allocation structs are recycled: a pointer obtained from Allocate is
// valid only until its Release, after which the next Allocate may reuse
// the struct for an unrelated grant. Callers must not retain it past that
// point (the resource manager drops its entry in the same event).
func (p *Pool) Allocate(now sim.Time, n int, kind AllocKind) (*Allocation, error) {
	if n <= 0 || n > p.total {
		return nil, fmt.Errorf("%w: %d nodes from pool of %d", ErrBadRequest, n, p.total)
	}
	charge := p.ChargeFor(n)
	if charge > p.free {
		return nil, fmt.Errorf("%w: need %d (charged %d), free %d", ErrInsufficientNodes, n, charge, p.free)
	}
	p.integrate(now)
	p.free -= charge
	if kind == AllocHold {
		p.held += charge
	}
	p.nextID++
	var a *Allocation
	if k := len(p.freed); k > 0 {
		a = p.freed[k-1]
		p.freed[k-1] = nil
		p.freed = p.freed[:k-1]
	} else {
		a = new(Allocation)
	}
	*a = Allocation{ID: p.nextID, Requested: n, Allocated: charge, Kind: kind, Since: now}
	p.allocs[a.ID] = a
	return a, nil
}

// Release returns an allocation's nodes to the free pool. The Allocation
// struct goes back on the recycle list — see Allocate's retention contract.
func (p *Pool) Release(now sim.Time, id int64) error {
	a, ok := p.allocs[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownAlloc, id)
	}
	p.integrate(now)
	p.free += a.Allocated
	if a.Kind == AllocHold {
		p.held -= a.Allocated
	}
	delete(p.allocs, id)
	// The pool is single-threaded (engine-serialized), so same-event reads
	// of the released struct remain valid until the next Allocate reuses it.
	p.freed = append(p.freed, a)
	return nil
}

// Convert switches an allocation between hold and run in place (used when a
// holding job's mate becomes ready and the job starts on the nodes it
// already occupies). It returns the allocation for convenience.
func (p *Pool) Convert(now sim.Time, id int64, kind AllocKind) (*Allocation, error) {
	a, ok := p.allocs[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownAlloc, id)
	}
	if a.Kind == kind {
		return a, nil
	}
	p.integrate(now)
	if a.Kind == AllocHold {
		p.held -= a.Allocated
	} else {
		p.held += a.Allocated
	}
	a.Kind = kind
	a.Since = now
	return a, nil
}

// Allocations returns the number of live allocations.
func (p *Pool) Allocations() int { return len(p.allocs) }

// integrate advances the utilization integrals to now.
func (p *Pool) integrate(now sim.Time) {
	if now < p.lastT {
		// Clock never goes backwards in the engine; guard anyway.
		return
	}
	dt := now - p.lastT
	p.busyInt += int64(p.Busy()) * dt
	p.heldInt += int64(p.held) * dt
	p.lastT = now
}

// Sync advances the integrals to now without changing allocations. Call it
// before reading the integral accessors at the end of a run.
func (p *Pool) Sync(now sim.Time) { p.integrate(now) }

// BusyNodeSeconds returns ∫ busy dt including held nodes, up to the last
// integrate/Sync point.
func (p *Pool) BusyNodeSeconds() int64 { return p.busyInt }

// HeldNodeSeconds returns ∫ held dt — the pool-side view of service-unit
// loss.
func (p *Pool) HeldNodeSeconds() int64 { return p.heldInt }

// Utilization returns busy node-seconds (excluding held) divided by
// total × span. span must be positive.
func (p *Pool) Utilization(span sim.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(p.busyInt-p.heldInt) / (float64(p.total) * float64(span))
}

// HeldFraction returns the fraction of the pool currently held. The
// resource manager consults it against the max-held threshold before
// letting another job hold.
func (p *Pool) HeldFraction() float64 { return float64(p.held) / float64(p.total) }

// String renders a snapshot for logs.
func (p *Pool) String() string {
	return fmt.Sprintf("pool %s: total=%d free=%d running=%d held=%d",
		p.name, p.total, p.free, p.Running(), p.held)
}

package cluster

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocateRelease(t *testing.T) {
	p := New("test", 100)
	a, err := p.Allocate(0, 40, AllocRun)
	if err != nil {
		t.Fatal(err)
	}
	if p.Free() != 60 || p.Busy() != 40 || p.Running() != 40 || p.Held() != 0 {
		t.Fatalf("after allocate: %s", p)
	}
	if err := p.Release(10, a.ID); err != nil {
		t.Fatal(err)
	}
	if p.Free() != 100 || p.Allocations() != 0 {
		t.Fatalf("after release: %s", p)
	}
}

func TestAllocateInsufficient(t *testing.T) {
	p := New("test", 10)
	if _, err := p.Allocate(0, 8, AllocRun); err != nil {
		t.Fatal(err)
	}
	_, err := p.Allocate(0, 3, AllocRun)
	if !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("err = %v, want ErrInsufficientNodes", err)
	}
}

func TestAllocateBadRequest(t *testing.T) {
	p := New("test", 10)
	for _, n := range []int{0, -1, 11} {
		if _, err := p.Allocate(0, n, AllocRun); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Allocate(%d) err = %v, want ErrBadRequest", n, err)
		}
	}
}

func TestReleaseUnknown(t *testing.T) {
	p := New("test", 10)
	if err := p.Release(0, 42); !errors.Is(err, ErrUnknownAlloc) {
		t.Fatalf("err = %v, want ErrUnknownAlloc", err)
	}
}

func TestHeldAccounting(t *testing.T) {
	p := New("test", 100)
	h, err := p.Allocate(0, 30, AllocHold)
	if err != nil {
		t.Fatal(err)
	}
	if p.Held() != 30 || p.Running() != 0 || p.Busy() != 30 {
		t.Fatalf("after hold: %s", p)
	}
	if got := p.HeldFraction(); got != 0.3 {
		t.Fatalf("held fraction = %g, want 0.3", got)
	}
	// Convert hold → run (mate became ready).
	if _, err := p.Convert(50, h.ID, AllocRun); err != nil {
		t.Fatal(err)
	}
	if p.Held() != 0 || p.Running() != 30 {
		t.Fatalf("after convert: %s", p)
	}
	p.Sync(100)
	// Held for 50s × 30 nodes = 1500 held node-seconds.
	if got := p.HeldNodeSeconds(); got != 1500 {
		t.Fatalf("held integral = %d, want 1500", got)
	}
	// Busy the whole 100s × 30 nodes = 3000.
	if got := p.BusyNodeSeconds(); got != 3000 {
		t.Fatalf("busy integral = %d, want 3000", got)
	}
	// Utilization excludes the held time: (3000-1500)/(100*100) = 0.15.
	if got := p.Utilization(100); got != 0.15 {
		t.Fatalf("utilization = %g, want 0.15", got)
	}
}

func TestConvertIdempotentAndUnknown(t *testing.T) {
	p := New("test", 10)
	a, _ := p.Allocate(0, 4, AllocRun)
	if _, err := p.Convert(0, a.ID, AllocRun); err != nil {
		t.Fatalf("same-kind convert: %v", err)
	}
	if _, err := p.Convert(0, 999, AllocHold); !errors.Is(err, ErrUnknownAlloc) {
		t.Fatalf("err = %v, want ErrUnknownAlloc", err)
	}
}

func TestPartitionedChargeFor(t *testing.T) {
	p := NewPartitioned("intrepid", 40960, 512)
	cases := map[int]int{
		1:     512,
		512:   512,
		513:   1024,
		1024:  1024,
		2049:  4096,
		40960: 40960,
		33000: 40960, // next pow2 is 65536 > total, clamp to total
	}
	for req, want := range cases {
		if got := p.ChargeFor(req); got != want {
			t.Errorf("ChargeFor(%d) = %d, want %d", req, got, want)
		}
	}
}

func TestPartitionedAllocation(t *testing.T) {
	p := NewPartitioned("bgp", 4096, 512)
	a, err := p.Allocate(0, 700, AllocRun) // charges 1024
	if err != nil {
		t.Fatal(err)
	}
	if a.Allocated != 1024 || a.Requested != 700 {
		t.Fatalf("alloc = %+v", a)
	}
	if p.Free() != 4096-1024 {
		t.Fatalf("free = %d", p.Free())
	}
	if !p.CanAllocate(3000) { // charges 4096 > 3072? No: ChargeFor(3000)=4096 > free 3072.
		// 3000 rounds to 4096 which exceeds free capacity — CanAllocate
		// must be false; flip the assertion.
		t.Log("CanAllocate(3000) correctly false")
	} else {
		t.Fatal("CanAllocate(3000) = true, want false (charge 4096 > free 3072)")
	}
}

// Property: any sequence of allocate/release keeps invariants:
// 0 ≤ free ≤ total, held ≤ busy, and conservation free + busy = total.
func TestPoolInvariantsProperty(t *testing.T) {
	type op struct {
		N    uint8
		Hold bool
		Rel  bool
	}
	f := func(ops []op) bool {
		p := New("q", 64)
		var live []int64
		now := int64(0)
		for _, o := range ops {
			now++
			if o.Rel && len(live) > 0 {
				id := live[0]
				live = live[1:]
				if err := p.Release(now, id); err != nil {
					return false
				}
			} else {
				n := int(o.N%64) + 1
				kind := AllocRun
				if o.Hold {
					kind = AllocHold
				}
				a, err := p.Allocate(now, n, kind)
				if err == nil {
					live = append(live, a.ID)
				}
			}
			if p.Free() < 0 || p.Free() > p.Total() {
				return false
			}
			if p.Held() > p.Busy() || p.Held() < 0 {
				return false
			}
			if p.Free()+p.Busy() != p.Total() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationZeroSpan(t *testing.T) {
	p := New("x", 10)
	if got := p.Utilization(0); got != 0 {
		t.Fatalf("utilization with zero span = %g, want 0", got)
	}
}

// Package config defines the JSON configuration consumed by cmd/cosim and
// cmd/coschedd: a coupled-system description (domains, pools, policies,
// coscheduling settings, trace sources) that maps directly onto
// coupled.Options.
package config

import (
	"encoding/json"
	"fmt"
	"os"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/queues"
	"cosched/internal/sim"
	"cosched/internal/trace"
	"cosched/internal/workload"
)

// Domain is the JSON form of one scheduling domain.
type Domain struct {
	Name         string `json:"name"`
	Nodes        int    `json:"nodes"`
	MinPartition int    `json:"min_partition,omitempty"`
	Policy       string `json:"policy,omitempty"`
	Backfilling  bool   `json:"backfilling"`
	BackfillMode string `json:"backfill_mode,omitempty"` // "easy" | "conservative"
	Estimator    string `json:"estimator,omitempty"`     // "walltime" | "user-average"
	SchedCore    string `json:"sched_core,omitempty"`    // "incremental" (default) | "reference"

	// Cosched settings.
	CoschedEnabled  bool    `json:"cosched_enabled"`
	Scheme          string  `json:"scheme,omitempty"`          // "hold" | "yield"
	ReleaseMinutes  int64   `json:"release_minutes,omitempty"` // 0 = disabled
	MaxHeldFraction float64 `json:"max_held_fraction,omitempty"`
	MaxYields       int     `json:"max_yields,omitempty"`
	YieldBoost      bool    `json:"yield_boost,omitempty"`

	// Workload: either a trace file or a synthetic spec.
	TraceFile string     `json:"trace_file,omitempty"`
	Synthetic *Synthetic `json:"synthetic,omitempty"`

	// Queues optionally routes the domain's jobs through named submission
	// queues whose priorities scale the base policy (Cobalt-style).
	Queues []QueueSpec `json:"queues,omitempty"`
}

// QueueSpec is the JSON form of one submission queue.
type QueueSpec struct {
	Name        string  `json:"name"`
	MinNodes    int     `json:"min_nodes,omitempty"`
	MaxNodes    int     `json:"max_nodes,omitempty"`
	MaxWallMins int64   `json:"max_walltime_minutes,omitempty"`
	Priority    float64 `json:"priority,omitempty"`
	Default     bool    `json:"default,omitempty"`
}

// Synthetic requests a generated workload.
type Synthetic struct {
	System string  `json:"system"` // "intrepid" | "eureka"
	Jobs   int     `json:"jobs,omitempty"`
	Util   float64 `json:"util,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
}

// Pairing describes cross-domain job association.
type Pairing struct {
	DomainA       string  `json:"domain_a"`
	DomainB       string  `json:"domain_b"`
	WindowSeconds int64   `json:"window_seconds,omitempty"`
	Proportion    float64 `json:"proportion,omitempty"`
	Seed          uint64  `json:"seed,omitempty"`
}

// File is the top-level configuration document.
type File struct {
	Domains []Domain  `json:"domains"`
	Pairs   []Pairing `json:"pairs,omitempty"`
	Wire    bool      `json:"wire_protocol,omitempty"`
}

// Load parses a configuration file.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if len(f.Domains) == 0 {
		return nil, fmt.Errorf("config: %s: no domains", path)
	}
	return &f, nil
}

// Build converts the configuration into coupled.Options, loading or
// generating each domain's workload and applying the pairings.
func (f *File) Build() (coupled.Options, error) {
	var opt coupled.Options
	opt.UseWireProtocol = f.Wire
	traces := make(map[string][]*job.Job, len(f.Domains))
	for _, d := range f.Domains {
		tr, err := d.buildTrace()
		if err != nil {
			return opt, fmt.Errorf("config: domain %q: %w", d.Name, err)
		}
		traces[d.Name] = tr
		cc := cosched.Config{
			Enabled:         d.CoschedEnabled,
			ReleaseInterval: sim.Duration(d.ReleaseMinutes) * sim.Minute,
			MaxHeldFraction: d.MaxHeldFraction,
			MaxYields:       d.MaxYields,
			YieldBoost:      d.YieldBoost,
		}
		if d.Scheme != "" {
			s, err := cosched.ParseScheme(d.Scheme)
			if err != nil {
				return opt, fmt.Errorf("config: domain %q: %w", d.Name, err)
			}
			cc.Scheme = s
		}
		dc := coupled.DomainConfig{
			Name:         d.Name,
			Nodes:        d.Nodes,
			MinPartition: d.MinPartition,
			Policy:       d.Policy,
			Backfilling:  d.Backfilling,
			BackfillMode: d.BackfillMode,
			Estimator:    d.Estimator,
			SchedCore:    d.SchedCore,
			Cosched:      cc,
			Trace:        tr,
		}
		if len(d.Queues) > 0 {
			router, err := buildQueues(d, tr)
			if err != nil {
				return opt, fmt.Errorf("config: domain %q: %w", d.Name, err)
			}
			base, ok := policy.ByName(d.Policy)
			if !ok {
				return opt, fmt.Errorf("config: domain %q: unknown policy %q", d.Name, d.Policy)
			}
			dc.PolicyImpl = router.Policy(base)
		}
		opt.Domains = append(opt.Domains, dc)
	}
	for _, p := range f.Pairs {
		a, okA := traces[p.DomainA]
		b, okB := traces[p.DomainB]
		if !okA || !okB {
			return opt, fmt.Errorf("config: pairing references unknown domain %q/%q", p.DomainA, p.DomainB)
		}
		if p.Proportion > 0 {
			if _, err := workload.PairByProportion(workload.NewRNG(p.Seed+1), a, b, p.DomainA, p.DomainB, p.Proportion); err != nil {
				return opt, err
			}
		} else {
			window := sim.Duration(p.WindowSeconds)
			if window <= 0 {
				window = 2 * sim.Minute
			}
			workload.PairByWindow(a, b, p.DomainA, p.DomainB, window)
		}
	}
	return opt, nil
}

// buildQueues constructs a queue router for the domain and routes every
// trace job through it, rejecting configurations whose queues cannot admit
// part of the workload.
func buildQueues(d Domain, tr []*job.Job) (*queues.Router, error) {
	specs := make([]queues.Spec, len(d.Queues))
	for i, q := range d.Queues {
		specs[i] = queues.Spec{
			Name:        q.Name,
			MinNodes:    q.MinNodes,
			MaxNodes:    q.MaxNodes,
			MaxWalltime: sim.Duration(q.MaxWallMins) * sim.Minute,
			Priority:    q.Priority,
			Default:     q.Default,
		}
	}
	router, err := queues.NewRouter(specs)
	if err != nil {
		return nil, err
	}
	for _, j := range tr {
		if _, err := router.Route(j); err != nil {
			return nil, err
		}
	}
	return router, nil
}

// buildTrace loads or generates the domain's workload.
func (d Domain) buildTrace() ([]*job.Job, error) {
	switch {
	case d.TraceFile != "" && d.Synthetic != nil:
		return nil, fmt.Errorf("both trace_file and synthetic given")
	case d.TraceFile != "":
		_, jobs, err := trace.LoadFile(d.TraceFile)
		return jobs, err
	case d.Synthetic != nil:
		var spec workload.Spec
		switch d.Synthetic.System {
		case "intrepid":
			spec = workload.IntrepidSpec(d.Synthetic.Seed)
		case "eureka":
			spec = workload.EurekaSpec(d.Synthetic.Seed)
		default:
			return nil, fmt.Errorf("unknown synthetic system %q", d.Synthetic.System)
		}
		if d.Synthetic.Jobs > 0 {
			spec.Jobs = d.Synthetic.Jobs
		}
		jobs, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		if d.Synthetic.Util > 0 {
			if _, err := workload.ScaleToUtilization(jobs, d.Nodes, d.Synthetic.Util); err != nil {
				return nil, err
			}
		}
		return jobs, nil
	default:
		return nil, fmt.Errorf("no workload: set trace_file or synthetic")
	}
}

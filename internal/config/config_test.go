package config

import (
	"os"
	"path/filepath"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/trace"
	"cosched/internal/workload"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sim.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validConfig = `{
  "wire_protocol": false,
  "domains": [
    {"name": "intrepid", "nodes": 40960, "min_partition": 512, "backfilling": true,
     "cosched_enabled": true, "scheme": "hold", "release_minutes": 20,
     "synthetic": {"system": "intrepid", "jobs": 100, "seed": 1}},
    {"name": "eureka", "nodes": 100, "backfilling": true,
     "cosched_enabled": true, "scheme": "yield", "release_minutes": 20,
     "max_held_fraction": 0.5, "max_yields": 3, "yield_boost": true,
     "synthetic": {"system": "eureka", "jobs": 80, "util": 0.4, "seed": 2}}
  ],
  "pairs": [{"domain_a": "intrepid", "domain_b": "eureka", "window_seconds": 600}]
}`

func TestLoadAndBuild(t *testing.T) {
	path := writeConfig(t, validConfig)
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Domains) != 2 {
		t.Fatalf("domains = %d", len(opt.Domains))
	}
	d0 := opt.Domains[0]
	if d0.Name != "intrepid" || d0.MinPartition != 512 || !d0.Backfilling {
		t.Fatalf("domain 0 = %+v", d0)
	}
	if !d0.Cosched.Enabled || d0.Cosched.Scheme != cosched.Hold {
		t.Fatalf("domain 0 cosched = %+v", d0.Cosched)
	}
	if len(d0.Trace) != 100 {
		t.Fatalf("domain 0 trace = %d jobs", len(d0.Trace))
	}
	d1 := opt.Domains[1]
	if d1.Cosched.Scheme != cosched.Yield || d1.Cosched.MaxHeldFraction != 0.5 ||
		d1.Cosched.MaxYields != 3 || !d1.Cosched.YieldBoost {
		t.Fatalf("domain 1 cosched = %+v", d1.Cosched)
	}
	// The pairing must have linked at least one pair (10-minute window
	// over overlapping month-long traces).
	if workload.PairedFraction(d0.Trace) == 0 {
		t.Fatal("no pairs formed")
	}
	// The built options must actually simulate.
	s, err := coupled.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 || res.CoStartViolations != 0 {
		t.Fatalf("run: stuck=%d viol=%d", res.StuckJobs, res.CoStartViolations)
	}
}

func TestBuildFromTraceFile(t *testing.T) {
	jobs, err := workload.Generate(workload.EurekaSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(t.TempDir(), "t.swf")
	if err := trace.SaveFile(tracePath, nil, jobs[:40]); err != nil {
		t.Fatal(err)
	}
	path := writeConfig(t, `{
	  "domains": [{"name": "d", "nodes": 100, "backfilling": true,
	    "cosched_enabled": false, "trace_file": "`+tracePath+`"}]
	}`)
	f, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(opt.Domains[0].Trace) != 40 {
		t.Fatalf("trace = %d jobs", len(opt.Domains[0].Trace))
	}
}

func TestLoadRejectsBadConfigs(t *testing.T) {
	cases := map[string]string{
		"no domains": `{"domains": []}`,
		"bad json":   `{`,
	}
	for name, body := range cases {
		if _, err := Load(writeConfig(t, body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := Load("/nonexistent.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBuildRejectsBadDomains(t *testing.T) {
	cases := map[string]string{
		"no workload": `{"domains": [{"name": "d", "nodes": 4}]}`,
		"both workloads": `{"domains": [{"name": "d", "nodes": 4,
			"trace_file": "x.swf", "synthetic": {"system": "eureka"}}]}`,
		"bad system": `{"domains": [{"name": "d", "nodes": 4,
			"synthetic": {"system": "cray"}}]}`,
		"bad scheme": `{"domains": [{"name": "d", "nodes": 4, "scheme": "grab",
			"synthetic": {"system": "eureka", "jobs": 10}}]}`,
		"unknown pair domain": `{"domains": [{"name": "d", "nodes": 4,
			"synthetic": {"system": "eureka", "jobs": 10}}],
			"pairs": [{"domain_a": "d", "domain_b": "nope"}]}`,
	}
	for name, body := range cases {
		f, err := Load(writeConfig(t, body))
		if err != nil {
			continue // rejected at load; also fine
		}
		if _, err := f.Build(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestShippedConfigsBuildAndRun loads every sample under configs/ and runs
// it briefly — the shipped examples must never rot.
func TestShippedConfigsBuildAndRun(t *testing.T) {
	matches, err := filepath.Glob("../../configs/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no shipped configs found")
	}
	for _, path := range matches {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := f.Build()
			if err != nil {
				t.Fatal(err)
			}
			// Shrink the workloads so the test stays fast: drop all but
			// the first 120 jobs per domain.
			for i := range opt.Domains {
				if len(opt.Domains[i].Trace) > 120 {
					opt.Domains[i].Trace = opt.Domains[i].Trace[:120]
				}
			}
			s, err := coupled.New(opt)
			if err != nil {
				t.Fatal(err)
			}
			res := s.Run()
			if res.CoStartViolations != 0 {
				t.Fatalf("%s: %d co-start violations", path, res.CoStartViolations)
			}
		})
	}
}

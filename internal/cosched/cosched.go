// Package cosched defines the coscheduling vocabulary from Tang et al.
// (ICPP 2011): the hold/yield schemes, the mate-status values exchanged
// between scheduling domains, the per-domain configuration (including the
// deadlock-breaking release interval and the performance-impact
// thresholds), and the Peer interface — the lightweight coordination
// protocol Algorithm 1 speaks against a remote resource manager.
//
// The algorithm itself lives in internal/resmgr, which extends the
// resource manager's Run_Job function exactly as the paper describes.
package cosched

import (
	"fmt"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// Scheme selects what a ready job does when its remote mate cannot start:
// hold its assigned nodes, or yield the slot.
type Scheme int

const (
	// Hold keeps the assigned nodes busy (invisible to other jobs) until
	// the mate becomes ready. Minimizes pair synchronization time at the
	// cost of wasted service units.
	Hold Scheme = iota
	// Yield gives the slot back to the scheduler and returns the job to
	// the queue. Costs nothing in service units but the job may yield
	// repeatedly before the pair aligns.
	Yield
)

// String returns "hold" or "yield".
func (s Scheme) String() string {
	if s == Yield {
		return "yield"
	}
	return "hold"
}

// Short returns the single-letter form used in the paper's figures (H/Y).
func (s Scheme) Short() string {
	if s == Yield {
		return "Y"
	}
	return "H"
}

// ParseScheme parses "hold"/"h" or "yield"/"y" (case-sensitive lower).
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "hold", "h", "H":
		return Hold, nil
	case "yield", "y", "Y":
		return Yield, nil
	default:
		return Hold, fmt.Errorf("cosched: unknown scheme %q", s)
	}
}

// MateStatus is the answer to a GetMateStatus query, mirroring the status
// switch in Algorithm 1 plus terminal states needed for fault tolerance.
type MateStatus int

const (
	// StatusUnknown means the remote manager has no record of the job or
	// the query failed; Algorithm 1 starts the local job normally.
	StatusUnknown MateStatus = iota
	// StatusUnsubmitted means the remote expects the job (it appears in
	// the registered workload) but it has not arrived in the queue.
	StatusUnsubmitted
	// StatusQueuing means the mate is waiting in the remote queue.
	StatusQueuing
	// StatusHolding means the mate holds its nodes waiting for us: both
	// sides can start immediately.
	StatusHolding
	// StatusRunning means the mate already started (only possible after a
	// fault-tolerance fallback start).
	StatusRunning
	// StatusCompleted means the mate already finished.
	StatusCompleted
)

var statusNames = map[MateStatus]string{
	StatusUnknown:     "unknown",
	StatusUnsubmitted: "unsubmitted",
	StatusQueuing:     "queuing",
	StatusHolding:     "holding",
	StatusRunning:     "running",
	StatusCompleted:   "completed",
}

// String returns the wire name of the status.
func (m MateStatus) String() string {
	if n, ok := statusNames[m]; ok {
		return n
	}
	return fmt.Sprintf("matestatus(%d)", int(m))
}

// ParseMateStatus inverts String.
func ParseMateStatus(s string) (MateStatus, error) {
	for k, v := range statusNames {
		if v == s {
			return k, nil
		}
	}
	return StatusUnknown, fmt.Errorf("cosched: unknown mate status %q", s)
}

// FromJobState maps a locally observed job state to the status reported to
// a peer.
func FromJobState(s job.State) MateStatus {
	switch s {
	case job.Unsubmitted:
		return StatusUnsubmitted
	case job.Queued:
		return StatusQueuing
	case job.Holding:
		return StatusHolding
	case job.Running:
		return StatusRunning
	case job.Completed:
		return StatusCompleted
	default:
		// Cancelled (and anything unexpected) imposes no co-start
		// constraint: the partner starts normally.
		return StatusUnknown
	}
}

// Config is one domain's coscheduling configuration. The zero value is a
// disabled coscheduler; DefaultConfig matches the paper's experiments.
type Config struct {
	// Enabled gates the whole mechanism (Algorithm 1's cosched_enabled).
	Enabled bool
	// Scheme is the locally configured behaviour when the mate is not
	// ready. Schemes are purely local: no domain needs to know its
	// peer's configuration (§IV-E1).
	Scheme Scheme
	// ReleaseInterval is the deadlock-breaking enhancement (§IV-E1): a
	// holding job releases its nodes every interval and is ranked last
	// for one scheduling iteration; 0 disables the enhancement (hold-hold
	// may then deadlock). The paper's experiments use 20 minutes.
	ReleaseInterval sim.Duration
	// MaxHeldFraction caps the proportion of the machine that may be in
	// hold state; a job that would push the held fraction above the cap
	// yields instead (§IV-E2). 1.0 (or 0, treated as 1.0) = no cap.
	MaxHeldFraction float64
	// MaxYields, when positive, lets a job that has yielded this many
	// times start holding instead (§IV-E2's anti-starvation escalation).
	MaxYields int
	// YieldBoost, when true, raises a job's queue priority after every
	// yield (§IV-E2's alternative enhancement).
	YieldBoost bool
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: enabled, 20-minute release interval, no held-fraction cap, no
// yield escalation.
func DefaultConfig(s Scheme) Config {
	return Config{
		Enabled:         true,
		Scheme:          s,
		ReleaseInterval: 20 * sim.Minute,
		MaxHeldFraction: 1.0,
	}
}

// EffectiveMaxHeldFraction normalizes the cap (0 means uncapped).
func (c Config) EffectiveMaxHeldFraction() float64 {
	if c.MaxHeldFraction <= 0 || c.MaxHeldFraction > 1 {
		return 1.0
	}
	return c.MaxHeldFraction
}

// Peer is the lightweight coordination protocol one resource manager speaks
// to another. Implementations: resmgr.Manager (direct, in-process) and
// proto.Client (length-prefixed JSON over a net.Conn). Every method's error
// return maps to StatusUnknown semantics at the call site: the algorithm is
// fault-tolerant and starts jobs normally when a peer cannot be reached.
type Peer interface {
	// PeerName returns the remote domain's name.
	PeerName() string
	// GetMateJob reports whether the remote manager knows the job
	// (registered, queued, or finished) — Algorithm 1 line 2.
	GetMateJob(id job.ID) (bool, error)
	// GetMateStatus returns the mate's current status — line 4.
	GetMateStatus(id job.ID) (MateStatus, error)
	// CanStartMate probes whether TryStartMate would succeed, without
	// side effects. Used by the N-way extension to avoid partial group
	// starts.
	CanStartMate(id job.ID) (bool, error)
	// TryStartMate asks the remote manager to run one extra scheduling
	// iteration on behalf of the mate and start it if resources allow —
	// line 12. It returns true only if the mate is running afterwards.
	TryStartMate(id job.ID) (bool, error)
	// StartMate releases a holding mate into execution — line 8.
	StartMate(id job.ID) error
}

// CoStarter is an optional Peer extension carrying the co-start instant
// agreement: the caller that resolves a pair proposes the start instant
// (its own clock reading), and the callee records that instant as the
// mate's StartTime even though its own clock may have drifted a few
// milliseconds past it by the time the request arrives. In a shared-engine
// simulation the proposed instant always equals the callee's clock, so the
// extension is byte-identical to the plain calls; between live daemons it
// is what makes the paper's §V-B log check ("paired jobs start at the same
// time") hold exactly rather than within a wall-clock jitter tolerance.
// Callers fall back to TryStartMate/StartMate when a peer lacks it.
type CoStarter interface {
	// TryStartMateAt is TryStartMate with the caller's proposed co-start
	// instant.
	TryStartMateAt(id job.ID, at sim.Time) (bool, error)
	// StartMateAt is StartMate with the caller's proposed co-start
	// instant.
	StartMateAt(id job.ID, at sim.Time) error
}

// MateView is one side's knowledge of one shared pair, exchanged during a
// ReconcileMates handshake. Local is the reporting domain's job, Mate the
// receiving domain's job, Status the reporter's view of its own job.
// Start carries the instant the local job started when Status is running
// or completed, so a recovering mate that lost its own start record can
// adopt the surviving side's instant and keep the pair's log byte-exact.
type MateView struct {
	Local  job.ID
	Mate   job.ID
	Status MateStatus
	Start  sim.Time
}

// Reconciler is the optional restart-reconciliation extension of the
// protocol: after a daemon recovers from a crash (or is draining on
// shutdown) it exchanges MateViews with each peer and both sides resolve
// orphans by the paper's fallback rules — a hold whose mate no longer
// knows the job is released back to the queue (it re-enters Run_Job), a
// hold whose mate is already running adopts the mate's start instant, and
// a hold facing a mate that also holds is co-started now by the caller.
// Implemented by resmgr.Manager, proto.Client/Server, and peerlink.Link;
// discovered by type assertion so plain Peer implementations (tests,
// older tools) remain valid.
type Reconciler interface {
	// ReconcileMates reports the caller's views of every pair shared with
	// this domain (from is the caller's domain name) and returns this
	// domain's views of the same pairs, after applying any releases or
	// adoptions the caller's report implies. A view missing from the
	// request means the caller no longer knows the job — a receiver
	// holding for it must release.
	ReconcileMates(from string, views []MateView) ([]MateView, error)
}

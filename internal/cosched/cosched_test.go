package cosched

import (
	"testing"
	"testing/quick"

	"cosched/internal/job"
	"cosched/internal/sim"
)

func TestSchemeStrings(t *testing.T) {
	if Hold.String() != "hold" || Yield.String() != "yield" {
		t.Fatalf("strings: %s / %s", Hold, Yield)
	}
	if Hold.Short() != "H" || Yield.Short() != "Y" {
		t.Fatalf("shorts: %s / %s", Hold.Short(), Yield.Short())
	}
}

func TestParseScheme(t *testing.T) {
	cases := map[string]Scheme{
		"hold": Hold, "h": Hold, "H": Hold,
		"yield": Yield, "y": Yield, "Y": Yield,
	}
	for in, want := range cases {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
}

func TestMateStatusRoundTrip(t *testing.T) {
	all := []MateStatus{
		StatusUnknown, StatusUnsubmitted, StatusQueuing,
		StatusHolding, StatusRunning, StatusCompleted,
	}
	for _, st := range all {
		got, err := ParseMateStatus(st.String())
		if err != nil || got != st {
			t.Errorf("round trip %v: got %v, %v", st, got, err)
		}
	}
	if _, err := ParseMateStatus("nope"); err == nil {
		t.Fatal("bogus status accepted")
	}
	if s := MateStatus(99).String(); s != "matestatus(99)" {
		t.Fatalf("unknown status string = %q", s)
	}
}

func TestFromJobState(t *testing.T) {
	cases := map[job.State]MateStatus{
		job.Unsubmitted: StatusUnsubmitted,
		job.Queued:      StatusQueuing,
		job.Holding:     StatusHolding,
		job.Running:     StatusRunning,
		job.Completed:   StatusCompleted,
		job.State(42):   StatusUnknown,
	}
	for in, want := range cases {
		if got := FromJobState(in); got != want {
			t.Errorf("FromJobState(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(Yield)
	if !c.Enabled || c.Scheme != Yield || c.ReleaseInterval != 20*sim.Minute {
		t.Fatalf("default config = %+v", c)
	}
	if c.EffectiveMaxHeldFraction() != 1.0 {
		t.Fatalf("effective cap = %g", c.EffectiveMaxHeldFraction())
	}
}

func TestEffectiveMaxHeldFraction(t *testing.T) {
	cases := map[float64]float64{0: 1.0, -1: 1.0, 0.5: 0.5, 1.0: 1.0, 1.5: 1.0}
	for in, want := range cases {
		c := Config{MaxHeldFraction: in}
		if got := c.EffectiveMaxHeldFraction(); got != want {
			t.Errorf("cap %g → %g, want %g", in, got, want)
		}
	}
}

// Property: parse∘string is the identity for both schemes and all named
// statuses.
func TestStringParseProperty(t *testing.T) {
	f := func(raw uint8) bool {
		st := MateStatus(raw % 6)
		got, err := ParseMateStatus(st.String())
		return err == nil && got == st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package coupled simulates a coupled HEC installation: two (or more)
// scheduling domains, each with its own resource manager, node pool,
// policy, and coscheduling configuration, driven by one shared virtual
// clock — the multi-domain extension of Qsim the paper built for its
// evaluation (§V-A).
//
// Domains coordinate only through the cosched.Peer interface. By default
// managers are wired to each other directly (in-process); with
// UseWireProtocol the calls travel through the length-prefixed JSON
// protocol over an in-memory pipe, exercising the exact code path the live
// daemons use.
package coupled

import (
	"fmt"
	"net"
	"sort"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/policy"
	"cosched/internal/predict"
	"cosched/internal/proto"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// DomainConfig describes one scheduling domain.
type DomainConfig struct {
	Name string
	// Nodes is the pool size (e.g. 40960 for Intrepid, 100 for Eureka).
	Nodes int
	// MinPartition, when positive, enables BG/P-style power-of-two
	// partition allocation with this minimum size.
	MinPartition int
	// Policy names the queue policy ("wfp", "fcfs", "sjf", "largest",
	// "fairshare"); empty selects WFP.
	Policy string
	// PolicyImpl, when non-nil, overrides Policy with a concrete
	// implementation (e.g. a queue-routing wrapper from internal/queues).
	PolicyImpl policy.Policy
	// Backfilling enables backfill (the paper's setting: WFP plus EASY).
	Backfilling bool
	// BackfillMode optionally selects the planner when Backfilling is on:
	// "easy" (default) or "conservative".
	BackfillMode string
	// Estimator names the backfill planning-runtime source: "walltime"
	// (default) or "user-average" (Tsafrir-style prediction).
	Estimator string
	// SchedCore names the resource manager's scheduling core:
	// "incremental" (default) or "reference" (the original
	// allocate-and-sort path, kept for differential testing). Both must
	// produce byte-identical results.
	SchedCore string
	// Cosched is the domain's coscheduling configuration.
	Cosched cosched.Config
	// Trace is the domain's workload, sorted by submit time. Jobs are
	// mutated during the run; pass workload.Clone copies to reuse traces.
	Trace []*job.Job
	// TraceStream, when non-nil, replaces Trace with a pull source replayed
	// through resmgr.SubmitTraceStream: memory tracks the look-ahead window
	// plus live jobs instead of the trace length. Streaming runs require an
	// explicit Options.Horizon (the default bound is derived by scanning the
	// trace, which a stream cannot afford). Mutually exclusive with Trace.
	TraceStream resmgr.JobSource
	// StreamWindow sizes the TraceStream look-ahead; <= 0 selects
	// resmgr.DefaultStreamWindow. Paired streams need a window covering the
	// maximum submit-index skew between mates (see SubmitTraceStream).
	StreamWindow int
	// Observer, when non-nil, receives lifecycle callbacks.
	Observer resmgr.Observer
}

// Options configures a coupled simulation.
type Options struct {
	Domains []DomainConfig
	// UseWireProtocol routes every peer call through proto over net.Pipe
	// instead of direct method calls.
	UseWireProtocol bool
	// Horizon bounds virtual time; 0 derives a generous bound from the
	// traces. Hitting the horizon marks remaining jobs stuck.
	Horizon sim.Time
	// FaultRate, when positive, wraps every peer in a deterministic fault
	// injector failing that fraction of coordination calls (seeded by
	// FaultSeed) — chaos testing for the §IV-C fault-tolerance path. Jobs
	// whose coordination fails start uncoordinated, so co-start
	// violations become expected.
	FaultRate float64
	FaultSeed uint64
}

// Result summarizes a completed simulation.
type Result struct {
	// Reports holds one metrics report per domain, keyed by name.
	Reports map[string]metrics.DomainReport
	// Makespan is the virtual time when the simulation stopped.
	Makespan sim.Time
	// TotalJobs and CompletedJobs aggregate across domains.
	TotalJobs, CompletedJobs int
	// StuckJobs counts jobs that never completed — the observable
	// signature of the hold-hold deadlock when the release enhancement is
	// off (§V-B).
	StuckJobs int
	// Deadlocked is true when the run ended with stuck jobs.
	Deadlocked bool
	// HitHorizon is true when the run was cut off at the horizon rather
	// than draining naturally.
	HitHorizon bool
	// CoStartViolations counts paired jobs that started at a different
	// instant than a started mate — must be 0 unless faults were
	// injected.
	CoStartViolations int
	// Iterations sums scheduling iterations across domains.
	Iterations uint64
}

// Sim is a configured coupled simulation. Create with New, inspect or
// adjust, then Run.
type Sim struct {
	eng      *sim.Engine
	managers map[string]*resmgr.Manager
	order    []string
	traces   map[string][]*job.Job
	horizon  sim.Time
	cleanup  []func()
	// streaming is set when any domain replays from a TraceStream; the run
	// loop then derives its done condition from the managers' registered
	// counts instead of a precomputed trace total.
	streaming bool
}

// New builds the engine, domains, and peer wiring, and schedules every
// trace job's submission.
func New(opt Options) (*Sim, error) {
	if len(opt.Domains) < 1 {
		return nil, fmt.Errorf("coupled: need at least one domain")
	}
	eng := sim.NewEngine()
	s := &Sim{
		eng:      eng,
		managers: make(map[string]*resmgr.Manager),
		traces:   make(map[string][]*job.Job),
	}
	for _, dc := range opt.Domains {
		if dc.Name == "" {
			return nil, fmt.Errorf("coupled: domain with empty name")
		}
		if _, dup := s.managers[dc.Name]; dup {
			return nil, fmt.Errorf("coupled: duplicate domain %q", dc.Name)
		}
		pol, ok := policy.ByName(dc.Policy)
		if !ok {
			return nil, fmt.Errorf("coupled: domain %q: unknown policy %q", dc.Name, dc.Policy)
		}
		if dc.PolicyImpl != nil {
			pol = dc.PolicyImpl
		}
		est, ok := predict.ByName(dc.Estimator)
		if !ok {
			return nil, fmt.Errorf("coupled: domain %q: unknown estimator %q", dc.Name, dc.Estimator)
		}
		mode, ok := resmgr.ParseBackfillMode(dc.BackfillMode)
		if !ok {
			return nil, fmt.Errorf("coupled: domain %q: unknown backfill mode %q", dc.Name, dc.BackfillMode)
		}
		core, ok := resmgr.ParseCore(dc.SchedCore)
		if !ok {
			return nil, fmt.Errorf("coupled: domain %q: unknown sched core %q", dc.Name, dc.SchedCore)
		}
		var pool *cluster.Pool
		if dc.MinPartition > 0 {
			pool = cluster.NewPartitioned(dc.Name, dc.Nodes, dc.MinPartition)
		} else {
			pool = cluster.New(dc.Name, dc.Nodes)
		}
		obs := dc.Observer
		if obs == nil {
			obs = resmgr.NullObserver{}
		}
		m := resmgr.New(eng, resmgr.Options{
			Name:        dc.Name,
			Pool:        pool,
			Policy:      pol,
			Backfilling: dc.Backfilling,
			Mode:        mode,
			Estimator:   est,
			Cosched:     dc.Cosched,
			Observer:    obs,
			Core:        core,
		})
		s.managers[dc.Name] = m
		s.order = append(s.order, dc.Name)
		s.traces[dc.Name] = dc.Trace
	}

	// Wire every domain to every other.
	seed := opt.FaultSeed
	for _, a := range s.order {
		for _, b := range s.order {
			if a == b {
				continue
			}
			peer, err := s.makePeer(s.managers[b], opt.UseWireProtocol)
			if err != nil {
				return nil, err
			}
			if opt.FaultRate > 0 {
				seed++
				peer = proto.NewFaultInjector(peer, opt.FaultRate, seed)
			}
			s.managers[a].AddPeer(b, peer)
		}
	}

	// Schedule submissions and derive the default horizon. Domains are
	// walked in declaration order, not map order: scheduling assigns the
	// engine sequence numbers that break ties between same-instant events
	// across domains, so a random walk here would make whole simulations
	// differ from run to run.
	var lastSubmit sim.Time
	var maxRuntime sim.Duration
	streams := make(map[string]resmgr.JobSource)
	for _, dc := range opt.Domains {
		if dc.TraceStream != nil {
			if len(dc.Trace) > 0 {
				return nil, fmt.Errorf("coupled: domain %q: Trace and TraceStream are mutually exclusive", dc.Name)
			}
			if opt.Horizon <= 0 {
				return nil, fmt.Errorf("coupled: domain %q streams its trace; an explicit Options.Horizon is required", dc.Name)
			}
			streams[dc.Name] = dc.TraceStream
			if err := s.managers[dc.Name].SubmitTraceStream(dc.TraceStream, dc.StreamWindow); err != nil {
				return nil, fmt.Errorf("coupled: domain %q: %w", dc.Name, err)
			}
			s.streaming = true
		}
	}
	for _, name := range s.order {
		if streams[name] != nil {
			continue
		}
		tr := s.traces[name]
		m := s.managers[name]
		for _, j := range tr {
			if j.Nodes > m.Pool().Total() {
				return nil, fmt.Errorf("coupled: domain %q: job %d requests %d nodes but the pool has %d — it could never start",
					name, j.ID, j.Nodes, m.Pool().Total())
			}
			if j.SubmitTime > lastSubmit {
				lastSubmit = j.SubmitTime
			}
			if j.Runtime > maxRuntime {
				maxRuntime = j.Runtime
			}
		}
		// SubmitTrace replays the whole trace through one chained event,
		// keeping the event heap sized by concurrent work rather than by
		// total trace length. It requires submit-time order; generated
		// traces already have it, and a hand-built unsorted trace (e.g. the
		// quickstart example) is stably sorted into a copy — same-instant
		// jobs keep their trace order, which is exactly the order the old
		// per-job submission events fired in (engine sequence ties).
		if !sortedBySubmit(tr) {
			tr = append([]*job.Job(nil), tr...)
			sort.SliceStable(tr, func(a, b int) bool { return tr[a].SubmitTime < tr[b].SubmitTime })
		}
		if err := m.SubmitTrace(tr); err != nil {
			return nil, fmt.Errorf("coupled: domain %q: %w", name, err)
		}
	}
	s.horizon = opt.Horizon
	if s.horizon == 0 {
		// Generous: all submitted work could drain serially many times
		// over before this bound matters in a non-pathological run.
		s.horizon = lastSubmit + 100*maxRuntime + 365*sim.Day
	}
	return s, nil
}

// sortedBySubmit reports whether tr is in non-decreasing submit-time
// order, the precondition of resmgr.SubmitTrace.
func sortedBySubmit(tr []*job.Job) bool {
	for i := 1; i < len(tr); i++ {
		if tr[i].SubmitTime < tr[i-1].SubmitTime {
			return false
		}
	}
	return true
}

// makePeer wires a direct or wire-protocol peer for manager m.
func (s *Sim) makePeer(m *resmgr.Manager, wire bool) (cosched.Peer, error) {
	if !wire {
		return m, nil
	}
	server := proto.NewServer(m, nil, nil)
	clientEnd, serverEnd := net.Pipe()
	go server.ServeConn(serverEnd)
	client := proto.NewClient(clientEnd, 0)
	if _, err := client.Ping(); err != nil {
		return nil, fmt.Errorf("coupled: pipe peer ping: %w", err)
	}
	s.cleanup = append(s.cleanup, func() {
		client.Close()
		server.Close()
	})
	return client, nil
}

// Engine exposes the shared engine (for tests that co-schedule extra
// events, e.g. fault injection).
func (s *Sim) Engine() *sim.Engine { return s.eng }

// Manager returns the named domain's resource manager.
func (s *Sim) Manager(name string) *resmgr.Manager { return s.managers[name] }

// Run executes the simulation to completion (all jobs done, events
// drained, or horizon reached) and collects the result.
func (s *Sim) Run() *Result {
	defer func() {
		for _, f := range s.cleanup {
			f()
		}
		s.cleanup = nil
	}()

	total := 0
	for _, tr := range s.traces {
		total += len(tr)
	}
	res := &Result{Reports: make(map[string]metrics.DomainReport), TotalJobs: total}

	// The done check runs after every engine step, so it walks a flat
	// manager slice: ranging the map here made the per-event loop spend
	// more time in map iteration than in some handlers.
	ms := make([]*resmgr.Manager, 0, len(s.order))
	for _, name := range s.order {
		ms = append(ms, s.managers[name])
	}
	done := func() int {
		n := 0
		for _, m := range ms {
			n += m.CompletedCount() + m.CancelledCount()
		}
		return n
	}
	// With streams the trace total is unknown up front: the run is done
	// when every stream has drained AND every registered job is terminal.
	// Registered counts only grow, so checking done() first is safe.
	finished := func() bool {
		if !s.streaming {
			return done() >= total
		}
		reg := 0
		for _, m := range ms {
			if !m.TraceDone() {
				return false
			}
			reg += m.RegisteredCount()
		}
		return done() >= reg
	}
	for !finished() {
		if !s.eng.Step() {
			break // drained with incomplete jobs: deadlock/starvation
		}
		if s.eng.Now() > s.horizon {
			res.HitHorizon = true
			break
		}
	}
	if s.streaming {
		total = 0
		for _, m := range ms {
			total += m.RegisteredCount()
		}
		res.TotalJobs = total
	}
	res.Makespan = s.eng.Now()
	res.CompletedJobs = done()
	res.StuckJobs = total - res.CompletedJobs
	res.Deadlocked = res.StuckJobs > 0

	for name, m := range s.managers {
		m.Pool().Sync(res.Makespan)
		res.Iterations += m.Iterations()
		span := res.Makespan
		// CollectReport folds the registry in registration order; in
		// streaming mode it also includes the jobs already folded out, so
		// both modes report identical bytes for identical runs.
		res.Reports[name] = m.CollectReport(m.Pool().Total(), span)
	}
	res.CoStartViolations = s.verifyCoStarts()
	return res
}

// verifyCoStarts checks the paper's core guarantee: every pair (or N-way
// group) of jobs that both started did so at the same virtual instant.
func (s *Sim) verifyCoStarts() int {
	violations := 0
	for name, m := range s.managers {
		for _, j := range m.Jobs() {
			if !j.Paired() || !started(j) {
				continue
			}
			for _, ref := range j.Mates {
				rm, ok := s.managers[ref.Domain]
				if !ok {
					continue
				}
				mate, ok := rm.Job(ref.Job)
				if !ok || !started(mate) {
					continue
				}
				// Count each violating pair once (from the lexically
				// smaller domain, or smaller ID within a domain).
				if name > ref.Domain {
					continue
				}
				if j.StartTime != mate.StartTime {
					violations++
				}
			}
		}
	}
	return violations
}

func started(j *job.Job) bool {
	return j.State == job.Running || j.State == job.Completed
}

package coupled

import (
	"testing"
	"testing/quick"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// smallTraces builds a pair of small paired workloads for fast tests.
func smallTraces(seed uint64, jobsPerSide int, pairProp float64) (a, b []*job.Job) {
	specA := workload.Spec{
		Name: "a", Jobs: jobsPerSide, Span: 6 * sim.Hour,
		Sizes:     []workload.SizeClass{{Nodes: 8, Weight: 0.5}, {Nodes: 16, Weight: 0.3}, {Nodes: 32, Weight: 0.2}},
		RuntimeMu: 6.2, RuntimeSigma: 0.8,
		MinRuntime: sim.Minute, MaxRuntime: sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.0,
		Seed: seed,
	}
	specB := specA
	specB.Name = "b"
	specB.Sizes = []workload.SizeClass{{Nodes: 1, Weight: 0.4}, {Nodes: 2, Weight: 0.3}, {Nodes: 4, Weight: 0.3}}
	specB.Seed = seed + 1
	a, err := workload.Generate(specA)
	if err != nil {
		panic(err)
	}
	b, err = workload.Generate(specB)
	if err != nil {
		panic(err)
	}
	rng := workload.NewRNG(seed + 2)
	if _, err := workload.PairByProportion(rng, a, b, "A", "B", pairProp); err != nil {
		panic(err)
	}
	return a, b
}

func runPair(t *testing.T, schemeA, schemeB cosched.Scheme, wire bool, seed uint64) *Result {
	t.Helper()
	a, b := smallTraces(seed, 60, 0.3)
	s, err := New(Options{
		Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(schemeA), Trace: a},
			{Name: "B", Nodes: 8, Backfilling: true, Cosched: cosched.DefaultConfig(schemeB), Trace: b},
		},
		UseWireProtocol: wire,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestAllSchemeCombinationsCoschedule(t *testing.T) {
	// §V-B capability validation in miniature: every combination
	// completes every job and co-starts every pair.
	for _, sa := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
		for _, sb := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			name := sa.Short() + sb.Short()
			t.Run(name, func(t *testing.T) {
				res := runPair(t, sa, sb, false, 11)
				if res.StuckJobs != 0 {
					t.Fatalf("%s: %d stuck jobs", name, res.StuckJobs)
				}
				if res.CoStartViolations != 0 {
					t.Fatalf("%s: %d co-start violations", name, res.CoStartViolations)
				}
				if res.CompletedJobs != res.TotalJobs {
					t.Fatalf("%s: completed %d/%d", name, res.CompletedJobs, res.TotalJobs)
				}
			})
		}
	}
}

func TestWireProtocolMatchesDirectWiring(t *testing.T) {
	// The same workload must produce identical start times whether peers
	// are wired directly or through the JSON protocol over a pipe.
	direct := runPair(t, cosched.Hold, cosched.Yield, false, 23)
	wired := runPair(t, cosched.Hold, cosched.Yield, true, 23)
	if direct.CoStartViolations != 0 || wired.CoStartViolations != 0 {
		t.Fatal("co-start violations")
	}
	for name, dr := range direct.Reports {
		wr := wired.Reports[name]
		if dr.Wait.Mean != wr.Wait.Mean {
			t.Fatalf("%s: wait mean differs: direct %.3f vs wire %.3f",
				name, dr.Wait.Mean, wr.Wait.Mean)
		}
		if dr.Completed != wr.Completed {
			t.Fatalf("%s: completed differs: %d vs %d", name, dr.Completed, wr.Completed)
		}
	}
	if direct.Makespan != wired.Makespan {
		t.Fatalf("makespan differs: %d vs %d", direct.Makespan, wired.Makespan)
	}
}

func TestUnsortedTraceMatchesSorted(t *testing.T) {
	// Hand-built traces (e.g. the quickstart example) need not be in
	// submit-time order; New must accept them and produce exactly the
	// schedule of the sorted trace — same-instant jobs keep trace order,
	// matching the engine-sequence tie-break the per-job submission path
	// used. The caller's slice must not be reordered in place.
	run := func(shuffle bool) *Result {
		a, b := smallTraces(31, 60, 0.3)
		if shuffle {
			// Deterministic derangement: reverse, which breaks sortedness
			// as thoroughly as possible without touching submit times.
			for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
				a[i], a[j] = a[j], a[i]
			}
		}
		s, err := New(Options{Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a},
			{Name: "B", Nodes: 8, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Yield), Trace: b},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if shuffle && sortedBySubmit(a) {
			t.Fatal("New reordered the caller's trace slice in place")
		}
		return s.Run()
	}
	sorted, shuffled := run(false), run(true)
	if sorted.StuckJobs != 0 || shuffled.StuckJobs != 0 {
		t.Fatalf("stuck jobs: sorted %d, shuffled %d", sorted.StuckJobs, shuffled.StuckJobs)
	}
	if sorted.Makespan != shuffled.Makespan || sorted.Iterations != shuffled.Iterations {
		t.Fatalf("schedules diverged: makespan %d/%d iterations %d/%d",
			sorted.Makespan, shuffled.Makespan, sorted.Iterations, shuffled.Iterations)
	}
	for name := range sorted.Reports {
		if sorted.Reports[name].Wait.Mean != shuffled.Reports[name].Wait.Mean {
			t.Fatalf("%s: wait mean diverged", name)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	r1 := runPair(t, cosched.Yield, cosched.Yield, false, 7)
	r2 := runPair(t, cosched.Yield, cosched.Yield, false, 7)
	if r1.Makespan != r2.Makespan || r1.Iterations != r2.Iterations {
		t.Fatalf("replay diverged: makespan %d/%d iterations %d/%d",
			r1.Makespan, r2.Makespan, r1.Iterations, r2.Iterations)
	}
	for name := range r1.Reports {
		if r1.Reports[name].Wait.Mean != r2.Reports[name].Wait.Mean {
			t.Fatalf("%s: wait mean diverged", name)
		}
	}
}

func TestBaselineUnaffectedByDisabledCosched(t *testing.T) {
	// With coscheduling disabled the pairs are ignored; all jobs must
	// still complete (paired jobs just run independently).
	a, b := smallTraces(31, 60, 0.3)
	s, err := New(Options{
		Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true, Trace: a},
			{Name: "B", Nodes: 8, Backfilling: true, Trace: b},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 {
		t.Fatalf("%d stuck jobs in baseline", res.StuckJobs)
	}
	// Sync time must be zero everywhere: nothing ever waits for a mate.
	for name, rep := range res.Reports {
		if rep.PairedSync.Mean != 0 {
			t.Fatalf("%s: baseline sync time %.2f, want 0", name, rep.PairedSync.Mean)
		}
		if rep.Holds != 0 || rep.Yields != 0 {
			t.Fatalf("%s: baseline holds=%d yields=%d", name, rep.Holds, rep.Yields)
		}
	}
}

func TestHoldLosesServiceUnitsYieldDoesNot(t *testing.T) {
	hh := runPair(t, cosched.Hold, cosched.Hold, false, 47)
	yy := runPair(t, cosched.Yield, cosched.Yield, false, 47)
	var hhLoss, yyLoss float64
	for _, rep := range hh.Reports {
		hhLoss += rep.LostNodeHours
	}
	for _, rep := range yy.Reports {
		yyLoss += rep.LostNodeHours
	}
	if hhLoss <= 0 {
		t.Fatalf("hold-hold lost %.2f node-hours, want > 0", hhLoss)
	}
	if yyLoss != 0 {
		t.Fatalf("yield-yield lost %.2f node-hours, want 0", yyLoss)
	}
}

func TestHoldHoldDeadlockDetectedViaResult(t *testing.T) {
	// Reproduce Figure 2 through the coupled API with the enhancement
	// disabled and confirm the Result reports the deadlock.
	mk := func(release sim.Duration) *Result {
		a1 := job.New(1, 6, 0, 600, 600)
		a2 := job.New(2, 6, 10, 600, 600)
		b2 := job.New(2, 6, 0, 600, 600)
		b1 := job.New(1, 6, 10, 600, 600)
		a1.Mates = []job.MateRef{{Domain: "B", Job: 1}}
		b1.Mates = []job.MateRef{{Domain: "A", Job: 1}}
		a2.Mates = []job.MateRef{{Domain: "B", Job: 2}}
		b2.Mates = []job.MateRef{{Domain: "A", Job: 2}}
		cfg := cosched.DefaultConfig(cosched.Hold)
		cfg.ReleaseInterval = release
		s, err := New(Options{Domains: []DomainConfig{
			{Name: "A", Nodes: 6, Cosched: cfg, Trace: []*job.Job{a1, a2}},
			{Name: "B", Nodes: 6, Cosched: cfg, Trace: []*job.Job{b2, b1}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	if res := mk(0); !res.Deadlocked || res.StuckJobs != 4 {
		t.Fatalf("no-release run: deadlocked=%v stuck=%d, want true/4", res.Deadlocked, res.StuckJobs)
	}
	if res := mk(20 * sim.Minute); res.Deadlocked || res.StuckJobs != 0 {
		t.Fatalf("release run: deadlocked=%v stuck=%d, want false/0", res.Deadlocked, res.StuckJobs)
	}
}

func TestThreeDomainNWay(t *testing.T) {
	// Three domains, one 3-way group plus background jobs.
	mkTrace := func(seed uint64, n int) []*job.Job {
		spec := workload.Spec{
			Name: "t", Jobs: n, Span: 2 * sim.Hour,
			Sizes:     []workload.SizeClass{{Nodes: 4, Weight: 1}},
			RuntimeMu: 6.0, RuntimeSigma: 0.5,
			MinRuntime: sim.Minute, MaxRuntime: 30 * sim.Minute,
			WallFactorMin: 1.2, WallFactorMax: 1.5,
			Seed: seed,
		}
		tr, err := workload.Generate(spec)
		if err != nil {
			panic(err)
		}
		return tr
	}
	ta, tb, tc := mkTrace(1, 20), mkTrace(2, 20), mkTrace(3, 20)
	group := []*job.Job{ta[5], tb[10], tc[15]}
	if err := workload.LinkGroup(group, []string{"A", "B", "C"}); err != nil {
		t.Fatal(err)
	}
	cfg := cosched.DefaultConfig(cosched.Hold)
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 32, Backfilling: true, Cosched: cfg, Trace: ta},
		{Name: "B", Nodes: 32, Backfilling: true, Cosched: cfg, Trace: tb},
		{Name: "C", Nodes: 32, Backfilling: true, Cosched: cfg, Trace: tc},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 {
		t.Fatalf("%d stuck jobs", res.StuckJobs)
	}
	if res.CoStartViolations != 0 {
		t.Fatalf("%d co-start violations", res.CoStartViolations)
	}
	if group[0].StartTime != group[1].StartTime || group[1].StartTime != group[2].StartTime {
		t.Fatalf("3-way group starts: %d/%d/%d",
			group[0].StartTime, group[1].StartTime, group[2].StartTime)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := New(Options{Domains: []DomainConfig{{Name: "", Nodes: 4}}}); err == nil {
		t.Fatal("empty domain name accepted")
	}
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 4}, {Name: "A", Nodes: 4},
	}}); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 4, Policy: "bogus"},
	}}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestPartitionedIntrepidDomain(t *testing.T) {
	// A 700-node request on a partitioned pool charges 1024 nodes.
	tr := []*job.Job{job.New(1, 700, 0, 600, 600)}
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "bgp", Nodes: 4096, MinPartition: 512, Backfilling: true, Trace: tr},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 {
		t.Fatal("partitioned job stuck")
	}
	rep := res.Reports["bgp"]
	if rep.Completed != 1 {
		t.Fatalf("completed = %d", rep.Completed)
	}
}

func TestHorizonCutsOffRunawaySim(t *testing.T) {
	// A tiny horizon truncates the run and reports the leftovers stuck.
	a, b := smallTraces(99, 40, 0.2)
	s, err := New(Options{
		Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a},
			{Name: "B", Nodes: 8, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Hold), Trace: b},
		},
		Horizon: 30 * sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if !res.HitHorizon {
		t.Fatal("30-minute horizon not hit by a 6-hour workload")
	}
	if res.StuckJobs == 0 {
		t.Fatal("truncated run reported no stuck jobs")
	}
}

func TestUnknownEstimatorRejected(t *testing.T) {
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 4, Estimator: "oracle"},
	}}); err == nil {
		t.Fatal("bogus estimator accepted")
	}
}

func TestOversizeJobRejected(t *testing.T) {
	big := job.New(1, 100, 0, 10, 10)
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 10, Trace: []*job.Job{big}},
	}}); err == nil {
		t.Fatal("job larger than the pool accepted")
	}
}

func TestUserAverageEstimatorRuns(t *testing.T) {
	a, b := smallTraces(123, 60, 0.2)
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 64, Backfilling: true, Estimator: "user-average",
			Cosched: cosched.DefaultConfig(cosched.Yield), Trace: a},
		{Name: "B", Nodes: 8, Backfilling: true, Estimator: "user-average",
			Cosched: cosched.DefaultConfig(cosched.Yield), Trace: b},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 || res.CoStartViolations != 0 {
		t.Fatalf("stuck=%d viol=%d under prediction-based backfill", res.StuckJobs, res.CoStartViolations)
	}
}

func TestConservativeBackfillCoscheduling(t *testing.T) {
	// A full coupled run with conservative planning on both domains: all
	// jobs complete and every pair co-starts.
	a, b := smallTraces(77, 60, 0.25)
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 64, Backfilling: true, BackfillMode: "conservative",
			Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a},
		{Name: "B", Nodes: 8, Backfilling: true, BackfillMode: "conservative",
			Cosched: cosched.DefaultConfig(cosched.Yield), Trace: b},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 || res.CoStartViolations != 0 {
		t.Fatalf("conservative cosched: stuck=%d viol=%d", res.StuckJobs, res.CoStartViolations)
	}
}

func TestUnknownBackfillModeRejected(t *testing.T) {
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 4, BackfillMode: "optimistic"},
	}}); err == nil {
		t.Fatal("bogus backfill mode accepted")
	}
}

func TestChaosFaultInjectionOverWire(t *testing.T) {
	// 5% of all coordination calls fail, over the real wire protocol:
	// nothing may wedge, most pairs must still co-start, and the ones
	// that do not are exactly the fault-tolerance fallback.
	a, b := smallTraces(207, 80, 0.3)
	s, err := New(Options{
		Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a},
			{Name: "B", Nodes: 8, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Yield), Trace: b},
		},
		UseWireProtocol: true,
		FaultRate:       0.05,
		FaultSeed:       99,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 {
		t.Fatalf("chaos run wedged: %d stuck", res.StuckJobs)
	}
	pairs := 0
	for _, j := range a {
		if j.Paired() {
			pairs++
		}
	}
	if res.CoStartViolations >= pairs/2 {
		t.Fatalf("%d of %d pairs failed to co-start under 5%% faults — tolerance path overused",
			res.CoStartViolations, pairs)
	}
	t.Logf("chaos: %d/%d pairs fell back to uncoordinated starts", res.CoStartViolations, pairs)
}

// TestRandomConfigsProperty sweeps random small configurations and asserts
// the core guarantees on every one: no stuck jobs, no co-start violations,
// yield sides lose nothing.
func TestRandomConfigsProperty(t *testing.T) {
	schemes := []cosched.Scheme{cosched.Hold, cosched.Yield}
	f := func(seed uint16, sa, sb uint8, prop uint8, release uint8) bool {
		a, b := smallTraces(uint64(seed)+1000, 50, float64(prop%34)/100)
		cfgA := cosched.DefaultConfig(schemes[int(sa)%2])
		cfgB := cosched.DefaultConfig(schemes[int(sb)%2])
		interval := sim.Duration(release%40+5) * sim.Minute
		cfgA.ReleaseInterval, cfgB.ReleaseInterval = interval, interval
		s, err := New(Options{Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true, Cosched: cfgA, Trace: a},
			{Name: "B", Nodes: 8, Backfilling: true, Cosched: cfgB, Trace: b},
		}})
		if err != nil {
			return false
		}
		res := s.Run()
		if res.StuckJobs != 0 || res.CoStartViolations != 0 {
			return false
		}
		if cfgA.Scheme == cosched.Yield && res.Reports["A"].LostNodeHours != 0 {
			return false
		}
		if cfgB.Scheme == cosched.Yield && res.Reports["B"].LostNodeHours != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

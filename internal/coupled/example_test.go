package coupled_test

import (
	"fmt"
	"log"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// Example simulates the paper's core scenario: a compute job and its
// analysis mate, submitted 15 minutes apart to independently scheduled
// machines, start at the same instant.
func Example() {
	compute := job.New(1, 512, 0, sim.Hour, 2*sim.Hour)
	analysis := job.New(1, 16, 15*sim.Minute, sim.Hour, 2*sim.Hour)
	compute.Mates = []job.MateRef{{Domain: "viz", Job: analysis.ID}}
	analysis.Mates = []job.MateRef{{Domain: "hpc", Job: compute.ID}}

	s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
		{Name: "hpc", Nodes: 2048, Backfilling: true,
			Cosched: cosched.DefaultConfig(cosched.Hold), Trace: []*job.Job{compute}},
		{Name: "viz", Nodes: 64, Backfilling: true,
			Cosched: cosched.DefaultConfig(cosched.Yield), Trace: []*job.Job{analysis}},
	}})
	if err != nil {
		log.Fatal(err)
	}
	res := s.Run()
	fmt.Println("co-start:", compute.StartTime == analysis.StartTime)
	fmt.Println("violations:", res.CoStartViolations)
	// Output:
	// co-start: true
	// violations: 0
}

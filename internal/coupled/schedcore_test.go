package coupled

import (
	"fmt"
	"strings"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/invariant"
	"cosched/internal/job"
	"cosched/internal/sim"
)

// schedCoreScenario is one configuration cell of the core differential: the
// incremental core's specializations each engage under different settings
// (sorted queue needs a time-invariant policy without yield boosts, the
// maintained timeline needs a stable estimator, across-instant skips need
// EASY), so the sweep covers every fallback combination.
type schedCoreScenario struct {
	name             string
	policy           string
	mode             string // backfill mode
	estimator        string
	schemeA, schemeB cosched.Scheme
	yieldBoost       bool
	release          sim.Duration
}

var schedCoreScenarios = []schedCoreScenario{
	// Fully incremental: sorted queue + maintained timeline + across-instant skips.
	{name: "fcfs_easy_walltime_HH", policy: "fcfs", mode: "easy", estimator: "walltime",
		schemeA: cosched.Hold, schemeB: cosched.Hold, release: 10 * sim.Minute},
	// Time-varying policy: queuePos index + full sort per iteration.
	{name: "wfp_easy_walltime_HY", policy: "wfp", mode: "easy", estimator: "walltime",
		schemeA: cosched.Hold, schemeB: cosched.Yield, release: 10 * sim.Minute},
	// Conservative planner: skips must stay same-instant.
	{name: "sjf_conservative_walltime_YY", policy: "sjf", mode: "conservative", estimator: "walltime",
		schemeA: cosched.Yield, schemeB: cosched.Yield},
	// Unstable estimator: timeline rebuilt per iteration, no across-instant skips.
	{name: "fcfs_easy_useravg_HH", policy: "fcfs", mode: "easy", estimator: "user-average",
		schemeA: cosched.Hold, schemeB: cosched.Hold, release: 10 * sim.Minute},
	// Everything degraded at once.
	{name: "wfp_conservative_useravg_YY", policy: "wfp", mode: "conservative", estimator: "user-average",
		schemeA: cosched.Yield, schemeB: cosched.Yield},
	// Yield boost disables the sorted queue even for a time-invariant policy.
	{name: "fcfs_easy_walltime_YY_boost", policy: "fcfs", mode: "easy", estimator: "walltime",
		schemeA: cosched.Yield, schemeB: cosched.Yield, yieldBoost: true},
	// Largest-first exercises the third time-invariant policy's comparator.
	{name: "largest_easy_walltime_HY", policy: "largest", mode: "easy", estimator: "walltime",
		schemeA: cosched.Hold, schemeB: cosched.Yield, release: 10 * sim.Minute},
}

// runSchedCoreScenario runs one scenario under the named core on freshly
// generated traces and renders the complete schedule. Every run is
// invariant-audited: a deferred Auditor per domain plus a shared deadlock
// Monitor, so a core divergence that also breaks accounting or wedges a
// circular wait is reported at the offending event, not as a schedule
// diff.
func runSchedCoreScenario(t *testing.T, sc schedCoreScenario, core string, seed uint64) string {
	t.Helper()
	a, b := smallTraces(seed, 60, 0.3)
	ca := cosched.DefaultConfig(sc.schemeA)
	cb := cosched.DefaultConfig(sc.schemeB)
	ca.ReleaseInterval, cb.ReleaseInterval = sc.release, sc.release
	ca.YieldBoost, cb.YieldBoost = sc.yieldBoost, sc.yieldBoost
	mon := invariant.NewMonitor()
	audA := invariant.NewDeferred(mon.Tap(nil))
	audB := invariant.NewDeferred(mon.Tap(nil))
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 64, Policy: sc.policy, Backfilling: true, BackfillMode: sc.mode,
			Estimator: sc.estimator, SchedCore: core, Cosched: ca, Trace: a, Observer: audA},
		{Name: "B", Nodes: 8, Policy: sc.policy, Backfilling: true, BackfillMode: sc.mode,
			Estimator: sc.estimator, SchedCore: core, Cosched: cb, Trace: b, Observer: audB},
	}})
	if err != nil {
		t.Fatalf("%s/%s: %v", sc.name, core, err)
	}
	audA.Bind(s.Manager("A"))
	audB.Bind(s.Manager("B"))
	mon.Register(s.Manager("A"))
	mon.Register(s.Manager("B"))
	res := s.Run()
	for _, v := range append(append(append([]string{}, audA.Violations()...), audB.Violations()...), mon.Violations()...) {
		t.Errorf("%s/%s: invariant violation: %s", sc.name, core, v)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan=%d iterations=%d stuck=%d viol=%d\n",
		res.Makespan, res.Iterations, res.StuckJobs, res.CoStartViolations)
	renderTrace(&sb, "A", a)
	renderTrace(&sb, "B", b)
	return sb.String()
}

// renderTrace prints every observable per-job outcome.
func renderTrace(sb *strings.Builder, dom string, tr []*job.Job) {
	for _, j := range tr {
		fmt.Fprintf(sb, "%s %d %s start=%d end=%d yields=%d holds=%d heldns=%d\n",
			dom, j.ID, j.State, j.StartTime, j.EndTime, j.YieldCount, j.HoldCount, j.HeldNodeSeconds)
	}
}

// TestSchedCoreDifferentialCoupled runs every scenario under the reference
// and incremental cores and requires the full rendered schedules — every
// job's start/end/yield/hold history, the makespan, and the iteration count
// (skipped iterations still count) — to match exactly.
func TestSchedCoreDifferentialCoupled(t *testing.T) {
	for _, sc := range schedCoreScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for _, seed := range []uint64{11, 37} {
				ref := runSchedCoreScenario(t, sc, "reference", seed)
				inc := runSchedCoreScenario(t, sc, "incremental", seed)
				if ref != inc {
					t.Fatalf("seed %d: cores diverge\nreference:\n%s\nincremental:\n%s", seed, ref, inc)
				}
			}
		})
	}
}

package coupled

import (
	"fmt"
	"io"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// jobFeed adapts a slice to resmgr.JobSource for the differential test.
type jobFeed struct {
	jobs []*job.Job
	idx  int
}

func (f *jobFeed) NextJob() (*job.Job, error) {
	if f.idx >= len(f.jobs) {
		return nil, io.EOF
	}
	j := f.jobs[f.idx]
	f.idx++
	return j, nil
}

func renderResult(res *Result) string {
	return fmt.Sprintf("A=%+v\nB=%+v\nmakespan=%d total=%d done=%d stuck=%d viol=%d iters=%d",
		res.Reports["A"], res.Reports["B"], res.Makespan, res.TotalJobs,
		res.CompletedJobs, res.StuckJobs, res.CoStartViolations, res.Iterations)
}

// TestStreamedCoupledRunMatchesMaterialized is the system-level streaming
// acceptance test: a coupled paired run fed through TraceStream must be
// byte-identical — reports, makespan, iteration counts — to the same run
// with materialized traces, across window sizes.
func TestStreamedCoupledRunMatchesMaterialized(t *testing.T) {
	run := func(window int) string {
		a, b := smallTraces(23, 60, 0.3)
		var opt Options
		if window == 0 {
			opt = Options{Domains: []DomainConfig{
				{Name: "A", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a},
				{Name: "B", Nodes: 8, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Yield), Trace: b},
			}}
		} else {
			opt = Options{
				Domains: []DomainConfig{
					{Name: "A", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Hold), TraceStream: &jobFeed{jobs: a}, StreamWindow: window},
					{Name: "B", Nodes: 8, Backfilling: true, Cosched: cosched.DefaultConfig(cosched.Yield), TraceStream: &jobFeed{jobs: b}, StreamWindow: window},
				},
				Horizon: 365 * sim.Day,
			}
		}
		s, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		return renderResult(s.Run())
	}
	want := run(0)
	for _, window := range []int{16, 128} {
		if got := run(window); got != want {
			t.Fatalf("window=%d: streamed coupled run differs:\n got: %s\nwant: %s", window, got, want)
		}
	}
}

// TestStreamedRunFromRepeatStream drives a long synthetic workload — reps
// offset copies of a base month — through the streaming path end to end:
// every job completes and the registry never materializes the repetition.
func TestStreamedRunFromRepeatStream(t *testing.T) {
	base, _ := smallTraces(31, 40, 0)
	const reps = 6
	rs, err := workload.NewRepeatStream(base, reps, 7*sim.Day, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true, TraceStream: rs, StreamWindow: 32},
		},
		Horizon: 2 * 365 * sim.Day,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.TotalJobs != 40*reps {
		t.Fatalf("total = %d, want %d", res.TotalJobs, 40*reps)
	}
	if res.StuckJobs != 0 || res.CompletedJobs != 40*reps {
		t.Fatalf("completed %d/%d, stuck %d", res.CompletedJobs, res.TotalJobs, res.StuckJobs)
	}
	if live := len(s.Manager("A").JobsOrdered()); live != 0 {
		t.Fatalf("%d jobs left in registry", live)
	}
}

func TestStreamRequiresExplicitHorizon(t *testing.T) {
	_, err := New(Options{Domains: []DomainConfig{
		{Name: "A", Nodes: 64, TraceStream: &jobFeed{}},
	}})
	if err == nil {
		t.Fatal("streaming without horizon accepted")
	}
}

func TestStreamAndTraceMutuallyExclusive(t *testing.T) {
	a, _ := smallTraces(7, 10, 0)
	_, err := New(Options{
		Domains: []DomainConfig{
			{Name: "A", Nodes: 64, Trace: a, TraceStream: &jobFeed{jobs: a}},
		},
		Horizon: 365 * sim.Day,
	})
	if err == nil {
		t.Fatal("Trace+TraceStream accepted")
	}
}

package coupled_test

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/eventlog"
	"cosched/internal/job"
	"cosched/internal/peerlink"
	"cosched/internal/proto"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// pipeDialer serves one manager's peer protocol over net.Pipe and survives
// server restarts: each dial connects to whichever proto.Server is
// currently installed, so a restarted daemon is modeled by swapping the
// server and cutting the old connections.
type pipeDialer struct {
	mu  sync.Mutex
	srv *proto.Server
}

func (p *pipeDialer) restart(backend cosched.Peer) {
	p.mu.Lock()
	p.srv = proto.NewServer(backend, nil, nil)
	p.mu.Unlock()
}

func (p *pipeDialer) dial(_ string, _, _ time.Duration) (peerlink.Transport, error) {
	p.mu.Lock()
	srv := p.srv
	p.mu.Unlock()
	clientEnd, serverEnd := net.Pipe()
	go srv.ServeConn(serverEnd)
	c := proto.NewClient(clientEnd, 0) // no wire deadline: virtual time only
	if _, err := c.Ping(); err != nil {
		clientEnd.Close()
		return nil, err
	}
	return c, nil
}

// chaosTraces builds a paired two-domain workload for the chaos run.
func chaosTraces(seed uint64, jobsPerSide int) (a, b []*job.Job) {
	specA := workload.Spec{
		Name: "a", Jobs: jobsPerSide, Span: 6 * sim.Hour,
		Sizes:     []workload.SizeClass{{Nodes: 8, Weight: 0.5}, {Nodes: 16, Weight: 0.3}, {Nodes: 32, Weight: 0.2}},
		RuntimeMu: 6.2, RuntimeSigma: 0.8,
		MinRuntime: sim.Minute, MaxRuntime: sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.0,
		Seed: seed,
	}
	specB := specA
	specB.Name = "b"
	specB.Sizes = []workload.SizeClass{{Nodes: 1, Weight: 0.4}, {Nodes: 2, Weight: 0.3}, {Nodes: 4, Weight: 0.3}}
	specB.Seed = seed + 1
	a, err := workload.Generate(specA)
	if err != nil {
		panic(err)
	}
	b, err = workload.Generate(specB)
	if err != nil {
		panic(err)
	}
	if _, err := workload.PairByProportion(workload.NewRNG(seed+2), a, b, "A", "B", 0.3); err != nil {
		panic(err)
	}
	return a, b
}

// TestChaosWireRunCoStartsExactly is the resilience acceptance run: every
// peer call crosses the real wire protocol through a resilient peerlink
// under injected chaos — connection drops, injected latency, and whole
// peer-server restarts mid-run — and the coupled simulation must still
// finish every job with byte-exact co-starts, verified independently from
// the event log. The chaos is confined to transport failures the link can
// heal (redial, retry-unsent); Algorithm 1 never sees an error, so the
// paper's guarantee must hold exactly, not within a tolerance.
func TestChaosWireRunCoStartsExactly(t *testing.T) {
	var buf bytes.Buffer
	elog := eventlog.New(&buf)
	a, b := chaosTraces(31, 60)
	s, err := coupled.New(coupled.Options{
		Domains: []coupled.DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true,
				Cosched: cosched.DefaultConfig(cosched.Hold),
				Trace:   a, Observer: elog.Observer("A")},
			{Name: "B", Nodes: 8, Backfilling: true,
				Cosched: cosched.DefaultConfig(cosched.Yield),
				Trace:   b, Observer: elog.Observer("B")},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := s.Engine()

	// Replace the direct in-process peers with resilient links over the
	// wire protocol, each wrapped in a fault injector. The link's clock is
	// the engine's virtual clock, so backoff gates and call budgets follow
	// simulation time and the run stays deterministic.
	names := []string{"A", "B"}
	dialers := map[string]*pipeDialer{}
	for _, n := range names {
		d := &pipeDialer{}
		d.restart(s.Manager(n))
		dialers[n] = d
	}
	virtualNow := func() time.Time { return time.Unix(int64(eng.Now()), 0) }
	var links []*peerlink.Link
	var injectors []*proto.FaultInjector
	seed := uint64(400)
	for _, from := range names {
		for _, to := range names {
			if from == to {
				continue
			}
			link := peerlink.New(peerlink.Config{
				Name:        to,
				Addr:        "pipe:" + to,
				Dial:        dialers[to].dial,
				Now:         virtualNow,
				CallTimeout: time.Hour, // virtual budget: retries always fit
			})
			links = append(links, link)
			seed++
			// No outright failures (rate 0): those would surface to
			// Algorithm 1 as "status unknown" and legitimately break pairs.
			// Drops and latency must be absorbed by the link.
			inj := proto.NewFaultInjector(link, 0, seed).
				WithLatency(0.10, 100*time.Microsecond).
				WithDrops(0.15, link.BreakConn)
			injectors = append(injectors, inj)
			s.Manager(from).AddPeer(to, inj)
		}
	}

	// Restart both peer servers at fixed virtual instants: the old server
	// is replaced atomically and every link's connection is cut, so the
	// next coordination call redials into the "restarted daemon".
	for i := 1; i <= 4; i++ {
		_, err := eng.At(sim.Time(i)*sim.Hour, sim.PriorityDefault, func(now sim.Time) {
			for _, n := range names {
				dialers[n].restart(s.Manager(n))
			}
			for _, l := range links {
				l.BreakConn()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	res := s.Run()
	if res.StuckJobs != 0 || res.CompletedJobs != res.TotalJobs {
		t.Fatalf("chaos run: %d/%d completed, %d stuck", res.CompletedJobs, res.TotalJobs, res.StuckJobs)
	}
	if res.CoStartViolations != 0 {
		t.Fatalf("chaos run: %d co-start violations (in-memory check)", res.CoStartViolations)
	}

	// The acceptance criterion proper: zero violations per the log-replay
	// verifier, trusting nothing from the run's memory.
	if err := elog.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := eventlog.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if v := eventlog.VerifyCoStarts(recs); len(v) != 0 {
		t.Fatalf("chaos run: %d co-start violations from the event log: %v", len(v), v[0])
	}

	// The chaos must actually have happened — otherwise this test proves
	// nothing about resilience.
	var delayed, dropped, calls int
	for _, inj := range injectors {
		calls += inj.Calls()
		delayed += inj.Delayed()
		dropped += inj.Dropped()
	}
	if calls == 0 || delayed == 0 || dropped == 0 {
		t.Fatalf("chaos did not fire: calls=%d delayed=%d dropped=%d", calls, delayed, dropped)
	}
	for _, l := range links {
		snap := l.Snapshot()
		if snap.Dials < 2 {
			t.Fatalf("link %s never redialed: %+v", snap.Name, snap)
		}
		if snap.BreakConns == 0 {
			t.Fatalf("link %s saw no connection drops: %+v", snap.Name, snap)
		}
		if snap.State != "closed" {
			t.Fatalf("link %s ended unhealthy: %+v", snap.Name, snap)
		}
	}
	t.Logf("chaos absorbed: %d peer calls, %d delayed, %d dropped, links redialed and stayed closed", calls, delayed, dropped)
}

// TestChaosWireRunIsDeterministic: the chaos run above is seeded end to
// end; two executions must agree on makespan and iteration counts even
// though drops and redials reshuffle goroutine interleavings on the wall
// clock.
func TestChaosWireRunIsDeterministic(t *testing.T) {
	run := func() (sim.Time, uint64) {
		a, b := chaosTraces(31, 40)
		s, err := coupled.New(coupled.Options{
			Domains: []coupled.DomainConfig{
				{Name: "A", Nodes: 64, Backfilling: true,
					Cosched: cosched.DefaultConfig(cosched.Hold), Trace: a},
				{Name: "B", Nodes: 8, Backfilling: true,
					Cosched: cosched.DefaultConfig(cosched.Yield), Trace: b},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		eng := s.Engine()
		names := []string{"A", "B"}
		dialers := map[string]*pipeDialer{}
		for _, n := range names {
			d := &pipeDialer{}
			d.restart(s.Manager(n))
			dialers[n] = d
		}
		virtualNow := func() time.Time { return time.Unix(int64(eng.Now()), 0) }
		seed := uint64(900)
		for _, from := range names {
			for _, to := range names {
				if from == to {
					continue
				}
				link := peerlink.New(peerlink.Config{
					Name: to, Addr: "pipe:" + to,
					Dial: dialers[to].dial, Now: virtualNow,
					CallTimeout: time.Hour,
				})
				seed++
				s.Manager(from).AddPeer(to,
					proto.NewFaultInjector(link, 0, seed).WithDrops(0.2, link.BreakConn))
			}
		}
		res := s.Run()
		if res.StuckJobs != 0 || res.CoStartViolations != 0 {
			t.Fatalf("chaos run failed: %+v", res)
		}
		return res.Makespan, res.Iterations
	}
	m1, i1 := run()
	m2, i2 := run()
	if m1 != m2 || i1 != i2 {
		t.Fatalf("chaos runs diverged: makespan %d vs %d, iterations %d vs %d", m1, m2, i1, i2)
	}
}

package distsweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"cosched/internal/experiments"
	"cosched/internal/journal"
)

// ErrKilled is the error RunGroups returns when Coordinator.KillAfter
// fires — the campaign's deterministic stand-in for a SIGKILL'd
// coordinator process. Everything delivered before the kill is in the
// checkpoint file; a fresh coordinator pointed at the same path resumes
// from it and re-converges to byte-identical tables.
var ErrKilled = errors.New("distsweep: coordinator killed (injected)")

// checkpointVersion gates resume: a checkpoint written by a different
// revision of the row layout is refused, not misread.
const checkpointVersion = 1

// Checkpoint is the coordinator's periodically-fsynced recovery file: the
// sweep's identity plus every group delivered so far. Groups are pure
// functions of (kind, cfg, index), so resuming from a checkpoint and
// recomputing the missing groups yields tables byte-identical to an
// uninterrupted run.
type Checkpoint struct {
	Version   int               `json:"version"`
	CfgSum    string            `json:"cfgsum"` // binds the file to one (kind, cfg, numGroups)
	NumGroups int               `json:"numgroups"`
	Groups    []CheckpointGroup `json:"groups"`
}

// CheckpointGroup is one delivered group's rows.
type CheckpointGroup struct {
	Group int                   `json:"group"`
	Rows  []experiments.CellRow `json:"rows"`
}

// sweepSum fingerprints the sweep a checkpoint belongs to. Resuming under
// a different kind, config, or group count silently merges rows from two
// different experiments, so the sum must cover all three.
func sweepSum(kind experiments.SweepKind, cfg experiments.Config, numGroups int) string {
	b, err := json.Marshal(struct {
		Kind      experiments.SweepKind `json:"kind"`
		Cfg       experiments.Config    `json:"cfg"`
		NumGroups int                   `json:"numgroups"`
	}{kind, cfg, numGroups})
	if err != nil {
		panic(fmt.Sprintf("distsweep: sweep sum: %v", err)) // Config is plain data
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// loadCheckpoint reads and validates a checkpoint file. A missing file is
// a clean cold start (nil, nil); a file for a different sweep or version
// is an error — resuming it would corrupt the merge.
func loadCheckpoint(vfs journal.FS, path, cfgSum string, numGroups int) (*Checkpoint, error) {
	data, err := vfs.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("distsweep: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("distsweep: corrupt checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("distsweep: checkpoint %s is version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.CfgSum != cfgSum || cp.NumGroups != numGroups {
		return nil, fmt.Errorf("distsweep: checkpoint %s belongs to a different sweep (sum %s/%d, want %s/%d)",
			path, cp.CfgSum, cp.NumGroups, cfgSum, numGroups)
	}
	for _, g := range cp.Groups {
		if g.Group < 0 || g.Group >= numGroups {
			return nil, fmt.Errorf("distsweep: checkpoint %s: group %d out of range", path, g.Group)
		}
		if len(g.Rows) != experiments.RowsPerGroup() {
			return nil, fmt.Errorf("distsweep: checkpoint %s: group %d carries %d rows, want %d",
				path, g.Group, len(g.Rows), experiments.RowsPerGroup())
		}
	}
	return &cp, nil
}

// writeCheckpoint persists cp atomically: temp file, fsync, rename over
// the target, directory fsync — the same crash-ordering argument as the
// journal's Compact. A crash at any point leaves either the old complete
// checkpoint or the new complete one, never a torn mix.
func writeCheckpoint(vfs journal.FS, path string, cp *Checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("distsweep: marshal checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := vfs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("distsweep: checkpoint tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //simlint:allow R7 error-path cleanup: the checkpoint write already failed and the tmp file is discarded, so this close's error adds nothing
		return fmt.Errorf("distsweep: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //simlint:allow R7 error-path cleanup: the checkpoint fsync already failed and the tmp file is discarded, so this close's error adds nothing
		return fmt.Errorf("distsweep: checkpoint fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("distsweep: checkpoint close: %w", err)
	}
	if err := vfs.Rename(tmp, path); err != nil {
		return fmt.Errorf("distsweep: checkpoint rename: %w", err)
	}
	if err := vfs.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("distsweep: checkpoint dir fsync: %w", err)
	}
	return nil
}

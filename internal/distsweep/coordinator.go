package distsweep

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cosched/internal/experiments"
	"cosched/internal/journal"
	"cosched/internal/proto"
)

// Coordinator drives a set of worker connections through one sweep. It
// implements experiments.Distributor: plug it into Config.Dist and run
// the sweep normally; every group computes on a worker process and the
// tables come out byte-identical to the in-process run.
type Coordinator struct {
	// Conns are the connected workers. The coordinator owns them for the
	// duration of RunGroups and closes them when the sweep ends.
	Conns []Conn
	// Heartbeat is the expected worker heartbeat cadence; the read
	// deadline is readTimeoutFactor times it. Zero means
	// DefaultHeartbeat. Must match the workers' WorkerOptions.Heartbeat.
	Heartbeat time.Duration
	// Batch caps how many groups one assign frame carries. Zero picks
	// numGroups/(4*workers), at least 1: large sweeps amortize round
	// trips, small sweeps still spread across every worker.
	Batch int
	// Logf, when set, receives coordinator progress and worker-failure
	// notes (re-dispatch events are operationally interesting but not
	// errors).
	Logf func(format string, args ...any)

	// CheckpointPath, when set, persists every delivered group to this
	// file (atomic write + fsync + rename + directory fsync) on a
	// CheckpointEvery cadence and at completion. An existing checkpoint
	// for the same sweep pre-fills the results, so a coordinator killed
	// mid-sweep restarts from its last checkpoint and re-converges to
	// byte-identical tables; a checkpoint from a *different* sweep is
	// refused, never merged.
	CheckpointPath string
	// CheckpointEvery is how many fresh deliveries trigger a checkpoint
	// write. 0 checkpoints after every delivery.
	CheckpointEvery int
	// FS overrides the checkpoint filesystem (fault-injection harnesses).
	// nil uses the real disk.
	FS journal.FS
	// KillAfter, when > 0, aborts the sweep with ErrKilled after that
	// many fresh deliveries — the fault campaign's deterministic
	// coordinator-SIGKILL point. Deliveries up to the kill are in the
	// checkpoint (CheckpointEvery permitting); nothing after it is.
	KillAfter int
}

// dispatch is the shared sweep state all worker goroutines drain. The
// queue hands out the lowest pending index first and results dedup by
// first delivery, so re-dispatch after a failure cannot perturb the
// merge: slot g either holds the rows of the one function evaluation
// RunSweepGroup(kind, cfg, g) defines, or the sweep fails.
type dispatch struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []int // ascending group indices awaiting assignment
	results [][]experiments.CellRow
	left    int    // undelivered groups
	fatal   error  // deterministic group failure: abort everyone
	cfgSum  string // sweep fingerprint stamped into checkpoints

	delivered int // fresh deliveries this run (resumed groups excluded)

	// cpMu serializes checkpoint writes; cpWritten is the delivered count
	// of the newest checkpoint on disk, so a slow older write can never
	// rename over a newer one.
	cpMu      sync.Mutex
	cpWritten int
}

func newDispatch(numGroups int) *dispatch {
	d := &dispatch{
		pending: make([]int, numGroups),
		results: make([][]experiments.CellRow, numGroups),
		left:    numGroups,
	}
	for i := range d.pending {
		d.pending[i] = i
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

// next blocks until a batch is available, the sweep is complete, or a
// fatal error aborts it. done is true when the caller should send
// frameDone and exit.
func (d *dispatch) next(batch int) (groups []int, done bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for {
		if d.fatal != nil {
			return nil, false, d.fatal
		}
		if d.left == 0 {
			return nil, true, nil
		}
		if len(d.pending) > 0 {
			n := batch
			if n > len(d.pending) {
				n = len(d.pending)
			}
			groups = append([]int(nil), d.pending[:n]...)
			d.pending = d.pending[n:]
			return groups, false, nil
		}
		// Nothing to assign but groups are in flight elsewhere: wait for
		// a delivery (left hits 0) or a failure (requeue refills pending).
		d.cond.Wait()
	}
}

// deliverLocked records one group's rows; the first delivery wins (a
// worker presumed dead may still get its result through after a
// re-dispatch — both evaluations are the same pure function, keep
// whichever landed). Returns whether the delivery was fresh. Callers hold
// d.mu.
func (d *dispatch) deliverLocked(g int, rows []experiments.CellRow) bool {
	if g < 0 || g >= len(d.results) || d.results[g] != nil {
		return false
	}
	d.results[g] = rows
	d.left--
	d.delivered++
	if d.left == 0 {
		d.cond.Broadcast()
	}
	return true
}

// checkpointLocked snapshots the delivered groups. Callers hold d.mu; the
// row slices are immutable once delivered, so sharing them is safe.
func (d *dispatch) checkpointLocked() *Checkpoint {
	cp := &Checkpoint{Version: checkpointVersion, CfgSum: d.cfgSum, NumGroups: len(d.results)}
	for g, rows := range d.results {
		if rows != nil {
			cp.Groups = append(cp.Groups, CheckpointGroup{Group: g, Rows: rows})
		}
	}
	return cp
}

// deliver is the coordinator-level delivery path: record the rows, then
// apply the checkpoint cadence and the injected kill point.
func (c *Coordinator) deliver(d *dispatch, g int, rows []experiments.CellRow) {
	d.mu.Lock()
	fresh := d.deliverLocked(g, rows)
	delivered := d.delivered
	var cp *Checkpoint
	if fresh && c.CheckpointPath != "" {
		every := c.CheckpointEvery
		if every <= 0 {
			every = 1
		}
		if delivered%every == 0 || d.left == 0 {
			cp = d.checkpointLocked()
		}
	}
	kill := fresh && c.KillAfter > 0 && delivered >= c.KillAfter
	d.mu.Unlock()
	if cp != nil {
		d.cpMu.Lock()
		if delivered > d.cpWritten {
			if err := writeCheckpoint(c.fs(), c.CheckpointPath, cp); err != nil {
				c.logf("distsweep: checkpoint: %v", err)
			} else {
				d.cpWritten = delivered
			}
		}
		d.cpMu.Unlock()
	}
	if kill {
		d.abort(ErrKilled)
	}
}

// requeue returns a failed worker's outstanding groups to the queue in
// ascending order (already-delivered ones are dropped).
func (d *dispatch) requeue(groups []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, g := range groups {
		if g >= 0 && g < len(d.results) && d.results[g] == nil {
			d.pending = append(d.pending, g)
		}
	}
	sort.Ints(d.pending)
	d.cond.Broadcast()
}

// abort records a deterministic failure and wakes every waiter.
func (d *dispatch) abort(err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fatal == nil {
		d.fatal = err
	}
	d.cond.Broadcast()
}

func (c *Coordinator) heartbeat() time.Duration {
	if c.Heartbeat > 0 {
		return c.Heartbeat
	}
	return DefaultHeartbeat
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Coordinator) fs() journal.FS {
	if c.FS != nil {
		return c.FS
	}
	return journal.OSFS{}
}

// RunGroups implements experiments.Distributor: fan the groups out,
// tolerate worker deaths by re-dispatching, and return the rows indexed
// by group. An error means the sweep could not complete — a group failed
// deterministically, or every worker died with groups pending.
func (c *Coordinator) RunGroups(kind experiments.SweepKind, cfg experiments.Config, numGroups int) ([][]experiments.CellRow, error) {
	if len(c.Conns) == 0 {
		return nil, errors.New("distsweep: no worker connections")
	}
	batch := c.Batch
	if batch <= 0 {
		batch = numGroups / (4 * len(c.Conns))
		if batch < 1 {
			batch = 1
		}
	}
	d := newDispatch(numGroups)
	if c.CheckpointPath != "" {
		d.cfgSum = sweepSum(kind, cfg, numGroups)
		cp, err := loadCheckpoint(c.fs(), c.CheckpointPath, d.cfgSum, numGroups)
		if err != nil {
			return nil, err
		}
		if cp != nil {
			for _, g := range cp.Groups {
				if d.results[g.Group] == nil {
					d.results[g.Group] = g.Rows
					d.left--
				}
			}
			pend := d.pending[:0]
			for _, g := range d.pending {
				if d.results[g] == nil {
					pend = append(pend, g)
				}
			}
			d.pending = pend
			c.logf("distsweep: resumed %d/%d group(s) from checkpoint %s",
				numGroups-d.left, numGroups, c.CheckpointPath)
		}
	}
	var wg sync.WaitGroup
	for i, conn := range c.Conns {
		wg.Add(1)
		go func(id int, conn Conn) {
			defer wg.Done()
			defer conn.Close()
			if err := c.runWorker(d, id, conn, kind, cfg, batch); err != nil {
				c.logf("distsweep: worker %d lost: %v", id, err)
			}
		}(i, conn)
	}
	wg.Wait()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fatal != nil {
		return nil, d.fatal
	}
	if d.left > 0 {
		return nil, fmt.Errorf("distsweep: %d group(s) undelivered — every worker failed", d.left)
	}
	return d.results, nil
}

// runWorker owns one connection: handshake, then an assign/collect loop.
// A transport error requeues the worker's outstanding groups and returns
// it (the sweep survives if other workers remain); a frameError from the
// worker aborts the whole sweep (the failure is deterministic).
func (c *Coordinator) runWorker(d *dispatch, id int, conn Conn, kind experiments.SweepKind, cfg experiments.Config, batch int) error {
	readDeadline := func() error {
		//simlint:allow R2 failure-detection deadline on a real worker socket; simulation time is untouched
		return conn.SetReadDeadline(time.Now().Add(readTimeoutFactor * c.heartbeat()))
	}
	if err := readDeadline(); err != nil {
		return err
	}
	var hello frame
	if err := proto.ReadFrame(conn, &hello); err != nil {
		return fmt.Errorf("hello: %w", err)
	}
	if hello.Type != frameHello || hello.Version != ProtocolVersion {
		return fmt.Errorf("bad hello: type=%q version=%d (want %d)", hello.Type, hello.Version, ProtocolVersion)
	}
	if err := proto.WriteFrame(conn, &frame{Type: frameSweep, Kind: kind, Cfg: &cfg}); err != nil {
		return fmt.Errorf("sweep frame: %w", err)
	}

	for {
		groups, done, err := d.next(batch)
		if err != nil {
			return nil // sweep aborted elsewhere; nothing to requeue
		}
		if done {
			// Best-effort farewell: the worker exits on it, or on the
			// close that follows either way.
			//simlint:allow R7 best-effort farewell: the worker also exits on the conn close that follows whether or not this frame lands
			_ = proto.WriteFrame(conn, &frame{Type: frameDone})
			return nil
		}
		if err := proto.WriteFrame(conn, &frame{Type: frameAssign, Groups: groups}); err != nil {
			d.requeue(groups)
			return fmt.Errorf("assign: %w", err)
		}
		outstanding := make(map[int]bool, len(groups))
		for _, g := range groups {
			outstanding[g] = true
		}
		for len(outstanding) > 0 {
			if err := readDeadline(); err != nil {
				d.requeue(groups)
				return err
			}
			var f frame
			if err := proto.ReadFrame(conn, &f); err != nil {
				d.requeue(groups)
				return fmt.Errorf("worker %d read: %w", id, err)
			}
			switch f.Type {
			case frameHeartbeat:
				// Liveness only; the deadline resets on the next read.
			case frameRows:
				if !outstanding[f.Group] {
					// Duplicate or stale delivery — harmless, see deliverLocked.
					c.deliver(d, f.Group, f.Rows)
					continue
				}
				if len(f.Rows) != experiments.RowsPerGroup() {
					d.requeue(groups)
					return fmt.Errorf("worker %d: group %d carried %d rows, want %d",
						id, f.Group, len(f.Rows), experiments.RowsPerGroup())
				}
				delete(outstanding, f.Group)
				c.deliver(d, f.Group, f.Rows)
			case frameError:
				d.abort(fmt.Errorf("distsweep: worker %d: %s", id, f.Err))
				return nil
			default:
				d.requeue(groups)
				return fmt.Errorf("worker %d: unexpected frame %q", id, f.Type)
			}
		}
	}
}

// Package distsweep fans sweep groups out across worker processes: a
// coordinator implementing experiments.Distributor dispatches group
// indices over length-prefixed JSON frames (the internal/proto framing
// discipline) and workers recompute each group from its seed with
// experiments.RunSweepGroup. The wire carries indices and compact result
// rows — never traces — so a group assignment costs a few dozen bytes
// while the worker regenerates the identical workload locally.
//
// Determinism contract: every group is a pure function of (kind, cfg,
// index), rows within a group arrive in serial unit order, and the
// coordinator merges rows strictly by group index with first-delivery
// wins. Workers may therefore run anywhere, finish in any order, die and
// have their groups re-dispatched — the merged sweep is byte-identical
// to the in-process run at any worker count or topology.
//
// Failure model: workers send heartbeat frames on a fixed cadence from a
// dedicated goroutine, so the coordinator's read deadline (a small
// multiple of the cadence) only fires when a worker has actually died or
// hung — not merely when a group computes slowly. A dead worker's
// outstanding groups requeue lowest-index-first and surviving workers
// absorb them; the sweep fails only when a group error is deterministic
// (a compute error would fail identically on every worker) or every
// worker has died with groups still pending.
//
// The package is transport-agnostic: anything satisfying Conn works.
// Real deployments use TCP (cmd/experiments -distworkers/-distconnect);
// tests use loopback TCP. Wall-clock use (deadlines, heartbeat pacing)
// is confined to this real-transport layer and annotated; the simulation
// itself never sees it.
package distsweep

import (
	"io"
	"time"

	"cosched/internal/experiments"
)

// ProtocolVersion gates hello frames: coordinator and worker must agree
// exactly, since frames carry experiments.Config whose shape may change
// between revisions.
const ProtocolVersion = 1

// DefaultHeartbeat is the worker heartbeat cadence when none is set. The
// coordinator declares a worker dead after missing readTimeoutFactor
// consecutive beats.
const DefaultHeartbeat = 500 * time.Millisecond

// readTimeoutFactor scales the heartbeat cadence into the coordinator's
// read deadline.
const readTimeoutFactor = 4

// Frame types.
const (
	frameHello     = "hello"     // worker → coordinator, once
	frameSweep     = "sweep"     // coordinator → worker, once: kind + cfg
	frameAssign    = "assign"    // coordinator → worker: batch of group indices
	frameRows      = "rows"      // worker → coordinator: one group's rows
	frameHeartbeat = "heartbeat" // worker → coordinator, on a cadence
	frameError     = "error"     // worker → coordinator: deterministic group failure
	frameDone      = "done"      // coordinator → worker: no more work, exit
)

// frame is the single wire message; Type selects which fields are live.
type frame struct {
	Type    string                `json:"type"`
	Version int                   `json:"version,omitempty"` // hello
	Kind    experiments.SweepKind `json:"kind,omitempty"`    // sweep
	Cfg     *experiments.Config   `json:"cfg,omitempty"`     // sweep (Dist never crosses: tagged json:"-")
	Groups  []int                 `json:"groups,omitempty"`  // assign
	Group   int                   `json:"group"`             // rows
	Rows    []experiments.CellRow `json:"rows,omitempty"`    // rows
	Err     string                `json:"err,omitempty"`     // error
}

// Conn is the transport the protocol needs: framed reads and writes plus
// a read deadline for failure detection. *net.TCPConn and friends
// satisfy it.
type Conn interface {
	io.ReadWriteCloser
	SetReadDeadline(t time.Time) error
}

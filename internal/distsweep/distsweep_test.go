package distsweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cosched/internal/experiments"
	"cosched/internal/journal"
	"cosched/internal/proto"
)

// testCfg is a sweep small enough for CI: 3 utils × 1 rep = 3 load
// groups, each a baseline plus four combos over ~10-job traces.
func testCfg() experiments.Config {
	return experiments.Config{Seed: 3, JobFactor: 0.01, Reps: 1, Parallelism: 1}
}

// harness accepts n loopback-TCP worker connections and runs Serve on
// each in its own goroutine, returning the coordinator-side conns.
type harness struct {
	t     *testing.T
	conns []Conn
	wg    sync.WaitGroup
	errs  chan error
}

func newHarness(t *testing.T, n int, opt WorkerOptions) *harness {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	h := &harness{t: t, errs: make(chan error, n)}
	for i := 0; i < n; i++ {
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cc, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		h.conns = append(h.conns, cc.(Conn))
		h.wg.Add(1)
		go func(conn net.Conn) {
			defer h.wg.Done()
			defer conn.Close()
			h.errs <- Serve(conn.(Conn), opt)
		}(wc)
	}
	return h
}

// rowsJSON renders group rows for exact comparison.
func rowsJSON(t *testing.T, rows [][]experiments.CellRow) string {
	t.Helper()
	raw, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// localRows computes every group in process — the oracle.
func localRows(t *testing.T, kind experiments.SweepKind, cfg experiments.Config) [][]experiments.CellRow {
	t.Helper()
	n, err := experiments.NumGroups(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]experiments.CellRow, n)
	for g := 0; g < n; g++ {
		rows, err := experiments.RunSweepGroup(kind, cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		out[g] = rows
	}
	return out
}

// TestCoordinatorMatchesLocalOverTCP is the wire acceptance test: three
// TCP workers computing a load sweep must deliver rows byte-identical to
// the in-process oracle, and the full sweep through Config.Dist must
// succeed end to end.
func TestCoordinatorMatchesLocalOverTCP(t *testing.T) {
	cfg := testCfg()
	want := rowsJSON(t, localRows(t, experiments.KindLoad, cfg))

	h := newHarness(t, 3, WorkerOptions{Heartbeat: 20 * time.Millisecond})
	co := &Coordinator{Conns: h.conns, Heartbeat: 20 * time.Millisecond, Logf: t.Logf}
	cfg.Dist = co
	sweep, err := experiments.RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.wg.Wait()
	if len(sweep.Cells) != len(experiments.LoadSweepUtils)*len(experiments.Combos) {
		t.Fatalf("sweep shape: %d cells", len(sweep.Cells))
	}

	// Second pass, fresh workers, direct RunGroups: compare the raw rows.
	h2 := newHarness(t, 2, WorkerOptions{Heartbeat: 20 * time.Millisecond})
	co2 := &Coordinator{Conns: h2.conns, Heartbeat: 20 * time.Millisecond}
	n, _ := experiments.NumGroups(experiments.KindLoad, cfg)
	got, err := co2.RunGroups(experiments.KindLoad, testCfg(), n)
	if err != nil {
		t.Fatal(err)
	}
	h2.wg.Wait()
	if gotJSON := rowsJSON(t, got); gotJSON != want {
		t.Fatalf("distributed rows differ from local oracle:\n got: %s\nwant: %s", gotJSON, want)
	}
	for range h.conns {
		if err := <-h.errs; err != nil {
			t.Errorf("worker error: %v", err)
		}
	}
}

// flakyConn handshakes like a worker, accepts its first assignment, then
// drops the connection without delivering — the shape of a worker
// process dying mid-group.
func flakyWorker(t *testing.T, conn net.Conn) {
	defer conn.Close()
	if err := proto.WriteFrame(conn, &frame{Type: frameHello, Version: ProtocolVersion}); err != nil {
		return
	}
	var sweep, assign frame
	if err := proto.ReadFrame(conn, &sweep); err != nil {
		return
	}
	if err := proto.ReadFrame(conn, &assign); err != nil {
		return
	}
	// Die with the assignment in hand.
}

// TestWorkerDeathRedispatch: one worker takes groups and dies; the
// survivor absorbs them and the merged rows still match the oracle.
func TestWorkerDeathRedispatch(t *testing.T) {
	cfg := testCfg()
	want := rowsJSON(t, localRows(t, experiments.KindLoad, cfg))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dial := func() (worker net.Conn, coord Conn) {
		wc, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		cc, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		return wc, cc.(Conn)
	}
	flakyW, flakyC := dial()
	goodW, goodC := dial()
	go flakyWorker(t, flakyW)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer goodW.Close()
		if err := Serve(goodW.(Conn), WorkerOptions{Heartbeat: 10 * time.Millisecond}); err != nil {
			t.Errorf("healthy worker: %v", err)
		}
	}()

	var deaths []string
	co := &Coordinator{
		Conns:     []Conn{flakyC, goodC},
		Heartbeat: 10 * time.Millisecond,
		Batch:     1,
		Logf:      func(f string, a ...any) { deaths = append(deaths, fmt.Sprintf(f, a...)) },
	}
	n, _ := experiments.NumGroups(experiments.KindLoad, cfg)
	got, err := co.RunGroups(experiments.KindLoad, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if gotJSON := rowsJSON(t, got); gotJSON != want {
		t.Fatalf("post-redispatch rows differ from oracle:\n got: %s\nwant: %s", gotJSON, want)
	}
	if len(deaths) == 0 {
		t.Fatal("flaky worker's death was never observed")
	}
}

// TestHeartbeatKeepsSlowWorkerAlive: a group that computes far longer
// than the read deadline must not be mistaken for a death, because the
// heartbeat goroutine keeps beating through it.
func TestHeartbeatKeepsSlowWorkerAlive(t *testing.T) {
	cfg := testCfg()
	// 25ms beats → 100ms read deadline; each group stalls 400ms. The
	// deadline would fire four times over without live heartbeats, while
	// the beat period leaves generous scheduling slack on a loaded
	// single-core CI box.
	slow := func(kind experiments.SweepKind, c experiments.Config, g int) ([]experiments.CellRow, error) {
		//simlint:allow R2 simulating a slow real-time group computation; the deadline under test is wall-clock by design
		time.Sleep(400 * time.Millisecond)
		return experiments.RunSweepGroup(kind, c, g)
	}
	h := newHarness(t, 1, WorkerOptions{Heartbeat: 25 * time.Millisecond, Run: slow})
	co := &Coordinator{Conns: h.conns, Heartbeat: 25 * time.Millisecond, Batch: 2}
	n, _ := experiments.NumGroups(experiments.KindLoad, cfg)
	got, err := co.RunGroups(experiments.KindLoad, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	h.wg.Wait()
	if want := rowsJSON(t, localRows(t, experiments.KindLoad, cfg)); rowsJSON(t, got) != want {
		t.Fatal("slow-worker rows differ from oracle")
	}
}

// TestComputeErrorAbortsSweep: a deterministic group failure must fail
// the sweep with the worker's message, not requeue forever.
func TestComputeErrorAbortsSweep(t *testing.T) {
	cfg := testCfg()
	boom := func(kind experiments.SweepKind, c experiments.Config, g int) ([]experiments.CellRow, error) {
		if g == 1 {
			return nil, fmt.Errorf("synthetic failure in group %d", g)
		}
		return experiments.RunSweepGroup(kind, c, g)
	}
	h := newHarness(t, 2, WorkerOptions{Heartbeat: 10 * time.Millisecond, Run: boom})
	co := &Coordinator{Conns: h.conns, Heartbeat: 10 * time.Millisecond, Batch: 1}
	n, _ := experiments.NumGroups(experiments.KindLoad, cfg)
	_, err := co.RunGroups(experiments.KindLoad, cfg, n)
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("err = %v, want synthetic failure", err)
	}
	h.wg.Wait()
}

// TestAllWorkersDeadFailsSweep: when every worker dies the coordinator
// reports undelivered groups instead of hanging.
func TestAllWorkersDeadFailsSweep(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	wc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cc, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	go flakyWorker(t, wc)
	co := &Coordinator{Conns: []Conn{cc.(Conn)}, Heartbeat: 10 * time.Millisecond}
	cfg := testCfg()
	n, _ := experiments.NumGroups(experiments.KindLoad, cfg)
	_, err = co.RunGroups(experiments.KindLoad, cfg, n)
	if err == nil || !strings.Contains(err.Error(), "undelivered") {
		t.Fatalf("err = %v, want undelivered-groups failure", err)
	}
}

// TestNoWorkersRejected: an empty coordinator is a configuration error.
func TestNoWorkersRejected(t *testing.T) {
	co := &Coordinator{}
	if _, err := co.RunGroups(experiments.KindLoad, testCfg(), 1); err == nil {
		t.Fatal("empty worker set accepted")
	}
}

// TestCheckpointResumeAfterKillMatchesLocal is the coordinator
// crash-recovery acceptance test: a coordinator killed mid-sweep
// (KillAfter, the campaign's SIGKILL stand-in) leaves a checkpoint; a
// fresh coordinator pointed at the same file resumes, recomputes only the
// missing groups, and the merged table is byte-identical to the
// in-process oracle.
func TestCheckpointResumeAfterKillMatchesLocal(t *testing.T) {
	cfg := testCfg()
	want := rowsJSON(t, localRows(t, experiments.KindLoad, cfg))
	n, err := experiments.NumGroups(experiments.KindLoad, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("numGroups = %d; the kill point needs at least 2", n)
	}
	cpPath := filepath.Join(t.TempDir(), "sweep.ckpt")

	// First incarnation: killed after one delivery.
	h1 := newHarness(t, 2, WorkerOptions{Heartbeat: 20 * time.Millisecond})
	co1 := &Coordinator{
		Conns: h1.conns, Heartbeat: 20 * time.Millisecond, Batch: 1,
		CheckpointPath: cpPath, KillAfter: 1, Logf: t.Logf,
	}
	if _, err := co1.RunGroups(experiments.KindLoad, cfg, n); !errors.Is(err, ErrKilled) {
		t.Fatalf("killed run returned %v, want ErrKilled", err)
	}
	h1.wg.Wait()
	for range h1.conns {
		<-h1.errs // workers die with the coordinator; their errors are expected
	}

	cp, err := loadCheckpoint(journal.OSFS{}, cpPath, sweepSum(experiments.KindLoad, cfg, n), n)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil || len(cp.Groups) == 0 {
		t.Fatal("kill left no checkpointed groups")
	}
	if len(cp.Groups) >= n {
		t.Fatalf("checkpoint already complete (%d/%d groups): the kill fired too late", len(cp.Groups), n)
	}

	// Second incarnation: fresh workers, same checkpoint path.
	h2 := newHarness(t, 2, WorkerOptions{Heartbeat: 20 * time.Millisecond})
	co2 := &Coordinator{
		Conns: h2.conns, Heartbeat: 20 * time.Millisecond, Batch: 1,
		CheckpointPath: cpPath, Logf: t.Logf,
	}
	got, err := co2.RunGroups(experiments.KindLoad, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	h2.wg.Wait()
	if gotJSON := rowsJSON(t, got); gotJSON != want {
		t.Fatalf("resumed rows differ from local oracle:\n got: %s\nwant: %s", gotJSON, want)
	}
	for range h2.conns {
		if err := <-h2.errs; err != nil {
			t.Fatalf("worker error after resume: %v", err)
		}
	}
}

// TestCheckpointRefusesForeignSweep: a checkpoint written under one
// config must not silently merge into a different sweep.
func TestCheckpointRefusesForeignSweep(t *testing.T) {
	cfg := testCfg()
	n, err := experiments.NumGroups(experiments.KindLoad, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cpPath := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := writeCheckpoint(journal.OSFS{}, cpPath, &Checkpoint{
		Version: checkpointVersion, CfgSum: "deadbeefdeadbeef", NumGroups: n,
	}); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, 1, WorkerOptions{Heartbeat: 20 * time.Millisecond})
	co := &Coordinator{Conns: h.conns, Heartbeat: 20 * time.Millisecond, CheckpointPath: cpPath}
	_, err = co.RunGroups(experiments.KindLoad, cfg, n)
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
	for _, c := range h.conns {
		c.Close()
	}
	h.wg.Wait()
	for range h.conns {
		<-h.errs
	}
}

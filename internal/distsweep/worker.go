package distsweep

import (
	"fmt"
	"sync"
	"time"

	"cosched/internal/experiments"
	"cosched/internal/proto"
)

// WorkerOptions tunes one Serve loop.
type WorkerOptions struct {
	// Heartbeat is the cadence of liveness frames; zero means
	// DefaultHeartbeat. Must match the coordinator's setting.
	Heartbeat time.Duration
	// Run computes one group; nil means experiments.RunSweepGroup. Tests
	// substitute slow, failing, or counting implementations.
	Run func(kind experiments.SweepKind, cfg experiments.Config, g int) ([]experiments.CellRow, error)
	// Logf, when set, receives worker progress notes.
	Logf func(format string, args ...any)
}

func (o WorkerOptions) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return DefaultHeartbeat
}

func (o WorkerOptions) run() func(experiments.SweepKind, experiments.Config, int) ([]experiments.CellRow, error) {
	if o.Run != nil {
		return o.Run
	}
	return experiments.RunSweepGroup
}

// Serve runs the worker side of one sweep on conn: handshake, then
// compute every assigned group in order and stream the rows back. Group
// computation happens on this goroutine — the simulation stack below
// RunSweepGroup is single-threaded by contract — while a dedicated
// heartbeat goroutine keeps liveness frames flowing so a long group
// never looks like a death to the coordinator. Returns nil on a clean
// done/close from the coordinator.
func Serve(conn Conn, opt WorkerOptions) error {
	if err := proto.WriteFrame(conn, &frame{Type: frameHello, Version: ProtocolVersion}); err != nil {
		return fmt.Errorf("distsweep: hello: %w", err)
	}
	var sweep frame
	//simlint:allow R9 worker reads block by design: liveness is the coordinator's job — it tears down the conn on heartbeat loss, which unblocks this read
	if err := proto.ReadFrame(conn, &sweep); err != nil {
		return fmt.Errorf("distsweep: sweep frame: %w", err)
	}
	if sweep.Type != frameSweep || sweep.Cfg == nil {
		return fmt.Errorf("distsweep: expected sweep frame, got %q", sweep.Type)
	}
	kind, cfg := sweep.Kind, *sweep.Cfg

	// Writes interleave from two goroutines (rows here, heartbeats from
	// the ticker); a mutex keeps frames whole on the wire.
	var wmu sync.Mutex
	write := func(f *frame) error {
		wmu.Lock()
		defer wmu.Unlock()
		//simlint:allow R8 wmu exists solely to keep rows and heartbeats whole on the wire: both writers park together on a stalled coordinator, which then tears down the conn and unblocks them
		return proto.WriteFrame(conn, f)
	}

	stop := make(chan struct{})
	defer close(stop)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		//simlint:allow R2 heartbeat pacing on a real worker socket; the simulation inside each group uses sim.Time only
		tick := time.NewTicker(opt.heartbeat())
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// A write error here means the coordinator is gone; the
				// main loop's next read or write surfaces it.
				if err := write(&frame{Type: frameHeartbeat}); err != nil {
					return
				}
			}
		}
	}()
	defer hbWG.Wait()

	run := opt.run()
	for {
		var f frame
		//simlint:allow R9 worker reads block by design: between assignments the coordinator is legitimately silent, and it closes the conn on failure, which unblocks this read
		if err := proto.ReadFrame(conn, &f); err != nil {
			return fmt.Errorf("distsweep: read: %w", err)
		}
		switch f.Type {
		case frameAssign:
			for _, g := range f.Groups {
				if opt.Logf != nil {
					opt.Logf("distsweep: computing group %d", g)
				}
				rows, err := run(kind, cfg, g)
				if err != nil {
					// Deterministic failure: report it and exit; the
					// coordinator aborts the sweep.
					//simlint:allow R7 best-effort failure report: the worker exits with the group error regardless, and a lost frame still aborts the sweep via heartbeat loss
					_ = write(&frame{Type: frameError, Err: err.Error()})
					return fmt.Errorf("distsweep: group %d: %w", g, err)
				}
				if err := write(&frame{Type: frameRows, Group: g, Rows: rows}); err != nil {
					return fmt.Errorf("distsweep: rows: %w", err)
				}
			}
		case frameDone:
			return nil
		default:
			return fmt.Errorf("distsweep: unexpected frame %q", f.Type)
		}
	}
}

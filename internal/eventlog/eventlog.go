// Package eventlog records job lifecycle events as JSON lines and verifies
// coscheduling invariants from the log alone — the paper's §V-B validation
// method ("the output logs show that all the paired jobs start at the same
// time with their own mate jobs no matter which one gets ready first").
//
// A Log fans in events from every domain of a simulation (or live daemon)
// through resmgr.Observer adapters; the Reader side replays a log and
// checks that every started pair co-started, without trusting any
// in-memory state of the run that produced it.
package eventlog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// Event kinds.
const (
	KindSubmit   = "submit"
	KindStart    = "start"
	KindComplete = "complete"
	KindHold     = "hold"
	KindYield    = "yield"
	KindRelease  = "release"
	KindCancel   = "cancel"
	// KindPeer records a peer-link breaker transition (internal/peerlink):
	// resilience telemetry interleaved with the job lifecycle so an outage
	// window can be read off the same log as the co-starts it affected.
	KindPeer = "peer"
	// KindRecovery records a daemon restart milestone (journal replayed,
	// mates reconciled) so a crash window reads off the same log as the
	// lifecycle records it interrupted.
	KindRecovery = "recovery"
)

// Record is one logged event.
type Record struct {
	Time   sim.Time      `json:"t"`
	Domain string        `json:"domain"`
	Kind   string        `json:"kind"`
	JobID  job.ID        `json:"job"`
	User   int           `json:"user,omitempty"`
	Nodes  int           `json:"nodes,omitempty"`
	Mates  []job.MateRef `json:"mates,omitempty"` // on submit records
	Wait   sim.Duration  `json:"wait,omitempty"`  // on start records
	Sync   sim.Duration  `json:"sync,omitempty"`  // on start records
	Yields int           `json:"yields,omitempty"`
	Peer   string        `json:"peer,omitempty"`   // on peer records: remote domain
	Detail string        `json:"detail,omitempty"` // on peer records: "closed -> open (cause)"
}

// Log serializes events from any number of domains to one writer. Safe for
// concurrent use (live daemons log from multiple goroutines).
type Log struct {
	mu      sync.Mutex
	w       *bufio.Writer
	err     error
	records int
}

// New wraps w. Call Flush (or Close the underlying writer after Flush)
// when done.
func New(w io.Writer) *Log {
	return &Log{w: bufio.NewWriter(w)}
}

// Err returns the first write error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Records returns how many events were written.
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Flush drains the buffer.
func (l *Log) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	return l.err
}

// emit writes one record.
func (l *Log) emit(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		l.err = err
		return
	}
	if _, err := l.w.Write(append(data, '\n')); err != nil {
		l.err = err
		return
	}
	l.records++
}

// PeerTransition logs a breaker transition on the link from domain to
// peer. cause may be empty (recovery transitions have no error).
func (l *Log) PeerTransition(now sim.Time, domain, peer, from, to, cause string) {
	detail := from + " -> " + to
	if cause != "" {
		detail += " (" + cause + ")"
	}
	l.emit(Record{Time: now, Domain: domain, Kind: KindPeer, Peer: peer, Detail: detail})
}

// Recovery logs a restart milestone for the named domain, e.g.
// "replayed 42 entries" or "reconciled with B: co-starts=1".
func (l *Log) Recovery(now sim.Time, domain, detail string) {
	l.emit(Record{Time: now, Domain: domain, Kind: KindRecovery, Detail: detail})
}

// Observer returns a resmgr.Observer that logs the named domain's events
// into l.
func (l *Log) Observer(domain string) resmgr.Observer {
	return &observer{log: l, domain: domain}
}

type observer struct {
	log    *Log
	domain string
}

func (o *observer) JobSubmitted(now sim.Time, j *job.Job) {
	o.log.emit(Record{Time: now, Domain: o.domain, Kind: KindSubmit,
		JobID: j.ID, User: j.User, Nodes: j.Nodes,
		Mates: append([]job.MateRef(nil), j.Mates...)})
}

func (o *observer) JobStarted(now sim.Time, j *job.Job) {
	o.log.emit(Record{Time: now, Domain: o.domain, Kind: KindStart,
		JobID: j.ID, Nodes: j.Nodes, Wait: j.WaitTime(), Sync: j.SyncTime()})
}

func (o *observer) JobCompleted(now sim.Time, j *job.Job) {
	o.log.emit(Record{Time: now, Domain: o.domain, Kind: KindComplete, JobID: j.ID})
}

func (o *observer) JobHeld(now sim.Time, j *job.Job) {
	o.log.emit(Record{Time: now, Domain: o.domain, Kind: KindHold,
		JobID: j.ID, Nodes: j.Nodes})
}

func (o *observer) JobYielded(now sim.Time, j *job.Job) {
	o.log.emit(Record{Time: now, Domain: o.domain, Kind: KindYield,
		JobID: j.ID, Yields: j.YieldCount})
}

func (o *observer) JobReleased(now sim.Time, j *job.Job, _ bool) {
	o.log.emit(Record{Time: now, Domain: o.domain, Kind: KindRelease,
		JobID: j.ID, Nodes: j.Nodes})
}

func (o *observer) JobCancelled(now sim.Time, j *job.Job) {
	o.log.emit(Record{Time: now, Domain: o.domain, Kind: KindCancel, JobID: j.ID})
}

// Read parses a JSONL event log.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("eventlog: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadTolerant parses a JSONL event log, skipping malformed lines instead
// of failing, and reports how many were skipped. A kill -9 can leave a
// torn final line in a daemon's log (the restarted daemon guards against
// it compounding, but the torn line itself remains), so post-crash
// verification reads tolerantly where Read stays strict.
func ReadTolerant(r io.Reader) ([]Record, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []Record
	skipped := 0
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			skipped++
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, err
	}
	return out, skipped, nil
}

// Violation is one co-start failure found in a log.
type Violation struct {
	Domain string
	JobID  job.ID
	Mate   job.MateRef
	Start  sim.Time
	MateAt sim.Time // mate's start; -1 if the mate started never/unknown
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/job %d vs %s/job %d: %s (start %d vs %d)",
		v.Domain, v.JobID, v.Mate.Domain, v.Mate.Job, v.Reason, v.Start, v.MateAt)
}

// VerifyCoStarts replays a log and returns every pair that started out of
// sync: both members started but at different instants, or one started and
// completed while its mate never started. It trusts only the log.
func VerifyCoStarts(records []Record) []Violation {
	type key struct {
		domain string
		id     job.ID
	}
	mates := make(map[key][]job.MateRef)
	starts := make(map[key]sim.Time)
	started := make(map[key]bool)
	for _, r := range records {
		k := key{r.Domain, r.JobID}
		switch r.Kind {
		case KindSubmit:
			if len(r.Mates) > 0 {
				mates[k] = r.Mates
			}
		case KindStart:
			starts[k] = r.Time
			started[k] = true
		}
	}
	var out []Violation
	for k, ms := range mates {
		if !started[k] {
			continue
		}
		for _, m := range ms {
			mk := key{m.Domain, m.Job}
			// Report each violating pair once.
			if k.domain > m.Domain || (k.domain == m.Domain && k.id > m.Job) {
				continue
			}
			if !started[mk] {
				out = append(out, Violation{
					Domain: k.domain, JobID: k.id, Mate: m,
					Start: starts[k], MateAt: -1,
					Reason: "mate never started",
				})
				continue
			}
			if starts[mk] != starts[k] {
				out = append(out, Violation{
					Domain: k.domain, JobID: k.id, Mate: m,
					Start: starts[k], MateAt: starts[mk],
					Reason: "start instants differ",
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Domain != out[b].Domain {
			return out[a].Domain < out[b].Domain
		}
		return out[a].JobID < out[b].JobID
	})
	return out
}

// Stats summarizes a log.
type Stats struct {
	Records   int
	Submits   int
	Starts    int
	Completes int
	Holds     int
	Yields    int
	Releases  int
	Cancels   int
	// PeerTransitions counts breaker transitions (KindPeer records) — a
	// rough health indicator for the run's peer links.
	PeerTransitions int
	// Recoveries counts daemon restart milestones (KindRecovery records).
	Recoveries int
	Domains    []string
}

// Summarize tallies a log.
func Summarize(records []Record) Stats {
	s := Stats{Records: len(records)}
	domains := map[string]bool{}
	for _, r := range records {
		domains[r.Domain] = true
		switch r.Kind {
		case KindSubmit:
			s.Submits++
		case KindStart:
			s.Starts++
		case KindComplete:
			s.Completes++
		case KindHold:
			s.Holds++
		case KindYield:
			s.Yields++
		case KindRelease:
			s.Releases++
		case KindCancel:
			s.Cancels++
		case KindPeer:
			s.PeerTransitions++
		case KindRecovery:
			s.Recoveries++
		}
	}
	for d := range domains {
		s.Domains = append(s.Domains, d)
	}
	sort.Strings(s.Domains)
	return s
}

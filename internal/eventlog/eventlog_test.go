package eventlog

import (
	"bytes"
	"strings"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// runLogged simulates a small paired workload with event logging and
// returns the raw log bytes.
func runLogged(t *testing.T, schemeA, schemeB cosched.Scheme) []byte {
	t.Helper()
	var buf bytes.Buffer
	log := New(&buf)

	spec := workload.Spec{
		Name: "a", Jobs: 50, Span: 4 * sim.Hour,
		Sizes:     []workload.SizeClass{{Nodes: 8, Weight: 0.7}, {Nodes: 16, Weight: 0.3}},
		RuntimeMu: 6.0, RuntimeSigma: 0.8,
		MinRuntime: sim.Minute, MaxRuntime: sim.Hour,
		WallFactorMin: 1.2, WallFactorMax: 2.0, Seed: 5,
	}
	a, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 6
	spec.Sizes = []workload.SizeClass{{Nodes: 2, Weight: 1}}
	b, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	workload.PairNearest(workload.NewRNG(7), a, b, "A", "B", 15, sim.Hour)

	s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
		{Name: "A", Nodes: 64, Backfilling: true, Cosched: cosched.DefaultConfig(schemeA),
			Trace: a, Observer: log.Observer("A")},
		{Name: "B", Nodes: 16, Backfilling: true, Cosched: cosched.DefaultConfig(schemeB),
			Trace: b, Observer: log.Observer("B")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.StuckJobs != 0 {
		t.Fatalf("stuck = %d", res.StuckJobs)
	}
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	if log.Records() == 0 {
		t.Fatal("no records logged")
	}
	return buf.Bytes()
}

func TestLogRoundTripAndVerify(t *testing.T) {
	raw := runLogged(t, cosched.Hold, cosched.Yield)
	recs, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	stats := Summarize(recs)
	if stats.Submits != 100 || stats.Starts != 100 || stats.Completes != 100 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(stats.Domains) != 2 {
		t.Fatalf("domains = %v", stats.Domains)
	}
	// The §V-B validation, from the log alone.
	if v := VerifyCoStarts(recs); len(v) != 0 {
		t.Fatalf("co-start violations from log: %v", v)
	}
}

func TestVerifyDetectsDivergentStarts(t *testing.T) {
	recs := []Record{
		{Time: 0, Domain: "A", Kind: KindSubmit, JobID: 1,
			Mates: []job.MateRef{{Domain: "B", Job: 1}}},
		{Time: 0, Domain: "B", Kind: KindSubmit, JobID: 1,
			Mates: []job.MateRef{{Domain: "A", Job: 1}}},
		{Time: 100, Domain: "A", Kind: KindStart, JobID: 1},
		{Time: 250, Domain: "B", Kind: KindStart, JobID: 1},
	}
	v := VerifyCoStarts(recs)
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Reason != "start instants differ" || v[0].Start != 100 || v[0].MateAt != 250 {
		t.Fatalf("violation = %+v", v[0])
	}
	if !strings.Contains(v[0].String(), "start instants differ") {
		t.Fatal("String() missing reason")
	}
}

func TestVerifyDetectsLonelyStart(t *testing.T) {
	recs := []Record{
		{Time: 0, Domain: "A", Kind: KindSubmit, JobID: 1,
			Mates: []job.MateRef{{Domain: "B", Job: 9}}},
		{Time: 100, Domain: "A", Kind: KindStart, JobID: 1},
	}
	v := VerifyCoStarts(recs)
	if len(v) != 1 || v[0].Reason != "mate never started" || v[0].MateAt != -1 {
		t.Fatalf("violations = %v", v)
	}
}

func TestVerifyIgnoresUnstartedPairs(t *testing.T) {
	recs := []Record{
		{Time: 0, Domain: "A", Kind: KindSubmit, JobID: 1,
			Mates: []job.MateRef{{Domain: "B", Job: 1}}},
	}
	if v := VerifyCoStarts(recs); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Blank lines are fine.
	recs, err := Read(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("blank log: %v %v", recs, err)
	}
}

func TestHoldAndYieldEventsLogged(t *testing.T) {
	raw := runLogged(t, cosched.Hold, cosched.Hold)
	recs, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	stats := Summarize(recs)
	if stats.Holds == 0 {
		t.Fatal("hold-hold run logged no hold events")
	}
}

func TestPeerTransitionRecords(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf)
	log.PeerTransition(100, "A", "B", "closed", "open", "dial tcp: connection refused")
	log.PeerTransition(200, "A", "B", "open", "half-open", "")
	log.PeerTransition(200, "A", "B", "half-open", "closed", "")
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	first := recs[0]
	if first.Kind != KindPeer || first.Domain != "A" || first.Peer != "B" || first.Time != 100 {
		t.Fatalf("record = %+v", first)
	}
	if first.Detail != "closed -> open (dial tcp: connection refused)" {
		t.Fatalf("detail = %q", first.Detail)
	}
	if recs[1].Detail != "open -> half-open" {
		t.Fatalf("causeless detail = %q", recs[1].Detail)
	}
	stats := Summarize(recs)
	if stats.PeerTransitions != 3 {
		t.Fatalf("peer transitions = %d, want 3", stats.PeerTransitions)
	}
	// Peer records never disturb co-start verification.
	if v := VerifyCoStarts(recs); len(v) != 0 {
		t.Fatalf("violations from peer-only log: %v", v)
	}
}

func TestRecoveryRecordsAndTolerantRead(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf)
	l.Recovery(100, "A", "replayed 42 entries, 3 jobs restored")
	l.Recovery(101, "A", "reconciled with B: co-starts=1")
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// A kill -9 mid-write leaves a torn trailing line.
	buf.WriteString(`{"t":102,"domain":"A","kind":"sta`)

	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("strict Read accepted a torn line")
	}
	records, skipped, err := ReadTolerant(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	if len(records) != 2 || records[0].Kind != KindRecovery || records[0].Detail == "" {
		t.Fatalf("records: %+v", records)
	}
	s := Summarize(records)
	if s.Recoveries != 2 {
		t.Fatalf("recoveries = %d, want 2", s.Recoveries)
	}
}

func TestVerifyCoStartsTolerantOfReemittedDuplicates(t *testing.T) {
	// After a restart the daemon re-emits restored lifecycle records; the
	// duplicates carry identical values and must not create violations.
	records := []Record{
		{Time: 0, Domain: "A", Kind: KindSubmit, JobID: 1, Mates: []job.MateRef{{Domain: "B", Job: 1}}},
		{Time: 0, Domain: "B", Kind: KindSubmit, JobID: 1, Mates: []job.MateRef{{Domain: "A", Job: 1}}},
		{Time: 50, Domain: "A", Kind: KindStart, JobID: 1},
		{Time: 50, Domain: "B", Kind: KindStart, JobID: 1},
		// Restart of A: submit and start re-emitted with the same values.
		{Time: 60, Domain: "A", Kind: KindRecovery, Detail: "replayed 4 entries"},
		{Time: 0, Domain: "A", Kind: KindSubmit, JobID: 1, Mates: []job.MateRef{{Domain: "B", Job: 1}}},
		{Time: 50, Domain: "A", Kind: KindStart, JobID: 1},
	}
	if v := VerifyCoStarts(records); len(v) != 0 {
		t.Fatalf("duplicates produced violations: %v", v)
	}
}

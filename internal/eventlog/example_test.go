package eventlog_test

import (
	"fmt"
	"strings"

	"cosched/internal/eventlog"
)

// ExampleVerifyCoStarts checks the paper's §V-B property from a log alone:
// this log shows a pair whose halves started at different instants.
func ExampleVerifyCoStarts() {
	log := `{"t":0,"domain":"A","kind":"submit","job":1,"mates":[{"Domain":"B","Job":1}]}
{"t":0,"domain":"B","kind":"submit","job":1,"mates":[{"Domain":"A","Job":1}]}
{"t":100,"domain":"A","kind":"start","job":1}
{"t":250,"domain":"B","kind":"start","job":1}`
	records, err := eventlog.Read(strings.NewReader(log))
	if err != nil {
		panic(err)
	}
	for _, v := range eventlog.VerifyCoStarts(records) {
		fmt.Println(v)
	}
	// Output:
	// A/job 1 vs B/job 1: start instants differ (start 100 vs 250)
}

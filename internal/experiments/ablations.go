package experiments

import (
	"context"
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/parallel"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// AblationRow is one configuration variant's outcome on the shared
// hold-hold, 10%-paired, medium-Eureka-load workload.
type AblationRow struct {
	Group   string // which knob is being swept
	Variant string // the knob's value

	IntrepidWait float64 // minutes
	EurekaWait   float64
	SyncMin      float64 // paired-job sync, both domains averaged
	LossNH       float64 // node-hours lost to holds, summed
	Stuck        int
	CoStartViol  int
}

// Ablations sweeps the design knobs DESIGN.md §5 calls out — release
// interval, held-fraction cap, yield escalation, backfill mode, runtime
// estimator — holding everything else at the §V defaults.
type Ablations struct {
	Config Config
	Rows   []AblationRow
}

// ablationVariant describes one cell.
type ablationVariant struct {
	group, name string
	mutate      func(*ablationSetup)
}

// ablationSetup carries the mutable knobs.
type ablationSetup struct {
	intrepid, eureka cosched.Config
	backfillMode     string
	estimator        string
}

// RunAblations executes every variant.
func RunAblations(cfg Config) (*Ablations, error) {
	cfg = cfg.normalized()
	out := &Ablations{Config: cfg}

	variants := []ablationVariant{}
	for _, min := range []int64{5, 10, 20, 40, 80} {
		min := min
		variants = append(variants, ablationVariant{
			group: "release_interval", name: fmt.Sprintf("%dmin", min),
			mutate: func(s *ablationSetup) {
				s.intrepid.ReleaseInterval = sim.Duration(min) * sim.Minute
				s.eureka.ReleaseInterval = sim.Duration(min) * sim.Minute
			},
		})
	}
	for _, frac := range []float64{0.1, 0.2, 0.5, 1.0} {
		frac := frac
		variants = append(variants, ablationVariant{
			group: "max_held_fraction", name: fmt.Sprintf("%.0f%%", frac*100),
			mutate: func(s *ablationSetup) {
				s.intrepid.MaxHeldFraction = frac
				s.eureka.MaxHeldFraction = frac
			},
		})
	}
	variants = append(variants,
		ablationVariant{group: "yield_escalation", name: "plain_yield",
			mutate: func(s *ablationSetup) {
				s.intrepid.Scheme, s.eureka.Scheme = cosched.Yield, cosched.Yield
			}},
		ablationVariant{group: "yield_escalation", name: "max_yields_3",
			mutate: func(s *ablationSetup) {
				s.intrepid.Scheme, s.eureka.Scheme = cosched.Yield, cosched.Yield
				s.intrepid.MaxYields, s.eureka.MaxYields = 3, 3
			}},
		ablationVariant{group: "yield_escalation", name: "yield_boost",
			mutate: func(s *ablationSetup) {
				s.intrepid.Scheme, s.eureka.Scheme = cosched.Yield, cosched.Yield
				s.intrepid.YieldBoost, s.eureka.YieldBoost = true, true
			}},
		ablationVariant{group: "backfill", name: "easy",
			mutate: func(s *ablationSetup) { s.backfillMode = "easy" }},
		ablationVariant{group: "backfill", name: "conservative",
			mutate: func(s *ablationSetup) { s.backfillMode = "conservative" }},
		ablationVariant{group: "estimator", name: "walltime",
			mutate: func(s *ablationSetup) { s.estimator = "walltime" }},
		ablationVariant{group: "estimator", name: "user-average",
			mutate: func(s *ablationSetup) { s.estimator = "user-average" }},
	)

	// Every (variant, rep) cell regenerates the shared workload from the
	// rep seed and runs on its own engine; cells fan out across
	// Config.Parallelism workers and merge variant-major, rep-ascending.
	type ablationUnit struct {
		vi, rep int
	}
	var units []ablationUnit
	for vi := range variants {
		for rep := 0; rep < cfg.Reps; rep++ {
			units = append(units, ablationUnit{vi, rep})
		}
	}

	results, err := parallel.Map(context.Background(), cfg.workers(), len(units), func(i int) (*AblationRow, error) {
		u := units[i]
		v := variants[u.vi]
		intr, eur, err := ablationTraces(cfg, cfg.Seed+uint64(u.rep*271))
		if err != nil {
			return nil, err
		}
		setup := ablationSetup{
			intrepid:     cosched.DefaultConfig(cosched.Hold),
			eureka:       cosched.DefaultConfig(cosched.Hold),
			backfillMode: "easy",
			estimator:    "walltime",
		}
		setup.intrepid.ReleaseInterval = cfg.ReleaseInterval
		setup.eureka.ReleaseInterval = cfg.ReleaseInterval
		v.mutate(&setup)

		s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
			{Name: DomIntrepid, Nodes: IntrepidNodes, Backfilling: true,
				BackfillMode: setup.backfillMode, Estimator: setup.estimator,
				Cosched: setup.intrepid, Trace: intr, SchedCore: cfg.SchedCore},
			{Name: DomEureka, Nodes: EurekaNodes, Backfilling: true,
				BackfillMode: setup.backfillMode, Estimator: setup.estimator,
				Cosched: setup.eureka, Trace: eur, SchedCore: cfg.SchedCore},
		}})
		if err != nil {
			return nil, err
		}
		res := s.Run()
		ri, re := res.Reports[DomIntrepid], res.Reports[DomEureka]
		return &AblationRow{
			Group:        v.group,
			Variant:      v.name,
			IntrepidWait: ri.Wait.Mean,
			EurekaWait:   re.Wait.Mean,
			SyncMin:      (ri.PairedSync.Mean + re.PairedSync.Mean) / 2,
			LossNH:       ri.LostNodeHours + re.LostNodeHours,
			Stuck:        res.StuckJobs,
			CoStartViol:  res.CoStartViolations,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	for vi, v := range variants {
		row := AblationRow{Group: v.group, Variant: v.name}
		for i, u := range units {
			if u.vi != vi {
				continue
			}
			r := results[i]
			row.IntrepidWait += r.IntrepidWait
			row.EurekaWait += r.EurekaWait
			row.SyncMin += r.SyncMin
			row.LossNH += r.LossNH
			row.Stuck += r.Stuck
			row.CoStartViol += r.CoStartViol
		}
		f := 1.0 / float64(cfg.Reps)
		row.IntrepidWait *= f
		row.EurekaWait *= f
		row.SyncMin *= f
		row.LossNH *= f
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// ablationTraces builds the shared ablation workload: Intrepid high load,
// Eureka medium, 10% pairs.
func ablationTraces(cfg Config, seed uint64) (intr, eur []*job.Job, err error) {
	intr, err = intrepidTrace(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	eur, err = eurekaTraceAtUtil(cfg, seed+1, 0.5)
	if err != nil {
		return nil, nil, err
	}
	workload.PairNearest(workload.NewRNG(seed+2),
		workload.Eligible(intr, MaxPairedIntrepidNodes),
		workload.Eligible(eur, MaxPairedEurekaNodes),
		DomIntrepid, DomEureka, len(intr)/10, PairMaxGap)
	return intr, eur, nil
}

// Rows returns the variants within one group.
func (a *Ablations) Group(name string) []AblationRow {
	var out []AblationRow
	for _, r := range a.Rows {
		if r.Group == name {
			out = append(out, r)
		}
	}
	return out
}

// Table renders the ablation sweep.
func (a *Ablations) Table() *metrics.Table {
	t := metrics.NewTable("Design ablations (hold-hold, 10% pairs, Eureka util 0.50)",
		"knob", "variant", "intrepid_wait_min", "eureka_wait_min",
		"pair_sync_min", "hold_loss_nh", "viol", "stuck")
	for _, r := range a.Rows {
		t.AddRow(r.Group, r.Variant,
			fmt.Sprintf("%.1f", r.IntrepidWait),
			fmt.Sprintf("%.1f", r.EurekaWait),
			fmt.Sprintf("%.1f", r.SyncMin),
			fmt.Sprintf("%.0f", r.LossNH),
			fmt.Sprintf("%d", r.CoStartViol),
			fmt.Sprintf("%d", r.Stuck))
	}
	t.Caption = "yield_escalation variants run yield-yield; all others hold-hold"
	return t
}

package experiments

import (
	"fmt"

	"cosched/internal/chart"
	"cosched/internal/cosched"
)

// NamedChart pairs a file stem ("fig3a") with a renderable chart.
type NamedChart struct {
	Name  string
	Chart *chart.BarChart
}

// comboNames is the fixed series order for figure charts (matches Combos).
var comboNames = []string{"HH", "HY", "YH", "YY"}

// Charts renders the load sweep as Figures 3–6 (a and b panels each).
func (s *LoadSweep) Charts() []NamedChart {
	utilLabel := func(u float64) string { return fmt.Sprintf("%.2f", u) }
	var out []NamedChart
	out = append(out,
		NamedChart{"fig3a", s.waitChart("Figure 3(a): Intrepid avg. wait by Eureka load",
			utilLabel, func(c *Cell) float64 { return c.IntrepidWait },
			func(b *Baseline) float64 { return b.IntrepidWait }, "minutes")},
		NamedChart{"fig3b", s.waitChart("Figure 3(b): Eureka avg. wait by Eureka load",
			utilLabel, func(c *Cell) float64 { return c.EurekaWait },
			func(b *Baseline) float64 { return b.EurekaWait }, "minutes")},
		NamedChart{"fig4a", s.waitChart("Figure 4(a): Intrepid avg. slowdown by Eureka load",
			utilLabel, func(c *Cell) float64 { return c.IntrepidSlowdown },
			func(b *Baseline) float64 { return b.IntrepidSlowdown }, "slowdown")},
		NamedChart{"fig4b", s.waitChart("Figure 4(b): Eureka avg. slowdown by Eureka load",
			utilLabel, func(c *Cell) float64 { return c.EurekaSlowdown },
			func(b *Baseline) float64 { return b.EurekaSlowdown }, "slowdown")},
	)
	out = append(out,
		NamedChart{"fig5a", s.syncChart("Figure 5(a): Intrepid paired-job sync time", true)},
		NamedChart{"fig5b", s.syncChart("Figure 5(b): Eureka paired-job sync time", false)},
		NamedChart{"fig6a", s.lossChart("Figure 6(a): Intrepid service-unit loss (hold side)", true)},
		NamedChart{"fig6b", s.lossChart("Figure 6(b): Eureka service-unit loss (hold side)", false)},
	)
	return out
}

// waitChart builds a combos-by-sweep-point grouped bar chart with the
// baseline reference.
func (s *LoadSweep) waitChart(title string, label func(float64) string,
	cell func(*Cell) float64, base func(*Baseline) float64, ylabel string) *chart.BarChart {
	c := &chart.BarChart{
		Title: title, YLabel: ylabel, Series: comboNames,
		HasBaseline: true, ValueFmt: "%.1f",
	}
	for _, x := range s.Utils {
		g := chart.Group{Label: label(x), Baseline: base(s.Baselines[x])}
		for _, combo := range Combos {
			g.Values = append(g.Values, cell(s.Cell(x, combo)))
		}
		c.Groups = append(c.Groups, g)
	}
	return c
}

// syncChart builds the Figure 5 shape: (load, remote scheme) groups with
// local hold/yield bars.
func (s *LoadSweep) syncChart(title string, intrepid bool) *chart.BarChart {
	c := &chart.BarChart{
		Title: title, YLabel: "minutes",
		Series: []string{"local=hold", "local=yield"}, ValueFmt: "%.1f",
	}
	for _, u := range s.Utils {
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			var h, y float64
			if intrepid {
				h = s.Cell(u, Combo{Intrepid: cosched.Hold, Eureka: remote}).IntrepidSync
				y = s.Cell(u, Combo{Intrepid: cosched.Yield, Eureka: remote}).IntrepidSync
			} else {
				h = s.Cell(u, Combo{Intrepid: remote, Eureka: cosched.Hold}).EurekaSync
				y = s.Cell(u, Combo{Intrepid: remote, Eureka: cosched.Yield}).EurekaSync
			}
			c.Groups = append(c.Groups, chart.Group{
				Label:  fmt.Sprintf("%.2f/%s", u, remote.Short()),
				Values: []float64{h, y},
			})
		}
	}
	return c
}

// lossChart builds the Figure 6 shape: single node-hour series per
// (load, remote) group.
func (s *LoadSweep) lossChart(title string, intrepid bool) *chart.BarChart {
	c := &chart.BarChart{
		Title: title, YLabel: "node-hours",
		Series: []string{"node-hours"}, ValueFmt: "%.0f",
	}
	for _, u := range s.Utils {
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			var v float64
			var lbl string
			if intrepid {
				v = s.Cell(u, Combo{Intrepid: cosched.Hold, Eureka: remote}).IntrepidLossNH
				lbl = fmt.Sprintf("%.2f/%s", u, remote.Short())
			} else {
				v = s.Cell(u, Combo{Intrepid: remote, Eureka: cosched.Hold}).EurekaLossNH
				lbl = fmt.Sprintf("%.2f/%s", u, remote.Short())
			}
			c.Groups = append(c.Groups, chart.Group{Label: lbl, Values: []float64{v}})
		}
	}
	return c
}

// Charts renders the proportion sweep as Figures 7–10.
func (s *ProportionSweep) Charts() []NamedChart {
	var out []NamedChart
	mk := func(name, title, ylabel, fmtStr string,
		cell func(*Cell) float64, base func(*Baseline) float64) NamedChart {
		c := &chart.BarChart{
			Title: title, YLabel: ylabel, Series: comboNames,
			HasBaseline: base != nil, ValueFmt: fmtStr,
		}
		for _, p := range s.Proportions {
			g := chart.Group{Label: propLabel(p)}
			if base != nil {
				g.Baseline = base(s.Baselines[p])
			}
			for _, combo := range Combos {
				g.Values = append(g.Values, cell(s.Cell(p, combo)))
			}
			c.Groups = append(c.Groups, g)
		}
		return NamedChart{name, c}
	}
	out = append(out,
		mk("fig7a", "Figure 7(a): Intrepid avg. wait by paired proportion", "minutes", "%.1f",
			func(c *Cell) float64 { return c.IntrepidWait },
			func(b *Baseline) float64 { return b.IntrepidWait }),
		mk("fig7b", "Figure 7(b): Eureka avg. wait by paired proportion", "minutes", "%.1f",
			func(c *Cell) float64 { return c.EurekaWait },
			func(b *Baseline) float64 { return b.EurekaWait }),
		mk("fig8a", "Figure 8(a): Intrepid avg. slowdown by paired proportion", "slowdown", "%.2f",
			func(c *Cell) float64 { return c.IntrepidSlowdown },
			func(b *Baseline) float64 { return b.IntrepidSlowdown }),
		mk("fig8b", "Figure 8(b): Eureka avg. slowdown by paired proportion", "slowdown", "%.2f",
			func(c *Cell) float64 { return c.EurekaSlowdown },
			func(b *Baseline) float64 { return b.EurekaSlowdown }),
		mk("fig9a", "Figure 9(a): Intrepid paired-job sync time by proportion", "minutes", "%.1f",
			func(c *Cell) float64 { return c.IntrepidSync }, nil),
		mk("fig9b", "Figure 9(b): Eureka paired-job sync time by proportion", "minutes", "%.1f",
			func(c *Cell) float64 { return c.EurekaSync }, nil),
		mk("fig10a", "Figure 10(a): Intrepid service-unit loss by proportion", "node-hours", "%.0f",
			func(c *Cell) float64 { return c.IntrepidLossNH }, nil),
		mk("fig10b", "Figure 10(b): Eureka service-unit loss by proportion", "node-hours", "%.0f",
			func(c *Cell) float64 { return c.EurekaLossNH }, nil),
	)
	return out
}

// Chart renders the N-way sweep as a grouped bar chart (group sync by
// width and scheme).
func (s *NWaySweep) Chart() NamedChart {
	c := &chart.BarChart{
		Title:  "N-way extension: group sync time by width",
		YLabel: "minutes", Series: []string{"hold", "yield"}, ValueFmt: "%.1f",
	}
	for _, w := range NWayWidths {
		g := chart.Group{Label: fmt.Sprintf("width %d", w)}
		for _, scheme := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			for _, r := range s.Rows {
				if r.Width == w && r.Scheme == scheme {
					g.Values = append(g.Values, r.GroupSync)
				}
			}
		}
		c.Groups = append(c.Groups, g)
	}
	return NamedChart{"nway", c}
}

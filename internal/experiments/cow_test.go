package experiments

import (
	"reflect"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/workload"
)

// TestSnapshotIsolationAcrossCells is the copy-on-write differential test
// for the shared base-trace architecture: after a cell has fully simulated
// (mutating job states, counters, and timestamps), re-materializing from
// the same snapshot must reproduce the pristine trace exactly — byte-equal
// to what workload.Clone of the original would give. Any leak of one
// cell's mutations into the shared snapshot shows up as a field diff here.
func TestSnapshotIsolationAcrossCells(t *testing.T) {
	cfg := testConfig().normalized()
	intr, eur, _, err := loadSweepTraces(cfg, cfg.Seed, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: a deep clone taken before any snapshot or simulation.
	wantIntr := workload.Clone(intr)
	wantEur := workload.Clone(eur)

	pair := tracePair{intr: workload.Capture(intr), eur: workload.Capture(eur)}

	// Run the most mutation-heavy cell (hold/hold) twice from the same
	// snapshot, each on its own buffers, as parallel workers would.
	combo := Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold}
	for run := 0; run < 2; run++ {
		var buf cellBuffers
		ci, ce := pair.materialize(&buf)
		cell := Cell{Combo: combo, X: 0.75}
		if err := runCell(&cell, cfg, combo, ci, ce); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}

	checkPristine := func(name string, got, want []*job.Job) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d jobs, want %d", name, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(*got[i], *want[i]) {
				t.Fatalf("%s: job %d mutated through the shared snapshot:\n got %+v\nwant %+v",
					name, i, *got[i], *want[i])
			}
		}
	}
	checkPristine("intrepid", pair.intr.Materialize(), wantIntr)
	checkPristine("eureka", pair.eur.Materialize(), wantEur)
}

// TestLoadSweepSharedTraceParallelByteIdentity pins the end-to-end
// guarantee for the snapshot-sharing path: the full load sweep renders
// byte-identical tables and sample vectors at parallelism 1 and 8, with
// multiple reps exercising snapshot reuse across worker-recycled arenas.
func TestLoadSweepSharedTraceParallelByteIdentity(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 2

	var want string
	for _, workers := range []int{1, 8} {
		c := cfg
		c.Parallelism = workers
		s, err := RunLoadSweep(c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		got := renderLoadSweep(s)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("parallelism %d tables differ from serial run", workers)
		}
	}
}

package experiments

import (
	"fmt"
	"testing"
)

// propFingerprint renders every cell metric of a proportion sweep in %x so
// run-to-run comparisons are exact, not rounded.
func propFingerprint(s *ProportionSweep) []string {
	var out []string
	for _, prop := range s.Proportions {
		b := s.Baselines[prop]
		out = append(out, fmt.Sprintf("base %v iw=%x ew=%x isd=%x esd=%x iu=%x eu=%x",
			prop, b.IntrepidWait, b.EurekaWait, b.IntrepidSlowdown, b.EurekaSlowdown, b.IntrepidUtil, b.EurekaUtil))
		for _, combo := range Combos {
			c := s.Cell(prop, combo)
			out = append(out, fmt.Sprintf("cell %v %s iw=%x ew=%x isd=%x esd=%x isy=%x esy=%x ilnh=%x elnh=%x stuck=%d viol=%d paired=%d",
				prop, combo.Label(), c.IntrepidWait, c.EurekaWait, c.IntrepidSlowdown, c.EurekaSlowdown,
				c.IntrepidSync, c.EurekaSync, c.IntrepidLossNH, c.EurekaLossNH, c.Stuck, c.CoStartViol, c.PairedJobs))
		}
	}
	return out
}

// TestProportionSweepRunToRunDeterminism re-runs the proportion sweep in
// one process and requires bit-identical cells. Every repeat rebuilds all
// maps (fresh hash seeds), so any result that leaks map iteration order
// into the simulation — e.g. scheduling submissions by ranging over the
// domain map, which assigns the sequence numbers that break same-instant
// event ties — flips here within a round or two.
func TestProportionSweepRunToRunDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, JobFactor: 0.1, Reps: 1, Parallelism: 8}
	first, err := RunProportionSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := propFingerprint(first)
	for round := 0; round < 2; round++ {
		s, err := RunProportionSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := propFingerprint(s)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("round %d line %d:\n  first %s\n  now   %s", round, i, ref[i], got[i])
			}
		}
		if t.Failed() {
			return
		}
	}
}

// Package experiments reproduces the evaluation of Tang et al. (ICPP 2011)
// §V: the capability validation (§V-B), the Eureka-load sweep behind
// Figures 3–6, and the paired-proportion sweep behind Figures 7–10.
//
// Each experiment builds calibrated synthetic traces (see
// internal/workload for the calibration method and the substitution note
// in DESIGN.md), runs the coupled simulator across the four scheme
// combinations plus a no-coscheduling baseline, and returns typed rows
// that cmd/experiments renders as tables and bench_test.go asserts shapes
// over.
package experiments

import (
	"fmt"
	"strings"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/invariant"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/parallel"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// Domain names used throughout the evaluation.
const (
	DomIntrepid = "intrepid"
	DomEureka   = "eureka"
)

// System sizes (§V-A: "real system configurations").
const (
	IntrepidNodes = 40960
	EurekaNodes   = 100
)

// Pairing-eligibility caps: only small-to-moderate jobs participate in
// cross-domain pairs. The real traces pair simulations with their
// analysis/visualization counterparts, which are moderate-sized runs — a
// full-machine capability job has no live viz mate, and a full-Eureka job
// cannot coexist with held analysis nodes. Without the caps the synthetic
// uniform-over-size pairing lets multi-ten-thousand-node holds accumulate
// and drives the hold schemes into a regime the paper never measured (see
// DESIGN.md substitutions).
const (
	MaxPairedIntrepidNodes = 4096
	MaxPairedEurekaNodes   = 32
)

// Combo is one scheme configuration pair: Intrepid's local scheme and
// Eureka's local scheme. The paper labels combos by (Intrepid, Eureka),
// e.g. HY = hold on Intrepid, yield on Eureka.
type Combo struct {
	Intrepid cosched.Scheme
	Eureka   cosched.Scheme
}

// Label returns the paper's two-letter combo name (HH, HY, YH, YY).
func (c Combo) Label() string { return c.Intrepid.Short() + c.Eureka.Short() }

// Combos lists the four combinations in the paper's figure order.
var Combos = []Combo{
	{cosched.Hold, cosched.Hold},
	{cosched.Hold, cosched.Yield},
	{cosched.Yield, cosched.Hold},
	{cosched.Yield, cosched.Yield},
}

// Config holds the sweep-independent experiment parameters.
type Config struct {
	// Seed selects the workload random streams.
	Seed uint64
	// JobFactor scales every trace's job count; 1.0 is paper scale
	// (9,219 Intrepid jobs/month). Tests and benches use smaller factors
	// for speed; relative shapes are stable under scaling.
	JobFactor float64
	// Reps runs each cell this many times with distinct seeds and
	// averages the scalar metrics (the paper ran 10).
	Reps int
	// ReleaseInterval is the hold-release period (paper: 20 minutes).
	ReleaseInterval sim.Duration
	// IntrepidUtil is the fixed Intrepid offered load (§V-D: "current
	// Intrepid system load is high and stable").
	IntrepidUtil float64
	// MaxHeldFraction is the §IV-E2 held-nodes threshold ("avoid having
	// most of the computing nodes in hold status"): a job whose hold
	// would push the held fraction above it yields instead. The paper's
	// experiments ran with the whole system holdable (§V-B), which is the
	// default here (1.0); the threshold is exercised by the ablation
	// bench.
	MaxHeldFraction float64
	// SchedCore names the resource manager scheduling core forwarded to
	// every simulated domain: "" or "incremental" for the default
	// incremental core, "reference" for the original allocate-and-sort
	// path. Both must produce byte-identical tables; the differential
	// tests assert it.
	SchedCore string
	// Parallelism caps how many sweep cells execute concurrently: 0 uses
	// one worker per core (GOMAXPROCS), 1 reproduces the serial path, and
	// N > 1 uses min(N, cells) workers. Every cell owns a private engine
	// and traces seeded by its (point, rep) coordinates, and results are
	// aggregated by cell index, so every setting yields bit-identical
	// tables; only wall-clock time changes.
	Parallelism int
	// Audit attaches an invariant.Auditor to every simulated domain and a
	// cross-domain deadlock Monitor to every cell: each lifecycle event is
	// re-checked against the scheduler's invariants and the wait-for graph
	// is scanned for circular waits outliving the release interval. Any
	// violation fails the run with an error. Used by the differential
	// tests; costs roughly one pool-and-queue scan per lifecycle event.
	Audit bool
	// Dist, when non-nil, fans sweep groups out through a Distributor —
	// worker processes or remote machines — instead of the in-process
	// parallel.Map path. Results merge in group-index order, so any
	// distributor that honors the RunGroups contract yields tables
	// byte-identical to the in-process run. Never serialized: workers
	// receive a Config with Dist cleared and always compute locally.
	Dist Distributor `json:"-"`
}

// DefaultConfig returns the paper's experiment parameters at the given
// scale factor.
func DefaultConfig(seed uint64, jobFactor float64) Config {
	return Config{
		Seed:            seed,
		JobFactor:       jobFactor,
		Reps:            1,
		ReleaseInterval: 20 * sim.Minute,
		IntrepidUtil:    0.68,
		MaxHeldFraction: 1.0,
	}
}

func (c Config) normalized() Config {
	if c.JobFactor <= 0 {
		c.JobFactor = 1
	}
	if c.Reps <= 0 {
		c.Reps = 1
	}
	if c.ReleaseInterval == 0 {
		c.ReleaseInterval = 20 * sim.Minute
	}
	if c.IntrepidUtil <= 0 {
		c.IntrepidUtil = 0.68
	}
	if c.MaxHeldFraction <= 0 {
		c.MaxHeldFraction = 1.0
	}
	return c
}

// workers resolves Parallelism to a concrete worker count.
func (c Config) workers() int { return parallel.Workers(c.Parallelism) }

// intrepidTrace builds one month of Intrepid-like workload at the
// configured utilization.
func intrepidTrace(cfg Config, seed uint64) ([]*job.Job, error) {
	spec := workload.IntrepidSpec(seed)
	spec.Jobs = scaleCount(spec.Jobs, cfg.JobFactor)
	jobs, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	if _, err := workload.ScaleToUtilization(jobs, IntrepidNodes, cfg.IntrepidUtil); err != nil {
		return nil, err
	}
	return jobs, nil
}

// eurekaTraceAtUtil builds a month-like Eureka workload at the target
// utilization using the paper's method: the job count tracks the target
// load (packing more months of arrivals into the span) and one constant
// arrival-interval factor fine-tunes the offered load.
func eurekaTraceAtUtil(cfg Config, seed uint64, util float64) ([]*job.Job, error) {
	spec := workload.EurekaSpec(seed)
	base, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	offered := workload.OfferedLoad(base, EurekaNodes)
	// Re-generate with a job count proportional to the target so the
	// span stays near one month after fine-tuning.
	spec.Jobs = scaleCount(int(float64(spec.Jobs)*util/offered+0.5), cfg.JobFactor)
	jobs, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	if _, err := workload.ScaleToUtilization(jobs, EurekaNodes, util); err != nil {
		return nil, err
	}
	return jobs, nil
}

// eurekaProportionTrace builds the §V-E special workload: the same job
// count and span as the Intrepid trace at medium (≈0.5) utilization, so
// pair proportions can be tuned rank-wise on both traces.
func eurekaProportionTrace(cfg Config, seed uint64, intrepidJobs int) ([]*job.Job, error) {
	spec := workload.EurekaSpec(seed)
	spec.Jobs = intrepidJobs
	// Shorter runtimes keep 9,219 jobs at ≈0.5 load within one month.
	spec.RuntimeMu = 6.05
	spec.RuntimeSigma = 1.10
	spec.MaxRuntime = 3 * sim.Hour
	jobs, err := workload.Generate(spec)
	if err != nil {
		return nil, err
	}
	if _, err := workload.ScaleToUtilization(jobs, EurekaNodes, 0.5); err != nil {
		return nil, err
	}
	return jobs, nil
}

func scaleCount(n int, factor float64) int {
	s := int(float64(n)*factor + 0.5)
	if s < 10 {
		s = 10
	}
	return s
}

// Cell is one simulated configuration cell, averaged over Reps runs.
type Cell struct {
	Combo Combo
	// X is the sweep variable: Eureka utilization (load sweep) or paired
	// proportion (proportion sweep).
	X float64

	// Per-domain averaged metrics (minutes / ratios / node-hours).
	IntrepidWait, EurekaWait         float64
	IntrepidSlowdown, EurekaSlowdown float64
	IntrepidSync, EurekaSync         float64
	IntrepidLossNH, EurekaLossNH     float64
	IntrepidLossPct, EurekaLossPct   float64

	PairedJobs  int
	Stuck       int
	CoStartViol int

	// Per-repetition samples of the headline wait metrics, for
	// run-to-run error bars in the tables (empty with Reps == 1).
	IntrepidWaitSamples, EurekaWaitSamples []float64
}

// cellKey indexes sweep cells by (sweep point, combo) for O(1) lookup.
type cellKey struct {
	x     float64
	combo Combo
}

// Baseline is the no-coscheduling reference for one sweep point.
type Baseline struct {
	X                                float64
	IntrepidWait, EurekaWait         float64
	IntrepidSlowdown, EurekaSlowdown float64
	IntrepidUtil, EurekaUtil         float64
}

// auditHarness is the per-cell invariant instrumentation built when
// Config.Audit is set: one deferred Auditor per domain (the coupled.Sim
// constructs its managers internally, so observers must exist first) and
// one shared deadlock Monitor tapped into every auditor's chain.
type auditHarness struct {
	mon  *invariant.Monitor
	auds []*invariant.Auditor
}

// attach wires the harness into the domain configs before coupled.New.
func newAuditHarness(domains []coupled.DomainConfig) *auditHarness {
	h := &auditHarness{mon: invariant.NewMonitor()}
	for i := range domains {
		aud := invariant.NewDeferred(h.mon.Tap(domains[i].Observer))
		domains[i].Observer = aud
		h.auds = append(h.auds, aud)
	}
	return h
}

// bind completes the deferred wiring once the managers exist.
func (h *auditHarness) bind(s *coupled.Sim, domains []coupled.DomainConfig) {
	for i := range domains {
		mgr := s.Manager(domains[i].Name)
		h.auds[i].Bind(mgr)
		h.mon.Register(mgr)
	}
}

// err collapses every recorded violation into one error, nil when clean.
func (h *auditHarness) err() error {
	var all []string
	for _, aud := range h.auds {
		all = append(all, aud.Violations()...)
	}
	all = append(all, h.mon.Violations()...)
	if len(all) == 0 {
		return nil
	}
	return fmt.Errorf("invariant audit: %d violation(s):\n  %s", len(all), strings.Join(all, "\n  "))
}

// runCell executes one (combo, traces) cell and accumulates into c.
func runCell(c *Cell, cfg Config, combo Combo, intrepid, eureka []*job.Job) error {
	intrCfg := cosched.DefaultConfig(combo.Intrepid)
	intrCfg.ReleaseInterval = cfg.ReleaseInterval
	intrCfg.MaxHeldFraction = cfg.MaxHeldFraction
	eurCfg := cosched.DefaultConfig(combo.Eureka)
	eurCfg.ReleaseInterval = cfg.ReleaseInterval
	eurCfg.MaxHeldFraction = cfg.MaxHeldFraction

	domains := []coupled.DomainConfig{
		{Name: DomIntrepid, Nodes: IntrepidNodes, Backfilling: true, Cosched: intrCfg, Trace: intrepid, SchedCore: cfg.SchedCore},
		{Name: DomEureka, Nodes: EurekaNodes, Backfilling: true, Cosched: eurCfg, Trace: eureka, SchedCore: cfg.SchedCore},
	}
	var audit *auditHarness
	if cfg.Audit {
		audit = newAuditHarness(domains)
	}
	s, err := coupled.New(coupled.Options{Domains: domains})
	if err != nil {
		return err
	}
	if audit != nil {
		audit.bind(s, domains)
	}
	res := s.Run()
	if audit != nil {
		if err := audit.err(); err != nil {
			return fmt.Errorf("combo %s: %w", combo.Label(), err)
		}
	}
	ri := res.Reports[DomIntrepid]
	re := res.Reports[DomEureka]
	c.IntrepidWait += ri.Wait.Mean
	c.EurekaWait += re.Wait.Mean
	c.IntrepidWaitSamples = append(c.IntrepidWaitSamples, ri.Wait.Mean)
	c.EurekaWaitSamples = append(c.EurekaWaitSamples, re.Wait.Mean)
	c.IntrepidSlowdown += ri.Slowdown.Mean
	c.EurekaSlowdown += re.Slowdown.Mean
	c.IntrepidSync += ri.PairedSync.Mean
	c.EurekaSync += re.PairedSync.Mean
	c.IntrepidLossNH += ri.LostNodeHours
	c.EurekaLossNH += re.LostNodeHours
	c.IntrepidLossPct += 100 * ri.LostUtilization
	c.EurekaLossPct += 100 * re.LostUtilization
	c.PairedJobs += ri.PairedCount
	c.Stuck += res.StuckJobs
	c.CoStartViol += res.CoStartViolations
	return nil
}

// add accumulates one rep's result into c. The parallel sweep runners
// execute each rep as its own cell and merge in ascending rep order, so
// every float lands in the accumulator in exactly the order the serial
// loop produced — bit-identical output for any worker count.
func (c *Cell) add(o *Cell) {
	c.IntrepidWait += o.IntrepidWait
	c.EurekaWait += o.EurekaWait
	c.IntrepidWaitSamples = append(c.IntrepidWaitSamples, o.IntrepidWaitSamples...)
	c.EurekaWaitSamples = append(c.EurekaWaitSamples, o.EurekaWaitSamples...)
	c.IntrepidSlowdown += o.IntrepidSlowdown
	c.EurekaSlowdown += o.EurekaSlowdown
	c.IntrepidSync += o.IntrepidSync
	c.EurekaSync += o.EurekaSync
	c.IntrepidLossNH += o.IntrepidLossNH
	c.EurekaLossNH += o.EurekaLossNH
	c.IntrepidLossPct += o.IntrepidLossPct
	c.EurekaLossPct += o.EurekaLossPct
	c.PairedJobs += o.PairedJobs
	c.Stuck += o.Stuck
	c.CoStartViol += o.CoStartViol
}

func (c *Cell) average(reps int) {
	f := 1.0 / float64(reps)
	c.IntrepidWait *= f
	c.EurekaWait *= f
	c.IntrepidSlowdown *= f
	c.EurekaSlowdown *= f
	c.IntrepidSync *= f
	c.EurekaSync *= f
	c.IntrepidLossNH *= f
	c.EurekaLossNH *= f
	c.IntrepidLossPct *= f
	c.EurekaLossPct *= f
}

// runBaseline executes the no-coscheduling reference for one trace pair.
func runBaseline(b *Baseline, cfg Config, intrepid, eureka []*job.Job) error {
	domains := []coupled.DomainConfig{
		{Name: DomIntrepid, Nodes: IntrepidNodes, Backfilling: true, Trace: intrepid, SchedCore: cfg.SchedCore},
		{Name: DomEureka, Nodes: EurekaNodes, Backfilling: true, Trace: eureka, SchedCore: cfg.SchedCore},
	}
	var audit *auditHarness
	if cfg.Audit {
		audit = newAuditHarness(domains)
	}
	s, err := coupled.New(coupled.Options{Domains: domains})
	if err != nil {
		return err
	}
	if audit != nil {
		audit.bind(s, domains)
	}
	res := s.Run()
	if audit != nil {
		if err := audit.err(); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	ri := res.Reports[DomIntrepid]
	re := res.Reports[DomEureka]
	b.IntrepidWait += ri.Wait.Mean
	b.EurekaWait += re.Wait.Mean
	b.IntrepidSlowdown += ri.Slowdown.Mean
	b.EurekaSlowdown += re.Slowdown.Mean
	b.IntrepidUtil += ri.Utilization
	b.EurekaUtil += re.Utilization
	return nil
}

// add accumulates one rep's baseline into b (see Cell.add).
func (b *Baseline) add(o *Baseline) {
	b.IntrepidWait += o.IntrepidWait
	b.EurekaWait += o.EurekaWait
	b.IntrepidSlowdown += o.IntrepidSlowdown
	b.EurekaSlowdown += o.EurekaSlowdown
	b.IntrepidUtil += o.IntrepidUtil
	b.EurekaUtil += o.EurekaUtil
}

func (b *Baseline) average(reps int) {
	f := 1.0 / float64(reps)
	b.IntrepidWait *= f
	b.EurekaWait *= f
	b.IntrepidSlowdown *= f
	b.EurekaSlowdown *= f
	b.IntrepidUtil *= f
	b.EurekaUtil *= f
}

// fmtMin renders minutes with one decimal for the tables.
func fmtMin(v float64) string { return fmt.Sprintf("%.1f", v) }

// fmtSd renders slowdowns.
func fmtSd(v float64) string { return fmt.Sprintf("%.2f", v) }

// fmtErr renders a ± standard-error column ("-" with fewer than two reps).
func fmtErr(samples []float64) string {
	if len(samples) < 2 {
		return "-"
	}
	return fmt.Sprintf("±%.1f", metrics.Stderr(samples))
}

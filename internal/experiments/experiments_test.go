package experiments

import (
	"strings"
	"testing"

	"cosched/internal/cosched"
)

// testConfig returns a scaled-down configuration that keeps the sweeps
// fast while preserving the qualitative shapes the assertions check.
func testConfig() Config {
	cfg := DefaultConfig(7, 0.08)
	cfg.Reps = 1
	return cfg
}

func TestCombosLabels(t *testing.T) {
	want := []string{"HH", "HY", "YH", "YY"}
	for i, c := range Combos {
		if c.Label() != want[i] {
			t.Fatalf("combo %d label = %s, want %s", i, c.Label(), want[i])
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	var zero Config
	n := zero.normalized()
	if n.JobFactor != 1 || n.Reps != 1 || n.ReleaseInterval == 0 ||
		n.IntrepidUtil == 0 || n.MaxHeldFraction != 1.0 {
		t.Fatalf("normalized zero config = %+v", n)
	}
}

func TestTraceBuilders(t *testing.T) {
	cfg := testConfig()
	intr, err := intrepidTrace(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(intr) < 500 {
		t.Fatalf("intrepid trace too small: %d", len(intr))
	}
	for _, util := range []float64{0.25, 0.75} {
		eur, err := eurekaTraceAtUtil(cfg, 2, util)
		if err != nil {
			t.Fatal(err)
		}
		if len(eur) == 0 {
			t.Fatalf("empty eureka trace at %g", util)
		}
	}
	eurP, err := eurekaProportionTrace(cfg, 3, len(intr))
	if err != nil {
		t.Fatal(err)
	}
	if len(eurP) != len(intr) {
		t.Fatalf("proportion trace has %d jobs, want %d (same as intrepid)", len(eurP), len(intr))
	}
}

func TestLoadSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulations are not short")
	}
	sweep, err := RunLoadSweep(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Every cell simulated, no stuck jobs, no co-start violations.
	if len(sweep.Cells) != len(LoadSweepUtils)*len(Combos) {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	for _, c := range sweep.Cells {
		if c.Stuck != 0 {
			t.Errorf("cell %s/%.2f: %d stuck jobs", c.Combo.Label(), c.X, c.Stuck)
		}
		if c.CoStartViol != 0 {
			t.Errorf("cell %s/%.2f: %d co-start violations", c.Combo.Label(), c.X, c.CoStartViol)
		}
		if c.PairedJobs == 0 {
			t.Errorf("cell %s/%.2f: no paired jobs", c.Combo.Label(), c.X)
		}
	}
	// Yield never loses service units; hold on the respective side does.
	for _, util := range sweep.Utils {
		yy := sweep.Cell(util, Combo{Intrepid: cosched.Yield, Eureka: cosched.Yield})
		if yy.IntrepidLossNH != 0 || yy.EurekaLossNH != 0 {
			t.Errorf("YY at %.2f lost node-hours: %g / %g", util, yy.IntrepidLossNH, yy.EurekaLossNH)
		}
		hh := sweep.Cell(util, Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold})
		if hh.IntrepidLossNH <= 0 {
			t.Errorf("HH at %.2f: no Intrepid loss", util)
		}
		yh := sweep.Cell(util, Combo{Intrepid: cosched.Yield, Eureka: cosched.Hold})
		if yh.IntrepidLossNH != 0 {
			t.Errorf("YH at %.2f: Intrepid (yield side) lost %g node-hours", util, yh.IntrepidLossNH)
		}
	}
	// Tables render with a row per (util, combo).
	a, b := sweep.Fig3Table()
	if len(a.Rows) != 12 || len(b.Rows) != 12 {
		t.Fatalf("fig3 rows: %d / %d", len(a.Rows), len(b.Rows))
	}
	for _, table := range []string{a.Render(), b.Render()} {
		for _, combo := range []string{"HH", "HY", "YH", "YY"} {
			if !strings.Contains(table, combo) {
				t.Fatalf("fig3 table missing %s:\n%s", combo, table)
			}
		}
	}
	a, b = sweep.Fig4Table()
	if len(a.Rows) != 12 || len(b.Rows) != 12 {
		t.Fatal("fig4 rows")
	}
	a, b = sweep.Fig5Table()
	if len(a.Rows) != 6 || len(b.Rows) != 6 {
		t.Fatal("fig5 rows")
	}
	a, b = sweep.Fig6Table()
	if len(a.Rows) != 6 || len(b.Rows) != 6 {
		t.Fatal("fig6 rows")
	}
}

func TestProportionSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulations are not short")
	}
	sweep, err := RunProportionSweep(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != len(ProportionSweepPoints)*len(Combos) {
		t.Fatalf("cells = %d", len(sweep.Cells))
	}
	for _, c := range sweep.Cells {
		if c.Stuck != 0 || c.CoStartViol != 0 {
			t.Errorf("cell %s/%.3f: stuck=%d viol=%d", c.Combo.Label(), c.X, c.Stuck, c.CoStartViol)
		}
	}
	// Loss grows with the pair proportion on the hold side (compare the
	// extremes; middle points may wobble at test scale).
	lossLow := sweep.Cell(0.025, Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold}).IntrepidLossNH
	lossHigh := sweep.Cell(0.33, Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold}).IntrepidLossNH
	if lossHigh <= lossLow {
		t.Errorf("Intrepid HH loss did not grow with proportion: %.0f → %.0f", lossLow, lossHigh)
	}
	a, b := sweep.Fig7Table()
	if len(a.Rows) != 20 || len(b.Rows) != 20 {
		t.Fatal("fig7 rows")
	}
	a, b = sweep.Fig9Table()
	if len(a.Rows) != 10 || len(b.Rows) != 10 {
		t.Fatal("fig9 rows")
	}
	a, b = sweep.Fig10Table()
	if len(a.Rows) != 10 || len(b.Rows) != 10 {
		t.Fatal("fig10 rows")
	}
	if !strings.Contains(a.Render(), "2.5%") {
		t.Fatal("fig10 missing 2.5% label")
	}
}

func TestValidationPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("validation grid is not short")
	}
	v, err := RunValidation(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Passed() {
		t.Fatalf("capability validation failed:\n%s", v.Table().Render())
	}
	if !v.DeadlockWithoutRelease {
		t.Fatal("Figure 2 scenario did not deadlock without the release enhancement")
	}
	if v.DeadlockWithRelease {
		t.Fatal("Figure 2 scenario deadlocked despite the release enhancement")
	}
	if len(v.Cases) != 3*2*4 {
		t.Fatalf("validation cases = %d, want 24", len(v.Cases))
	}
	if !strings.Contains(v.Table().Render(), "deadlocked=true") {
		t.Fatal("table caption missing deadlock result")
	}
}

func TestRepsAveraging(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulations are not short")
	}
	cfg := testConfig()
	cfg.JobFactor = 0.03
	cfg.Reps = 2
	sweep, err := RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Averaged cells must still carry finite, plausible values.
	for _, c := range sweep.Cells {
		if c.IntrepidWait < 0 || c.EurekaWait < 0 {
			t.Fatalf("negative averaged wait in %+v", c)
		}
	}
}

func TestReservationComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison simulations are not short")
	}
	c, err := RunReservationComparison(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(c.Rows))
	}
	for _, name := range []string{"baseline", "cosched(HY)", "cosched(YY)", "metascheduler", "co-reservation"} {
		if c.Row(name) == nil {
			t.Fatalf("missing row %q", name)
		}
	}
	// Coordinated systems never violate co-start.
	for _, name := range []string{"cosched(HY)", "cosched(YY)", "metascheduler", "co-reservation"} {
		if r := c.Row(name); r.CoStartViolations != 0 {
			t.Errorf("%s: %d co-start violations", name, r.CoStartViolations)
		}
	}
	// The uncoordinated baseline must show violations (that is the point
	// of coordinating at all).
	if c.Row("baseline").CoStartViolations == 0 {
		t.Error("uncoordinated baseline co-started every pair by accident")
	}
	// The paper's §III argument: co-reservation fragments the machines,
	// so regular waits exceed coscheduling's.
	res := c.Row("co-reservation")
	hy := c.Row("cosched(HY)")
	if res.IntrepidWait <= hy.IntrepidWait {
		t.Errorf("co-reservation Intrepid wait %.1f ≤ coscheduling %.1f — fragmentation argument not visible",
			res.IntrepidWait, hy.IntrepidWait)
	}
	if !strings.Contains(c.Table().Render(), "co-reservation") {
		t.Fatal("table missing co-reservation row")
	}
}

func TestNWaySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulations are not short")
	}
	s, err := RunNWaySweep(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != len(NWayWidths)*2 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	for _, r := range s.Rows {
		if r.GroupStartSpread != 0 {
			t.Errorf("width %d/%s: group start spread %g, want 0", r.Width, r.Scheme, r.GroupStartSpread)
		}
		if r.CoStartViolations != 0 || r.Stuck != 0 {
			t.Errorf("width %d/%s: viol=%d stuck=%d", r.Width, r.Scheme, r.CoStartViolations, r.Stuck)
		}
		if r.Scheme == cosched.Yield && r.LossNH != 0 {
			t.Errorf("width %d yield lost %g node-hours", r.Width, r.LossNH)
		}
	}
	// Wider groups are harder to align: sync at width 4 ≥ sync at width 2
	// for the same scheme.
	var w2, w4 float64
	for _, r := range s.Rows {
		if r.Scheme == cosched.Hold && r.Width == 2 {
			w2 = r.GroupSync
		}
		if r.Scheme == cosched.Hold && r.Width == 4 {
			w4 = r.GroupSync
		}
	}
	if w4 < w2 {
		t.Errorf("group sync shrank with width: w2=%.1f w4=%.1f", w2, w4)
	}
	if !strings.Contains(s.Table().Render(), "width") {
		t.Fatal("table render")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation simulations are not short")
	}
	cfg := testConfig()
	cfg.JobFactor = 0.04
	a, err := RunAblations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, group := range []string{"release_interval", "max_held_fraction", "yield_escalation", "backfill", "estimator"} {
		rows := a.Group(group)
		if len(rows) < 2 {
			t.Fatalf("group %s has %d rows", group, len(rows))
		}
	}
	for _, r := range a.Rows {
		if r.Stuck != 0 || r.CoStartViol != 0 {
			t.Errorf("%s/%s: stuck=%d viol=%d", r.Group, r.Variant, r.Stuck, r.CoStartViol)
		}
	}
	// Yield variants hold nothing.
	for _, r := range a.Group("yield_escalation") {
		if r.Variant == "plain_yield" && r.LossNH != 0 {
			t.Errorf("plain yield lost %g node-hours", r.LossNH)
		}
	}
	if !strings.Contains(a.Table().Render(), "release_interval") {
		t.Fatal("table render")
	}
}

func TestFigureCharts(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulations are not short")
	}
	cfg := testConfig()
	cfg.JobFactor = 0.04
	load, err := RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	charts := load.Charts()
	if len(charts) != 8 {
		t.Fatalf("load charts = %d, want 8", len(charts))
	}
	for _, nc := range charts {
		svg, err := nc.Chart.SVG()
		if err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
		if !strings.Contains(svg, "</svg>") {
			t.Fatalf("%s: malformed svg", nc.Name)
		}
	}
	prop, err := RunProportionSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(prop.Charts()); got != 8 {
		t.Fatalf("prop charts = %d, want 8", got)
	}
	for _, nc := range prop.Charts() {
		if _, err := nc.Chart.SVG(); err != nil {
			t.Fatalf("%s: %v", nc.Name, err)
		}
	}
	nway, err := RunNWaySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nway.Chart().Chart.SVG(); err != nil {
		t.Fatal(err)
	}
}

package experiments

import (
	"fmt"

	"cosched/internal/workload"
)

// The sweep runners fan work out in two shapes: in-process goroutines over
// individual (point, rep, cell) units (parallel.Map), and — when
// Config.Dist is set — whole *groups* dispatched to worker processes. A
// group is everything derived from one (point, rep) trace generation: the
// no-coscheduling baseline plus one cell per scheme combination. Groups
// are the distribution quantum because trace generation dominates cell
// setup cost; shipping a group index instead of a trace keeps the wire
// payload at a few bytes while the worker regenerates the identical
// workload from the group's seed.

// SweepKind selects which sweep a group index refers to.
type SweepKind string

const (
	// KindLoad is the §V-D Eureka-load sweep (Figures 3–6).
	KindLoad SweepKind = "load"
	// KindProp is the §V-E paired-proportion sweep (Figures 7–10).
	KindProp SweepKind = "prop"
)

// sweepPoints returns the x-axis grid for a sweep kind.
func sweepPoints(kind SweepKind) ([]float64, error) {
	switch kind {
	case KindLoad:
		return LoadSweepUtils, nil
	case KindProp:
		return ProportionSweepPoints, nil
	}
	return nil, fmt.Errorf("experiments: unknown sweep kind %q", kind)
}

// groupSeed reproduces the per-(point, rep) trace seed used by the
// in-process snapshot builders; both must agree or distributed cells
// would simulate different workloads than local ones.
func groupSeed(kind SweepKind, cfg Config, ui, rep int) uint64 {
	if kind == KindProp {
		return cfg.Seed + uint64(ui*1000+rep*104729)
	}
	return cfg.Seed + uint64(ui*1000+rep*7919)
}

// NumGroups returns how many groups a sweep fans out: one per
// (sweep point, repetition).
func NumGroups(kind SweepKind, cfg Config) (int, error) {
	cfg = cfg.normalized()
	points, err := sweepPoints(kind)
	if err != nil {
		return 0, err
	}
	return len(points) * cfg.Reps, nil
}

// RowsPerGroup is how many CellRows one group produces: the baseline plus
// one cell per scheme combination.
func RowsPerGroup() int { return 1 + len(Combos) }

// CellRow is one unit's result in wire form: a baseline (Combo < 0) or a
// combo cell, tagged with its group and intra-group position so the
// coordinator can merge rows in deterministic unit order. All fields are
// plain values — encoding/json round-trips float64 exactly (shortest
// round-trip representation), so a row that crossed a socket merges to
// the same bits as one computed in process.
type CellRow struct {
	Group int      `json:"group"`
	Combo int      `json:"combo"` // index into Combos; -1 = baseline
	Cell  Cell     `json:"cell,omitempty"`
	Base  Baseline `json:"base,omitempty"`
	Frac  float64  `json:"frac,omitempty"` // paired fraction (baseline rows, load sweep)
}

// RunSweepGroup computes every unit of group g exactly as the in-process
// sweep would: regenerate the (point, rep) trace pair from the group seed,
// freeze it, and materialize private jobs per cell from the shared
// snapshot. Rows come back in the serial unit order — baseline first, then
// Combos in figure order — so the coordinator's index-order merge replays
// the serial accumulation bit-for-bit.
func RunSweepGroup(kind SweepKind, cfg Config, g int) ([]CellRow, error) {
	cfg = cfg.normalized()
	points, err := sweepPoints(kind)
	if err != nil {
		return nil, err
	}
	if g < 0 || g >= len(points)*cfg.Reps {
		return nil, fmt.Errorf("experiments: group %d out of range [0,%d)", g, len(points)*cfg.Reps)
	}
	ui, rep := g/cfg.Reps, g%cfg.Reps
	seed := groupSeed(kind, cfg, ui, rep)

	var pair tracePair
	switch kind {
	case KindLoad:
		intr, eur, frac, err := loadSweepTraces(cfg, seed, points[ui])
		if err != nil {
			return nil, err
		}
		pair = tracePair{intr: workload.Capture(intr), eur: workload.Capture(eur), frac: frac}
	case KindProp:
		intr, eur, err := proportionTraces(cfg, seed, points[ui])
		if err != nil {
			return nil, err
		}
		pair = tracePair{intr: workload.Capture(intr), eur: workload.Capture(eur)}
	}

	buf := cellBufPool.Get().(*cellBuffers)
	defer cellBufPool.Put(buf)
	rows := make([]CellRow, 0, RowsPerGroup())
	for combo := -1; combo < len(Combos); combo++ {
		intr, eur := pair.materialize(buf)
		row := CellRow{Group: g, Combo: combo}
		if combo < 0 {
			row.Base = Baseline{X: points[ui]}
			row.Frac = pair.frac
			if err := runBaseline(&row.Base, cfg, intr, eur); err != nil {
				return nil, fmt.Errorf("group %d baseline: %w", g, err)
			}
		} else {
			c := Combos[combo]
			row.Cell = Cell{Combo: c, X: points[ui]}
			if err := runCell(&row.Cell, cfg, c, intr, eur); err != nil {
				return nil, fmt.Errorf("group %d combo %s: %w", g, c.Label(), err)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Distributor runs every group of a sweep somewhere — worker processes,
// remote machines, or an in-process stub — and returns the rows indexed by
// group. Implementations may compute groups in any order or more than once
// (re-dispatch after a worker failure); the contract is only that slot g
// holds the RowsPerGroup() rows RunSweepGroup(kind, cfg, g) produces.
type Distributor interface {
	RunGroups(kind SweepKind, cfg Config, numGroups int) ([][]CellRow, error)
}

// distResults fans the sweep out through cfg.Dist and flattens the
// returned group rows into the unit-indexed result slice the merge loops
// expect: group-ascending, baseline-then-combos within each group — the
// exact enumeration order of the units slice, so merging by index is
// byte-identical to the in-process path.
func distResults(kind SweepKind, cfg Config) ([]*loadResult, error) {
	numGroups, err := NumGroups(kind, cfg)
	if err != nil {
		return nil, err
	}
	groups, err := cfg.Dist.RunGroups(kind, cfg, numGroups)
	if err != nil {
		return nil, err
	}
	if len(groups) != numGroups {
		return nil, fmt.Errorf("experiments: distributor returned %d groups, want %d", len(groups), numGroups)
	}
	results := make([]*loadResult, 0, numGroups*RowsPerGroup())
	for g, rows := range groups {
		if len(rows) != RowsPerGroup() {
			return nil, fmt.Errorf("experiments: group %d has %d rows, want %d", g, len(rows), RowsPerGroup())
		}
		for i, row := range rows {
			if row.Group != g || row.Combo != i-1 {
				return nil, fmt.Errorf("experiments: group %d row %d mislabeled (group=%d combo=%d)",
					g, i, row.Group, row.Combo)
			}
			results = append(results, &loadResult{cell: row.Cell, base: row.Base, frac: row.Frac})
		}
	}
	return results, nil
}

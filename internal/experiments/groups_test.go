package experiments

import (
	"encoding/json"
	"fmt"
	"testing"
)

// jsonDistributor is an in-process Distributor that mimics the wire:
// every group's config and rows make a JSON round trip, exactly what the
// distsweep coordinator/worker pair does over a socket, and groups run in
// a scrambled order to prove the merge depends only on indices.
type jsonDistributor struct{ t *testing.T }

func (d jsonDistributor) RunGroups(kind SweepKind, cfg Config, numGroups int) ([][]CellRow, error) {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	var wireCfg Config
	if err := json.Unmarshal(raw, &wireCfg); err != nil {
		return nil, err
	}
	out := make([][]CellRow, numGroups)
	for i := 0; i < numGroups; i++ {
		g := (i*7 + 3) % numGroups // visit groups out of order
		if out[g] != nil {
			g = i
		}
		rows, err := RunSweepGroup(kind, wireCfg, g)
		if err != nil {
			return nil, err
		}
		rowsRaw, err := json.Marshal(rows)
		if err != nil {
			return nil, err
		}
		var wireRows []CellRow
		if err := json.Unmarshal(rowsRaw, &wireRows); err != nil {
			return nil, err
		}
		out[g] = wireRows
	}
	return out, nil
}

// loadFingerprint renders every load-sweep metric in %x for exact
// comparison (see propFingerprint).
func loadFingerprint(s *LoadSweep) []string {
	var out []string
	for _, util := range s.Utils {
		b := s.Baselines[util]
		out = append(out, fmt.Sprintf("base %v iw=%x ew=%x isd=%x esd=%x iu=%x eu=%x frac=%x",
			util, b.IntrepidWait, b.EurekaWait, b.IntrepidSlowdown, b.EurekaSlowdown,
			b.IntrepidUtil, b.EurekaUtil, s.PairedFraction[util]))
		for _, combo := range Combos {
			c := s.Cell(util, combo)
			out = append(out, fmt.Sprintf("cell %v %s iw=%x ew=%x isd=%x esd=%x isy=%x esy=%x ilnh=%x elnh=%x samples=%x/%x stuck=%d viol=%d paired=%d",
				util, combo.Label(), c.IntrepidWait, c.EurekaWait, c.IntrepidSlowdown, c.EurekaSlowdown,
				c.IntrepidSync, c.EurekaSync, c.IntrepidLossNH, c.EurekaLossNH,
				c.IntrepidWaitSamples, c.EurekaWaitSamples, c.Stuck, c.CoStartViol, c.PairedJobs))
		}
	}
	return out
}

// TestDistributedLoadSweepMatchesInProcess is the distribution acceptance
// test at the package level: a sweep fanned out through a Distributor —
// JSON round trips, out-of-order group execution — must be bit-identical
// to the in-process parallel run.
func TestDistributedLoadSweepMatchesInProcess(t *testing.T) {
	cfg := Config{Seed: 11, JobFactor: 0.02, Reps: 2, Parallelism: 2}
	local, err := RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dist = jsonDistributor{t}
	dist, err := RunLoadSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, got := loadFingerprint(local), loadFingerprint(dist)
	if len(want) != len(got) {
		t.Fatalf("fingerprint length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n  local %s\n  dist  %s", i, want[i], got[i])
		}
	}
}

func TestDistributedProportionSweepMatchesInProcess(t *testing.T) {
	cfg := Config{Seed: 5, JobFactor: 0.01, Reps: 1, Parallelism: 2}
	local, err := RunProportionSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dist = jsonDistributor{t}
	dist, err := RunProportionSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, got := propFingerprint(local), propFingerprint(dist)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n  local %s\n  dist  %s", i, want[i], got[i])
		}
	}
}

// TestRunSweepGroupValidation: bad kinds and out-of-range groups error
// instead of panicking, and row labeling survives validation.
func TestRunSweepGroupValidation(t *testing.T) {
	cfg := Config{Seed: 1, JobFactor: 0.01}
	if _, err := RunSweepGroup("bogus", cfg, 0); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := RunSweepGroup(KindLoad, cfg, -1); err == nil {
		t.Fatal("negative group accepted")
	}
	n, err := NumGroups(KindLoad, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweepGroup(KindLoad, cfg, n); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	rows, err := RunSweepGroup(KindLoad, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != RowsPerGroup() {
		t.Fatalf("%d rows, want %d", len(rows), RowsPerGroup())
	}
	for i, r := range rows {
		if r.Group != 0 || r.Combo != i-1 {
			t.Fatalf("row %d mislabeled: %+v", i, r)
		}
	}
}

package experiments

import (
	"context"
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/parallel"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// LoadSweepUtils are the Eureka system-utilization points of Figures 3–6.
var LoadSweepUtils = []float64{0.25, 0.50, 0.75}

// PairWindow is the §V-D association rule: jobs submitted within 2 minutes
// of each other on the two machines are paired.
const PairWindow = 2 * sim.Minute

// LoadSweep holds the data behind Figures 3–6: per Eureka load, a
// baseline plus one cell per scheme combination.
type LoadSweep struct {
	Config    Config
	Utils     []float64
	Baselines map[float64]*Baseline
	Cells     []*Cell // ordered: util-major, combo-minor
	// PairedFraction records the resulting proportion of paired Intrepid
	// jobs per util (the paper reports 5–10%).
	PairedFraction map[float64]float64

	// byKey indexes Cells for O(1) lookup; the figure tables call Cell in
	// O(points × combos) loops, which was an O(cells²) scan overall.
	byKey map[cellKey]*Cell
}

// Cell returns the sweep cell for (util, combo), or nil.
func (s *LoadSweep) Cell(util float64, combo Combo) *Cell {
	if s.byKey != nil {
		return s.byKey[cellKey{util, combo}]
	}
	for _, c := range s.Cells {
		//simlint:allow R5 X is copied verbatim from the sweep grid; lookup is by identity, same as the byKey map key
		if c.X == util && c.Combo == combo {
			return c
		}
	}
	return nil
}

// loadUnit is one independently simulatable cell of the load sweep:
// combo < 0 runs the no-coscheduling baseline for (util, rep).
type loadUnit struct {
	ui, rep, combo int
}

// loadResult is what one unit produces; exactly one of cell/base is set.
type loadResult struct {
	cell Cell
	base Baseline
	frac float64
}

// RunLoadSweep reproduces the §V-D experiment: Intrepid's trace fixed at
// high load, Eureka's load varied, pairs formed by the 2-minute submission
// window, each (util, combo) cell simulated Reps times.
//
// Every (util, combo-or-baseline, rep) cell is independent — it generates
// its own traces from the (util, rep) seed and owns a private engine — so
// the cells fan out across Config.Parallelism workers and are merged back
// in index order, which reproduces the serial accumulation bit-for-bit.
func RunLoadSweep(cfg Config) (*LoadSweep, error) {
	cfg = cfg.normalized()
	sweep := &LoadSweep{
		Config:         cfg,
		Utils:          LoadSweepUtils,
		Baselines:      make(map[float64]*Baseline),
		PairedFraction: make(map[float64]float64),
	}

	// Enumerate all cells up front with a stable index: util-major,
	// rep-middle, baseline-then-combos minor (the serial loop's order).
	var units []loadUnit
	for ui := range sweep.Utils {
		for rep := 0; rep < cfg.Reps; rep++ {
			units = append(units, loadUnit{ui, rep, -1})
			for ci := range Combos {
				units = append(units, loadUnit{ui, rep, ci})
			}
		}
	}

	var results []*loadResult
	if cfg.Dist != nil {
		// Distributed fan-out: worker processes compute whole groups and
		// the rows land here in unit order (see distResults).
		var err error
		results, err = distResults(KindLoad, cfg)
		if err != nil {
			return nil, err
		}
	} else {
		// Generate each (util, rep) workload exactly once and freeze it; the
		// baseline and every combo cell of that (util, rep) materialize private
		// jobs from the shared snapshot instead of regenerating the traces.
		pairs, err := buildLoadTracePairs(cfg, sweep.Utils)
		if err != nil {
			return nil, err
		}

		results, err = parallel.Map(context.Background(), cfg.workers(), len(units), func(i int) (*loadResult, error) {
			u := units[i]
			util := sweep.Utils[u.ui]
			pair := &pairs[u.ui*cfg.Reps+u.rep]
			buf := cellBufPool.Get().(*cellBuffers)
			defer cellBufPool.Put(buf)
			intr, eur := pair.materialize(buf)
			r := &loadResult{}
			if u.combo < 0 {
				r.base = Baseline{X: util}
				r.frac = pair.frac
				if err := runBaseline(&r.base, cfg, intr, eur); err != nil {
					return nil, err
				}
			} else {
				combo := Combos[u.combo]
				r.cell = Cell{Combo: combo, X: util}
				if err := runCell(&r.cell, cfg, combo, intr, eur); err != nil {
					return nil, err
				}
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Aggregate by index, never by completion order: the unit slice is
	// already rep-ascending per cell, so merging in index order replays
	// the serial loop's float-addition order exactly.
	perUtil := make([]struct {
		base  *Baseline
		cells []*Cell
	}, len(sweep.Utils))
	for ui, util := range sweep.Utils {
		perUtil[ui].base = &Baseline{X: util}
		perUtil[ui].cells = make([]*Cell, len(Combos))
		for ci, combo := range Combos {
			perUtil[ui].cells[ci] = &Cell{Combo: combo, X: util}
		}
	}
	for i, u := range units {
		r := results[i]
		if u.combo < 0 {
			sweep.PairedFraction[sweep.Utils[u.ui]] += r.frac / float64(cfg.Reps)
			perUtil[u.ui].base.add(&r.base)
		} else {
			perUtil[u.ui].cells[u.combo].add(&r.cell)
		}
	}
	sweep.byKey = make(map[cellKey]*Cell, len(sweep.Utils)*len(Combos))
	for ui, util := range sweep.Utils {
		perUtil[ui].base.average(cfg.Reps)
		sweep.Baselines[util] = perUtil[ui].base
		for _, c := range perUtil[ui].cells {
			c.average(cfg.Reps)
			sweep.byKey[cellKey{c.X, c.Combo}] = c
		}
		sweep.Cells = append(sweep.Cells, perUtil[ui].cells...)
	}
	return sweep, nil
}

// loadSweepTraces builds one paired (Intrepid, Eureka) trace instance for
// the load sweep and returns the paired fraction of Intrepid jobs.
func loadSweepTraces(cfg Config, seed uint64, util float64) (intr, eur []*job.Job, frac float64, err error) {
	intr, err = intrepidTrace(cfg, seed)
	if err != nil {
		return nil, nil, 0, err
	}
	eur, err = eurekaTraceAtUtil(cfg, seed+1, util)
	if err != nil {
		return nil, nil, 0, err
	}
	workload.PairByWindow(
		workload.Eligible(intr, MaxPairedIntrepidNodes),
		workload.Eligible(eur, MaxPairedEurekaNodes),
		DomIntrepid, DomEureka, PairWindow)
	return intr, eur, workload.PairedFraction(intr), nil
}

// Fig3Table renders "Scheduling performance (avg. wait) by Eureka system
// load" — Figure 3(a) and 3(b).
func (s *LoadSweep) Fig3Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 3(a): Intrepid avg. wait (minutes) by Eureka load",
		"eureka_util", "combo", "cosched", "stderr", "base", "difference")
	eureka = metrics.NewTable("Figure 3(b): Eureka avg. wait (minutes) by Eureka load",
		"eureka_util", "combo", "cosched", "stderr", "base", "difference")
	for _, util := range s.Utils {
		base := s.Baselines[util]
		for _, combo := range Combos {
			c := s.Cell(util, combo)
			intrepid.AddRow(fmt.Sprintf("%.2f", util), combo.Label(),
				fmtMin(c.IntrepidWait), fmtErr(c.IntrepidWaitSamples),
				fmtMin(base.IntrepidWait),
				fmtMin(c.IntrepidWait-base.IntrepidWait))
			eureka.AddRow(fmt.Sprintf("%.2f", util), combo.Label(),
				fmtMin(c.EurekaWait), fmtErr(c.EurekaWaitSamples),
				fmtMin(base.EurekaWait),
				fmtMin(c.EurekaWait-base.EurekaWait))
		}
	}
	return intrepid, eureka
}

// Fig4Table renders "Scheduling performance (avg. slowdown) by Eureka
// load" — Figure 4(a) and 4(b).
func (s *LoadSweep) Fig4Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 4(a): Intrepid avg. slowdown by Eureka load",
		"eureka_util", "combo", "cosched", "base", "difference")
	eureka = metrics.NewTable("Figure 4(b): Eureka avg. slowdown by Eureka load",
		"eureka_util", "combo", "cosched", "base", "difference")
	for _, util := range s.Utils {
		base := s.Baselines[util]
		for _, combo := range Combos {
			c := s.Cell(util, combo)
			intrepid.AddRow(fmt.Sprintf("%.2f", util), combo.Label(),
				fmtSd(c.IntrepidSlowdown), fmtSd(base.IntrepidSlowdown),
				fmtSd(c.IntrepidSlowdown-base.IntrepidSlowdown))
			eureka.AddRow(fmt.Sprintf("%.2f", util), combo.Label(),
				fmtSd(c.EurekaSlowdown), fmtSd(base.EurekaSlowdown),
				fmtSd(c.EurekaSlowdown-base.EurekaSlowdown))
		}
	}
	return intrepid, eureka
}

// Fig5Table renders "Average paired job synchronization time by Eureka
// load" — Figure 5(a)/(b). Rows are grouped by (Eureka util, remote
// scheme) with one column per local scheme, matching the paper's x-axis.
func (s *LoadSweep) Fig5Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 5(a): Intrepid avg. paired-job sync time (minutes)",
		"eureka_util/remote", "local=hold", "local=yield")
	eureka = metrics.NewTable("Figure 5(b): Eureka avg. paired-job sync time (minutes)",
		"eureka_util/remote", "local=hold", "local=yield")
	for _, util := range s.Utils {
		// Intrepid's remote machine is Eureka: group by Eureka's scheme,
		// compare Intrepid's local hold vs yield.
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			h := s.Cell(util, Combo{Intrepid: cosched.Hold, Eureka: remote})
			y := s.Cell(util, Combo{Intrepid: cosched.Yield, Eureka: remote})
			intrepid.AddRow(fmt.Sprintf("%.2f/%s", util, remote.Short()),
				fmtMin(h.IntrepidSync), fmtMin(y.IntrepidSync))
		}
		// Eureka's remote machine is Intrepid.
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			h := s.Cell(util, Combo{Intrepid: remote, Eureka: cosched.Hold})
			y := s.Cell(util, Combo{Intrepid: remote, Eureka: cosched.Yield})
			eureka.AddRow(fmt.Sprintf("%.2f/%s", util, remote.Short()),
				fmtMin(h.EurekaSync), fmtMin(y.EurekaSync))
		}
	}
	return intrepid, eureka
}

// Fig6Table renders "Service unit loss by Eureka load" — Figure 6(a)/(b):
// node-hours lost to holding plus the corresponding lost utilization rate,
// for the cells where the local machine uses hold.
func (s *LoadSweep) Fig6Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 6(a): Intrepid service-unit loss (local scheme = hold)",
		"eureka_util/remote", "node_hours", "lost_util_%")
	eureka = metrics.NewTable("Figure 6(b): Eureka service-unit loss (local scheme = hold)",
		"eureka_util/remote", "node_hours", "lost_util_%")
	for _, util := range s.Utils {
		for _, remote := range []struct {
			scheme string
			combo  Combo // Intrepid local hold with this Eureka scheme
		}{
			{"H", Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold}},
			{"Y", Combo{Intrepid: cosched.Hold, Eureka: cosched.Yield}},
		} {
			c := s.Cell(util, remote.combo)
			intrepid.AddRow(fmt.Sprintf("%.2f/%s", util, remote.scheme),
				fmt.Sprintf("%.0f", c.IntrepidLossNH),
				fmt.Sprintf("%.2f", c.IntrepidLossPct))
		}
		for _, remote := range []struct {
			scheme string
			combo  Combo // Eureka local hold with this Intrepid scheme
		}{
			{"H", Combo{Intrepid: cosched.Hold, Eureka: cosched.Hold}},
			{"Y", Combo{Intrepid: cosched.Yield, Eureka: cosched.Hold}},
		} {
			c := s.Cell(util, remote.combo)
			eureka.AddRow(fmt.Sprintf("%.2f/%s", util, remote.scheme),
				fmt.Sprintf("%.0f", c.EurekaLossNH),
				fmt.Sprintf("%.2f", c.EurekaLossPct))
		}
	}
	return intrepid, eureka
}

package experiments

import (
	"fmt"

	"cosched/internal/workload"
)

// MegaTraces is one frozen giant workload instance for the -megabench
// single-cell stress run: the Intrepid trace scaled to a requested job
// count (paper scale is 9,219 jobs/month; a million-job cell packs ~108
// months of arrivals into the same span), the matching Eureka trace at the
// target utilization, both captured as immutable snapshots so the
// simulated cell exercises the exact copy-on-write materialization path
// the sweeps use.
type MegaTraces struct {
	pair tracePair
	// IntrepidJobs and EurekaJobs are the realized trace lengths (the
	// Intrepid count can differ from the request by rounding).
	IntrepidJobs, EurekaJobs int
	// PairedFraction is the fraction of Intrepid jobs paired by the
	// 2-minute submission window.
	PairedFraction float64
	// EurekaUtil is the offered Eureka load the traces were built for.
	EurekaUtil float64
}

// BuildMegaTraces generates and freezes a load-sweep-shaped trace pair
// with the Intrepid trace scaled to intrepidJobs jobs. Generation is
// deliberately separate from Run so callers can time and profile the two
// phases independently.
func BuildMegaTraces(cfg Config, intrepidJobs int, eurekaUtil float64) (*MegaTraces, error) {
	cfg = cfg.normalized()
	if intrepidJobs <= 0 {
		return nil, fmt.Errorf("megacell: intrepid job count must be positive, got %d", intrepidJobs)
	}
	base := workload.IntrepidSpec(cfg.Seed).Jobs
	cfg.JobFactor = float64(intrepidJobs) / float64(base)
	intr, eur, frac, err := loadSweepTraces(cfg, cfg.Seed, eurekaUtil)
	if err != nil {
		return nil, err
	}
	return &MegaTraces{
		pair:           tracePair{intr: workload.Capture(intr), eur: workload.Capture(eur), frac: frac},
		IntrepidJobs:   len(intr),
		EurekaJobs:     len(eur),
		PairedFraction: frac,
		EurekaUtil:     eurekaUtil,
	}, nil
}

// Run materializes private jobs from the frozen snapshots and simulates
// one cell under the given scheme combination, exactly as a sweep cell
// would. The materialization arena is NOT drawn from the shared cell-buffer
// pool: a million-job arena returned to the pool would pin hundreds of MiB
// for every later sweep, so the mega cell owns a private one that dies with
// the call.
func (t *MegaTraces) Run(cfg Config, combo Combo) (*Cell, error) {
	cfg = cfg.normalized()
	buf := new(cellBuffers)
	intr, eur := t.pair.materialize(buf)
	c := &Cell{Combo: combo, X: t.EurekaUtil}
	if err := runCell(c, cfg, combo, intr, eur); err != nil {
		return nil, err
	}
	return c, nil
}

package experiments

import (
	"context"
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/parallel"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// NWayWidths are the co-start group widths swept by the N-way extension
// experiment (2 reproduces the paper's pairs; 3 and 4 are the §VI future
// work).
var NWayWidths = []int{2, 3, 4}

// nwayDomain describes one of the four heterogeneous machines in the
// extension experiment.
type nwayDomain struct {
	name  string
	nodes int
	jobs  int // background jobs per month-scale run before JobFactor
	sizes []workload.SizeClass
}

var nwayDomains = []nwayDomain{
	{"compute", 4096, 4000, []workload.SizeClass{
		{Nodes: 64, Weight: 0.4}, {Nodes: 128, Weight: 0.3},
		{Nodes: 256, Weight: 0.2}, {Nodes: 512, Weight: 0.1}}},
	{"gpu", 512, 2500, []workload.SizeClass{
		{Nodes: 8, Weight: 0.4}, {Nodes: 16, Weight: 0.3},
		{Nodes: 32, Weight: 0.2}, {Nodes: 64, Weight: 0.1}}},
	{"analysis", 100, 2000, []workload.SizeClass{
		{Nodes: 1, Weight: 0.3}, {Nodes: 4, Weight: 0.3},
		{Nodes: 8, Weight: 0.25}, {Nodes: 16, Weight: 0.15}}},
	{"viz", 64, 1500, []workload.SizeClass{
		{Nodes: 1, Weight: 0.4}, {Nodes: 2, Weight: 0.3},
		{Nodes: 4, Weight: 0.2}, {Nodes: 8, Weight: 0.1}}},
}

// NWayRow is one (width, scheme) cell of the extension sweep.
type NWayRow struct {
	Width  int
	Scheme cosched.Scheme

	// GroupSync is the average extra wait (minutes) a group member
	// spent after first becoming ready, across all members.
	GroupSync float64
	// GroupStartSpread must be 0: all members of every group started at
	// one instant.
	GroupStartSpread  float64
	AvgWait           float64 // minutes, averaged over domains
	LossNH            float64 // node-hours lost to holds, summed
	Stuck             int
	CoStartViolations int
}

// NWaySweep is the N-way extension study.
type NWaySweep struct {
	Config       Config
	BaselineWait float64 // avg wait with no groups, averaged over domains
	Rows         []NWayRow
}

// RunNWaySweep measures co-start group widths 2–4 across four
// heterogeneous domains under both schemes. Each (width, scheme) cell
// builds its own four traces and engine, so the cells — including the
// no-groups baseline — fan out across Config.Parallelism workers and the
// rows keep their fixed enumeration order.
func RunNWaySweep(cfg Config) (*NWaySweep, error) {
	cfg = cfg.normalized()
	out := &NWaySweep{Config: cfg}

	type nwayUnit struct {
		width  int
		scheme cosched.Scheme
	}
	units := []nwayUnit{{0, cosched.Yield}} // index 0: the no-groups baseline
	for _, width := range NWayWidths {
		for _, scheme := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			units = append(units, nwayUnit{width, scheme})
		}
	}

	rows, err := parallel.Map(context.Background(), cfg.workers(), len(units), func(i int) (*NWayRow, error) {
		return runNWayCell(cfg, units[i].width, units[i].scheme)
	})
	if err != nil {
		return nil, err
	}
	out.BaselineWait = rows[0].AvgWait
	for _, row := range rows[1:] {
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

// runNWayCell builds the four-domain workload, links groups of the given
// width (0 = baseline, no groups), and simulates.
func runNWayCell(cfg Config, width int, scheme cosched.Scheme) (*NWayRow, error) {
	row := &NWayRow{Width: width, Scheme: scheme}
	traces := make([][]*job.Job, len(nwayDomains))
	for i, d := range nwayDomains {
		spec := workload.Spec{
			Name: d.name, Jobs: scaleCount(d.jobs, cfg.JobFactor), Span: 30 * sim.Day,
			Sizes:     d.sizes,
			RuntimeMu: 6.6, RuntimeSigma: 1.0,
			MinRuntime: 2 * sim.Minute, MaxRuntime: 6 * sim.Hour,
			WallFactorMin: 1.2, WallFactorMax: 2.5,
			Seed: cfg.Seed + uint64(i*97),
		}
		tr, err := workload.Generate(spec)
		if err != nil {
			return nil, err
		}
		if _, err := workload.ScaleToUtilization(tr, d.nodes, 0.55); err != nil {
			return nil, err
		}
		traces[i] = tr
	}

	// Link groups: 5% of the first domain's jobs anchor a group spanning
	// the first `width` domains, members chosen nearest-in-time.
	var groups [][]*job.Job
	if width >= 2 {
		rng := workload.NewRNG(cfg.Seed + 1009)
		anchors := rng.Perm(len(traces[0]))
		wantGroups := len(traces[0]) / 20
		for _, ai := range anchors {
			if len(groups) >= wantGroups {
				break
			}
			anchor := traces[0][ai]
			if anchor.Paired() {
				continue
			}
			members := []*job.Job{anchor}
			domains := []string{nwayDomains[0].name}
			ok := true
			for d := 1; d < width; d++ {
				m := nearestUnpairedJob(traces[d], anchor.SubmitTime, 2*sim.Hour)
				if m == nil {
					ok = false
					break
				}
				// Mark immediately so the next domain's search cannot
				// pick an already-claimed job (LinkGroup links at the
				// end).
				members = append(members, m)
				domains = append(domains, nwayDomains[d].name)
			}
			if !ok {
				continue
			}
			if err := workload.LinkGroup(members, domains); err != nil {
				return nil, err
			}
			groups = append(groups, members)
		}
	}

	cc := cosched.DefaultConfig(scheme)
	cc.ReleaseInterval = cfg.ReleaseInterval
	var dcs []coupled.DomainConfig
	for i, d := range nwayDomains {
		dcs = append(dcs, coupled.DomainConfig{
			Name: d.name, Nodes: d.nodes, Backfilling: true,
			Cosched: cc, Trace: traces[i], SchedCore: cfg.SchedCore,
		})
	}
	s, err := coupled.New(coupled.Options{Domains: dcs})
	if err != nil {
		return nil, err
	}
	res := s.Run()
	row.Stuck = res.StuckJobs
	row.CoStartViolations = res.CoStartViolations
	for _, d := range nwayDomains {
		rep := res.Reports[d.name]
		row.AvgWait += rep.Wait.Mean / float64(len(nwayDomains))
		row.LossNH += rep.LostNodeHours
	}
	var syncSum float64
	var members int
	for _, g := range groups {
		var first sim.Time
		for i, m := range g {
			syncSum += float64(m.SyncTime()) / 60
			members++
			if i == 0 || m.StartTime < first {
				first = m.StartTime
			}
		}
		for _, m := range g {
			row.GroupStartSpread += float64(m.StartTime - first)
		}
	}
	if members > 0 {
		row.GroupSync = syncSum / float64(members)
	}
	return row, nil
}

// nearestUnpairedJob returns the unpaired job in tr closest in submit time
// to t (within maxGap), or nil.
func nearestUnpairedJob(tr []*job.Job, t sim.Time, maxGap sim.Duration) *job.Job {
	var best *job.Job
	var bestGap sim.Duration = maxGap + 1
	for _, j := range tr {
		if j.Paired() {
			continue
		}
		g := j.SubmitTime - t
		if g < 0 {
			g = -g
		}
		if g < bestGap {
			best, bestGap = j, g
		}
	}
	if bestGap > maxGap {
		return nil
	}
	return best
}

// Table renders the sweep.
func (s *NWaySweep) Table() *metrics.Table {
	t := metrics.NewTable("N-way coscheduling extension (§VI future work): group width sweep",
		"width", "scheme", "group_sync_min", "avg_wait_min", "wait_vs_base", "hold_loss_nh", "spread", "viol", "stuck")
	for _, r := range s.Rows {
		t.AddRow(fmt.Sprintf("%d", r.Width), r.Scheme.String(),
			fmt.Sprintf("%.1f", r.GroupSync),
			fmt.Sprintf("%.1f", r.AvgWait),
			fmt.Sprintf("%+.1f", r.AvgWait-s.BaselineWait),
			fmt.Sprintf("%.0f", r.LossNH),
			fmt.Sprintf("%.0f", r.GroupStartSpread),
			fmt.Sprintf("%d", r.CoStartViolations),
			fmt.Sprintf("%d", r.Stuck))
	}
	t.Caption = fmt.Sprintf("baseline (no groups) avg wait: %.1f min; spread must be 0 (all members co-start)", s.BaselineWait)
	return t
}

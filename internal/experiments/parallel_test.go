package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// renderLoadSweep flattens everything observable about a load sweep —
// paired fractions, every Figures 3–6 table, and the raw per-rep sample
// vectors printed with %x so no float bit can hide behind rounding —
// into one string for byte-level comparison.
func renderLoadSweep(s *LoadSweep) string {
	var b strings.Builder
	for _, util := range s.Utils {
		fmt.Fprintf(&b, "paired %.2f: %x\n", util, s.PairedFraction[util])
	}
	for _, util := range s.Utils {
		base := s.Baselines[util]
		fmt.Fprintf(&b, "base %.2f: %x %x %x %x %x %x\n", util,
			base.IntrepidWait, base.EurekaWait,
			base.IntrepidSlowdown, base.EurekaSlowdown,
			base.IntrepidUtil, base.EurekaUtil)
		for _, combo := range Combos {
			c := s.Cell(util, combo)
			fmt.Fprintf(&b, "cell %.2f %s: %x %x %x %x %d %d %d\n", util, combo.Label(),
				c.IntrepidWait, c.EurekaWait, c.IntrepidSync, c.EurekaLossNH,
				c.PairedJobs, c.Stuck, c.CoStartViol)
			for _, v := range c.IntrepidWaitSamples {
				fmt.Fprintf(&b, "  sample_i %x\n", v)
			}
			for _, v := range c.EurekaWaitSamples {
				fmt.Fprintf(&b, "  sample_e %x\n", v)
			}
		}
	}
	f3a, f3b := s.Fig3Table()
	f4a, f4b := s.Fig4Table()
	f5a, f5b := s.Fig5Table()
	f6a, f6b := s.Fig6Table()
	for _, t := range []interface{ Render() string }{f3a, f3b, f4a, f4b, f5a, f5b, f6a, f6b} {
		b.WriteString(t.Render())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestLoadSweepParallelDeterminism is the regression test for the cell
// pool's core guarantee: RunLoadSweep must produce byte-identical tables
// and sample vectors at any worker count, because cells are aggregated by
// index (replaying the serial float-addition order), never by completion
// order.
func TestLoadSweepParallelDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.Reps = 2 // exercise the rep-merge path, not just per-point fan-out

	var want string
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.Parallelism = workers
		s, err := RunLoadSweep(c)
		if err != nil {
			t.Fatalf("parallelism %d: %v", workers, err)
		}
		got := renderLoadSweep(s)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("parallelism %d output differs from serial:\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}

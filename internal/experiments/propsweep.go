package experiments

import (
	"context"
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/parallel"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// ProportionSweepPoints are the paired-job proportions of Figures 7–10.
var ProportionSweepPoints = []float64{0.025, 0.05, 0.10, 0.20, 0.33}

// PairMaxGap bounds how far apart in submission time the members of a
// synthetic pair may be (proportion sweep and validation grid). Associated
// jobs are submitted together in practice; an unbounded rank-wise match
// across traces with slightly different spans would create pairs arriving
// days apart and grossly inflate hold durations.
const PairMaxGap = 2 * sim.Hour

// ProportionSweep holds the data behind Figures 7–10: per paired-job
// proportion, a baseline plus one cell per scheme combination. Intrepid
// uses the same high-load trace as the load sweep; Eureka uses the §V-E
// special workload (same job count and span as Intrepid, utilization
// ≈ 0.5).
type ProportionSweep struct {
	Config      Config
	Proportions []float64
	Baselines   map[float64]*Baseline
	Cells       []*Cell

	byKey map[cellKey]*Cell // O(1) Cell lookup; see LoadSweep.byKey
}

// Cell returns the sweep cell for (proportion, combo), or nil.
func (s *ProportionSweep) Cell(prop float64, combo Combo) *Cell {
	if s.byKey != nil {
		return s.byKey[cellKey{prop, combo}]
	}
	for _, c := range s.Cells {
		//simlint:allow R5 X is copied verbatim from the sweep grid; lookup is by identity, same as the byKey map key
		if c.X == prop && c.Combo == combo {
			return c
		}
	}
	return nil
}

// RunProportionSweep reproduces the §V-E experiment. Cells fan out across
// Config.Parallelism workers and merge in index order (see RunLoadSweep).
func RunProportionSweep(cfg Config) (*ProportionSweep, error) {
	cfg = cfg.normalized()
	sweep := &ProportionSweep{
		Config:      cfg,
		Proportions: ProportionSweepPoints,
		Baselines:   make(map[float64]*Baseline),
	}

	var units []loadUnit // ui here indexes Proportions
	for pi := range sweep.Proportions {
		for rep := 0; rep < cfg.Reps; rep++ {
			units = append(units, loadUnit{pi, rep, -1})
			for ci := range Combos {
				units = append(units, loadUnit{pi, rep, ci})
			}
		}
	}

	var results []*loadResult
	if cfg.Dist != nil {
		// Distributed fan-out — see RunLoadSweep and distResults.
		var err error
		results, err = distResults(KindProp, cfg)
		if err != nil {
			return nil, err
		}
	} else {
		// One generation per (proportion, rep), shared by its cells — see
		// RunLoadSweep.
		pairs, err := buildPropTracePairs(cfg, sweep.Proportions)
		if err != nil {
			return nil, err
		}

		results, err = parallel.Map(context.Background(), cfg.workers(), len(units), func(i int) (*loadResult, error) {
			u := units[i]
			prop := sweep.Proportions[u.ui]
			buf := cellBufPool.Get().(*cellBuffers)
			defer cellBufPool.Put(buf)
			intr, eur := pairs[u.ui*cfg.Reps+u.rep].materialize(buf)
			r := &loadResult{}
			if u.combo < 0 {
				r.base = Baseline{X: prop}
				if err := runBaseline(&r.base, cfg, intr, eur); err != nil {
					return nil, err
				}
			} else {
				combo := Combos[u.combo]
				r.cell = Cell{Combo: combo, X: prop}
				if err := runCell(&r.cell, cfg, combo, intr, eur); err != nil {
					return nil, err
				}
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
	}

	perProp := make([]struct {
		base  *Baseline
		cells []*Cell
	}, len(sweep.Proportions))
	for pi, prop := range sweep.Proportions {
		perProp[pi].base = &Baseline{X: prop}
		perProp[pi].cells = make([]*Cell, len(Combos))
		for ci, combo := range Combos {
			perProp[pi].cells[ci] = &Cell{Combo: combo, X: prop}
		}
	}
	for i, u := range units {
		if u.combo < 0 {
			perProp[u.ui].base.add(&results[i].base)
		} else {
			perProp[u.ui].cells[u.combo].add(&results[i].cell)
		}
	}
	sweep.byKey = make(map[cellKey]*Cell, len(sweep.Proportions)*len(Combos))
	for pi, prop := range sweep.Proportions {
		perProp[pi].base.average(cfg.Reps)
		sweep.Baselines[prop] = perProp[pi].base
		for _, c := range perProp[pi].cells {
			c.average(cfg.Reps)
			sweep.byKey[cellKey{c.X, c.Combo}] = c
		}
		sweep.Cells = append(sweep.Cells, perProp[pi].cells...)
	}
	return sweep, nil
}

// proportionTraces builds one paired trace instance for a proportion point.
func proportionTraces(cfg Config, seed uint64, prop float64) (intr, eur []*job.Job, err error) {
	intr, err = intrepidTrace(cfg, seed)
	if err != nil {
		return nil, nil, err
	}
	eur, err = eurekaProportionTrace(cfg, seed+1, len(intr))
	if err != nil {
		return nil, nil, err
	}
	rng := workload.NewRNG(seed + 2)
	// The proportion is of ALL jobs (the paper tunes "the proportion of
	// paired jobs"); the pairs themselves come from the size-eligible
	// subsets, and mates are always temporally close (within PairMaxGap)
	// as real associated submissions are.
	want := int(float64(len(intr))*prop + 0.5)
	workload.PairNearest(rng,
		workload.Eligible(intr, MaxPairedIntrepidNodes),
		workload.Eligible(eur, MaxPairedEurekaNodes),
		DomIntrepid, DomEureka, want, PairMaxGap)
	return intr, eur, nil
}

// propLabel renders a proportion the way the paper labels its x-axis.
func propLabel(p float64) string {
	//simlint:allow R5 p is a ProportionSweepPoints grid constant passed through unchanged; identity match, no arithmetic
	if p == 0.025 {
		return "2.5%"
	}
	return fmt.Sprintf("%.0f%%", p*100)
}

// Fig7Table renders "Average waiting times by paired job proportion" —
// Figure 7(a)/(b).
func (s *ProportionSweep) Fig7Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 7(a): Intrepid avg. wait (minutes) by paired proportion",
		"proportion", "combo", "cosched", "base", "difference")
	eureka = metrics.NewTable("Figure 7(b): Eureka avg. wait (minutes) by paired proportion",
		"proportion", "combo", "cosched", "base", "difference")
	for _, prop := range s.Proportions {
		base := s.Baselines[prop]
		for _, combo := range Combos {
			c := s.Cell(prop, combo)
			intrepid.AddRow(propLabel(prop), combo.Label(),
				fmtMin(c.IntrepidWait), fmtMin(base.IntrepidWait),
				fmtMin(c.IntrepidWait-base.IntrepidWait))
			eureka.AddRow(propLabel(prop), combo.Label(),
				fmtMin(c.EurekaWait), fmtMin(base.EurekaWait),
				fmtMin(c.EurekaWait-base.EurekaWait))
		}
	}
	return intrepid, eureka
}

// Fig8Table renders "Avg. slowdowns by paired job proportion" — Figure 8.
func (s *ProportionSweep) Fig8Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 8(a): Intrepid avg. slowdown by paired proportion",
		"proportion", "combo", "cosched", "base", "difference")
	eureka = metrics.NewTable("Figure 8(b): Eureka avg. slowdown by paired proportion",
		"proportion", "combo", "cosched", "base", "difference")
	for _, prop := range s.Proportions {
		base := s.Baselines[prop]
		for _, combo := range Combos {
			c := s.Cell(prop, combo)
			intrepid.AddRow(propLabel(prop), combo.Label(),
				fmtSd(c.IntrepidSlowdown), fmtSd(base.IntrepidSlowdown),
				fmtSd(c.IntrepidSlowdown-base.IntrepidSlowdown))
			eureka.AddRow(propLabel(prop), combo.Label(),
				fmtSd(c.EurekaSlowdown), fmtSd(base.EurekaSlowdown),
				fmtSd(c.EurekaSlowdown-base.EurekaSlowdown))
		}
	}
	return intrepid, eureka
}

// Fig9Table renders "Paired job average synchronization time by paired job
// proportion" — Figure 9(a)/(b).
func (s *ProportionSweep) Fig9Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 9(a): Intrepid avg. paired-job sync time (minutes)",
		"proportion/remote", "local=hold", "local=yield")
	eureka = metrics.NewTable("Figure 9(b): Eureka avg. paired-job sync time (minutes)",
		"proportion/remote", "local=hold", "local=yield")
	for _, prop := range s.Proportions {
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			h := s.Cell(prop, Combo{Intrepid: cosched.Hold, Eureka: remote})
			y := s.Cell(prop, Combo{Intrepid: cosched.Yield, Eureka: remote})
			intrepid.AddRow(fmt.Sprintf("%s/%s", propLabel(prop), remote.Short()),
				fmtMin(h.IntrepidSync), fmtMin(y.IntrepidSync))
		}
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			h := s.Cell(prop, Combo{Intrepid: remote, Eureka: cosched.Hold})
			y := s.Cell(prop, Combo{Intrepid: remote, Eureka: cosched.Yield})
			eureka.AddRow(fmt.Sprintf("%s/%s", propLabel(prop), remote.Short()),
				fmtMin(h.EurekaSync), fmtMin(y.EurekaSync))
		}
	}
	return intrepid, eureka
}

// Fig10Table renders "Service unit loss by paired job proportion" —
// Figure 10(a)/(b).
func (s *ProportionSweep) Fig10Table() (intrepid, eureka *metrics.Table) {
	intrepid = metrics.NewTable("Figure 10(a): Intrepid service-unit loss (local scheme = hold)",
		"proportion/remote", "node_hours", "lost_util_%")
	eureka = metrics.NewTable("Figure 10(b): Eureka service-unit loss (local scheme = hold)",
		"proportion/remote", "node_hours", "lost_util_%")
	for _, prop := range s.Proportions {
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			c := s.Cell(prop, Combo{Intrepid: cosched.Hold, Eureka: remote})
			intrepid.AddRow(fmt.Sprintf("%s/%s", propLabel(prop), remote.Short()),
				fmt.Sprintf("%.0f", c.IntrepidLossNH),
				fmt.Sprintf("%.2f", c.IntrepidLossPct))
		}
		for _, remote := range []cosched.Scheme{cosched.Hold, cosched.Yield} {
			c := s.Cell(prop, Combo{Intrepid: remote, Eureka: cosched.Hold})
			eureka.AddRow(fmt.Sprintf("%s/%s", propLabel(prop), remote.Short()),
				fmt.Sprintf("%.0f", c.EurekaLossNH),
				fmt.Sprintf("%.2f", c.EurekaLossPct))
		}
	}
	return intrepid, eureka
}

package experiments

import (
	"context"
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/metasched"
	"cosched/internal/metrics"
	"cosched/internal/parallel"
	"cosched/internal/reserve"
	"cosched/internal/workload"
)

// ReservationRow captures one system's results in the coscheduling-vs-
// co-reservation comparison.
type ReservationRow struct {
	System string // "cosched(HY)", "cosched(YY)", "co-reservation", "baseline"

	IntrepidWait, EurekaWait float64 // minutes, all jobs
	IntrepidUtil, EurekaUtil float64
	PairSync                 float64 // minutes: cosched sync / reservation latency
	LossNH                   float64 // node-hours lost to holds (0 for reservation)
	Stuck                    int
	CoStartViolations        int
}

// ReservationComparison is the §III quantitative argument: advance
// co-reservation also co-starts pairs, but planning every job onto a
// walltime-sized window at submission fragments the machines and hurts
// regular jobs, while coscheduling coordinates at start time only.
type ReservationComparison struct {
	Config Config
	Rows   []ReservationRow
}

// reservationSystems enumerates the compared coordination mechanisms in
// table order. The coupled-simulator systems carry their scheme configs;
// kind selects the simulator.
var reservationSystems = []struct {
	label string
	kind  string // "cosched", "metasched", "reserve"
	cc    func(cfg Config) (cosched.Config, cosched.Config)
}{
	// (a) uncoordinated baseline.
	{"baseline", "cosched", func(Config) (cosched.Config, cosched.Config) {
		return cosched.Config{}, cosched.Config{}
	}},
	// (b) coscheduling hold-yield; (c) yield-yield.
	{"cosched(HY)", "cosched", func(cfg Config) (cosched.Config, cosched.Config) {
		ci := cosched.DefaultConfig(cosched.Hold)
		ce := cosched.DefaultConfig(cosched.Yield)
		ci.ReleaseInterval, ce.ReleaseInterval = cfg.ReleaseInterval, cfg.ReleaseInterval
		return ci, ce
	}},
	{"cosched(YY)", "cosched", func(cfg Config) (cosched.Config, cosched.Config) {
		ci := cosched.DefaultConfig(cosched.Yield)
		ce := cosched.DefaultConfig(cosched.Yield)
		ci.ReleaseInterval, ce.ReleaseInterval = cfg.ReleaseInterval, cfg.ReleaseInterval
		return ci, ce
	}},
	// (d) metascheduler: a single global portal owning both machines.
	{"metascheduler", "metasched", nil},
	// (e) advance co-reservation (HARC/GUR style).
	{"co-reservation", "reserve", nil},
}

// RunReservationComparison runs the same paired workload (Intrepid at high
// load, Eureka at medium, 10 % pairs) under (a) no coordination,
// (b) coscheduling with hold-yield, (c) coscheduling with yield-yield,
// (d) a metascheduler with a global submission portal (GridWay/Moab
// style), and (e) the advance co-reservation baseline (HARC/GUR style).
// Each (system, rep) cell builds its own traces from the rep seed and runs
// on its own engine; cells fan out across Config.Parallelism workers and
// merge back system-major, rep-ascending.
func RunReservationComparison(cfg Config) (*ReservationComparison, error) {
	cfg = cfg.normalized()
	out := &ReservationComparison{Config: cfg}

	type resUnit struct {
		sys, rep int
	}
	var units []resUnit
	for si := range reservationSystems {
		for rep := 0; rep < cfg.Reps; rep++ {
			units = append(units, resUnit{si, rep})
		}
	}

	results, err := parallel.Map(context.Background(), cfg.workers(), len(units), func(i int) (*ReservationRow, error) {
		u := units[i]
		return runReservationRep(cfg, u.sys, u.rep)
	})
	if err != nil {
		return nil, err
	}

	for si, sys := range reservationSystems {
		row := ReservationRow{System: sys.label}
		for i, u := range units {
			if u.sys == si {
				row.add(results[i])
			}
		}
		scaleRow(&row, cfg.Reps)
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// runReservationRep executes one rep of one compared system and returns
// its unscaled (single-rep) row.
func runReservationRep(cfg Config, si, rep int) (*ReservationRow, error) {
	sys := reservationSystems[si]
	seed := cfg.Seed + uint64(rep*613)
	intr, err := intrepidTrace(cfg, seed)
	if err != nil {
		return nil, err
	}
	eur, err := eurekaProportionTrace(cfg, seed+1, len(intr))
	if err != nil {
		return nil, err
	}
	want := len(intr) / 10
	workload.PairNearest(workload.NewRNG(seed+2),
		workload.Eligible(intr, MaxPairedIntrepidNodes),
		workload.Eligible(eur, MaxPairedEurekaNodes),
		DomIntrepid, DomEureka, want, PairMaxGap)

	row := &ReservationRow{System: sys.label}
	switch sys.kind {
	case "cosched":
		ci, ce := sys.cc(cfg)
		s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
			{Name: DomIntrepid, Nodes: IntrepidNodes, Backfilling: true, Cosched: ci, Trace: intr, SchedCore: cfg.SchedCore},
			{Name: DomEureka, Nodes: EurekaNodes, Backfilling: true, Cosched: ce, Trace: eur, SchedCore: cfg.SchedCore},
		}})
		if err != nil {
			return nil, err
		}
		res := s.Run()
		ri, re := res.Reports[DomIntrepid], res.Reports[DomEureka]
		row.IntrepidWait = ri.Wait.Mean
		row.EurekaWait = re.Wait.Mean
		row.IntrepidUtil = ri.Utilization
		row.EurekaUtil = re.Utilization
		row.PairSync = (ri.PairedSync.Mean + re.PairedSync.Mean) / 2
		row.LossNH = ri.LostNodeHours + re.LostNodeHours
		row.Stuck = res.StuckJobs
		row.CoStartViolations = res.CoStartViolations
	case "metasched":
		tr := map[string][]*job.Job{DomIntrepid: intr, DomEureka: eur}
		s, err := metasched.New(metasched.Options{Domains: []metasched.DomainConfig{
			{Name: DomIntrepid, Nodes: IntrepidNodes, Trace: intr},
			{Name: DomEureka, Nodes: EurekaNodes, Trace: eur},
		}})
		if err != nil {
			return nil, err
		}
		res := s.Run(tr)
		ri, re := res.Reports[DomIntrepid], res.Reports[DomEureka]
		row.IntrepidWait = ri.Wait.Mean
		row.EurekaWait = re.Wait.Mean
		row.IntrepidUtil = ri.Utilization
		row.EurekaUtil = re.Utilization
		row.PairSync = (ri.PairedSync.Mean + re.PairedSync.Mean) / 2
		row.Stuck = res.StuckJobs
		row.CoStartViolations = res.CoStartViolations
	case "reserve":
		s, err := reserve.New(reserve.Options{Domains: []reserve.DomainConfig{
			{Name: DomIntrepid, Nodes: IntrepidNodes, Trace: intr},
			{Name: DomEureka, Nodes: EurekaNodes, Trace: eur},
		}})
		if err != nil {
			return nil, err
		}
		res := s.Run()
		ri, re := res.Reports[DomIntrepid], res.Reports[DomEureka]
		row.IntrepidWait = ri.Wait.Mean
		row.EurekaWait = re.Wait.Mean
		row.IntrepidUtil = ri.Utilization
		row.EurekaUtil = re.Utilization
		row.PairSync = res.PairLatency.Mean
		row.Stuck = res.StuckJobs
		row.CoStartViolations = res.CoStartViolations
	default:
		return nil, fmt.Errorf("experiments: unknown comparison system kind %q", sys.kind)
	}
	return row, nil
}

// add accumulates one rep's row into r (see Cell.add).
func (r *ReservationRow) add(o *ReservationRow) {
	r.IntrepidWait += o.IntrepidWait
	r.EurekaWait += o.EurekaWait
	r.IntrepidUtil += o.IntrepidUtil
	r.EurekaUtil += o.EurekaUtil
	r.PairSync += o.PairSync
	r.LossNH += o.LossNH
	r.Stuck += o.Stuck
	r.CoStartViolations += o.CoStartViolations
}

func scaleRow(r *ReservationRow, reps int) {
	f := 1.0 / float64(reps)
	r.IntrepidWait *= f
	r.EurekaWait *= f
	r.IntrepidUtil *= f
	r.EurekaUtil *= f
	r.PairSync *= f
	r.LossNH *= f
}

// Row returns the named system's row, or nil.
func (c *ReservationComparison) Row(system string) *ReservationRow {
	for i := range c.Rows {
		if c.Rows[i].System == system {
			return &c.Rows[i]
		}
	}
	return nil
}

// Table renders the comparison.
func (c *ReservationComparison) Table() *metrics.Table {
	t := metrics.NewTable("Coordination mechanisms compared (§III, 10% pairs)",
		"system", "intrepid_wait_min", "eureka_wait_min", "pair_sync_min",
		"hold_loss_nh", "intrepid_util", "co_start_viol", "stuck")
	for _, r := range c.Rows {
		t.AddRow(r.System,
			fmt.Sprintf("%.1f", r.IntrepidWait),
			fmt.Sprintf("%.1f", r.EurekaWait),
			fmt.Sprintf("%.1f", r.PairSync),
			fmt.Sprintf("%.0f", r.LossNH),
			fmt.Sprintf("%.3f", r.IntrepidUtil),
			fmt.Sprintf("%d", r.CoStartViolations),
			fmt.Sprintf("%d", r.Stuck))
	}
	t.Caption = "pair_sync: extra wait imposed on paired jobs (cosched) / reservation lead time (co-reservation)"
	return t
}

package experiments

import (
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/metasched"
	"cosched/internal/metrics"
	"cosched/internal/reserve"
	"cosched/internal/workload"
)

// ReservationRow captures one system's results in the coscheduling-vs-
// co-reservation comparison.
type ReservationRow struct {
	System string // "cosched(HY)", "cosched(YY)", "co-reservation", "baseline"

	IntrepidWait, EurekaWait float64 // minutes, all jobs
	IntrepidUtil, EurekaUtil float64
	PairSync                 float64 // minutes: cosched sync / reservation latency
	LossNH                   float64 // node-hours lost to holds (0 for reservation)
	Stuck                    int
	CoStartViolations        int
}

// ReservationComparison is the §III quantitative argument: advance
// co-reservation also co-starts pairs, but planning every job onto a
// walltime-sized window at submission fragments the machines and hurts
// regular jobs, while coscheduling coordinates at start time only.
type ReservationComparison struct {
	Config Config
	Rows   []ReservationRow
}

// RunReservationComparison runs the same paired workload (Intrepid at high
// load, Eureka at medium, 10 % pairs) under (a) no coordination,
// (b) coscheduling with hold-yield, (c) coscheduling with yield-yield,
// (d) a metascheduler with a global submission portal (GridWay/Moab
// style), and (e) the advance co-reservation baseline (HARC/GUR style).
func RunReservationComparison(cfg Config) (*ReservationComparison, error) {
	cfg = cfg.normalized()
	out := &ReservationComparison{Config: cfg}

	build := func(seed uint64) (intr, eur []*job.Job, err error) {
		intr, err = intrepidTrace(cfg, seed)
		if err != nil {
			return nil, nil, err
		}
		eur, err = eurekaProportionTrace(cfg, seed+1, len(intr))
		if err != nil {
			return nil, nil, err
		}
		want := len(intr) / 10
		workload.PairNearest(workload.NewRNG(seed+2),
			workload.Eligible(intr, MaxPairedIntrepidNodes),
			workload.Eligible(eur, MaxPairedEurekaNodes),
			DomIntrepid, DomEureka, want, PairMaxGap)
		return intr, eur, nil
	}

	runCosched := func(label string, cc func() (cosched.Config, cosched.Config)) error {
		row := ReservationRow{System: label}
		for rep := 0; rep < cfg.Reps; rep++ {
			intr, eur, err := build(cfg.Seed + uint64(rep*613))
			if err != nil {
				return err
			}
			ci, ce := cc()
			s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
				{Name: DomIntrepid, Nodes: IntrepidNodes, Backfilling: true, Cosched: ci, Trace: intr},
				{Name: DomEureka, Nodes: EurekaNodes, Backfilling: true, Cosched: ce, Trace: eur},
			}})
			if err != nil {
				return err
			}
			res := s.Run()
			ri, re := res.Reports[DomIntrepid], res.Reports[DomEureka]
			row.IntrepidWait += ri.Wait.Mean
			row.EurekaWait += re.Wait.Mean
			row.IntrepidUtil += ri.Utilization
			row.EurekaUtil += re.Utilization
			row.PairSync += (ri.PairedSync.Mean + re.PairedSync.Mean) / 2
			row.LossNH += ri.LostNodeHours + re.LostNodeHours
			row.Stuck += res.StuckJobs
			row.CoStartViolations += res.CoStartViolations
		}
		scaleRow(&row, cfg.Reps)
		out.Rows = append(out.Rows, row)
		return nil
	}

	// (a) uncoordinated baseline.
	if err := runCosched("baseline", func() (cosched.Config, cosched.Config) {
		return cosched.Config{}, cosched.Config{}
	}); err != nil {
		return nil, err
	}
	// (b) coscheduling hold-yield; (c) yield-yield.
	if err := runCosched("cosched(HY)", func() (cosched.Config, cosched.Config) {
		ci := cosched.DefaultConfig(cosched.Hold)
		ce := cosched.DefaultConfig(cosched.Yield)
		ci.ReleaseInterval, ce.ReleaseInterval = cfg.ReleaseInterval, cfg.ReleaseInterval
		return ci, ce
	}); err != nil {
		return nil, err
	}
	if err := runCosched("cosched(YY)", func() (cosched.Config, cosched.Config) {
		ci := cosched.DefaultConfig(cosched.Yield)
		ce := cosched.DefaultConfig(cosched.Yield)
		ci.ReleaseInterval, ce.ReleaseInterval = cfg.ReleaseInterval, cfg.ReleaseInterval
		return ci, ce
	}); err != nil {
		return nil, err
	}

	// (d) metascheduler: a single global portal owning both machines.
	meta := ReservationRow{System: "metascheduler"}
	for rep := 0; rep < cfg.Reps; rep++ {
		intr, eur, err := build(cfg.Seed + uint64(rep*613))
		if err != nil {
			return nil, err
		}
		tr := map[string][]*job.Job{DomIntrepid: intr, DomEureka: eur}
		s, err := metasched.New(metasched.Options{Domains: []metasched.DomainConfig{
			{Name: DomIntrepid, Nodes: IntrepidNodes, Trace: intr},
			{Name: DomEureka, Nodes: EurekaNodes, Trace: eur},
		}})
		if err != nil {
			return nil, err
		}
		res := s.Run(tr)
		ri, re := res.Reports[DomIntrepid], res.Reports[DomEureka]
		meta.IntrepidWait += ri.Wait.Mean
		meta.EurekaWait += re.Wait.Mean
		meta.IntrepidUtil += ri.Utilization
		meta.EurekaUtil += re.Utilization
		meta.PairSync += (ri.PairedSync.Mean + re.PairedSync.Mean) / 2
		meta.Stuck += res.StuckJobs
		meta.CoStartViolations += res.CoStartViolations
	}
	scaleRow(&meta, cfg.Reps)
	out.Rows = append(out.Rows, meta)

	// (e) advance co-reservation.
	row := ReservationRow{System: "co-reservation"}
	for rep := 0; rep < cfg.Reps; rep++ {
		intr, eur, err := build(cfg.Seed + uint64(rep*613))
		if err != nil {
			return nil, err
		}
		s, err := reserve.New(reserve.Options{Domains: []reserve.DomainConfig{
			{Name: DomIntrepid, Nodes: IntrepidNodes, Trace: intr},
			{Name: DomEureka, Nodes: EurekaNodes, Trace: eur},
		}})
		if err != nil {
			return nil, err
		}
		res := s.Run()
		ri, re := res.Reports[DomIntrepid], res.Reports[DomEureka]
		row.IntrepidWait += ri.Wait.Mean
		row.EurekaWait += re.Wait.Mean
		row.IntrepidUtil += ri.Utilization
		row.EurekaUtil += re.Utilization
		row.PairSync += res.PairLatency.Mean
		row.Stuck += res.StuckJobs
		row.CoStartViolations += res.CoStartViolations
	}
	scaleRow(&row, cfg.Reps)
	out.Rows = append(out.Rows, row)
	return out, nil
}

func scaleRow(r *ReservationRow, reps int) {
	f := 1.0 / float64(reps)
	r.IntrepidWait *= f
	r.EurekaWait *= f
	r.IntrepidUtil *= f
	r.EurekaUtil *= f
	r.PairSync *= f
	r.LossNH *= f
}

// Row returns the named system's row, or nil.
func (c *ReservationComparison) Row(system string) *ReservationRow {
	for i := range c.Rows {
		if c.Rows[i].System == system {
			return &c.Rows[i]
		}
	}
	return nil
}

// Table renders the comparison.
func (c *ReservationComparison) Table() *metrics.Table {
	t := metrics.NewTable("Coordination mechanisms compared (§III, 10% pairs)",
		"system", "intrepid_wait_min", "eureka_wait_min", "pair_sync_min",
		"hold_loss_nh", "intrepid_util", "co_start_viol", "stuck")
	for _, r := range c.Rows {
		t.AddRow(r.System,
			fmt.Sprintf("%.1f", r.IntrepidWait),
			fmt.Sprintf("%.1f", r.EurekaWait),
			fmt.Sprintf("%.1f", r.PairSync),
			fmt.Sprintf("%.0f", r.LossNH),
			fmt.Sprintf("%.3f", r.IntrepidUtil),
			fmt.Sprintf("%d", r.CoStartViolations),
			fmt.Sprintf("%d", r.Stuck))
	}
	t.Caption = "pair_sync: extra wait imposed on paired jobs (cosched) / reservation lead time (co-reservation)"
	return t
}

package experiments

import "testing"

// TestSchedCoreDifferential is the issue's acceptance gate: the full load
// sweep must render byte-identical tables (including raw per-rep sample
// vectors, printed in hex so no float bit hides behind rounding) under the
// reference and incremental scheduler cores, at serial and parallel worker
// counts. Any divergence — ordering, skip-cache, timeline maintenance —
// shows up here as a table diff. Audit additionally re-checks every
// lifecycle event of every cell against the scheduler invariants and the
// deadlock wait-for graph; a violation fails the sweep with an error.
func TestSchedCoreDifferential(t *testing.T) {
	cfg := testConfig()
	cfg.Audit = true
	var want string
	for _, core := range []string{"reference", "incremental"} {
		for _, workers := range []int{1, 8} {
			c := cfg
			c.SchedCore = core
			c.Parallelism = workers
			s, err := RunLoadSweep(c)
			if err != nil {
				t.Fatalf("core %s parallelism %d: %v", core, workers, err)
			}
			got := renderLoadSweep(s)
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("core %s parallelism %d diverges from reference serial output", core, workers)
			}
		}
	}
}

package experiments

import (
	"context"
	"sync"

	"cosched/internal/arena"
	"cosched/internal/job"
	"cosched/internal/parallel"
	"cosched/internal/workload"
)

// tracePair is the frozen workload for one (sweep point, repetition):
// both domain traces generated, utilization-scaled, and paired exactly
// once, then captured as immutable snapshots. The sweep runners used to
// regenerate identical traces inside every cell of a (point, rep) — the
// baseline plus one per scheme combination, five generations where one
// suffices; now each cell materializes private jobs from the shared
// snapshot instead (copy-on-write, see workload.Snapshot).
type tracePair struct {
	intr, eur *workload.Snapshot
	frac      float64 // paired fraction of Intrepid jobs (load sweep)
}

// buildLoadTracePairs prepares the load sweep's tracePair for every
// (util, rep), indexed ui*reps+rep. Pairs build in parallel — each is
// derived only from its own seed — and land at their index, so the result
// is identical at any worker count.
func buildLoadTracePairs(cfg Config, utils []float64) ([]tracePair, error) {
	pairs := make([]tracePair, len(utils)*cfg.Reps)
	_, err := parallel.Map(context.Background(), cfg.workers(), len(pairs), func(i int) (struct{}, error) {
		ui, rep := i/cfg.Reps, i%cfg.Reps
		seed := cfg.Seed + uint64(ui*1000+rep*7919)
		intr, eur, frac, err := loadSweepTraces(cfg, seed, utils[ui])
		if err != nil {
			return struct{}{}, err
		}
		pairs[i] = tracePair{intr: workload.Capture(intr), eur: workload.Capture(eur), frac: frac}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// buildPropTracePairs prepares the proportion sweep's tracePair for every
// (proportion, rep), indexed pi*reps+rep.
func buildPropTracePairs(cfg Config, props []float64) ([]tracePair, error) {
	pairs := make([]tracePair, len(props)*cfg.Reps)
	_, err := parallel.Map(context.Background(), cfg.workers(), len(pairs), func(i int) (struct{}, error) {
		pi, rep := i/cfg.Reps, i%cfg.Reps
		seed := cfg.Seed + uint64(pi*1000+rep*104729)
		intr, eur, err := proportionTraces(cfg, seed, props[pi])
		if err != nil {
			return struct{}{}, err
		}
		pairs[i] = tracePair{intr: workload.Capture(intr), eur: workload.Capture(eur)}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// cellBuffers is recycled per-cell materialization storage: one job arena
// plus the two trace pointer slices. Workers borrow a set from the pool,
// run the cell, and return it, so a long sweep reuses a handful of arenas
// instead of allocating every job of every cell. Reuse cannot affect
// results: materialization fully initializes every field it hands out.
type cellBuffers struct {
	jobs      arena.Arena[job.Job]
	intr, eur []*job.Job
}

var cellBufPool = sync.Pool{New: func() any { return new(cellBuffers) }}

// materialize builds private mutable traces for one cell from the shared
// snapshots, recycling b's arena and slices. The returned jobs die with
// the next materialize on the same buffers; return b to the pool only when
// the cell's simulation has fully finished with them.
func (p *tracePair) materialize(b *cellBuffers) (intr, eur []*job.Job) {
	b.jobs.Reset()
	b.intr = p.intr.MaterializeInto(&b.jobs, b.intr)
	b.eur = p.eur.MaterializeInto(&b.jobs, b.eur)
	return b.intr, b.eur
}

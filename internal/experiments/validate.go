package experiments

import (
	"context"
	"fmt"

	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/parallel"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// ValidationCase is one cell of the §V-B capability-validation grid.
type ValidationCase struct {
	Combo      Combo
	EurekaUtil float64
	PairProp   float64

	TotalJobs, Completed int
	CoStartViolations    int
	Deadlocked           bool
}

// Validation is the full §V-B result: the grid plus the deadlock
// demonstration with and without the release enhancement.
type Validation struct {
	Cases []ValidationCase
	// DeadlockWithoutRelease reports whether the Figure 2 scenario wedged
	// when the enhancement was disabled (the paper observed it does).
	DeadlockWithoutRelease bool
	// DeadlockWithRelease reports whether it wedged with the enhancement
	// on (the paper observed it never does).
	DeadlockWithRelease bool
}

// Passed reports whether every validation criterion of §V-B holds: all
// cases complete all jobs with zero co-start violations, and the deadlock
// appears exactly when the enhancement is off.
func (v *Validation) Passed() bool {
	for _, c := range v.Cases {
		if c.Completed != c.TotalJobs || c.CoStartViolations != 0 || c.Deadlocked {
			return false
		}
	}
	return v.DeadlockWithoutRelease && !v.DeadlockWithRelease
}

// RunValidation executes the capability-validation grid: every scheme
// combination × Eureka load × pair proportion, plus the deadlock
// demonstration. Grid cells are independent (each regenerates its traces
// from the (util, proportion) seed) and fan out across
// Config.Parallelism workers; cases are collected in grid-index order.
func RunValidation(cfg Config) (*Validation, error) {
	cfg = cfg.normalized()
	v := &Validation{}
	utils := []float64{0.25, 0.50, 0.75}
	props := []float64{0.05, 0.10}

	type gridUnit struct {
		ui, pi, ci int
	}
	var units []gridUnit
	for ui := range utils {
		for pi := range props {
			for ci := range Combos {
				units = append(units, gridUnit{ui, pi, ci})
			}
		}
	}

	cases, err := parallel.Map(context.Background(), cfg.workers(), len(units), func(i int) (ValidationCase, error) {
		u := units[i]
		util, prop, combo := utils[u.ui], props[u.pi], Combos[u.ci]
		vc := ValidationCase{Combo: combo, EurekaUtil: util, PairProp: prop}
		seed := cfg.Seed + uint64(u.ui*100+u.pi*10)
		intr, err := intrepidTrace(cfg, seed)
		if err != nil {
			return vc, err
		}
		eur, err := eurekaTraceAtUtil(cfg, seed+1, util)
		if err != nil {
			return vc, err
		}
		rng := workload.NewRNG(seed + 2)
		want := int(float64(len(intr))*prop + 0.5)
		workload.PairNearest(rng,
			workload.Eligible(intr, MaxPairedIntrepidNodes),
			workload.Eligible(eur, MaxPairedEurekaNodes),
			DomIntrepid, DomEureka, want, PairMaxGap)
		cell := &Cell{Combo: combo, X: util}
		if err := runCell(cell, cfg, combo, intr, eur); err != nil {
			return vc, err
		}
		vc.TotalJobs = len(intr) + len(eur)
		vc.Completed = vc.TotalJobs - cell.Stuck
		vc.CoStartViolations = cell.CoStartViol
		vc.Deadlocked = cell.Stuck > 0
		return vc, nil
	})
	if err != nil {
		return nil, err
	}
	v.Cases = cases
	v.DeadlockWithoutRelease = runFig2Scenario(cfg.SchedCore, 0)
	v.DeadlockWithRelease = runFig2Scenario(cfg.SchedCore, cfg.ReleaseInterval)
	return v, nil
}

// runFig2Scenario reproduces the paper's Figure 2 circular-wait scenario
// and reports whether it deadlocked.
func runFig2Scenario(core string, release sim.Duration) bool {
	a1 := job.New(1, 6, 0, 600, 600)
	a2 := job.New(2, 6, 10, 600, 600)
	b2 := job.New(2, 6, 0, 600, 600)
	b1 := job.New(1, 6, 10, 600, 600)
	a1.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	b1.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	a2.Mates = []job.MateRef{{Domain: "B", Job: 2}}
	b2.Mates = []job.MateRef{{Domain: "A", Job: 2}}
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = release
	s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
		{Name: "A", Nodes: 6, Cosched: cfg, Trace: []*job.Job{a1, a2}, SchedCore: core},
		{Name: "B", Nodes: 6, Cosched: cfg, Trace: []*job.Job{b2, b1}, SchedCore: core},
	}})
	if err != nil {
		panic(fmt.Sprintf("experiments: fig2 scenario: %v", err))
	}
	return s.Run().Deadlocked
}

// Table renders the validation grid.
func (v *Validation) Table() *metrics.Table {
	t := metrics.NewTable("Capability validation (§V-B)",
		"combo", "eureka_util", "pair_prop", "jobs", "completed", "co_start_viol", "deadlock")
	for _, c := range v.Cases {
		t.AddRow(c.Combo.Label(),
			fmt.Sprintf("%.2f", c.EurekaUtil),
			fmt.Sprintf("%.0f%%", c.PairProp*100),
			fmt.Sprintf("%d", c.TotalJobs),
			fmt.Sprintf("%d", c.Completed),
			fmt.Sprintf("%d", c.CoStartViolations),
			fmt.Sprintf("%v", c.Deadlocked))
	}
	t.Caption = fmt.Sprintf(
		"Figure 2 deadlock scenario: without release enhancement deadlocked=%v; with it deadlocked=%v",
		v.DeadlockWithoutRelease, v.DeadlockWithRelease)
	return t
}

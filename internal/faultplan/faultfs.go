package faultplan

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
	"syscall"

	"cosched/internal/journal"
)

// ErrCrashed is returned for every operation after a torn-tail fault: the
// process notionally died with half a frame on disk, so nothing later may
// touch the filesystem.
var ErrCrashed = errors.New("faultplan: crashed after torn write")

// FaultFS implements journal.FS over an inner filesystem, replaying the
// journal-seam faults of one Plan. Scheduling is op-indexed per operation
// type: write faults fire on the Nth Write (across all files the store
// opens, WAL and snapshot alike), fsync faults on the Nth Sync, rename
// faults on the Nth Rename — so a schedule replays identically regardless
// of timing. Safe for concurrent use; the store serializes operations
// under its own lock anyway.
type FaultFS struct {
	inner journal.FS

	mu      sync.Mutex
	writes  map[int]Fault // write index -> fault
	syncs   map[int]Fault
	renames map[int]Fault
	nWrite  int
	nSync   int
	nRename int
	crashed bool
	fired   []Fault
}

// NewFaultFS builds a FaultFS replaying plan's journal faults over inner
// (nil inner uses the real disk).
func NewFaultFS(plan *Plan, inner journal.FS) *FaultFS {
	if inner == nil {
		inner = journal.OSFS{}
	}
	f := &FaultFS{
		inner:   inner,
		writes:  map[int]Fault{},
		syncs:   map[int]Fault{},
		renames: map[int]Fault{},
	}
	for _, ft := range plan.ForSeam(SeamJournal) {
		switch ft.Kind {
		case KindShortWrite, KindWriteEIO, KindDiskFull, KindTornTail:
			f.writes[ft.At] = ft
		case KindFsyncEIO:
			f.syncs[ft.At] = ft
		case KindRenameEIO:
			f.renames[ft.At] = ft
		}
	}
	return f
}

// Fired returns the faults that actually triggered, in firing order. A
// scheduled fault whose op index the workload never reached does not
// appear.
func (f *FaultFS) Fired() []Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Fault(nil), f.fired...)
}

// Crashed reports whether a torn-tail fault has fired; the harness treats
// it as the crash point and reopens the journal from disk.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *FaultFS) fire(ft Fault) { f.fired = append(f.fired, ft) }

func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir, perm)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) OpenFile(path string, flag int, perm fs.FileMode) (journal.File, error) {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return nil, ErrCrashed
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	ft, hit := f.renames[f.nRename]
	f.nRename++
	if hit {
		f.fire(ft)
	}
	f.mu.Unlock()
	if hit {
		return fmt.Errorf("faultplan: injected rename failure %s: %w", ft, syscall.EIO)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Truncate(path string, size int64) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.Truncate(path, size)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	crashed := f.crashed
	f.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.SyncDir(dir)
}

var _ journal.FS = (*FaultFS)(nil)

// faultFile interposes the per-handle faults. All handles share the FS's
// op counters, so one plan addresses "the Nth write the store issues"
// whichever file it lands on.
type faultFile struct {
	fs    *FaultFS
	inner journal.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	ft, hit := f.fs.writes[f.fs.nWrite]
	f.fs.nWrite++
	if hit {
		f.fs.fire(ft)
		if ft.Kind == KindTornTail {
			f.fs.crashed = true
		}
	}
	f.fs.mu.Unlock()
	if !hit {
		return f.inner.Write(p)
	}
	switch ft.Kind {
	case KindShortWrite:
		n := int(ft.Arg)
		if n >= len(p) {
			n = len(p) / 2
		}
		if wn, err := f.inner.Write(p[:n]); err != nil {
			return wn, err
		}
		return n, fmt.Errorf("faultplan: injected short write %s: %w", ft, io.ErrShortWrite)
	case KindDiskFull:
		return 0, fmt.Errorf("faultplan: injected disk-full %s: %w", ft, syscall.ENOSPC)
	case KindTornTail:
		// Half the frame reaches disk and the write "succeeds" — the
		// caller believes the record landed, then the process dies. The
		// reopened store must truncate the torn tail away.
		n := len(p) / 2
		if n == 0 {
			n = 1
		}
		if _, err := f.inner.Write(p[:n]); err != nil {
			return 0, err
		}
		return len(p), nil
	default: // KindWriteEIO
		return 0, fmt.Errorf("faultplan: injected write failure %s: %w", ft, syscall.EIO)
	}
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return ErrCrashed
	}
	ft, hit := f.fs.syncs[f.fs.nSync]
	f.fs.nSync++
	if hit {
		f.fs.fire(ft)
	}
	f.fs.mu.Unlock()
	if hit {
		return fmt.Errorf("faultplan: injected fsync failure %s: %w", ft, syscall.EIO)
	}
	return f.inner.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	crashed := f.fs.crashed
	f.fs.mu.Unlock()
	if crashed {
		return ErrCrashed
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Close() error {
	// Close always reaches the real file: leaking descriptors would make
	// the fault harness itself flaky, and close-after-crash models the
	// kernel reaping a dead process's handles.
	return f.inner.Close()
}

// Package faultplan is the deterministic fault-campaign engine: it
// composes fault schedules — what fails, when, and for how long — from a
// single seeded splitmix64 stream and replays them bit-identically. One
// Plan drives three seams at once:
//
//   - the journal's filesystem (FaultFS): short writes, EIO on
//     append/fsync/rename, disk-full, and torn final frames;
//   - the peer wire (PeerScript, consumed by proto.FaultInjector): one-way
//     partitions, slow-link latency ramps, duplicated delivery, connection
//     drops, and whole-server restarts;
//   - the distributed-sweep coordinator (CoordKill): a kill point measured
//     in delivered rows, exercised against the checkpoint/resume path.
//
// Determinism is the contract: New(seed, profile) is a pure function, so
// any failing campaign is reproducible from its seed alone (Plan.Repro
// prints the one-line command). Schedules are op-indexed, not wall-clock
// indexed — the Nth write fails, not the write nearest some instant — so a
// replay under different goroutine interleavings still injects the exact
// same faults.
package faultplan

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
)

// Seam names the subsystem a fault targets. The values double as the
// `seam` label on the cosched_campaign_faults_injected_total metric.
type Seam string

const (
	SeamJournal   Seam = "journal"
	SeamPeerlink  Seam = "peerlink"
	SeamDistsweep Seam = "distsweep"
)

// Kind is a fault class. The comment on each constant states the unit of
// Fault.At for that kind.
type Kind string

const (
	// Journal seam: At counts WAL/snapshot file operations of the matching
	// type (write, fsync, rename) since the FaultFS was built.

	// KindShortWrite truncates the At-th write to Arg bytes and reports
	// io.ErrShortWrite.
	KindShortWrite Kind = "short-write"
	// KindWriteEIO fails the At-th write outright with EIO.
	KindWriteEIO Kind = "write-eio"
	// KindFsyncEIO fails the At-th fsync with EIO (the fsyncgate fault:
	// the store must poison itself, never retry).
	KindFsyncEIO Kind = "fsync-eio"
	// KindRenameEIO fails the At-th rename with EIO.
	KindRenameEIO Kind = "rename-eio"
	// KindDiskFull fails the At-th write with ENOSPC.
	KindDiskFull Kind = "disk-full"
	// KindTornTail writes only half of the At-th write, reports success,
	// and then fails every later operation — a crash that tears the final
	// frame on disk.
	KindTornTail Kind = "torn-tail"

	// Peerlink seam: At counts intercepted calls on one direction's
	// injector (Dir selects the direction), except KindRestart.

	// KindDrop cuts the connection under the At-th call.
	KindDrop Kind = "drop"
	// KindDup delivers the At-th call twice; the duplicate's response is
	// discarded, modeling at-least-once delivery.
	KindDup Kind = "duplicate"
	// KindLatencyRamp delays calls At..At+Len-1, ramping linearly from 0
	// up to Arg microseconds — a link going slowly bad.
	KindLatencyRamp Kind = "latency-ramp"
	// KindPartition fails calls At..At+Len-1 outright on this direction
	// only — a one-way partition. Unlike drops and latency, partition
	// errors surface to Algorithm 1 as "status unknown", so the paper's
	// fault-tolerance fallback (start normally) legitimately fires.
	KindPartition Kind = "one-way-partition"
	// KindRestart restarts every peer server at virtual second At.
	KindRestart Kind = "server-restart"

	// Distsweep seam.

	// KindCoordKill abandons the coordinator after the At-th delivered
	// row; the campaign then resumes a fresh coordinator from the
	// checkpoint file.
	KindCoordKill Kind = "coordinator-kill"
)

// Fault is one scheduled injection.
type Fault struct {
	Seam Seam `json:"seam"`
	Kind Kind `json:"kind"`
	// Dir selects the peer direction (link) for peerlink faults; 0
	// elsewhere.
	Dir int `json:"dir,omitempty"`
	// At is the op index the fault fires at; units per Kind.
	At int `json:"at"`
	// Len is the window length in ops for windowed kinds.
	Len int `json:"len,omitempty"`
	// Arg is the kind-specific magnitude (bytes for short writes,
	// microseconds for latency ramps).
	Arg int64 `json:"arg,omitempty"`
}

func (f Fault) String() string {
	s := fmt.Sprintf("%s/%s@%d", f.Seam, f.Kind, f.At)
	if f.Seam == SeamPeerlink && f.Kind != KindRestart {
		s = fmt.Sprintf("%s/%s[dir%d]@%d", f.Seam, f.Kind, f.Dir, f.At)
	}
	if f.Len > 0 {
		s += fmt.Sprintf("+%d", f.Len)
	}
	if f.Arg > 0 {
		s += fmt.Sprintf("(%d)", f.Arg)
	}
	return s
}

// Plan is one campaign's full fault schedule, a pure function of
// (Seed, Profile).
type Plan struct {
	Seed   uint64  `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Profile bounds what New may schedule. The zero value is not useful;
// start from DefaultProfile.
type Profile struct {
	// JournalWrites is the write-op horizon journal faults scatter over;
	// JournalFaultMax bounds how many journal faults one campaign draws
	// (0..max uniformly, so some campaigns leave the journal untouched —
	// those are the "surviving" runs that gate full recovery equality).
	JournalWrites   int
	JournalFaultMax int

	// PeerDirections is how many independent call streams (links) the
	// campaign drives; PeerCalls is the per-direction call horizon.
	PeerDirections int
	PeerCalls      int
	// DropsMax / DupsMax bound the per-direction single-call faults.
	DropsMax int
	DupsMax  int
	// RampsMax latency ramps per direction, each up to RampLenMax calls
	// long and RampMaxMicros microseconds at the top of the ramp.
	RampsMax      int
	RampLenMax    int
	RampMaxMicros int64
	// PartitionChance is the per-direction probability of one one-way
	// partition window of up to PartitionLenMax calls.
	PartitionChance float64
	PartitionLenMax int
	// RestartsMax server-restart instants, drawn in [1, RestartSpanSec].
	RestartsMax    int
	RestartSpanSec int

	// SweepRows is the distsweep row horizon; CoordKillChance the
	// probability the campaign kills the coordinator mid-sweep.
	SweepRows       int
	CoordKillChance float64
}

// DefaultProfile is the campaign shape the chaos gate runs.
func DefaultProfile() Profile {
	return Profile{
		JournalWrites:   400,
		JournalFaultMax: 2,
		PeerDirections:  2,
		PeerCalls:       2000,
		DropsMax:        30,
		DupsMax:         20,
		RampsMax:        2,
		RampLenMax:      200,
		RampMaxMicros:   150,
		PartitionChance: 0.35,
		PartitionLenMax: 250,
		RestartsMax:     2,
		RestartSpanSec:  4 * 3600,
		SweepRows:       12,
		CoordKillChance: 0.75,
	}
}

// New derives the campaign schedule for seed under p. It is a pure
// function: the same (seed, p) always yields the same Plan, which is what
// makes every campaign replayable from its one-line repro command.
func New(seed uint64, p Profile) *Plan {
	plan := &Plan{Seed: seed}
	add := func(f Fault) { plan.Faults = append(plan.Faults, f) }

	// Each seam draws from its own derived stream, so one seam's draw
	// count never shifts another seam's schedule.
	js := NewStream(seed).Derive("journal")
	jKinds := []Kind{KindShortWrite, KindWriteEIO, KindFsyncEIO, KindRenameEIO, KindDiskFull, KindTornTail}
	for i, n := 0, js.Intn(p.JournalFaultMax+1); i < n; i++ {
		k := jKinds[js.Intn(len(jKinds))]
		f := Fault{Seam: SeamJournal, Kind: k, At: js.Intn(p.JournalWrites)}
		switch k {
		case KindShortWrite:
			f.Arg = int64(1 + js.Intn(7)) // leave 1..7 bytes: inside the frame header or the payload
		case KindFsyncEIO:
			// Fsyncs are about as frequent as writes (interval 0 in the
			// campaign); reuse the write horizon.
		case KindRenameEIO:
			f.At = js.Intn(4) // renames are rare (one per compact)
		}
		add(f)
	}

	ps := NewStream(seed).Derive("peerlink")
	for dir := 0; dir < p.PeerDirections; dir++ {
		for i, n := 0, ps.Intn(p.DropsMax+1); i < n; i++ {
			add(Fault{Seam: SeamPeerlink, Kind: KindDrop, Dir: dir, At: ps.Intn(p.PeerCalls)})
		}
		for i, n := 0, ps.Intn(p.DupsMax+1); i < n; i++ {
			add(Fault{Seam: SeamPeerlink, Kind: KindDup, Dir: dir, At: ps.Intn(p.PeerCalls)})
		}
		for i, n := 0, ps.Intn(p.RampsMax+1); i < n; i++ {
			add(Fault{
				Seam: SeamPeerlink, Kind: KindLatencyRamp, Dir: dir,
				At:  ps.Intn(p.PeerCalls),
				Len: 1 + ps.Intn(p.RampLenMax),
				Arg: 1 + int64(ps.Intn(int(p.RampMaxMicros))),
			})
		}
		if ps.Float64() < p.PartitionChance {
			add(Fault{
				Seam: SeamPeerlink, Kind: KindPartition, Dir: dir,
				At:  ps.Intn(p.PeerCalls),
				Len: 1 + ps.Intn(p.PartitionLenMax),
			})
		}
	}
	for i, n := 0, ps.Intn(p.RestartsMax+1); i < n; i++ {
		add(Fault{Seam: SeamPeerlink, Kind: KindRestart, At: 1 + ps.Intn(p.RestartSpanSec)})
	}

	ds := NewStream(seed).Derive("distsweep")
	if ds.Float64() < p.CoordKillChance {
		add(Fault{Seam: SeamDistsweep, Kind: KindCoordKill, At: 1 + ds.Intn(p.SweepRows-1)})
	}

	sort.SliceStable(plan.Faults, func(a, b int) bool {
		x, y := plan.Faults[a], plan.Faults[b]
		if x.Seam != y.Seam {
			return x.Seam < y.Seam
		}
		if x.Dir != y.Dir {
			return x.Dir < y.Dir
		}
		if x.At != y.At {
			return x.At < y.At
		}
		return x.Kind < y.Kind
	})
	return plan
}

// Seam returns the plan's faults for one seam, in schedule order.
func (p *Plan) ForSeam(s Seam) []Fault {
	var out []Fault
	for _, f := range p.Faults {
		if f.Seam == s {
			out = append(out, f)
		}
	}
	return out
}

// Peer returns the peerlink faults for one direction (KindRestart faults,
// which are direction-less, are excluded).
func (p *Plan) Peer(dir int) []Fault {
	var out []Fault
	for _, f := range p.Faults {
		if f.Seam == SeamPeerlink && f.Kind != KindRestart && f.Dir == dir {
			out = append(out, f)
		}
	}
	return out
}

// Restarts returns the scheduled server-restart instants in virtual
// seconds, ascending.
func (p *Plan) Restarts() []int {
	var out []int
	for _, f := range p.Faults {
		if f.Kind == KindRestart {
			out = append(out, f.At)
		}
	}
	sort.Ints(out)
	return out
}

// CoordKill returns the distsweep kill point in delivered rows, or -1 if
// this campaign leaves the coordinator alone.
func (p *Plan) CoordKill() int {
	for _, f := range p.Faults {
		if f.Kind == KindCoordKill {
			return f.At
		}
	}
	return -1
}

// Has reports whether the plan schedules any fault of the given kind.
func (p *Plan) Has(k Kind) bool {
	for _, f := range p.Faults {
		if f.Kind == k {
			return true
		}
	}
	return false
}

// Encode renders the plan canonically; two plans are bit-identical iff
// their encodings are equal. Campaigns gate on this to prove replay.
func (p *Plan) Encode() []byte {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("faultplan: encode: %v", err)) // no unmarshalable types in Plan
	}
	return b
}

func (p *Plan) String() string {
	if len(p.Faults) == 0 {
		return fmt.Sprintf("seed %d: no faults", p.Seed)
	}
	s := fmt.Sprintf("seed %d: %d faults:", p.Seed, len(p.Faults))
	for _, f := range p.Faults {
		s += " " + f.String()
	}
	return s
}

// Repro is the one-line command that replays exactly this campaign.
func (p *Plan) Repro() string {
	return fmt.Sprintf("go run ./cmd/experiments -chaoscampaign 1 -chaosseed %d", p.Seed)
}

// Stream is a splitmix64 PRNG — the same generator the workload and
// fault-injector layers use, kept local so the plan layer has no
// dependencies.
type Stream struct{ state uint64 }

// NewStream returns a stream seeded with seed.
func NewStream(seed uint64) *Stream { return &Stream{state: seed} }

// Next returns the next 64 uniform bits.
func (s *Stream) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Next()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). n <= 0 returns 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Next() % uint64(n))
}

// Derive returns a child stream whose state folds the label into the
// parent's next draw, so differently-labeled children are independent and
// one child's draw count never shifts a sibling's sequence. Derivation
// order from one parent matters only if the same parent is also used for
// draws; the plan generator derives all children from fresh parents.
func (s *Stream) Derive(label string) *Stream {
	h := fnv.New64a()
	h.Write([]byte(label))
	return NewStream(s.Next() ^ h.Sum64())
}

package faultplan_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cosched/internal/faultplan"
	"cosched/internal/journal"
)

// TestPlanDeterministic is the engine's core contract: New is a pure
// function of (seed, profile), so any campaign replays bit-identically
// from its seed alone.
func TestPlanDeterministic(t *testing.T) {
	prof := faultplan.DefaultProfile()
	encodings := map[string]bool{}
	for seed := uint64(1); seed <= 100; seed++ {
		a := faultplan.New(seed, prof).Encode()
		b := faultplan.New(seed, prof).Encode()
		if !bytes.Equal(a, b) {
			t.Fatalf("seed %d: two generations differ:\n%s\n%s", seed, a, b)
		}
		encodings[string(a)] = true
	}
	// Seeds must actually spread: near-identical schedules would make the
	// campaign a single test run in disguise.
	if len(encodings) < 95 {
		t.Fatalf("only %d distinct plans across 100 seeds", len(encodings))
	}
}

// TestPlanSeamsAreIndependent: one seam's draws never shift another's.
// Zeroing out the journal seam (JournalFaultMax=0) must leave the peerlink
// and distsweep schedules untouched.
func TestPlanSeamsAreIndependent(t *testing.T) {
	prof := faultplan.DefaultProfile()
	noJournal := prof
	noJournal.JournalFaultMax = 0
	for seed := uint64(1); seed <= 50; seed++ {
		full := faultplan.New(seed, prof)
		slim := faultplan.New(seed, noJournal)
		for _, seam := range []faultplan.Seam{faultplan.SeamPeerlink, faultplan.SeamDistsweep} {
			a := fmt.Sprint(full.ForSeam(seam))
			b := fmt.Sprint(slim.ForSeam(seam))
			if a != b {
				t.Fatalf("seed %d: %s schedule shifted when the journal seam was disabled:\n%s\n%s", seed, seam, a, b)
			}
		}
	}
}

func TestPlanReproNamesSeed(t *testing.T) {
	p := faultplan.New(77, faultplan.DefaultProfile())
	if want := "-chaosseed 77"; !strings.Contains(p.Repro(), want) {
		t.Fatalf("Repro() = %q, want it to contain %q", p.Repro(), want)
	}
}

func TestStreamDeriveIsStableAndIndependent(t *testing.T) {
	a1 := faultplan.NewStream(9).Derive("journal")
	a2 := faultplan.NewStream(9).Derive("journal")
	b := faultplan.NewStream(9).Derive("peerlink")
	same, diff := 0, 0
	for i := 0; i < 64; i++ {
		x := a1.Next()
		if x == a2.Next() {
			same++
		}
		if x != b.Next() {
			diff++
		}
	}
	if same != 64 {
		t.Fatalf("identical derivations agreed on %d/64 draws", same)
	}
	if diff < 60 {
		t.Fatalf("differently-labeled derivations collided on %d/64 draws", 64-diff)
	}
}

// TestFaultFSReplaysJournalSchedule drives a hand-built plan through a
// FaultFS on the real disk and checks each fault lands on its exact op
// index with its exact failure mode.
func TestFaultFSReplaysJournalSchedule(t *testing.T) {
	plan := &faultplan.Plan{Seed: 1, Faults: []faultplan.Fault{
		{Seam: faultplan.SeamJournal, Kind: faultplan.KindShortWrite, At: 1, Arg: 3},
		{Seam: faultplan.SeamJournal, Kind: faultplan.KindDiskFull, At: 2},
		{Seam: faultplan.SeamJournal, Kind: faultplan.KindFsyncEIO, At: 1},
		{Seam: faultplan.SeamJournal, Kind: faultplan.KindRenameEIO, At: 0},
		{Seam: faultplan.SeamJournal, Kind: faultplan.KindTornTail, At: 3},
	}}
	ffs := faultplan.NewFaultFS(plan, nil)
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")

	// Write 0: clean.
	if n, err := f.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("write 0 = (%d, %v), want clean", n, err)
	}
	// Write 1: short — 3 bytes land, io.ErrShortWrite reported.
	if n, err := f.Write(payload); !errors.Is(err, io.ErrShortWrite) || n != 3 {
		t.Fatalf("write 1 = (%d, %v), want (3, ErrShortWrite)", n, err)
	}
	// Write 2: disk full, nothing lands.
	if _, err := f.Write(payload); !journal.IsDiskFull(err) {
		t.Fatalf("write 2 = %v, want ENOSPC", err)
	}
	// Sync 0: clean; sync 1: EIO.
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 0 = %v, want clean", err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync 1 = %v, want EIO", err)
	}
	// Rename 0: EIO, file untouched.
	if err := ffs.Rename(path, path+".new"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("rename 0 = %v, want EIO", err)
	}
	// Write 3: torn tail — reports full success, half lands, then the
	// process is notionally dead.
	if n, err := f.Write(payload); err != nil || n != len(payload) {
		t.Fatalf("write 3 = (%d, %v), want silent success", n, err)
	}
	if !ffs.Crashed() {
		t.Fatal("torn tail did not crash the FS")
	}
	for name, op := range map[string]func() error{
		"Write":    func() error { _, err := f.Write(payload); return err },
		"Sync":     func() error { return f.Sync() },
		"ReadFile": func() error { _, err := ffs.ReadFile(path); return err },
		"Rename":   func() error { return ffs.Rename(path, path+".x") },
		"OpenFile": func() error { _, err := ffs.OpenFile(path, os.O_RDONLY, 0); return err },
	} {
		if err := op(); !errors.Is(err, faultplan.ErrCrashed) {
			t.Fatalf("%s after crash = %v, want ErrCrashed", name, err)
		}
	}
	if err := f.Close(); err != nil { // close models the kernel reaping fds
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// 10 (clean) + 3 (short) + 0 (enospc) + 5 (torn half of 10).
	if len(data) != 18 {
		t.Fatalf("on-disk bytes = %d, want 18", len(data))
	}
	if fired := ffs.Fired(); len(fired) != 5 {
		t.Fatalf("fired = %v, want all 5 faults", fired)
	}
}

// TestFaultFSPoisonsStore wires a FaultFS under a real journal.Store: the
// injected fsync failure must latch the store exactly as a real disk
// fault would.
func TestFaultFSPoisonsStore(t *testing.T) {
	plan := &faultplan.Plan{Seed: 2, Faults: []faultplan.Fault{
		{Seam: faultplan.SeamJournal, Kind: faultplan.KindFsyncEIO, At: 2},
	}}
	ffs := faultplan.NewFaultFS(plan, nil)
	s, err := journal.Open(t.TempDir(), journal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var appendErr error
	for i := 0; i < 5; i++ {
		if appendErr = s.Append(&journal.Entry{Op: journal.OpHold, Job: 1}); appendErr != nil {
			break
		}
	}
	if !errors.Is(appendErr, syscall.EIO) {
		t.Fatalf("append run = %v, want the injected EIO", appendErr)
	}
	if s.Poisoned() == nil {
		t.Fatal("store not poisoned by injected fsync failure")
	}
	if len(ffs.Fired()) != 1 {
		t.Fatalf("fired = %v, want exactly the scheduled fsync fault", ffs.Fired())
	}
}

// TestPeerScriptReplaysDirectives checks the call-indexed mapping from
// plan faults to injector directives: drops, dups, the linear latency
// ramp, and the partition window.
func TestPeerScriptReplaysDirectives(t *testing.T) {
	plan := &faultplan.Plan{Seed: 3, Faults: []faultplan.Fault{
		{Seam: faultplan.SeamPeerlink, Kind: faultplan.KindDrop, Dir: 0, At: 2},
		{Seam: faultplan.SeamPeerlink, Kind: faultplan.KindDup, Dir: 0, At: 3},
		{Seam: faultplan.SeamPeerlink, Kind: faultplan.KindLatencyRamp, Dir: 0, At: 5, Len: 4, Arg: 100},
		{Seam: faultplan.SeamPeerlink, Kind: faultplan.KindPartition, Dir: 0, At: 10, Len: 3},
		// Direction 1 faults must not leak into direction 0's script.
		{Seam: faultplan.SeamPeerlink, Kind: faultplan.KindDrop, Dir: 1, At: 0},
	}}
	s := faultplan.NewPeerScript(plan, 0)
	for i := 0; i < 15; i++ {
		d := s.NextCall()
		if got, want := d.Drop, i == 2; got != want {
			t.Fatalf("call %d: Drop = %v, want %v", i, got, want)
		}
		if got, want := d.Duplicate, i == 3; got != want {
			t.Fatalf("call %d: Duplicate = %v, want %v", i, got, want)
		}
		if got, want := d.Fail, i >= 10 && i < 13; got != want {
			t.Fatalf("call %d: Fail = %v, want %v", i, got, want)
		}
		inRamp := i >= 5 && i < 9
		if (d.Delay > 0) != inRamp {
			t.Fatalf("call %d: Delay = %v, want ramp=%v", i, d.Delay, inRamp)
		}
		if i == 8 && d.Delay != 100*time.Microsecond {
			t.Fatalf("ramp top delay = %v, want 100µs", d.Delay)
		}
	}
	dropped, dupped, failed, delayed := s.Stats()
	if dropped != 1 || dupped != 1 || failed != 3 || delayed != 4 {
		t.Fatalf("stats = %d/%d/%d/%d, want 1/1/3/4", dropped, dupped, failed, delayed)
	}
	if !s.Partitioned() {
		t.Fatal("Partitioned() = false after partition window fired")
	}
	if fired := s.Fired(); len(fired) != 4 {
		t.Fatalf("fired = %v, want the 4 dir-0 faults (windowed ones once)", fired)
	}
}

package faultplan

import (
	"sync"
	"time"

	"cosched/internal/proto"
)

// PeerScript replays one direction's peerlink faults call by call; it
// implements proto.CallScript and plugs into a proto.FaultInjector via
// WithScript. Calls are indexed from 0 in interception order, which under
// a virtual-clock harness is deterministic, so the same plan always hits
// the same calls.
type PeerScript struct {
	mu      sync.Mutex
	n       int
	drops   map[int]Fault
	dups    map[int]Fault
	ramps   []Fault // windowed: sorted by At
	parts   []Fault // windowed: sorted by At
	fired   []Fault
	dropped int
	dupped  int
	failed  int
	delayed int
}

// NewPeerScript builds the script for direction dir of plan.
func NewPeerScript(plan *Plan, dir int) *PeerScript {
	s := &PeerScript{drops: map[int]Fault{}, dups: map[int]Fault{}}
	for _, f := range plan.Peer(dir) {
		switch f.Kind {
		case KindDrop:
			s.drops[f.At] = f
		case KindDup:
			s.dups[f.At] = f
		case KindLatencyRamp:
			s.ramps = append(s.ramps, f)
		case KindPartition:
			s.parts = append(s.parts, f)
		}
	}
	return s
}

// NextCall implements proto.CallScript: the directive for the next
// intercepted call.
func (s *PeerScript) NextCall() proto.CallDirective {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := s.n
	s.n++
	var d proto.CallDirective
	if f, ok := s.drops[i]; ok {
		d.Drop = true
		s.dropped++
		s.fired = append(s.fired, f)
	}
	if f, ok := s.dups[i]; ok {
		d.Duplicate = true
		s.dupped++
		s.fired = append(s.fired, f)
	}
	for _, f := range s.ramps {
		if i >= f.At && i < f.At+f.Len {
			// Linear ramp: the link degrades across the window, from
			// near-zero to Arg microseconds at the top.
			frac := float64(i-f.At+1) / float64(f.Len)
			d.Delay = time.Duration(frac*float64(f.Arg)) * time.Microsecond
			s.delayed++
			if i == f.At {
				s.fired = append(s.fired, f)
			}
		}
	}
	for _, f := range s.parts {
		if i >= f.At && i < f.At+f.Len {
			d.Fail = true
			s.failed++
			if i == f.At {
				s.fired = append(s.fired, f)
			}
		}
	}
	return d
}

// Fired returns the faults that actually triggered (windowed faults count
// once, at their first covered call).
func (s *PeerScript) Fired() []Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Fault(nil), s.fired...)
}

// Stats returns how many calls were dropped, duplicated, failed
// (partition), and delayed (ramp), in that order.
func (s *PeerScript) Stats() (dropped, dupped, failed, delayed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped, s.dupped, s.failed, s.delayed
}

// Partitioned reports whether any partition window overlapped a call that
// actually happened — the faults whose errors Algorithm 1 is allowed to
// answer with an unpaired fallback start.
func (s *PeerScript) Partitioned() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed > 0
}

var _ proto.CallScript = (*PeerScript)(nil)

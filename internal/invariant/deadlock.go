package invariant

import (
	"fmt"
	"sort"
	"strings"

	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// Monitor correlates job state across every registered scheduling domain
// and detects the paper's HH deadlock (Fig. 2) as it forms: each domain
// is mutually exclusive and non-preemptive, a holding job holds nodes
// while waiting for its mate (hold-and-wait), so the one condition left
// to detect is the circular wait. The monitor rebuilds the cross-domain
// wait-for graph at every observed lifecycle event:
//
//	holding job h (domain A)  →  every holding job of domain B
//
// whenever h's mate in B is still queued and B's pool cannot allocate it
// — h cannot start until B's holders give nodes back. A cycle in this
// graph is a circular wait, recorded at the event where it closes.
//
// The release-interval enhancement (§IV-E1) promises that every such
// cycle is transient: the release scan returns all held nodes no later
// than HoldStart + ReleaseInterval, so a cycle observed to outlive the
// largest ReleaseInterval among its domains is a broken enhancement and
// is recorded as a violation (and panics under -tags debug). When any
// involved domain runs with the enhancement disabled a cycle is a true
// deadlock by design, so it stays a detection only — tests assert on it
// directly.
type Monitor struct {
	domains map[string]*resmgr.Manager
	order   []string

	active     map[string]*cycleState
	detections []Cycle
	violations []string
	scans      int
}

// Cycle is one detected circular wait.
type Cycle struct {
	// Nodes are the participating holding jobs as "domain/jobID" strings,
	// sorted — the canonical form used to track cycle identity.
	Nodes []string
	// Start is the event time at which the cycle was first observed.
	Start sim.Time
}

// cycleState tracks one live cycle between scans.
type cycleState struct {
	start    sim.Time
	violated bool
}

// NewMonitor returns an empty monitor; Register each domain, then Tap the
// per-domain observer chains so every lifecycle event triggers a scan.
func NewMonitor() *Monitor {
	return &Monitor{
		domains: make(map[string]*resmgr.Manager),
		active:  make(map[string]*cycleState),
	}
}

// Register adds one domain to the wait-for graph. Registration order is
// the deterministic scan order.
func (mon *Monitor) Register(mgr *resmgr.Manager) {
	name := mgr.Name()
	if _, dup := mon.domains[name]; !dup {
		mon.order = append(mon.order, name)
	}
	mon.domains[name] = mgr
}

// Detections returns every cycle ever observed, in detection order.
func (mon *Monitor) Detections() []Cycle { return mon.detections }

// Violations returns the cycles that outlived the release-interval
// guarantee, formatted like Auditor violations.
func (mon *Monitor) Violations() []string { return mon.violations }

// Scans returns how many wait-for-graph scans have run.
func (mon *Monitor) Scans() int { return mon.scans }

// Tap wraps inner (nil allowed) so that every observer event runs a
// wait-for-graph scan before forwarding. Attach one tap per domain.
func (mon *Monitor) Tap(inner resmgr.Observer) resmgr.Observer {
	if inner == nil {
		inner = resmgr.NullObserver{}
	}
	return &tap{mon: mon, inner: inner}
}

// scan rebuilds the cross-domain wait-for graph and reconciles the set of
// live cycles against the previously observed ones.
func (mon *Monitor) scan(now sim.Time) {
	mon.scans++
	adj := mon.waitForGraph()
	seen := make(map[string]bool)
	for _, nodes := range cycleComponents(adj) {
		key := strings.Join(nodes, ",")
		seen[key] = true
		st := mon.active[key]
		if st == nil {
			st = &cycleState{start: now}
			mon.active[key] = st
			mon.detections = append(mon.detections, Cycle{Nodes: nodes, Start: now})
		}
		interval, enhanced := mon.releaseBound(nodes)
		if enhanced && now > st.start+interval && !st.violated {
			st.violated = true
			v := fmt.Sprintf("t=%d circular wait [%s] outlived the release interval %d (formed t=%d): the §IV-E1 enhancement failed to break it",
				now, key, interval, st.start)
			mon.violations = append(mon.violations, v)
			debugFatal(v)
		}
	}
	for key := range mon.active {
		if !seen[key] {
			delete(mon.active, key)
		}
	}
}

// waitForGraph builds the adjacency map in deterministic order: domains
// in registration order, holders sorted by job ID, mates in declaration
// order.
func (mon *Monitor) waitForGraph() map[string][]string {
	holders := make(map[string][]*job.Job, len(mon.order))
	for _, name := range mon.order {
		var hs []*job.Job
		for _, j := range mon.domains[name].Jobs() {
			if j.State == job.Holding {
				hs = append(hs, j)
			}
		}
		sort.Slice(hs, func(a, b int) bool { return hs[a].ID < hs[b].ID })
		holders[name] = hs
	}
	adj := make(map[string][]string)
	for _, name := range mon.order {
		for _, h := range holders[name] {
			from := name + "/" + fmt.Sprint(h.ID)
			for _, ref := range h.Mates {
				remote, ok := mon.domains[ref.Domain]
				if !ok {
					continue // unregistered domain: outside the audited system
				}
				mate, ok := remote.Job(ref.Job)
				if !ok || mate.State != job.Queued || remote.Pool().CanAllocate(mate.Nodes) {
					continue // mate not blocked on held capacity
				}
				for _, b := range holders[ref.Domain] {
					adj[from] = append(adj[from], ref.Domain+"/"+fmt.Sprint(b.ID))
				}
			}
		}
	}
	return adj
}

// releaseBound returns the largest ReleaseInterval among the cycle's
// domains and whether every one of them has the enhancement enabled.
func (mon *Monitor) releaseBound(nodes []string) (sim.Duration, bool) {
	var bound sim.Duration
	for _, n := range nodes {
		name, _, _ := strings.Cut(n, "/")
		iv := mon.domains[name].Config().ReleaseInterval
		if iv <= 0 {
			return 0, false
		}
		if iv > bound {
			bound = iv
		}
	}
	return bound, true
}

// cycleComponents returns the strongly connected components of size ≥ 2
// (every edge crosses domains, so self-loops cannot occur), each sorted
// into canonical form, ordered deterministically by their first node.
func cycleComponents(adj map[string][]string) [][]string {
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	t := &tarjan{adj: adj, index: make(map[string]int), low: make(map[string]int), on: make(map[string]bool)}
	for _, k := range keys {
		if _, visited := t.index[k]; !visited {
			t.strongconnect(k)
		}
	}
	var out [][]string
	for _, scc := range t.sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		out = append(out, scc)
	}
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}

// tarjan is a standard recursive Tarjan SCC pass; wait-for graphs are a
// handful of nodes, so recursion depth is never a concern.
type tarjan struct {
	adj   map[string][]string
	index map[string]int
	low   map[string]int
	on    map[string]bool
	stack []string
	next  int
	sccs  [][]string
}

func (t *tarjan) strongconnect(v string) {
	t.index[v] = t.next
	t.low[v] = t.next
	t.next++
	t.stack = append(t.stack, v)
	t.on[v] = true
	for _, w := range t.adj[v] {
		if _, visited := t.index[w]; !visited {
			t.strongconnect(w)
			if t.low[w] < t.low[v] {
				t.low[v] = t.low[w]
			}
		} else if t.on[w] && t.index[w] < t.low[v] {
			t.low[v] = t.index[w]
		}
	}
	if t.low[v] != t.index[v] {
		return
	}
	var scc []string
	for {
		w := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.on[w] = false
		scc = append(scc, w)
		if w == v {
			break
		}
	}
	t.sccs = append(t.sccs, scc)
}

// tap is the per-domain observer adapter: scan, then forward.
type tap struct {
	mon   *Monitor
	inner resmgr.Observer
}

var _ resmgr.Observer = (*tap)(nil)

func (t *tap) JobSubmitted(now sim.Time, j *job.Job) { t.mon.scan(now); t.inner.JobSubmitted(now, j) }
func (t *tap) JobStarted(now sim.Time, j *job.Job)   { t.mon.scan(now); t.inner.JobStarted(now, j) }
func (t *tap) JobCompleted(now sim.Time, j *job.Job) { t.mon.scan(now); t.inner.JobCompleted(now, j) }
func (t *tap) JobHeld(now sim.Time, j *job.Job)      { t.mon.scan(now); t.inner.JobHeld(now, j) }
func (t *tap) JobYielded(now sim.Time, j *job.Job)   { t.mon.scan(now); t.inner.JobYielded(now, j) }
func (t *tap) JobReleased(now sim.Time, j *job.Job, requeued bool) {
	t.mon.scan(now)
	t.inner.JobReleased(now, j, requeued)
}
func (t *tap) JobCancelled(now sim.Time, j *job.Job) { t.mon.scan(now); t.inner.JobCancelled(now, j) }

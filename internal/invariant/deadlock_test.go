package invariant

import (
	"strings"
	"testing"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// fig2Monitored rebuilds the paper's Figure 2 HH deadlock with the
// wait-for-graph monitor tapped into both domains: a1 holds all of A
// waiting for b1 (queued on a full B), b2 holds all of B waiting for a2
// (queued on a full A). The cycle closes at t=10 when the second pair's
// submissions land.
func fig2Monitored(t *testing.T, release sim.Duration) (*sim.Engine, *Monitor, [4]*job.Job) {
	t.Helper()
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = release
	eng := sim.NewEngine()
	mon := NewMonitor()
	a := resmgr.New(eng, resmgr.Options{
		Name: "A", Pool: cluster.New("A", 6),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfg,
		Observer: mon.Tap(nil),
	})
	b := resmgr.New(eng, resmgr.Options{
		Name: "B", Pool: cluster.New("B", 6),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfg,
		Observer: mon.Tap(nil),
	})
	a.AddPeer("B", b)
	b.AddPeer("A", a)
	mon.Register(a)
	mon.Register(b)

	a1 := job.New(1, 6, 0, 600, 600)
	a2 := job.New(2, 6, 10, 600, 600)
	b2 := job.New(2, 6, 0, 600, 600)
	b1 := job.New(1, 6, 10, 600, 600)
	a1.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	b1.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	a2.Mates = []job.MateRef{{Domain: "B", Job: 2}}
	b2.Mates = []job.MateRef{{Domain: "A", Job: 2}}
	for _, j := range []*job.Job{a1, a2} {
		if err := a.SubmitAt(j); err != nil {
			t.Fatalf("submit A/%d: %v", j.ID, err)
		}
	}
	for _, j := range []*job.Job{b2, b1} {
		if err := b.SubmitAt(j); err != nil {
			t.Fatalf("submit B/%d: %v", j.ID, err)
		}
	}
	return eng, mon, [4]*job.Job{a1, a2, b1, b2}
}

// TestDeadlockDetectedAtCycleClose: with the release enhancement
// disabled, the Figure 2 circular wait forms and wedges; the monitor
// must record exactly one cycle, at the t=10 event where the second
// pair's submissions close the loop, with the two holders as its nodes.
func TestDeadlockDetectedAtCycleClose(t *testing.T) {
	eng, mon, jobs := fig2Monitored(t, 0)
	eng.Run()
	if jobs[0].State != job.Holding || jobs[3].State != job.Holding {
		t.Fatalf("scenario drifted: a1=%s b2=%s, want both holding", jobs[0].State, jobs[3].State)
	}
	det := mon.Detections()
	if len(det) != 1 {
		t.Fatalf("detections = %d, want exactly 1 (one persistent cycle)", len(det))
	}
	if got := strings.Join(det[0].Nodes, ","); got != "A/1,B/2" {
		t.Errorf("cycle nodes = %q, want A/1,B/2", got)
	}
	if det[0].Start != 10 {
		t.Errorf("cycle detected at t=%d, want t=10 (the event that closes it)", det[0].Start)
	}
	// With the enhancement off a circular wait is a true deadlock by
	// design, not a violated guarantee.
	if v := mon.Violations(); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
	if mon.Scans() == 0 {
		t.Error("monitor observed no events")
	}
}

// TestDeadlockClearedByReleaseInterval: with the §IV-E1 enhancement on,
// the same cycle must form and then be broken within one release
// interval — detected, never violated, and every job completes.
func TestDeadlockClearedByReleaseInterval(t *testing.T) {
	eng, mon, jobs := fig2Monitored(t, 20*sim.Minute)
	eng.Run()
	for _, j := range jobs {
		if j.State != job.Completed {
			t.Fatalf("job %s not completed; deadlock not broken", j)
		}
	}
	if len(mon.Detections()) == 0 {
		t.Fatal("the transient circular wait was never detected")
	}
	if v := mon.Violations(); len(v) != 0 {
		t.Errorf("cycle outlived the release interval: %v", v)
	}
}

// TestCycleOutlivingIntervalIsViolation drives the monitor's clock past
// the release guarantee by hand: the engine is frozen right after the
// cycle closes, so scanning at start+interval+1 must record a violation
// (and panic in the debug build, where violations fail fast).
func TestCycleOutlivingIntervalIsViolation(t *testing.T) {
	interval := 20 * sim.Minute
	eng, mon, _ := fig2Monitored(t, interval)
	eng.RunUntil(10)
	if n := len(mon.Detections()); n != 1 {
		t.Fatalf("detections after t=10: %d, want 1", n)
	}
	start := mon.Detections()[0].Start

	if Hardened {
		defer func() {
			if r := recover(); r == nil {
				t.Error("debug build: expected the violation to panic")
			} else if !strings.Contains(r.(string), "outlived the release interval") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
	}
	mon.scan(start + interval + 1)
	if v := mon.Violations(); len(v) != 1 {
		t.Fatalf("violations = %d, want 1", len(v))
	} else if !strings.Contains(v[0], "outlived the release interval") {
		t.Errorf("violation text: %s", v[0])
	}
	// The violation is reported once, not on every later scan.
	mon.scan(start + interval + 2)
	if v := mon.Violations(); len(v) != 1 {
		t.Errorf("violation repeated: %v", v)
	}
}

// TestNoFalseCyclesWhenCapacitySuffices: pairs that co-start without
// contention must never appear in the wait-for graph.
func TestNoFalseCyclesWhenCapacitySuffices(t *testing.T) {
	cfg := cosched.DefaultConfig(cosched.Hold)
	cfg.ReleaseInterval = 20 * sim.Minute
	eng := sim.NewEngine()
	mon := NewMonitor()
	a := resmgr.New(eng, resmgr.Options{
		Name: "A", Pool: cluster.New("A", 100),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfg,
		Observer: mon.Tap(nil),
	})
	b := resmgr.New(eng, resmgr.Options{
		Name: "B", Pool: cluster.New("B", 100),
		Policy: policy.FCFS{}, Backfilling: true, Cosched: cfg,
		Observer: mon.Tap(nil),
	})
	a.AddPeer("B", b)
	b.AddPeer("A", a)
	mon.Register(a)
	mon.Register(b)
	ja := job.New(1, 10, 0, 600, 600)
	jb := job.New(1, 10, 30, 600, 600)
	ja.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	jb.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	if err := a.SubmitAt(ja); err != nil {
		t.Fatal(err)
	}
	if err := b.SubmitAt(jb); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ja.State != job.Completed || jb.State != job.Completed {
		t.Fatalf("states: %s / %s", ja.State, jb.State)
	}
	if det := mon.Detections(); len(det) != 0 {
		t.Errorf("false cycles: %v", det)
	}
}

// TestMixedSchemesNeverTrip: the Figure 2 circular wait needs BOTH
// domains holding. With at least one side on yield — HY, YH, or YY —
// at most one domain ever holds nodes, the wait-for graph cannot close
// a cross-domain cycle, and every job completes whether or not the
// release enhancement is armed. The monitor must observe the whole run
// and record zero detections and zero violations.
func TestMixedSchemesNeverTrip(t *testing.T) {
	combos := []struct {
		name             string
		schemeA, schemeB cosched.Scheme
	}{
		{"HY", cosched.Hold, cosched.Yield},
		{"YH", cosched.Yield, cosched.Hold},
		{"YY", cosched.Yield, cosched.Yield},
	}
	releases := []struct {
		name    string
		release sim.Duration
	}{
		{"release20m", 20 * sim.Minute},
		{"releaseOff", 0},
	}
	for _, combo := range combos {
		for _, rel := range releases {
			t.Run(combo.name+"/"+rel.name, func(t *testing.T) {
				cfgA := cosched.DefaultConfig(combo.schemeA)
				cfgA.ReleaseInterval = rel.release
				cfgB := cosched.DefaultConfig(combo.schemeB)
				cfgB.ReleaseInterval = rel.release
				eng := sim.NewEngine()
				mon := NewMonitor()
				a := resmgr.New(eng, resmgr.Options{
					Name: "A", Pool: cluster.New("A", 6),
					Policy: policy.FCFS{}, Backfilling: true, Cosched: cfgA,
					Observer: mon.Tap(nil),
				})
				b := resmgr.New(eng, resmgr.Options{
					Name: "B", Pool: cluster.New("B", 6),
					Policy: policy.FCFS{}, Backfilling: true, Cosched: cfgB,
					Observer: mon.Tap(nil),
				})
				a.AddPeer("B", b)
				b.AddPeer("A", a)
				mon.Register(a)
				mon.Register(b)

				// The exact Figure 2 shape that deadlocks under HH.
				a1 := job.New(1, 6, 0, 600, 600)
				a2 := job.New(2, 6, 10, 600, 600)
				b2 := job.New(2, 6, 0, 600, 600)
				b1 := job.New(1, 6, 10, 600, 600)
				a1.Mates = []job.MateRef{{Domain: "B", Job: 1}}
				b1.Mates = []job.MateRef{{Domain: "A", Job: 1}}
				a2.Mates = []job.MateRef{{Domain: "B", Job: 2}}
				b2.Mates = []job.MateRef{{Domain: "A", Job: 2}}
				for _, j := range []*job.Job{a1, a2} {
					if err := a.SubmitAt(j); err != nil {
						t.Fatalf("submit A/%d: %v", j.ID, err)
					}
				}
				for _, j := range []*job.Job{b2, b1} {
					if err := b.SubmitAt(j); err != nil {
						t.Fatalf("submit B/%d: %v", j.ID, err)
					}
				}
				eng.Run()

				for _, j := range []*job.Job{a1, a2, b1, b2} {
					if j.State != job.Completed {
						t.Fatalf("job %s not completed under %s", j, combo.name)
					}
				}
				if a1.StartTime != b1.StartTime || a2.StartTime != b2.StartTime {
					t.Fatalf("co-starts violated: pair1 %d/%d pair2 %d/%d",
						a1.StartTime, b1.StartTime, a2.StartTime, b2.StartTime)
				}
				if det := mon.Detections(); len(det) != 0 {
					t.Errorf("cycle detected under %s: %v", combo.name, det)
				}
				if v := mon.Violations(); len(v) != 0 {
					t.Errorf("violations under %s: %v", combo.name, v)
				}
				if mon.Scans() == 0 {
					t.Error("monitor observed no events")
				}
			})
		}
	}
}

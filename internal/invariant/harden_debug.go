//go:build debug

package invariant

// Hardened reports whether the debug build's fail-fast behavior is
// active: recorded deadlock violations panic at the offending event
// instead of waiting to be collected at end of run.
const Hardened = true

// debugFatal fails fast in debug builds: the panic carries the violation
// and fires at the exact event where the invariant broke, giving the
// full event-loop stack instead of a post-mortem string.
func debugFatal(msg string) {
	panic("invariant: " + msg)
}

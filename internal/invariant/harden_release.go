//go:build !debug

package invariant

// Hardened is false in release builds: violations are recorded for the
// caller to collect and the run continues.
const Hardened = false

func debugFatal(string) {}

// Package invariant provides a runtime auditor for resource managers: an
// Observer wrapper that re-checks the scheduler's cross-cutting invariants
// at every lifecycle event and records violations instead of panicking.
// Tests attach it to full simulations so a regression in allocation
// accounting or the job state machine surfaces at the event where it
// happens, not as a mysterious end-of-run metric.
//
// Checked on every event:
//
//   - node conservation: free + running + held = total, all ≥ 0;
//   - set consistency: the manager's queue/running/holding counters match
//     a scan of its job states;
//   - clock monotonicity;
//   - start/completion sanity: starts at "now" with non-negative wait,
//     completions exactly runtime after start.
package invariant

import (
	"fmt"

	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// Auditor observes one manager and accumulates violations.
type Auditor struct {
	mgr     *resmgr.Manager
	inner   resmgr.Observer
	lastNow sim.Time

	violations []string
	events     int
}

// New wraps inner (nil allowed) with auditing against mgr.
func New(mgr *resmgr.Manager, inner resmgr.Observer) *Auditor {
	if inner == nil {
		inner = resmgr.NullObserver{}
	}
	return &Auditor{mgr: mgr, inner: inner}
}

// NewDeferred returns an auditor with no manager bound yet. coupled.Sim
// constructs its managers internally, so the Observer must exist before
// the Manager does: pass the deferred auditor in DomainConfig.Observer,
// then Bind it to Sim.Manager(name) before Run. Events observed before
// Bind are themselves recorded as violations.
func NewDeferred(inner resmgr.Observer) *Auditor {
	return New(nil, inner)
}

// Bind attaches the audited manager to a deferred auditor.
func (a *Auditor) Bind(mgr *resmgr.Manager) { a.mgr = mgr }

// Violations returns every recorded violation, in order.
func (a *Auditor) Violations() []string { return a.violations }

// Events returns the number of audited events.
func (a *Auditor) Events() int { return a.events }

// fail records a violation.
func (a *Auditor) fail(now sim.Time, format string, args ...any) {
	name := "<unbound>"
	if a.mgr != nil {
		name = a.mgr.Name()
	}
	a.violations = append(a.violations,
		fmt.Sprintf("t=%d %s: %s", now, name, fmt.Sprintf(format, args...)))
}

// audit runs the cross-cutting checks.
func (a *Auditor) audit(now sim.Time) {
	a.events++
	if now < a.lastNow {
		a.fail(now, "clock moved backwards from %d", a.lastNow)
	}
	a.lastNow = now
	if a.mgr == nil {
		a.fail(now, "event observed before Bind: the deferred auditor has no manager")
		return
	}

	pool := a.mgr.Pool()
	if pool.Free() < 0 || pool.Held() < 0 || pool.Running() < 0 {
		a.fail(now, "negative pool state: %s", pool)
	}
	if pool.Free()+pool.Running()+pool.Held() != pool.Total() {
		a.fail(now, "node conservation broken: %s", pool)
	}

	var queued, running, holding int
	for _, j := range a.mgr.Jobs() {
		switch j.State {
		case job.Queued:
			queued++
		case job.Running:
			running++
		case job.Holding:
			holding++
		}
		if j.YieldCount < 0 || j.HoldCount < 0 || j.HeldNodeSeconds < 0 {
			a.fail(now, "negative accounting on %s", j)
		}
	}
	if queued != a.mgr.QueueLength() {
		a.fail(now, "queue count %d != %d jobs in Queued state", a.mgr.QueueLength(), queued)
	}
	if running != a.mgr.RunningCount() {
		a.fail(now, "running count %d != %d jobs in Running state", a.mgr.RunningCount(), running)
	}
	if holding != a.mgr.HoldingCount() {
		a.fail(now, "holding count %d != %d jobs in Holding state", a.mgr.HoldingCount(), holding)
	}
}

var _ resmgr.Observer = (*Auditor)(nil)

// JobSubmitted implements resmgr.Observer.
func (a *Auditor) JobSubmitted(now sim.Time, j *job.Job) {
	a.audit(now)
	if j.State != job.Queued {
		a.fail(now, "submitted job %d in state %s", j.ID, j.State)
	}
	a.inner.JobSubmitted(now, j)
}

// JobStarted implements resmgr.Observer.
func (a *Auditor) JobStarted(now sim.Time, j *job.Job) {
	a.audit(now)
	if j.State != job.Running {
		a.fail(now, "started job %d in state %s", j.ID, j.State)
	}
	if j.StartTime != now {
		a.fail(now, "job %d StartTime %d != event time", j.ID, j.StartTime)
	}
	if j.WaitTime() < 0 {
		a.fail(now, "job %d negative wait %d", j.ID, j.WaitTime())
	}
	a.inner.JobStarted(now, j)
}

// JobCompleted implements resmgr.Observer.
func (a *Auditor) JobCompleted(now sim.Time, j *job.Job) {
	a.audit(now)
	if j.State != job.Completed {
		a.fail(now, "completed job %d in state %s", j.ID, j.State)
	}
	if j.EndTime-j.StartTime != j.Runtime {
		a.fail(now, "job %d ran %d s, declared runtime %d", j.ID, j.EndTime-j.StartTime, j.Runtime)
	}
	a.inner.JobCompleted(now, j)
}

// JobHeld implements resmgr.Observer.
func (a *Auditor) JobHeld(now sim.Time, j *job.Job) {
	a.audit(now)
	if j.State != job.Holding {
		a.fail(now, "held job %d in state %s", j.ID, j.State)
	}
	if a.mgr.Pool().Held() <= 0 {
		a.fail(now, "job %d held but pool shows no held nodes", j.ID)
	}
	a.inner.JobHeld(now, j)
}

// JobYielded implements resmgr.Observer.
func (a *Auditor) JobYielded(now sim.Time, j *job.Job) {
	a.audit(now)
	if j.State != job.Queued {
		a.fail(now, "yielded job %d in state %s (yield must stay queued)", j.ID, j.State)
	}
	if j.YieldCount < 1 {
		a.fail(now, "yield event with count %d", j.YieldCount)
	}
	a.inner.JobYielded(now, j)
}

// JobReleased implements resmgr.Observer.
func (a *Auditor) JobReleased(now sim.Time, j *job.Job, requeued bool) {
	a.audit(now)
	if j.State != job.Queued {
		a.fail(now, "released job %d in state %s", j.ID, j.State)
	}
	a.inner.JobReleased(now, j, requeued)
}

// JobCancelled implements resmgr.Observer.
func (a *Auditor) JobCancelled(now sim.Time, j *job.Job) {
	a.audit(now)
	if j.State != job.Cancelled {
		a.fail(now, "cancelled job %d in state %s", j.ID, j.State)
	}
	a.inner.JobCancelled(now, j)
}

package invariant

import (
	"testing"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/coupled"
	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

// TestFullSimulationUpholdsInvariants audits every lifecycle event of a
// paired two-domain simulation under each scheme combination.
func TestFullSimulationUpholdsInvariants(t *testing.T) {
	for _, schemes := range [][2]cosched.Scheme{
		{cosched.Hold, cosched.Hold},
		{cosched.Hold, cosched.Yield},
		{cosched.Yield, cosched.Yield},
	} {
		specA := workload.Spec{
			Name: "a", Jobs: 80, Span: 6 * sim.Hour,
			Sizes:     []workload.SizeClass{{Nodes: 8, Weight: 0.5}, {Nodes: 24, Weight: 0.5}},
			RuntimeMu: 6.1, RuntimeSigma: 0.9,
			MinRuntime: sim.Minute, MaxRuntime: sim.Hour,
			WallFactorMin: 1.2, WallFactorMax: 2.2, Seed: 61,
		}
		a, err := workload.Generate(specA)
		if err != nil {
			t.Fatal(err)
		}
		specB := specA
		specB.Seed = 62
		specB.Sizes = []workload.SizeClass{{Nodes: 2, Weight: 1}}
		b, err := workload.Generate(specB)
		if err != nil {
			t.Fatal(err)
		}
		workload.PairNearest(workload.NewRNG(63), a, b, "A", "B", 25, sim.Hour)

		// Auditors are installed through the coupled Observer hook; they
		// need the managers, which exist only after New — wire lazily.
		var audA, audB *Auditor
		holderA := &lazyObserver{}
		holderB := &lazyObserver{}
		s, err := coupled.New(coupled.Options{Domains: []coupled.DomainConfig{
			{Name: "A", Nodes: 64, Backfilling: true,
				Cosched: cosched.DefaultConfig(schemes[0]), Trace: a, Observer: holderA},
			{Name: "B", Nodes: 16, Backfilling: true,
				Cosched: cosched.DefaultConfig(schemes[1]), Trace: b, Observer: holderB},
		}})
		if err != nil {
			t.Fatal(err)
		}
		audA = New(s.Manager("A"), nil)
		audB = New(s.Manager("B"), nil)
		holderA.inner = audA
		holderB.inner = audB

		res := s.Run()
		if res.StuckJobs != 0 || res.CoStartViolations != 0 {
			t.Fatalf("%v: stuck=%d viol=%d", schemes, res.StuckJobs, res.CoStartViolations)
		}
		for _, aud := range []*Auditor{audA, audB} {
			if aud.Events() == 0 {
				t.Fatalf("%v: auditor saw no events", schemes)
			}
			if v := aud.Violations(); len(v) != 0 {
				t.Fatalf("%v: %d invariant violations, first: %s", schemes, len(v), v[0])
			}
		}
	}
}

// lazyObserver forwards to an inner observer installed after construction.
type lazyObserver struct{ inner resmgr.Observer }

func (l *lazyObserver) get() resmgr.Observer {
	if l.inner == nil {
		return resmgr.NullObserver{}
	}
	return l.inner
}

func (l *lazyObserver) JobSubmitted(now sim.Time, j *job.Job) { l.get().JobSubmitted(now, j) }
func (l *lazyObserver) JobStarted(now sim.Time, j *job.Job)   { l.get().JobStarted(now, j) }
func (l *lazyObserver) JobCompleted(now sim.Time, j *job.Job) { l.get().JobCompleted(now, j) }
func (l *lazyObserver) JobHeld(now sim.Time, j *job.Job)      { l.get().JobHeld(now, j) }
func (l *lazyObserver) JobYielded(now sim.Time, j *job.Job)   { l.get().JobYielded(now, j) }
func (l *lazyObserver) JobReleased(now sim.Time, j *job.Job, r bool) {
	l.get().JobReleased(now, j, r)
}
func (l *lazyObserver) JobCancelled(now sim.Time, j *job.Job) { l.get().JobCancelled(now, j) }

// TestAuditorDetectsInconsistency feeds the auditor a fabricated bad event
// to prove it actually fires.
func TestAuditorDetectsInconsistency(t *testing.T) {
	eng := sim.NewEngine()
	m := resmgr.New(eng, resmgr.Options{Name: "X", Pool: cluster.New("X", 16)})
	aud := New(m, nil)
	j := job.New(1, 4, 0, 100, 100)
	// A "started" job that is actually still unsubmitted, with a bogus
	// start time.
	aud.JobStarted(50, j)
	if len(aud.Violations()) == 0 {
		t.Fatal("auditor accepted an inconsistent start event")
	}
}

// TestAuditorCoversCancellation cancels jobs mid-simulation under audit.
func TestAuditorCoversCancellation(t *testing.T) {
	eng := sim.NewEngine()
	m := resmgr.New(eng, resmgr.Options{Name: "C", Pool: cluster.New("C", 32), Backfilling: true})
	aud := New(m, nil)
	// resmgr has no observer setter; rebuild with the auditor attached.
	m = resmgr.New(eng, resmgr.Options{Name: "C", Pool: cluster.New("C", 32),
		Backfilling: true, Observer: aud})
	aud.mgr = m

	running := job.New(1, 32, 0, 10000, 10000)
	queued := job.New(2, 32, 5, 600, 600)
	if err := m.SubmitAt(running); err != nil {
		t.Fatal(err)
	}
	if err := m.SubmitAt(queued); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.At(100, sim.PriorityDefault, func(sim.Time) {
		if err := m.Cancel(1); err != nil {
			t.Errorf("cancel running: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if running.State != job.Cancelled || queued.State != job.Completed {
		t.Fatalf("states: %s / %s", running.State, queued.State)
	}
	if v := aud.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if aud.Events() == 0 {
		t.Fatal("no audited events")
	}
}

// TestAuditorFlagsBadYieldAndHoldEvents exercises the remaining detectors.
func TestAuditorFlagsBadYieldAndHoldEvents(t *testing.T) {
	eng := sim.NewEngine()
	m := resmgr.New(eng, resmgr.Options{Name: "X", Pool: cluster.New("X", 16)})
	aud := New(m, nil)
	j := job.New(1, 4, 0, 100, 100)
	aud.JobYielded(0, j)   // yield with count 0, state unsubmitted
	aud.JobHeld(0, j)      // held with no pool-held nodes
	aud.JobCompleted(0, j) // completed in wrong state
	aud.JobReleased(0, j, true)
	aud.JobCancelled(0, j)
	if len(aud.Violations()) < 5 {
		t.Fatalf("violations = %d, want ≥5:\n%v", len(aud.Violations()), aud.Violations())
	}
}

package invariant

import (
	"fmt"
	"sort"

	"cosched/internal/job"
	"cosched/internal/resmgr"
)

// RecoveryViolations checks a freshly restored manager against the job
// states the journal replay produced. It is the post-recovery counterpart
// of the Auditor's per-event checks:
//
//   - no lost job: every replayed job is known to the manager, in the
//     replayed state, with the replayed start time — nothing the journal
//     proved durable may vanish or drift across the restart;
//   - no invented job: the manager knows nothing the replay didn't produce
//     (a double restore would also trip ErrDuplicateJob, but a bug that
//     fabricates jobs some other way lands here);
//   - no double start: at most one restored job record per ID, and the
//     manager's running/holding/queue/terminal counters match a scan of
//     the restored states, so a job cannot occupy two sets at once;
//   - node conservation: pool occupancy equals the node sum of restored
//     running and holding jobs, so re-acquired allocations neither leak
//     nor double-book capacity.
//
// The returned slice is empty on a sound recovery.
func RecoveryViolations(m *resmgr.Manager, want []*job.Job) []string {
	var out []string
	fail := func(format string, args ...any) {
		out = append(out, fmt.Sprintf("%s: %s", m.Name(), fmt.Sprintf(format, args...)))
	}

	seen := make(map[job.ID]*job.Job, len(want))
	var queued, holding, running, completed, cancelled int
	var runNodes, heldNodes int
	for _, w := range want {
		if _, dup := seen[w.ID]; dup {
			fail("job %d restored twice (double start hazard)", w.ID)
			continue
		}
		seen[w.ID] = w
		got, ok := m.Job(w.ID)
		if !ok {
			fail("job %d lost in recovery: replayed as %s, unknown to the manager", w.ID, w.State)
			continue
		}
		if got.State != w.State {
			fail("job %d state drifted in recovery: replayed %s, manager has %s", w.ID, w.State, got.State)
		}
		if got.StartTime != w.StartTime {
			fail("job %d start time drifted in recovery: replayed %d, manager has %d", w.ID, w.StartTime, got.StartTime)
		}
		switch w.State {
		case job.Queued:
			queued++
		case job.Holding:
			holding++
			heldNodes += w.Nodes
		case job.Running:
			running++
			runNodes += w.Nodes
		case job.Completed:
			completed++
		case job.Cancelled:
			cancelled++
		}
	}
	ids := make([]job.ID, 0)
	for _, j := range m.Jobs() {
		if _, ok := seen[j.ID]; !ok {
			ids = append(ids, j.ID)
		}
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		fail("job %d invented in recovery: manager knows it, replay does not", id)
	}

	if got := m.QueueLength(); got != queued {
		fail("queue length %d after restore, want %d", got, queued)
	}
	if got := m.HoldingCount(); got != holding {
		fail("holding count %d after restore, want %d", got, holding)
	}
	if got := m.RunningCount(); got != running {
		fail("running count %d after restore, want %d", got, running)
	}
	if got := m.CompletedCount(); got != completed {
		fail("completed count %d after restore, want %d", got, completed)
	}
	if got := m.CancelledCount(); got != cancelled {
		fail("cancelled count %d after restore, want %d", got, cancelled)
	}
	pool := m.Pool()
	if got := pool.Running(); got != runNodes {
		fail("pool running nodes %d after restore, want %d (no lost or doubled run allocation)", got, runNodes)
	}
	if got := pool.Held(); got != heldNodes {
		fail("pool held nodes %d after restore, want %d (no lost or doubled hold allocation)", got, heldNodes)
	}
	return out
}

// VerifyRecovery returns RecoveryViolations and, under -tags debug, fails
// fast on the first one — a daemon must not start scheduling on top of a
// provably inconsistent restore in the hardened build.
func VerifyRecovery(m *resmgr.Manager, want []*job.Job) []string {
	v := RecoveryViolations(m, want)
	if len(v) > 0 {
		debugFatal(v[0])
	}
	return v
}

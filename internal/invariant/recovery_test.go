package invariant

import (
	"strings"
	"testing"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

func restoredManager(t *testing.T, jobs ...*job.Job) *resmgr.Manager {
	t.Helper()
	eng := sim.NewEngine()
	m := resmgr.New(eng, resmgr.Options{
		Name: "A", Pool: cluster.New("A", 64),
		Policy: policy.FCFS{}, Backfilling: true,
		Cosched: cosched.DefaultConfig(cosched.Hold),
	})
	for _, j := range jobs {
		if err := m.RestoreJob(j); err != nil {
			t.Fatalf("restore %d: %v", j.ID, err)
		}
	}
	return m
}

// recoveredSet fabricates one replayed job per lifecycle state.
func recoveredSet() []*job.Job {
	queued := job.New(1, 8, 0, 600, 600)
	queued.State = job.Queued
	holding := job.New(2, 16, 0, 600, 600)
	holding.Mates = []job.MateRef{{Domain: "B", Job: 2}}
	holding.State = job.Holding
	holding.HoldStart = 10
	holding.HoldCount = 1
	running := job.New(3, 8, 0, 600, 600)
	running.State = job.Running
	running.StartTime = 40
	done := job.New(4, 8, 0, 600, 600)
	done.State = job.Completed
	done.StartTime, done.EndTime = 5, 605
	return []*job.Job{queued, holding, running, done}
}

func TestRecoveryViolationsCleanRestore(t *testing.T) {
	want := recoveredSet()
	m := restoredManager(t, want...)
	if v := VerifyRecovery(m, want); len(v) != 0 {
		t.Fatalf("violations on a sound recovery: %v", v)
	}
}

func TestRecoveryViolationsDetectLostAndInvented(t *testing.T) {
	want := recoveredSet()
	m := restoredManager(t, want...)

	extra := job.New(9, 8, 0, 600, 600)
	extra.State = job.Queued
	v := RecoveryViolations(m, append(append([]*job.Job(nil), want...), extra))
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "lost in recovery") {
		t.Fatalf("lost job not detected: %v", v)
	}

	v = RecoveryViolations(m, want[:len(want)-1])
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "invented in recovery") {
		t.Fatalf("invented job not detected: %v", v)
	}
}

func TestRecoveryViolationsDetectDoubleRestoreAndDrift(t *testing.T) {
	want := recoveredSet()
	m := restoredManager(t, want...)

	dup := append(append([]*job.Job(nil), want...), want[0])
	v := RecoveryViolations(m, dup)
	if len(v) == 0 || !strings.Contains(v[0], "restored twice") {
		t.Fatalf("double restore not detected: %v", v)
	}

	// Drift the expected start time: the manager's copy no longer matches.
	drifted := recoveredSet()
	drifted[2].StartTime = 41
	v = RecoveryViolations(m, drifted)
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "start time drifted") {
		t.Fatalf("start drift not detected: %v", v)
	}
}

func TestRecoveryViolationsDetectAllocationMismatch(t *testing.T) {
	want := recoveredSet()
	m := restoredManager(t, want...)
	// Leak an allocation the restored jobs cannot account for: pool
	// occupancy no longer equals the node sum of restored running jobs.
	if _, err := m.Pool().Allocate(m.Engine().Now(), 4, cluster.AllocRun); err != nil {
		t.Fatal(err)
	}
	v := RecoveryViolations(m, want)
	if len(v) == 0 || !strings.Contains(strings.Join(v, "\n"), "pool running nodes") {
		t.Fatalf("leaked allocation not detected: %v", v)
	}
}

// Package job defines the parallel-job model shared by every scheduler
// component: the job record, its lifecycle state machine, mate linkage for
// coscheduling, and per-job accounting used by the metrics layer.
package job

import (
	"fmt"

	"cosched/internal/sim"
)

// ID identifies a job within one scheduling domain.
type ID int64

// State is a job's lifecycle state.
//
// The transitions implemented by Advance are:
//
//	Unsubmitted → Queued → Running → Completed
//	              Queued → Holding → Running            (coscheduling hold)
//	              Holding → Queued                      (release preempted)
//	              Queued → Queued (yield: no state change, YieldCount++)
//	              any non-terminal → Cancelled          (withdrawal)
type State int

const (
	// Unsubmitted means the job is known (e.g. appears in a trace or as a
	// declared mate) but has not yet arrived in the queue.
	Unsubmitted State = iota
	// Queued means the job is waiting in the scheduler queue.
	Queued
	// Holding means the job occupies its assigned nodes while waiting for
	// its remote mate (the coscheduling "hold" scheme).
	Holding
	// Running means the job is executing on its assigned nodes.
	Running
	// Completed means the job finished and released its nodes.
	Completed
	// Cancelled means the job was withdrawn (qdel) before finishing.
	Cancelled
)

// String returns the lower-case state name used in logs and the wire
// protocol.
func (s State) String() string {
	switch s {
	case Unsubmitted:
		return "unsubmitted"
	case Queued:
		return "queued"
	case Holding:
		return "holding"
	case Running:
		return "running"
	case Completed:
		return "completed"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ParseState inverts String. Unknown names are an error — callers decode
// persisted state and must not guess.
func ParseState(s string) (State, error) {
	switch s {
	case "unsubmitted":
		return Unsubmitted, nil
	case "queued":
		return Queued, nil
	case "holding":
		return Holding, nil
	case "running":
		return Running, nil
	case "completed":
		return Completed, nil
	case "cancelled":
		return Cancelled, nil
	default:
		return Unsubmitted, fmt.Errorf("job: unknown state %q", s)
	}
}

// validNext enumerates the legal lifecycle transitions.
var validNext = map[State][]State{
	Unsubmitted: {Queued, Cancelled},
	Queued:      {Holding, Running, Cancelled},
	Holding:     {Running, Queued, Cancelled},
	Running:     {Completed, Cancelled},
	Completed:   {},
	Cancelled:   {},
}

// MateRef names a job in another scheduling domain that must start at the
// same instant as this one.
type MateRef struct {
	Domain string // remote domain name
	Job    ID     // job ID within that domain
}

// Job is one parallel job. Fields are grouped into the immutable request
// (set at construction), coscheduling linkage, and mutable
// scheduling/accounting state owned by the resource manager.
type Job struct {
	// Request (immutable after construction).
	ID         ID
	Name       string       // optional human-readable tag
	User       int          // submitting user (runtime-prediction history key)
	Nodes      int          // nodes requested (= nodes allocated; no moldability)
	Runtime    sim.Duration // actual runtime, consumed by the simulator at start
	Walltime   sim.Duration // user-requested wall-clock limit (≥ Runtime)
	SubmitTime sim.Time     // arrival time in the queue

	// Coscheduling linkage. Empty Mates means a regular (non-paired) job.
	// For the paper's 2-way pairing there is exactly one entry; the N-way
	// extension allows several.
	Mates []MateRef

	// Mutable scheduling state (owned by the resource manager).
	State      State
	StartTime  sim.Time // set on Queued→Running
	EndTime    sim.Time // set on Running→Completed
	HoldStart  sim.Time // set on each Queued→Holding
	YieldCount int      // times the job gave up a ready slot for its mate
	HoldCount  int      // times the job entered Holding

	// Accounting.
	HeldNodeSeconds int64 // ∑ nodes × seconds spent in Holding (service-unit loss)
	FirstReadyTime  sim.Time
	EverReady       bool // FirstReadyTime is meaningful only when true
}

// New constructs a queued-job request. Walltime defaults to Runtime when
// zero or negative; callers wanting user overestimates set it explicitly.
func New(id ID, nodes int, submit sim.Time, runtime, walltime sim.Duration) *Job {
	if walltime < runtime {
		walltime = runtime
	}
	return &Job{
		ID:         id,
		Nodes:      nodes,
		Runtime:    runtime,
		Walltime:   walltime,
		SubmitTime: submit,
		State:      Unsubmitted,
	}
}

// Validate checks the request fields for internal consistency.
func (j *Job) Validate() error {
	switch {
	case j.Nodes <= 0:
		return fmt.Errorf("job %d: nodes must be positive, got %d", j.ID, j.Nodes)
	case j.Runtime < 0:
		return fmt.Errorf("job %d: negative runtime %d", j.ID, j.Runtime)
	case j.Walltime < j.Runtime:
		return fmt.Errorf("job %d: walltime %d < runtime %d", j.ID, j.Walltime, j.Runtime)
	case j.SubmitTime < 0:
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.SubmitTime)
	}
	for _, m := range j.Mates {
		if m.Domain == "" {
			return fmt.Errorf("job %d: mate with empty domain", j.ID)
		}
	}
	return nil
}

// Paired reports whether the job has at least one mate.
func (j *Job) Paired() bool { return len(j.Mates) > 0 }

// Advance transitions the job to next, enforcing the lifecycle state
// machine. It returns an error (and leaves the job unchanged) on an illegal
// transition. Timestamps are the caller's responsibility; Advance only
// guards legality.
func (j *Job) Advance(next State) error {
	for _, ok := range validNext[j.State] {
		if next == ok {
			j.State = next
			return nil
		}
	}
	return fmt.Errorf("job %d: illegal transition %s → %s", j.ID, j.State, next)
}

// MarkReady records the first instant the scheduler selected the job to
// start. The gap between this and StartTime is the coscheduling
// synchronization time for paired jobs.
func (j *Job) MarkReady(now sim.Time) {
	if !j.EverReady {
		j.EverReady = true
		j.FirstReadyTime = now
	}
}

// WaitTime returns StartTime − SubmitTime. It is only meaningful once the
// job has started.
func (j *Job) WaitTime() sim.Duration { return j.StartTime - j.SubmitTime }

// ResponseTime returns wait + runtime.
func (j *Job) ResponseTime() sim.Duration { return j.WaitTime() + j.Runtime }

// Slowdown returns response time divided by runtime. Zero-runtime jobs are
// treated as one-second jobs so the ratio stays finite (the usual
// bounded-slowdown convention's lower clamp).
func (j *Job) Slowdown() float64 {
	rt := j.Runtime
	if rt <= 0 {
		rt = 1
	}
	return float64(j.WaitTime()+rt) / float64(rt)
}

// BoundedSlowdown returns the slowdown with runtime clamped below by bound
// seconds (commonly 10s), which prevents very short jobs from dominating the
// average.
func (j *Job) BoundedSlowdown(bound sim.Duration) float64 {
	rt := j.Runtime
	if rt < bound {
		rt = bound
	}
	if rt <= 0 {
		rt = 1
	}
	sd := float64(j.WaitTime()+rt) / float64(rt)
	if sd < 1 {
		return 1
	}
	return sd
}

// SyncTime returns the extra wait imposed by coscheduling: the gap between
// the first time the scheduler was ready to start the job and the time it
// actually started. It is 0 for jobs that started the moment they were
// first ready, and 0 for jobs never marked ready.
func (j *Job) SyncTime() sim.Duration {
	if !j.EverReady {
		return 0
	}
	d := j.StartTime - j.FirstReadyTime
	if d < 0 {
		return 0
	}
	return d
}

// NodeSeconds returns nodes × runtime, the job's service demand.
func (j *Job) NodeSeconds() int64 { return int64(j.Nodes) * j.Runtime }

// String renders a compact one-line description for logs.
func (j *Job) String() string {
	return fmt.Sprintf("job %d [%s] nodes=%d submit=%d run=%d mates=%d",
		j.ID, j.State, j.Nodes, j.SubmitTime, j.Runtime, len(j.Mates))
}

// Clone returns a deep copy (mates slice included) with scheduling state
// reset to Unsubmitted. It is used to re-run the same workload under
// different configurations.
func (j *Job) Clone() *Job {
	c := *j
	c.Mates = append([]MateRef(nil), j.Mates...)
	c.State = Unsubmitted
	c.StartTime, c.EndTime, c.HoldStart = 0, 0, 0
	c.YieldCount, c.HoldCount = 0, 0
	c.HeldNodeSeconds = 0
	c.EverReady, c.FirstReadyTime = false, 0
	return &c
}

package job

import (
	"testing"
	"testing/quick"

	"cosched/internal/sim"
)

func TestLifecycleHappyPath(t *testing.T) {
	j := New(1, 64, 100, 600, 900)
	for _, next := range []State{Queued, Running, Completed} {
		if err := j.Advance(next); err != nil {
			t.Fatalf("advance to %s: %v", next, err)
		}
	}
}

func TestLifecycleHoldPath(t *testing.T) {
	j := New(1, 64, 100, 600, 900)
	steps := []State{Queued, Holding, Queued, Holding, Running, Completed}
	for _, next := range steps {
		if err := j.Advance(next); err != nil {
			t.Fatalf("advance to %s: %v", next, err)
		}
	}
}

func TestLifecycleRejectsIllegalTransitions(t *testing.T) {
	cases := []struct {
		from State
		to   State
	}{
		{Unsubmitted, Running},
		{Unsubmitted, Holding},
		{Unsubmitted, Completed},
		{Queued, Completed},
		{Queued, Unsubmitted},
		{Running, Queued},
		{Running, Holding},
		{Completed, Queued},
		{Completed, Running},
		{Holding, Completed},
		{Holding, Unsubmitted},
	}
	for _, c := range cases {
		j := New(1, 4, 0, 10, 10)
		j.State = c.from
		if err := j.Advance(c.to); err == nil {
			t.Errorf("transition %s → %s allowed, want error", c.from, c.to)
		}
		if j.State != c.from {
			t.Errorf("failed transition mutated state to %s", j.State)
		}
	}
}

func TestValidate(t *testing.T) {
	good := New(1, 4, 0, 10, 20)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	bad := []*Job{
		{ID: 1, Nodes: 0, Runtime: 10, Walltime: 10},
		{ID: 2, Nodes: 4, Runtime: -1, Walltime: 10},
		{ID: 3, Nodes: 4, Runtime: 10, Walltime: 5},
		{ID: 4, Nodes: 4, Runtime: 10, Walltime: 10, SubmitTime: -5},
		{ID: 5, Nodes: 4, Runtime: 10, Walltime: 10, Mates: []MateRef{{Domain: "", Job: 9}}},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("job %d accepted, want error", j.ID)
		}
	}
}

func TestNewClampsWalltime(t *testing.T) {
	j := New(1, 4, 0, 100, 50)
	if j.Walltime != 100 {
		t.Fatalf("walltime = %d, want clamped to runtime 100", j.Walltime)
	}
}

func TestMetricsAccessors(t *testing.T) {
	j := New(1, 16, 1000, 600, 600)
	j.State = Completed
	j.StartTime = 1300
	j.EndTime = 1900
	if got := j.WaitTime(); got != 300 {
		t.Errorf("wait = %d, want 300", got)
	}
	if got := j.ResponseTime(); got != 900 {
		t.Errorf("response = %d, want 900", got)
	}
	if got := j.Slowdown(); got != 1.5 {
		t.Errorf("slowdown = %g, want 1.5", got)
	}
	if got := j.NodeSeconds(); got != 16*600 {
		t.Errorf("node-seconds = %d, want %d", got, 16*600)
	}
}

func TestSlowdownZeroRuntime(t *testing.T) {
	j := New(1, 1, 0, 0, 0)
	j.StartTime = 10
	if sd := j.Slowdown(); sd != 11 {
		t.Errorf("zero-runtime slowdown = %g, want 11 (1s clamp)", sd)
	}
}

func TestBoundedSlowdown(t *testing.T) {
	j := New(1, 1, 0, 2, 2) // 2s job
	j.StartTime = 8         // wait 8
	// Unbounded would be (8+2)/2 = 5; with bound 10 it is (8+10)/10 = 1.8.
	if sd := j.BoundedSlowdown(10); sd != 1.8 {
		t.Errorf("bounded slowdown = %g, want 1.8", sd)
	}
	// Never below 1.
	quick_ := New(2, 1, 0, 100, 100)
	quick_.StartTime = 0
	if sd := quick_.BoundedSlowdown(1000); sd != 1 {
		t.Errorf("bounded slowdown = %g, want clamp to 1", sd)
	}
}

func TestSyncTime(t *testing.T) {
	j := New(1, 4, 0, 10, 10)
	if j.SyncTime() != 0 {
		t.Fatal("sync time nonzero before ever ready")
	}
	j.MarkReady(100)
	j.MarkReady(200) // second call must not move the mark
	j.StartTime = 250
	if got := j.SyncTime(); got != 150 {
		t.Errorf("sync = %d, want 150", got)
	}
}

func TestCloneResetsState(t *testing.T) {
	j := New(1, 4, 50, 10, 20)
	j.Mates = []MateRef{{Domain: "b", Job: 7}}
	j.State = Completed
	j.StartTime = 99
	j.YieldCount = 3
	j.HeldNodeSeconds = 1234
	j.MarkReady(60)
	c := j.Clone()
	if c.State != Unsubmitted || c.StartTime != 0 || c.YieldCount != 0 ||
		c.HeldNodeSeconds != 0 || c.EverReady {
		t.Fatalf("clone did not reset state: %+v", c)
	}
	if len(c.Mates) != 1 || c.Mates[0].Job != 7 {
		t.Fatalf("clone lost mates: %+v", c.Mates)
	}
	c.Mates[0].Job = 8
	if j.Mates[0].Job != 7 {
		t.Fatal("clone shares mates slice with original")
	}
}

// Property: slowdown is always ≥ 1 for non-negative waits, and wait/response
// are consistent.
func TestSlowdownProperty(t *testing.T) {
	f := func(wait uint16, runtime uint16) bool {
		rt := sim.Duration(runtime)
		j := New(1, 1, 0, rt, rt)
		j.StartTime = sim.Time(wait)
		if j.WaitTime() != sim.Duration(wait) {
			return false
		}
		return j.Slowdown() >= 1 && j.BoundedSlowdown(10) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		Unsubmitted: "unsubmitted", Queued: "queued", Holding: "holding",
		Running: "running", Completed: "completed", State(99): "state(99)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("State(%d).String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestCancelledTransitions(t *testing.T) {
	for _, from := range []State{Unsubmitted, Queued, Holding, Running} {
		j := New(1, 4, 0, 10, 10)
		j.State = from
		if err := j.Advance(Cancelled); err != nil {
			t.Errorf("cancel from %s: %v", from, err)
		}
	}
	for _, from := range []State{Completed, Cancelled} {
		j := New(1, 4, 0, 10, 10)
		j.State = from
		if err := j.Advance(Cancelled); err == nil {
			t.Errorf("cancel from terminal %s accepted", from)
		}
	}
	if Cancelled.String() != "cancelled" {
		t.Fatal("string")
	}
}

package journal

import (
	"testing"

	"cosched/internal/job"
)

// FuzzDecodeEntries drives arbitrary bytes through the torn-tolerant
// decoder. The safety contract under fuzzing: never panic, never return a
// record that fails the framing checks, always return a valid prefix that
// itself decodes cleanly (so truncating a torn log is a fixpoint), and
// never accept non-increasing sequence numbers.
func FuzzDecodeEntries(f *testing.F) {
	f.Add([]byte{})
	// A clean 3-record stream.
	var clean []byte
	for i, e := range []Entry{
		{Seq: 1, T: 0, Op: OpSubmit, Job: 1, Nodes: 16, Runtime: 600, Walltime: 600,
			Mates: []job.MateRef{{Domain: "B", Job: 1}}},
		{Seq: 2, T: 0, Op: OpHold, Job: 1, Holds: 1},
		{Seq: 3, T: 100, Op: OpStart, Job: 1, Start: 100, Holds: 1, HeldNS: 1600},
	} {
		var err error
		clean, err = AppendRecord(clean, &e)
		if err != nil {
			f.Fatalf("seed record %d: %v", i, err)
		}
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5]) // torn mid-record
	f.Add(clean[:3])            // torn mid-header
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)/2] ^= 0x20 // checksum breaker
	f.Add(flipped)
	f.Add(append(append([]byte(nil), clean...), 0xde, 0xad, 0xbe, 0xef)) // garbage tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})                    // implausible length
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})                                // zero length

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, valid, torn := DecodeEntries(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		if torn == nil && valid != int64(len(data)) {
			t.Fatalf("clean decode left %d trailing bytes", int64(len(data))-valid)
		}
		var lastSeq uint64
		for i, e := range entries {
			if e.Seq <= lastSeq {
				t.Fatalf("record %d: seq %d after %d", i, e.Seq, lastSeq)
			}
			lastSeq = e.Seq
		}
		// Truncation is a fixpoint: the valid prefix decodes cleanly to the
		// same records, which is what Store.Open relies on after os.Truncate.
		re, revalid, retorn := DecodeEntries(data[:valid])
		if retorn != nil || revalid != valid || len(re) != len(entries) {
			t.Fatalf("valid prefix not a fixpoint: %d/%d records, torn %v", len(re), len(entries), retorn)
		}
	})
}

// Package journal is the durability layer under the live coscheduling
// daemon: an append-only, checksummed, fsync-batched write-ahead log of
// every resource-manager state transition, plus periodic compacting
// snapshots, plus the replay/restore machinery that rebuilds a Manager's
// queue, holding set, and running set after a crash.
//
// On disk a journal directory holds two files:
//
//	snapshot.json — the full job table as of sequence number Seq,
//	                written atomically (tmp + rename);
//	journal.wal   — framed transition records appended since that
//	                snapshot: [u32 length][u32 CRC-32 (IEEE)][JSON entry].
//
// The reader is torn-write tolerant by construction: a crash mid-append
// leaves a partial record (or a record whose checksum fails) at the tail,
// and DecodeEntries truncates to the last valid record instead of failing.
// A record is valid only if its length is in bounds, its checksum matches,
// its JSON decodes, and its sequence number strictly increases — so a
// corrupt record is never replayed, and garbage after a crash cannot
// resurrect stale state.
//
// Replay is pure bookkeeping (no engine, no pool): it folds the snapshot
// and the entry tail into per-job final states, using the job package's
// lifecycle state machine so an impossible history (a double start, a
// completed job re-queued) fails loudly instead of reconstructing silently
// wrong state. Restore then re-installs the jobs into a fresh
// resmgr.Manager via RestoreJob, which re-acquires allocations and
// reschedules completions.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// Op identifies a journaled manager transition.
type Op string

// The journaled transition set. OpPeerDecision is audit-only: the state
// effects of an inbound peer start are journaled as the resulting
// start/hold transitions, so replay skips decision records.
const (
	OpExpect       Op = "expect"
	OpSubmit       Op = "submit"
	OpStart        Op = "start"
	OpHold         Op = "hold"
	OpRehold       Op = "rehold"
	OpYield        Op = "yield"
	OpRelease      Op = "release"
	OpComplete     Op = "complete"
	OpCancel       Op = "cancel"
	OpPeerDecision Op = "peer-decision"
)

// Entry is one write-ahead log record. Submission records (expect/submit)
// carry the full job description so replay can rebuild jobs the snapshot
// never saw; transition records carry the post-transition values of the
// mutable fields they change (counters are absolute, not deltas, so replay
// is idempotent per record).
type Entry struct {
	Seq uint64   `json:"seq"`
	T   sim.Time `json:"t"`
	Op  Op       `json:"op"`
	Job job.ID   `json:"job,omitempty"`

	// Job description (expect/submit).
	Name     string        `json:"name,omitempty"`
	User     int           `json:"user,omitempty"`
	Nodes    int           `json:"nodes,omitempty"`
	Runtime  sim.Duration  `json:"runtime,omitempty"`
	Walltime sim.Duration  `json:"walltime,omitempty"`
	Submit   sim.Time      `json:"submit,omitempty"`
	Mates    []job.MateRef `json:"mates,omitempty"`

	// Start instant (start): the agreed co-start time, which may differ
	// from T by wall-clock jitter when a remote resolver proposed it.
	Start sim.Time `json:"start,omitempty"`

	// Readiness (start/hold/yield): the job's first-ready bookkeeping,
	// which feeds the paper's sync-time metric.
	Ready   bool     `json:"ready,omitempty"`
	ReadyAt sim.Time `json:"ready_at,omitempty"`

	// Accounting snapshots (absolute values as of this record).
	Yields    int      `json:"yields,omitempty"`
	Holds     int      `json:"holds,omitempty"`
	HeldNS    int64    `json:"held_ns,omitempty"`
	HoldStart sim.Time `json:"hold_start,omitempty"`

	// Peer-decision audit (peer-decision).
	Method string `json:"method,omitempty"`
	OK     bool   `json:"ok,omitempty"`
}

// headerSize is the per-record framing overhead: u32 payload length +
// u32 CRC-32 (IEEE) of the payload, both big-endian.
const headerSize = 8

// MaxRecordSize bounds one record's JSON payload. A claimed length beyond
// it marks the tail corrupt before any allocation happens.
const MaxRecordSize = 1 << 20

// AppendRecord appends the framed encoding of e to buf and returns the
// extended slice (append-style, so writers can reuse one buffer).
func AppendRecord(buf []byte, e *Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return buf, fmt.Errorf("journal: marshal entry %d: %w", e.Seq, err)
	}
	if len(payload) > MaxRecordSize {
		return buf, fmt.Errorf("journal: entry %d exceeds MaxRecordSize", e.Seq)
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// TornTail reports where and why decoding stopped before the end of the
// input. It is informational, not fatal: the entries before Off are valid
// and the caller truncates the log to Off.
type TornTail struct {
	Off    int64  // byte offset of the first invalid record
	Reason string // what check failed there
}

// Error implements error.
func (t *TornTail) Error() string {
	return fmt.Sprintf("journal: torn tail at byte %d: %s", t.Off, t.Reason)
}

// DecodeEntries decodes the longest valid prefix of a write-ahead log. It
// returns the decoded entries, the byte length of that valid prefix, and a
// *TornTail describing the first invalid record (nil when the whole input
// decoded cleanly). It never panics on any input, and never returns a
// record that failed its length, checksum, JSON, or sequence check —
// sequence numbers must be strictly increasing and nonzero, so duplicated
// or reordered tails are cut rather than replayed.
func DecodeEntries(data []byte) ([]Entry, int64, *TornTail) {
	var out []Entry
	var off int64
	var lastSeq uint64
	for int64(len(data))-off >= headerSize {
		n := binary.BigEndian.Uint32(data[off : off+4])
		if n == 0 || n > MaxRecordSize {
			return out, off, &TornTail{Off: off, Reason: fmt.Sprintf("implausible record length %d", n)}
		}
		end := off + headerSize + int64(n)
		if end > int64(len(data)) {
			return out, off, &TornTail{Off: off, Reason: "partial record (torn write)"}
		}
		payload := data[off+headerSize : end]
		if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(data[off+4:off+8]) {
			return out, off, &TornTail{Off: off, Reason: "checksum mismatch"}
		}
		var e Entry
		if err := json.Unmarshal(payload, &e); err != nil {
			return out, off, &TornTail{Off: off, Reason: "undecodable payload: " + err.Error()}
		}
		if e.Seq <= lastSeq {
			return out, off, &TornTail{Off: off, Reason: fmt.Sprintf("sequence %d after %d", e.Seq, lastSeq)}
		}
		out = append(out, e)
		lastSeq = e.Seq
		off = end
	}
	if off < int64(len(data)) {
		return out, off, &TornTail{Off: off, Reason: "partial header (torn write)"}
	}
	return out, off, nil
}

package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/policy"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// sampleEntries builds a small, varied, sequence-numbered record stream.
func sampleEntries() []Entry {
	return []Entry{
		{Seq: 1, T: 0, Op: OpSubmit, Job: 1, Nodes: 16, Runtime: 600, Walltime: 700,
			Mates: []job.MateRef{{Domain: "B", Job: 1}}},
		{Seq: 2, T: 0, Op: OpHold, Job: 1, Holds: 1, Ready: true},
		{Seq: 3, T: 100, Op: OpStart, Job: 1, Start: 100, Holds: 1, HeldNS: 1600, Ready: true},
		{Seq: 4, T: 120, Op: OpPeerDecision, Job: 1, Method: "try_start_mate", OK: true},
		{Seq: 5, T: 700, Op: OpComplete, Job: 1, HeldNS: 1600},
	}
}

func encode(t *testing.T, entries []Entry) []byte {
	t.Helper()
	var buf []byte
	for i := range entries {
		var err error
		buf, err = AppendRecord(buf, &entries[i])
		if err != nil {
			t.Fatalf("append record %d: %v", i, err)
		}
	}
	return buf
}

func TestRecordRoundTrip(t *testing.T) {
	in := sampleEntries()
	data := encode(t, in)
	out, valid, torn := DecodeEntries(data)
	if torn != nil {
		t.Fatalf("clean stream reported torn: %v", torn)
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid = %d, want %d", valid, len(data))
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

func TestDecodeEmptyAndNil(t *testing.T) {
	for _, data := range [][]byte{nil, {}} {
		out, valid, torn := DecodeEntries(data)
		if len(out) != 0 || valid != 0 || torn != nil {
			t.Fatalf("empty input: %v %d %v", out, valid, torn)
		}
	}
}

func TestDecodeTornVariants(t *testing.T) {
	in := sampleEntries()
	clean := encode(t, in)
	// Byte length of the first two records, so we can cut inside record 3.
	twoRec := int64(len(encode(t, in[:2])))

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		want    int // records that must survive
	}{
		{"truncated mid-record", func(d []byte) []byte {
			return d[:twoRec+5]
		}, 2},
		{"truncated mid-header", func(d []byte) []byte {
			return d[:twoRec+3]
		}, 2},
		{"bit flip in payload", func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[twoRec+headerSize+4] ^= 0x40
			return d
		}, 2},
		{"bit flip in length", func(d []byte) []byte {
			d = append([]byte(nil), d...)
			d[twoRec] ^= 0xFF // implausible length
			return d
		}, 2},
		{"garbage tail", func(d []byte) []byte {
			return append(append([]byte(nil), d...), 0xde, 0xad, 0xbe, 0xef, 0xff, 0x00, 0x01, 0x02, 0x03)
		}, 5},
		{"zero-length record", func(d []byte) []byte {
			return append(append([]byte(nil), d...), 0, 0, 0, 0, 0, 0, 0, 0)
		}, 5},
		{"whole stream garbage", func(d []byte) []byte {
			return bytes.Repeat([]byte{0xab}, 64)
		}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, valid, torn := DecodeEntries(tc.corrupt(clean))
			if torn == nil {
				t.Fatal("corruption not detected")
			}
			if len(out) != tc.want {
				t.Fatalf("survived %d records, want %d (torn: %v)", len(out), tc.want, torn)
			}
			if tc.want > 0 && !reflect.DeepEqual(out, in[:tc.want]) {
				t.Fatalf("surviving records corrupted: %+v", out)
			}
			// The valid prefix must itself decode cleanly after truncation.
			if re, _, retorn := DecodeEntries(tc.corrupt(clean)[:valid]); retorn != nil || len(re) != tc.want {
				t.Fatalf("valid prefix not clean: %d records, torn %v", len(re), retorn)
			}
		})
	}
}

func TestDecodeRejectsSequenceRegression(t *testing.T) {
	in := sampleEntries()
	in[2].Seq = 2 // duplicate of the previous record's sequence
	out, _, torn := DecodeEntries(encode(t, in))
	if torn == nil || len(out) != 2 {
		t.Fatalf("sequence regression not cut: %d records, torn %v", len(out), torn)
	}
	in[2].Seq = 0 // zero is never valid
	out, _, torn = DecodeEntries(encode(t, in[2:3]))
	if torn == nil || len(out) != 0 {
		t.Fatalf("zero sequence accepted: %d records, torn %v", len(out), torn)
	}
}

func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEntries()
	for i := range want {
		e := want[i]
		e.Seq = 0 // Append assigns
		if err := s.Append(&e); err != nil {
			t.Fatal(err)
		}
		if e.Seq != want[i].Seq {
			t.Fatalf("assigned seq %d, want %d", e.Seq, want[i].Seq)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if err := s.Append(&Entry{Op: OpYield}); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	snap, entries := re.Recovered()
	if snap != nil {
		t.Fatalf("unexpected snapshot: %+v", snap)
	}
	if re.Torn() != nil {
		t.Fatalf("clean log reported torn: %v", re.Torn())
	}
	if !reflect.DeepEqual(entries, want) {
		t.Fatalf("recovered entries mismatch:\n got %+v\nwant %+v", entries, want)
	}
	// Sequence numbering continues where the log left off.
	next := Entry{Op: OpCancel, Job: 9}
	if err := re.Append(&next); err != nil {
		t.Fatal(err)
	}
	if next.Seq != want[len(want)-1].Seq+1 {
		t.Fatalf("resumed seq = %d, want %d", next.Seq, want[len(want)-1].Seq+1)
	}
}

func TestStoreTruncatesTornTailAndHeals(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(&Entry{T: sim.Time(i), Op: OpYield, Job: job.ID(i + 1), Yields: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record, as a crash mid-write would.
	wal := filepath.Join(dir, "journal.wal")
	fi, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Torn() == nil {
		t.Fatal("torn tail not reported")
	}
	_, entries := re.Recovered()
	if len(entries) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(entries))
	}
	// The torn bytes must be physically gone so new appends stay decodable.
	if err := re.Append(&Entry{T: 9, Op: OpCancel, Job: 99}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	final, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if final.Torn() != nil {
		t.Fatalf("healed log still torn: %v", final.Torn())
	}
	_, entries = final.Recovered()
	if len(entries) != 4 || entries[3].Job != 99 || entries[3].Seq != 4 {
		t.Fatalf("healed log entries: %+v", entries)
	}
}

func TestStoreRejectsBadOptions(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{FsyncInterval: -time.Second}); err == nil {
		t.Fatal("negative FsyncInterval accepted")
	}
}

func TestStoreRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestStoreFsyncBatching(t *testing.T) {
	// With a long interval and a frozen injected clock, appends must not
	// sync each record but Sync/Close still flush. Observable behaviour:
	// no errors and the log decodes fully after close — the batching path
	// (dirty tracking, lastSync bookkeeping) is exercised either way.
	clock := time.Unix(1000, 0)
	dir := t.TempDir()
	s, err := Open(dir, Options{FsyncInterval: time.Hour, Now: func() time.Time { return clock }})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(&Entry{Op: OpYield, Job: 1, Yields: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Advancing past the interval makes the next append sync.
	clock = clock.Add(2 * time.Hour)
	if err := s.Append(&Entry{Op: OpYield, Job: 1, Yields: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, entries := re.Recovered(); len(entries) != 11 {
		t.Fatalf("recovered %d entries, want 11", len(entries))
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(&Entry{Op: OpYield, Job: 1, Yields: i}); err != nil {
			t.Fatal(err)
		}
	}
	snap := Snapshot{Domain: "A", T: 42, Jobs: []JobRecord{{ID: 1, Nodes: 4, State: "queued"}}}
	if err := s.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if got := s.AppendedSinceCompact(); got != 0 {
		t.Fatalf("appended after compact = %d", got)
	}
	// Entries appended after the checkpoint carry later sequence numbers.
	post := Entry{Op: OpStart, Job: 1, Start: 50}
	if err := s.Append(&post); err != nil {
		t.Fatal(err)
	}
	if post.Seq != 6 {
		t.Fatalf("post-compact seq = %d, want 6", post.Seq)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rsnap, entries := re.Recovered()
	if rsnap == nil || rsnap.Domain != "A" || rsnap.Seq != 5 || rsnap.T != 42 {
		t.Fatalf("recovered snapshot: %+v", rsnap)
	}
	if len(entries) != 1 || entries[0].Seq != 6 {
		t.Fatalf("recovered wal: %+v", entries)
	}
}

func TestSnapshotJobRoundTrip(t *testing.T) {
	j := job.New(7, 32, 100, 600, 900)
	j.Name = "pair-a"
	j.User = 3
	j.Mates = []job.MateRef{{Domain: "B", Job: 7}}
	for _, st := range []job.State{job.Unsubmitted, job.Queued, job.Holding, job.Running, job.Completed, job.Cancelled} {
		j.State = st
		j.StartTime, j.EndTime, j.HoldStart = 150, 750, 120
		j.YieldCount, j.HoldCount, j.HeldNodeSeconds = 2, 1, 960
		j.EverReady, j.FirstReadyTime = true, 110
		back, err := RecordJob(j).Job()
		if err != nil {
			t.Fatalf("state %s: %v", st, err)
		}
		if !reflect.DeepEqual(back, j) {
			t.Fatalf("state %s round trip:\n got %+v\nwant %+v", st, back, j)
		}
	}
	if _, err := (JobRecord{ID: 1, Nodes: 1, State: "bogus"}).Job(); err == nil {
		t.Fatal("bogus state accepted")
	}
}

func TestReplayHistory(t *testing.T) {
	entries := []Entry{
		{Seq: 1, T: 0, Op: OpExpect, Job: 1, Nodes: 16, Runtime: 600, Walltime: 600, Submit: 5,
			Mates: []job.MateRef{{Domain: "B", Job: 1}}},
		{Seq: 2, T: 5, Op: OpSubmit, Job: 1, Nodes: 16, Runtime: 600, Walltime: 600, Submit: 5,
			Mates: []job.MateRef{{Domain: "B", Job: 1}}},
		{Seq: 3, T: 5, Op: OpHold, Job: 1, HoldStart: 5, Holds: 1, Ready: true, ReadyAt: 5},
		{Seq: 4, T: 60, Op: OpRelease, Job: 1, HeldNS: 880, OK: true},
		{Seq: 5, T: 70, Op: OpYield, Job: 1, Yields: 1},
		{Seq: 6, T: 80, Op: OpRehold, Job: 1, HoldStart: 80, Holds: 2, Ready: true, ReadyAt: 5},
		{Seq: 7, T: 90, Op: OpPeerDecision, Job: 1, Method: "start_mate", OK: true},
		{Seq: 8, T: 90, Op: OpStart, Job: 1, Start: 90, Holds: 2, Yields: 1, HeldNS: 1040, Ready: true, ReadyAt: 5},
		{Seq: 9, T: 20, Op: OpSubmit, Job: 2, Nodes: 8, Runtime: 100, Walltime: 100, Submit: 20},
		{Seq: 10, T: 690, Op: OpComplete, Job: 1, HeldNS: 1040},
		{Seq: 11, T: 700, Op: OpCancel, Job: 2},
	}
	st, err := Replay(nil, entries)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 11 || st.T != 700 || len(st.Jobs) != 2 {
		t.Fatalf("state: entries=%d t=%d jobs=%d", st.Entries, st.T, len(st.Jobs))
	}
	j1, j2 := st.Jobs[0], st.Jobs[1]
	if j1.State != job.Completed || j1.StartTime != 90 || j1.EndTime != 690 {
		t.Fatalf("j1: %+v", j1)
	}
	if j1.HoldCount != 2 || j1.YieldCount != 1 || j1.HeldNodeSeconds != 1040 {
		t.Fatalf("j1 counters: holds=%d yields=%d heldns=%d", j1.HoldCount, j1.YieldCount, j1.HeldNodeSeconds)
	}
	if !j1.EverReady || j1.FirstReadyTime != 5 || j1.HoldStart != 80 {
		t.Fatalf("j1 readiness: %+v", j1)
	}
	if len(j1.Mates) != 1 || j1.Mates[0] != (job.MateRef{Domain: "B", Job: 1}) {
		t.Fatalf("j1 mates: %+v", j1.Mates)
	}
	if j2.State != job.Cancelled || j2.EndTime != 700 {
		t.Fatalf("j2: %+v", j2)
	}
}

func TestReplaySkipsEntriesCoveredBySnapshot(t *testing.T) {
	snap := &Snapshot{Domain: "A", Seq: 3, T: 50, Jobs: []JobRecord{
		{ID: 1, Nodes: 16, Runtime: 600, Walltime: 600, Submit: 5, State: "holding", HoldStart: 5, Holds: 1},
	}}
	entries := []Entry{
		{Seq: 3, T: 5, Op: OpHold, Job: 1, Holds: 1}, // covered: must be skipped
		{Seq: 4, T: 90, Op: OpStart, Job: 1, Start: 90, Holds: 1},
	}
	st, err := Replay(snap, entries)
	if err != nil {
		t.Fatal(err)
	}
	if st.Domain != "A" || st.Entries != 1 || st.T != 90 {
		t.Fatalf("state: %+v", st)
	}
	if st.Jobs[0].State != job.Running || st.Jobs[0].StartTime != 90 {
		t.Fatalf("job: %+v", st.Jobs[0])
	}
}

func TestReplayRejectsIllegalHistories(t *testing.T) {
	cases := []struct {
		name    string
		entries []Entry
	}{
		{"double start", []Entry{
			{Seq: 1, T: 0, Op: OpSubmit, Job: 1, Nodes: 1, Submit: 0},
			{Seq: 2, T: 1, Op: OpStart, Job: 1, Start: 1},
			{Seq: 3, T: 2, Op: OpStart, Job: 1, Start: 2},
		}},
		{"start of unknown job", []Entry{
			{Seq: 1, T: 1, Op: OpStart, Job: 1, Start: 1},
		}},
		{"hold after completion", []Entry{
			{Seq: 1, T: 0, Op: OpSubmit, Job: 1, Nodes: 1, Submit: 0},
			{Seq: 2, T: 1, Op: OpStart, Job: 1, Start: 1},
			{Seq: 3, T: 2, Op: OpComplete, Job: 1},
			{Seq: 4, T: 3, Op: OpHold, Job: 1, Holds: 1},
		}},
		{"expect of known job", []Entry{
			{Seq: 1, T: 0, Op: OpSubmit, Job: 1, Nodes: 1, Submit: 0},
			{Seq: 2, T: 1, Op: OpExpect, Job: 1, Nodes: 1},
		}},
		{"unknown op", []Entry{
			{Seq: 1, T: 0, Op: Op("warp"), Job: 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Replay(nil, tc.entries); err == nil {
				t.Fatal("illegal history replayed without error")
			}
		})
	}
}

// liveDomain builds a manager journaled by a Recorder, closing over the
// manager pointer the way the daemon does.
func liveDomain(t *testing.T, eng *sim.Engine, name string, nodes int, store *Store) *resmgr.Manager {
	t.Helper()
	var m *resmgr.Manager
	rec := NewRecorder(store, func() Snapshot { return ManagerSnapshot(m) }, func(err error) {
		t.Errorf("journal %s: %v", name, err)
	})
	m = resmgr.New(eng, resmgr.Options{
		Name: name, Pool: cluster.New(name, nodes),
		Policy: policy.FCFS{}, Backfilling: true,
		Cosched:  cosched.DefaultConfig(cosched.Hold),
		Observer: rec,
	})
	return m
}

func openStore(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestRecorderReplayMatchesLiveState runs a coupled simulation under the
// recorder and checks that replaying the journal reproduces the managers'
// final job tables exactly. SnapshotEvery is tiny so compaction happens
// mid-run and replay crosses snapshot boundaries.
func TestRecorderReplayMatchesLiveState(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	storeA := openStore(t, dirA, Options{SnapshotEvery: 4})
	storeB := openStore(t, dirB, Options{SnapshotEvery: 4})
	eng := sim.NewEngine()
	a := liveDomain(t, eng, "A", 32, storeA)
	b := liveDomain(t, eng, "B", 32, storeB)
	a.AddPeer("B", b)
	b.AddPeer("A", a)

	a1 := job.New(1, 16, 0, 600, 600)
	b1 := job.New(1, 16, 100, 600, 600)
	a1.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	b1.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	a2 := job.New(2, 32, 50, 300, 300)
	b3 := job.New(3, 8, 20, 200, 200)
	for _, sub := range []struct {
		m *resmgr.Manager
		j *job.Job
	}{{a, a1}, {a, a2}, {b, b1}, {b, b3}} {
		if err := sub.m.SubmitAt(sub.j); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if a1.State != job.Completed || b1.State != job.Completed {
		t.Fatalf("pair did not complete: %s / %s", a1.State, b1.State)
	}
	if err := storeA.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := storeB.Sync(); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		dir string
		m   *resmgr.Manager
	}{{dirA, a}, {dirB, b}} {
		re := openStore(t, tc.dir, Options{})
		snap, entries := re.Recovered()
		if snap == nil {
			t.Fatalf("%s: no snapshot despite SnapshotEvery=4", tc.m.Name())
		}
		st, err := Replay(snap, entries)
		if err != nil {
			t.Fatalf("%s: replay: %v", tc.m.Name(), err)
		}
		live := ManagerSnapshot(tc.m)
		if len(st.Jobs) != len(live.Jobs) {
			t.Fatalf("%s: replay has %d jobs, live has %d", tc.m.Name(), len(st.Jobs), len(live.Jobs))
		}
		for i, j := range st.Jobs {
			want, err := live.Jobs[i].Job()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(j, want) {
				t.Fatalf("%s job %d:\n replay %+v\n live   %+v", tc.m.Name(), j.ID, j, want)
			}
		}
	}
}

// TestRestoreContinuesAfterCrash is the core recovery scenario: both
// domains journal, the simulation is cut mid-run (a1 holding for a mate
// not yet submitted, b3 running, a2 queued), and fresh managers rebuilt
// from the journals alone finish the workload with the co-start intact.
func TestRestoreContinuesAfterCrash(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	storeA := openStore(t, dirA, Options{})
	storeB := openStore(t, dirB, Options{})
	eng := sim.NewEngine()
	a := liveDomain(t, eng, "A", 32, storeA)
	b := liveDomain(t, eng, "B", 32, storeB)
	a.AddPeer("B", b)
	b.AddPeer("A", a)

	a1 := job.New(1, 16, 0, 600, 600)
	b1 := job.New(1, 16, 100, 600, 600)
	a1.Mates = []job.MateRef{{Domain: "B", Job: 1}}
	b1.Mates = []job.MateRef{{Domain: "A", Job: 1}}
	a2 := job.New(2, 32, 50, 300, 300)
	b3 := job.New(3, 8, 20, 200, 200)
	for _, sub := range []struct {
		m *resmgr.Manager
		j *job.Job
	}{{a, a1}, {a, a2}, {b, b1}, {b, b3}} {
		if err := sub.m.SubmitAt(sub.j); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(80) // crash: a1 holding, a2 queued, b3 running, b1 expected
	if a1.State != job.Holding || b3.State != job.Running {
		t.Fatalf("pre-crash states: a1=%s b3=%s", a1.State, b3.State)
	}
	if err := storeA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := storeB.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh engine, fresh managers, state from the journals only.
	eng2 := sim.NewEngine()
	a = liveDomain(t, eng2, "A", 32, openStore(t, t.TempDir(), Options{}))
	b = liveDomain(t, eng2, "B", 32, openStore(t, t.TempDir(), Options{}))
	a.AddPeer("B", b)
	b.AddPeer("A", a)
	var restored []*job.Job
	for _, rt := range []struct {
		dir string
		m   *resmgr.Manager
	}{{dirB, b}, {dirA, a}} { // B first: its last record is earlier
		re := openStore(t, rt.dir, Options{})
		snap, entries := re.Recovered()
		st, err := Replay(snap, entries)
		if err != nil {
			t.Fatalf("%s: replay: %v", rt.m.Name(), err)
		}
		stats, err := Restore(rt.m, st)
		if err != nil {
			t.Fatalf("%s: restore: %v", rt.m.Name(), err)
		}
		if rt.m.Name() == "A" && (stats.Holding != 1 || stats.Queued != 1) {
			t.Fatalf("A restore stats: %s", stats)
		}
		if rt.m.Name() == "B" && (stats.Running != 1 || stats.Expected != 1) {
			t.Fatalf("B restore stats: %s", stats)
		}
		restored = append(restored, st.Jobs...)
	}
	// b1 was only Expected before the crash; re-arm its arrival the way a
	// trace player (or qsub) would after a restart.
	rb1, ok := b.Job(1)
	if !ok || rb1.State != job.Unsubmitted {
		t.Fatalf("b1 not restored as expected: %v %v", rb1, ok)
	}
	if _, err := eng2.At(rb1.SubmitTime, sim.PrioritySubmit, func(sim.Time) {
		if err := b.Submit(rb1); err != nil {
			t.Errorf("resubmit b1: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	eng2.Run()

	ra1, _ := a.Job(1)
	ra2, _ := a.Job(2)
	rb3, _ := b.Job(3)
	for _, j := range []*job.Job{ra1, ra2, rb1, rb3} {
		if j.State != job.Completed {
			t.Fatalf("job %s not completed after recovery", j)
		}
	}
	if ra1.StartTime != rb1.StartTime || ra1.StartTime != 100 {
		t.Fatalf("co-start after recovery: a1=%d b1=%d, want 100", ra1.StartTime, rb1.StartTime)
	}
	if rb3.EndTime != 220 {
		t.Fatalf("b3 end = %d, want 220 (runtime preserved across restart)", rb3.EndTime)
	}
	if ra2.StartTime != 700 {
		t.Fatalf("a2 start = %d, want 700 (after the pair finishes)", ra2.StartTime)
	}
	if a.Pool().Free() != 32 || b.Pool().Free() != 32 {
		t.Fatalf("pools not drained: %s / %s", a.Pool(), b.Pool())
	}
	_ = restored
}

// buildBigLog builds n entries spread over n/4 jobs through a full
// submit→hold→start→complete lifecycle.
func buildBigLog(n int) []Entry {
	entries := make([]Entry, 0, n)
	seq := uint64(0)
	add := func(e Entry) {
		seq++
		e.Seq = seq
		entries = append(entries, e)
	}
	for id := job.ID(1); len(entries)+4 <= n; id++ {
		t := sim.Time(id) * 10
		add(Entry{T: t, Op: OpSubmit, Job: id, Nodes: 8, Runtime: 600, Walltime: 600, Submit: t,
			Mates: []job.MateRef{{Domain: "B", Job: id}}})
		add(Entry{T: t, Op: OpHold, Job: id, HoldStart: t, Holds: 1, Ready: true, ReadyAt: t})
		add(Entry{T: t + 50, Op: OpStart, Job: id, Start: t + 50, Holds: 1, HeldNS: 400, Ready: true, ReadyAt: t})
		add(Entry{T: t + 650, Op: OpComplete, Job: id, HeldNS: 400})
	}
	for len(entries) < n {
		add(Entry{T: 0, Op: OpPeerDecision, Job: 1, Method: "try_start_mate"})
	}
	return entries
}

func BenchmarkReplay10k(b *testing.B) {
	entries := buildBigLog(10_000)
	var buf []byte
	for i := range entries {
		var err error
		buf, err = AppendRecord(buf, &entries[i])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, _, torn := DecodeEntries(buf)
		if torn != nil || len(decoded) != len(entries) {
			b.Fatalf("decode: %d records, torn %v", len(decoded), torn)
		}
		if _, err := Replay(nil, decoded); err != nil {
			b.Fatal(err)
		}
	}
}

package journal

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
)

// flakyFS wraps the real disk and fails exactly the operations a test arms,
// counting the real syncs and closes that get through — the instrument for
// pinning the fsyncgate contract (a failed fsync is never retried).
type flakyFS struct {
	OSFS

	mu          sync.Mutex
	failWrite   error // next file write fails with this, then disarms
	failSync    error // next file fsync fails with this, then disarms
	failSyncDir error // next directory fsync fails with this, then disarms
	syncs       int   // fsyncs that reached the real file
	closes      int   // closes that reached the real file
}

func (f *flakyFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	inner, err := f.OSFS.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{fs: f, inner: inner}, nil
}

func (f *flakyFS) SyncDir(dir string) error {
	f.mu.Lock()
	err := f.failSyncDir
	f.failSyncDir = nil
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.OSFS.SyncDir(dir)
}

func (f *flakyFS) realSyncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *flakyFS) realCloses() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closes
}

func (f *flakyFS) arm(set func(*flakyFS)) {
	f.mu.Lock()
	set(f)
	f.mu.Unlock()
}

type flakyFile struct {
	fs    *flakyFS
	inner File
}

func (f *flakyFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	err := f.fs.failWrite
	f.fs.failWrite = nil
	f.fs.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return f.inner.Write(p)
}

func (f *flakyFile) Sync() error {
	f.fs.mu.Lock()
	err := f.fs.failSync
	f.fs.failSync = nil
	if err == nil {
		f.fs.syncs++
	}
	f.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Sync()
}

func (f *flakyFile) Truncate(size int64) error { return f.inner.Truncate(size) }

func (f *flakyFile) Close() error {
	f.fs.mu.Lock()
	f.fs.closes++
	f.fs.mu.Unlock()
	return f.inner.Close()
}

// TestFsyncFailurePoisonsForever pins the fsyncgate contract: one failed
// fsync latches the store permanently; the failed flush is never retried,
// even though a retry would "succeed".
func TestFsyncFailurePoisonsForever(t *testing.T) {
	ffs := &flakyFS{}
	s, err := Open(t.TempDir(), Options{FS: ffs}) // FsyncInterval 0: sync per append
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&Entry{Op: OpHold, Job: 1}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	healthySyncs := ffs.realSyncs()

	ffs.arm(func(f *flakyFS) { f.failSync = syscall.EIO })
	err = s.Append(&Entry{Op: OpHold, Job: 1})
	if err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("append over failed fsync = %v, want EIO", err)
	}

	// The failure is latched: every later durability operation reports
	// ErrPoisoned without touching the file, even though the disk is
	// "healthy" again (failSync disarmed itself).
	for name, op := range map[string]func() error{
		"Append":  func() error { return s.Append(&Entry{Op: OpHold, Job: 1}) },
		"Sync":    func() error { return s.Sync() },
		"Compact": func() error { return s.Compact(Snapshot{}) },
	} {
		if err := op(); !errors.Is(err, ErrPoisoned) {
			t.Fatalf("%s on poisoned store = %v, want ErrPoisoned", name, err)
		}
	}
	if got := ffs.realSyncs(); got != healthySyncs {
		t.Fatalf("real fsyncs after poison = %d, want %d: a failed fsync must never be retried", got, healthySyncs)
	}
	if perr := s.Poisoned(); !errors.Is(perr, ErrPoisoned) || !errors.Is(perr, syscall.EIO) {
		t.Fatalf("Poisoned() = %v, want ErrPoisoned wrapping EIO", perr)
	}

	st := s.Stats()
	if st.FsyncFailures != 1 || !st.Poisoned {
		t.Fatalf("stats = %+v, want FsyncFailures=1 Poisoned=true", st)
	}

	// Close still releases the descriptor but reports the poison — a drain
	// path must not mistake a degraded journal for a clean shutdown.
	if err := s.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Close on poisoned store = %v, want ErrPoisoned", err)
	}
	if ffs.realCloses() != 1 {
		t.Fatalf("real closes = %d, want 1 (poisoned close must still release the fd)", ffs.realCloses())
	}
}

// TestDiskFullPoisonsAndStaysClassifiable: an ENOSPC write poisons the
// store, and the root cause survives the ErrPoisoned wrapping so the
// daemon's degradation controller can tell disk-full from EIO.
func TestDiskFullPoisonsAndStaysClassifiable(t *testing.T) {
	ffs := &flakyFS{}
	s, err := Open(t.TempDir(), Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	ffs.arm(func(f *flakyFS) { f.failWrite = syscall.ENOSPC })
	if err := s.Append(&Entry{Op: OpHold, Job: 1}); !IsDiskFull(err) {
		t.Fatalf("append on full disk = %v, want ENOSPC", err)
	}
	// The latched error keeps both the sentinel and the classification.
	err = s.Append(&Entry{Op: OpHold, Job: 1})
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after disk-full = %v, want ErrPoisoned", err)
	}
	if !IsDiskFull(err) {
		t.Fatalf("append after disk-full = %v, want IsDiskFull to survive the poisoning wrap", err)
	}
	if !IsDiskFull(s.Poisoned()) {
		t.Fatalf("Poisoned() = %v, want IsDiskFull", s.Poisoned())
	}
}

// TestCompactDirFsyncFailureKeepsWAL: if the directory fsync after the
// snapshot rename fails, Compact must report it and must NOT truncate the
// WAL — the rename's durability is unknown, and the WAL is the only copy
// guaranteed to be on disk.
func TestCompactDirFsyncFailureKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{}
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(&Entry{Op: OpHold, Job: 1}); err != nil {
			t.Fatal(err)
		}
	}
	ffs.arm(func(f *flakyFS) { f.failSyncDir = syscall.EIO })
	if err := s.Compact(Snapshot{}); err == nil || !errors.Is(err, syscall.EIO) {
		t.Fatalf("Compact over failed dir fsync = %v, want EIO", err)
	}
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("WAL truncated despite failed directory fsync: entries lost if the rename never hit disk")
	}
	// A dir-fsync failure is a failed compact, not WAL corruption: the
	// store stays healthy and the retried compact succeeds.
	if err := s.Compact(Snapshot{}); err != nil {
		t.Fatalf("retried Compact: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if snap, entries := re.Recovered(); snap == nil || len(entries) != 0 {
		t.Fatalf("recovered snap=%v entries=%d, want snapshot and empty WAL", snap, len(entries))
	}
}

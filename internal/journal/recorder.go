package journal

import (
	"sync/atomic"

	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// Recorder is the journaling resmgr.Observer: every manager transition
// becomes one appended write-ahead entry, and every SnapshotEvery entries
// it takes a compacting snapshot (via the injected source) so the log and
// boot-time replay stay bounded.
//
// Append/compact failures go to onErr and the manager keeps scheduling —
// availability over durability; the operator decides whether a daemon with
// a dead disk should die.
type Recorder struct {
	store *Store
	src   func() Snapshot
	onErr func(error)

	// detached latches when the owner gives up on the journal (store
	// poisoned, disk full): every later callback is dropped instead of
	// grinding each transition through a dead WAL.
	detached atomic.Bool
}

// Compile-time interface checks: the recorder hears every transition the
// manager can report, including the optional extensions.
var (
	_ resmgr.Observer             = (*Recorder)(nil)
	_ resmgr.ExpectObserver       = (*Recorder)(nil)
	_ resmgr.PeerDecisionObserver = (*Recorder)(nil)
)

// NewRecorder wires a recorder to a store. src produces the compacting
// snapshot (typically ManagerSnapshot under the live driver's lock — the
// recorder only calls it from observer callbacks, which already run on the
// manager's thread). onErr receives append/compact failures; nil discards
// them.
func NewRecorder(store *Store, src func() Snapshot, onErr func(error)) *Recorder {
	if onErr == nil {
		onErr = func(error) {}
	}
	return &Recorder{store: store, src: src, onErr: onErr}
}

// Detach permanently stops the recorder: later observer callbacks become
// no-ops. The daemon's degradation controller calls this when the store
// poisons, switching the domain to loud journal-less operation.
func (r *Recorder) Detach() { r.detached.Store(true) }

// Detached reports whether Detach has been called.
func (r *Recorder) Detached() bool { return r.detached.Load() }

// append writes one entry, then compacts when the cadence is reached.
func (r *Recorder) append(e *Entry) {
	if r.detached.Load() {
		return
	}
	if err := r.store.Append(e); err != nil {
		r.onErr(err)
		return
	}
	if r.src != nil && r.store.AppendedSinceCompact() >= uint64(r.store.SnapshotEvery()) {
		if err := r.store.Compact(r.src()); err != nil {
			r.onErr(err)
		}
	}
}

// describe fills the job-description fields carried by expect/submit
// records, which must let replay rebuild a job the snapshot never saw.
func describe(e *Entry, j *job.Job) {
	e.Name = j.Name
	e.User = j.User
	e.Nodes = j.Nodes
	e.Runtime = j.Runtime
	e.Walltime = j.Walltime
	e.Submit = j.SubmitTime
	e.Mates = append([]job.MateRef(nil), j.Mates...)
}

// JobExpected implements resmgr.ExpectObserver.
func (r *Recorder) JobExpected(now sim.Time, j *job.Job) {
	e := Entry{T: now, Op: OpExpect, Job: j.ID}
	describe(&e, j)
	r.append(&e)
}

// JobSubmitted implements resmgr.Observer.
func (r *Recorder) JobSubmitted(now sim.Time, j *job.Job) {
	e := Entry{T: now, Op: OpSubmit, Job: j.ID}
	describe(&e, j)
	r.append(&e)
}

// JobStarted implements resmgr.Observer. now is the agreed co-start
// instant, which for peer-resolved pairs may differ from the local clock;
// j.StartTime carries the same value.
func (r *Recorder) JobStarted(now sim.Time, j *job.Job) {
	r.append(&Entry{
		T: now, Op: OpStart, Job: j.ID,
		Start:   j.StartTime,
		Ready:   j.EverReady,
		ReadyAt: j.FirstReadyTime,
		Yields:  j.YieldCount,
		Holds:   j.HoldCount,
		HeldNS:  j.HeldNodeSeconds,
	})
}

// JobHeld implements resmgr.Observer. A second or later hold is journaled
// as OpRehold so replay and audits can tell first holds from re-holds.
func (r *Recorder) JobHeld(now sim.Time, j *job.Job) {
	op := OpHold
	if j.HoldCount > 1 {
		op = OpRehold
	}
	r.append(&Entry{
		T: now, Op: op, Job: j.ID,
		HoldStart: j.HoldStart,
		Holds:     j.HoldCount,
		Ready:     j.EverReady,
		ReadyAt:   j.FirstReadyTime,
	})
}

// JobYielded implements resmgr.Observer.
func (r *Recorder) JobYielded(now sim.Time, j *job.Job) {
	r.append(&Entry{T: now, Op: OpYield, Job: j.ID, Yields: j.YieldCount})
}

// JobReleased implements resmgr.Observer.
func (r *Recorder) JobReleased(now sim.Time, j *job.Job, requeued bool) {
	r.append(&Entry{T: now, Op: OpRelease, Job: j.ID, HeldNS: j.HeldNodeSeconds, OK: requeued})
}

// JobCompleted implements resmgr.Observer.
func (r *Recorder) JobCompleted(now sim.Time, j *job.Job) {
	r.append(&Entry{T: now, Op: OpComplete, Job: j.ID, HeldNS: j.HeldNodeSeconds})
}

// JobCancelled implements resmgr.Observer.
func (r *Recorder) JobCancelled(now sim.Time, j *job.Job) {
	r.append(&Entry{T: now, Op: OpCancel, Job: j.ID})
}

// PeerDecision implements resmgr.PeerDecisionObserver (audit-only).
func (r *Recorder) PeerDecision(now sim.Time, method string, id job.ID, ok bool) {
	r.append(&Entry{T: now, Op: OpPeerDecision, Job: id, Method: method, OK: ok})
}

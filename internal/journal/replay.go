package journal

import (
	"fmt"
	"sort"

	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// RecoveredState is the result of folding a snapshot and its entry tail:
// per-job final states at virtual time T, ready to be installed into a
// fresh manager.
type RecoveredState struct {
	Domain      string
	T           sim.Time // virtual time of the last applied record (or snapshot)
	Jobs        []*job.Job
	Entries     int    // entries applied on top of the snapshot
	SnapshotSeq uint64 // sequence number the snapshot covered (0 = no snapshot)
}

// Replay folds snap (nil for a snapshotless log) and entries into final job
// states. Entries at or below the snapshot's sequence number are already
// folded in and skipped. Every transition goes through the job package's
// lifecycle state machine, so an impossible history — a double start, a
// completed job re-held — is an error, never silently wrong state.
func Replay(snap *Snapshot, entries []Entry) (*RecoveredState, error) {
	st := &RecoveredState{}
	jobs := make(map[job.ID]*job.Job)
	if snap != nil {
		st.Domain = snap.Domain
		st.T = snap.T
		st.SnapshotSeq = snap.Seq
		for _, r := range snap.Jobs {
			j, err := r.Job()
			if err != nil {
				return nil, fmt.Errorf("journal: snapshot job %d: %w", r.ID, err)
			}
			if _, dup := jobs[j.ID]; dup {
				return nil, fmt.Errorf("journal: snapshot job %d duplicated", j.ID)
			}
			jobs[j.ID] = j
		}
	}
	for i := range entries {
		e := &entries[i]
		if e.Seq <= st.SnapshotSeq {
			continue
		}
		if err := applyEntry(jobs, e); err != nil {
			return nil, err
		}
		st.Entries++
		if e.T > st.T {
			st.T = e.T
		}
	}
	st.Jobs = make([]*job.Job, 0, len(jobs))
	for _, j := range jobs {
		st.Jobs = append(st.Jobs, j)
	}
	sort.Slice(st.Jobs, func(a, b int) bool { return st.Jobs[a].ID < st.Jobs[b].ID })
	return st, nil
}

// describedJob builds a job from an expect/submit record's description.
func describedJob(e *Entry) *job.Job {
	return &job.Job{
		ID:         e.Job,
		Name:       e.Name,
		User:       e.User,
		Nodes:      e.Nodes,
		Runtime:    e.Runtime,
		Walltime:   e.Walltime,
		SubmitTime: e.Submit,
		Mates:      append([]job.MateRef(nil), e.Mates...),
		State:      job.Unsubmitted,
	}
}

// applyEntry folds one record into the job table. Counters in the record
// are absolute values, so applying a record is idempotent with respect to
// them; state changes go through job.Advance for legality.
func applyEntry(jobs map[job.ID]*job.Job, e *Entry) error {
	advance := func(j *job.Job, next job.State) error {
		if err := j.Advance(next); err != nil {
			return fmt.Errorf("journal: replay seq %d (%s): %w", e.Seq, e.Op, err)
		}
		return nil
	}
	j, known := jobs[e.Job]
	switch e.Op {
	case OpExpect:
		if known {
			return fmt.Errorf("journal: replay seq %d: expect for known job %d", e.Seq, e.Job)
		}
		jobs[e.Job] = describedJob(e)
	case OpSubmit:
		if !known {
			j = describedJob(e)
			jobs[e.Job] = j
		}
		if err := advance(j, job.Queued); err != nil {
			return err
		}
	case OpStart:
		if !known {
			return fmt.Errorf("journal: replay seq %d: start for unknown job %d", e.Seq, e.Job)
		}
		if err := advance(j, job.Running); err != nil {
			return err
		}
		j.StartTime = e.Start
		j.YieldCount = e.Yields
		j.HoldCount = e.Holds
		j.HeldNodeSeconds = e.HeldNS
		j.EverReady = e.Ready
		j.FirstReadyTime = e.ReadyAt
	case OpHold, OpRehold:
		if !known {
			return fmt.Errorf("journal: replay seq %d: hold for unknown job %d", e.Seq, e.Job)
		}
		if err := advance(j, job.Holding); err != nil {
			return err
		}
		j.HoldStart = e.HoldStart
		j.HoldCount = e.Holds
		j.EverReady = e.Ready
		j.FirstReadyTime = e.ReadyAt
	case OpYield:
		if !known {
			return fmt.Errorf("journal: replay seq %d: yield for unknown job %d", e.Seq, e.Job)
		}
		j.YieldCount = e.Yields
	case OpRelease:
		if !known {
			return fmt.Errorf("journal: replay seq %d: release for unknown job %d", e.Seq, e.Job)
		}
		if err := advance(j, job.Queued); err != nil {
			return err
		}
		j.HeldNodeSeconds = e.HeldNS
	case OpComplete:
		if !known {
			return fmt.Errorf("journal: replay seq %d: complete for unknown job %d", e.Seq, e.Job)
		}
		if err := advance(j, job.Completed); err != nil {
			return err
		}
		j.EndTime = e.T
		j.HeldNodeSeconds = e.HeldNS
	case OpCancel:
		if !known {
			return fmt.Errorf("journal: replay seq %d: cancel for unknown job %d", e.Seq, e.Job)
		}
		if err := advance(j, job.Cancelled); err != nil {
			return err
		}
		j.EndTime = e.T
	case OpPeerDecision:
		// Audit-only: the state effects of the decision were journaled as
		// the start/hold transitions they caused.
	default:
		return fmt.Errorf("journal: replay seq %d: unknown op %q", e.Seq, e.Op)
	}
	return nil
}

// RestoreStats counts what Restore installed, by state.
type RestoreStats struct {
	Expected  int
	Queued    int
	Holding   int
	Running   int
	Completed int
	Cancelled int
}

// Total returns the number of restored jobs.
func (s RestoreStats) Total() int {
	return s.Expected + s.Queued + s.Holding + s.Running + s.Completed + s.Cancelled
}

// String renders the per-state counts for logs.
func (s RestoreStats) String() string {
	return fmt.Sprintf("expected=%d queued=%d holding=%d running=%d completed=%d cancelled=%d",
		s.Expected, s.Queued, s.Holding, s.Running, s.Completed, s.Cancelled)
}

// Restore installs a recovered state into a fresh manager: the engine is
// advanced to the recovery time, every job is re-installed (re-acquiring
// allocations and rescheduling completions), and one scheduling iteration
// is requested. The manager must be newly constructed with no jobs.
func Restore(m *resmgr.Manager, st *RecoveredState) (RestoreStats, error) {
	var stats RestoreStats
	m.Engine().RunUntil(st.T)
	for _, j := range st.Jobs {
		if err := m.RestoreJob(j); err != nil {
			return stats, fmt.Errorf("journal: restore job %d: %w", j.ID, err)
		}
		switch j.State {
		case job.Unsubmitted:
			stats.Expected++
		case job.Queued:
			stats.Queued++
		case job.Holding:
			stats.Holding++
		case job.Running:
			stats.Running++
		case job.Completed:
			stats.Completed++
		case job.Cancelled:
			stats.Cancelled++
		}
	}
	m.RequestIteration()
	return stats, nil
}

// ReemitLifecycle replays each restored job's lifecycle through an
// observer. The event log's buffered tail dies with a crash, so after a
// restore the daemon re-emits the records the restored state implies;
// records already flushed before the crash are re-written with identical
// values, which downstream readers treat as harmless duplicates.
func ReemitLifecycle(obs resmgr.Observer, jobs []*job.Job) {
	for _, j := range jobs {
		if j.State == job.Unsubmitted {
			continue
		}
		obs.JobSubmitted(j.SubmitTime, j)
		switch j.State {
		case job.Holding:
			obs.JobHeld(j.HoldStart, j)
		case job.Running:
			obs.JobStarted(j.StartTime, j)
		case job.Completed:
			obs.JobStarted(j.StartTime, j)
			obs.JobCompleted(j.EndTime, j)
		case job.Cancelled:
			obs.JobCancelled(j.EndTime, j)
		}
	}
}

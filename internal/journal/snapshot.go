package journal

import (
	"sort"

	"cosched/internal/job"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// JobRecord is one job's full serialization inside a snapshot: the request
// fields, the lifecycle state (by name, so snapshots stay debuggable), and
// every mutable counter the manager owns.
type JobRecord struct {
	ID       job.ID        `json:"id"`
	Name     string        `json:"name,omitempty"`
	User     int           `json:"user,omitempty"`
	Nodes    int           `json:"nodes"`
	Runtime  sim.Duration  `json:"runtime"`
	Walltime sim.Duration  `json:"walltime"`
	Submit   sim.Time      `json:"submit"`
	Mates    []job.MateRef `json:"mates,omitempty"`

	State     string   `json:"state"`
	Start     sim.Time `json:"start,omitempty"`
	End       sim.Time `json:"end,omitempty"`
	HoldStart sim.Time `json:"hold_start,omitempty"`
	Yields    int      `json:"yields,omitempty"`
	Holds     int      `json:"holds,omitempty"`
	HeldNS    int64    `json:"held_ns,omitempty"`
	Ready     bool     `json:"ready,omitempty"`
	ReadyAt   sim.Time `json:"ready_at,omitempty"`
}

// RecordJob serializes a live job.
func RecordJob(j *job.Job) JobRecord {
	return JobRecord{
		ID:       j.ID,
		Name:     j.Name,
		User:     j.User,
		Nodes:    j.Nodes,
		Runtime:  j.Runtime,
		Walltime: j.Walltime,
		Submit:   j.SubmitTime,
		Mates:    append([]job.MateRef(nil), j.Mates...),

		State:     j.State.String(),
		Start:     j.StartTime,
		End:       j.EndTime,
		HoldStart: j.HoldStart,
		Yields:    j.YieldCount,
		Holds:     j.HoldCount,
		HeldNS:    j.HeldNodeSeconds,
		Ready:     j.EverReady,
		ReadyAt:   j.FirstReadyTime,
	}
}

// Job rebuilds the live job. The state name must parse; everything else is
// carried verbatim.
func (r JobRecord) Job() (*job.Job, error) {
	st, err := job.ParseState(r.State)
	if err != nil {
		return nil, err
	}
	return &job.Job{
		ID:         r.ID,
		Name:       r.Name,
		User:       r.User,
		Nodes:      r.Nodes,
		Runtime:    r.Runtime,
		Walltime:   r.Walltime,
		SubmitTime: r.Submit,
		Mates:      append([]job.MateRef(nil), r.Mates...),

		State:           st,
		StartTime:       r.Start,
		EndTime:         r.End,
		HoldStart:       r.HoldStart,
		YieldCount:      r.Yields,
		HoldCount:       r.Holds,
		HeldNodeSeconds: r.HeldNS,
		EverReady:       r.Ready,
		FirstReadyTime:  r.ReadyAt,
	}, nil
}

// Snapshot is a compacting checkpoint: the domain's complete job table as
// of write-ahead sequence number Seq at virtual time T. Entries with
// sequence numbers ≤ Seq are already folded in and skipped on replay.
type Snapshot struct {
	Domain string      `json:"domain"`
	Seq    uint64      `json:"seq"`
	T      sim.Time    `json:"t"`
	Jobs   []JobRecord `json:"jobs"`
}

// ManagerSnapshot captures a manager's current job table (sorted by job ID
// for stable bytes). Seq is filled in by Store.Compact, which knows the
// write-ahead position the snapshot corresponds to. Must run on the
// manager's thread (in live mode: under the driver lock).
func ManagerSnapshot(m *resmgr.Manager) Snapshot {
	jobs := m.Jobs()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	s := Snapshot{Domain: m.Name(), T: m.Engine().Now(), Jobs: make([]JobRecord, 0, len(jobs))}
	for _, j := range jobs {
		s.Jobs = append(s.Jobs, RecordJob(j))
	}
	return s
}

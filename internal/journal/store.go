package journal

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// On-disk layout inside a journal directory.
const (
	walName     = "journal.wal"
	snapName    = "snapshot.json"
	snapTmpName = "snapshot.json.tmp"
)

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("journal: store closed")

// ErrPoisoned is returned by every durability operation after a WAL write
// or fsync has failed. The store never retries a failed fsync as if it
// could succeed: the kernel may already have dropped the dirty pages, so a
// later "successful" fsync would report durability for data that never
// reached disk (the fsyncgate failure mode). Once poisoned, the store
// stays poisoned for its lifetime; the owner must degrade loudly (see
// cmd/coschedd's journal-less mode) or crash, never continue as if the
// journal were intact.
var ErrPoisoned = errors.New("journal: store poisoned by storage failure")

// Options configures a Store.
type Options struct {
	// FsyncInterval batches fsyncs: an append syncs only when this much
	// wall time passed since the last sync. 0 syncs after every append —
	// maximal durability, one fsync per transition. Negative is invalid.
	FsyncInterval time.Duration
	// SnapshotEvery is how many appended entries trigger a compacting
	// snapshot (used by the Recorder). 0 takes the default of 1024.
	SnapshotEvery int
	// Now overrides the fsync-batching clock (tests). nil reads the wall
	// clock — batching paces real disk writes, never simulation time.
	Now func() time.Time
	// FS overrides the filesystem (fault-injection harnesses). nil uses
	// the real disk (OSFS).
	FS FS
}

// Store owns one journal directory: the append handle on the write-ahead
// log and the snapshot file. Opening a store performs recovery — the
// snapshot is loaded, the WAL tail is decoded torn-tolerantly, and the
// file is truncated to its last valid record — so a Store is always in a
// consistent appendable state once Open returns. Safe for concurrent use.
type Store struct {
	dir string
	opt Options
	fs  FS

	// Recovery results, stashed at Open for the caller.
	snap    *Snapshot
	entries []Entry
	torn    *TornTail

	mu       sync.Mutex
	f        File
	buf      []byte
	seq      uint64
	appended uint64 // entries since open/compact; drives snapshot cadence
	dirty    bool   // unsynced bytes in the WAL
	lastSync time.Time
	closed   bool
	poisoned error // first WAL write/fsync failure; sticky for the lifetime

	// Lifetime counters for /metrics: unlike appended, these never reset.
	appends    uint64 // entries written to the WAL since Open
	fsyncs     uint64 // actual fsync(2) calls issued (batching skips count 0)
	fsyncFails uint64 // fsync(2) calls that failed (each one poisons)
	compacts   uint64 // snapshots taken
}

// Open opens (creating if needed) the journal directory and recovers its
// contents: snapshot loaded, WAL decoded, torn tail truncated away. An
// unreadable snapshot is an error — snapshots are written atomically, so
// corruption there means something worse than a crash happened, and
// silently dropping the whole job table would be the one unrecoverable
// "recovery". A torn WAL tail is NOT an error; see Torn.
func Open(dir string, opt Options) (*Store, error) {
	if opt.FsyncInterval < 0 {
		return nil, fmt.Errorf("journal: negative FsyncInterval %v", opt.FsyncInterval)
	}
	if opt.SnapshotEvery <= 0 {
		opt.SnapshotEvery = 1024
	}
	vfs := opt.FS
	if vfs == nil {
		vfs = OSFS{}
	}
	if err := vfs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create dir: %w", err)
	}
	s := &Store{dir: dir, opt: opt, fs: vfs}

	if data, err := vfs.ReadFile(filepath.Join(dir, snapName)); err == nil {
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("journal: corrupt snapshot %s: %w", snapName, err)
		}
		s.snap = &snap
		s.seq = snap.Seq
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: read snapshot: %w", err)
	}

	walPath := filepath.Join(dir, walName)
	data, err := vfs.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("journal: read wal: %w", err)
	}
	entries, valid, torn := DecodeEntries(data)
	s.entries, s.torn = entries, torn
	if torn != nil {
		if err := vfs.Truncate(walPath, valid); err != nil {
			return nil, fmt.Errorf("journal: truncate torn wal: %w", err)
		}
	}
	if n := len(entries); n > 0 && entries[n-1].Seq > s.seq {
		s.seq = entries[n-1].Seq
	}

	f, err := vfs.OpenFile(walPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open wal: %w", err)
	}
	s.f = f
	s.lastSync = s.now()
	return s, nil
}

// Recovered returns what Open found: the snapshot (nil if none existed)
// and the valid WAL entries after it.
func (s *Store) Recovered() (*Snapshot, []Entry) { return s.snap, s.entries }

// Torn returns the description of the WAL tail Open truncated away, or nil
// if the log ended cleanly.
func (s *Store) Torn() *TornTail { return s.torn }

// Dir returns the journal directory.
func (s *Store) Dir() string { return s.dir }

// SnapshotEvery returns the (defaulted) snapshot cadence.
func (s *Store) SnapshotEvery() int { return s.opt.SnapshotEvery }

// now reads the fsync-batching clock.
func (s *Store) now() time.Time {
	if s.opt.Now != nil {
		return s.opt.Now()
	}
	//simlint:allow R2 fsync batching paces real disk flushes in the live daemon; tests and simulations inject Options.Now
	return time.Now()
}

// poisonLocked records the first WAL durability failure. Callers hold
// s.mu and return the original error; every later operation returns
// ErrPoisoned wrapping that cause.
func (s *Store) poisonLocked(cause error) {
	if s.poisoned == nil {
		s.poisoned = cause
	}
}

// poisonedErrLocked builds the sticky failure. Both ErrPoisoned and the
// original cause survive errors.Is/As, so callers can still classify the
// root fault (e.g. IsDiskFull) after the store has latched.
func (s *Store) poisonedErrLocked() error {
	return fmt.Errorf("%w: %w", ErrPoisoned, s.poisoned)
}

// Poisoned returns the first WAL write/fsync failure, or nil while the
// store is healthy. Once non-nil it never resets.
func (s *Store) Poisoned() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.poisoned == nil {
		return nil
	}
	return s.poisonedErrLocked()
}

// Append assigns the next sequence number to e and appends its framed
// encoding to the WAL, syncing per the fsync-batching policy.
func (s *Store) Append(e *Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.poisoned != nil {
		return s.poisonedErrLocked()
	}
	e.Seq = s.seq + 1
	buf, err := AppendRecord(s.buf[:0], e)
	if err != nil {
		return err
	}
	s.buf = buf
	if _, err := s.f.Write(buf); err != nil {
		// A failed or short WAL write leaves a partial frame on disk;
		// anything appended after it would sit beyond the tear and be
		// dropped by recovery. Poison rather than write into the void.
		s.poisonLocked(err)
		return fmt.Errorf("journal: append: %w", err)
	}
	s.seq++
	s.appended++
	s.appends++
	s.dirty = true
	if now := s.now(); s.opt.FsyncInterval == 0 || now.Sub(s.lastSync) >= s.opt.FsyncInterval {
		return s.syncLocked(now)
	}
	return nil
}

func (s *Store) syncLocked(now time.Time) error {
	if s.poisoned != nil {
		return s.poisonedErrLocked()
	}
	if !s.dirty {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		// fsyncgate semantics: after a failed fsync the kernel may have
		// discarded the dirty pages, so retrying and succeeding would
		// falsely report durability for lost bytes. Latch the failure;
		// s.dirty intentionally stays true and is never re-flushed.
		s.fsyncFails++
		s.poisonLocked(err)
		return fmt.Errorf("journal: fsync: %w", err)
	}
	s.fsyncs++
	s.dirty = false
	s.lastSync = now
	return nil
}

// Sync flushes any batched appends to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.syncLocked(s.now())
}

// AppendedSinceCompact returns how many entries were appended since the
// store was opened or last compacted.
func (s *Store) AppendedSinceCompact() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Compact makes snap the new durable checkpoint and truncates the WAL.
// The ordering is the crash-safety argument: the snapshot (stamped with
// the current WAL sequence) is written to a temp file, synced, and renamed
// over the old one, and the rename is made durable with a directory fsync
// — only then is the WAL truncated. A crash before the directory sync
// leaves the old snapshot + full WAL; a crash after it leaves the new
// snapshot + a WAL whose entries are all ≤ Seq and thus skipped. Without
// the directory sync there would be a window where the truncate is on disk
// but the rename is not, which loses the entries the snapshot was supposed
// to cover.
func (s *Store) Compact(snap Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.poisoned != nil {
		return s.poisonedErrLocked()
	}
	// The snapshot must cover every durable entry it supersedes.
	if err := s.syncLocked(s.now()); err != nil {
		return err
	}
	snap.Seq = s.seq
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("journal: marshal snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, snapTmpName)
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot tmp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close() //simlint:allow R7 error-path cleanup: the snapshot write already failed and the tmp file is discarded, so this close's error adds nothing
		return fmt.Errorf("journal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close() //simlint:allow R7 error-path cleanup: the snapshot fsync already failed and the tmp file is discarded, so this close's error adds nothing
		return fmt.Errorf("journal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: snapshot close: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("journal: snapshot dir fsync: %w", err)
	}
	if err := s.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: wal truncate: %w", err)
	}
	s.appended = 0
	s.compacts++
	return nil
}

// Stats is a point-in-time view of the store's lifetime counters, exposed
// on the daemon's /metrics endpoint. All fields except Pending are
// monotonically non-decreasing for the life of the Store.
type Stats struct {
	Appends       uint64 // WAL entries appended since Open
	Fsyncs        uint64 // fsync(2) calls actually issued
	FsyncFailures uint64 // fsync(2) calls that failed; any nonzero ⇒ Poisoned
	Compacts      uint64 // compacting snapshots taken
	Pending       uint64 // entries appended since the last compact (resets)
	Seq           uint64 // last assigned sequence number
	Poisoned      bool   // a WAL write or fsync failed; the store is latched
}

// Stats captures the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Appends:       s.appends,
		Fsyncs:        s.fsyncs,
		FsyncFailures: s.fsyncFails,
		Compacts:      s.compacts,
		Pending:       s.appended,
		Seq:           s.seq,
		Poisoned:      s.poisoned != nil,
	}
}

// Close syncs and closes the WAL handle. Closing a poisoned store still
// closes the file descriptor but reports the poison, so a drain path
// cannot mistake a degraded journal for a clean shutdown.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.syncLocked(s.now())
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.closed = true
	return err
}

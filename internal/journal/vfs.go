package journal

import (
	"errors"
	"io/fs"
	"os"
	"syscall"
)

// FS abstracts the file operations a Store performs against its journal
// directory, so fault-injection harnesses (internal/faultplan) can
// interpose short writes, EIO, and disk-full between the store and the
// disk. The production implementation is OSFS; method contracts mirror the
// os package. Every method and every File method is durability-critical:
// simlint R7 flags discarded errors from them exactly as it does for the
// os-level calls they stand in for.
type FS interface {
	MkdirAll(dir string, perm fs.FileMode) error
	ReadFile(path string) ([]byte, error)
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself: the durability point for a
	// preceding rename. Implementations on filesystems that cannot sync
	// directories report nil rather than failing the compaction.
	SyncDir(dir string) error
}

// File is the open-handle subset the store uses.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// OSFS is the production FS: thin forwarding to the os package.
type OSFS struct{}

func (OSFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir makes a rename in dir durable by fsyncing the directory entry.
// Filesystems that reject directory fsync (some network and FAT variants)
// report EINVAL/ENOTSUP; those are treated as "nothing to sync" rather
// than poisoning an otherwise-healthy compaction.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// IsDiskFull reports whether err is an out-of-space condition (ENOSPC) —
// the fault class that flips a live daemon into degraded journal-less
// mode instead of crash-looping against a full disk.
func IsDiskFull(err error) bool { return errors.Is(err, syscall.ENOSPC) }

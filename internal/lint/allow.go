package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //simlint:allow comment. A directive
// suppresses findings of its rule on the directive's own line (trailing
// comment) or the line directly below (comment above the statement).
type allowDirective struct {
	pos    token.Position
	rule   string
	reason string
	used   bool
}

// collectAllows parses every //simlint:allow directive in files.
// Malformed directives (no rule token) are reported via a synthetic
// directive with an empty rule, which can never match and therefore
// surfaces as stale.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allowDirective {
	var out []*allowDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//simlint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := &allowDirective{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.rule = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// matchAllow returns the directive covering finding f, if any. Directives
// with an empty reason still suppress — the missing reason is reported
// separately so the fix is "write the reason", not "silence two findings".
func matchAllow(allows []*allowDirective, f Finding) *allowDirective {
	for _, d := range allows {
		if d.rule != f.Rule || d.pos.Filename != f.Pos.Filename {
			continue
		}
		if d.pos.Line == f.Pos.Line || d.pos.Line == f.Pos.Line-1 {
			return d
		}
	}
	return nil
}

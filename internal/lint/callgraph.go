package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer: a module-wide call graph built
// from types.Info plus bottom-up per-function summaries. Rules stay
// syntactic at the report site but consult summaries to see through
// helpers — a one-line wrapper in a cmd/ package can no longer launder
// time.Now into sim-pure code (R2), a closure that arms a read deadline
// satisfies R9 at its call sites, and a helper that swallows a journal
// write is itself durability-critical for R7.

// FuncSummary is the bottom-up summary of one function (or function
// literal). The boolean facts are monotone — propagation only turns them
// on — so the fixpoint terminates.
type FuncSummary struct {
	// WallClock: the function transitively reaches a wall-clock read
	// (time.Now/Sleep/...). WallVia is the call chain that proves it,
	// outermost callee first, for the finding message.
	WallClock bool
	WallVia   []string
	// GlobalRNG: transitively draws from the implicitly seeded global
	// math/rand source.
	GlobalRNG bool
	RNGVia    []string
	// Blocks: may block on network/channel I/O, process waits, or
	// time.Sleep (R8's notion of blocking; file I/O is excluded).
	Blocks bool
	// SetsDeadline: calls SetReadDeadline/SetDeadline on some value —
	// a call to this function arms a read deadline for R9.
	SetsDeadline bool
	// Durable: transitively performs a durability-critical operation
	// whose error the caller must not discard (journal.Store mutations,
	// proto frame writes).
	Durable bool
	// ReturnsErr: the signature has at least one error result.
	ReturnsErr bool
	// CapturesManager: the function body references a variable defined
	// outside the function whose type contains a *resmgr.Manager (free
	// variable or package global) — running it on a goroutine escapes
	// the Manager.
	CapturesManager bool

	callees []string
}

// pkgFacts is the per-package output of fact collection: local summaries
// keyed by funcKey/litKey, plus the maps rules need to resolve calls
// through function-typed local variables and literals.
type pkgFacts struct {
	sums map[string]*FuncSummary
	// funcVars maps a local variable object assigned exactly one
	// function literal to that literal's key; variables assigned more
	// than once map to "" (unresolvable).
	funcVars map[types.Object]string
	litKeys  map[*ast.FuncLit]string
}

// Summaries is the merged, propagated module-wide summary table.
type Summaries struct {
	m map[string]*FuncSummary
}

// of returns the summary for a resolved function, or nil when the
// function is outside the analyzed module (export-data imports carry no
// bodies).
func (s *Summaries) of(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.m[funcKey(fn)]
}

func (s *Summaries) byKey(key string) *FuncSummary {
	if s == nil {
		return nil
	}
	return s.m[key]
}

// funcKey is the stable identity of a function across packages: pointer
// identity of *types.Func differs between the source-checked view and
// export-data imports, but Origin().FullName() does not.
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// litKey names a function literal by position; it is computable at both
// the definition and any call site without registration order mattering.
func litKey(fset *token.FileSet, path string, lit *ast.FuncLit) string {
	pos := fset.Position(lit.Pos())
	return fmt.Sprintf("%s.func@%d:%d", path, pos.Line, pos.Column)
}

// displayStrip shortens module paths in finding messages.
var displayStrip = strings.NewReplacer(
	"cosched/internal/", "", "cosched/cmd/", "", "cosched/", "")

func displayName(key string) string { return displayStrip.Replace(key) }

// collectFacts computes the local (non-propagated) facts for one
// type-checked package.
func collectFacts(fset *token.FileSet, files []*ast.File, info *types.Info, path string) *pkgFacts {
	fc := &factCollector{
		fset: fset, info: info, path: path,
		facts: &pkgFacts{
			sums:     make(map[string]*FuncSummary),
			funcVars: make(map[types.Object]string),
			litKeys:  make(map[*ast.FuncLit]string),
		},
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			fc.walkFunc(funcKey(fn), fd, fd.Body, fn.Type().(*types.Signature))
		}
	}
	return fc.facts
}

type factCollector struct {
	fset  *token.FileSet
	info  *types.Info
	path  string
	facts *pkgFacts
}

func (fc *factCollector) summary(key string) *FuncSummary {
	s := fc.facts.sums[key]
	if s == nil {
		s = &FuncSummary{}
		fc.facts.sums[key] = s
	}
	return s
}

// walkFunc collects facts for one function body. Nested literals get
// their own summaries (and a call edge only when actually invoked);
// their bodies do not contribute events to the enclosing function.
func (fc *factCollector) walkFunc(key string, node ast.Node, body *ast.BlockStmt, sig *types.Signature) {
	s := fc.summary(key)
	s.ReturnsErr = signatureReturnsErr(sig)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lk := litKey(fc.fset, fc.path, n)
			fc.facts.litKeys[n] = lk
			if lsig, ok := fc.info.Types[n].Type.(*types.Signature); ok {
				fc.walkFunc(lk, n, n.Body, lsig)
			}
			return false
		case *ast.AssignStmt:
			fc.recordFuncVars(n)
			return true
		case *ast.CallExpr:
			fc.recordCall(s, n)
			return true
		case *ast.SendStmt:
			s.Blocks = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.Blocks = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				s.Blocks = true
			}
		case *ast.RangeStmt:
			if t, ok := fc.info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					s.Blocks = true
				}
			}
		case *ast.Ident:
			fc.recordCapture(s, node, n)
		}
		return true
	})
}

// recordFuncVars tracks single-assignment `v := func(...) {...}` so call
// sites through v resolve to the literal's summary. A second assignment
// to the same variable poisons the entry.
func (fc *factCollector) recordFuncVars(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, rhs := range a.Rhs {
		id, ok := a.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := fc.info.Defs[id]
		if obj == nil {
			obj = fc.info.Uses[id]
		}
		if obj == nil {
			continue
		}
		lit, isLit := ast.Unparen(rhs).(*ast.FuncLit)
		if _, seen := fc.facts.funcVars[obj]; seen || !isLit {
			// Reassigned, or assigned a non-literal: unresolvable.
			if _, isFunc := obj.Type().Underlying().(*types.Signature); isFunc {
				fc.facts.funcVars[obj] = ""
			}
			continue
		}
		fc.facts.funcVars[obj] = litKey(fc.fset, fc.path, lit)
	}
}

// recordCall classifies one call: intrinsic facts (wall clock, RNG,
// blocking, deadlines, durability) plus a call-graph edge for later
// propagation.
func (fc *factCollector) recordCall(s *FuncSummary, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		s.addCallee(litKey(fc.fset, fc.path, fun))
	case *ast.Ident:
		if obj := fc.info.Uses[fun]; obj != nil {
			if lk, ok := fc.facts.funcVars[obj]; ok && lk != "" {
				s.addCallee(lk)
			}
		}
	}
	fn := calleeFunc(fc.info, call)
	if fn == nil {
		return
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "time":
			if wallClockFuncs[name] && isPackageLevel(fn) {
				s.markWall("time." + name)
				if name == "Sleep" {
					s.Blocks = true
				}
			}
		case "math/rand", "math/rand/v2":
			if isPackageLevel(fn) && !rngConstructors[name] {
				s.markRNG(pkg.Path() + "." + name)
			}
		case "io":
			switch name {
			case "ReadFull", "ReadAll", "Copy", "CopyN", "CopyBuffer":
				s.Blocks = true
			}
		case "net":
			if strings.HasPrefix(name, "Dial") && isPackageLevel(fn) {
				s.Blocks = true
			}
		}
	}
	if recv := recvType(fc.info, call); recv != nil {
		switch {
		case name == "SetReadDeadline" || name == "SetDeadline":
			s.SetsDeadline = true
		case (name == "Read" || name == "Write") && blockingIOReceiver(recv):
			s.Blocks = true
		case name == "Wait" && namedAs(recv, "sync", "WaitGroup"):
			// sync.Cond.Wait is deliberately NOT here: it releases its
			// mutex while parked, so it is not a held-lock stall.
			s.Blocks = true
		case namedAs(recv, "os/exec", "Cmd") &&
			(name == "Wait" || name == "Run" || name == "Output" || name == "CombinedOutput"):
			s.Blocks = true
		case namedAs(recv, "cosched/internal/journal", "Store") && durableStoreMethods[name],
			namedAs(recv, "cosched/internal/journal", "File") && durableFileMethods[name],
			namedAs(recv, "cosched/internal/journal", "FS") && durableFSMethods[name]:
			s.Durable = true
		}
	}
	if isPkgFunc(fn, "cosched/internal/proto", "WriteFrame") {
		s.Durable = true
		s.Blocks = true
	}
	s.addCallee(funcKey(fn))
}

// durableStoreMethods are the journal.Store mutations on the crash-safe
// ordering path; their errors decide whether state survives a crash.
var durableStoreMethods = map[string]bool{
	"Append": true, "Compact": true, "Close": true, "Sync": true,
}

// durableFileMethods are the journal.File handle operations on the WAL's
// crash-safe ordering path. Every write the store makes flows through
// this interface (the fault-injection seam), so a swallowed error here is
// exactly a swallowed injected fault.
var durableFileMethods = map[string]bool{
	"Write": true, "Sync": true, "Truncate": true, "Close": true,
}

// durableFSMethods are the journal.FS operations whose failure breaks the
// append → fsync → rename → syncdir compaction ordering. MkdirAll /
// OpenFile / ReadFile are setup reads whose errors already fail loudly at
// open time.
var durableFSMethods = map[string]bool{
	"Rename": true, "Truncate": true, "SyncDir": true,
}

// blockingIOReceiver: a Read/Write on an interface value (io.Reader,
// net.Conn, ...) or on a concrete connection type (has SetReadDeadline)
// may block on the network. *os.File also has deadline methods but file
// I/O is outside R8's contract, so it is excluded.
func blockingIOReceiver(recv types.Type) bool {
	if t := recv; t != nil {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if _, ok := t.Underlying().(*types.Interface); ok {
			// The journal's VFS handles are file I/O behind an interface
			// (so the fault seam can wrap them); like *os.File, they are
			// outside R8's network-stall contract — R7 owns their errors.
			return !namedAs(t, "cosched/internal/journal", "File") &&
				!namedAs(t, "cosched/internal/journal", "FS")
		}
	}
	return connLikeType(recv)
}

// connLikeType reports whether t statically carries SetReadDeadline —
// the shape of every net.Conn implementation — excluding *os.File.
func connLikeType(t types.Type) bool {
	if t == nil || namedAs(t, "os", "File") {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "SetReadDeadline")
	_, ok := obj.(*types.Func)
	return ok
}

// recordCapture flags references to Manager-carrying variables defined
// outside the function: the defining object's position falling outside
// the whole FuncDecl/FuncLit node range means receiver, parameters, and
// locals stay internal while free variables and globals do not.
func (fc *factCollector) recordCapture(s *FuncSummary, fnNode ast.Node, id *ast.Ident) {
	if s.CapturesManager {
		return
	}
	v, ok := fc.info.Uses[id].(*types.Var)
	if !ok || v.Pos() == token.NoPos {
		return
	}
	if v.Pos() >= fnNode.Pos() && v.Pos() <= fnNode.End() {
		return
	}
	if typeContainsManager(v.Type()) {
		s.CapturesManager = true
	}
}

func (s *FuncSummary) addCallee(key string) {
	for _, c := range s.callees {
		if c == key {
			return
		}
	}
	s.callees = append(s.callees, key)
}

func (s *FuncSummary) markWall(via string) {
	if !s.WallClock {
		s.WallClock = true
		s.WallVia = []string{via}
	}
}

func (s *FuncSummary) markRNG(via string) {
	if !s.GlobalRNG {
		s.GlobalRNG = true
		s.RNGVia = []string{via}
	}
}

func signatureReturnsErr(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), types.Universe.Lookup("error").Type()) {
			return true
		}
	}
	return false
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		if cc, ok := s.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// buildSummaries merges per-package facts and runs the bottom-up
// fixpoint. Iteration is over sorted keys so the via-chains — and
// therefore finding messages — are deterministic regardless of map
// order or which package was collected first.
func buildSummaries(facts []*pkgFacts) *Summaries {
	merged := make(map[string]*FuncSummary)
	for _, pf := range facts {
		if pf == nil {
			continue
		}
		for key, s := range pf.sums {
			if prev, ok := merged[key]; ok {
				prev.merge(s)
			} else {
				merged[key] = s
			}
		}
	}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for changed := true; changed; {
		changed = false
		for _, k := range keys {
			s := merged[k]
			for _, ck := range s.callees {
				c := merged[ck]
				if c == nil || c == s {
					continue
				}
				if c.WallClock && !s.WallClock {
					s.WallClock = true
					s.WallVia = chainVia(ck, c.WallVia)
					changed = true
				}
				if c.GlobalRNG && !s.GlobalRNG {
					s.GlobalRNG = true
					s.RNGVia = chainVia(ck, c.RNGVia)
					changed = true
				}
				if c.Blocks && !s.Blocks {
					s.Blocks = true
					changed = true
				}
				if c.SetsDeadline && !s.SetsDeadline {
					s.SetsDeadline = true
					changed = true
				}
				if c.Durable && !s.Durable {
					s.Durable = true
					changed = true
				}
				if c.CapturesManager && !s.CapturesManager {
					s.CapturesManager = true
					changed = true
				}
			}
		}
	}
	return &Summaries{m: merged}
}

func (s *FuncSummary) merge(o *FuncSummary) {
	if o.WallClock && !s.WallClock {
		s.WallClock, s.WallVia = true, o.WallVia
	}
	if o.GlobalRNG && !s.GlobalRNG {
		s.GlobalRNG, s.RNGVia = true, o.RNGVia
	}
	s.Blocks = s.Blocks || o.Blocks
	s.SetsDeadline = s.SetsDeadline || o.SetsDeadline
	s.Durable = s.Durable || o.Durable
	s.ReturnsErr = s.ReturnsErr || o.ReturnsErr
	s.CapturesManager = s.CapturesManager || o.CapturesManager
	for _, c := range o.callees {
		s.addCallee(c)
	}
}

// chainVia prepends the callee to its own evidence chain, bounded so a
// deep stack stays readable.
func chainVia(calleeKey string, via []string) []string {
	out := append([]string{displayName(calleeKey)}, via...)
	if len(out) > 4 {
		out = out[:4]
	}
	return out
}

// calleeSummary resolves a call to the summary of what it invokes:
// named functions and methods by stable key, immediately invoked
// literals by position, and calls through single-assignment local
// function variables via the funcVars map.
func (p *Pass) calleeSummary(call *ast.CallExpr) *FuncSummary {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return p.Sums.byKey(litKey(p.Fset, p.Path, fun))
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return p.Sums.of(f)
		}
		if obj := p.Info.Uses[fun]; obj != nil && p.facts != nil {
			if lk, ok := p.facts.funcVars[obj]; ok && lk != "" {
				return p.Sums.byKey(lk)
			}
		}
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return p.Sums.of(f)
		}
	}
	return nil
}

// calleeDisplay names the called function for finding messages.
func (p *Pass) calleeDisplay(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return "function literal"
	case *ast.Ident:
		if f, ok := p.Info.Uses[fun].(*types.Func); ok {
			return displayName(funcKey(f))
		}
		return fun.Name
	case *ast.SelectorExpr:
		if f, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return displayName(funcKey(f))
		}
		return exprPath(fun)
	}
	return "call"
}

// exprPath renders a selector chain ("c.conn", "w.mu") for matching the
// same lexical object across statements; "" when the expression is not a
// plain ident/selector chain.
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

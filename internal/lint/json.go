package lint

import (
	"encoding/json"
	"io"
)

// jsonFinding is the machine-readable finding schema `simlint -json`
// emits: one object per finding, in the engine's stable position sort,
// so CI and dashboards can diff runs byte-for-byte.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Msg     string `json:"msg"`
	Allowed bool   `json:"allowed"`
	Reason  string `json:"reason,omitempty"`
}

// WriteJSON encodes findings (already sorted by the engine) as a JSON
// array, one indented object per finding.
func WriteJSON(w io.Writer, findings []Finding) error {
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Msg: f.Msg,
			Allowed: f.Allowed, Reason: f.Reason,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON decodes WriteJSON output back into findings — the round-trip
// the CLI self-validates with before printing.
func ReadJSON(r io.Reader) ([]Finding, error) {
	var in []jsonFinding
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	out := make([]Finding, len(in))
	for i, f := range in {
		out[i] = Finding{
			Rule: f.Rule, Msg: f.Msg, Allowed: f.Allowed, Reason: f.Reason,
		}
		out[i].Pos.Filename = f.File
		out[i].Pos.Line = f.Line
		out[i].Pos.Column = f.Col
	}
	return out, nil
}

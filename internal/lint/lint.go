package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Finding is one rule violation (or allow-directive hygiene problem),
// positioned at file:line:col. Allowed findings were suppressed by a
// //simlint:allow directive; Run drops them, RunAll keeps them marked so
// -json consumers can diff the full picture.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Allowed marks a finding covered by a //simlint:allow directive;
	// Reason carries the directive's justification text.
	Allowed bool
	Reason  string
}

// String renders the finding the way compilers report diagnostics.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Pass is the per-package context handed to every rule.
type Pass struct {
	Fset *token.FileSet
	// Files are the parsed sources of the package (test variants include
	// the _test.go files).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the import path rules match package membership against
	// (test-variant suffixes stripped).
	Path string
	// Sums is the module-wide propagated summary table; nil-safe through
	// its accessors so single-package harnesses still work.
	Sums *Summaries

	facts    *pkgFacts
	findings []Finding
}

// reportf records a finding at pos.
func (p *Pass) reportf(pos token.Pos, rule, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:  p.Fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// unit is one type-checked lint target plus its parsed sources.
type unit struct {
	target *Package
	files  []*ast.File
	pkg    *types.Package
	info   *types.Info
}

// Run lints the packages matched by patterns (relative to dir, typically
// "./...") and returns every active finding — allow-suppressed ones are
// dropped — sorted by position. A non-nil error means the analysis itself
// could not run (load or type-check failure), not that findings exist.
func Run(dir string, tags []string, patterns ...string) ([]Finding, error) {
	all, err := RunAll(dir, tags, patterns...)
	if err != nil {
		return nil, err
	}
	active := make([]Finding, 0, len(all))
	for _, f := range all {
		if !f.Allowed {
			active = append(active, f)
		}
	}
	return active, nil
}

// RunAll is Run without the allow filter: suppressed findings stay in the
// result, marked Allowed with their directive's reason. The pipeline is
// load → parallel typecheck → fact collection → module-wide summary
// fixpoint → parallel rule execution → deterministic position sort.
func RunAll(dir string, tags []string, patterns ...string) ([]Finding, error) {
	table, targets, err := Load(dir, tags, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	units, err := typecheckAll(fset, targets, table)
	if err != nil {
		return nil, err
	}
	facts := make([]*pkgFacts, len(units))
	for i, u := range units {
		facts[i] = collectFacts(fset, u.files, u.info, u.target.Path)
	}
	sums := buildSummaries(facts)

	// Rules are pure per-unit given the shared read-only summary table,
	// so they fan out like typechecking does. Results merge in unit
	// order and then sort globally, keeping output byte-stable at any
	// GOMAXPROCS.
	results := make([][]Finding, len(units))
	parallelEach(len(units), func(i int) {
		results[i] = checkUnit(fset, units[i], facts[i], sums)
	})
	var all []Finding
	for _, r := range results {
		all = append(all, r...)
	}
	sortFindings(all)
	return all, nil
}

// parallelEach runs fn(0..n-1) across GOMAXPROCS workers and waits.
func parallelEach(n int, fn func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// sortFindings orders findings by position then rule — the stable order
// -json output and golden diffs rely on.
func sortFindings(all []Finding) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}

// checkUnit runs every rule over one type-checked package and applies the
// package's //simlint:allow directives: a matching directive marks a
// finding Allowed (same line or the line directly below); directives that
// suppress nothing (stale) or carry no reason are findings themselves.
func checkUnit(fset *token.FileSet, u *unit, facts *pkgFacts, sums *Summaries) []Finding {
	p := &Pass{
		Fset: fset, Files: u.files, Pkg: u.pkg, Info: u.info,
		Path: u.target.Path, Sums: sums, facts: facts,
	}
	for _, r := range Rules {
		r.Check(p)
	}
	allows := collectAllows(fset, u.files)
	for i := range p.findings {
		if d := matchAllow(allows, p.findings[i]); d != nil {
			d.used = true
			p.findings[i].Allowed = true
			p.findings[i].Reason = d.reason
		}
	}
	out := p.findings
	for _, d := range allows {
		if d.reason == "" {
			out = append(out, Finding{Pos: d.pos, Rule: "allow",
				Msg: fmt.Sprintf("//simlint:allow %s has no reason — every exception must say why it is safe", d.rule)})
		}
		if !d.used {
			out = append(out, Finding{Pos: d.pos, Rule: "allow",
				Msg: fmt.Sprintf("stale //simlint:allow %s: it suppresses nothing on this or the next line — delete it or move it to the violation", d.rule)})
		}
	}
	return out
}

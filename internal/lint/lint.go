package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one rule violation (or allow-directive hygiene problem),
// positioned at file:line:col.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding the way compilers report diagnostics.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// Pass is the per-package context handed to every rule.
type Pass struct {
	Fset *token.FileSet
	// Files are the parsed sources of the package (test variants include
	// the _test.go files).
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Path is the import path rules match package membership against
	// (test-variant suffixes stripped).
	Path string

	findings []Finding
}

// reportf records a finding at pos.
func (p *Pass) reportf(pos token.Pos, rule, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:  p.Fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Run lints the packages matched by patterns (relative to dir, typically
// "./...") and returns every finding after allow-directive filtering,
// sorted by position. A non-nil error means the analysis itself could not
// run (load or type-check failure), not that findings exist.
func Run(dir string, tags []string, patterns ...string) ([]Finding, error) {
	table, targets, err := Load(dir, tags, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var all []Finding
	for _, t := range targets {
		files, pkg, info, err := typecheck(fset, t, table)
		if err != nil {
			return nil, err
		}
		all = append(all, Check(fset, files, pkg, info, t.Path)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return all, nil
}

// Check runs every rule over one type-checked package and applies the
// package's //simlint:allow directives: a matching directive suppresses a
// finding on its own line or the line directly below; directives that
// suppress nothing (stale) or carry no reason are findings themselves.
// It is the entry point fixture tests drive directly.
func Check(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, path string) []Finding {
	p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Path: path}
	for _, r := range Rules {
		r.Check(p)
	}
	allows := collectAllows(fset, files)
	kept := p.findings[:0]
	for _, f := range p.findings {
		if d := matchAllow(allows, f); d != nil {
			d.used = true
			continue
		}
		kept = append(kept, f)
	}
	for _, d := range allows {
		if d.reason == "" {
			kept = append(kept, Finding{Pos: d.pos, Rule: "allow",
				Msg: fmt.Sprintf("//simlint:allow %s has no reason — every exception must say why it is safe", d.rule)})
		}
		if !d.used {
			kept = append(kept, Finding{Pos: d.pos, Rule: "allow",
				Msg: fmt.Sprintf("stale //simlint:allow %s: it suppresses nothing on this or the next line — delete it or move it to the violation", d.rule)})
		}
	}
	return kept
}

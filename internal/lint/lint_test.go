package lint

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"

	"go/token"
)

// fixturePath is the synthetic import path fixtures are checked under: it
// must look sim-pure so R2 is active.
const fixturePath = "cosched/internal/fixture"

var (
	tableOnce sync.Once
	tableVal  map[string]*Package
	tableErr  error
)

// repoTable loads the repository's package table (with compiler export
// data) once per test binary; fixtures resolve their imports against it.
func repoTable(t *testing.T) map[string]*Package {
	t.Helper()
	tableOnce.Do(func() {
		tableVal, _, tableErr = Load("../..", nil, "./...")
	})
	if tableErr != nil {
		t.Fatalf("loading repo packages: %v", tableErr)
	}
	return tableVal
}

// checkFixture type-checks one testdata file as its own package under the
// sim-pure fixture path and runs every rule plus allow filtering over it.
func checkFixture(t *testing.T, name string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	target := &Package{
		ImportPath: fixturePath,
		Path:       fixturePath,
		Files:      []string{"testdata/" + name},
	}
	files, pkg, info, err := typecheck(fset, target, repoTable(t))
	if err != nil {
		t.Fatalf("typechecking %s: %v", name, err)
	}
	return Check(fset, files, pkg, info, fixturePath)
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants reads the fixture's `// want "substring"` expectations,
// keyed by 1-based line number.
func parseWants(t *testing.T, path string) map[int]string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int]string)
	for i, line := range strings.Split(string(src), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			wants[i+1] = m[1]
		}
	}
	return wants
}

// TestRuleFixtures is the golden harness: every `// want` line must
// produce a matching finding, and no finding may appear on a line
// without one. Deleting or de-fanging a rule fails its fixture.
func TestRuleFixtures(t *testing.T) {
	for _, name := range []string{"r1.go", "r2.go", "r3.go", "r4.go", "r4dist.go", "r5.go", "r6.go"} {
		t.Run(name, func(t *testing.T) {
			findings := checkFixture(t, name)
			wants := parseWants(t, "testdata/"+name)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no // want expectations", name)
			}
			matched := make(map[int]bool)
			for _, f := range findings {
				text := fmt.Sprintf("%s: %s", f.Rule, f.Msg)
				if sub, ok := wants[f.Pos.Line]; ok && strings.Contains(text, sub) {
					matched[f.Pos.Line] = true
					continue
				}
				t.Errorf("unexpected finding: %s", f)
			}
			for line, sub := range wants {
				if !matched[line] {
					t.Errorf("%s:%d: no finding matching %q", name, line, sub)
				}
			}
		})
	}
}

// TestAllowHygieneFixture pins the directive hygiene findings: the
// reasonless directive suppresses its violation but is reported for the
// missing reason, and the no-op directive is reported as stale.
// Expectations live here because a //simlint:allow line comment cannot
// also carry a // want comment.
func TestAllowHygieneFixture(t *testing.T) {
	findings := checkFixture(t, "allow.go")
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), findingList(findings))
	}
	var noReason, stale bool
	for _, f := range findings {
		if f.Rule != "allow" {
			t.Errorf("finding escaped allow filtering: %s", f)
		}
		noReason = noReason || strings.Contains(f.Msg, "no reason")
		stale = stale || strings.Contains(f.Msg, "stale")
	}
	if !noReason || !stale {
		t.Errorf("missing hygiene finding (no-reason=%v stale=%v):\n%s", noReason, stale, findingList(findings))
	}
}

// TestCleanFixture guards against over-reporting: the sanctioned shapes
// must produce nothing.
func TestCleanFixture(t *testing.T) {
	if findings := checkFixture(t, "clean.go"); len(findings) > 0 {
		t.Errorf("clean fixture produced findings:\n%s", findingList(findings))
	}
}

// TestRepoSelfCheck is the dogfood gate inside the test suite: the tree
// that ships this analyzer must itself be clean, under both the default
// and the debug build tags.
func TestRepoSelfCheck(t *testing.T) {
	for _, tags := range [][]string{nil, {"debug"}} {
		findings, err := Run("../..", tags, "./...")
		if err != nil {
			t.Fatalf("simlint run (tags=%v): %v", tags, err)
		}
		if len(findings) > 0 {
			t.Errorf("repository is not simlint-clean (tags=%v):\n%s", tags, findingList(findings))
		}
	}
}

func findingList(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

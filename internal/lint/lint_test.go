package lint

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"testing"

	"go/token"
	"go/types"
)

// fixturePath is the synthetic import path fixtures are checked under: it
// must look sim-pure so R2 is active, and the rules scoped to protocol/
// durability packages treat internal/fixture as in-scope so R7–R9
// fixtures exercise them.
const fixturePath = "cosched/internal/fixture"

var (
	tableOnce sync.Once
	tableVal  map[string]*Package
	tableErr  error
)

// repoTable loads the repository's package table (with compiler export
// data) once per test binary; fixtures resolve their imports against it.
func repoTable(t *testing.T) map[string]*Package {
	t.Helper()
	tableOnce.Do(func() {
		tableVal, _, tableErr = Load("../..", nil, "./...")
	})
	if tableErr != nil {
		t.Fatalf("loading repo packages: %v", tableErr)
	}
	return tableVal
}

// fixtureHelpers maps fixtures to support files type-checked first as
// their own packages (under cosched/cmd/<name>) and preloaded into the
// fixture's importer — the interprocedural R2 fixture needs an impure
// helper package to call into.
var fixtureHelpers = map[string][]string{
	"r2interproc.go": {"helperpkg.go"},
}

// checkFixtureAll type-checks one testdata file as its own package under
// the sim-pure fixture path, collects facts for it (and its helper
// packages), builds summaries, and runs every rule plus allow marking.
// Allowed findings stay in the result.
func checkFixtureAll(t *testing.T, name string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	table := repoTable(t)
	extra := make(map[string]*types.Package)
	var facts []*pkgFacts
	for _, h := range fixtureHelpers[name] {
		path := "cosched/cmd/" + strings.TrimSuffix(h, ".go")
		target := &Package{ImportPath: path, Path: path, Files: []string{"testdata/" + h}}
		files, pkg, info, err := typecheck(fset, target, table, extra)
		if err != nil {
			t.Fatalf("typechecking helper %s: %v", h, err)
		}
		extra[path] = pkg
		facts = append(facts, collectFacts(fset, files, info, path))
	}
	target := &Package{
		ImportPath: fixturePath,
		Path:       fixturePath,
		Files:      []string{"testdata/" + name},
	}
	files, pkg, info, err := typecheck(fset, target, table, extra)
	if err != nil {
		t.Fatalf("typechecking %s: %v", name, err)
	}
	fxFacts := collectFacts(fset, files, info, fixturePath)
	sums := buildSummaries(append(facts, fxFacts))
	u := &unit{target: target, files: files, pkg: pkg, info: info}
	out := checkUnit(fset, u, fxFacts, sums)
	sortFindings(out)
	return out
}

// checkFixture is checkFixtureAll minus allow-suppressed findings — the
// view Run gives the CLI.
func checkFixture(t *testing.T, name string) []Finding {
	t.Helper()
	var active []Finding
	for _, f := range checkFixtureAll(t, name) {
		if !f.Allowed {
			active = append(active, f)
		}
	}
	return active
}

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants reads the fixture's `// want "substring"` expectations,
// keyed by 1-based line number.
func parseWants(t *testing.T, path string) map[int]string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wants := make(map[int]string)
	for i, line := range strings.Split(string(src), "\n") {
		if m := wantRe.FindStringSubmatch(line); m != nil {
			wants[i+1] = m[1]
		}
	}
	return wants
}

// TestRuleFixtures is the golden harness: every `// want` line must
// produce a matching finding, and no finding may appear on a line
// without one. Deleting or de-fanging a rule fails its fixture.
func TestRuleFixtures(t *testing.T) {
	for _, name := range []string{
		"r1.go", "r2.go", "r2interproc.go", "r3.go", "r4.go", "r4dist.go",
		"r4interproc.go", "r5.go", "r6.go", "r7.go", "r8.go", "r9.go",
	} {
		t.Run(name, func(t *testing.T) {
			findings := checkFixture(t, name)
			wants := parseWants(t, "testdata/"+name)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no // want expectations", name)
			}
			matched := make(map[int]bool)
			for _, f := range findings {
				text := fmt.Sprintf("%s: %s", f.Rule, f.Msg)
				if sub, ok := wants[f.Pos.Line]; ok && strings.Contains(text, sub) {
					matched[f.Pos.Line] = true
					continue
				}
				t.Errorf("unexpected finding: %s", f)
			}
			for line, sub := range wants {
				if !matched[line] {
					t.Errorf("%s:%d: no finding matching %q", name, line, sub)
				}
			}
		})
	}
}

// TestAllowHygieneFixture pins the directive hygiene findings: the
// reasonless directive suppresses its violation but is reported for the
// missing reason, and the no-op directive is reported as stale.
// Expectations live here because a //simlint:allow line comment cannot
// also carry a // want comment.
func TestAllowHygieneFixture(t *testing.T) {
	findings := checkFixture(t, "allow.go")
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), findingList(findings))
	}
	var noReason, stale bool
	for _, f := range findings {
		if f.Rule != "allow" {
			t.Errorf("finding escaped allow filtering: %s", f)
		}
		noReason = noReason || strings.Contains(f.Msg, "no reason")
		stale = stale || strings.Contains(f.Msg, "stale")
	}
	if !noReason || !stale {
		t.Errorf("missing hygiene finding (no-reason=%v stale=%v):\n%s", noReason, stale, findingList(findings))
	}
}

// TestAllowedFindingsMarked pins the RunAll contract -json relies on:
// a suppressed finding survives with Allowed set and the directive's
// reason attached.
func TestAllowedFindingsMarked(t *testing.T) {
	all := checkFixtureAll(t, "allow.go")
	var marked int
	for _, f := range all {
		if f.Allowed {
			marked++
			if f.Rule == "allow" {
				t.Errorf("hygiene finding marked allowed: %s", f)
			}
		}
	}
	if marked == 0 {
		t.Fatalf("no allowed findings retained:\n%s", findingList(all))
	}
}

// TestCleanFixture guards against over-reporting: the sanctioned shapes
// must produce nothing.
func TestCleanFixture(t *testing.T) {
	if findings := checkFixture(t, "clean.go"); len(findings) > 0 {
		t.Errorf("clean fixture produced findings:\n%s", findingList(findings))
	}
}

// TestRepoSelfCheck is the dogfood gate inside the test suite: the tree
// that ships this analyzer must itself be clean, under both the default
// and the debug build tags. RunAll on the same tree must agree with Run
// on the active subset — allows only mark, never drop silently — and a
// second run must be byte-identical to the first (the parallel
// typecheck/rule fan-out may not perturb finding order).
func TestRepoSelfCheck(t *testing.T) {
	for _, tags := range [][]string{nil, {"debug"}} {
		findings, err := Run("../..", tags, "./...")
		if err != nil {
			t.Fatalf("simlint run (tags=%v): %v", tags, err)
		}
		if len(findings) > 0 {
			t.Errorf("repository is not simlint-clean (tags=%v):\n%s", tags, findingList(findings))
		}
	}
	all, err := RunAll("../..", nil, "./...")
	if err != nil {
		t.Fatalf("simlint RunAll: %v", err)
	}
	var active int
	for _, f := range all {
		if !f.Allowed {
			active++
		}
		if f.Allowed && f.Reason == "" {
			t.Errorf("allowed finding with empty reason: %s", f)
		}
	}
	if active > 0 {
		t.Errorf("RunAll reports %d active findings on a clean tree", active)
	}
	if len(all) == 0 {
		t.Error("RunAll retained no allowed findings — the tree carries //simlint:allow directives")
	}
	again, err := RunAll("../..", nil, "./...")
	if err != nil {
		t.Fatalf("simlint RunAll (second run): %v", err)
	}
	if !reflect.DeepEqual(all, again) {
		t.Error("two identical RunAll invocations disagree — parallel pipeline is nondeterministic")
	}
}

// TestJSONRoundTrip pins the -json schema: encode → decode is lossless
// and the encoder preserves the engine's stable order.
func TestJSONRoundTrip(t *testing.T) {
	in := []Finding{
		{Rule: "R7", Msg: "discarded error", Allowed: false},
		{Rule: "R9", Msg: "no deadline", Allowed: true, Reason: "client owns liveness"},
	}
	in[0].Pos.Filename, in[0].Pos.Line, in[0].Pos.Column = "a/b.go", 10, 2
	in[1].Pos.Filename, in[1].Pos.Line, in[1].Pos.Column = "a/c.go", 3, 1
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	out, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in: %#v\nout: %#v", in, out)
	}
}

// TestSortFindingsStable pins the global order -json diffs rely on:
// filename, then line, column, rule, message.
func TestSortFindingsStable(t *testing.T) {
	mk := func(file string, line, col int, rule string) Finding {
		f := Finding{Rule: rule}
		f.Pos.Filename, f.Pos.Line, f.Pos.Column = file, line, col
		return f
	}
	got := []Finding{
		mk("b.go", 1, 1, "R2"), mk("a.go", 9, 1, "R1"),
		mk("a.go", 2, 5, "R9"), mk("a.go", 2, 5, "R7"), mk("a.go", 2, 1, "R3"),
	}
	sortFindings(got)
	want := []Finding{
		mk("a.go", 2, 1, "R3"), mk("a.go", 2, 5, "R7"),
		mk("a.go", 2, 5, "R9"), mk("a.go", 9, 1, "R1"), mk("b.go", 1, 1, "R2"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sort order wrong:\n%s", findingList(got))
	}
}

func findingList(fs []Finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	return b.String()
}

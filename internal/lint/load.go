// Package lint implements simlint, the repository's static determinism
// and contract analyzer. It loads packages with the standard toolchain
// (`go list -export`), type-checks the lint targets from source against
// compiler export data, and runs a set of repo-specific rules — each one
// derived from a real contract or a past bug (see rules.go for the
// catalog). No dependencies outside the standard library are used.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"strings"
)

// listPackage mirrors the subset of `go list -json` output the loader
// consumes. Test variants appear with bracketed import paths
// ("pkg [pkg.test]"); ForTest names the package under test.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	ForTest    string
	Standard   bool
	Module     *struct{ Path string }
}

// Package is one loaded package: either a lint target (module source) or a
// dependency reachable only through its compiler export data.
type Package struct {
	// ImportPath is the path exactly as `go list` reports it, including
	// the "[pkg.test]" suffix on test variants.
	ImportPath string
	// Path is the import path with any test-variant suffix stripped —
	// the path rules match against.
	Path string
	Name string
	Dir  string
	// Files are the absolute paths of the package's Go sources (test
	// variants include the _test.go files).
	Files []string
	// ImportMap resolves source-literal import paths to the ImportPath
	// keys of the loaded package table (vendoring and test variants).
	ImportMap map[string]string
	// Export is the compiler export data file, used when this package is
	// imported by a lint target.
	Export   string
	Standard bool
	ForTest  string
}

// Load runs `go list -deps -test -export -json` in dir and returns the
// package table keyed by ImportPath plus the ordered list of lint targets:
// module packages, with plain packages superseded by their in-package test
// variant (which compiles the same files plus the _test.go files).
func Load(dir string, tags []string, patterns ...string) (table map[string]*Package, targets []*Package, err error) {
	args := []string{"list", "-deps", "-test", "-export", "-json"}
	if len(tags) > 0 {
		args = append(args, "-tags", strings.Join(tags, ","))
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}

	table = make(map[string]*Package)
	var order []string
	dec := json.NewDecoder(&stdout)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		p := &Package{
			ImportPath: lp.ImportPath,
			Path:       strippedPath(lp.ImportPath),
			Name:       lp.Name,
			Dir:        lp.Dir,
			ImportMap:  lp.ImportMap,
			Export:     lp.Export,
			Standard:   lp.Standard,
			ForTest:    lp.ForTest,
		}
		for _, f := range append(append([]string{}, lp.GoFiles...), lp.CgoFiles...) {
			p.Files = append(p.Files, lp.Dir+"/"+f)
		}
		if lp.Module != nil && !lp.Standard {
			// Module membership marks lint-target candidates.
			if lp.Module.Path != "" && (p.Path == lp.Module.Path || strings.HasPrefix(p.Path, lp.Module.Path+"/")) {
				order = append(order, lp.ImportPath)
			}
		}
		table[lp.ImportPath] = p
	}

	// A plain package with an in-package test variant is a strict subset
	// of that variant's files: lint only the variant. This includes main
	// packages — linting both the plain package and its variant would
	// check every non-test file twice and report findings twice.
	superseded := make(map[string]bool)
	for _, key := range order {
		p := table[key]
		if p.ForTest != "" && !strings.HasSuffix(p.Name, "_test") {
			superseded[p.ForTest] = true
		}
	}
	for _, key := range order {
		p := table[key]
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test main
		}
		if p.ForTest == "" && superseded[p.ImportPath] {
			continue
		}
		targets = append(targets, p)
	}
	return table, targets, nil
}

// typecheckAll type-checks every lint target, fanning out across
// GOMAXPROCS: the module is 30+ packages and each target typechecks
// independently against export data (token.FileSet is documented
// concurrency-safe, and each target builds its own importer). Results
// land in target order and the first failure by target index is
// returned, so both success and error paths are deterministic.
func typecheckAll(fset *token.FileSet, targets []*Package, table map[string]*Package) ([]*unit, error) {
	units := make([]*unit, len(targets))
	errs := make([]error, len(targets))
	parallelEach(len(targets), func(i int) {
		t := targets[i]
		files, pkg, info, err := typecheck(fset, t, table, nil)
		if err != nil {
			errs[i] = err
			return
		}
		units[i] = &unit{target: t, files: files, pkg: pkg, info: info}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return units, nil
}

// strippedPath removes the " [pkg.test]" variant suffix and the "_test"
// external-test suffix from an import path, yielding the path rules match
// package membership against.
func strippedPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		importPath = importPath[:i]
	}
	return strings.TrimSuffix(importPath, "_test")
}

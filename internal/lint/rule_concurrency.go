package lint

import (
	"go/ast"
)

// checkConcurrency implements R4: resmgr.Manager is single-threaded by
// contract (the sim engine's event loop serializes all access), so no
// goroutine may capture one, and its tests may not opt into t.Parallel —
// parallel subtests interleave distinct managers' engines only in
// internal/parallel, where every worker owns a private engine and results
// merge in index order.
func checkConcurrency(p *Pass) {
	if p.Path == "cosched/internal/parallel" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn != nil && fn.Name() == "Parallel" {
					if recv := recvType(p.Info, n); recv != nil && namedAs(recv, "testing", "T") {
						p.reportf(n.Pos(), "R4",
							"t.Parallel outside internal/parallel: parallel subtests sharing scheduler state race the single-threaded Manager contract")
					}
				}
			case *ast.GoStmt:
				if id := p.capturedManager(n); id != nil {
					p.reportf(n.Pos(), "R4",
						"goroutine captures *resmgr.Manager %q: the Manager is single-threaded by contract; fan work out through internal/parallel instead",
						id.Name)
				}
			}
			return true
		})
	}
}

// capturedManager returns the first identifier inside a go statement
// (arguments and closure body alike) whose type is resmgr.Manager or a
// pointer to it.
func (p *Pass) capturedManager(g *ast.GoStmt) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(g, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if namedAs(obj.Type(), "cosched/internal/resmgr", "Manager") {
			found = id
		}
		return true
	})
	return found
}

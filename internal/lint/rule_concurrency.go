package lint

import (
	"go/ast"
	"go/types"
)

// checkConcurrency implements R4: resmgr.Manager is single-threaded by
// contract (the sim engine's event loop serializes all access), so no
// goroutine may receive one, and its tests may not opt into t.Parallel —
// parallel subtests interleave distinct managers' engines only in
// internal/parallel, where every worker owns a private engine and results
// merge in index order.
//
// What escapes into a goroutine is modeled precisely: the call's
// arguments, the bound receiver value of a method expression, and — for
// function literals — the free variables their bodies reference. A value
// escapes if its type transitively *contains* a Manager (struct fields,
// slices, maps), not just if it is one, so wrapping the Manager in a
// config struct no longer slips past the rule. Named types declared in
// internal/live are exempt from the containment walk: the live Driver
// owns a Manager by design and serializes access behind its own mutex.
// Calls to named functions are checked through their summaries — a
// helper that reaches a Manager through a free variable or package
// global is as unsafe on a goroutine as a literal that does.
func checkConcurrency(p *Pass) {
	if p.Path == "cosched/internal/parallel" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p.Info, n)
				if fn != nil && fn.Name() == "Parallel" {
					if recv := recvType(p.Info, n); recv != nil && namedAs(recv, "testing", "T") {
						p.reportf(n.Pos(), "R4",
							"t.Parallel outside internal/parallel: parallel subtests sharing scheduler state race the single-threaded Manager contract")
					}
				}
			case *ast.GoStmt:
				p.checkGoStmt(n)
			}
			return true
		})
	}
}

// checkGoStmt reports at most one finding per go statement: the direct
// escape scan wins over the callee-summary path so a literal that both
// captures a Manager and calls a capturing helper reports once.
func (p *Pass) checkGoStmt(g *ast.GoStmt) {
	for _, esc := range p.goEscapes(g.Call) {
		t := p.typeOf(esc.expr)
		if t == nil {
			continue
		}
		if namedAs(t, "cosched/internal/resmgr", "Manager") {
			p.reportf(g.Pos(), "R4",
				"goroutine %s *resmgr.Manager %q: the Manager is single-threaded by contract; fan work out through internal/parallel instead",
				esc.how, esc.name)
			return
		}
		if typeContainsManager(t) {
			p.reportf(g.Pos(), "R4",
				"goroutine %s %q (type %s contains a *resmgr.Manager): the Manager is single-threaded by contract; fan work out through internal/parallel instead",
				esc.how, esc.name, t.String())
			return
		}
	}
	if sum := p.calleeSummary(g.Call); sum != nil && sum.CapturesManager {
		if _, isLit := ast.Unparen(g.Call.Fun).(*ast.FuncLit); !isLit {
			p.reportf(g.Pos(), "R4",
				"goroutine runs %s, which reaches a *resmgr.Manager defined outside it: the Manager is single-threaded by contract; fan work out through internal/parallel instead",
				p.calleeDisplay(g.Call))
		}
	}
}

type escape struct {
	expr ast.Expr
	name string
	how  string
}

// goEscapes enumerates the values a `go` statement hands to the new
// goroutine: evaluated arguments, the eagerly bound method receiver,
// and the free variables of a launched function literal.
func (p *Pass) goEscapes(call *ast.CallExpr) []escape {
	var out []escape
	for _, arg := range call.Args {
		out = append(out, escape{expr: arg, name: exprName(arg), how: "receives argument"})
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			out = append(out, escape{expr: fun.X, name: exprName(fun.X), how: "binds receiver"})
		}
	case *ast.FuncLit:
		for _, id := range p.freeIdents(fun) {
			out = append(out, escape{expr: id, name: id.Name, how: "captures"})
		}
	}
	return out
}

// freeIdents returns the identifiers in lit's body whose defining object
// sits outside the literal — the closure's free variables.
func (p *Pass) freeIdents(lit *ast.FuncLit) []*ast.Ident {
	var out []*ast.Ident
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.Pos() == 0 {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		seen[v] = true
		out = append(out, id)
		return true
	})
	return out
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func exprName(e ast.Expr) string {
	if path := exprPath(e); path != "" {
		return path
	}
	return "value"
}

// typeContainsManager reports whether t transitively contains a
// resmgr.Manager (directly, behind pointers, or inside struct fields,
// slices, arrays, or map values). Named types declared in internal/live
// are excluded: the Driver layer owns its Manager and serializes access.
func typeContainsManager(t types.Type) bool {
	return containsManager(t, 0, make(map[types.Type]bool))
}

func containsManager(t types.Type, depth int, seen map[types.Type]bool) bool {
	if t == nil || depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	if ptr, ok := t.(*types.Pointer); ok {
		return containsManager(ptr.Elem(), depth, seen)
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			if obj.Pkg().Path() == "cosched/internal/resmgr" && obj.Name() == "Manager" {
				return true
			}
			if obj.Pkg().Path() == "cosched/internal/live" {
				return false
			}
		}
		return containsManager(named.Underlying(), depth+1, seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsManager(t.Field(i).Type(), depth+1, seen) {
				return true
			}
		}
	case *types.Slice:
		return containsManager(t.Elem(), depth+1, seen)
	case *types.Array:
		return containsManager(t.Elem(), depth+1, seen)
	case *types.Map:
		return containsManager(t.Elem(), depth+1, seen)
	}
	return false
}

package lint

import (
	"go/ast"
	"go/token"
)

// checkDeadline implements R9: a network read in a protocol package must
// be preceded — in the same function — by arming a read deadline on the
// conn, either directly (SetReadDeadline/SetDeadline) or through a
// helper/closure whose summary sets one (the coordinator's readDeadline
// closure is the canonical shape). A read with no deadline turns a
// silent peer into a goroutine leak that the 4-beat heartbeat contract
// (PR 7) exists to prevent. Reads: proto.ReadFrame on a conn-like
// argument, or a raw .Read on a conn-like receiver. "Same conn" is
// matched lexically by selector path; a deadline on an unmatchable
// expression (or from a summary) satisfies any read.
func checkDeadline(p *Pass) {
	if !protocolPackage(p.Path) {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, body := range functionBodies(f) {
			p.scanDeadlines(body)
		}
	}
}

// protocolPackage scopes R9 to the packages that own live sockets.
func protocolPackage(path string) bool {
	return inRepoPackage(path, "proto") || inRepoPackage(path, "peerlink") ||
		inRepoPackage(path, "distsweep") || inRepoPackage(path, "fixture")
}

type deadlineEvent struct {
	pos  token.Pos
	path string // "" means "arms a deadline on some conn" (summary)
}

type readEvent struct {
	pos  token.Pos
	path string
	desc string
}

// scanDeadlines walks one function body (nested literals scan as their
// own scopes) collecting deadline-arming events and conn reads, then
// reports every read with no preceding deadline on the same conn.
func (p *Pass) scanDeadlines(body *ast.BlockStmt) {
	var deadlines []deadlineEvent
	var reads []readEvent
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "SetReadDeadline", "SetDeadline":
				deadlines = append(deadlines, deadlineEvent{pos: call.Pos(), path: exprPath(sel.X)})
				return true
			case "Read":
				if recv := recvType(p.Info, call); connLikeType(recv) {
					reads = append(reads, readEvent{pos: call.Pos(), path: exprPath(sel.X), desc: "conn.Read"})
				}
				return true
			}
		}
		fn := calleeFunc(p.Info, call)
		if isPkgFunc(fn, "cosched/internal/proto", "ReadFrame") && len(call.Args) > 0 {
			if tv, ok := p.Info.Types[call.Args[0]]; ok && connLikeType(tv.Type) {
				reads = append(reads, readEvent{
					pos: call.Pos(), path: exprPath(call.Args[0]), desc: "proto.ReadFrame"})
			}
			return true
		}
		if sum := p.calleeSummary(call); sum != nil && sum.SetsDeadline {
			deadlines = append(deadlines, deadlineEvent{pos: call.Pos(), path: ""})
		}
		return true
	})
	for _, r := range reads {
		armed := false
		for _, d := range deadlines {
			if d.pos >= r.pos {
				continue
			}
			if d.path == "" || r.path == "" || d.path == r.path {
				armed = true
				break
			}
		}
		if !armed {
			p.reportf(r.pos, "R9",
				"%s on %q with no preceding read deadline in this function: a silent peer parks this goroutine forever — arm SetReadDeadline first (the 4-beat heartbeat contract)",
				r.desc, readConnName(r.path))
		}
	}
}

func readConnName(path string) string {
	if path == "" {
		return "conn"
	}
	return path
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkDurability implements R7: errors from durability-critical calls
// may not be discarded. The crash-safety argument of the journal (PR 5)
// is an ordering argument — append, fsync, rename, truncate — and it
// only holds if every step's error stops the sequence; a swallowed frame
// write lets a sweep continue against a dead worker. Discard shapes:
// a bare expression statement, an assignment with every error result
// blank, and defer/go statements (whose return values are always
// dropped). Test files are exempt — tests assert through the harness.
func checkDurability(p *Pass) {
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					p.reportDiscard(call, "")
				}
			case *ast.DeferStmt:
				p.reportDiscard(n.Call, "defer ")
			case *ast.GoStmt:
				p.reportDiscard(n.Call, "go ")
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok || !allErrResultsBlank(p, n, call) {
					return true
				}
				p.reportDiscard(call, "_ = ")
			}
			return true
		})
	}
}

// reportDiscard flags call if it is durability-critical and returns an
// error that the surrounding statement shape necessarily drops.
func (p *Pass) reportDiscard(call *ast.CallExpr, shape string) {
	desc, ok := p.durableCall(call)
	if !ok || !callReturnsErr(p, call) {
		return
	}
	p.reportf(call.Pos(), "R7",
		"%s%s discards the error from durability-critical %s: the crash-safe ordering only holds if every step's failure propagates",
		shape, desc, desc)
}

// durableCall classifies a call as durability-critical: journal.Store
// mutations and proto frame writes module-wide; raw fsync/rename/Close
// on files only inside the journal package itself (and fixtures), where
// the crash-safe ordering lives.
func (p *Pass) durableCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p.Info, call)
	if fn != nil {
		if recv := recvType(p.Info, call); recv != nil {
			if namedAs(recv, "cosched/internal/journal", "Store") && durableStoreMethods[fn.Name()] {
				return "journal.Store." + fn.Name(), true
			}
			// The WAL's syscall seam is the journal.FS / journal.File
			// pair (PR 10): every fault-injection campaign rides through
			// these interfaces, so a dropped error here hides the exact
			// faults the campaign exists to surface. Module-wide, like
			// Store — the handle is durability-critical wherever it flows.
			if namedAs(recv, "cosched/internal/journal", "File") && durableFileMethods[fn.Name()] {
				return "journal.File." + fn.Name(), true
			}
			if namedAs(recv, "cosched/internal/journal", "FS") && durableFSMethods[fn.Name()] {
				return "journal.FS." + fn.Name(), true
			}
			if durabilityFilePackage(p.Path) && namedAs(recv, "os", "File") &&
				(fn.Name() == "Sync" || fn.Name() == "Close" || fn.Name() == "Write" || fn.Name() == "Truncate") {
				return "os.File." + fn.Name(), true
			}
		}
		if isPkgFunc(fn, "cosched/internal/proto", "WriteFrame") {
			return "proto.WriteFrame", true
		}
		if durabilityFilePackage(p.Path) && isPkgFunc(fn, "os", "Rename", "Truncate") {
			return "os." + fn.Name(), true
		}
	}
	// A helper whose summary is durable is durability-critical itself:
	// wrapping a frame write in a closure must not launder its error.
	if sum := p.calleeSummary(call); sum != nil && sum.Durable {
		return p.calleeDisplay(call), true
	}
	return "", false
}

// durabilityFilePackage scopes the raw file-syscall checks (fsync,
// rename, close) to where the WAL's crash-safe ordering lives.
func durabilityFilePackage(path string) bool {
	return inRepoPackage(path, "journal") || inRepoPackage(path, "fixture")
}

// callReturnsErr reports whether the call produces at least one error
// result (directly from its type, so export-data callees work too).
func callReturnsErr(p *Pass, call *ast.CallExpr) bool {
	return len(errResultIndexes(p, call)) > 0
}

// errResultIndexes returns the result positions of call that have type
// error.
func errResultIndexes(p *Pass, call *ast.CallExpr) []int {
	tv, ok := p.Info.Types[call]
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				out = append(out, i)
			}
		}
		return out
	default:
		if t != nil && types.Identical(t, errType) {
			return []int{0}
		}
	}
	return nil
}

// allErrResultsBlank reports whether assign drops every error result of
// call into the blank identifier (`_ = f()`, `n, _ := f()` with error
// last). Capturing even one error position means the caller looked.
func allErrResultsBlank(p *Pass, assign *ast.AssignStmt, call *ast.CallExpr) bool {
	idx := errResultIndexes(p, call)
	if len(idx) == 0 {
		return false
	}
	for _, i := range idx {
		if i >= len(assign.Lhs) {
			return false
		}
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// isTestFile reports whether f is a _test.go file.
func isTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// checkFloatEq implements R5: == and != over floating-point operands make
// control flow depend on accumulation order and rounding — the exact
// failure mode the byte-identical differential gates guard against. The
// idiomatic NaN probe `x != x` (syntactically identical identifier on
// both sides) is recognized and exempt, and so are _test.go files: this
// repo's tests assert exact float values on purpose, because
// bit-determinism across cores and worker counts is the property under
// test.
func checkFloatEq(p *Pass) {
	for _, f := range p.Files {
		if pos := p.Fset.Position(f.Pos()); strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !p.isFloat(be.X) || !p.isFloat(be.Y) {
				return true
			}
			if be.Op == token.NEQ && sameIdent(be.X, be.Y) {
				return true // NaN self-test
			}
			p.reportf(be.OpPos, "R5",
				"floating-point %s comparison: accumulated floats are order- and rounding-sensitive; compare with an epsilon or restructure around exact state", be.Op)
			return true
		})
	}
}

// isFloat reports whether e's type is (or is named with underlying)
// float32/float64. Untyped float constants adopt the other operand's type
// during checking, so a constant-vs-aggregate comparison is still caught.
func (p *Pass) isFloat(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sameIdent reports whether both expressions are the same bare identifier.
func sameIdent(a, b ast.Expr) bool {
	ia, ok1 := ast.Unparen(a).(*ast.Ident)
	ib, ok2 := ast.Unparen(b).(*ast.Ident)
	return ok1 && ok2 && ia.Name == ib.Name
}

package lint

import (
	"go/ast"
	"go/types"
)

// hotpathDirective is the marker comment that subjects a function to R6.
// It must sit on the line directly above the func declaration (by
// convention the last line of the doc comment).
const hotpathDirective = "//simlint:hotpath"

// checkHotpath implements R6: inside a function marked //simlint:hotpath,
// the allocation builtins append and make are findings. The marked
// functions are the per-event spine (engine scheduling, arena handout,
// policy ordering, metric absorption) that the memory architecture keeps
// allocation-free at steady state; the property is benchmarked by the
// zero-alloc assertions and -megabench, but a benchmark only catches the
// regression after the fact — this rule catches it at lint time.
// Amortized container growth (slab, heap, and free-list doubling) is the
// sanctioned exception and carries //simlint:allow R6 with the
// amortization argument.
func checkHotpath(p *Pass) {
	for _, f := range p.Files {
		// Collect the lines carrying the marker, then match each func
		// declaration starting on the line right below one.
		marked := make(map[int]bool)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text == hotpathDirective {
					marked[p.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
		if len(marked) == 0 {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !marked[p.Fset.Position(fd.Pos()).Line-1] {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin {
					return true
				}
				switch id.Name {
				case "append", "make":
					p.reportf(call.Pos(), "R6",
						"%s in hotpath function %s: //simlint:hotpath code must be allocation-free at steady state; preallocate, recycle through a free list, or annotate amortized growth with an allow", id.Name, name)
				}
				return true
			})
		}
	}
}

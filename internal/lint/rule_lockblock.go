package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkLockBlock implements R8: no mutex held across a blocking call in
// the protocol/durability packages. The failure shape is the heartbeat
// stall: a writer holds the link mutex while a peer stops reading, the
// TCP window fills, the write parks forever, and every goroutine that
// needs the mutex — including the heartbeat that would have detected the
// dead peer — parks behind it. The scan is lexical and per-function:
// events (Lock/Unlock/defer-Unlock, blocking calls, channel ops) are
// collected in source order and a blocking event inside a held region is
// a finding. sync.Cond.Wait is not blocking here — it releases its mutex
// while parked — and file I/O is out of scope by contract.
func checkLockBlock(p *Pass) {
	if !lockBlockPackage(p.Path) {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, body := range functionBodies(f) {
			p.scanLockRegions(body)
		}
	}
}

// lockBlockPackage scopes R8 to the packages whose mutexes guard live
// protocol or WAL state. internal/proto is deliberately excluded: its
// client serializes one request/response exchange under the connection
// mutex by design (the wire protocol is sequential).
func lockBlockPackage(path string) bool {
	return inRepoPackage(path, "peerlink") || inRepoPackage(path, "distsweep") ||
		inRepoPackage(path, "journal") || inRepoPackage(path, "fixture")
}

// functionBodies returns every function body in f — declarations and
// literals alike — each scanned as its own lexical scope.
func functionBodies(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, n.Body)
			}
		case *ast.FuncLit:
			out = append(out, n.Body)
		}
		return true
	})
	return out
}

type lockEvent struct {
	pos  token.Pos
	kind int // lockEv, unlockEv, deferUnlockEv, blockEv
	path string
	desc string
}

const (
	lockEv = iota
	unlockEv
	deferUnlockEv
	blockEv
)

// scanLockRegions collects this body's events in source order (skipping
// nested function literals, which scan as their own scopes) and reports
// every blocking event inside a held region.
func (p *Pass) scanLockRegions(body *ast.BlockStmt) {
	var events []lockEvent
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// Launching a goroutine does not block; its body is scanned
			// as its own scope.
			return false
		case *ast.DeferStmt:
			if path, kind, ok := mutexOp(p, n.Call); ok && kind == unlockEv {
				events = append(events, lockEvent{pos: n.Pos(), kind: deferUnlockEv, path: path})
			}
			return false
		case *ast.CallExpr:
			if path, kind, ok := mutexOp(p, n); ok {
				events = append(events, lockEvent{pos: n.Pos(), kind: kind, path: path})
				return true
			}
			if desc, ok := p.blockingCall(n); ok {
				events = append(events, lockEvent{pos: n.Pos(), kind: blockEv, desc: desc})
			}
		case *ast.SendStmt:
			events = append(events, lockEvent{pos: n.Pos(), kind: blockEv, desc: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, lockEvent{pos: n.Pos(), kind: blockEv, desc: "channel receive"})
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				events = append(events, lockEvent{pos: n.Pos(), kind: blockEv, desc: "select"})
			}
			// Clause bodies are ordinary code; the comm operations
			// themselves belong to the select and are not re-counted.
			for _, s := range n.Body.List {
				if cc, ok := s.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, visit)
					}
				}
			}
			return false
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					events = append(events, lockEvent{pos: n.Pos(), kind: blockEv, desc: "range over channel"})
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)

	held := make(map[string]token.Pos)
	deferred := make(map[string]bool)
	for _, ev := range events {
		switch ev.kind {
		case lockEv:
			held[ev.path] = ev.pos
		case unlockEv:
			if !deferred[ev.path] {
				delete(held, ev.path)
			}
		case deferUnlockEv:
			deferred[ev.path] = true
		case blockEv:
			for path, lockPos := range held {
				p.reportf(ev.pos, "R8",
					"%s while %s is locked (line %d): a blocked peer stalls every goroutine contending for the mutex — release it around the blocking call",
					ev.desc, path, p.Fset.Position(lockPos).Line)
				break
			}
		}
	}
}

// mutexOp classifies a call as a sync.Mutex/RWMutex lock or unlock on a
// named receiver path.
func mutexOp(p *Pass, call *ast.CallExpr) (string, int, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	recv := recvType(p.Info, call)
	if recv == nil || (!namedAs(recv, "sync", "Mutex") && !namedAs(recv, "sync", "RWMutex")) {
		return "", 0, false
	}
	path := exprPath(sel.X)
	if path == "" {
		path = "<mutex>"
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return path, lockEv, true
	case "Unlock", "RUnlock":
		return path, unlockEv, true
	}
	return "", 0, false
}

// blockingCall reports whether the call may block on the network, a
// channel, a process, or the clock — either intrinsically or through its
// callee's summary.
func (p *Pass) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(p.Info, call)
	if fn != nil {
		name := fn.Name()
		if recv := recvType(p.Info, call); recv != nil {
			switch {
			case (name == "Read" || name == "Write") && blockingIOReceiver(recv):
				return "blocking " + name, true
			case name == "Wait" && namedAs(recv, "sync", "WaitGroup"):
				return "WaitGroup.Wait", true
			case namedAs(recv, "os/exec", "Cmd") &&
				(name == "Wait" || name == "Run" || name == "Output" || name == "CombinedOutput"):
				return "exec.Cmd." + name, true
			}
		}
		if isPkgFunc(fn, "time", "Sleep") {
			return "time.Sleep", true
		}
		if isPkgFunc(fn, "io", "ReadFull", "ReadAll", "Copy", "CopyN", "CopyBuffer") {
			return "io." + name, true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "net" && isPackageLevel(fn) &&
			len(name) >= 4 && name[:4] == "Dial" {
			return "net." + name, true
		}
		if isPkgFunc(fn, "cosched/internal/proto", "WriteFrame", "ReadFrame") {
			return "proto." + name, true
		}
	}
	if sum := p.calleeSummary(call); sum != nil && sum.Blocks {
		return "call to " + p.calleeDisplay(call) + " (may block per its summary)", true
	}
	return "", false
}

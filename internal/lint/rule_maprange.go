package lint

import (
	"go/ast"
	"go/types"
)

// checkMapRange implements R1: a `for ... range m` over a map may not
// reach event scheduling, resource-manager driving, trace emission, or
// ordered output from inside the loop body, because map iteration order is
// deliberately randomized per run. The safe idiom — range the map only to
// collect keys, sort, then do the ordered work from the slice — is not
// flagged: the collection loop's body contains no order-sensitive call.
func checkMapRange(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := p.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if call, what := p.orderSensitiveCall(rs.Body); call != nil {
				p.reportf(rs.For, "R1",
					"map iteration order is random but the loop body reaches %s (line %d); collect keys, sort, then iterate the slice",
					what, p.Fset.Position(call.Pos()).Line)
			}
			return true
		})
	}
}

// orderSensitiveCall scans a map-range body (including nested closures —
// they typically run per iteration) for the first call whose effect
// depends on invocation order, and describes it.
func (p *Pass) orderSensitiveCall(body *ast.BlockStmt) (found *ast.CallExpr, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if w := p.describeOrderSensitive(call); w != "" {
			found, what = call, w
			return false
		}
		return true
	})
	return found, what
}

// describeOrderSensitive classifies one call; empty means order-neutral.
func (p *Pass) describeOrderSensitive(call *ast.CallExpr) string {
	f := calleeFunc(p.Info, call)

	// Direct output: fmt's printing family (Sprint* is pure and exempt).
	if isPkgFunc(f, "fmt", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln") {
		return "direct output (fmt." + f.Name() + ")"
	}

	recv := recvType(p.Info, call)
	if recv == nil {
		return ""
	}
	name := f.Name()

	// Event scheduling: anything that enqueues on the engine consumes a
	// sequence number, and sequence numbers break same-instant ties for
	// the rest of the simulation.
	if namedAs(recv, "cosched/internal/sim", "Engine") {
		switch name {
		case "At", "After", "Every", "Step", "Run", "RunUntil", "RunFor":
			return "event scheduling (sim.Engine." + name + ")"
		}
	}
	// Driving the resource manager schedules events and mutates ordered
	// queue state.
	if namedAs(recv, "cosched/internal/resmgr", "Manager") {
		switch name {
		case "Submit", "SubmitAt", "Cancel", "RequestIteration", "Iterate", "RunJob":
			return "resmgr scheduling (Manager." + name + ")"
		}
	}
	// Ordered table/trace emission.
	if namedAs(recv, "cosched/internal/metrics", "Table") && (name == "AddRow" || name == "AddRowf") {
		return "ordered table rows (metrics.Table." + name + ")"
	}
	if namedAs(recv, "cosched/internal/eventlog", "Log") {
		return "event-log emission (eventlog.Log." + name + ")"
	}
	// Generic writer emission (strings.Builder, bytes.Buffer, files,
	// bufio, network conns — anything with the io.Writer method set).
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return "writer emission (" + recv.String() + "." + name + ")"
	}
	return ""
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// simImpureAllowed lists the repo subtrees exempt from R2: command-line
// tools and examples measure real elapsed time, internal/live is the
// real-time driver whose whole job is mapping virtual to wall-clock time,
// and internal/benchsuite is the scientific benchmark harness — its whole
// job is timing real executions, so wall-clock reads are its subject
// matter, not a determinism leak.
func simPurePackage(path string) bool {
	if !strings.HasPrefix(path, "cosched/internal/") {
		return false
	}
	return !inRepoPackage(path, "live") && !inRepoPackage(path, "benchsuite")
}

// rngConstructors are the math/rand{,/v2} package-level functions that
// build explicitly seeded generators — the only sanctioned way to get
// randomness inside the simulator.
var rngConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// wallClockFuncs are the time functions that read or wait on the wall
// clock. Pure constructors/formatters (time.Date, time.Unix, Duration
// arithmetic) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// isPackageLevel distinguishes package-level functions from methods with
// the same name (rand.Intn vs (*rand.Rand).Intn — only the former uses
// the shared global source).
func isPackageLevel(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// checkPurity implements R2: sim-pure packages may not read the wall
// clock or draw from the global (implicitly seeded) RNG. Methods on an
// explicitly constructed *rand.Rand are fine; the package-level forwards
// to the shared global source are not.
//
// The rule is interprocedural: beyond the direct std-lib calls, any call
// whose resolvable callee lives in a non-sim-pure module package (cmd/,
// internal/live) and whose summary transitively reaches the wall clock
// or global RNG is flagged with the proving call chain — a one-line
// wrapper around time.Now in a cmd/ package no longer launders impurity
// into sim code. Calls to other sim-pure packages are not re-flagged:
// their own direct violations (or allows) are reported where they live.
func checkPurity(p *Pass) {
	if !simPurePackage(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] && isPackageLevel(fn) {
					p.reportf(call.Pos(), "R2",
						"wall-clock call time.%s in sim-pure package %s; simulation time is sim.Time, driven by the engine",
						fn.Name(), p.Path)
				}
			case "math/rand", "math/rand/v2":
				if isPackageLevel(fn) && !rngConstructors[fn.Name()] {
					p.reportf(call.Pos(), "R2",
						"global-RNG call %s.%s in sim-pure package %s; draw from an explicitly seeded rand.New(...) instead",
						fn.Pkg().Path(), fn.Name(), p.Path)
				}
			default:
				p.checkTransitivePurity(call, fn)
			}
			return true
		})
	}
}

// checkTransitivePurity flags calls from sim-pure code into impure
// module helpers, with the summary's via-chain as evidence.
func (p *Pass) checkTransitivePurity(call *ast.CallExpr, fn *types.Func) {
	path := fn.Pkg().Path()
	if simPurePackage(path) || !strings.HasPrefix(path, "cosched/") {
		return
	}
	sum := p.Sums.of(fn)
	if sum == nil {
		return
	}
	if sum.WallClock {
		p.reportf(call.Pos(), "R2",
			"call to %s transitively reaches the wall clock (via %s) in sim-pure package %s; simulation time is sim.Time, driven by the engine",
			displayName(funcKey(fn)), strings.Join(sum.WallVia, " → "), p.Path)
	} else if sum.GlobalRNG {
		p.reportf(call.Pos(), "R2",
			"call to %s transitively draws from the global RNG (via %s) in sim-pure package %s; draw from an explicitly seeded rand.New(...) instead",
			displayName(funcKey(fn)), strings.Join(sum.RNGVia, " → "), p.Path)
	}
}

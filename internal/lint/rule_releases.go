package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

const backfillPath = "cosched/internal/backfill"

// planners maps the backfill entry points to recognition; the releases
// parameter is located by type, so signature evolution cannot silently
// de-fang the rule.
var planners = map[string]bool{
	"Plan": true, "PlanInto": true,
	"PlanConservative": true, "PlanConservativeInto": true,
}

// checkReleases implements R3: every call into the backfill planners must
// pass a releases list that is provably in the canonical (EndBy asc,
// Nodes asc) order. The contract is runtime-asserted only under
// -tags debug, so release builds rely on this static check. Accepted
// provenances:
//
//   - nil, or an all-constant composite literal verified sorted here;
//   - a call expression (producers like Manager.planReleases own the
//     contract internally and keep the maintained timeline sorted);
//   - a selector or identifier named "timeline" (the maintained timeline);
//   - an identifier assigned from one of the above inside the enclosing
//     function;
//   - an identifier passed to backfill.SortReleases earlier in the
//     enclosing function.
//
// The backfill package itself is exempt: it owns the contract, and its
// tests construct deliberately unsorted inputs to probe the assertion.
func checkReleases(p *Pass) {
	if p.Path == backfillPath {
		return
	}
	for _, f := range p.Files {
		// stack mirrors ast.Inspect's traversal (every pre-order node is
		// pushed, every post-order nil pops), so the innermost enclosing
		// function is found by scanning backwards — a bare "push funcs only"
		// stack would leak exited function literals.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != backfillPath || !planners[fn.Name()] {
				return true
			}
			idx := releasesParamIndex(fn)
			if idx < 0 || idx >= len(call.Args) {
				return true
			}
			arg := ast.Unparen(call.Args[idx])
			var enclosing ast.Node
			for i := len(stack) - 2; i >= 0; i-- {
				if _, ok := stack[i].(*ast.FuncDecl); ok {
					enclosing = stack[i]
					break
				}
				if _, ok := stack[i].(*ast.FuncLit); ok {
					enclosing = stack[i]
					break
				}
			}
			if why := p.unprovenReleases(arg, enclosing, call.Pos()); why != "" {
				p.reportf(call.Pos(), "R3",
					"releases argument of backfill.%s is not provably in canonical order (%s); take it from the maintained timeline or call backfill.SortReleases first",
					fn.Name(), why)
			}
			return true
		})
	}
}

// releasesParamIndex finds the []backfill.Release parameter by type.
func releasesParamIndex(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sl, ok := sig.Params().At(i).Type().(*types.Slice); ok &&
			namedAs(sl.Elem(), backfillPath, "Release") {
			return i
		}
	}
	return -1
}

// unprovenReleases returns "" when arg's sortedness is established, or a
// short reason when it is not.
func (p *Pass) unprovenReleases(arg ast.Expr, enclosing ast.Node, callPos token.Pos) string {
	if p.acceptableReleasesExpr(arg) {
		return ""
	}
	// An identifier: look for a defining assignment from an acceptable
	// expression, or an earlier SortReleases(x) on the same object.
	if id, ok := arg.(*ast.Ident); ok && enclosing != nil {
		obj := p.Info.Uses[id]
		if obj != nil && (p.assignedAcceptably(obj, enclosing) || p.sortedBefore(obj, enclosing, callPos)) {
			return ""
		}
		return "variable " + id.Name + " has no visible sorted provenance in this function"
	}
	return "expression has no visible sorted provenance"
}

// acceptableReleasesExpr recognizes expressions that are sorted by
// construction.
func (p *Pass) acceptableReleasesExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if e.Name == "nil" || e.Name == "timeline" {
			return true
		}
	case *ast.SelectorExpr:
		// The maintained timeline field (m.timeline), whose sortedness is
		// the incremental core's own audited invariant.
		return e.Sel.Name == "timeline"
	case *ast.CallExpr:
		// Producer functions (planReleases, timeline accessors) own the
		// contract; a conversion or append would also pass here, which is
		// the documented precision limit of the rule.
		return true
	case *ast.CompositeLit:
		return p.sortedLiteral(e)
	}
	return false
}

// sortedLiteral verifies an all-constant []Release literal against the
// canonical order; any non-constant element defeats the proof.
func (p *Pass) sortedLiteral(lit *ast.CompositeLit) bool {
	type rel struct{ endBy, nodes int64 }
	var prev *rel
	for _, el := range lit.Elts {
		inner, ok := el.(*ast.CompositeLit)
		if !ok {
			return false
		}
		var r rel
		for i, field := range inner.Elts {
			expr := field
			name := ""
			if kv, ok := field.(*ast.KeyValueExpr); ok {
				expr = kv.Value
				if id, ok := kv.Key.(*ast.Ident); ok {
					name = id.Name
				}
			} else if i == 0 {
				name = "Nodes" // positional: struct field order
			} else if i == 1 {
				name = "EndBy"
			}
			tv, ok := p.Info.Types[expr]
			if !ok || tv.Value == nil {
				return false
			}
			v, ok := constant.Int64Val(tv.Value)
			if !ok {
				return false
			}
			switch name {
			case "Nodes":
				r.nodes = v
			case "EndBy":
				r.endBy = v
			}
		}
		if prev != nil && (r.endBy < prev.endBy || (r.endBy == prev.endBy && r.nodes < prev.nodes)) {
			return false
		}
		prev = &r
	}
	return true
}

// assignedAcceptably reports whether obj is assigned from an acceptable
// expression anywhere in the enclosing function.
func (p *Pass) assignedAcceptably(obj types.Object, enclosing ast.Node) bool {
	ok := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if ok {
			return false
		}
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent {
				continue
			}
			if p.Info.Defs[id] == obj || p.Info.Uses[id] == obj {
				if p.acceptableReleasesExpr(as.Rhs[i]) {
					ok = true
				}
			}
		}
		return true
	})
	return ok
}

// sortedBefore reports whether backfill.SortReleases(obj) is called before
// pos inside the enclosing function.
func (p *Pass) sortedBefore(obj types.Object, enclosing ast.Node, pos token.Pos) bool {
	ok := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall || call.Pos() >= pos || len(call.Args) != 1 {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if !isPkgFunc(fn, backfillPath, "SortReleases") {
			return true
		}
		if id, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); isIdent && p.Info.Uses[id] == obj {
			ok = true
		}
		return true
	})
	return ok
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rule is one simlint check. Every rule encodes a repo contract or a past
// bug; Doc is the one-paragraph rationale `simlint -rules` prints and
// ARCHITECTURE.md §6 catalogs.
type Rule struct {
	ID    string
	Title string
	Doc   string
	Check func(*Pass)
}

// Rules is the simlint rule catalog, in report order.
var Rules = []Rule{
	{
		ID:    "R1",
		Title: "no map iteration into ordered state",
		Doc: "A `range` over a map whose body schedules events, drives the " +
			"resource manager, or emits ordered output injects Go's randomized " +
			"map order into the simulation's total event order or into rendered " +
			"bytes. PR 2's determinism bug was exactly this: coupled.New ranged " +
			"a traces map while scheduling submissions, flipping proportion-sweep " +
			"cells between runs. Collect keys, sort, then iterate the slice.",
		Check: checkMapRange,
	},
	{
		ID:    "R2",
		Title: "no wall clock or global RNG in sim-pure packages",
		Doc: "Simulation packages model time as sim.Time and draw randomness " +
			"from explicitly seeded sources; time.Now/time.Sleep or the global " +
			"math/rand functions make results machine- and run-dependent. " +
			"Applies to every cosched/internal package except internal/live " +
			"(the real-time driver); cmd/ and examples/ are exempt.",
		Check: checkPurity,
	},
	{
		ID:    "R3",
		Title: "backfill planner callers must pass a canonically sorted timeline",
		Doc: "backfill.Plan/PlanInto/PlanConservative/PlanConservativeInto " +
			"require releases sorted by (EndBy asc, Nodes asc); a mis-sorted " +
			"list silently computes a wrong shadow time. The contract is only " +
			"asserted under -tags debug, so statically: the releases argument " +
			"must come from the manager's maintained timeline, a producer call, " +
			"a provably sorted constant literal, or a prior backfill.SortReleases.",
		Check: checkReleases,
	},
	{
		ID:    "R4",
		Title: "no goroutines or t.Parallel around a resmgr.Manager",
		Doc: "resmgr.Manager is single-threaded by contract — the engine's " +
			"event loop serializes everything. Goroutines capturing a Manager " +
			"or t.Parallel in its tests race the scheduler state; concurrency " +
			"belongs in internal/parallel's deterministic cell pool, where each " +
			"worker owns a private engine, or across process boundaries in " +
			"internal/distsweep, whose coordinator goroutines hold only " +
			"connections and serialized rows — never a Manager.",
		Check: checkConcurrency,
	},
	{
		ID:    "R5",
		Title: "no floating-point == or != ",
		Doc: "Metric aggregates are accumulated floats; bit-equality on them " +
			"encodes accumulation order and rounding into control flow, which " +
			"is exactly what the byte-identical differential gates exist to " +
			"catch. Compare against an epsilon, compare the rendered strings, " +
			"or restructure around exact integer state. (x != x as a NaN probe " +
			"is recognized and allowed.)",
		Check: checkFloatEq,
	},
	{
		ID:    "R6",
		Title: "no append/make in //simlint:hotpath functions",
		Doc: "Functions marked //simlint:hotpath are the per-event spine " +
			"(engine scheduling, arena handout, policy ordering, metric " +
			"absorption) that the arena/free-list memory architecture keeps " +
			"allocation-free at steady state. An append or make inside one " +
			"reintroduces per-event allocation and GC pressure that the " +
			"zero-alloc benchmark assertions would only catch after the " +
			"fact. Preallocate, recycle through a free list, or — for " +
			"amortized container growth (slab, heap, free-list doubling) — " +
			"annotate the site with //simlint:allow R6 and the amortization " +
			"argument.",
		Check: checkHotpath,
	},
}

// ---------------------------------------------------------------------------
// Shared type helpers

// namedAs reports whether t (after pointer deref) is the named type
// path.name.
func namedAs(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvType returns the receiver type of a method call, or nil when the
// call is not a method call.
func recvType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return s.Recv()
}

// isPkgFunc reports whether f is a package-level function (not a method)
// of the given package path with one of the given names.
func isPkgFunc(f *types.Func, path string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != path {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// inRepoPackage reports whether path is inside this module's internal
// tree (works for both the real module and fixture paths).
func inRepoPackage(path, sub string) bool {
	return path == "cosched/internal/"+sub || strings.HasPrefix(path, "cosched/internal/"+sub+"/")
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rule is one simlint check. Every rule encodes a repo contract or a past
// bug; Doc is the one-paragraph rationale `simlint -rules` prints and
// ARCHITECTURE.md §6 catalogs.
type Rule struct {
	ID    string
	Title string
	Doc   string
	Check func(*Pass)
}

// Rules is the simlint rule catalog, in report order.
var Rules = []Rule{
	{
		ID:    "R1",
		Title: "no map iteration into ordered state",
		Doc: "A `range` over a map whose body schedules events, drives the " +
			"resource manager, or emits ordered output injects Go's randomized " +
			"map order into the simulation's total event order or into rendered " +
			"bytes. PR 2's determinism bug was exactly this: coupled.New ranged " +
			"a traces map while scheduling submissions, flipping proportion-sweep " +
			"cells between runs. Collect keys, sort, then iterate the slice.",
		Check: checkMapRange,
	},
	{
		ID:    "R2",
		Title: "no wall clock or global RNG in sim-pure packages",
		Doc: "Simulation packages model time as sim.Time and draw randomness " +
			"from explicitly seeded sources; time.Now/time.Sleep or the global " +
			"math/rand functions make results machine- and run-dependent. " +
			"Applies to every cosched/internal package except internal/live " +
			"(the real-time driver); cmd/ and examples/ are exempt. The rule " +
			"is interprocedural: a call into a non-sim-pure module helper " +
			"whose summary transitively reaches the wall clock or global RNG " +
			"is flagged with the proving call chain, so a one-line wrapper " +
			"around time.Now cannot launder impurity into sim code.",
		Check: checkPurity,
	},
	{
		ID:    "R3",
		Title: "backfill planner callers must pass a canonically sorted timeline",
		Doc: "backfill.Plan/PlanInto/PlanConservative/PlanConservativeInto " +
			"require releases sorted by (EndBy asc, Nodes asc); a mis-sorted " +
			"list silently computes a wrong shadow time. The contract is only " +
			"asserted under -tags debug, so statically: the releases argument " +
			"must come from the manager's maintained timeline, a producer call, " +
			"a provably sorted constant literal, or a prior backfill.SortReleases.",
		Check: checkReleases,
	},
	{
		ID:    "R4",
		Title: "no goroutines or t.Parallel around a resmgr.Manager",
		Doc: "resmgr.Manager is single-threaded by contract — the engine's " +
			"event loop serializes everything. Goroutines capturing a Manager " +
			"or t.Parallel in its tests race the scheduler state; concurrency " +
			"belongs in internal/parallel's deterministic cell pool, where each " +
			"worker owns a private engine, or across process boundaries in " +
			"internal/distsweep, whose coordinator goroutines hold only " +
			"connections and serialized rows — never a Manager. Escape is " +
			"tracked through values: arguments and captured free variables " +
			"whose types *contain* a Manager (struct fields, slices, maps) " +
			"are flagged, as are calls to helpers whose summaries reach a " +
			"Manager through free variables or globals. Named internal/live " +
			"types are exempt — the Driver serializes its Manager by design.",
		Check: checkConcurrency,
	},
	{
		ID:    "R5",
		Title: "no floating-point == or != ",
		Doc: "Metric aggregates are accumulated floats; bit-equality on them " +
			"encodes accumulation order and rounding into control flow, which " +
			"is exactly what the byte-identical differential gates exist to " +
			"catch. Compare against an epsilon, compare the rendered strings, " +
			"or restructure around exact integer state. (x != x as a NaN probe " +
			"is recognized and allowed.)",
		Check: checkFloatEq,
	},
	{
		ID:    "R6",
		Title: "no append/make in //simlint:hotpath functions",
		Doc: "Functions marked //simlint:hotpath are the per-event spine " +
			"(engine scheduling, arena handout, policy ordering, metric " +
			"absorption) that the arena/free-list memory architecture keeps " +
			"allocation-free at steady state. An append or make inside one " +
			"reintroduces per-event allocation and GC pressure that the " +
			"zero-alloc benchmark assertions would only catch after the " +
			"fact. Preallocate, recycle through a free list, or — for " +
			"amortized container growth (slab, heap, free-list doubling) — " +
			"annotate the site with //simlint:allow R6 and the amortization " +
			"argument.",
		Check: checkHotpath,
	},
	{
		ID:    "R7",
		Title: "no discarded errors on durability-critical calls",
		Doc: "The journal's crash-safety proof (PR 5) is an ordering argument " +
			"— append, fsync, rename, truncate — and it only holds if every " +
			"step's error stops the sequence; a frame write whose failure is " +
			"swallowed lets a sweep keep feeding a dead worker. Discarding " +
			"the error from journal.Store.Append/Compact/Close/Sync, " +
			"proto.WriteFrame, or (inside internal/journal) a raw file " +
			"Sync/Close/Write or os.Rename — via `_ =`, a bare statement, " +
			"defer, or go — is a finding. Helpers are summarized: wrapping a " +
			"frame write in a closure does not launder its error. Genuinely " +
			"best-effort sends (a farewell frame on an already-failed " +
			"connection) carry a //simlint:allow R7 stating why losing the " +
			"write is safe.",
		Check: checkDurability,
	},
	{
		ID:    "R8",
		Title: "no mutex held across a blocking call",
		Doc: "The heartbeat-stall shape: a goroutine holds a link mutex while " +
			"writing to a peer that stopped reading, the TCP window fills, " +
			"the write parks, and every goroutine that needs the mutex — " +
			"including the heartbeat that would have detected the dead peer " +
			"— parks behind it. In peerlink/distsweep/journal, no " +
			"sync.Mutex/RWMutex may be held (lexically, including " +
			"defer-Unlock) across network reads/writes, channel operations, " +
			"selects without default, exec waits, or time.Sleep, directly or " +
			"through a callee's summary. sync.Cond.Wait is exempt (it " +
			"releases its mutex while parked), as is file I/O; internal/" +
			"proto's sequential request/response client is out of scope by " +
			"design.",
		Check: checkLockBlock,
	},
	{
		ID:    "R9",
		Title: "network reads must be preceded by a read deadline",
		Doc: "A conn read with no deadline turns a silent peer into a " +
			"permanently parked goroutine; PR 7's liveness contract is that " +
			"every read is bounded by 4 heartbeat intervals. In protocol " +
			"packages (proto/peerlink/distsweep), every proto.ReadFrame on a " +
			"conn-like value and every raw conn.Read must be lexically " +
			"preceded, in the same function, by SetReadDeadline/SetDeadline " +
			"on that conn or by a call to a helper/closure whose summary " +
			"arms one. Reads that legitimately wait forever (an idle server " +
			"between requests whose liveness the client owns) carry a " +
			"//simlint:allow R9 saying who bounds the wait.",
		Check: checkDeadline,
	},
}

// ---------------------------------------------------------------------------
// Shared type helpers

// namedAs reports whether t (after pointer deref) is the named type
// path.name.
func namedAs(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and indirect calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// recvType returns the receiver type of a method call, or nil when the
// call is not a method call.
func recvType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	return s.Recv()
}

// isPkgFunc reports whether f is a package-level function (not a method)
// of the given package path with one of the given names.
func isPkgFunc(f *types.Func, path string, names ...string) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != path {
		return false
	}
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// inRepoPackage reports whether path is inside this module's internal
// tree (works for both the real module and fixture paths).
func inRepoPackage(path, sub string) bool {
	return path == "cosched/internal/"+sub || strings.HasPrefix(path, "cosched/internal/"+sub+"/")
}

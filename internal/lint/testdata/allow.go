// Allow-directive hygiene fixtures: a directive with no reason and a
// directive that suppresses nothing are findings themselves. The
// expectations for this file live in TestAllowHygieneFixture, because a
// trailing comment cannot share a line with a //simlint:allow directive.
package fixture

func allowHygiene(a, b float64) bool {
	//simlint:allow R5
	ok := a == b
	//simlint:allow R5 this line has no float comparison to suppress
	return ok
}

// A fixture with zero findings: each shape here is the sanctioned
// counterpart of a violation in the rule fixtures — the maintained
// timeline feeding the planner, and sorted-key rendering of a map.
package fixture

import (
	"fmt"
	"sort"
	"strings"

	"cosched/internal/backfill"
	"cosched/internal/job"
	"cosched/internal/sim"
)

type core struct {
	timeline []backfill.Release
}

func (c *core) plan(q []*job.Job, now sim.Time) []backfill.Decision {
	return backfill.Plan(q, 8, func(n int) int { return n }, c.timeline, now, true, nil)
}

func render(waits map[string]float64) string {
	domains := make([]string, 0, len(waits))
	for d := range waits {
		domains = append(domains, d)
	}
	sort.Strings(domains)
	var b strings.Builder
	for _, d := range domains {
		fmt.Fprintf(&b, "%s %.2f\n", d, waits[d])
	}
	return b.String()
}

// helperpkg is the impure helper package for the interprocedural R2
// fixture: it lives under a cmd/ path (where wall-clock reads are
// legal), and launders time.Now behind two layers of wrappers. The
// fixture harness type-checks it first and preloads it into the
// r2interproc.go importer.
package helperpkg

import "time"

// Stamp is the laundering entry point: two calls deep, it reaches the
// wall clock.
func Stamp() int64 {
	return now().UnixNano()
}

func now() time.Time {
	return time.Now()
}

// Span is pure time arithmetic — no clock read — so calling it from
// sim-pure code is fine.
func Span(d time.Duration) time.Duration {
	return 2 * d
}

// R1 fixtures: map iteration order leaking into order-sensitive
// operations. Each `// want` comment names the rule that must fire on
// that line; lines without one must stay clean.
package fixture

import (
	"fmt"
	"sort"

	"cosched/internal/sim"
)

func mapRangePrint(counts map[string]int) {
	for name, n := range counts { // want "R1"
		fmt.Printf("%s %d\n", name, n)
	}
}

func mapRangeSchedule(eng *sim.Engine, delays map[int]sim.Duration) {
	for id, d := range delays { // want "R1"
		_ = id
		eng.After(d, sim.PrioritySchedule, func(now sim.Time) {})
	}
}

// Collect, sort, then iterate the slice: the sanctioned shape. The
// collection loop ranges the map but reaches nothing order-sensitive.
func mapRangeSorted(counts map[string]int) {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Println(name, counts[name])
	}
}

// R2 fixtures: wall-clock reads and global-RNG draws in a sim-pure
// package. The harness type-checks this file under a sim-pure import
// path, so the rule is active.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "R2"
}

func globalRNG() int {
	return rand.Intn(10) // want "R2"
}

// An explicitly seeded generator is the sanctioned randomness source,
// and time arithmetic that never reads the clock is pure.
func seeded() (int, time.Time) {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10), time.Unix(0, 0).Add(3 * time.Second)
}

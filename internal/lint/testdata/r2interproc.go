// Interprocedural R2 fixtures: a sim-pure package calling into a cmd/
// helper that wraps time.Now two calls deep. The direct rule cannot see
// through the wrappers; the summary layer can, and names the chain.
package fixture

import "cosched/cmd/helperpkg"

func launderedStamp() int64 {
	return helperpkg.Stamp() // want "transitively reaches the wall clock"
}

// pureHelper calls a helper in the same impure package whose summary is
// clean — only actual clock reach is flagged, not package membership.
func pureHelper() int64 {
	return int64(helperpkg.Span(3))
}

// R3 fixtures: backfill planner calls must pass releases with provable
// canonical ordering (EndBy asc, Nodes asc).
package fixture

import (
	"cosched/internal/backfill"
	"cosched/internal/job"
)

func charge(n int) int { return n }

func unsortedLiteral(q []*job.Job) {
	backfill.Plan(q, 8, charge, []backfill.Release{{Nodes: 1, EndBy: 20}, {Nodes: 2, EndBy: 10}}, 0, true, nil) // want "R3"
}

func opaqueVariable(q []*job.Job, rel []backfill.Release) {
	backfill.Plan(q, 8, charge, rel, 0, true, nil) // want "R3"
}

// Sorting immediately before the call discharges the obligation.
func sortedFirst(q []*job.Job, rel []backfill.Release) {
	backfill.SortReleases(rel)
	backfill.Plan(q, 8, charge, rel, 0, true, nil)
}

// produce stands in for the maintained-timeline accessors: producer
// calls own the sortedness contract.
func produce() []backfill.Release { return nil }

// A literal verified sorted here, a nil list, and a producer call are
// all accepted provenances.
func provenSources(q []*job.Job) {
	backfill.Plan(q, 8, charge, []backfill.Release{{Nodes: 2, EndBy: 10}, {Nodes: 1, EndBy: 20}}, 0, true, nil)
	backfill.PlanConservative(q, 16, 8, charge, nil, 0, nil)
	backfill.Plan(q, 8, charge, produce(), 0, true, nil)
}

// R4 fixtures: the resource manager is single-threaded by contract —
// no goroutine may capture one, and tests outside internal/parallel may
// not opt into t.Parallel.
package fixture

import (
	"testing"

	"cosched/internal/resmgr"
)

func parallelSubtest(t *testing.T) {
	t.Parallel() // want "R4"
}

func goroutineCapture(m *resmgr.Manager) {
	go func() { // want "R4"
		m.RequestIteration()
	}()
}

// A goroutine that never touches a Manager is unconstrained.
func goroutineClean(ch chan int) {
	go func() { ch <- 1 }()
}

// R4 distsweep fixtures: the coordinator/worker split moves sweep
// concurrency across process boundaries. A coordinator goroutine that
// holds only a connection and serialized rows is fine; smuggling a live
// *resmgr.Manager into one is the exact race R4 exists to stop.
package fixture

import (
	"io"
	"sync"

	"cosched/internal/resmgr"
)

// coordinatorShape mirrors distsweep.Coordinator.RunGroups: one goroutine
// per worker connection, each owning a conn and a result slot — no
// Manager in sight, so no finding.
func coordinatorShape(conns []io.ReadWriteCloser, results [][]byte) {
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn io.ReadWriteCloser) {
			defer wg.Done()
			defer conn.Close()
			buf := make([]byte, 256)
			n, _ := conn.Read(buf)
			results[i] = buf[:n]
		}(i, conn)
	}
	wg.Wait()
}

// managerOverTheWire hands a live Manager to a per-connection goroutine —
// the split's whole point is that only serialized rows cross between
// goroutines, so this races the scheduler state.
func managerOverTheWire(conns []io.ReadWriteCloser, m *resmgr.Manager) {
	for _, conn := range conns {
		go func(conn io.ReadWriteCloser) { // want "R4"
			m.RequestIteration()
			conn.Close()
		}(conn)
	}
}

// Interprocedural R4 fixtures: a Manager escaping into a goroutine
// wrapped in a struct, through a method value, or via a helper whose
// summary captures one — not just as a directly referenced ident.
package fixture

import "cosched/internal/resmgr"

type cell struct {
	mgr  *resmgr.Manager
	rows []string
}

// structArgEscape hands the goroutine a struct that *contains* the
// Manager: same race, one indirection.
func structArgEscape(c cell) {
	go consume(c) // want "R4"
}

func consume(cell) {}

// fieldCapture reaches the Manager through a captured struct pointer.
func fieldCapture(c *cell) {
	go func() { // want "R4"
		c.mgr.RequestIteration()
	}()
}

// helperEscape launches a closure variable whose body captures the
// Manager — the direct ident scan sees only `tick`, the summary sees m.
func helperEscape(m *resmgr.Manager) {
	tick := func() { m.RequestIteration() }
	go tick() // want "R4"
}

// rowsOnly escapes only the serialized rows — the distsweep contract —
// so no finding.
func rowsOnly(c *cell, out chan<- []string) {
	rows := c.rows
	go func() { out <- rows }()
}

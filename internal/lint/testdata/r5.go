// R5 fixtures: floating-point equality over computed values.
package fixture

func floatEq(mean, want float64) bool {
	return mean == want // want "R5"
}

func floatNeq(a, b float64) bool {
	return a != b // want "R5"
}

// The NaN self-probe and integer equality are exempt.
func exemptComparisons(x float64, n, m int) bool {
	return x != x || n == m
}

// R6 fixtures: allocation builtins inside //simlint:hotpath functions.
package fixture

type ring struct {
	buf []int
}

// push is on the per-event spine.
//
//simlint:hotpath
func (r *ring) push(x int) {
	r.buf = append(r.buf, x) // want "R6"
}

//simlint:hotpath
func scratch(n int) []byte {
	return make([]byte, n) // want "R6"
}

// Closures inside a hot function are still inside it: the allocation
// happens per call of the enclosing spine.
//
//simlint:hotpath
func hotClosure(xs []int) func() {
	return func() {
		xs = append(xs, len(xs)) // want "R6"
	}
}

// Unmarked functions may allocate freely, and a shadowing local named
// append is not the builtin.
func cold(n int) []int {
	s := make([]int, 0, n)
	return append(s, n)
}

//simlint:hotpath
func shadowed(n int) int {
	append := func(x int) int { return x + 1 }
	return append(n)
}

// R7 fixtures: durability-critical calls — journal mutations, frame
// writes, and (inside the journal's own package scope, which the fixture
// path shares) raw fsync/rename/close — must not have their errors
// discarded. The crash-safe ordering of PR 5 is only a proof if every
// step's failure stops the sequence.
package fixture

import (
	"io"
	"os"

	"cosched/internal/journal"
	"cosched/internal/proto"
)

func discardAppend(s *journal.Store, e *journal.Entry) {
	_ = s.Append(e) // want "R7"
}

func discardFrame(w io.Writer, v any) {
	_ = proto.WriteFrame(w, v) // want "R7"
}

func bareSync(f *os.File) {
	f.Sync() // want "R7"
}

func deferredClose(s *journal.Store) {
	defer s.Close() // want "R7"
}

func renameDropped() {
	_ = os.Rename("wal.tmp", "wal") // want "R7"
}

func truncateDropped(f *os.File) {
	f.Truncate(0) // want "R7"
}

// The VFS seam: journal.FS / journal.File is where fault injection lands,
// so a dropped error here hides exactly the faults a campaign injects.
func vfsSyncDropped(f journal.File) {
	_ = f.Sync() // want "R7"
}

func vfsTruncateDeferred(f journal.File) {
	defer f.Truncate(0) // want "R7"
}

func vfsRenameDropped(fs journal.FS) {
	_ = fs.Rename("wal.tmp", "wal") // want "R7"
}

func vfsSyncDirBare(fs journal.FS) {
	fs.SyncDir("journal") // want "R7"
}

// vfsOpenChecked: FS setup calls (OpenFile et al) are not on the ordering
// path; only the blank error on a durable method is flagged.
func vfsOpenChecked(fs journal.FS) (journal.File, error) {
	return fs.OpenFile("wal", os.O_RDWR, 0o644)
}

// vfsLaundered wraps a VFS fsync in a helper: the helper's summary is
// durable, so discarding its error is the same bug one frame up.
func vfsLaundered(f journal.File) {
	flush := func() error { return f.Sync() }
	_ = flush() // want "R7"
}

// launderedWrite wraps the frame write in a closure: the closure's
// summary is durable, so discarding *its* error is the same bug.
func launderedWrite(w io.Writer, v any) {
	send := func() error { return proto.WriteFrame(w, v) }
	_ = send() // want "R7"
}

// propagated is the sanctioned shape: every durability error reaches the
// caller.
func propagated(s *journal.Store, e *journal.Entry, f *os.File, w io.Writer, v any) error {
	if err := s.Append(e); err != nil {
		return err
	}
	if err := proto.WriteFrame(w, v); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

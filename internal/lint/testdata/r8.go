// R8 fixtures: no mutex held across a blocking call — the
// heartbeat-stall shape. A blocked frame write under the link mutex
// parks every goroutine contending for it, including the heartbeat that
// would have detected the dead peer.
package fixture

import (
	"net"
	"sync"

	"cosched/internal/proto"
)

type wire struct {
	mu   sync.Mutex
	seq  int
	conn net.Conn
}

// heldAcrossWrite holds the mutex (via defer-Unlock, so to function end)
// across a frame write that can park on a full TCP window.
func heldAcrossWrite(w *wire, v any) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return proto.WriteFrame(w.conn, v) // want "R8"
}

// heldAcrossChannel blocks on a channel send while holding the lock.
func heldAcrossChannel(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want "R8"
	mu.Unlock()
}

// heldAcrossHelper blocks through a callee: the helper's summary says it
// may block on the conn, so calling it under the lock is the same stall.
func heldAcrossHelper(w *wire, buf []byte) {
	w.mu.Lock()
	pushRaw(w.conn, buf) // want "R8"
	w.mu.Unlock()
}

func pushRaw(conn net.Conn, buf []byte) {
	if _, err := conn.Write(buf); err != nil {
		return
	}
}

// snapshotThenSend is the sanctioned shape: copy state under the lock,
// release, then touch the network.
func snapshotThenSend(w *wire, v any) error {
	w.mu.Lock()
	seq := w.seq
	w.seq = seq + 1
	w.mu.Unlock()
	return proto.WriteFrame(w.conn, v)
}

// R9 fixtures: every network read in a protocol package must be
// preceded, in the same function, by arming a read deadline on the conn
// — directly or through a helper whose summary sets one. An undeadlined
// read on a silent peer parks its goroutine forever.
package fixture

import (
	"net"
	"time"

	"cosched/internal/proto"
)

func readNoDeadline(conn net.Conn) error {
	var v int
	return proto.ReadFrame(conn, &v) // want "R9"
}

func rawReadNoDeadline(conn net.Conn, buf []byte) (int, error) {
	return conn.Read(buf) // want "R9"
}

// readWithDeadline arms the deadline on the same conn first — the
// sanctioned direct shape. (The deadline value is a parameter: the
// fixture package is sim-pure, so it may not call time.Now itself.)
func readWithDeadline(conn net.Conn, at time.Time) error {
	if err := conn.SetReadDeadline(at); err != nil {
		return err
	}
	var v int
	return proto.ReadFrame(conn, &v)
}

// readViaHelper arms the deadline through a closure — the coordinator's
// readDeadline shape. The closure's summary carries SetsDeadline, so the
// later read is satisfied.
func readViaHelper(conn net.Conn, at time.Time) error {
	arm := func() error { return conn.SetReadDeadline(at) }
	if err := arm(); err != nil {
		return err
	}
	var v int
	return proto.ReadFrame(conn, &v)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// typecheck parses and type-checks one lint target from source. Imports
// are satisfied from the compiler export data recorded in the package
// table, so only the target itself is parsed. A fresh importer is built
// per target because test variants can map the same nominal import path to
// different export data.
func typecheck(fset *token.FileSet, target *Package, table map[string]*Package) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, path := range target.Files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("lint: parse %s: %v", path, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		key := path
		if mapped, ok := target.ImportMap[path]; ok {
			key = mapped
		}
		dep, ok := table[key]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q (from %s)", path, target.ImportPath)
		}
		return os.Open(dep.Export)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		// Example files compile against the package's documented API;
		// FakeImportC is irrelevant here but harmless.
		FakeImportC: true,
	}
	pkg, err := conf.Check(target.Path, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: typecheck %s: %v", target.ImportPath, err)
	}
	return files, pkg, info, nil
}

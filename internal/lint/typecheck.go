package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// preloadImporter satisfies imports from already source-checked packages
// before falling back to compiler export data — fixture harnesses use it
// to let one synthetic package import another.
type preloadImporter struct {
	extra map[string]*types.Package
	base  types.Importer
}

func (p preloadImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := p.extra[path]; ok {
		return pkg, nil
	}
	return p.base.Import(path)
}

// typecheck parses and type-checks one lint target from source. Imports
// are satisfied from the compiler export data recorded in the package
// table (or the extra preloaded packages), so only the target itself is
// parsed. A fresh importer is built per target because test variants can
// map the same nominal import path to different export data.
func typecheck(fset *token.FileSet, target *Package, table map[string]*Package, extra map[string]*types.Package) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, path := range target.Files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("lint: parse %s: %v", path, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		key := path
		if mapped, ok := target.ImportMap[path]; ok {
			key = mapped
		}
		dep, ok := table[key]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q (from %s)", path, target.ImportPath)
		}
		return os.Open(dep.Export)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var imp types.Importer = importer.ForCompiler(fset, "gc", lookup)
	if len(extra) > 0 {
		imp = preloadImporter{extra: extra, base: imp}
	}
	conf := types.Config{
		Importer: imp,
		// Example files compile against the package's documented API;
		// FakeImportC is irrelevant here but harmless.
		FakeImportC: true,
	}
	pkg, err := conf.Check(target.Path, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: typecheck %s: %v", target.ImportPath, err)
	}
	return files, pkg, info, nil
}

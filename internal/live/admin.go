package live

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"cosched/internal/job"
	"cosched/internal/proto"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// Admin ops.
const (
	OpSubmit = "submit"
	OpExpect = "expect"
	OpStatus = "status"
	OpCancel = "cancel"
	OpInfo   = "info"
)

// AdminRequest is one admin call to a live daemon, framed with the same
// codec as the peer protocol.
type AdminRequest struct {
	Seq   uint64   `json:"seq"`
	Op    string   `json:"op"`
	Job   *WireJob `json:"job,omitempty"`
	JobID job.ID   `json:"job_id,omitempty"`
}

// WireJob carries a submission over the admin interface.
type WireJob struct {
	ID       job.ID        `json:"id"`
	Name     string        `json:"name,omitempty"`
	Nodes    int           `json:"nodes"`
	Runtime  sim.Duration  `json:"runtime_seconds"`
	Walltime sim.Duration  `json:"walltime_seconds"`
	Mates    []job.MateRef `json:"mates,omitempty"`
}

// AdminResponse answers an AdminRequest.
type AdminResponse struct {
	Seq   uint64 `json:"seq"`
	Error string `json:"error,omitempty"`

	// status / submit
	State     string   `json:"state,omitempty"`
	StartTime sim.Time `json:"start_time,omitempty"`
	Started   bool     `json:"started,omitempty"`

	// info
	Domain     string   `json:"domain,omitempty"`
	Nodes      int      `json:"nodes,omitempty"`
	Free       int      `json:"free,omitempty"`
	VirtualNow sim.Time `json:"virtual_now,omitempty"`
}

// AdminServer exposes submission and status queries for a live daemon.
type AdminServer struct {
	mgr    *resmgr.Manager
	driver *Driver
	logger *log.Logger

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewAdminServer wraps a manager and its driver.
func NewAdminServer(mgr *resmgr.Manager, driver *Driver, logger *log.Logger) *AdminServer {
	return &AdminServer{mgr: mgr, driver: driver, logger: logger, conns: make(map[net.Conn]struct{})}
}

// Listen starts accepting admin connections.
func (s *AdminServer) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr(), nil
}

func (s *AdminServer) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req AdminRequest
		if err := proto.ReadFrame(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && s.logger != nil {
				s.logger.Printf("admin: read: %v", err)
			}
			return
		}
		resp := s.dispatch(req)
		if err := proto.WriteFrame(conn, &resp); err != nil {
			return
		}
	}
}

func (s *AdminServer) dispatch(req AdminRequest) AdminResponse {
	resp := AdminResponse{Seq: req.Seq}
	switch req.Op {
	case OpInfo:
		s.driver.Do(func() {
			resp.Domain = s.mgr.Name()
			resp.Nodes = s.mgr.Pool().Total()
			resp.Free = s.mgr.Pool().Free()
			resp.VirtualNow = s.driver.virtualNowLocked()
		})
	case OpExpect:
		// Pre-register a job that a co-submission tool will submit here
		// shortly; until then peers asking about it see "unsubmitted"
		// rather than "unknown", so their halves of the pair wait instead
		// of falling back to an uncoordinated start.
		if req.Job == nil {
			resp.Error = "expect: missing job"
			break
		}
		w := req.Job
		s.driver.Do(func() {
			if _, ok := s.mgr.Job(w.ID); ok {
				resp.State = job.Unsubmitted.String()
				return // already known; idempotent
			}
			j := wireToJob(w)
			if err := s.mgr.Expect(j); err != nil {
				resp.Error = err.Error()
				return
			}
			resp.State = job.Unsubmitted.String()
		})
	case OpSubmit:
		if req.Job == nil {
			resp.Error = "submit: missing job"
			break
		}
		w := req.Job
		s.driver.Do(func() {
			j, known := s.mgr.Job(w.ID)
			if known {
				if j.State != job.Unsubmitted {
					resp.Error = fmt.Sprintf("job %d already %s", w.ID, j.State)
					return
				}
			} else {
				j = wireToJob(w)
				if err := s.mgr.Expect(j); err != nil {
					resp.Error = err.Error()
					return
				}
			}
			// Land the submission at the wall-clock's virtual instant so
			// wait-time accounting is correct even while the engine idles.
			at := s.driver.virtualNowLocked()
			if now := s.mgr.Engine().Now(); at < now {
				at = now
			}
			j.SubmitTime = at
			if _, err := s.mgr.Engine().At(at, sim.PrioritySubmit, func(sim.Time) {
				if err := s.mgr.Submit(j); err != nil && s.logger != nil {
					s.logger.Printf("admin: submit job %d: %v", j.ID, err)
				}
			}); err != nil {
				resp.Error = err.Error()
				return
			}
			resp.State = job.Unsubmitted.String()
		})
	case OpCancel:
		s.driver.Do(func() {
			if err := s.mgr.Cancel(req.JobID); err != nil {
				resp.Error = err.Error()
				return
			}
			resp.State = job.Cancelled.String()
		})
	case OpStatus:
		s.driver.Do(func() {
			j, ok := s.mgr.Job(req.JobID)
			if !ok {
				resp.Error = fmt.Sprintf("unknown job %d", req.JobID)
				return
			}
			resp.State = j.State.String()
			resp.StartTime = j.StartTime
			resp.Started = j.State == job.Running || j.State == job.Completed
		})
	default:
		resp.Error = fmt.Sprintf("unknown op %q", req.Op)
	}
	return resp
}

// Close shuts the listener and connections down.
func (s *AdminServer) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// AdminClient is the dial side of the admin interface.
type AdminClient struct {
	mu   sync.Mutex
	conn net.Conn
	seq  uint64
}

// DialAdmin connects to a daemon's admin port.
func DialAdmin(addr string, timeout time.Duration) (*AdminClient, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &AdminClient{conn: conn}, nil
}

// Close closes the connection.
func (c *AdminClient) Close() error { return c.conn.Close() }

func (c *AdminClient) call(req AdminRequest) (AdminResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req.Seq = c.seq
	if err := proto.WriteFrame(c.conn, &req); err != nil {
		return AdminResponse{}, err
	}
	var resp AdminResponse
	if err := proto.ReadFrame(c.conn, &resp); err != nil {
		return AdminResponse{}, err
	}
	if resp.Error != "" {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// wireToJob converts an admin submission to a job record.
func wireToJob(w *WireJob) *job.Job {
	j := job.New(w.ID, w.Nodes, 0, w.Runtime, w.Walltime)
	j.Name = w.Name
	j.Mates = append([]job.MateRef(nil), w.Mates...)
	return j
}

// Info fetches daemon state.
func (c *AdminClient) Info() (AdminResponse, error) {
	return c.call(AdminRequest{Op: OpInfo})
}

// Submit sends a job.
func (c *AdminClient) Submit(w WireJob) error {
	_, err := c.call(AdminRequest{Op: OpSubmit, Job: &w})
	return err
}

// Expect pre-registers a job to be submitted shortly (co-submission
// protocol: declare every member of a group everywhere before submitting
// any of them).
func (c *AdminClient) Expect(w WireJob) error {
	_, err := c.call(AdminRequest{Op: OpExpect, Job: &w})
	return err
}

// Status queries one job.
func (c *AdminClient) Status(id job.ID) (AdminResponse, error) {
	return c.call(AdminRequest{Op: OpStatus, JobID: id})
}

// Cancel withdraws a job.
func (c *AdminClient) Cancel(id job.ID) error {
	_, err := c.call(AdminRequest{Op: OpCancel, JobID: id})
	return err
}

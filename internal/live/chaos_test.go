package live

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/obs"
	"cosched/internal/peerlink"
	"cosched/internal/proto"
)

// TestLiveChaosCoStartOverTCP runs two real daemons whose peer links cross
// a fault injector (latency + connection drops) and survive a peer-server
// restart, then co-schedules a pair. The resilient links must absorb every
// transport event: the pair still co-starts within the live tolerance (the
// two daemons derive virtual time from the wall independently), the links
// end healthy, and the status endpoint reports the chaos it weathered.
func TestLiveChaosCoStartOverTCP(t *testing.T) {
	a := startTestDomain(t, "a", 64, cosched.Hold, 2000)
	b := startTestDomain(t, "b", 8, cosched.Yield, 2000)

	la := peerlink.New(peerlink.Config{
		Name: "b", Addr: b.peerAddr,
		DialTimeout: time.Second, CallTimeout: 2 * time.Second,
		BackoffBase: time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Cooldown: 50 * time.Millisecond, Seed: 1,
	})
	defer la.Close()
	lb := peerlink.New(peerlink.Config{
		Name: "a", Addr: a.peerAddr,
		DialTimeout: time.Second, CallTimeout: 2 * time.Second,
		BackoffBase: time.Millisecond, BackoffMax: 50 * time.Millisecond,
		Cooldown: 50 * time.Millisecond, Seed: 2,
	})
	defer lb.Close()
	ia := proto.NewFaultInjector(la, 0, 11).
		WithLatency(0.2, time.Millisecond).WithDrops(0.2, la.BreakConn)
	ib := proto.NewFaultInjector(lb, 0, 12).
		WithLatency(0.2, time.Millisecond).WithDrops(0.2, lb.BreakConn)
	a.driver.Do(func() { a.mgr.AddPeer("b", ia) })
	b.driver.Do(func() { b.mgr.AddPeer("a", ib) })

	ss := NewStatusServer(a.mgr, a.driver, nil)
	ss.WatchPeers(la)
	ssAddr, err := ss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.driver.Run(ctx)
	go b.driver.Run(ctx)

	// Connect, then restart b's peer server on the same address. The link's
	// established connection dies with the old server; the machinery must
	// heal it (retry on a fresh dial) without any intervention.
	if err := la.Probe(); err != nil {
		t.Fatal(err)
	}
	b.peer.Close()
	nb := proto.NewServer(b.mgr, b.driver, nil)
	if _, err := nb.Listen(b.peerAddr); err != nil {
		t.Fatalf("rebind %s: %v", b.peerAddr, err)
	}
	defer nb.Close()

	// Chaos traffic through the injectors — the same path the schedulers
	// use. Idempotent queries must all succeed: drops and the restart are
	// transport events the link absorbs.
	for i := 0; i < 60; i++ {
		if _, err := ia.GetMateStatus(job.ID(1000 + i)); err != nil {
			t.Fatalf("call %d through chaos: %v", i, err)
		}
		if _, err := ib.GetMateStatus(job.ID(1000 + i)); err != nil {
			t.Fatalf("call %d through chaos: %v", i, err)
		}
	}
	if ia.Delayed()+ib.Delayed() == 0 || ia.Dropped()+ib.Dropped() == 0 {
		t.Fatalf("chaos did not fire: delayed %d+%d, dropped %d+%d",
			ia.Delayed(), ib.Delayed(), ia.Dropped(), ib.Dropped())
	}
	if snap := la.Snapshot(); snap.Dials < 2 {
		t.Fatalf("link a->b never redialed through the chaos: %+v", snap)
	}

	// Now the actual coscheduling, still through the injectors.
	ca, err := DialAdmin(a.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := DialAdmin(b.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	wa := WireJob{ID: 1, Nodes: 16, Runtime: 600, Walltime: 600,
		Mates: []job.MateRef{{Domain: "b", Job: 1}}}
	wb := WireJob{ID: 1, Nodes: 4, Runtime: 600, Walltime: 600,
		Mates: []job.MateRef{{Domain: "a", Job: 1}}}
	if err := cb.Expect(wb); err != nil {
		t.Fatal(err)
	}
	if err := ca.Submit(wa); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // ≈10 virtual minutes of holding
	if err := cb.Submit(wb); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		sa, err1 := ca.Status(1)
		sb, err2 := cb.Status(1)
		if err1 == nil && err2 == nil && sa.Started && sb.Started {
			diff := sa.StartTime - sb.StartTime
			if diff < 0 {
				diff = -diff
			}
			if diff > 30 {
				t.Fatalf("start times differ by %d virtual seconds under chaos: %d vs %d",
					diff, sa.StartTime, sb.StartTime)
			}
			if sa.StartTime < 60 {
				t.Fatalf("a started at %d, should have held for its mate", sa.StartTime)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pair never co-started under chaos")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Both links weathered the chaos and ended healthy.
	for _, l := range []*peerlink.Link{la, lb} {
		snap := l.Snapshot()
		if snap.State != "closed" {
			t.Fatalf("link %s ended %s: %+v", snap.Name, snap.State, snap)
		}
	}

	// The status endpoint exports the link's health counters.
	resp, err := http.Get("http://" + ssAddr.String() + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Peers) != 1 || snap.Peers[0].Name != "b" {
		t.Fatalf("status peers = %+v", snap.Peers)
	}
	if snap.Peers[0].Calls == 0 || snap.Peers[0].Dials == 0 {
		t.Fatalf("peer counters empty in status: %+v", snap.Peers[0])
	}

	// /metrics must export the same link counters the Snapshot API
	// reports. The drivers are still running, so counters may advance
	// between reads; a scrape → snapshot → scrape sandwich pins each
	// exported counter between two authoritative Snapshot values without
	// racing the scheduler.
	scrape := func() *obs.Scrape {
		t.Helper()
		resp, err := http.Get("http://" + ssAddr.String() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		s, err := obs.Parse(body)
		if err != nil {
			t.Fatalf("metrics exposition does not parse after chaos: %v\n%s", err, body)
		}
		return s
	}
	before := la.Snapshot()
	mid := scrape()
	after := la.Snapshot()
	for _, c := range []struct {
		metric string
		lo, hi int
	}{
		{"cosched_peer_calls_total", before.Calls, after.Calls},
		{"cosched_peer_successes_total", before.Successes, after.Successes},
		{"cosched_peer_dials_total", before.Dials, after.Dials},
		{"cosched_peer_transport_errors_total", before.TransportErrors, after.TransportErrors},
		{"cosched_peer_retries_total", before.Retries, after.Retries},
		{"cosched_peer_breaker_trips_total", before.Trips, after.Trips},
	} {
		v, ok := mid.Value(c.metric, "domain", "a", "peer", "b")
		if !ok {
			t.Fatalf("%s missing from /metrics after chaos", c.metric)
		}
		if v < float64(c.lo) || v > float64(c.hi) {
			t.Fatalf("%s = %g outside Snapshot sandwich [%d, %d]", c.metric, v, c.lo, c.hi)
		}
	}
	if v, _ := mid.Value("cosched_peer_calls_total", "domain", "a", "peer", "b"); v == 0 {
		t.Fatal("peer call counter still zero after a chaos run")
	}
}

// TestLiveBreakerFailsFastWithPeerDown: with its peer daemon dead and the
// breaker open, a domain's coordination queries fail in microseconds — the
// scheduler absorbs "status unknown" instead of stalling a full dial
// timeout per iteration.
func TestLiveBreakerFailsFastWithPeerDown(t *testing.T) {
	b := startTestDomain(t, "b", 8, cosched.Yield, 2000)
	addr := b.peerAddr
	b.peer.Close() // peer daemon is gone

	l := peerlink.New(peerlink.Config{
		Name: "b", Addr: addr,
		DialTimeout: 500 * time.Millisecond, CallTimeout: time.Second,
		FailThreshold: 2, Cooldown: 10 * time.Second,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
	})
	defer l.Close()
	deadline := time.Now().Add(5 * time.Second)
	for l.State() != peerlink.Open {
		l.GetMateStatus(1)
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; snapshot %+v", l.Snapshot())
		}
		time.Sleep(2 * time.Millisecond)
	}
	const n = 200
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := l.GetMateStatus(1); err == nil {
			t.Fatal("call against dead peer succeeded")
		}
	}
	if avg := time.Since(start) / n; avg > time.Millisecond {
		t.Fatalf("open-breaker call averaged %v, want <1ms", avg)
	}
}

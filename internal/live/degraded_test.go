package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"cosched/internal/cosched"
	"cosched/internal/faultplan"
	"cosched/internal/journal"
	"cosched/internal/obs"
)

// TestDegradedModeMetricsExported drives a journal store into poisoning
// through an injected fsync fault and checks the whole degradation surface:
// the degraded gauge flips 0→1, the fsync-failure and campaign-fault
// counters land on /metrics with exact values (pinned by a scrape →
// authoritative-read → scrape sandwich where the source can move), the
// status JSON carries the degraded reason, and the HTML page shows the
// banner.
func TestDegradedModeMetricsExported(t *testing.T) {
	a := startTestDomain(t, "a", 16, cosched.Hold, 2000)

	plan := &faultplan.Plan{Seed: 9, Faults: []faultplan.Fault{
		{Seam: faultplan.SeamJournal, Kind: faultplan.KindFsyncEIO, At: 2},
	}}
	ffs := faultplan.NewFaultFS(plan, nil)
	store, err := journal.Open(t.TempDir(), journal.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	ss := NewStatusServer(a.mgr, a.driver, nil)
	ss.WatchJournal(store.Stats)
	campaignFaults := obs.CampaignFaults(ss.Metrics(), "journal")
	addr, err := ss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	scrape := func() *obs.Scrape {
		t.Helper()
		resp, err := http.Get("http://" + addr.String() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		s, err := obs.Parse(body)
		if err != nil {
			t.Fatalf("metrics exposition does not parse: %v\n%s", err, body)
		}
		return s
	}

	// Healthy scrape: degraded gauge present and 0, no fsync failures yet.
	s0 := scrape()
	if v, ok := s0.Value(obs.MetricJournalDegraded, "domain", "a"); !ok || v != 0 {
		t.Fatalf("%s = %g,%v before any fault, want 0", obs.MetricJournalDegraded, v, ok)
	}
	if v, ok := s0.Value(obs.MetricFsyncFailures, "domain", "a"); !ok || v != 0 {
		t.Fatalf("%s = %g,%v before any fault, want 0", obs.MetricFsyncFailures, v, ok)
	}
	if v, ok := s0.Value(obs.MetricCampaignFaults, "seam", "journal"); !ok || v != 0 {
		t.Fatalf("%s = %g,%v before any fault, want 0", obs.MetricCampaignFaults, v, ok)
	}

	// Inject: append until the scheduled fsync EIO fires and poisons the
	// store, then degrade exactly as the daemon's controller does.
	for i := 0; i < 8 && store.Poisoned() == nil; i++ {
		store.Append(&journal.Entry{Op: journal.OpHold, Job: 1}) //nolint — failure is the point
	}
	if store.Poisoned() == nil {
		t.Fatal("store not poisoned by the scheduled fsync fault")
	}
	campaignFaults.Add(float64(len(ffs.Fired())))
	a.driver.Do(func() { a.mgr.SetHoldBudget(0) })
	ss.SetDegraded("journal abandoned after storage fault: injected fsync EIO")

	// Sandwich: the store keeps its own counters, so pin every exported
	// series between two authoritative Stats() reads around the scrape.
	before := store.Stats()
	mid := scrape()
	after := store.Stats()
	for _, c := range []struct {
		metric string
		lo, hi uint64
	}{
		{"cosched_journal_appends_total", before.Appends, after.Appends},
		{"cosched_journal_fsyncs_total", before.Fsyncs, after.Fsyncs},
		{obs.MetricFsyncFailures, before.FsyncFailures, after.FsyncFailures},
	} {
		v, ok := mid.Value(c.metric, "domain", "a")
		if !ok {
			t.Fatalf("%s missing from /metrics after degradation", c.metric)
		}
		if v < float64(c.lo) || v > float64(c.hi) {
			t.Fatalf("%s = %g outside Stats sandwich [%d, %d]", c.metric, v, c.lo, c.hi)
		}
	}
	if v, _ := mid.Value(obs.MetricFsyncFailures, "domain", "a"); v != 1 {
		t.Fatalf("%s = %g after one injected fsync fault, want 1", obs.MetricFsyncFailures, v)
	}
	if v, _ := mid.Value(obs.MetricJournalDegraded, "domain", "a"); v != 1 {
		t.Fatalf("%s = %g after degradation, want 1", obs.MetricJournalDegraded, v)
	}
	if v, _ := mid.Value("cosched_journal_poisoned", "domain", "a"); v != 1 {
		t.Fatalf("cosched_journal_poisoned = %g after poisoning, want 1", v)
	}
	if v, ok := mid.Value(obs.MetricCampaignFaults, "seam", "journal"); !ok || v != float64(len(ffs.Fired())) {
		t.Fatalf("%s{seam=journal} = %g,%v, want %d", obs.MetricCampaignFaults, v, ok, len(ffs.Fired()))
	}
	if v, ok := mid.Value(obs.MetricHoldsRefused, "domain", "a"); !ok || v != 0 {
		t.Fatalf("%s = %g,%v with no refused holds yet, want 0", obs.MetricHoldsRefused, v, ok)
	}

	// The JSON snapshot and the HTML page surface the same degradation.
	resp, err := http.Get("http://" + addr.String() + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatusSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snap.Degraded, "storage fault") {
		t.Fatalf("status.json degraded = %q, want the degradation reason", snap.Degraded)
	}
	page, err := http.Get("http://" + addr.String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	html, err := io.ReadAll(page.Body)
	page.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(html), "DEGRADED") {
		t.Fatal("status page does not show the DEGRADED banner")
	}
}

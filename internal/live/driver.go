// Package live runs a simulation engine against the wall clock, turning
// the trace-driven resource manager into a long-running daemon: the same
// Manager code that powers the simulator serves real submissions and real
// peer traffic in cmd/coschedd.
//
// Virtual time advances at a configurable speedup (1.0 = real time;
// 60.0 = one virtual minute per wall second, handy for demos), and all
// engine/manager access from other goroutines (the proto server, the admin
// interface) is serialized through the driver's lock.
package live

import (
	"context"
	"sync"
	"time"

	"cosched/internal/sim"
)

// Driver paces a sim.Engine against the wall clock.
type Driver struct {
	mu      sync.Mutex
	eng     *sim.Engine
	speedup float64
	start   time.Time // wall instant Run began pacing
	base    sim.Time  // virtual instant at start — nonzero after a recovery
	wake    chan struct{}
}

// NewDriver wraps eng. speedup is virtual seconds per wall second and must
// be positive.
func NewDriver(eng *sim.Engine, speedup float64) *Driver {
	if speedup <= 0 {
		panic("live: speedup must be positive")
	}
	return &Driver{
		eng:     eng,
		speedup: speedup,
		wake:    make(chan struct{}, 1),
	}
}

// Lock acquires the driver's lock and catches the engine up to the current
// virtual instant (firing any due events), so externally triggered actions
// — peer RPCs, admin submissions — observe and record the right virtual
// time. Use it (or Do) around every touch of the engine or the manager
// from outside the run loop.
func (d *Driver) Lock() {
	d.mu.Lock()
	d.syncClockLocked()
}

// syncClockLocked advances the engine to the wall-implied virtual time.
func (d *Driver) syncClockLocked() {
	if d.start.IsZero() {
		return // Run not started; engine time is authoritative
	}
	if v := d.virtualNowLocked(); v > d.eng.Now() {
		d.eng.RunUntil(v)
	}
}

// Unlock releases the driver's lock and nudges the run loop so newly
// scheduled events are noticed immediately.
func (d *Driver) Unlock() {
	d.mu.Unlock()
	d.nudge()
}

// Do runs f under the driver's lock (with the clock synced) and wakes the
// run loop.
func (d *Driver) Do(f func()) {
	d.Lock()
	f()
	d.mu.Unlock()
	d.nudge()
}

func (d *Driver) nudge() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// VirtualNow returns the current virtual time implied by the wall clock
// (not necessarily the engine clock, which only moves when events fire).
// Valid once Run has started.
func (d *Driver) VirtualNow() sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.virtualNowLocked()
}

func (d *Driver) virtualNowLocked() sim.Time {
	if d.start.IsZero() {
		return d.eng.Now()
	}
	// Pacing resumes from wherever the engine stood when Run began — after
	// a crash recovery that is the replayed journal time, not zero.
	return d.base + sim.Time(time.Since(d.start).Seconds()*d.speedup)
}

// Run paces the engine until ctx is canceled. Events fire when the scaled
// wall clock reaches their virtual time; the loop sleeps in between and is
// woken early by Do/Unlock.
func (d *Driver) Run(ctx context.Context) {
	d.mu.Lock()
	if d.start.IsZero() {
		d.start = time.Now()
		d.base = d.eng.Now()
	}
	d.mu.Unlock()
	for {
		d.mu.Lock()
		vnow := d.virtualNowLocked()
		var sleep time.Duration
		for {
			next, ok := d.eng.NextTime()
			if !ok {
				sleep = 100 * time.Millisecond // idle poll; wake channel shortcuts this
				break
			}
			if next <= vnow {
				d.eng.Step()
				continue
			}
			sleep = time.Duration(float64(next-vnow) / d.speedup * float64(time.Second))
			if sleep > time.Second {
				sleep = time.Second // re-check periodically for clock drift
			}
			break
		}
		d.mu.Unlock()
		select {
		case <-ctx.Done():
			return
		case <-d.wake:
		case <-time.After(sleep):
		}
	}
}

package live

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"cosched/internal/cluster"
	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/obs"
	"cosched/internal/proto"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// testDomain spins up one live manager with peer+admin servers on loopback.
type testDomain struct {
	mgr    *resmgr.Manager
	driver *Driver
	peer   *proto.Server
	admin  *AdminServer

	peerAddr, adminAddr string
}

func startTestDomain(t *testing.T, name string, nodes int, scheme cosched.Scheme, speedup float64) *testDomain {
	t.Helper()
	eng := sim.NewEngine()
	mgr := resmgr.New(eng, resmgr.Options{
		Name:        name,
		Pool:        cluster.New(name, nodes),
		Backfilling: true,
		Cosched:     cosched.DefaultConfig(scheme),
	})
	d := NewDriver(eng, speedup)
	ps := proto.NewServer(mgr, d, nil)
	pa, err := ps.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	as := NewAdminServer(mgr, d, nil)
	aa, err := as.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ps.Close()
		as.Close()
	})
	return &testDomain{mgr: mgr, driver: d, peer: ps, admin: as,
		peerAddr: pa.String(), adminAddr: aa.String()}
}

func TestDriverPacesEvents(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDriver(eng, 1000) // 1000 virtual seconds per wall second
	fired := make(chan sim.Time, 1)
	d.Do(func() {
		eng.After(100, sim.PriorityDefault, func(now sim.Time) { fired <- now })
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx)
	select {
	case now := <-fired:
		if now != 100 {
			t.Fatalf("event fired at %d, want 100", now)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("event did not fire within 2s wall (should take ~0.1s)")
	}
}

func TestDriverClockSyncOnLock(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDriver(eng, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go d.Run(ctx)
	time.Sleep(200 * time.Millisecond) // ≈200 virtual seconds
	var now sim.Time
	d.Do(func() { now = eng.Now() })
	if now < 100 {
		t.Fatalf("engine clock %d did not catch up to the wall (~200)", now)
	}
}

func TestDriverRejectsBadSpeedup(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero speedup accepted")
		}
	}()
	NewDriver(sim.NewEngine(), 0)
}

func TestAdminSubmitAndStatus(t *testing.T) {
	dom := startTestDomain(t, "solo", 64, cosched.Hold, 500)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go dom.driver.Run(ctx)

	c, err := DialAdmin(dom.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info, err := c.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Domain != "solo" || info.Nodes != 64 || info.Free != 64 {
		t.Fatalf("info = %+v", info)
	}

	if err := c.Submit(WireJob{ID: 1, Nodes: 16, Runtime: 60, Walltime: 120}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		st, err := c.Status(1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := c.Status(99); err == nil {
		t.Fatal("status of unknown job succeeded")
	}
	// Resubmitting a started job must fail.
	if err := c.Submit(WireJob{ID: 1, Nodes: 16, Runtime: 60, Walltime: 120}); err == nil {
		t.Fatal("duplicate submit accepted")
	}
}

func TestAdminExpectIdempotent(t *testing.T) {
	dom := startTestDomain(t, "exp", 64, cosched.Hold, 500)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go dom.driver.Run(ctx)
	c, err := DialAdmin(dom.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := WireJob{ID: 5, Nodes: 4, Runtime: 60, Walltime: 60}
	if err := c.Expect(w); err != nil {
		t.Fatal(err)
	}
	if err := c.Expect(w); err != nil {
		t.Fatalf("second expect: %v", err)
	}
	st, err := c.Status(5)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "unsubmitted" {
		t.Fatalf("state = %s, want unsubmitted", st.State)
	}
	// Submitting the expected job works.
	if err := c.Submit(w); err != nil {
		t.Fatal(err)
	}
}

func TestLiveCoStartOverTCP(t *testing.T) {
	a := startTestDomain(t, "a", 64, cosched.Hold, 2000)
	b := startTestDomain(t, "b", 8, cosched.Yield, 2000)

	ab, err := proto.Dial(b.peerAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ab.Close()
	ba, err := proto.Dial(a.peerAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ba.Close()
	a.driver.Do(func() { a.mgr.AddPeer("b", ab) })
	b.driver.Do(func() { b.mgr.AddPeer("a", ba) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go a.driver.Run(ctx)
	go b.driver.Run(ctx)

	ca, err := DialAdmin(a.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	cb, err := DialAdmin(b.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	wa := WireJob{ID: 1, Nodes: 16, Runtime: 600, Walltime: 600,
		Mates: []job.MateRef{{Domain: "b", Job: 1}}}
	wb := WireJob{ID: 1, Nodes: 4, Runtime: 600, Walltime: 600,
		Mates: []job.MateRef{{Domain: "a", Job: 1}}}
	// Co-submission protocol: declare both halves first.
	if err := cb.Expect(wb); err != nil {
		t.Fatal(err)
	}
	if err := ca.Submit(wa); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // ≈10 virtual minutes later
	if err := cb.Submit(wb); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		sa, err1 := ca.Status(1)
		sb, err2 := cb.Status(1)
		if err1 == nil && err2 == nil && sa.Started && sb.Started {
			// Each domain runs its own wall-clock-derived virtual time;
			// co-start lands within RPC latency of each other, a few
			// virtual seconds at 2000x.
			diff := sa.StartTime - sb.StartTime
			if diff < 0 {
				diff = -diff
			}
			if diff > 30 {
				t.Fatalf("start times differ by %d virtual seconds: %d vs %d",
					diff, sa.StartTime, sb.StartTime)
			}
			// The held job must have waited for its mate, not started
			// at submission.
			if sa.StartTime < 60 {
				t.Fatalf("a started at %d, should have held ~10 virtual minutes", sa.StartTime)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pair never co-started")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestStatusServer(t *testing.T) {
	dom := startTestDomain(t, "stat", 32, cosched.Hold, 500)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go dom.driver.Run(ctx)

	ss := NewStatusServer(dom.mgr, dom.driver, nil)
	addr, err := ss.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	ac, err := DialAdmin(dom.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if err := ac.Submit(WireJob{ID: 9, Name: "probe", Nodes: 8, Runtime: 3600, Walltime: 3600}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	// JSON endpoint.
	resp, err := http.Get("http://" + addr.String() + "/status.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Domain != "stat" || snap.Nodes != 32 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Free+snap.Running+snap.Held != snap.Nodes {
		t.Fatalf("node conservation in snapshot: %+v", snap)
	}
	found := false
	for _, row := range snap.Jobs {
		if row.ID == 9 && row.Name == "probe" {
			found = true
		}
	}
	if !found {
		t.Fatalf("submitted job missing from snapshot: %+v", snap.Jobs)
	}

	// HTML page.
	resp2, err := http.Get("http://" + addr.String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"coschedd", "stat", "probe"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("status page missing %q", want)
		}
	}
	// Unknown paths 404.
	resp3, err := http.Get("http://" + addr.String() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("status for /nope = %d", resp3.StatusCode)
	}

	// /metrics: the exposition must parse and its gauges must be
	// consistent with a JSON snapshot taken in the same quiet moment.
	// Node counts only move when a job starts or completes, and the one
	// submitted job runs for a virtual hour, so scrape and snapshot see
	// the same allocation state.
	resp4, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp4.Body.Close()
	if ct := resp4.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("metrics content type = %q", ct)
	}
	expo, err := io.ReadAll(resp4.Body)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := obs.Parse(expo)
	if err != nil {
		t.Fatalf("metrics exposition does not parse: %v\n%s", err, expo)
	}
	mustGauge := func(name string, want float64) {
		t.Helper()
		v, ok := scr.Value(name, "domain", "stat")
		if !ok {
			t.Fatalf("metric %s missing from exposition:\n%s", name, expo)
		}
		if v != want {
			t.Fatalf("%s = %g, want %g", name, v, want)
		}
	}
	mustGauge("cosched_nodes_total", 32)
	mustGauge("cosched_nodes_running", float64(snap.Running))
	mustGauge("cosched_nodes_free", float64(snap.Free))
	mustGauge("cosched_jobs_queued", float64(snap.Queued))
	if typ, ok := scr.Types["cosched_jobs_completed_total"]; !ok || typ != obs.KindCounter {
		t.Fatalf("cosched_jobs_completed_total type = %v, %v", typ, ok)
	}
	// Scraping twice must stay parseable and keep virtual time monotone.
	v1, _ := scr.Value("cosched_virtual_time_seconds", "domain", "stat")
	resp5, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo2, err := io.ReadAll(resp5.Body)
	resp5.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scr2, err := obs.Parse(expo2)
	if err != nil {
		t.Fatal(err)
	}
	v2, ok := scr2.Value("cosched_virtual_time_seconds", "domain", "stat")
	if !ok || v2 < v1 {
		t.Fatalf("virtual time went backwards across scrapes: %g -> %g (ok=%v)", v1, v2, ok)
	}
}

func TestAdminCancel(t *testing.T) {
	dom := startTestDomain(t, "cxl", 32, cosched.Hold, 500)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go dom.driver.Run(ctx)
	c, err := DialAdmin(dom.adminAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Submit(WireJob{ID: 3, Nodes: 8, Runtime: 100000, Walltime: 100000}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := c.Status(3)
		if err != nil {
			t.Fatal(err)
		}
		if st.Started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := c.Cancel(3); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "cancelled" {
		t.Fatalf("state = %s", st.State)
	}
	// Double cancel errors.
	if err := c.Cancel(3); err == nil {
		t.Fatal("double cancel accepted")
	}
}

package live

import (
	"encoding/json"
	"html/template"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"cosched/internal/job"
	"cosched/internal/journal"
	"cosched/internal/obs"
	"cosched/internal/peerlink"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// statusReadHeaderTimeout bounds how long a status connection may dawdle
// over its request headers. Without it a slow-loris client (or a wedged
// monitoring agent) pins a goroutine + connection per request forever —
// the same class of hang simlint R9 forbids on raw protocol conns.
const statusReadHeaderTimeout = 10 * time.Second

// StatusSnapshot is the daemon state served by the status endpoint.
type StatusSnapshot struct {
	Domain     string         `json:"domain"`
	VirtualNow sim.Time       `json:"virtual_now"`
	Nodes      int            `json:"nodes"`
	Free       int            `json:"free"`
	Held       int            `json:"held"`
	Running    int            `json:"running_nodes"`
	Queued     int            `json:"queued_jobs"`
	Holding    int            `json:"holding_jobs"`
	Completed  int            `json:"completed_jobs"`
	Jobs       []StatusJobRow `json:"jobs"`
	// Peers reports the health of each watched peer link (breaker state,
	// call and failure counters). Empty when the daemon has no peers.
	Peers []peerlink.Snapshot `json:"peers,omitempty"`
	// Recovery describes the most recent crash recovery, if this daemon
	// booted from a journal. Absent on a fresh start.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
	// Degraded is non-empty while the daemon runs journal-less after a
	// storage fault: the reason the journal was abandoned plus the hold
	// budget now in force. Absent in healthy operation.
	Degraded string `json:"degraded,omitempty"`
}

// RecoveryInfo summarizes a daemon's boot-time recovery for the status
// page: what the journal yielded and how mate reconciliation went.
type RecoveryInfo struct {
	At        sim.Time `json:"at"`                  // virtual time recovery completed
	Snapshot  uint64   `json:"snapshot_seq"`        // snapshot sequence loaded (0 = none)
	Entries   int      `json:"entries"`             // WAL entries replayed on top
	Restored  int      `json:"restored_jobs"`       // jobs re-installed
	Torn      string   `json:"torn,omitempty"`      // truncated-tail description, if any
	Reconcile string   `json:"reconcile,omitempty"` // latest per-peer reconciliation summary
	// Reconciled counts peers whose post-restart mate reconciliation
	// completed; /metrics exports it as a gauge so a fleet dashboard can
	// alert on a daemon stuck mid-reconciliation.
	Reconciled int `json:"reconciled_peers,omitempty"`
}

// StatusJobRow is one non-terminal job in the snapshot.
type StatusJobRow struct {
	ID     job.ID   `json:"id"`
	Name   string   `json:"name,omitempty"`
	State  string   `json:"state"`
	Nodes  int      `json:"nodes"`
	Submit sim.Time `json:"submit"`
	Mates  int      `json:"mates"`
	Yields int      `json:"yields"`
}

// StatusServer serves a human-readable status page ("/"), a JSON
// snapshot ("/status.json"), and a Prometheus text exposition
// ("/metrics") for one live daemon.
type StatusServer struct {
	mgr    *resmgr.Manager
	driver *Driver
	logger *log.Logger
	links  []*peerlink.Link
	srv    *http.Server
	reg    *obs.Registry

	recMu    sync.Mutex
	recovery *RecoveryInfo
	degraded string
}

// SetRecovery publishes (or updates, as reconciliation progresses) the
// daemon's recovery summary. Safe to call from any goroutine.
func (s *StatusServer) SetRecovery(info RecoveryInfo) {
	s.recMu.Lock()
	s.recovery = &info
	s.recMu.Unlock()
}

// SetDegraded publishes the daemon's degraded-mode banner: the status
// page shows it loudly and /metrics flips cosched_journal_degraded to 1.
// Safe to call from any goroutine.
func (s *StatusServer) SetDegraded(reason string) {
	s.recMu.Lock()
	s.degraded = reason
	s.recMu.Unlock()
}

// NewStatusServer wraps a manager and its driver. logger receives serve
// errors; nil discards them.
func NewStatusServer(mgr *resmgr.Manager, driver *Driver, logger *log.Logger) *StatusServer {
	s := &StatusServer{mgr: mgr, driver: driver, logger: logger, reg: obs.New()}
	s.reg.Collect(s.collectMetrics)
	return s
}

// Metrics returns the server's registry so the daemon can register extra
// collectors (journal counters, custom gauges) before Listen.
func (s *StatusServer) Metrics() *obs.Registry { return s.reg }

// WatchPeers registers peer links whose health snapshots are included in
// every status snapshot. Call before Listen.
func (s *StatusServer) WatchPeers(links ...*peerlink.Link) {
	s.links = append(s.links, links...)
}

// WatchJournal exports the journal durability series on /metrics from a
// stats callback (normally journal.Store.Stats). The callback takes only
// the store's own lock, so a stalled disk can slow a scrape but never
// deadlock it against the driver. Call before Listen.
func (s *StatusServer) WatchJournal(stats func() journal.Stats) {
	d := s.mgr.Name()
	s.reg.Collect(func(e *obs.Emitter) {
		st := stats()
		e.Counter("cosched_journal_appends_total", "WAL entries appended since boot", float64(st.Appends), "domain", d)
		e.Counter("cosched_journal_fsyncs_total", "WAL fsyncs issued since boot", float64(st.Fsyncs), "domain", d)
		e.Counter("cosched_journal_compactions_total", "compacting snapshots taken since boot", float64(st.Compacts), "domain", d)
		e.Gauge("cosched_journal_entries_pending_compact", "WAL entries appended since the last compact", float64(st.Pending), "domain", d)
		e.Gauge("cosched_journal_seq", "last assigned journal sequence number", float64(st.Seq), "domain", d)
		e.Counter(obs.MetricFsyncFailures, "journal fsync failures; any failure poisons the store permanently", float64(st.FsyncFailures), "domain", d)
		poisoned := 0.0
		if st.Poisoned {
			poisoned = 1
		}
		e.Gauge("cosched_journal_poisoned", "1 once the journal store has latched a storage fault", poisoned, "domain", d)
	})
}

// snapshot collects daemon state under the driver lock.
func (s *StatusServer) snapshot() StatusSnapshot {
	var snap StatusSnapshot
	s.driver.Do(func() {
		pool := s.mgr.Pool()
		snap = StatusSnapshot{
			Domain:     s.mgr.Name(),
			VirtualNow: s.driver.virtualNowLocked(),
			Nodes:      pool.Total(),
			Free:       pool.Free(),
			Held:       pool.Held(),
			Running:    pool.Running(),
			Queued:     s.mgr.QueueLength(),
			Holding:    s.mgr.HoldingCount(),
			Completed:  s.mgr.CompletedCount(),
		}
		for _, j := range s.mgr.Jobs() {
			if j.State == job.Completed {
				continue
			}
			snap.Jobs = append(snap.Jobs, StatusJobRow{
				ID: j.ID, Name: j.Name, State: j.State.String(),
				Nodes: j.Nodes, Submit: j.SubmitTime,
				Mates: len(j.Mates), Yields: j.YieldCount,
			})
		}
	})
	sort.Slice(snap.Jobs, func(a, b int) bool { return snap.Jobs[a].ID < snap.Jobs[b].ID })
	// Link snapshots take only the link's own lock — outside driver.Do, so
	// a wedged peer call can never block the status page.
	for _, l := range s.links {
		snap.Peers = append(snap.Peers, l.Snapshot())
	}
	s.recMu.Lock()
	if s.recovery != nil {
		info := *s.recovery
		snap.Recovery = &info
	}
	snap.Degraded = s.degraded
	s.recMu.Unlock()
	return snap
}

// collectMetrics emits the daemon's operational state as Prometheus
// samples on every /metrics scrape. It reuses snapshot(), so the manager
// reads happen under the driver lock and peer counters come from each
// link's own lock — the same consistency the status page gets. Metric
// names and label sets are part of the repo's observability contract; the
// table lives in ARCHITECTURE.md.
func (s *StatusServer) collectMetrics(e *obs.Emitter) {
	snap := s.snapshot()
	d := snap.Domain
	e.Gauge("cosched_virtual_time_seconds", "virtual simulation time", float64(snap.VirtualNow), "domain", d)
	e.Gauge("cosched_nodes_total", "pool capacity in nodes", float64(snap.Nodes), "domain", d)
	e.Gauge("cosched_nodes_free", "free nodes", float64(snap.Free), "domain", d)
	e.Gauge("cosched_nodes_held", "nodes held for coscheduling mates", float64(snap.Held), "domain", d)
	e.Gauge("cosched_nodes_running", "nodes running jobs", float64(snap.Running), "domain", d)
	e.Gauge("cosched_jobs_queued", "jobs waiting in the queue", float64(snap.Queued), "domain", d)
	e.Gauge("cosched_jobs_holding", "jobs holding nodes for a mate", float64(snap.Holding), "domain", d)
	e.Counter("cosched_jobs_completed_total", "jobs completed since boot", float64(snap.Completed), "domain", d)

	// Counters the snapshot does not carry: cheap manager reads, taken
	// under the driver lock like everything else.
	var cancelled, iterations, refused float64
	s.driver.Do(func() {
		cancelled = float64(s.mgr.CancelledCount())
		iterations = float64(s.mgr.Iterations())
		refused = float64(s.mgr.HoldsRefused())
	})
	e.Counter("cosched_jobs_cancelled_total", "jobs cancelled since boot", cancelled, "domain", d)
	e.Counter("cosched_scheduler_iterations_total", "scheduler Iterate passes since boot", iterations, "domain", d)
	e.Counter(obs.MetricHoldsRefused, "Hold decisions downgraded to Yield by the degraded-mode hold budget", refused, "domain", d)

	degraded := 0.0
	if snap.Degraded != "" {
		degraded = 1
	}
	e.Gauge(obs.MetricJournalDegraded, "1 while the daemon runs journal-less after a storage fault", degraded, "domain", d)

	for _, p := range snap.Peers {
		connected := 0.0
		if p.Connected {
			connected = 1
		}
		e.Gauge("cosched_peer_connected", "1 when the peer link has an established connection", connected, "domain", d, "peer", p.Name)
		e.Gauge("cosched_peer_consecutive_failures", "consecutive transport failures feeding the breaker", float64(p.ConsecutiveFailures), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_calls_total", "peer calls attempted", float64(p.Calls), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_successes_total", "peer calls that succeeded", float64(p.Successes), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_remote_errors_total", "peer calls rejected by the remote daemon", float64(p.RemoteErrors), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_transport_errors_total", "peer calls lost to transport failures", float64(p.TransportErrors), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_fast_fails_total", "peer calls rejected by an open breaker", float64(p.FastFails), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_retries_total", "peer calls retried after a provably-unsent failure", float64(p.Retries), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_dials_total", "connection dials", float64(p.Dials), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_dial_errors_total", "failed connection dials", float64(p.DialErrors), "domain", d, "peer", p.Name)
		e.Counter("cosched_peer_breaker_trips_total", "circuit-breaker open transitions", float64(p.Trips), "domain", d, "peer", p.Name)
	}

	if snap.Recovery != nil {
		r := snap.Recovery
		e.Gauge("cosched_recovery_completed_at_seconds", "virtual time the last journal recovery completed", float64(r.At), "domain", d)
		e.Gauge("cosched_recovery_snapshot_seq", "journal snapshot sequence recovery loaded", float64(r.Snapshot), "domain", d)
		e.Gauge("cosched_recovery_entries_replayed", "WAL entries replayed on top of the snapshot", float64(r.Entries), "domain", d)
		e.Gauge("cosched_recovery_jobs_restored", "jobs re-installed by recovery", float64(r.Restored), "domain", d)
		e.Gauge("cosched_recovery_peers_reconciled", "peers whose mate state was reconciled after restart", float64(r.Reconciled), "domain", d)
	}
}

var statusTemplate = template.Must(template.New("status").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>coschedd {{.Domain}}</title>
<style>
body{font-family:system-ui,sans-serif;margin:2rem;color:#0b0b0b;background:#fcfcfb}
table{border-collapse:collapse;margin-top:1rem}
td,th{border:1px solid #e4e3df;padding:.3rem .7rem;text-align:left}
th{background:#f3f2ef}.k{color:#52514e}
</style></head><body>
<h1>coschedd — domain {{.Domain}}</h1>
{{if .Degraded}}<p style="background:#b00020;color:#fff;padding:.5rem .8rem;font-weight:600">
DEGRADED — {{.Degraded}}</p>{{end}}
<p class="k">virtual t={{.VirtualNow}}s · nodes {{.Free}}/{{.Nodes}} free,
{{.Running}} running, {{.Held}} held · {{.Queued}} queued / {{.Holding}} holding /
{{.Completed}} completed jobs · <a href="/status.json">JSON</a></p>
<table><tr><th>job</th><th>name</th><th>state</th><th>nodes</th><th>submit</th><th>mates</th><th>yields</th></tr>
{{range .Jobs}}<tr><td>{{.ID}}</td><td>{{.Name}}</td><td>{{.State}}</td>
<td>{{.Nodes}}</td><td>{{.Submit}}</td><td>{{.Mates}}</td><td>{{.Yields}}</td></tr>
{{else}}<tr><td colspan="7" class="k">no active jobs</td></tr>{{end}}
</table>
{{with .Recovery}}<h2>recovery</h2>
<table><tr><th>recovered at</th><th>snapshot seq</th><th>entries replayed</th>
<th>jobs restored</th><th>torn tail</th><th>reconciliation</th></tr>
<tr><td>t={{.At}}s</td><td>{{.Snapshot}}</td><td>{{.Entries}}</td>
<td>{{.Restored}}</td><td class="k">{{if .Torn}}{{.Torn}}{{else}}clean{{end}}</td>
<td class="k">{{if .Reconcile}}{{.Reconcile}}{{else}}pending{{end}}</td></tr>
</table>{{end}}
{{if .Peers}}<h2>peer links</h2>
<table><tr><th>peer</th><th>state</th><th>connected</th><th>calls</th><th>ok</th>
<th>remote err</th><th>transport err</th><th>fast fail</th><th>retries</th>
<th>trips</th><th>last error</th></tr>
{{range .Peers}}<tr><td>{{.Name}}</td><td>{{.State}}</td><td>{{.Connected}}</td>
<td>{{.Calls}}</td><td>{{.Successes}}</td><td>{{.RemoteErrors}}</td>
<td>{{.TransportErrors}}</td><td>{{.FastFails}}</td><td>{{.Retries}}</td>
<td>{{.Trips}}</td><td class="k">{{.LastError}}</td></tr>{{end}}
</table>{{end}}
</body></html>`))

// Listen serves the status page on addr and returns the bound address.
func (s *StatusServer) Listen(addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := statusTemplate.Execute(w, s.snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/status.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/metrics", s.reg.Handler())
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: statusReadHeaderTimeout}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed && s.logger != nil {
			s.logger.Printf("status server: %v", err)
		}
	}()
	return ln.Addr(), nil
}

// Close stops the HTTP server.
func (s *StatusServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

package live

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net"
	"net/http"
	"sort"
	"sync"

	"cosched/internal/job"
	"cosched/internal/peerlink"
	"cosched/internal/resmgr"
	"cosched/internal/sim"
)

// StatusSnapshot is the daemon state served by the status endpoint.
type StatusSnapshot struct {
	Domain     string         `json:"domain"`
	VirtualNow sim.Time       `json:"virtual_now"`
	Nodes      int            `json:"nodes"`
	Free       int            `json:"free"`
	Held       int            `json:"held"`
	Running    int            `json:"running_nodes"`
	Queued     int            `json:"queued_jobs"`
	Holding    int            `json:"holding_jobs"`
	Completed  int            `json:"completed_jobs"`
	Jobs       []StatusJobRow `json:"jobs"`
	// Peers reports the health of each watched peer link (breaker state,
	// call and failure counters). Empty when the daemon has no peers.
	Peers []peerlink.Snapshot `json:"peers,omitempty"`
	// Recovery describes the most recent crash recovery, if this daemon
	// booted from a journal. Absent on a fresh start.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`
}

// RecoveryInfo summarizes a daemon's boot-time recovery for the status
// page: what the journal yielded and how mate reconciliation went.
type RecoveryInfo struct {
	At        sim.Time `json:"at"`                  // virtual time recovery completed
	Snapshot  uint64   `json:"snapshot_seq"`        // snapshot sequence loaded (0 = none)
	Entries   int      `json:"entries"`             // WAL entries replayed on top
	Restored  int      `json:"restored_jobs"`       // jobs re-installed
	Torn      string   `json:"torn,omitempty"`      // truncated-tail description, if any
	Reconcile string   `json:"reconcile,omitempty"` // latest per-peer reconciliation summary
}

// StatusJobRow is one non-terminal job in the snapshot.
type StatusJobRow struct {
	ID     job.ID   `json:"id"`
	Name   string   `json:"name,omitempty"`
	State  string   `json:"state"`
	Nodes  int      `json:"nodes"`
	Submit sim.Time `json:"submit"`
	Mates  int      `json:"mates"`
	Yields int      `json:"yields"`
}

// StatusServer serves a human-readable status page ("/") and a JSON
// snapshot ("/status.json") for one live daemon.
type StatusServer struct {
	mgr    *resmgr.Manager
	driver *Driver
	links  []*peerlink.Link
	srv    *http.Server

	recMu    sync.Mutex
	recovery *RecoveryInfo
}

// SetRecovery publishes (or updates, as reconciliation progresses) the
// daemon's recovery summary. Safe to call from any goroutine.
func (s *StatusServer) SetRecovery(info RecoveryInfo) {
	s.recMu.Lock()
	s.recovery = &info
	s.recMu.Unlock()
}

// NewStatusServer wraps a manager and its driver.
func NewStatusServer(mgr *resmgr.Manager, driver *Driver) *StatusServer {
	return &StatusServer{mgr: mgr, driver: driver}
}

// WatchPeers registers peer links whose health snapshots are included in
// every status snapshot. Call before Listen.
func (s *StatusServer) WatchPeers(links ...*peerlink.Link) {
	s.links = append(s.links, links...)
}

// snapshot collects daemon state under the driver lock.
func (s *StatusServer) snapshot() StatusSnapshot {
	var snap StatusSnapshot
	s.driver.Do(func() {
		pool := s.mgr.Pool()
		snap = StatusSnapshot{
			Domain:     s.mgr.Name(),
			VirtualNow: s.driver.virtualNowLocked(),
			Nodes:      pool.Total(),
			Free:       pool.Free(),
			Held:       pool.Held(),
			Running:    pool.Running(),
			Queued:     s.mgr.QueueLength(),
			Holding:    s.mgr.HoldingCount(),
			Completed:  s.mgr.CompletedCount(),
		}
		for _, j := range s.mgr.Jobs() {
			if j.State == job.Completed {
				continue
			}
			snap.Jobs = append(snap.Jobs, StatusJobRow{
				ID: j.ID, Name: j.Name, State: j.State.String(),
				Nodes: j.Nodes, Submit: j.SubmitTime,
				Mates: len(j.Mates), Yields: j.YieldCount,
			})
		}
	})
	sort.Slice(snap.Jobs, func(a, b int) bool { return snap.Jobs[a].ID < snap.Jobs[b].ID })
	// Link snapshots take only the link's own lock — outside driver.Do, so
	// a wedged peer call can never block the status page.
	for _, l := range s.links {
		snap.Peers = append(snap.Peers, l.Snapshot())
	}
	s.recMu.Lock()
	if s.recovery != nil {
		info := *s.recovery
		snap.Recovery = &info
	}
	s.recMu.Unlock()
	return snap
}

var statusTemplate = template.Must(template.New("status").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>coschedd {{.Domain}}</title>
<style>
body{font-family:system-ui,sans-serif;margin:2rem;color:#0b0b0b;background:#fcfcfb}
table{border-collapse:collapse;margin-top:1rem}
td,th{border:1px solid #e4e3df;padding:.3rem .7rem;text-align:left}
th{background:#f3f2ef}.k{color:#52514e}
</style></head><body>
<h1>coschedd — domain {{.Domain}}</h1>
<p class="k">virtual t={{.VirtualNow}}s · nodes {{.Free}}/{{.Nodes}} free,
{{.Running}} running, {{.Held}} held · {{.Queued}} queued / {{.Holding}} holding /
{{.Completed}} completed jobs · <a href="/status.json">JSON</a></p>
<table><tr><th>job</th><th>name</th><th>state</th><th>nodes</th><th>submit</th><th>mates</th><th>yields</th></tr>
{{range .Jobs}}<tr><td>{{.ID}}</td><td>{{.Name}}</td><td>{{.State}}</td>
<td>{{.Nodes}}</td><td>{{.Submit}}</td><td>{{.Mates}}</td><td>{{.Yields}}</td></tr>
{{else}}<tr><td colspan="7" class="k">no active jobs</td></tr>{{end}}
</table>
{{with .Recovery}}<h2>recovery</h2>
<table><tr><th>recovered at</th><th>snapshot seq</th><th>entries replayed</th>
<th>jobs restored</th><th>torn tail</th><th>reconciliation</th></tr>
<tr><td>t={{.At}}s</td><td>{{.Snapshot}}</td><td>{{.Entries}}</td>
<td>{{.Restored}}</td><td class="k">{{if .Torn}}{{.Torn}}{{else}}clean{{end}}</td>
<td class="k">{{if .Reconcile}}{{.Reconcile}}{{else}}pending{{end}}</td></tr>
</table>{{end}}
{{if .Peers}}<h2>peer links</h2>
<table><tr><th>peer</th><th>state</th><th>connected</th><th>calls</th><th>ok</th>
<th>remote err</th><th>transport err</th><th>fast fail</th><th>retries</th>
<th>trips</th><th>last error</th></tr>
{{range .Peers}}<tr><td>{{.Name}}</td><td>{{.State}}</td><td>{{.Connected}}</td>
<td>{{.Calls}}</td><td>{{.Successes}}</td><td>{{.RemoteErrors}}</td>
<td>{{.TransportErrors}}</td><td>{{.FastFails}}</td><td>{{.Retries}}</td>
<td>{{.Trips}}</td><td class="k">{{.LastError}}</td></tr>{{end}}
</table>{{end}}
</body></html>`))

// Listen serves the status page on addr and returns the bound address.
func (s *StatusServer) Listen(addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := statusTemplate.Execute(w, s.snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/status.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s.snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.srv = &http.Server{Handler: mux}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Printf("live status server: %v\n", err)
		}
	}()
	return ln.Addr(), nil
}

// Close stops the HTTP server.
func (s *StatusServer) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

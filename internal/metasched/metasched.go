// Package metasched implements the other §III comparator: a metascheduler
// (GridWay / LoadLeveler / Moab style) that owns BOTH machines behind a
// single global submission portal. A paired job becomes one heterogeneous
// request that atomically allocates nodes on both machines, so co-starts
// are trivial — the cost the paper identifies is architectural (every site
// must surrender scheduling autonomy to the portal), which a simulator
// cannot price; what it can show is that coscheduling matches the
// portal's scheduling quality without requiring it.
package metasched

import (
	"fmt"
	"sort"

	"cosched/internal/cluster"
	"cosched/internal/job"
	"cosched/internal/metrics"
	"cosched/internal/policy"
	"cosched/internal/sim"
)

// DomainConfig is one machine behind the portal.
type DomainConfig struct {
	Name  string
	Nodes int
	Trace []*job.Job
}

// Options configures the metascheduler simulation.
type Options struct {
	Domains []DomainConfig
	// Policy orders the global queue; nil = WFP (scored on each request's
	// widest member).
	Policy policy.Policy
}

// Result summarizes a run.
type Result struct {
	Reports           map[string]metrics.DomainReport
	Makespan          sim.Time
	StuckJobs         int
	CoStartViolations int
}

// member is one machine-local half of a request.
type member struct {
	domain string
	j      *job.Job
	alloc  *cluster.Allocation
}

// request is one unit of global scheduling: a single job or a
// heterogeneous pair spanning machines.
type request struct {
	members []member
	started bool
}

// submitTime returns the request's arrival at the portal: the LATEST
// member submission (the portal cannot act before it has the whole
// request).
func (r *request) submitTime() sim.Time {
	t := r.members[0].j.SubmitTime
	for _, m := range r.members[1:] {
		if m.j.SubmitTime > t {
			t = m.j.SubmitTime
		}
	}
	return t
}

// Sim is a configured metascheduler run.
type Sim struct {
	eng   *sim.Engine
	pol   policy.Policy
	pools map[string]*cluster.Pool
	names []string

	queue   []*request
	pending bool
	total   int
	done    int
}

// New builds the portal: traces are merged, paired jobs fused into
// heterogeneous requests.
func New(opt Options) (*Sim, error) {
	if len(opt.Domains) == 0 {
		return nil, fmt.Errorf("metasched: need at least one domain")
	}
	pol := opt.Policy
	if pol == nil {
		pol = policy.WFP{}
	}
	s := &Sim{
		eng:   sim.NewEngine(),
		pol:   pol,
		pools: make(map[string]*cluster.Pool),
	}
	byRef := make(map[job.MateRef]*job.Job)
	for _, dc := range opt.Domains {
		if dc.Name == "" {
			return nil, fmt.Errorf("metasched: empty domain name")
		}
		if _, dup := s.pools[dc.Name]; dup {
			return nil, fmt.Errorf("metasched: duplicate domain %q", dc.Name)
		}
		s.pools[dc.Name] = cluster.New(dc.Name, dc.Nodes)
		s.names = append(s.names, dc.Name)
		for _, j := range dc.Trace {
			if err := j.Validate(); err != nil {
				return nil, fmt.Errorf("metasched: domain %q: %w", dc.Name, err)
			}
			if j.Nodes > dc.Nodes {
				return nil, fmt.Errorf("metasched: domain %q: job %d exceeds machine", dc.Name, j.ID)
			}
			byRef[job.MateRef{Domain: dc.Name, Job: j.ID}] = j
		}
	}

	// Fuse pairs into requests (each job consumed once; groups follow
	// mate links transitively).
	assigned := make(map[*job.Job]bool)
	var requests []*request
	for _, dc := range opt.Domains {
		for _, j := range dc.Trace {
			if assigned[j] {
				continue
			}
			req := &request{}
			// Walk the mate closure breadth-first.
			frontier := []job.MateRef{{Domain: dc.Name, Job: j.ID}}
			seen := map[job.MateRef]bool{}
			for len(frontier) > 0 {
				ref := frontier[0]
				frontier = frontier[1:]
				if seen[ref] {
					continue
				}
				seen[ref] = true
				mj, ok := byRef[ref]
				if !ok {
					continue // dangling mate: the portal schedules what it has
				}
				if assigned[mj] {
					continue
				}
				assigned[mj] = true
				req.members = append(req.members, member{domain: ref.Domain, j: mj})
				frontier = append(frontier, mj.Mates...)
			}
			if len(req.members) > 0 {
				requests = append(requests, req)
			}
		}
	}

	// Arrival events: the request enters the global queue when its last
	// member is submitted.
	for _, req := range requests {
		req := req
		s.total += len(req.members)
		at := req.submitTime()
		for _, m := range req.members {
			m.j.SubmitTime = at // the portal is the submission point
		}
		if _, err := s.eng.At(at, sim.PrioritySubmit, func(now sim.Time) {
			for _, m := range req.members {
				if err := m.j.Advance(job.Queued); err != nil {
					panic(fmt.Sprintf("metasched: queue: %v", err))
				}
			}
			s.queue = append(s.queue, req)
			s.requestIteration()
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Sim) requestIteration() {
	if s.pending {
		return
	}
	s.pending = true
	s.eng.After(0, sim.PrioritySchedule, func(now sim.Time) {
		s.pending = false
		s.iterate(now)
	})
}

// score orders requests by their widest member's policy score.
func (s *Sim) score(r *request, now sim.Time) float64 {
	best := s.pol.Score(r.members[0].j, now)
	for _, m := range r.members[1:] {
		if v := s.pol.Score(m.j, now); v > best {
			best = v
		}
	}
	return best
}

// iterate runs one global scheduling pass: requests in priority order,
// greedy multi-resource backfill (a request starts whenever every member
// fits its machine right now — the portal sees all machines, so no
// cross-domain protocol and no reservations are needed).
func (s *Sim) iterate(now sim.Time) {
	ordered := append([]*request(nil), s.queue...)
	sort.SliceStable(ordered, func(a, b int) bool {
		sa, sb := s.score(ordered[a], now), s.score(ordered[b], now)
		//simlint:allow R5 sort comparator must be exact and total; an epsilon tie would break strict weak ordering
		if sa != sb {
			return sa > sb
		}
		return ordered[a].submitTime() < ordered[b].submitTime()
	})
	for _, req := range ordered {
		if req.started {
			continue
		}
		fits := true
		for _, m := range req.members {
			if !s.pools[m.domain].CanAllocate(m.j.Nodes) {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		s.start(req, now)
	}
}

// start atomically allocates every member and schedules completions.
func (s *Sim) start(req *request, now sim.Time) {
	req.started = true
	for i := range req.members {
		m := &req.members[i]
		alloc, err := s.pools[m.domain].Allocate(now, m.j.Nodes, cluster.AllocRun)
		if err != nil {
			panic(fmt.Sprintf("metasched: allocate after CanAllocate: %v", err))
		}
		m.alloc = alloc
		m.j.MarkReady(now)
		if err := m.j.Advance(job.Running); err != nil {
			panic(fmt.Sprintf("metasched: start: %v", err))
		}
		m.j.StartTime = now
		mj, dom, id := m.j, m.domain, alloc.ID
		s.eng.After(mj.Runtime, sim.PriorityEnd, func(end sim.Time) {
			if err := s.pools[dom].Release(end, id); err != nil {
				panic(fmt.Sprintf("metasched: release: %v", err))
			}
			if err := mj.Advance(job.Completed); err != nil {
				panic(fmt.Sprintf("metasched: complete: %v", err))
			}
			mj.EndTime = end
			s.done++
			s.requestIteration()
		})
	}
	// Remove from the queue.
	for i, q := range s.queue {
		if q == req {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
}

// Run executes to completion and collects per-domain reports.
func (s *Sim) Run(traces map[string][]*job.Job) *Result {
	s.eng.Run()
	res := &Result{
		Reports:   make(map[string]metrics.DomainReport),
		Makespan:  s.eng.Now(),
		StuckJobs: s.total - s.done,
	}
	for _, name := range s.names {
		s.pools[name].Sync(res.Makespan)
		res.Reports[name] = metrics.Collect(name, traces[name], s.pools[name].Total(), res.Makespan)
	}
	// Atomic dual allocation makes divergent starts impossible, but
	// verify anyway.
	for _, name := range s.names {
		for _, j := range traces[name] {
			if !j.Paired() || j.State != job.Completed {
				continue
			}
			for _, ref := range j.Mates {
				mates, ok := traces[ref.Domain]
				if !ok || name > ref.Domain {
					continue
				}
				for _, mj := range mates {
					if mj.ID == ref.Job && mj.State == job.Completed && mj.StartTime != j.StartTime {
						res.CoStartViolations++
					}
				}
			}
		}
	}
	return res
}

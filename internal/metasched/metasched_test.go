package metasched

import (
	"testing"

	"cosched/internal/job"
	"cosched/internal/sim"
	"cosched/internal/workload"
)

func TestSingleJobRuns(t *testing.T) {
	j := job.New(1, 10, 100, 600, 600)
	tr := map[string][]*job.Job{"a": {j}}
	s, err := New(Options{Domains: []DomainConfig{{Name: "a", Nodes: 64, Trace: tr["a"]}}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(tr)
	if j.State != job.Completed || j.StartTime != 100 {
		t.Fatalf("job: %s start=%d", j.State, j.StartTime)
	}
	if res.StuckJobs != 0 {
		t.Fatalf("stuck = %d", res.StuckJobs)
	}
}

func TestHetJobWaitsForBothMachines(t *testing.T) {
	// The pair needs machine B, which is busy until t=1000: the portal
	// starts both members together at 1000 even though A was free at 0.
	ja := job.New(1, 10, 5, 600, 600)
	jb := job.New(1, 8, 5, 600, 600)
	ja.Mates = []job.MateRef{{Domain: "b", Job: 1}}
	jb.Mates = []job.MateRef{{Domain: "a", Job: 1}}
	blocker := job.New(2, 10, 0, 1000, 1000) // fills B before the pair arrives
	tr := map[string][]*job.Job{"a": {ja}, "b": {jb, blocker}}
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 64, Trace: tr["a"]},
		{Name: "b", Nodes: 10, Trace: tr["b"]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(tr)
	if res.StuckJobs != 0 || res.CoStartViolations != 0 {
		t.Fatalf("stuck=%d viol=%d", res.StuckJobs, res.CoStartViolations)
	}
	if ja.StartTime != jb.StartTime || ja.StartTime != 1000 {
		t.Fatalf("het-job starts: %d / %d, want 1000", ja.StartTime, jb.StartTime)
	}
}

func TestPortalSeesRequestAtLastSubmission(t *testing.T) {
	// Members submitted 10 minutes apart: the request exists only once
	// both halves have arrived at the portal.
	ja := job.New(1, 4, 0, 300, 300)
	jb := job.New(1, 4, 600, 300, 300)
	ja.Mates = []job.MateRef{{Domain: "b", Job: 1}}
	jb.Mates = []job.MateRef{{Domain: "a", Job: 1}}
	tr := map[string][]*job.Job{"a": {ja}, "b": {jb}}
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 8, Trace: tr["a"]},
		{Name: "b", Nodes: 8, Trace: tr["b"]},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(tr)
	if ja.StartTime != 600 || jb.StartTime != 600 {
		t.Fatalf("starts = %d/%d, want 600 (request formed at the later submission)", ja.StartTime, jb.StartTime)
	}
}

func TestWorkloadScaleNoViolations(t *testing.T) {
	spec := workload.EurekaSpec(15)
	spec.Jobs = 300
	a, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 16
	b, err := workload.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	workload.PairNearest(workload.NewRNG(17), a, b, "a", "b", 80, 2*sim.Hour)
	tr := map[string][]*job.Job{"a": a, "b": b}
	s, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 100, Trace: a},
		{Name: "b", Nodes: 100, Trace: b},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(tr)
	if res.StuckJobs != 0 {
		t.Fatalf("stuck = %d", res.StuckJobs)
	}
	if res.CoStartViolations != 0 {
		t.Fatalf("violations = %d", res.CoStartViolations)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	big := job.New(1, 100, 0, 10, 10)
	if _, err := New(Options{Domains: []DomainConfig{
		{Name: "a", Nodes: 10, Trace: []*job.Job{big}},
	}}); err == nil {
		t.Fatal("oversize job accepted")
	}
}

package metrics

import (
	"cosched/internal/job"
	"cosched/internal/sim"
)

// Collector is the incremental form of Collect: jobs are folded in one at a
// time and the report is rendered at the end. Collect is now a loop over a
// Collector, so the two cannot drift; the streaming trace-replay path in
// resmgr folds jobs as their windows retire, in registration order, and
// produces reports byte-identical to collecting the full job slice.
//
// Add order is the float-accumulation order. For reproducible reports, feed
// jobs in registration order (Manager.Jobs()).
type Collector struct {
	r                 DomainReport
	waits, sds, syncs Accumulator
	lostNodeSec       int64
	busyNodeSec       int64
}

// NewCollector starts an empty collector for one domain.
func NewCollector(domain string) *Collector {
	return &Collector{r: DomainReport{Domain: domain}}
}

// Add folds one job into the report-in-progress.
func (c *Collector) Add(j *job.Job) {
	c.r.TotalJobs++
	c.r.Yields += j.YieldCount
	c.r.Holds += j.HoldCount
	c.lostNodeSec += j.HeldNodeSeconds
	if j.State == job.Cancelled {
		c.r.Cancelled++
		return
	}
	if j.State != job.Completed {
		c.r.Stuck++
		return
	}
	c.r.Completed++
	c.waits.Add(float64(j.WaitTime()) / 60)
	c.sds.Add(j.Slowdown())
	c.busyNodeSec += j.NodeSeconds()
	if j.Paired() {
		c.r.PairedCount++
		c.syncs.Add(float64(j.SyncTime()) / 60)
	}
}

// Report renders the folded jobs into a DomainReport. span is the simulated
// period used for loss/utilization rates; totalNodes the pool size. Report
// may be called more than once (e.g. once per span candidate).
func (c *Collector) Report(totalNodes int, span sim.Duration) DomainReport {
	r := c.r
	r.Span = span
	r.Wait = c.waits.Summary()
	r.Slowdown = c.sds.Summary()
	r.PairedSync = c.syncs.Summary()
	r.LostNodeHours = float64(c.lostNodeSec) / 3600
	if span > 0 && totalNodes > 0 {
		capacity := float64(totalNodes) * float64(span)
		r.LostUtilization = float64(c.lostNodeSec) / capacity
		r.Utilization = float64(c.busyNodeSec) / capacity
	}
	return r
}

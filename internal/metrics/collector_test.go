package metrics

import (
	"testing"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// TestCollectorMatchesCollect: folding jobs one at a time must produce the
// same DomainReport struct (same float bits) as the batch Collect, since
// the streaming replay path relies on Collector for byte-identical tables.
func TestCollectorMatchesCollect(t *testing.T) {
	jobs := []*job.Job{
		mkdone(1, 10, 0, 600, 600, false),
		mkdone(2, 20, 0, 1200, 600, true),
		job.New(3, 5, 0, 60, 60), // stuck
		mkdone(4, 3, 100, 5000, 900, true),
	}
	jobs[1].HeldNodeSeconds = 7200
	jobs[1].YieldCount = 2
	jobs[1].HoldCount = 1
	cancelled := job.New(5, 2, 0, 30, 30)
	cancelled.State = job.Cancelled
	jobs = append(jobs, cancelled)

	span := sim.Duration(7200)
	want := Collect("dom", jobs, 64, span)

	c := NewCollector("dom")
	for _, j := range jobs {
		c.Add(j)
	}
	got := c.Report(64, span)
	if got != want {
		t.Fatalf("Collector report:\n got %+v\nwant %+v", got, want)
	}

	// Report is idempotent across calls.
	if again := c.Report(64, span); again != want {
		t.Fatalf("second Report diverged: %+v", again)
	}
}

package metrics

import (
	"math"
	"sort"
)

// ValueDist is an exact streaming summary over a series whose values come
// from a bounded domain (SWF fields: integral seconds, node counts, and
// ratios of those). It keeps one counter per distinct value instead of one
// sample per observation, so memory is O(distinct values) — independent of
// series length — while Summary() reproduces Summarize's output BIT FOR
// BIT: the reduction below replays the exact float operations Summarize
// performs on the sorted sample slice (per-sample additions in ascending
// value order, the same interpolated quantile arithmetic), so streaming a
// multi-GB trace yields byte-identical reports to materializing it.
//
// Contrast with Accumulator (streaming.go): Accumulator is O(1) with
// approximate quantiles, for per-job metrics inside million-job cells;
// ValueDist is O(distinct) and exact, for trace statistics that must stay
// byte-identical to the materialized path.
type ValueDist struct {
	counts map[float64]int64
	n      int64
}

// Add records one observation.
func (d *ValueDist) Add(x float64) {
	if d.counts == nil {
		d.counts = make(map[float64]int64)
	}
	d.counts[x]++
	d.n++
}

// Count returns the number of observations.
func (d *ValueDist) Count() int { return int(d.n) }

// sortedValues returns the distinct values ascending. Ranging the map is
// safe here: the slice is sorted before any ordered effect.
func (d *ValueDist) sortedValues() []float64 {
	vals := make([]float64, 0, len(d.counts))
	for v := range d.counts {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return vals
}

// at returns the i-th order statistic (0-based) of the expanded series.
func at(vals []float64, cum []int64, i int64) float64 {
	// cum[k] = count of observations <= vals[k]; find the first k with
	// cum[k] > i.
	k := sort.Search(len(cum), func(k int) bool { return cum[k] > i })
	return vals[k]
}

// Summary reduces the distribution exactly as Summarize reduces the sorted
// sample slice. Cost is O(n) float additions (replayed per observation to
// keep bitwise identity) but O(distinct) memory.
func (d *ValueDist) Summary() Summary {
	if d.n == 0 {
		return Summary{}
	}
	vals := d.sortedValues()
	cum := make([]int64, len(vals))
	var running int64
	for k, v := range vals {
		running += d.counts[v]
		cum[k] = running
	}
	// Summarize sums over the sorted slice one sample at a time; replay
	// the identical addition sequence.
	var sum float64
	for _, v := range vals {
		for c := d.counts[v]; c > 0; c-- {
			sum += v
		}
	}
	mean := sum / float64(d.n)
	var sq float64
	for _, v := range vals {
		dd := v - mean
		dd = dd * dd
		for c := d.counts[v]; c > 0; c-- {
			sq += dd
		}
	}
	q := func(p float64) float64 {
		if d.n == 1 {
			return vals[0]
		}
		pos := p * float64(d.n-1)
		lo := int64(math.Floor(pos))
		hi := int64(math.Ceil(pos))
		if lo == hi {
			return at(vals, cum, lo)
		}
		frac := pos - float64(lo)
		return at(vals, cum, lo)*(1-frac) + at(vals, cum, hi)*frac
	}
	return Summary{
		Count:  int(d.n),
		Mean:   mean,
		Min:    vals[0],
		Max:    vals[len(vals)-1],
		Median: q(0.5),
		P90:    q(0.9),
		P99:    q(0.99),
		Stddev: math.Sqrt(sq / float64(d.n)),
	}
}

package metrics

import (
	"math/rand/v2"
	"testing"
)

// TestValueDistBitIdenticalToSummarize is the contract test for the exact
// streaming summary: for series drawn from bounded domains (the SWF case —
// integral seconds, node counts, duplicated heavily), every Summary field
// must be bit-for-bit equal to the batch Summarize, not merely close.
func TestValueDistBitIdenticalToSummarize(t *testing.T) {
	cases := []struct {
		name string
		gen  func(r *rand.Rand, n int) []float64
	}{
		{"integral-seconds", func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(r.IntN(5000))
			}
			return out
		}},
		{"heavy-dupes", func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(r.IntN(7)) * 0.5
			}
			return out
		}},
		{"ratios", func(r *rand.Rand, n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(1+r.IntN(900)) / float64(1+r.IntN(30))
			}
			return out
		}},
	}
	sizes := []int{1, 2, 3, 10, 101, 4096}
	for _, tc := range cases {
		r := rand.New(rand.NewPCG(7, 11))
		for _, n := range sizes {
			vals := tc.gen(r, n)
			var d ValueDist
			for _, v := range vals {
				d.Add(v)
			}
			got, want := d.Summary(), Summarize(vals)
			if got != want {
				t.Fatalf("%s n=%d: ValueDist.Summary() = %+v, Summarize = %+v", tc.name, n, got, want)
			}
			if d.Count() != n {
				t.Fatalf("%s n=%d: Count = %d", tc.name, n, d.Count())
			}
		}
	}
}

func TestValueDistEmpty(t *testing.T) {
	var d ValueDist
	if got := d.Summary(); got != (Summary{}) {
		t.Fatalf("empty ValueDist summary = %+v", got)
	}
}

// TestValueDistMemoryIsPerDistinctValue: absorbing the same values again
// must not grow the counter map — that is the O(distinct) claim.
func TestValueDistMemoryIsPerDistinctValue(t *testing.T) {
	var d ValueDist
	for round := 0; round < 1000; round++ {
		for v := 0; v < 50; v++ {
			d.Add(float64(v))
		}
	}
	if len(d.counts) != 50 {
		t.Fatalf("distinct counters = %d, want 50", len(d.counts))
	}
	if d.Count() != 50000 {
		t.Fatalf("Count = %d, want 50000", d.Count())
	}
}

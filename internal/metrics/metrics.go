// Package metrics computes the four evaluation metrics of Tang et al.
// (ICPP 2011) §V-C from completed simulations:
//
//   - waiting time: start − submit;
//   - slowdown: (wait + runtime) / runtime;
//   - paired-job synchronization time: extra wait imposed on a paired job
//     after it first became ready, while coscheduling aligned its mate;
//   - service-unit loss: node-hours spent holding, also expressed as a lost
//     system-utilization rate.
//
// It also provides generic summary statistics and the text tables the
// experiment harness prints.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"cosched/internal/job"
	"cosched/internal/sim"
)

// Summary holds order statistics for one series.
//
// Stddev is the POPULATION standard deviation (÷ n): a summary describes
// every job the simulation produced, not a sample drawn from a larger
// population, so no Bessel correction applies. The streaming
// Accumulator.Summary (streaming.go) follows the same convention — the
// two paths must agree bit-for-bit on mean/stddev for the
// batch-vs-streaming differential tests. Contrast benchsuite.Stats,
// which uses the sample form (÷ n−1) because benchmark runs ARE a
// sample; and Stderr below, which needs the sample form by definition.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
	P99    float64
	Stddev float64
}

// Summarize computes a Summary; the input is not modified.
// Stddev uses the population form (÷ n) — see the Summary contract.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	var sum, sq float64
	for _, x := range v {
		sum += x
	}
	mean := sum / float64(len(v))
	for _, x := range v {
		d := x - mean
		sq += d * d
	}
	return Summary{
		Count:  len(v),
		Mean:   mean,
		Min:    v[0],
		Max:    v[len(v)-1],
		Median: quantile(v, 0.5),
		P90:    quantile(v, 0.9),
		P99:    quantile(v, 0.99),
		Stddev: math.Sqrt(sq / float64(len(v))),
	}
}

// Stderr returns the standard error of the mean of values (sample
// standard deviation over √n); 0 for fewer than two values. Experiment
// tables use it to report run-to-run uncertainty across repetitions.
func Stderr(values []float64) float64 {
	n := len(values)
	if n < 2 {
		return 0
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	var sq float64
	for _, v := range values {
		d := v - mean
		sq += d * d
	}
	return math.Sqrt(sq/float64(n-1)) / math.Sqrt(float64(n))
}

// quantile interpolates the q-th quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DomainReport aggregates one domain's run.
type DomainReport struct {
	Domain    string
	TotalJobs int
	Completed int
	Cancelled int
	Stuck     int // jobs not completed when the simulation ended

	Wait        Summary // minutes, all completed jobs
	Slowdown    Summary // ratio, all completed jobs
	PairedSync  Summary // minutes, completed paired jobs only
	PairedCount int

	Yields int // total yield events
	Holds  int // total hold events

	// Service-unit loss (from job-side accounting; equals the pool-side
	// held integral when every hold resolved).
	LostNodeHours float64
	// LostUtilization is lost node-hours over total capacity node-hours
	// in the span.
	LostUtilization float64

	// Utilization is productive busy node-seconds / capacity.
	Utilization float64

	Span sim.Duration // simulated span used for the rates
}

// Collect builds a DomainReport from a domain's jobs. span is the
// simulated period (e.g. the trace month) used for loss/utilization rates;
// totalNodes the pool size.
//
// Aggregation is streaming and bounded: three constant-size Accumulators
// replace the per-job []float64 buffers this function used to build, so
// collecting a million-job domain costs no per-job memory. Values
// accumulate in the order jobs are listed; Manager.Jobs() returns
// registration order, which is deterministic, so reports are reproducible
// at any worker count. Collect is a fold over a Collector (collector.go) —
// the incremental path used by streaming trace replay shares every float
// operation with this one.
func Collect(domain string, jobs []*job.Job, totalNodes int, span sim.Duration) DomainReport {
	c := NewCollector(domain)
	for _, j := range jobs {
		c.Add(j)
	}
	return c.Report(totalNodes, span)
}

// AvgWaitMinutes is a convenience accessor for the figure tables.
func (r DomainReport) AvgWaitMinutes() float64 { return r.Wait.Mean }

// AvgSlowdown is a convenience accessor for the figure tables.
func (r DomainReport) AvgSlowdown() float64 { return r.Slowdown.Mean }

// AvgSyncMinutes is a convenience accessor for the figure tables.
func (r DomainReport) AvgSyncMinutes() float64 { return r.PairedSync.Mean }

// String renders a one-line digest.
func (r DomainReport) String() string {
	return fmt.Sprintf("%s: %d/%d done (%d stuck) wait=%.1fm sd=%.2f sync=%.1fm loss=%.0f nh (%.2f%%) util=%.2f",
		r.Domain, r.Completed, r.TotalJobs, r.Stuck,
		r.Wait.Mean, r.Slowdown.Mean, r.PairedSync.Mean,
		r.LostNodeHours, 100*r.LostUtilization, r.Utilization)
}

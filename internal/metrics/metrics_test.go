package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"cosched/internal/job"
	"cosched/internal/sim"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 4)
	if math.Abs(s.Stddev-wantStd) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.Stddev, wantStd)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{7}); s.Median != 7 || s.P90 != 7 || s.P99 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

// Property: min ≤ median ≤ p90 ≤ p99 ≤ max and min ≤ mean ≤ max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			// Restrict to magnitudes the metric domain produces (minutes,
			// ratios): the naive sum in Mean overflows near MaxFloat64.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		s := Summarize(vals)
		return s.Min <= s.Median && s.Median <= s.P90 && s.P90 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mkdone(id job.ID, nodes int, submit, start sim.Time, runtime sim.Duration, paired bool) *job.Job {
	j := job.New(id, nodes, submit, runtime, runtime)
	if paired {
		j.Mates = []job.MateRef{{Domain: "x", Job: id}}
	}
	j.State = job.Completed
	j.MarkReady(start - 60) // became ready 1 min before starting
	j.StartTime = start
	j.EndTime = start + runtime
	return j
}

func TestCollect(t *testing.T) {
	jobs := []*job.Job{
		mkdone(1, 10, 0, 600, 600, false), // wait 10 min, sd 2
		mkdone(2, 20, 0, 1200, 600, true), // wait 20 min, sd 3, sync 1 min
		job.New(3, 5, 0, 60, 60),          // never ran → stuck
	}
	jobs[1].HeldNodeSeconds = 7200 // 2 node-hours lost
	jobs[1].YieldCount = 2
	jobs[1].HoldCount = 1

	span := sim.Duration(3600)
	r := Collect("test", jobs, 100, span)
	if r.TotalJobs != 3 || r.Completed != 2 || r.Stuck != 1 {
		t.Fatalf("counts: %+v", r)
	}
	if r.Wait.Mean != 15 {
		t.Fatalf("wait mean = %g, want 15", r.Wait.Mean)
	}
	if r.Slowdown.Mean != 2.5 {
		t.Fatalf("slowdown mean = %g, want 2.5", r.Slowdown.Mean)
	}
	if r.PairedCount != 1 || r.PairedSync.Mean != 1 {
		t.Fatalf("paired: count=%d sync=%g", r.PairedCount, r.PairedSync.Mean)
	}
	if r.Yields != 2 || r.Holds != 1 {
		t.Fatalf("yields=%d holds=%d", r.Yields, r.Holds)
	}
	if r.LostNodeHours != 2 {
		t.Fatalf("lost node-hours = %g, want 2", r.LostNodeHours)
	}
	// 7200 node-s over 100 nodes × 3600 s = 0.02.
	if math.Abs(r.LostUtilization-0.02) > 1e-12 {
		t.Fatalf("lost util = %g, want 0.02", r.LostUtilization)
	}
	// Productive: job1 10×600 + job2 20×600 = 18000 node-s → 0.05.
	if math.Abs(r.Utilization-0.05) > 1e-12 {
		t.Fatalf("util = %g, want 0.05", r.Utilization)
	}
	if !strings.Contains(r.String(), "test") {
		t.Fatal("String() missing domain")
	}
}

func TestCollectZeroSpan(t *testing.T) {
	r := Collect("x", nil, 100, 0)
	if r.LostUtilization != 0 || r.Utilization != 0 {
		t.Fatalf("zero-span rates: %+v", r)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Fig X", "scheme", "wait(min)")
	tb.AddRow("HH", "61.00")
	tb.AddRowf("YY", 12.5)
	tb.Caption = "caption"
	out := tb.Render()
	for _, want := range []string{"Fig X", "scheme", "HH", "61.00", "YY", "12.50", "caption", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Column alignment: every row has the header's first column width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("render too short:\n%s", out)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	v := []float64{0, 10}
	sort.Float64s(v)
	if got := quantile(v, 0.5); got != 5 {
		t.Fatalf("quantile(0.5) = %g, want 5", got)
	}
	if got := quantile(v, 0.9); math.Abs(got-9) > 1e-12 {
		t.Fatalf("quantile(0.9) = %g, want 9", got)
	}
}

func TestStderr(t *testing.T) {
	if got := Stderr(nil); got != 0 {
		t.Fatalf("stderr(nil) = %g", got)
	}
	if got := Stderr([]float64{5}); got != 0 {
		t.Fatalf("stderr(1 value) = %g", got)
	}
	// {1,2,3}: sample sd = 1, stderr = 1/√3.
	want := 1 / math.Sqrt(3)
	if got := Stderr([]float64{1, 2, 3}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stderr = %g, want %g", got, want)
	}
	if got := Stderr([]float64{4, 4, 4, 4}); got != 0 {
		t.Fatalf("stderr of constants = %g", got)
	}
}

// TestTableRenderTwiceIdentical is the ordered-output regression guard:
// rendering the same table (and a report built from the same jobs) twice
// must produce identical bytes. A map iteration leaking into row order
// anywhere in the render path shows up here as a byte diff.
func TestTableRenderTwiceIdentical(t *testing.T) {
	build := func() string {
		tb := NewTable("Fig X", "scheme", "wait(min)", "slowdown")
		for i, s := range []string{"HH", "HY", "YH", "YY"} {
			tb.AddRowf(s, float64(i)*1.5, float64(i)*0.25)
		}
		tb.Caption = "determinism probe"
		return tb.Render()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("table render not reproducible:\n%s\nvs\n%s", a, b)
	}

	var jobs []*job.Job
	for i := 1; i <= 40; i++ {
		jobs = append(jobs, mkdone(job.ID(i), i, sim.Time(i), sim.Time(i)+600, 600, i%3 == 0))
	}
	report := func() string {
		return Collect("dom", jobs, 512, 3600).String()
	}
	if a, b := report(), report(); a != b {
		t.Fatalf("report render not reproducible:\n%s\nvs\n%s", a, b)
	}
}

package metrics

import "math"

// Accumulator is a bounded-memory streaming Summary builder: count, mean,
// and variance are exact (running sum + Welford M2); Median/P90/P99 come
// from a fixed-resolution base-2 histogram with 16 sub-buckets per octave,
// giving ≤ ~4.4% relative error per quantile. Its footprint is constant
// (~13 KiB) regardless of how many values it absorbs, which is what lets a
// million-job simulation cell report metrics without holding per-job
// []float64 buffers.
//
// Accumulation order is whatever order Add is called in; callers that need
// reproducible floating-point results (the experiment tables) must feed
// values in a deterministic order, e.g. Manager.Jobs() registration order.
type Accumulator struct {
	count    int
	sum      float64
	mean, m2 float64 // Welford running mean and sum of squared deviations
	min, max float64

	// histogram of positive values: octave = floor(log2(x)) in
	// [histMinExp, histMaxExp), histSub sub-buckets per octave. Values ≤ 0
	// land in underflow (quantiles clamp to Min anyway).
	underflow int
	buckets   [histOctaves * histSub]int32
}

const (
	histMinExp  = -32 // 2^-32 ≈ 2e-10: below metric resolution
	histMaxExp  = 64  // 2^64 ≫ any simulated duration
	histOctaves = histMaxExp - histMinExp
	histSub     = 16 // sub-buckets per octave: 2^(1/16)−1 ≈ 4.4% max error
)

// Add absorbs one value.
//
//simlint:hotpath
func (a *Accumulator) Add(x float64) {
	if a.count == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.count++
	a.sum += x
	d := x - a.mean
	a.mean += d / float64(a.count)
	a.m2 += d * (x - a.mean)

	if x <= 0 || math.IsNaN(x) {
		a.underflow++
		return
	}
	frac, exp := math.Frexp(x) // x = frac × 2^exp, frac ∈ [0.5, 1)
	oct := exp - 1 - histMinExp
	if oct < 0 {
		a.underflow++
		return
	}
	if oct >= histOctaves {
		oct = histOctaves - 1
	}
	sub := int((frac*2 - 1) * histSub) // [0, histSub)
	if sub >= histSub {
		sub = histSub - 1
	}
	a.buckets[oct*histSub+sub]++
}

// Count returns the number of values absorbed.
func (a *Accumulator) Count() int { return a.count }

// Mean returns the running-sum mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 {
	if a.count == 0 {
		return 0
	}
	return a.sum / float64(a.count)
}

// quantileAt returns the approximate q-th quantile: it walks the histogram
// to the bucket containing the target rank and returns that bucket's
// geometric midpoint, clamped into [Min, Max].
func (a *Accumulator) quantileAt(q float64) float64 {
	if a.count == 0 {
		return 0
	}
	// Same rank convention as Summarize's interpolated quantile, rounded
	// to the containing observation.
	rank := int(q*float64(a.count-1)) + 1
	if rank < 1 {
		rank = 1
	}
	if rank > a.count {
		rank = a.count
	}
	seen := a.underflow
	if rank <= seen {
		return a.min
	}
	for i := range a.buckets {
		n := int(a.buckets[i])
		if n == 0 {
			continue
		}
		seen += n
		if seen >= rank {
			oct := i / histSub
			sub := i % histSub
			lo := math.Ldexp(1+float64(sub)/histSub, oct+histMinExp)
			hi := math.Ldexp(1+float64(sub+1)/histSub, oct+histMinExp)
			v := math.Sqrt(lo * hi)
			if v < a.min {
				v = a.min
			}
			if v > a.max {
				v = a.max
			}
			return v
		}
	}
	return a.max
}

// Summary renders the accumulated statistics. Count, Mean, Min, Max, and
// Stddev match the batch Summarize (up to float summation order); the
// quantiles are histogram approximations.
//
// Stddev is the POPULATION standard deviation (÷ n, √(M2/n)), matching
// the Summary contract in metrics.go: both the batch and streaming paths
// describe the complete set of simulated outcomes, so neither applies
// Bessel's correction. If one side ever switched to the sample form
// (÷ n−1) the batch-vs-streaming differential tests would diverge on
// every series with n > 1.
func (a *Accumulator) Summary() Summary {
	if a.count == 0 {
		return Summary{}
	}
	return Summary{
		Count:  a.count,
		Mean:   a.sum / float64(a.count),
		Min:    a.min,
		Max:    a.max,
		Median: a.quantileAt(0.5),
		P90:    a.quantileAt(0.9),
		P99:    a.quantileAt(0.99),
		Stddev: math.Sqrt(a.m2 / float64(a.count)),
	}
}

// Reset returns the accumulator to its empty state for reuse.
func (a *Accumulator) Reset() {
	*a = Accumulator{}
}

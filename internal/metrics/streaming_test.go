package metrics

import (
	"encoding/json"
	"math"
	"testing"
)

// testRNG is a tiny splitmix64 stream; workload.RNG would be an import
// cycle from here.
type testRNG struct{ state uint64 }

func (r *testRNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *testRNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

func (r *testRNG) Normal() float64 {
	// Box-Muller; one value per call is fine for a test.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func (r *testRNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

func accumulate(values []float64) Summary {
	var a Accumulator
	for _, v := range values {
		a.Add(v)
	}
	return a.Summary()
}

func almost(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

func checkAgainstBatch(t *testing.T, name string, values []float64) {
	t.Helper()
	want := Summarize(values)
	got := accumulate(values)
	if got.Count != want.Count {
		t.Errorf("%s: Count=%d want %d", name, got.Count, want.Count)
	}
	if got.Min != want.Min || got.Max != want.Max {
		t.Errorf("%s: Min/Max=(%g,%g) want (%g,%g)", name, got.Min, got.Max, want.Min, want.Max)
	}
	if !almost(got.Mean, want.Mean, 1e-12) {
		t.Errorf("%s: Mean=%g want %g", name, got.Mean, want.Mean)
	}
	if !almost(got.Stddev, want.Stddev, 1e-9) {
		t.Errorf("%s: Stddev=%g want %g", name, got.Stddev, want.Stddev)
	}
	// Histogram quantiles carry ≤ ~4.4% bucket error; allow 5% plus an
	// absolute floor for near-zero quantiles. Summarize additionally
	// interpolates between order statistics, which only converges with the
	// rank-based histogram estimate at scale — skip tiny inputs.
	if len(values) < 1000 {
		return
	}
	for _, q := range []struct {
		name      string
		got, want float64
	}{{"Median", got.Median, want.Median}, {"P90", got.P90, want.P90}, {"P99", got.P99, want.P99}} {
		if math.Abs(q.got-q.want) > 0.05*math.Max(math.Abs(q.want), 1e-9)+1e-9 {
			t.Errorf("%s: %s=%g want %g (>5%% off)", name, q.name, q.got, q.want)
		}
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := &testRNG{state: 42}
	cases := map[string][]float64{
		"empty":     nil,
		"single":    {3.25},
		"identical": {7, 7, 7, 7, 7, 7},
		"withZeros": {0, 0, 0, 1, 2, 3},
	}
	lognormal := make([]float64, 20000)
	for i := range lognormal {
		lognormal[i] = rng.Lognormal(6.8, 1.4)
	}
	cases["lognormal"] = lognormal
	uniform := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = rng.Float64() * 1e6
	}
	cases["uniform"] = uniform
	for name, values := range cases {
		checkAgainstBatch(t, name, values)
	}
}

// An empty accumulator must summarize to the all-zero Summary — never
// NaN (0/0 means, √ of negative M2 drift, …) — so downstream JSON
// encoding of a report with an empty series (e.g. no paired jobs in a
// cell) can never fail: encoding/json rejects NaN with an
// UnsupportedValueError.
func TestAccumulatorEmptySummaryIsZeroAndJSONSafe(t *testing.T) {
	var a Accumulator
	s := a.Summary()
	if s != (Summary{}) {
		t.Fatalf("empty Summary = %+v, want zero value", s)
	}
	for _, v := range []float64{s.Mean, s.Min, s.Max, s.Median, s.P90, s.P99, s.Stddev} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("empty Summary has non-finite field: %+v", s)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("empty Summary does not JSON-encode: %v", err)
	}
}

// A single value is every order statistic at once.
func TestAccumulatorSingleValue(t *testing.T) {
	var a Accumulator
	a.Add(42.5)
	s := a.Summary()
	if s.Count != 1 || s.Min != 42.5 || s.Max != 42.5 || s.Mean != 42.5 {
		t.Fatalf("single value: %+v", s)
	}
	if s.Median != 42.5 || s.P90 != 42.5 || s.P99 != 42.5 {
		t.Fatalf("single-value quantiles: %+v", s)
	}
	if s.Stddev != 0 {
		t.Fatalf("single-value stddev = %g", s.Stddev)
	}
}

// Values ≤ 0 never enter the histogram (they land in the underflow
// bucket); when EVERY value underflows, the rank walk must still
// terminate and the quantiles must stay finite inside [Min, Max] — the
// regime a series of all-zero sync times (nothing ever paired) puts the
// accumulator in.
func TestAccumulatorAllUnderflowQuantiles(t *testing.T) {
	var a Accumulator
	for _, v := range []float64{0, -1, -2.5, 0, -0.25} {
		a.Add(v)
	}
	s := a.Summary()
	if s.Count != 5 || s.Min != -2.5 || s.Max != 0 {
		t.Fatalf("all-underflow: %+v", s)
	}
	for _, q := range []float64{s.Median, s.P90, s.P99} {
		if math.IsNaN(q) || q < s.Min || q > s.Max {
			t.Fatalf("all-underflow quantile %g escapes [%g, %g]", q, s.Min, s.Max)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("all-underflow Summary does not JSON-encode: %v", err)
	}
}

// Pin the documented population-stddev (÷ n) contract on BOTH paths with
// a hand-computed vector: for {1,2,3,4}, the population form gives
// √1.25 and the sample form (÷ n−1) √(5/3). A silent switch to the
// sample convention on either side would trip this before the larger
// differential tests could attribute it.
func TestStddevPopulationContractBothPaths(t *testing.T) {
	values := []float64{1, 2, 3, 4}
	pop := math.Sqrt(1.25)
	sample := math.Sqrt(5.0 / 3.0)
	batch := Summarize(values).Stddev
	stream := accumulate(values).Stddev
	if !almost(batch, pop, 1e-12) {
		t.Fatalf("Summarize stddev = %g, want population %g", batch, pop)
	}
	if !almost(stream, pop, 1e-9) {
		t.Fatalf("Accumulator stddev = %g, want population %g", stream, pop)
	}
	if almost(batch, sample, 1e-3) || almost(stream, sample, 1e-3) {
		t.Fatalf("stddev matches the sample form %g — population contract broken", sample)
	}
}

func TestAccumulatorQuantilesClampedToRange(t *testing.T) {
	var a Accumulator
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
	}
	s := a.Summary()
	if s.Median < s.Min || s.Median > s.Max || s.P99 < s.Min || s.P99 > s.Max {
		t.Fatalf("quantiles escape [Min,Max]: %+v", s)
	}
}

func TestAccumulatorBoundedMemoryAndReset(t *testing.T) {
	var a Accumulator
	for i := 0; i < 1000; i++ {
		a.Add(float64(i))
	}
	allocs := testing.AllocsPerRun(100, func() { a.Add(3.7) })
	if allocs != 0 {
		t.Fatalf("Add allocated %.1f/op, want 0", allocs)
	}
	a.Reset()
	if s := a.Summary(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("Reset left state behind: %+v", s)
	}
}

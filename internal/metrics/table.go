package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to print the rows behind each paper figure.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted cells, alternating format/value pairs
// is unnecessary — each argument is rendered with %v unless it is already a
// string.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

package obs

// Metric names shared between the daemon's fault-degradation surface and
// the chaos-campaign harness. Pinning them as constants keeps the /metrics
// contract, the campaign gates, and the chaos tests pointing at one name.
const (
	// MetricJournalDegraded is a 0/1 gauge: 1 while the daemon runs in
	// journal-less degraded mode after its store poisoned.
	MetricJournalDegraded = "cosched_journal_degraded"
	// MetricFsyncFailures counts journal fsync failures. Any nonzero value
	// implies the store is (or was about to be) poisoned: a failed fsync is
	// never retried.
	MetricFsyncFailures = "cosched_journal_fsync_failures_total"
	// MetricHoldsRefused counts Hold decisions downgraded to Yield by the
	// degraded-mode hold budget.
	MetricHoldsRefused = "cosched_holds_refused_total"
	// MetricCampaignFaults counts faults actually fired during a chaos
	// campaign, labeled by seam (journal / peerlink / distsweep).
	MetricCampaignFaults = "cosched_campaign_faults_injected_total"
)

// CampaignFaults returns the seam-labeled campaign fault counter on reg.
// The campaign harness calls this once per seam; tests scrape the same
// names through the registry's /metrics handler.
func CampaignFaults(reg *Registry, seam string) Counter {
	return reg.Counter(MetricCampaignFaults,
		"Faults fired by the chaos campaign engine, by injection seam.",
		"seam", seam)
}

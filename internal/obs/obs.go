// Package obs is a dependency-free Prometheus-text-format metrics
// registry for the live daemons: counters and gauges, registered once and
// rendered as the standard text exposition (version 0.0.4) on a /metrics
// endpoint. It exists so a coschedd fleet is scrapable by any Prometheus-
// compatible collector without pulling a client library into the module.
//
// Two kinds of series feed a render:
//
//   - owned metrics (Counter, Gauge): long-lived handles the caller
//     mutates directly (Inc/Add/Set);
//   - collected samples: callbacks registered with Collect run at render
//     time and emit point-in-time values — the natural shape for state
//     that already has an authoritative owner (peerlink.Link counters,
//     the manager's queue depth under the driver lock).
//
// Rendering is deterministic: families sort by metric name and series
// sort by label signature, so two renders of unchanged state are
// byte-identical (regression-tested). That determinism is what lets CI
// diff scrapes and what keeps dashboards stable across daemon restarts.
package obs

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's exposition type.
type Kind uint8

const (
	// KindCounter is a cumulative, monotonically non-decreasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
)

// String returns the TYPE-line spelling.
func (k Kind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Registry holds metric families and collector callbacks. The zero value
// is not usable; call New.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	names      []string // sorted family names, maintained on registration
	collectors []func(*Emitter)
}

// family is one metric name: its metadata and its owned series.
type family struct {
	name, help string
	kind       Kind
	series     map[string]*value // label signature -> owned series
}

// value is one owned series. Mutations take the registry lock: scrape
// frequency is human-scale, so a single lock is simpler and cheaper than
// per-series atomics plus a registration lock.
type value struct {
	reg *Registry
	fam *family
	sig string
	val float64
}

// Counter is an owned cumulative series.
type Counter struct{ v *value }

// Gauge is an owned settable series.
type Gauge struct{ v *value }

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or fetches) the counter series name{labels...}.
// labels alternate key, value. Invalid or inconsistently-typed
// registrations panic: metric identity is a programming decision, not
// runtime input.
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	return Counter{r.series(name, help, KindCounter, labels)}
}

// Gauge registers (or fetches) the gauge series name{labels...}.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	return Gauge{r.series(name, help, KindGauge, labels)}
}

// Collect registers a callback that runs on every render and emits
// point-in-time samples. Callbacks run in registration order; the samples
// they emit are merged with owned series and sorted, so emission order
// never affects output order.
func (r *Registry) Collect(fn func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// series registers a family (first use) and returns the owned series for
// the given label signature.
func (r *Registry) series(name, help string, kind Kind, labels []string) *value {
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.registerLocked(name, help, kind)
	if v, ok := f.series[sig]; ok {
		return v
	}
	v := &value{reg: r, fam: f, sig: sig}
	f.series[sig] = v
	return v
}

// registerLocked finds or creates the family, enforcing one (kind, help)
// per name.
func (r *Registry) registerLocked(name, help string, kind Kind) *family {
	mustValidName(name)
	if f, ok := r.families[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, series: map[string]*value{}}
	r.families[name] = f
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return f
}

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Add adds delta, which must be non-negative for a counter.
func (c Counter) Add(delta float64) {
	if delta < 0 {
		panic(fmt.Sprintf("obs: counter %s decreased by %g", c.v.fam.name, -delta))
	}
	c.v.reg.mu.Lock()
	c.v.val += delta
	c.v.reg.mu.Unlock()
}

// Value returns the current count.
func (c Counter) Value() float64 {
	c.v.reg.mu.Lock()
	defer c.v.reg.mu.Unlock()
	return c.v.val
}

// Set replaces the gauge's value.
func (g Gauge) Set(v float64) {
	g.v.reg.mu.Lock()
	g.v.val = v
	g.v.reg.mu.Unlock()
}

// Add adjusts the gauge by delta (either sign).
func (g Gauge) Add(delta float64) {
	g.v.reg.mu.Lock()
	g.v.val += delta
	g.v.reg.mu.Unlock()
}

// Value returns the current gauge value.
func (g Gauge) Value() float64 {
	g.v.reg.mu.Lock()
	defer g.v.reg.mu.Unlock()
	return g.v.val
}

// Emitter receives samples from Collect callbacks during one render.
type Emitter struct {
	samples map[string]map[string]float64 // name -> signature -> value
	meta    map[string]struct {
		help string
		kind Kind
	}
}

// Counter emits one cumulative sample. The value is the collector's
// authoritative running total (e.g. a peerlink call count); the emitter
// does not accumulate across renders.
func (e *Emitter) Counter(name, help string, v float64, labels ...string) {
	e.emit(name, help, KindCounter, v, labels)
}

// Gauge emits one point-in-time sample.
func (e *Emitter) Gauge(name, help string, v float64, labels ...string) {
	e.emit(name, help, KindGauge, v, labels)
}

func (e *Emitter) emit(name, help string, kind Kind, v float64, labels []string) {
	mustValidName(name)
	if m, ok := e.meta[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: collected metric %s emitted as %s (was %s)", name, kind, m.kind))
		}
	} else {
		e.meta[name] = struct {
			help string
			kind Kind
		}{help, kind}
	}
	sigs, ok := e.samples[name]
	if !ok {
		sigs = map[string]float64{}
		e.samples[name] = sigs
	}
	sigs[labelSignature(labels)] = v
}

// Render produces the full text exposition. Output is stable: families in
// name order, series in label-signature order, values formatted with the
// shortest round-trippable representation.
func (r *Registry) Render() []byte {
	r.mu.Lock()
	collectors := make([]func(*Emitter), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	// Collectors run without the registry lock: they take their own locks
	// (driver, link) and may themselves touch owned metrics.
	em := &Emitter{
		samples: map[string]map[string]float64{},
		meta: map[string]struct {
			help string
			kind Kind
		}{},
	}
	for _, fn := range collectors {
		fn(em)
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	type renderFam struct {
		name, help string
		kind       Kind
		sigs       []string
		vals       map[string]float64
	}
	fams := map[string]*renderFam{}
	add := func(name, help string, kind Kind) *renderFam {
		f, ok := fams[name]
		if !ok {
			f = &renderFam{name: name, help: help, kind: kind, vals: map[string]float64{}}
			fams[name] = f
		}
		return f
	}
	for _, name := range r.names {
		of := r.families[name]
		f := add(name, of.help, of.kind)
		for sig, v := range of.series {
			if _, dup := f.vals[sig]; !dup {
				f.sigs = append(f.sigs, sig)
			}
			f.vals[sig] = v.val
		}
	}
	for name, sigs := range em.samples {
		m := em.meta[name]
		f := add(name, m.help, m.kind)
		for sig, v := range sigs {
			if _, dup := f.vals[sig]; !dup {
				f.sigs = append(f.sigs, sig)
			}
			f.vals[sig] = v // collected samples win over a same-name owned series
		}
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.kind)
		sort.Strings(f.sigs)
		for _, sig := range f.sigs {
			b.WriteString(name)
			b.WriteString(sig)
			b.WriteByte(' ')
			b.WriteString(formatValue(f.vals[sig]))
			b.WriteByte('\n')
		}
	}
	return []byte(b.String())
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		w.Write(r.Render())
	})
}

// ContentType is the exposition format version served by Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// formatValue renders a sample value. %g with -1 precision is the
// shortest string that parses back to the same float64, so integers stay
// integers ("42", not "42.000000") and renders are reproducible.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelSignature renders alternating key,value pairs as a canonical
// `{k1="v1",k2="v2"}` signature with keys sorted, or "" for no labels.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q", labels))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		mustValidLabel(labels[i])
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(a, b int) bool { return kvs[a].k < kvs[b].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline per the
// exposition format.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// mustValidName panics unless name is a legal metric/label identifier:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func mustValidName(name string) {
	if !validIdent(name, true) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
}

// mustValidLabel panics unless name is a legal label name (no colons).
func mustValidLabel(name string) {
	if !validIdent(name, false) {
		panic(fmt.Sprintf("obs: invalid label name %q", name))
	}
}

func validIdent(s string, colons bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c == ':' && colons:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

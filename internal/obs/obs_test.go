package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestRenderStableOrderAndTwiceIdentical(t *testing.T) {
	r := New()
	// Register deliberately out of name order, and series out of label
	// order, to prove sorting is the registry's job.
	r.Gauge("zeta_depth", "queue depth", "domain", "b").Set(4)
	r.Counter("alpha_total", "a counter", "peer", "z").Add(2)
	r.Counter("alpha_total", "a counter", "peer", "a").Add(7)
	r.Gauge("zeta_depth", "queue depth", "domain", "a").Set(1)
	r.Collect(func(e *Emitter) {
		e.Gauge("middle_gauge", "collected", 3.5)
	})

	one := r.Render()
	two := r.Render()
	if !bytes.Equal(one, two) {
		t.Fatalf("render not byte-identical:\n%s\nvs\n%s", one, two)
	}
	want := `# HELP alpha_total a counter
# TYPE alpha_total counter
alpha_total{peer="a"} 7
alpha_total{peer="z"} 2
# HELP middle_gauge collected
# TYPE middle_gauge gauge
middle_gauge 3.5
# HELP zeta_depth queue depth
# TYPE zeta_depth gauge
zeta_depth{domain="a"} 1
zeta_depth{domain="b"} 4
`
	if string(one) != want {
		t.Fatalf("render:\n%s\nwant:\n%s", one, want)
	}
}

func TestCounterAndGaugeSemantics(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", "")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %g, want 3", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative counter add did not panic")
			}
		}()
		c.Add(-1)
	}()

	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %g, want 6", got)
	}

	// Same (name, labels) registration returns the same series.
	if r.Counter("ops_total", "").Value() != 3 {
		t.Fatal("re-registration did not return the existing series")
	}
	// Re-registering a counter name as a gauge is a programming error.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("kind mismatch did not panic")
			}
		}()
		r.Gauge("ops_total", "")
	}()
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, bad := range []string{"", "2bad", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("metric name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("label name with colon accepted")
			}
		}()
		r.Counter("ok_total", "", "bad:label", "v")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("odd label list accepted")
			}
		}()
		r.Counter("ok_total", "", "only_key")
	}()
}

func TestLabelEscapingRoundTrips(t *testing.T) {
	r := New()
	hostile := "a\"b\\c\nd"
	r.Gauge("esc", "help with \\ and\nnewline", "k", hostile).Set(1)
	out := r.Render()
	if strings.Contains(string(out), "\nd\"") {
		t.Fatalf("unescaped newline in output:\n%s", out)
	}
	scr, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scr.Value("esc", "k", hostile); !ok || v != 1 {
		t.Fatalf("escaped label did not round-trip: %+v", scr.Values)
	}
}

func TestCollectedSamplesAndParse(t *testing.T) {
	r := New()
	calls := 0
	r.Collect(func(e *Emitter) {
		calls++
		e.Counter("peer_calls_total", "calls", 42, "peer", "b")
		e.Gauge("jobs_queued", "depth", 17)
	})
	out := r.Render()
	if calls != 1 {
		t.Fatalf("collector ran %d times, want 1", calls)
	}
	scr, err := Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scr.Value("peer_calls_total", "peer", "b"); !ok || v != 42 {
		t.Fatalf("peer_calls_total = %v, %v", v, ok)
	}
	if v, ok := scr.Value("jobs_queued"); !ok || v != 17 {
		t.Fatalf("jobs_queued = %v, %v", v, ok)
	}
	if scr.Types["peer_calls_total"] != KindCounter || scr.Types["jobs_queued"] != KindGauge {
		t.Fatalf("types = %+v", scr.Types)
	}
	// Label order is canonicalized, so a reordered query still hits.
	r2 := New()
	r2.Gauge("multi", "", "b", "2", "a", "1").Set(5)
	scr2, err := Parse(r2.Render())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scr2.Value("multi", "a", "1", "b", "2"); !ok || v != 5 {
		t.Fatalf("canonicalized label lookup failed: %+v", scr2.Values)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"metric",                        // no value
		"metric{a=\"1\" 2",              // unterminated label block
		"metric nope",                   // unparsable value
		"# TYPE metric histogram",       // unsupported type
		"metric{a=\"1\"} 1 extra trail", // trailing junk
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Fatalf("Parse accepted %q", bad)
		}
	}
	// HELP lines and blank lines are skipped.
	scr, err := Parse([]byte("# HELP m h\n\nm 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scr.Value("m"); !ok || v != 1 {
		t.Fatalf("simple sample lost: %+v", scr.Values)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := New()
	r.Counter("served_total", "requests").Add(5)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != ContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scr, err := Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := scr.Value("served_total"); !ok || v != 5 {
		t.Fatalf("served_total = %v, %v", v, ok)
	}
}

func TestConcurrentMutationIsSafe(t *testing.T) {
	r := New()
	c := r.Counter("races_total", "")
	g := r.Gauge("level", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				g.Set(float64(n))
				_ = r.Render()
			}
		}(i)
	}
	wg.Wait()
	if got := c.Value(); got != 8*500 {
		t.Fatalf("counter = %g, want %d", got, 8*500)
	}
}

// Collected samples shadow an owned series of the same identity: the
// collector's value is authoritative for that scrape.
func TestCollectedShadowsOwned(t *testing.T) {
	r := New()
	r.Gauge("depth", "").Set(1)
	r.Collect(func(e *Emitter) { e.Gauge("depth", "", 9) })
	scr, err := Parse(r.Render())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := scr.Value("depth"); v != 9 {
		t.Fatalf("depth = %g, want collected 9", v)
	}
}

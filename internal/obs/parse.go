package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Scrape is a parsed text exposition: sample values keyed by the full
// series identity (`name` or `name{k="v",...}` exactly as rendered) plus
// each family's declared type. It exists so tests and CI checks can
// assert on scraped values without a Prometheus dependency.
type Scrape struct {
	Values map[string]float64
	Types  map[string]Kind
}

// Value returns the sample for the series with the given name and label
// pairs (alternating key, value — order-insensitive, canonicalized the
// same way Render does).
func (s *Scrape) Value(name string, labels ...string) (float64, bool) {
	v, ok := s.Values[name+labelSignature(labels)]
	return v, ok
}

// Series returns the full series keys in sorted order.
func (s *Scrape) Series() []string {
	keys := make([]string, 0, len(s.Values))
	for k := range s.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Parse decodes a text exposition produced by Render (or any conforming
// exporter). It validates the line grammar strictly enough that a test
// scraping /metrics fails loudly on malformed output: unknown line
// shapes, unparsable values, and TYPE declarations other than
// counter/gauge are errors.
func Parse(data []byte) (*Scrape, error) {
	s := &Scrape{Values: map[string]float64{}, Types: map[string]Kind{}}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return nil, fmt.Errorf("obs: line %d: malformed TYPE line %q", ln+1, line)
			}
			switch fields[3] {
			case "counter":
				s.Types[fields[2]] = KindCounter
			case "gauge":
				s.Types[fields[2]] = KindGauge
			default:
				return nil, fmt.Errorf("obs: line %d: unsupported metric type %q", ln+1, fields[3])
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment
		}
		key, val, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", ln+1, err)
		}
		s.Values[key] = val
	}
	return s, nil
}

// parseSample splits `name{labels} value` (labels optional). The label
// block may contain spaces inside quoted values, so the value is the
// field after the last closing brace — or the second whitespace field
// when there are no labels.
func parseSample(line string) (key string, val float64, err error) {
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := lastUnquotedBrace(line)
		if j < 0 {
			return "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		key, rest = line[:j+1], line[j+1:]
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", 0, fmt.Errorf("malformed sample line %q", line)
		}
		key, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad sample value in %q: %w", line, err)
	}
	return key, v, nil
}

// lastUnquotedBrace finds the closing '}' of the label block, skipping
// braces inside quoted label values.
func lastUnquotedBrace(line string) int {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

// Package parallel provides the deterministic worker pool the experiment
// sweeps fan their cells across.
//
// The pool executes n index-addressed tasks on a bounded number of
// workers. Callers enumerate every cell of a sweep up front, run them via
// Map or ForEach, and aggregate results **by index, never by completion
// order** — Map already returns results in index order. Because each cell
// derives its randomness from its own (point, rep) seed and owns its
// private traces and engine, the output is bit-identical for every worker
// count: parallelism changes only wall-clock time, never a table byte.
//
// Error handling mirrors the serial loop: the first failing index (lowest
// index, not first in wall-clock time) determines the returned error, and
// a failure cancels the context so in-flight cells can stop early and
// queued cells never start. A panicking task does not kill the process: it
// is recovered and surfaced as a *PanicError carrying the cell index and
// stack, subject to the same lowest-index rule.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// PanicError is the error a recovered task panic surfaces as: the cell
// index that panicked, the panic value, and the goroutine stack at the
// point of the panic. Before recovery was added, a panicking cell took the
// whole process down with no indication of which cell died — unacceptable
// once cells fan out across worker processes that must attribute failures
// for re-dispatch.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// runTask executes fn(ctx, i), converting a panic into a *PanicError so
// one bad cell fails the sweep with attribution instead of killing the
// process.
func runTask(ctx context.Context, i int, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Index: i, Value: r, Stack: buf}
		}
	}()
	return fn(ctx, i)
}

// Workers normalizes a parallelism setting: n <= 0 selects one worker per
// core (GOMAXPROCS), anything else is returned unchanged. 1 reproduces
// the serial path exactly (the calling goroutine runs every task inline).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(ctx, i) for every i in [0, n) across at most
// Workers(workers) goroutines and blocks until all started tasks return.
//
// Indexes are claimed from an atomic counter, so assignment to workers is
// nondeterministic — callers must write any output into index-addressed
// slots (or use Map, which does). When a task fails, the derived context
// is canceled, tasks not yet started are skipped, and the error of the
// lowest failing index is returned, matching what a serial loop over the
// same tasks would have reported.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	if workers == 1 {
		// Serial fast path: no goroutines, no cancellation plumbing beyond
		// honoring an already-canceled context between tasks.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runTask(ctx, i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if err := runTask(ctx, i, fn); err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	if failed.Load() {
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	// No task failed, so the derived context was never canceled by us; a
	// non-nil error here means the parent was canceled and tasks were
	// skipped — surface that rather than reporting partial work as success.
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) across at most Workers(workers)
// goroutines and returns the results in index order. On error the slice is
// nil and the error of the lowest failing index is returned.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(_ context.Context, i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Fatalf("Workers(1) = %d", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 53
		var hits [n]atomic.Int32
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestForEachReturnsLowestFailingIndex checks the serial-equivalent error
// rule: whichever worker fails first in wall-clock time, the reported
// error is the one a serial loop would have hit.
func TestForEachReturnsLowestFailingIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 16, func(_ context.Context, i int) error {
			switch i {
			case 3:
				return errLow
			case 11:
				return errHigh
			}
			return nil
		})
		// With workers=1 index 11 never runs; either way index 3's error
		// must win.
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

func TestForEachCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i < 2 {
			return fmt.Errorf("fail at %d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got >= 1000 {
		t.Fatalf("cancellation did not skip any of the %d tasks", got)
	}
}

func TestForEachHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 4, 100, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d tasks ran under a canceled context", got)
	}
}

// TestForEachRecoversPanickingCell checks the panic containment contract:
// a panicking cell must not kill the process, and the surfaced error must
// attribute the failure to the panicking index, both on the serial fast
// path and on the fanned-out path.
func TestForEachRecoversPanickingCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 16, func(_ context.Context, i int) error {
			if i == 6 {
				panic("cell exploded")
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was swallowed, want error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %T %v, want *PanicError", workers, err, err)
		}
		if pe.Index != 6 {
			t.Fatalf("workers=%d: panic attributed to index %d, want 6", workers, pe.Index)
		}
		if pe.Value != "cell exploded" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
	}
}

// TestForEachPanicLowestIndexWins: a panic competes with ordinary errors
// under the same lowest-index rule.
func TestForEachPanicLowestIndexWins(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 1, 16, func(_ context.Context, i int) error {
		switch i {
		case 2:
			panic("early panic")
		case 9:
			return boom
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("err = %v, want PanicError at index 2", err)
	}
}

func TestMapReturnsIndexOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(context.Background(), workers, 40, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	got, err := Map(context.Background(), 4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if got != nil {
		t.Fatalf("results = %v, want nil on error", got)
	}
}

package peerlink

import "time"

// BackoffForTest exposes the jittered backoff schedule to tests.
func (l *Link) BackoffForTest(k int) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.backoffLocked(k)
}

// Package peerlink maintains a resilient connection to one remote
// coscheduling domain: a self-healing cosched.Peer that wraps the wire
// client (internal/proto) with lazy dialing, exponential backoff between
// redials, a circuit breaker, per-call deadline budgets, and transport/
// remote error classification.
//
// The design target is Algorithm 1's fault-tolerance rule ("status
// unknown ⇒ start normally"), which only degrades *gracefully* if a dead
// peer fails *fast*. A naive redial-per-call peer makes every scheduling
// iteration of a healthy domain block on a full TCP dial timeout while
// its partner is down — thousands of nodes idling behind one connect
// syscall. A Link instead fails instantly whenever the breaker is open, a
// redial is gated by backoff, or another dial is already in flight; the
// scheduler absorbs the error as "status unknown" and moves on in
// microseconds.
//
// Error classification is the second half of the contract: a remote
// application error (proto.RemoteError — the peer answered "no") proves
// the connection is healthy and must never tear it down, while a
// transport error retires the underlying proto.Client (it may be framing-
// desynced) and counts toward the breaker. Transport failures that
// provably died before the request left this host (dial/deadline/write
// stage) are retried once on a fresh connection within the call's budget;
// ambiguous read-stage failures are retried only for idempotent queries.
//
// The breaker state machine:
//
//	Closed ──(FailThreshold consecutive transport failures)──▶ Open
//	Open ──(Cooldown elapsed; next call becomes the probe)──▶ HalfOpen
//	HalfOpen ──(probe succeeds)──▶ Closed   (counters reset)
//	HalfOpen ──(probe fails)──▶ Open        (fresh cooldown)
//
// While Open, every call fails in O(1) with ErrCircuitOpen. While
// HalfOpen, exactly one call is admitted as the probe; concurrent calls
// fail fast. Backoff gates dial attempts in the Closed state (a link can
// be disconnected without being tripped — e.g. right after a peer
// restart): after k consecutive dial failures the next attempt waits
// min(BackoffBase·2^(k-1), BackoffMax), scaled by a deterministic seeded
// jitter factor in [0.5, 1), and calls arriving inside the gate fail
// instantly.
//
// Wall-clock reads are confined to Link.now; simulations wire peers
// directly (or over net.Pipe with an injected clock) and never pace
// against real time.
package peerlink

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"cosched/internal/cosched"
	"cosched/internal/job"
	"cosched/internal/proto"
	"cosched/internal/sim"
)

// State is the circuit-breaker state of a Link.
type State int

const (
	// Closed is the healthy state: calls flow (dialing lazily as needed).
	Closed State = iota
	// Open means the breaker tripped: calls fail instantly until the
	// cooldown elapses.
	Open
	// HalfOpen admits exactly one probe call; its outcome decides between
	// Closed and a fresh Open cooldown.
	HalfOpen
)

// String returns "closed", "open", or "half-open".
func (s State) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Transport is the connection a Link manages: the wire client
// (proto.Client) in production, or a scriptable fake in tests. It carries
// the full protocol including the co-start-instant and reconciliation
// extensions (proto.Client implements both; fakes must too).
type Transport interface {
	cosched.Peer
	cosched.CoStarter
	cosched.Reconciler
	Ping() (string, error)
	Close() error
}

// Fast-fail sentinels. Each maps to "status unknown" at the Algorithm 1
// call site, exactly like any other peer error — the point is that they
// surface in microseconds instead of a dial timeout.
var (
	// ErrCircuitOpen is returned while the breaker is open (or while a
	// half-open probe is already in flight).
	ErrCircuitOpen = errors.New("peerlink: circuit open")
	// ErrDialBackoff is returned when a redial is gated by the backoff
	// timer.
	ErrDialBackoff = errors.New("peerlink: redial gated by backoff")
	// ErrDialBusy is returned when another goroutine's dial is in flight.
	ErrDialBusy = errors.New("peerlink: dial already in flight")
)

// Config parameterizes a Link. Name is required; Addr is required unless
// Dial is overridden.
type Config struct {
	// Name is the remote domain's name (PeerName returns it without
	// touching the network).
	Name string
	// Addr is the remote daemon's peer-protocol address.
	Addr string
	// DialTimeout bounds one TCP connect (default 2s).
	DialTimeout time.Duration
	// CallTimeout is the per-call deadline budget: it bounds each round
	// trip on the wire and caps how late a retry may still be issued
	// (default 2s). Decoupled from DialTimeout — a short dial bound with a
	// longer call budget leaves room to redial and retry within one call.
	CallTimeout time.Duration
	// FailThreshold is the number of consecutive transport failures that
	// trips the breaker (default 3).
	FailThreshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// BackoffBase is the delay gate after the first failed dial
	// (default 50ms); it doubles per consecutive failure up to BackoffMax
	// (default 10s), scaled by deterministic jitter in [0.5, 1).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MinHealthy is how long a connection must stay up before the dial
	// backoff window resets (default 1s; negative resets immediately on
	// any successful dial). Without it, a flapping peer that accepts the
	// TCP connect and dies on the first call would clear the accumulated
	// backoff exponent on every dial, collapsing the schedule back to
	// BackoffBase and turning the gate into a tight redial loop.
	MinHealthy time.Duration
	// Seed seeds the jitter stream (splitmix64), making backoff schedules
	// reproducible.
	Seed uint64
	// Logger, if set, records connects, disconnects, and breaker
	// transitions.
	Logger *log.Logger
	// OnStateChange, if set, is invoked (outside the link's lock) after
	// every breaker transition; cause is nil on recovery.
	OnStateChange func(name string, from, to State, cause error)
	// Dial overrides the transport constructor (tests, net.Pipe links).
	// The default dials Addr with proto.DialTimeouts.
	Dial func(addr string, dialTimeout, callTimeout time.Duration) (Transport, error)
	// Now overrides the clock (tests). The default reads the wall clock.
	Now func() time.Time
}

// Link is a resilient cosched.Peer over one remote domain. Safe for
// concurrent use: the live daemon calls it from the scheduler (under the
// driver lock), the status server snapshots it from HTTP goroutines, and
// tests probe it directly.
type Link struct {
	cfg Config

	mu     sync.Mutex
	state  State
	client Transport
	gen    uint64 // bumped on every connect and discard; stale-failure guard
	rng    uint64 // jitter stream

	consecFails int       // transport failures since the last success
	dialFails   int       // consecutive dial failures (backoff exponent)
	nextDialAt  time.Time // backoff gate; zero = no gate
	connectedAt time.Time // when the current connection was dialed; zero = none
	reopenAt    time.Time // when Open may admit a half-open probe
	probing     bool      // a half-open probe call is in flight
	dialing     bool      // a dial is in flight

	// Counters for Snapshot.
	calls, successes  int
	remoteErrs        int
	transportErrs     int
	fastFails         int
	retries           int
	dials, dialErrs   int
	trips, breakConns int
	lastErr           string
}

// New builds a Link. Zero-valued Config durations and thresholds take the
// documented defaults.
func New(cfg Config) *Link {
	if cfg.Name == "" {
		panic("peerlink: Config.Name is required")
	}
	if cfg.Addr == "" && cfg.Dial == nil {
		panic("peerlink: Config.Addr is required unless Dial is overridden")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 10 * time.Second
	}
	if cfg.MinHealthy == 0 {
		cfg.MinHealthy = time.Second
	}
	return &Link{cfg: cfg, rng: cfg.Seed}
}

// now reads the link's clock.
func (l *Link) now() time.Time {
	if l.cfg.Now != nil {
		return l.cfg.Now()
	}
	//simlint:allow R2 backoff gates and breaker cooldowns pace wall-clock redials to a real peer daemon; simulation harnesses inject a virtual clock via Config.Now
	return time.Now()
}

// nextRand draws a uniform value in [0, 1) from the seeded jitter stream.
// Callers hold l.mu.
func (l *Link) nextRand() float64 {
	l.rng += 0x9e3779b97f4a7c15
	z := l.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// backoffLocked returns the gate delay after the k-th consecutive dial
// failure (k ≥ 1): min(base·2^(k-1), max) scaled by jitter in [0.5, 1).
func (l *Link) backoffLocked(k int) time.Duration {
	d := l.cfg.BackoffBase
	for i := 1; i < k; i++ {
		d *= 2
		if d >= l.cfg.BackoffMax || d <= 0 { // <= 0: overflow
			d = l.cfg.BackoffMax
			break
		}
	}
	if d > l.cfg.BackoffMax {
		d = l.cfg.BackoffMax
	}
	return d/2 + time.Duration(float64(d/2)*l.nextRand())
}

// setStateLocked transitions the breaker and returns a thunk that fires
// the logger and OnStateChange hook — call it after releasing l.mu.
func (l *Link) setStateLocked(to State, cause error) func() {
	from := l.state
	if from == to {
		return nil
	}
	l.state = to
	if to == Open {
		l.trips++
	}
	name, logger, cb := l.cfg.Name, l.cfg.Logger, l.cfg.OnStateChange
	return func() {
		if logger != nil {
			logger.Printf("peerlink %s: breaker %s -> %s (%v)", name, from, to, cause)
		}
		if cb != nil {
			cb(name, from, to, cause)
		}
	}
}

func fire(fs ...func()) {
	for _, f := range fs {
		if f != nil {
			f()
		}
	}
}

// recordFailureLocked does breaker accounting for one transport failure
// (call or dial) and returns the state-change thunk, if any.
func (l *Link) recordFailureLocked(err error) func() {
	l.transportErrs++
	l.lastErr = err.Error()
	l.consecFails++
	if l.probing || l.state == HalfOpen {
		// The half-open probe failed: straight back to open.
		l.probing = false
		l.reopenAt = l.now().Add(l.cfg.Cooldown)
		return l.setStateLocked(Open, err)
	}
	if l.state == Closed && l.consecFails >= l.cfg.FailThreshold {
		l.reopenAt = l.now().Add(l.cfg.Cooldown)
		return l.setStateLocked(Open, err)
	}
	return nil
}

// maybeResetBackoffLocked clears the dial-backoff window once the current
// connection has proven itself healthy for MinHealthy. Callers hold l.mu.
func (l *Link) maybeResetBackoffLocked(now time.Time) {
	if l.client == nil || l.dialFails == 0 {
		return
	}
	if l.cfg.MinHealthy > 0 && now.Sub(l.connectedAt) < l.cfg.MinHealthy {
		return
	}
	l.dialFails = 0
	l.nextDialAt = time.Time{}
}

// acquire returns a connected transport (dialing if necessary) or fails
// fast. The returned generation identifies the connection for the
// stale-failure guard in discard.
func (l *Link) acquire() (Transport, uint64, error) {
	l.mu.Lock()
	now := l.now()
	l.maybeResetBackoffLocked(now)
	var probed func() // Open -> HalfOpen notification, fired in order
	switch l.state {
	case Open:
		if now.Before(l.reopenAt) {
			l.fastFails++
			wait := l.reopenAt.Sub(now)
			l.mu.Unlock()
			return nil, 0, fmt.Errorf("peerlink %s: %w (probe in %v)", l.cfg.Name, ErrCircuitOpen, wait)
		}
		// Cooldown elapsed: this call becomes the half-open probe.
		probed = l.setStateLocked(HalfOpen, nil)
		l.probing = true
	case HalfOpen:
		if l.probing {
			l.fastFails++
			l.mu.Unlock()
			return nil, 0, fmt.Errorf("peerlink %s: %w (probe in flight)", l.cfg.Name, ErrCircuitOpen)
		}
		l.probing = true
	}
	if t := l.client; t != nil {
		gen := l.gen
		l.mu.Unlock()
		fire(probed)
		return t, gen, nil
	}
	if l.dialing {
		l.fastFails++
		l.probing = false // a busy dial cannot carry the probe
		l.mu.Unlock()
		fire(probed)
		return nil, 0, fmt.Errorf("peerlink %s: %w", l.cfg.Name, ErrDialBusy)
	}
	if l.state == Closed && now.Before(l.nextDialAt) {
		l.fastFails++
		wait := l.nextDialAt.Sub(now)
		l.mu.Unlock()
		return nil, 0, fmt.Errorf("peerlink %s: %w (next attempt in %v)", l.cfg.Name, ErrDialBackoff, wait)
	}
	l.dialing = true
	l.dials++
	l.mu.Unlock()

	var t Transport
	var err error
	if l.cfg.Dial != nil {
		t, err = l.cfg.Dial(l.cfg.Addr, l.cfg.DialTimeout, l.cfg.CallTimeout)
	} else {
		t, err = proto.DialTimeouts(l.cfg.Addr, l.cfg.DialTimeout, l.cfg.CallTimeout)
	}

	l.mu.Lock()
	l.dialing = false
	if err != nil {
		l.dialErrs++
		l.dialFails++
		l.nextDialAt = l.now().Add(l.backoffLocked(l.dialFails))
		f := l.recordFailureLocked(err)
		l.mu.Unlock()
		fire(probed, f)
		return nil, 0, err
	}
	l.gen++
	gen := l.gen
	l.client = t
	l.connectedAt = l.now()
	if l.cfg.MinHealthy < 0 {
		l.dialFails = 0
		l.nextDialAt = time.Time{}
	}
	// With MinHealthy active, the accumulated backoff exponent survives
	// the successful dial; maybeResetBackoffLocked clears it only once
	// the connection has stayed up for the minimum healthy duration. A
	// peer that accepts connects and dies on the first call therefore
	// keeps climbing the schedule instead of resetting to BackoffBase.
	logger := l.cfg.Logger
	l.mu.Unlock()
	fire(probed)
	if logger != nil {
		logger.Printf("peerlink %s: connected to %s", l.cfg.Name, l.cfg.Addr)
	}
	return t, gen, nil
}

// discard retires a transport after a call-level transport failure. The
// generation guard keeps a burst of concurrent failures on one dead
// connection from counting more than once toward the breaker.
func (l *Link) discard(t Transport, gen uint64, err error) {
	t.Close()
	l.mu.Lock()
	if l.client != t || l.gen != gen {
		l.mu.Unlock() // another call already handled this connection
		return
	}
	l.client = nil
	l.gen++
	f := l.recordFailureLocked(err)
	logger := l.cfg.Logger
	l.mu.Unlock()
	fire(f)
	if logger != nil {
		logger.Printf("peerlink %s: connection retired: %v (will redial)", l.cfg.Name, err)
	}
}

// onSuccess resets failure accounting and closes the breaker.
func (l *Link) onSuccess() {
	l.mu.Lock()
	l.successes++
	l.consecFails = 0
	l.probing = false
	l.maybeResetBackoffLocked(l.now())
	f := l.setStateLocked(Closed, nil)
	l.mu.Unlock()
	fire(f)
}

// noteRemote records a remote application error: the connection answered,
// so it is healthy — no discard, no breaker accounting, and the success
// resets the consecutive-failure streak.
func (l *Link) noteRemote() {
	l.mu.Lock()
	l.remoteErrs++
	l.consecFails = 0
	l.probing = false
	f := l.setStateLocked(Closed, nil)
	l.mu.Unlock()
	fire(f)
}

// retryAllowed decides whether a failed first attempt may be replayed on a
// fresh connection: only while the breaker stayed closed, only within the
// call's deadline budget, and — for non-idempotent calls — only when the
// request provably never reached the peer.
func (l *Link) retryAllowed(err error, idempotent bool, deadline time.Time) bool {
	if !idempotent && proto.RequestMayHaveReached(err) {
		return false
	}
	l.mu.Lock()
	closed := l.state == Closed
	l.mu.Unlock()
	return closed && l.now().Before(deadline)
}

// do runs one peer call through the full failure machinery.
func (l *Link) do(idempotent bool, fn func(t Transport) error) error {
	l.mu.Lock()
	l.calls++
	l.mu.Unlock()
	deadline := l.now().Add(l.cfg.CallTimeout)

	t, gen, err := l.acquire()
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		if proto.IsRemote(err) {
			l.noteRemote()
			return err
		}
		l.discard(t, gen, err)
		if !l.retryAllowed(err, idempotent, deadline) {
			return err
		}
		t2, gen2, err2 := l.acquire()
		if err2 != nil {
			return err // the first attempt's error is the informative one
		}
		l.mu.Lock()
		l.retries++
		l.mu.Unlock()
		if err3 := fn(t2); err3 != nil {
			if proto.IsRemote(err3) {
				l.noteRemote()
				return err3
			}
			l.discard(t2, gen2, err3)
			return err3
		}
		l.onSuccess()
		return nil
	}
	l.onSuccess()
	return nil
}

// BreakConn force-closes the current connection without recording a
// transport failure — the chaos harness's "the network cut the wire"
// primitive. The next call sees a dead connection and redials.
func (l *Link) BreakConn() {
	l.mu.Lock()
	t := l.client
	if t != nil {
		l.client = nil
		l.gen++
		l.breakConns++
	}
	l.mu.Unlock()
	if t != nil {
		t.Close()
	}
}

// Close retires the current connection and stops the link (subsequent
// calls redial; Close exists for orderly daemon shutdown).
func (l *Link) Close() error {
	l.mu.Lock()
	t := l.client
	l.client = nil
	if t != nil {
		l.gen++
	}
	l.mu.Unlock()
	if t != nil {
		return t.Close()
	}
	return nil
}

// State returns the breaker state.
func (l *Link) State() State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state
}

// Probe issues one Ping through the link's full failure machinery — the
// way an operator (or a test) drives a tripped breaker through its
// half-open probe without waiting for scheduler traffic.
func (l *Link) Probe() error {
	return l.do(true, func(t Transport) error {
		_, err := t.Ping()
		return err
	})
}

var _ cosched.Peer = (*Link)(nil)

// PeerName implements cosched.Peer from configuration — never the network.
func (l *Link) PeerName() string { return l.cfg.Name }

// GetMateJob implements cosched.Peer.
func (l *Link) GetMateJob(id job.ID) (bool, error) {
	var known bool
	err := l.do(true, func(t Transport) error {
		k, err := t.GetMateJob(id)
		if err == nil {
			known = k
		}
		return err
	})
	return known, err
}

// GetMateStatus implements cosched.Peer.
func (l *Link) GetMateStatus(id job.ID) (cosched.MateStatus, error) {
	st := cosched.StatusUnknown
	err := l.do(true, func(t Transport) error {
		s, err := t.GetMateStatus(id)
		if err == nil {
			st = s
		}
		return err
	})
	return st, err
}

// CanStartMate implements cosched.Peer.
func (l *Link) CanStartMate(id job.ID) (bool, error) {
	var ok bool
	err := l.do(true, func(t Transport) error {
		o, err := t.CanStartMate(id)
		if err == nil {
			ok = o
		}
		return err
	})
	return ok, err
}

// TryStartMate implements cosched.Peer. Not idempotent: a read-stage
// failure is never retried (the mate may already be starting).
func (l *Link) TryStartMate(id job.ID) (bool, error) {
	var ok bool
	err := l.do(false, func(t Transport) error {
		o, err := t.TryStartMate(id)
		if err == nil {
			ok = o
		}
		return err
	})
	return ok, err
}

// StartMate implements cosched.Peer. Not idempotent (see TryStartMate).
func (l *Link) StartMate(id job.ID) error {
	return l.do(false, func(t Transport) error {
		return t.StartMate(id)
	})
}

var (
	_ cosched.CoStarter  = (*Link)(nil)
	_ cosched.Reconciler = (*Link)(nil)
)

// TryStartMateAt implements cosched.CoStarter. Not idempotent (see
// TryStartMate).
func (l *Link) TryStartMateAt(id job.ID, at sim.Time) (bool, error) {
	var ok bool
	err := l.do(false, func(t Transport) error {
		o, err := t.TryStartMateAt(id, at)
		if err == nil {
			ok = o
		}
		return err
	})
	return ok, err
}

// StartMateAt implements cosched.CoStarter. Not idempotent.
func (l *Link) StartMateAt(id job.ID, at sim.Time) error {
	return l.do(false, func(t Transport) error {
		return t.StartMateAt(id, at)
	})
}

// ReconcileMates implements cosched.Reconciler. Idempotent by the
// handshake's design (every resolution action converges and repeats as a
// no-op), so an ambiguous read-stage failure may retry on a fresh
// connection like any query.
func (l *Link) ReconcileMates(from string, views []cosched.MateView) ([]cosched.MateView, error) {
	var out []cosched.MateView
	err := l.do(true, func(t Transport) error {
		o, err := t.ReconcileMates(from, views)
		if err == nil {
			out = o
		}
		return err
	})
	return out, err
}
